# Empty dependencies file for sfopt_noise.
# This may be replaced when dependencies are built.
