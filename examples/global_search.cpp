// Global optimization of a noisy multimodal landscape with the three
// strategies layered on the core library: restarted simplex (section
// 1.3.5.1), simulated annealing (section 1.3.3.4), and the confidence
// particle swarm (section 5.2's future-work hybrid).
//
// Landscape: noisy 2-d Rastrigin, starting in the (2, 2) local basin
// where a single local simplex stays trapped.

#include <cmath>
#include <cstdio>

#include "core/annealing.hpp"
#include "core/initial_simplex.hpp"
#include "core/pso.hpp"
#include "core/restart.hpp"
#include "noise/noisy_function.hpp"
#include "testfunctions/functions.hpp"

int main() {
  using namespace sfopt;

  noise::NoisyFunction::Options noiseOpts;
  noiseOpts.sigma0 = 0.2;
  noise::NoisyFunction objective(
      2, [](std::span<const double> x) { return testfunctions::rastrigin(x); }, noiseOpts);

  const core::Point origin{2.0, 2.0};  // a local basin (f ~ 8), not the global one
  const auto start = core::axisSimplexPoints(origin, 0.4);
  std::printf("landscape: noisy Rastrigin, start at (2,2) where f = %.2f\n",
              testfunctions::rastrigin(origin));

  // 1. A single local PC simplex: trapped by design.
  core::PCOptions pc;
  pc.common.termination.tolerance = 1e-4;
  pc.common.termination.maxIterations = 300;
  pc.common.termination.maxSamples = 100'000;
  const auto local = core::runPointToPoint(objective, start, pc);
  std::printf("\nlocal PC simplex:     f = %8.4f at %s\n", *local.bestTrue,
              core::toString(local.best, 3).c_str());

  // 2. Restarted simplex: fresh simplexes around the incumbent.
  core::RestartOptions ro;
  ro.restarts = 5;
  ro.initialScale = 2.0;
  ro.scaleDecay = 0.7;
  const auto restarted = core::runWithRestarts(objective, start, core::makeRunner(pc), ro);
  std::printf("PC + %d restarts:      f = %8.4f at %s (stage %d won)\n", ro.restarts,
              *restarted.best.bestTrue, core::toString(restarted.best.best, 3).c_str(),
              restarted.winningStage);

  // 3. Simulated annealing: hot walker, geometric cooling.
  core::AnnealingOptions sa;
  sa.initialTemperature = 20.0;
  sa.stepScale = 1.5;
  sa.termination.maxSamples = 300'000;
  const auto annealed = core::runSimulatedAnnealing(objective, origin, sa);
  std::printf("simulated annealing:  f = %8.4f at %s\n", *annealed.bestTrue,
              core::toString(annealed.best, 3).c_str());

  // 4. Confidence PSO: global swarm with noise-aware best updates.
  core::PsoOptions pso;
  pso.particles = 20;
  pso.resample.maxRoundsPerComparison = 8;
  pso.termination.maxIterations = 200;
  pso.termination.maxSamples = 300'000;
  const auto swarmed = core::runParticleSwarm(objective, pso);
  std::printf("confidence PSO:       f = %8.4f at %s\n", *swarmed.bestTrue,
              core::toString(swarmed.best, 3).c_str());
  return 0;
}
