#pragma once

#include <cstdint>

#include "simd/force_kernel.hpp"

namespace sfopt::simd::detail {

/// Welford chunk kernel: accumulate `count` samples into (n, mean, m2)
/// moments.  The scalar kernel is the sequential stats::Welford::add
/// stream bit for bit; each vector kernel deinterleaves samples across W
/// lanes (lane l takes samples l, l+W, l+2W, ...), folds the lane
/// accumulators in lane order 0..W-1 with the standard pairwise merge,
/// then adds the count % W tail samples sequentially.  Each kernel's
/// output is a pure function of (samples, count): bitwise reproducible
/// run to run and across threads within its ISA.
using WelfordChunkFn = void (*)(const double* samples, std::int64_t count, std::int64_t* outN,
                                double* outMean, double* outM2);

/// Force pair-block kernel: per-pair outputs only, no accumulation.  Each
/// lane's result is a pure function of that pair's inputs — the same
/// full-width instruction sequence runs regardless of which lane or block
/// position a pair lands in — so any enumeration of the same pair stream
/// produces bitwise-identical per-pair values within an ISA.
using ForcePairBlockFn = void (*)(const ForceConstants& c, const ForcePairBlockIn& in,
                                  const ForcePairBlockOut& out);

void welfordChunkScalar(const double* samples, std::int64_t count, std::int64_t* outN,
                        double* outMean, double* outM2);
void forcePairBlockScalar(const ForceConstants& c, const ForcePairBlockIn& in,
                          const ForcePairBlockOut& out);

#if defined(__x86_64__) || defined(__i386__)
void welfordChunkSse4(const double* samples, std::int64_t count, std::int64_t* outN,
                      double* outMean, double* outM2);
void forcePairBlockSse4(const ForceConstants& c, const ForcePairBlockIn& in,
                        const ForcePairBlockOut& out);
void welfordChunkAvx2(const double* samples, std::int64_t count, std::int64_t* outN,
                      double* outMean, double* outM2);
void forcePairBlockAvx2(const ForceConstants& c, const ForcePairBlockIn& in,
                        const ForcePairBlockOut& out);
#endif

#if defined(__aarch64__)
void welfordChunkNeon(const double* samples, std::int64_t count, std::int64_t* outN,
                      double* outMean, double* outM2);
void forcePairBlockNeon(const ForceConstants& c, const ForcePairBlockIn& in,
                        const ForcePairBlockOut& out);
#endif

}  // namespace sfopt::simd::detail
