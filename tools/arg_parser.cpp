#include "arg_parser.hpp"

#include <algorithm>
#include <sstream>

namespace sfopt::tools {

Args Args::parse(const std::vector<std::string>& argv, const std::vector<std::string>& known) {
  Args out;
  std::size_t i = 0;
  if (i < argv.size() && argv[i].rfind("--", 0) != 0) {
    out.command_ = argv[i++];
  }
  auto checkKnown = [&](const std::string& name) {
    if (known.empty()) return;
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      throw ArgError("unknown flag --" + name);
    }
  };
  while (i < argv.size()) {
    const std::string& tok = argv[i];
    if (tok.rfind("--", 0) == 0) {
      const std::string body = tok.substr(2);
      if (body.empty()) throw ArgError("bare '--' is not a flag");
      const auto eq = body.find('=');
      if (eq != std::string::npos) {
        const std::string name = body.substr(0, eq);
        checkKnown(name);
        out.flags_[name] = body.substr(eq + 1);
        ++i;
      } else if (i + 1 < argv.size() && argv[i + 1].rfind("--", 0) != 0) {
        checkKnown(body);
        out.flags_[body] = argv[i + 1];
        i += 2;
      } else {
        // Boolean switch.
        checkKnown(body);
        out.flags_[body] = "true";
        ++i;
      }
    } else {
      out.positional_.push_back(tok);
      ++i;
    }
  }
  return out;
}

bool Args::has(const std::string& flag) const { return flags_.count(flag) > 0; }

std::string Args::getString(const std::string& flag, const std::string& fallback) const {
  const auto it = flags_.find(flag);
  return it == flags_.end() ? fallback : it->second;
}

double Args::getDouble(const std::string& flag, double fallback) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end()) return fallback;
  try {
    std::size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing junk");
    return v;
  } catch (const std::exception&) {
    throw ArgError("flag --" + flag + " expects a number, got '" + it->second + "'");
  }
}

std::int64_t Args::getInt(const std::string& flag, std::int64_t fallback) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end()) return fallback;
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing junk");
    return v;
  } catch (const std::exception&) {
    throw ArgError("flag --" + flag + " expects an integer, got '" + it->second + "'");
  }
}

bool Args::getBool(const std::string& flag, bool fallback) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw ArgError("flag --" + flag + " expects a boolean, got '" + v + "'");
}

std::vector<double> Args::getDoubleList(const std::string& flag,
                                        std::vector<double> fallback) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end()) return fallback;
  std::vector<double> out;
  std::stringstream ss(it->second);
  std::string item;
  while (std::getline(ss, item, ',')) {
    try {
      std::size_t pos = 0;
      out.push_back(std::stod(item, &pos));
      if (pos != item.size()) throw std::invalid_argument("trailing junk");
    } catch (const std::exception&) {
      throw ArgError("flag --" + flag + " expects comma-separated numbers, got '" +
                     it->second + "'");
    }
  }
  if (out.empty()) {
    throw ArgError("flag --" + flag + " expects at least one number");
  }
  return out;
}

std::string Args::requireString(const std::string& flag) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end()) throw ArgError("missing required flag --" + flag);
  return it->second;
}

}  // namespace sfopt::tools
