#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "mw/message_buffer.hpp"

namespace sfopt::mw {

/// Rank within a CommWorld.  Rank 0 is conventionally the master.
using Rank = int;

/// Matches any source rank or any tag in recv().
inline constexpr Rank kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// A received (or in-flight) message: payload plus envelope.
struct Message {
  Rank source = 0;
  int tag = 0;
  MessageBuffer payload;
};

/// In-process message-passing "world": N ranks, each with a mailbox of
/// tagged messages, point-to-point send/recv with MPI-like any-source /
/// any-tag matching.  This is the transport under the re-implemented MW
/// classes; the API is deliberately shaped so a cluster port could swap in
/// MPI_Send/MPI_Recv without touching the MW layer.
///
/// Thread-safety: each rank is intended to be driven by one thread, but
/// sends may target any rank from any thread.
class CommWorld {
 public:
  explicit CommWorld(int size);

  [[nodiscard]] int size() const noexcept { return static_cast<int>(boxes_.size()); }

  /// Deliver `payload` to `to`'s mailbox with the given tag, recording
  /// `from` as the source.  Never blocks (mailboxes are unbounded).
  void send(Rank from, Rank to, int tag, MessageBuffer payload);

  /// Block until a message matching (source, tag) arrives at `at`; remove
  /// and return it.  kAnySource / kAnyTag match anything.
  [[nodiscard]] Message recv(Rank at, Rank source = kAnySource, int tag = kAnyTag);

  /// Non-blocking probe-and-take: returns nullopt when no matching message
  /// is queued.
  [[nodiscard]] std::optional<Message> tryRecv(Rank at, Rank source = kAnySource,
                                               int tag = kAnyTag);

  /// Number of queued messages at a rank (diagnostics).
  [[nodiscard]] std::size_t queuedAt(Rank at) const;

  /// Total messages and bytes ever sent (for the scale-up accounting).
  [[nodiscard]] std::uint64_t messagesSent() const noexcept;
  [[nodiscard]] std::uint64_t bytesSent() const noexcept;

 private:
  struct Mailbox {
    mutable std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> queue;
  };

  void checkRank(Rank r, const char* what) const;
  static bool matches(const Message& m, Rank source, int tag) noexcept;

  std::vector<std::unique_ptr<Mailbox>> boxes_;
  mutable std::mutex statsMutex_;
  std::uint64_t messagesSent_ = 0;
  std::uint64_t bytesSent_ = 0;
};

}  // namespace sfopt::mw
