#include "water/cost.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/algorithms.hpp"
#include "stats/performance.hpp"

namespace {

using namespace sfopt;
using water::PropertyTarget;
using water::WaterCostObjective;
using water::weightedCost;

TEST(WeightedCost, SizesMustMatch) {
  const std::vector<PropertyTarget> t{{"a", 1.0, 1.0}};
  EXPECT_THROW((void)weightedCost(std::vector<double>{1.0, 2.0}, t), std::invalid_argument);
}

TEST(WeightedCost, ZeroAtTargets) {
  const std::vector<PropertyTarget> t{{"a", 2.0, 3.0}, {"b", -1.0, 1.0}};
  EXPECT_DOUBLE_EQ(weightedCost(std::vector<double>{2.0, -1.0}, t), 0.0);
}

TEST(WeightedCost, RelativeErrorFormula) {
  // Single target: w^2 (p - p0)^2 / p0^2 with w=2, p0=4, p=6 => 4*4/16 = 1.
  const std::vector<PropertyTarget> t{{"a", 4.0, 2.0}};
  EXPECT_DOUBLE_EQ(weightedCost(std::vector<double>{6.0}, t), 1.0);
}

TEST(WeightedCost, ZeroTargetUsesAbsoluteError) {
  const std::vector<PropertyTarget> t{{"rdf", 0.0, 3.0}};
  EXPECT_DOUBLE_EQ(weightedCost(std::vector<double>{0.5}, t), 9.0 * 0.25);
}

TEST(WeightedCost, WeightScalesQuadratically) {
  const std::vector<PropertyTarget> w1{{"a", 1.0, 1.0}};
  const std::vector<PropertyTarget> w3{{"a", 1.0, 3.0}};
  const std::vector<double> v{2.0};
  EXPECT_DOUBLE_EQ(weightedCost(v, w3), 9.0 * weightedCost(v, w1));
}

TEST(DefaultTargets, BalancedAtTip4p) {
  // Each term contributes O(1) at the published parameters: no property
  // silently dominates the fit (the paper's subjective-balancing rule).
  WaterCostObjective obj;
  const std::vector<double> tip4p{0.1550, 3.1536, 0.5200};
  const auto props = obj.surrogate().properties(water::paramsFromPoint(tip4p));
  const auto values = water::propertyVector(props);
  const auto& targets = obj.targets();
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const std::vector<double> one{values[i]};
    const std::vector<PropertyTarget> oneT{targets[i]};
    const double term = weightedCost(one, oneT);
    EXPECT_LT(term, 10.0) << targets[i].name;
  }
}

TEST(ParamsFromPoint, Validates) {
  EXPECT_THROW((void)water::paramsFromPoint(std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
  const auto p = water::paramsFromPoint(std::vector<double>{0.15, 3.1, 0.5});
  EXPECT_DOUBLE_EQ(p.epsilon, 0.15);
  EXPECT_DOUBLE_EQ(p.sigma, 3.1);
  EXPECT_DOUBLE_EQ(p.qH, 0.5);
}

TEST(WaterCostObjective, NoiseFollowsDecayLaw) {
  WaterCostObjective::Options o;
  o.sigma0 = 2.0;
  WaterCostObjective obj(o);
  const std::vector<double> x{0.155, 3.15, 0.52};
  // Variance of single samples ~ sigma0^2 / dt.
  stats::Welford w;
  for (std::uint64_t i = 0; i < 20000; ++i) w.add(obj.sample(x, {1, i}));
  EXPECT_NEAR(w.variance(), 4.0, 0.25);
  EXPECT_NEAR(w.mean(), *obj.trueValue(x), 0.05);
}

TEST(WaterCostObjective, TrueCostLowerNearStructuralOptimum) {
  WaterCostObjective obj;
  const auto opt = obj.surrogate().structuralOptimum();
  const std::vector<double> good{opt.epsilon, opt.sigma, opt.qH};
  const std::vector<double> bad{0.21, 3.0, 0.54};  // a Table 3.4a start row
  EXPECT_LT(*obj.trueValue(good), *obj.trueValue(bad));
}

TEST(WaterCostObjective, RejectsBadOptions) {
  WaterCostObjective::Options o;
  o.targets = {{"only-one", 1.0, 1.0}};
  EXPECT_THROW(WaterCostObjective{o}, std::invalid_argument);
  WaterCostObjective::Options o2;
  o2.sampleDuration = 0.0;
  EXPECT_THROW(WaterCostObjective{o2}, std::invalid_argument);
}

TEST(Table34InitialPoints, ShapeAndRanges) {
  const auto pts = water::table34InitialPoints();
  ASSERT_EQ(pts.size(), 6u);  // d+3 rows as printed in the dissertation
  for (const auto& p : pts) {
    ASSERT_EQ(p.size(), 3u);
    EXPECT_GT(p[0], 0.05);
    EXPECT_LT(p[0], 0.5);  // epsilon, kcal/mol
    EXPECT_GT(p[1], 2.5);
    EXPECT_LT(p[1], 3.8);  // sigma, A
    EXPECT_GT(p[2], 0.3);
    EXPECT_LT(p[2], 0.8);  // qH, e
  }
}

TEST(WaterOptimization, MaxNoiseRecoversNearTip4pParameters) {
  // The headline application result (Table 3.4): starting from the poor
  // Table 3.4a simplex, the stochastic simplex drives the parameters into
  // the neighbourhood of the published TIP4P values.
  WaterCostObjective::Options o;
  o.sigma0 = 0.3;
  WaterCostObjective obj(o);
  const auto all = water::table34InitialPoints();
  const std::vector<core::Point> start(all.begin(), all.begin() + 4);

  core::MaxNoiseOptions mn;
  mn.common.termination.tolerance = 1e-3;
  mn.common.termination.maxIterations = 200;
  mn.common.sampling.maxSamplesPerVertex = 100'000;
  const auto res = core::runMaxNoise(obj, start, mn);

  const auto opt = obj.surrogate().structuralOptimum();
  EXPECT_NEAR(res.best[0], opt.epsilon, 0.05);
  EXPECT_NEAR(res.best[1], opt.sigma, 0.15);
  EXPECT_NEAR(res.best[2], opt.qH, 0.05);
}

}  // namespace
