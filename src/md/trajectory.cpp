#include "md/trajectory.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace sfopt::md {

void writeXyzFrame(std::ostream& out, const WaterSystem& sys, const std::string& comment) {
  out << sys.sites() << "\n" << comment << "\n";
  out.precision(8);
  out.setf(std::ios::fixed);
  for (int i = 0; i < sys.sites(); ++i) {
    const Vec3 p = sys.box().wrap(sys.positions[static_cast<std::size_t>(i)]);
    out << (sys.speciesOf(i) == Species::Oxygen ? "O" : "H") << " " << p.x << " " << p.y
        << " " << p.z << "\n";
  }
}

std::vector<XyzFrame> readXyzFrames(std::istream& in) {
  std::vector<XyzFrame> frames;
  std::string line;
  while (std::getline(in, line)) {
    // Skip blank separators between frames.
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    int count = 0;
    try {
      count = std::stoi(line);
    } catch (const std::exception&) {
      throw std::runtime_error("readXyzFrames: expected atom count, got '" + line + "'");
    }
    if (count < 0) throw std::runtime_error("readXyzFrames: negative atom count");
    XyzFrame frame;
    if (!std::getline(in, frame.comment)) {
      throw std::runtime_error("readXyzFrames: missing comment line");
    }
    frame.elements.reserve(static_cast<std::size_t>(count));
    frame.positions.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      if (!std::getline(in, line)) {
        throw std::runtime_error("readXyzFrames: frame truncated");
      }
      std::istringstream ss(line);
      std::string element;
      Vec3 p;
      if (!(ss >> element >> p.x >> p.y >> p.z)) {
        throw std::runtime_error("readXyzFrames: malformed atom line '" + line + "'");
      }
      frame.elements.push_back(std::move(element));
      frame.positions.push_back(p);
    }
    frames.push_back(std::move(frame));
  }
  return frames;
}

XyzTrajectoryWriter::XyzTrajectoryWriter(const std::filesystem::path& path)
    : out_(path, std::ios::trunc) {
  if (!out_) {
    throw std::runtime_error("XyzTrajectoryWriter: cannot open " + path.string());
  }
}

void XyzTrajectoryWriter::writeFrame(const WaterSystem& sys, double timePs) {
  std::ostringstream comment;
  comment << "t = " << timePs << " ps";
  writeXyzFrame(out_, sys, comment.str());
  out_.flush();
  ++frames_;
}

}  // namespace sfopt::md
