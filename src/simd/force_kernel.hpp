#pragma once

#include <cstdint>

namespace sfopt::simd {

/// Pairs per dispatched force block.  A multiple of every lane width (2,
/// 4) so a full block never needs tail padding; callers of partial blocks
/// pad the index arrays up to the next kForceLaneGroup boundary.
inline constexpr std::int64_t kForceBlockPairs = 256;

/// Index arrays handed to forcePairBlock must be padded (with any valid
/// site index, conventionally the last real pair's) to a multiple of this
/// group size, so every pair — tail included — is computed by identical
/// full-width SIMD instructions.  Covers the widest lane count (AVX2: 4)
/// with headroom for a future 8-lane level.
inline constexpr std::int64_t kForceLaneGroup = 8;

/// Precomputed per-evaluation constants of the force-shifted nonbonded
/// model (see md/forces.cpp).  All reciprocals are the exact IEEE
/// quotients the scalar kernel computes at runtime, so using them keeps
/// the SIMD math on the same values.
struct ForceConstants {
  double boxEdge = 0.0;     ///< cubic box edge L
  double invBoxEdge = 0.0;  ///< 1/L
  double rc = 0.0;          ///< cutoff radius
  double rc2 = 0.0;         ///< rc^2
  double invRc = 0.0;       ///< 1/rc
  double invRc2 = 0.0;      ///< 1/rc^2
  double s2 = 0.0;          ///< sigma^2
  double eps4 = 0.0;        ///< 4 epsilon
  double eps24 = 0.0;       ///< 24 epsilon
  double ljErc = 0.0;       ///< LJ energy at the cutoff (shift)
  double ljFrc = 0.0;       ///< LJ force magnitude at the cutoff (shift)
  double coulombScale = 0.0;  ///< Coulomb constant C in V = C q q (...)
};

/// One block of nonbonded pairs in SoA form.  `count` is the number of
/// real pairs (1..kForceBlockPairs); the index arrays must remain valid
/// (padded) up to the next kForceLaneGroup multiple of count.
struct ForcePairBlockIn {
  const double* x = nullptr;  ///< site x coordinates
  const double* y = nullptr;
  const double* z = nullptr;
  const double* q = nullptr;    ///< site charges
  const double* oxy = nullptr;  ///< 1.0 for oxygen sites, 0.0 otherwise
  const std::int32_t* i = nullptr;  ///< pair first-site indices
  const std::int32_t* j = nullptr;  ///< pair second-site indices
  std::int64_t count = 0;
};

/// Per-pair kernel outputs; every array must have room for `count` rounded
/// up to kForceLaneGroup.  Forces are returned as scales: the force on
/// site i from one term is (dx, dy, dz) * S (and -that on j), which the
/// caller applies scalar so accumulation order stays the caller's choice.
struct ForcePairBlockOut {
  double* dx = nullptr;  ///< minimum-image displacement r_i - r_j
  double* dy = nullptr;
  double* dz = nullptr;
  double* coulombE = nullptr;  ///< shifted Coulomb pair energy
  double* coulombS = nullptr;  ///< Coulomb force scale
  double* ljE = nullptr;       ///< shifted LJ pair energy
  double* ljS = nullptr;       ///< LJ force scale
  std::uint8_t* withinCutoff = nullptr;   ///< r^2 < rc^2
  std::uint8_t* coulombActive = nullptr;  ///< within cutoff and qq != 0
  std::uint8_t* ljActive = nullptr;       ///< within cutoff and both oxygen
};

}  // namespace sfopt::simd
