# Empty compiler generated dependencies file for fig36_powell_pairs.
# This may be replaced when dependencies are built.
