#include "net/tcp_transport.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include "mw/mw_task.hpp"
#include "telemetry/sink.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace sfopt;
using namespace sfopt::net;

mw::MessageBuffer payload(std::int64_t v) {
  mw::MessageBuffer b;
  b.pack(v);
  return b;
}

std::unique_ptr<TcpWorkerTransport> connectTo(const TcpCommWorld& master,
                                              TcpWorkerTransport::Options opts = {}) {
  return std::make_unique<TcpWorkerTransport>("127.0.0.1", master.port(), opts);
}

/// Drive the worker-side connect on a thread while the master polls — both
/// ends of the handshake need cycles in a single-process test.
std::unique_ptr<TcpWorkerTransport> joinWorker(TcpCommWorld& master,
                                               TcpWorkerTransport::Options opts = {}) {
  std::unique_ptr<TcpWorkerTransport> worker;
  std::thread t([&] { worker = connectTo(master, opts); });
  (void)master.waitForWorkers(master.liveWorkers() + 1, 10.0);
  t.join();
  return worker;
}

TEST(TcpTransport, HandshakeAssignsRanksInConnectionOrder) {
  TcpCommWorld master(0);
  EXPECT_GT(master.port(), 0);
  EXPECT_EQ(master.size(), 1);

  auto w1 = joinWorker(master);
  auto w2 = joinWorker(master);
  EXPECT_EQ(w1->rank(), 1);
  EXPECT_EQ(w2->rank(), 2);
  EXPECT_EQ(master.size(), 3);
  EXPECT_EQ(master.liveWorkers(), 2);

  // The join events are visible to the driver as control messages.
  auto j1 = master.tryRecv(0, kAnySource, kTagWorkerJoined);
  ASSERT_TRUE(j1.has_value());
  EXPECT_EQ(j1->source, 1);
}

TEST(TcpTransport, EchoRoundTrip) {
  TcpCommWorld master(0);
  auto worker = joinWorker(master);

  master.send(0, 1, 5, payload(123));
  Message onWorker = worker->recv(1, 0, 5);
  EXPECT_EQ(onWorker.source, 0);
  EXPECT_EQ(onWorker.payload.unpackInt64(), 123);

  worker->send(1, 0, 6, payload(456));
  Message onMaster = master.recv(0, 1, 6);
  EXPECT_EQ(onMaster.source, 1);
  EXPECT_EQ(onMaster.payload.unpackInt64(), 456);
  EXPECT_GT(master.bytesSent(), 0u);
  EXPECT_EQ(master.messagesSent(), 1u);
  EXPECT_EQ(worker->messagesSent(), 1u);
}

TEST(TcpTransport, GreetingDeliveredToEveryJoiner) {
  TcpCommWorld master(0);
  mw::MessageBuffer cfg;
  cfg.pack(std::string("config-blob"));
  master.setGreeting(mw::kTagConfig, std::move(cfg));

  auto w1 = joinWorker(master);
  auto w2 = joinWorker(master);
  for (auto* w : {w1.get(), w2.get()}) {
    auto m = w->recvFor(w->rank(), 5.0, 0, mw::kTagConfig);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->payload.unpackString(), "config-blob");
  }
}

TEST(TcpTransport, RecvForTimesOutCleanly) {
  TcpCommWorld master(0);
  auto worker = joinWorker(master);
  const auto m = master.recvFor(0, 0.05, kAnySource, 99);
  EXPECT_FALSE(m.has_value());
  // The worker is still healthy afterwards.
  master.send(0, 1, 1, payload(7));
  EXPECT_EQ(worker->recv(1, 0, 1).payload.unpackInt64(), 7);
}

TEST(TcpTransport, DisconnectSynthesizesWorkerLost) {
  TcpCommWorld master(0);
  auto worker = joinWorker(master);
  (void)master.tryRecv(0, kAnySource, kTagWorkerJoined);

  worker.reset();  // abrupt close
  auto lost = master.recvFor(0, 5.0, kAnySource, kTagWorkerLost);
  ASSERT_TRUE(lost.has_value());
  EXPECT_EQ(lost->source, 1);
  EXPECT_EQ(master.liveWorkers(), 0);
  EXPECT_EQ(master.size(), 2);  // the rank is never reused

  // Sending to the lost rank is a silent drop, not an error.
  master.send(0, 1, 1, payload(1));
}

TEST(TcpTransport, HeartbeatSilenceMarksWorkerLost) {
  TcpCommWorld::Options opts;
  opts.heartbeatIntervalSeconds = 0.05;
  opts.heartbeatTimeoutSeconds = 0.3;
  TcpCommWorld master(0, opts);

  // A worker whose heartbeat thread never beats: make the interval so long
  // the master's silence window always expires first.
  TcpWorkerTransport::Options wopts;
  wopts.heartbeatIntervalSeconds = 60.0;
  auto worker = joinWorker(master, wopts);

  auto lost = master.recvFor(0, 5.0, kAnySource, kTagWorkerLost);
  ASSERT_TRUE(lost.has_value());
  EXPECT_EQ(lost->source, 1);
  EXPECT_EQ(master.liveWorkers(), 0);
}

TEST(TcpTransport, HeartbeatsKeepIdleWorkerAlive) {
  TcpCommWorld::Options opts;
  opts.heartbeatIntervalSeconds = 0.05;
  opts.heartbeatTimeoutSeconds = 0.4;
  TcpCommWorld master(0, opts);

  TcpWorkerTransport::Options wopts;
  wopts.heartbeatIntervalSeconds = 0.05;
  auto worker = joinWorker(master, wopts);

  // Idle for several silence windows; the background beats must keep the
  // peer alive even though no application traffic flows.  The worker side
  // must drain its socket for the master's beats, as a real worker does
  // while blocked in recv.
  std::atomic<bool> stop{false};
  std::thread drain([&] {
    while (!stop.load()) (void)worker->tryRecv(1, kAnySource, 99);
  });
  const auto m = master.recvFor(0, 1.2, kAnySource, kTagWorkerLost);
  stop.store(true);
  drain.join();
  EXPECT_FALSE(m.has_value());
  EXPECT_EQ(master.liveWorkers(), 1);
}

TEST(TcpTransport, ReconnectGetsFreshRank) {
  TcpCommWorld master(0);
  auto w1 = joinWorker(master);
  w1.reset();
  (void)master.recvFor(0, 5.0, kAnySource, kTagWorkerLost);

  auto w2 = joinWorker(master);
  EXPECT_EQ(w2->rank(), 2);
  EXPECT_EQ(master.size(), 3);
  EXPECT_EQ(master.liveWorkers(), 1);
}

TEST(TcpTransport, WorkerSendAfterMasterGoneThrowsConnectionLost) {
  auto master = std::make_unique<TcpCommWorld>(0);
  auto worker = joinWorker(*master);
  master.reset();
  // The first send may still land in kernel buffers; the loss must surface
  // within a couple of attempts.
  EXPECT_THROW(
      {
        for (int i = 0; i < 50; ++i) {
          worker->send(1, 0, 1, payload(i));
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
      },
      ConnectionLost);
}

TEST(TcpTransport, WorkerRecvAfterMasterGoneThrowsConnectionLost) {
  auto master = std::make_unique<TcpCommWorld>(0);
  auto worker = joinWorker(*master);
  master.reset();
  EXPECT_THROW((void)worker->recv(1), ConnectionLost);
}

TEST(TcpTransport, MasterOnlyAcceptsRankZeroCalls) {
  TcpCommWorld master(0);
  EXPECT_THROW((void)master.recv(1), std::invalid_argument);
  EXPECT_THROW(master.send(1, 0, 1, {}), std::invalid_argument);
  EXPECT_THROW(master.send(0, 5, 1, {}), std::out_of_range);
}

TEST(TcpTransport, WaitForWorkersTimesOut) {
  TcpCommWorld master(0);
  EXPECT_THROW((void)master.waitForWorkers(1, 0.1), std::runtime_error);
}

TEST(TcpTransport, ConnectWithBackoffEventuallyThrows) {
  // Nothing listens on the master's port once it is closed.
  std::uint16_t port = 0;
  {
    TcpCommWorld master(0);
    port = master.port();
  }
  EXPECT_THROW((void)connectWithBackoff("127.0.0.1", port, 2, 0.01), std::exception);
}

TEST(TcpTransport, TelemetryCountsTraffic) {
  telemetry::NoopSink sink;
  telemetry::Telemetry spine(sink);
  TcpCommWorld::Options opts;
  opts.telemetry = &spine;
  TcpCommWorld master(0, opts);
  auto worker = joinWorker(master);

  master.send(0, 1, 1, payload(1));
  (void)worker->recv(1, 0, 1);
  worker->send(1, 0, 2, payload(2));
  (void)master.recv(0, 1, 2);
  worker.reset();
  (void)master.recvFor(0, 5.0, kAnySource, kTagWorkerLost);

  auto& reg = spine.metrics();
  EXPECT_EQ(reg.counter("net.connects").value(), 1);
  EXPECT_EQ(reg.counter("net.disconnects").value(), 1);
  EXPECT_GE(reg.counter("net.messages_out").value(), 1);
  EXPECT_GE(reg.counter("net.messages_in").value(), 1);
  EXPECT_GT(reg.counter("net.bytes_out").value(), 0);
  EXPECT_GT(reg.counter("net.bytes_in").value(), 0);
  master.send(0, 1, 1, payload(3));  // to the dead rank
  EXPECT_EQ(reg.counter("net.sends_dropped").value(), 1);
}

TEST(TcpTransport, ReceiveSideCountersTrackTraffic) {
  telemetry::NoopSink sink;
  telemetry::Telemetry spine(sink);
  TcpCommWorld::Options opts;
  opts.telemetry = &spine;
  TcpCommWorld master(0, opts);
  auto worker = joinWorker(master);

  master.send(0, 1, 1, payload(1));
  (void)worker->recv(1, 0, 1);
  worker->send(1, 0, 2, payload(2));
  (void)master.recv(0, 1, 2);

  // Both ends expose the receive-side ledger directly on the Transport.
  EXPECT_EQ(master.messagesReceived(), 1u);
  EXPECT_GT(master.bytesReceived(), 0u);
  EXPECT_GE(master.framesSent(), 1u);
  EXPECT_GE(master.framesReceived(), 1u);
  EXPECT_EQ(master.decodeErrors(), 0u);
  EXPECT_EQ(worker->messagesReceived(), 1u);
  EXPECT_GT(worker->bytesReceived(), 0u);
  EXPECT_GE(worker->framesSent(), 1u);
  EXPECT_GE(worker->framesReceived(), 1u);
  EXPECT_EQ(worker->decodeErrors(), 0u);

  // And the master's publish to the metrics registry includes frames.
  auto& reg = spine.metrics();
  EXPECT_GE(reg.counter("net.frames_out").value(), 1);
  EXPECT_GE(reg.counter("net.frames_in").value(), 1);
  EXPECT_EQ(reg.counter("net.decode_errors").value(), 0);
}

TEST(TcpTransport, TraceContextRidesTheWireBothWays) {
  TcpCommWorld master(0);
  auto worker = joinWorker(master);

  master.send(0, 1, 5, payload(1), /*traceId=*/42, /*parentSpan=*/1000);
  Message onWorker = worker->recv(1, 0, 5);
  EXPECT_EQ(onWorker.traceId, 42u);
  EXPECT_EQ(onWorker.parentSpan, 1000u);

  worker->send(1, 0, 6, payload(2), onWorker.traceId, onWorker.parentSpan);
  Message onMaster = master.recv(0, 1, 6);
  EXPECT_EQ(onMaster.traceId, 42u);
  EXPECT_EQ(onMaster.parentSpan, 1000u);
}

TEST(TcpTransport, FleetSnapshotsAggregateOnMaster) {
  telemetry::NoopSink sink;
  telemetry::Telemetry spine(sink);
  TcpCommWorld::Options opts;
  opts.telemetry = &spine;
  opts.heartbeatIntervalSeconds = 0.05;
  TcpCommWorld master(0, opts);

  TcpWorkerTransport::Options wopts;
  wopts.heartbeatIntervalSeconds = 0.05;
  auto worker = joinWorker(master, wopts);
  worker->setStatsProvider(
      [] { return WorkerStats{/*tasksExecuted=*/7, /*tasksFailed=*/1, 0.25}; });

  // Drive both event loops until the snapshot lands: the master's pump
  // sends heartbeats, the worker's recv path reads them (storing the echo
  // stamp the beat thread ships back), and the master's pump then folds
  // the returning snapshot into fleetHealth().
  bool seen = false;
  for (int i = 0; i < 100 && !seen; ++i) {
    (void)worker->recvFor(1, 0.02, 0, 99);
    (void)master.recvFor(0, 0.03, kAnySource, 99);
    const auto fleet = master.fleetHealth();
    seen = !fleet.empty() && fleet[0].seen && fleet[0].rttSeconds >= 0.0;
  }
  ASSERT_TRUE(seen);
  const auto fleet = master.fleetHealth();
  EXPECT_EQ(fleet[0].tasksExecuted, 7u);
  EXPECT_EQ(fleet[0].tasksFailed, 1u);
  EXPECT_DOUBLE_EQ(fleet[0].executeEwmaSeconds, 0.25);
  EXPECT_GE(fleet[0].rttSeconds, 0.0);
  EXPECT_LT(fleet[0].rttSeconds, 5.0);

  // The per-rank gauges mirror the snapshot.
  auto& reg = spine.metrics();
  EXPECT_EQ(reg.gauge("fleet.r1.tasks_executed").value(), 7.0);
  EXPECT_EQ(reg.gauge("fleet.r1.tasks_failed").value(), 1.0);
  EXPECT_DOUBLE_EQ(reg.gauge("fleet.r1.execute_ewma_seconds").value(), 0.25);

  worker->setStatsProvider({});  // barrier before the provider state dies
}

}  // namespace
