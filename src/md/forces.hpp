#pragma once

#include "md/neighbor_list.hpp"
#include "md/system.hpp"

namespace sfopt::md {

/// Energy/virial decomposition of one force evaluation.
struct ForceResult {
  double potential = 0.0;       ///< total potential energy, kcal/mol
  double lennardJones = 0.0;    ///< O-O LJ part
  double coulomb = 0.0;         ///< site-site electrostatic part
  double intramolecular = 0.0;  ///< bond + angle part
  double virial = 0.0;          ///< sum over pairs of r . F, kcal/mol
};

/// Compute forces into sys.forces (overwriting) and return the energy
/// decomposition.
///
/// Interactions:
///  * O-O Lennard-Jones with the parameters under optimization, truncated
///    and force-shifted at the cutoff (continuous energy and force, so NVE
///    drift stays small);
///  * site-site Coulomb (qO = -2 qH) with the same force-shifted
///    truncation — the standard minimum-image shifted-force electrostatics
///    of compact MD codes;
///  * harmonic O-H bonds and H-O-H angle (flexible SPC/Fw-style geometry).
/// Intramolecular site pairs are excluded from the nonbonded terms.
[[nodiscard]] ForceResult computeForces(WaterSystem& sys);

/// Same computation, but the nonbonded loop walks only the neighbor
/// list's pairs (the list must be current: call list.update(sys) first).
/// Identical results to the all-pairs path whenever the list radius
/// covers the cutoff — pinned down by the equivalence tests.
[[nodiscard]] ForceResult computeForces(WaterSystem& sys, const NeighborList& list);

/// Instantaneous virial pressure in atm:
///   P = (2 K + W) / (3 V)   with K kinetic energy and W the virial.
[[nodiscard]] double pressureAtm(const WaterSystem& sys, double virialKcalPerMol);

/// Standard homogeneous-fluid Lennard-Jones tail corrections beyond the
/// cutoff (Allen & Tildesley): assuming g(r) = 1 for r > rc,
///   U_tail = (8/3) pi rho N eps sigma^3 [ (1/3)(sigma/rc)^9 - (sigma/rc)^3 ]
///   P_tail = (16/3) pi rho^2  eps sigma^3 [ (2/3)(sigma/rc)^9 - (sigma/rc)^3 ]
/// with rho the OXYGEN number density (LJ acts on O-O pairs only).
struct TailCorrections {
  double energyKcalPerMol = 0.0;  ///< whole-box energy correction
  double pressureAtm = 0.0;       ///< pressure correction
};
[[nodiscard]] TailCorrections ljTailCorrections(const WaterSystem& sys);

}  // namespace sfopt::md
