#pragma once

#include <memory>

#include "telemetry/clock.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/sink.hpp"
#include "telemetry/span.hpp"

namespace sfopt::telemetry {

/// The observability spine: one MetricsRegistry + one SpanTracer + one
/// EventSink + one Clock, wired together.  Components take a `Telemetry*`
/// (nullptr = uninstrumented, zero overhead), pre-register their metric
/// handles once, and touch only atomics on hot paths.
///
/// Ownership: the sink and clock are non-owning references by default so
/// the CLI can hold a JsonlSink whose lifetime it controls; the
/// default-constructed facade uses an internal NoopSink and SteadyClock.
class Telemetry {
 public:
  /// No-op sink, steady clock: metrics accumulate, events are dropped.
  Telemetry() : sink_(&ownNoop_), clock_(&ownClock_), tracer_(*sink_, *clock_) {}

  /// External sink, internal steady clock.
  explicit Telemetry(EventSink& sink)
      : sink_(&sink), clock_(&ownClock_), tracer_(*sink_, *clock_) {}

  /// External sink and clock (tests: JsonlSink/ManualClock).
  Telemetry(EventSink& sink, const Clock& clock)
      : sink_(&sink), clock_(&clock), tracer_(*sink_, *clock_) {}

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const noexcept { return metrics_; }
  [[nodiscard]] SpanTracer& tracer() noexcept { return tracer_; }
  [[nodiscard]] EventSink& sink() noexcept { return *sink_; }
  [[nodiscard]] const Clock& clock() const noexcept { return *clock_; }

  /// Process-wide default instance (no-op sink).  Benches and ad-hoc
  /// instrumentation can use it without wiring; runs that export plug
  /// their own instance instead.
  [[nodiscard]] static Telemetry& global();

 private:
  NoopSink ownNoop_;
  SteadyClock ownClock_;
  MetricsRegistry metrics_;
  EventSink* sink_;
  const Clock* clock_;
  SpanTracer tracer_;
};

}  // namespace sfopt::telemetry
