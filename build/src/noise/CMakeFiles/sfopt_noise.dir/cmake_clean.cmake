file(REMOVE_RECURSE
  "CMakeFiles/sfopt_noise.dir/rng.cpp.o"
  "CMakeFiles/sfopt_noise.dir/rng.cpp.o.d"
  "libsfopt_noise.a"
  "libsfopt_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfopt_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
