#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/algorithms.hpp"
#include "core/result.hpp"
#include "core/simplex.hpp"
#include "telemetry/clock.hpp"

namespace sfopt::telemetry {
class Telemetry;
class Counter;
class Histogram;
}

namespace sfopt::core::detail {

/// Pre-registered telemetry handles of the engine layer.  All pointers are
/// non-null exactly when `telemetry` is non-null; hot paths test the one
/// pointer and then touch only relaxed atomics.
struct EngineTelemetry {
  telemetry::Telemetry* telemetry = nullptr;
  telemetry::Counter* iterations = nullptr;
  telemetry::Counter* moves[4] = {};  ///< indexed by MoveKind
  telemetry::Counter* gateWaitRounds = nullptr;
  telemetry::Counter* resampleRounds = nullptr;
  telemetry::Counter* forcedResolutions = nullptr;
  telemetry::Counter* comparisons = nullptr;
  telemetry::Histogram* stepWallSeconds = nullptr;
  telemetry::Histogram* gateStallSeconds = nullptr;    ///< virtual seconds per gate
  telemetry::Histogram* roundsPerComparison = nullptr;
  std::uint64_t runSpanId = 0;  ///< parent of the per-iteration spans
};

/// Machinery shared by the DET/MN/Anderson engine and the PC engine:
/// initial simplex construction, trial-vertex creation with concurrent
/// time charging, collapse, termination checks, tracing and result
/// assembly.  Internal API — exercised directly by unit tests, but not
/// part of the stable public surface.
class EngineBase {
 public:
  EngineBase(const noise::StochasticObjective& objective, const CommonOptions& common);

  /// Build the d+1 vertex simplex from the initial points; all vertices
  /// are sampled "concurrently" so creation is charged once.
  [[nodiscard]] Simplex buildInitialSimplex(std::span<const Point> points);

  /// Rebuild the simplex and all run accounting from a checkpoint.
  [[nodiscard]] Simplex buildFromCheckpoint(const SimplexCheckpoint& cp);

  /// Snapshot the current state at an iteration boundary.
  [[nodiscard]] SimplexCheckpoint snapshot(const Simplex& s, std::int64_t iteration) const;

  /// Honor CommonOptions::checkpointEvery / checkpointSink.
  void maybeCheckpoint(const Simplex& s, std::int64_t iteration);

  /// Create and sample a trial vertex; the trial runs on its own worker,
  /// so the clock advances by its own sampling duration.
  [[nodiscard]] std::unique_ptr<Vertex> createTrial(Point x, std::int64_t samples);

  /// Sample count for a freshly created trial vertex: matched to the most
  /// sampled simplex vertex so its precision is comparable to the vertices
  /// it will be tested against (see DESIGN.md, "trial vertices").
  [[nodiscard]] std::int64_t matchedTrialSamples(const Simplex& s) const;

  /// Shrink every non-min vertex halfway toward the min vertex; fresh
  /// vertices are created (their old estimates are no longer valid) and
  /// sampled concurrently.  Updates the contraction level.
  void collapse(Simplex& s, std::size_t minIndex);

  /// Returns the termination reason if any criterion has fired.
  [[nodiscard]] std::optional<TerminationReason> shouldStop(const Simplex& s,
                                                            std::int64_t iteration) const;

  /// True when the simulated-time budget is already exhausted (checked
  /// inside wait/resample loops so they cannot overrun the budget
  /// unboundedly).
  [[nodiscard]] bool timeExhausted() const;

  /// Record a trace row if tracing is enabled.
  void maybeRecord(const Simplex& s, MoveKind move, std::int64_t iteration);

  /// Assemble the final result from the simplex state.
  [[nodiscard]] OptimizationResult finish(const Simplex& s, std::int64_t iterations,
                                          TerminationReason reason);

  [[nodiscard]] SamplingContext& ctx() noexcept { return ctx_; }
  [[nodiscard]] MoveCounters& counters() noexcept { return counters_; }
  [[nodiscard]] const CommonOptions& common() const noexcept { return common_; }

  /// Engine-layer telemetry handles; `telemetry` is nullptr when the run
  /// is uninstrumented.
  [[nodiscard]] EngineTelemetry& tel() noexcept { return tel_; }

  /// The wall clock per-step times are measured on: the telemetry clock
  /// when one is attached (injectable in tests), a steady clock otherwise.
  [[nodiscard]] const telemetry::Clock& wallClock() const noexcept {
    return *wallClock_;
  }

 private:
  const noise::StochasticObjective& objective_;
  CommonOptions common_;
  SamplingContext ctx_;
  MoveCounters counters_;
  OptimizationTrace trace_;
  EngineTelemetry tel_;
  telemetry::SteadyClock fallbackClock_;
  const telemetry::Clock* wallClock_ = nullptr;
  double lastStepWallMark_ = 0.0;
  std::int64_t lastResampleMark_ = 0;
};

/// The max-noise wait gate (eq. 2.3): sample all simplex vertices (plus any
/// active trial vertices, to keep them precision-matched) concurrently
/// until max_i sigma_i^2 <= k * internalVariance, the time budget runs out,
/// or every vertex hits the sample cap.
void maxNoiseGateWait(EngineBase& eng, Simplex& s, std::span<Vertex* const> activeTrials,
                      double k, const ResamplePolicy& policy);

/// The Anderson gate (eq. 2.4): sample until every vertex satisfies
/// sigma_i^2 < k1 * 2^{-l (1 + k2)} with l the contraction level.
void andersonGateWait(EngineBase& eng, Simplex& s, std::span<Vertex* const> activeTrials,
                      double k1, double k2, const ResamplePolicy& policy);

}  // namespace sfopt::core::detail
