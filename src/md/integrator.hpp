#pragma once

#include <memory>

#include "md/forces.hpp"
#include "md/neighbor_list.hpp"
#include "md/system.hpp"

namespace sfopt::md {

/// Velocity-Verlet integrator with an optional Berendsen weak-coupling
/// thermostat (used for NVT equilibration; disabled for NVE production).
class VelocityVerlet {
 public:
  struct Options {
    double dtPs = 0.0005;         ///< timestep (0.5 fs default, flexible water)
    double targetTemperatureK = 0.0;  ///< 0 disables the thermostat (NVE)
    double berendsenTauPs = 0.1;  ///< thermostat coupling time
    /// Use a Verlet neighbor list for the nonbonded loop (auto-rebuilt
    /// whenever a site drifts more than skin/2).  Requires
    /// cutoff + skin <= box/2.
    bool useNeighborList = false;
    double neighborSkin = 1.0;    ///< A
  };

  VelocityVerlet(WaterSystem& sys, Options options);

  /// Advance one step; returns the force-evaluation result at the new
  /// positions (forces are kept consistent with positions).
  ForceResult step();

  /// Advance n steps, returning the last force result.
  ForceResult run(int steps);

  [[nodiscard]] const Options& options() const noexcept { return options_; }
  [[nodiscard]] const ForceResult& lastForces() const noexcept { return last_; }

  /// Rebuild count of the neighbor list (0 when lists are disabled).
  [[nodiscard]] std::int64_t neighborRebuilds() const noexcept {
    return list_ ? list_->rebuilds() : 0;
  }

 private:
  ForceResult evaluateForces();

  WaterSystem& sys_;
  Options options_;
  std::unique_ptr<NeighborList> list_;
  ForceResult last_;
};

}  // namespace sfopt::md
