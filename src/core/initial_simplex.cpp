#include "core/initial_simplex.hpp"

#include <stdexcept>

namespace sfopt::core {

std::vector<Point> randomSimplexPoints(std::size_t dimension, double lo, double hi,
                                       noise::RngStream& rng) {
  if (dimension < 2) throw std::invalid_argument("randomSimplexPoints: dimension must be >= 2");
  if (!(lo < hi)) throw std::invalid_argument("randomSimplexPoints: requires lo < hi");
  std::vector<Point> pts(dimension + 1, Point(dimension));
  for (auto& p : pts) {
    for (double& c : p) c = rng.uniform(lo, hi);
  }
  return pts;
}

std::vector<Point> axisSimplexPoints(const Point& origin, double scale) {
  if (origin.size() < 2) throw std::invalid_argument("axisSimplexPoints: dimension must be >= 2");
  if (scale == 0.0) throw std::invalid_argument("axisSimplexPoints: scale must be nonzero");
  std::vector<Point> pts;
  pts.reserve(origin.size() + 1);
  pts.push_back(origin);
  for (std::size_t i = 0; i < origin.size(); ++i) {
    Point p = origin;
    p[i] += scale;
    pts.push_back(std::move(p));
  }
  return pts;
}

}  // namespace sfopt::core
