#include "core/checkpoint.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "core/algorithms.hpp"
#include "tests/core/test_helpers.hpp"

namespace {

namespace fs = std::filesystem;
using namespace sfopt;
using core::SimplexCheckpoint;

SimplexCheckpoint sampleCheckpoint() {
  SimplexCheckpoint cp;
  cp.iteration = 17;
  cp.clock = 12345.6789012345;
  cp.totalSamples = 4242;
  cp.nextVertexId = 99;
  cp.contractionLevel = 3;
  cp.counters.reflections = 10;
  cp.counters.collapses = 2;
  cp.counters.gateWaitRounds = 7;
  for (int i = 0; i < 3; ++i) {
    core::VertexCheckpoint v;
    v.x = {1.0 / 3.0 + i, -2.0 / 7.0};
    v.id = static_cast<std::uint64_t>(i);
    v.samples = 100 + i;
    v.mean = 0.1 * i + 1e-17;  // exercise exact fp round-trip
    v.m2 = 3.14159 * i;
    cp.vertices.push_back(std::move(v));
  }
  return cp;
}

TEST(Checkpoint, StreamRoundTripIsExact) {
  const auto cp = sampleCheckpoint();
  std::stringstream ss;
  core::writeCheckpoint(ss, cp);
  const auto back = core::readCheckpoint(ss);
  EXPECT_EQ(back.iteration, cp.iteration);
  EXPECT_EQ(back.clock, cp.clock);  // bitwise via hexfloat
  EXPECT_EQ(back.totalSamples, cp.totalSamples);
  EXPECT_EQ(back.nextVertexId, cp.nextVertexId);
  EXPECT_EQ(back.contractionLevel, cp.contractionLevel);
  EXPECT_EQ(back.counters.reflections, cp.counters.reflections);
  EXPECT_EQ(back.counters.gateWaitRounds, cp.counters.gateWaitRounds);
  ASSERT_EQ(back.vertices.size(), cp.vertices.size());
  for (std::size_t i = 0; i < cp.vertices.size(); ++i) {
    EXPECT_EQ(back.vertices[i].x, cp.vertices[i].x);
    EXPECT_EQ(back.vertices[i].id, cp.vertices[i].id);
    EXPECT_EQ(back.vertices[i].samples, cp.vertices[i].samples);
    EXPECT_EQ(back.vertices[i].mean, cp.vertices[i].mean);
    EXPECT_EQ(back.vertices[i].m2, cp.vertices[i].m2);
  }
}

TEST(Checkpoint, FileRoundTrip) {
  const fs::path path = fs::temp_directory_path() / "sfopt_checkpoint_test.ckpt";
  fs::remove(path);
  const auto cp = sampleCheckpoint();
  core::saveCheckpoint(path, cp);
  const auto back = core::loadCheckpoint(path);
  EXPECT_EQ(back.iteration, cp.iteration);
  EXPECT_EQ(back.vertices.size(), cp.vertices.size());
  fs::remove(path);
}

TEST(Checkpoint, MalformedInputRejected) {
  {
    std::stringstream ss("not-a-checkpoint v1\n");
    EXPECT_THROW((void)core::readCheckpoint(ss), std::runtime_error);
  }
  {
    std::stringstream ss("sfopt-checkpoint v9\n");
    EXPECT_THROW((void)core::readCheckpoint(ss), std::runtime_error);
  }
  {
    std::stringstream ss("sfopt-checkpoint v1\niteration 5\nclock garbage\n");
    EXPECT_THROW((void)core::readCheckpoint(ss), std::runtime_error);
  }
  EXPECT_THROW((void)core::loadCheckpoint("/no/such/file.ckpt"), std::runtime_error);
}

/// The central property: resuming from an iteration-k snapshot continues
/// the run EXACTLY as if it had never been interrupted.
template <typename Options, typename RunFn>
void resumeEqualsUninterrupted(Options options, RunFn run) {
  auto obj = test::noisyRosenbrock(3, 20.0, 808);
  const auto start = test::simpleStart(3, -1.0, 0.8);

  options.common.termination.tolerance = 1e-4;
  options.common.termination.maxIterations = 60;
  options.common.termination.maxSamples = 500'000;

  // Uninterrupted reference.
  const auto full = run(obj, start, options);

  // Interrupted at iteration 20: capture the snapshot...
  SimplexCheckpoint at20;
  bool captured = false;
  Options first = options;
  first.common.termination.maxIterations = 20;
  first.common.checkpointEvery = 20;
  first.common.checkpointSink = [&](const SimplexCheckpoint& cp) {
    at20 = cp;
    captured = true;
  };
  (void)run(obj, start, first);
  ASSERT_TRUE(captured);
  EXPECT_EQ(at20.iteration, 20);

  // ...and resume to the same horizon.
  Options second = options;
  second.common.resumeFrom = &at20;
  const auto resumed = run(obj, start, second);

  EXPECT_EQ(resumed.iterations, full.iterations);
  EXPECT_EQ(resumed.totalSamples, full.totalSamples);
  EXPECT_EQ(resumed.best, full.best);
  EXPECT_DOUBLE_EQ(resumed.bestEstimate, full.bestEstimate);
  EXPECT_EQ(resumed.reason, full.reason);
  EXPECT_EQ(resumed.counters.reflections, full.counters.reflections);
  EXPECT_EQ(resumed.counters.collapses, full.counters.collapses);
}

TEST(Checkpoint, ResumeEqualsUninterruptedMN) {
  resumeEqualsUninterrupted(core::MaxNoiseOptions{},
                            [](const auto& obj, const auto& start, const auto& o) {
                              return core::runMaxNoise(obj, start, o);
                            });
}

TEST(Checkpoint, ResumeEqualsUninterruptedDET) {
  resumeEqualsUninterrupted(core::DetOptions{},
                            [](const auto& obj, const auto& start, const auto& o) {
                              return core::runDeterministic(obj, start, o);
                            });
}

TEST(Checkpoint, ResumeEqualsUninterruptedPC) {
  resumeEqualsUninterrupted(core::PCOptions{},
                            [](const auto& obj, const auto& start, const auto& o) {
                              return core::runPointToPoint(obj, start, o);
                            });
}

TEST(Checkpoint, ResumeSurvivesDiskRoundTrip) {
  auto obj = test::noisySphere(2, 5.0, 303);
  const auto start = test::simpleStart(2);
  core::MaxNoiseOptions options;
  options.common.termination.tolerance = 1e-4;
  options.common.termination.maxIterations = 40;
  options.common.termination.maxSamples = 300'000;

  const auto full = core::runMaxNoise(obj, start, options);

  const fs::path path = fs::temp_directory_path() / "sfopt_resume_disk.ckpt";
  fs::remove(path);
  core::MaxNoiseOptions first = options;
  first.common.termination.maxIterations = 15;
  first.common.checkpointEvery = 15;
  first.common.checkpointSink = [&](const SimplexCheckpoint& cp) {
    core::saveCheckpoint(path, cp);
  };
  (void)core::runMaxNoise(obj, start, first);
  ASSERT_TRUE(fs::exists(path));

  const auto restored = core::loadCheckpoint(path);
  core::MaxNoiseOptions second = options;
  second.common.resumeFrom = &restored;
  const auto resumed = core::runMaxNoise(obj, start, second);
  EXPECT_EQ(resumed.best, full.best);
  EXPECT_EQ(resumed.totalSamples, full.totalSamples);
  fs::remove(path);
}

TEST(Checkpoint, WrongVertexCountRejected) {
  auto obj = test::noisySphere(3, 1.0);
  SimplexCheckpoint cp = sampleCheckpoint();  // 3 vertices => d = 2, not 3
  core::MaxNoiseOptions options;
  options.common.resumeFrom = &cp;
  EXPECT_THROW((void)core::runMaxNoise(obj, test::simpleStart(3), options),
               std::invalid_argument);
}

}  // namespace
