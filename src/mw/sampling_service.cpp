#include "mw/sampling_service.hpp"

#include <algorithm>

namespace sfopt::mw {

void SamplingTask::packInput(MessageBuffer& buf) const {
  buf.pack(std::span<const double>(x_));
  buf.pack(vertexId_);
  buf.pack(startIndex_);
  buf.pack(count_);
}

void SamplingTask::unpackInput(MessageBuffer& buf) {
  x_ = buf.unpackDoubleVector();
  vertexId_ = buf.unpackUint64();
  startIndex_ = buf.unpackUint64();
  count_ = buf.unpackInt64();
}

void SamplingTask::packResult(MessageBuffer& buf) const {
  buf.pack(static_cast<std::int64_t>(chunks_.size()));
  for (const stats::Welford& c : chunks_) {
    buf.pack(c.count());
    buf.pack(c.mean());
    buf.pack(c.sumSquaredDeviations());
  }
}

void SamplingTask::unpackResult(MessageBuffer& buf) {
  const std::int64_t n = buf.unpackInt64();
  chunks_.clear();
  chunks_.reserve(static_cast<std::size_t>(std::max<std::int64_t>(n, 0)));
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t count = buf.unpackInt64();
    const double mean = buf.unpackDouble();
    const double m2 = buf.unpackDouble();
    chunks_.push_back(stats::Welford::fromMoments(count, mean, m2));
  }
}

SamplingWorker::SamplingWorker(net::Transport& comm, Rank rank,
                               const noise::StochasticObjective& objective, int clients)
    : MWWorker(comm, rank), server_(objective, clients) {}

void SamplingWorker::executeTask(MessageBuffer& in, MessageBuffer& out) {
  SamplingTask task;
  task.unpackInput(in);
  const core::SamplingBackend::BatchRequest req{task.x(), task.vertexId(), task.startIndex(),
                                                task.count()};
  task.setChunks(server_.runBatchChunks(req));
  task.packResult(out);
}

stats::Welford MWSamplingBackend::sampleBatch(const BatchRequest& request) {
  const BatchRequest reqs[] = {request};
  return sampleBatches(reqs).front();
}

std::vector<stats::Welford> MWSamplingBackend::sampleBatches(
    std::span<const BatchRequest> requests) {
  // Capped vertices arrive as zero-count requests; computing nothing does
  // not need a worker round trip, so only real batches go on the wire and
  // results are mapped back to their slots by index.
  std::vector<stats::Welford> out(requests.size());
  std::vector<SamplingTask> tasks;
  std::vector<std::size_t> slot;
  tasks.reserve(requests.size());
  slot.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].count == 0) continue;
    tasks.emplace_back(requests[i]);
    slot.push_back(i);
  }
  if (tasks.empty()) return out;
  std::vector<MWTask*> ptrs;
  ptrs.reserve(tasks.size());
  for (auto& t : tasks) ptrs.push_back(&t);
  driver_.executeTasks(ptrs);
  for (std::size_t j = 0; j < tasks.size(); ++j) {
    out[slot[j]] = tasks[j].result();
  }
  return out;
}

std::uint64_t MWSamplingBackend::AsyncAdapter::submit(
    const core::SamplingBackend::BatchRequest& request) {
  SamplingTask task(request);
  MessageBuffer buf;
  task.packInput(buf);
  return driver_.submit(std::move(buf));
}

std::vector<core::AsyncSamplingBackend::Completion> MWSamplingBackend::AsyncAdapter::poll(
    double timeoutSeconds) {
  auto done = driver_.poll(timeoutSeconds);
  std::vector<Completion> out;
  out.reserve(done.size());
  for (auto& c : done) {
    SamplingTask task;
    task.unpackResult(c.payload);
    out.push_back(Completion{c.id, task.releaseChunks()});
  }
  return out;
}

int MWSamplingBackend::AsyncAdapter::parallelism() const {
  return std::max(driver_.liveWorkerCount(), 1);
}

}  // namespace sfopt::mw
