file(REMOVE_RECURSE
  "libsfopt_water.a"
)
