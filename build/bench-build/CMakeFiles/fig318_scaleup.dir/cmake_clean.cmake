file(REMOVE_RECURSE
  "../bench/fig318_scaleup"
  "../bench/fig318_scaleup.pdb"
  "CMakeFiles/fig318_scaleup.dir/fig318_scaleup.cpp.o"
  "CMakeFiles/fig318_scaleup.dir/fig318_scaleup.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig318_scaleup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
