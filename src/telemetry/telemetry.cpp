#include "telemetry/telemetry.hpp"

namespace sfopt::telemetry {

Telemetry& Telemetry::global() {
  static Telemetry instance;
  return instance;
}

}  // namespace sfopt::telemetry
