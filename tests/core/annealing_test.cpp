#include "core/annealing.hpp"

#include <gtest/gtest.h>

#include "stats/performance.hpp"
#include "tests/core/test_helpers.hpp"

namespace {

using namespace sfopt;
using core::AnnealingOptions;
using core::runSimulatedAnnealing;
using core::TerminationReason;

AnnealingOptions quickSa(std::uint64_t seed = 0x5A) {
  AnnealingOptions o;
  o.initialTemperature = 5.0;
  o.coolingRate = 0.9;
  o.sweepSize = 20;
  o.stepScale = 1.0;
  o.termination.tolerance = 1e-3;  // temperature floor
  o.termination.maxIterations = 200;
  o.termination.maxSamples = 400'000;
  o.seed = seed;
  return o;
}

TEST(Annealing, Validation) {
  auto obj = test::noisySphere(2, 0.0);
  EXPECT_THROW((void)runSimulatedAnnealing(obj, {1.0}, quickSa()), std::invalid_argument);
  AnnealingOptions bad = quickSa();
  bad.initialTemperature = 0.0;
  EXPECT_THROW((void)runSimulatedAnnealing(obj, {1.0, 1.0}, bad), std::invalid_argument);
  bad = quickSa();
  bad.coolingRate = 1.0;
  EXPECT_THROW((void)runSimulatedAnnealing(obj, {1.0, 1.0}, bad), std::invalid_argument);
  bad = quickSa();
  bad.sweepSize = 0;
  EXPECT_THROW((void)runSimulatedAnnealing(obj, {1.0, 1.0}, bad), std::invalid_argument);
}

TEST(Annealing, ConvergesOnNoiselessSphere) {
  auto obj = test::noisySphere(2, 0.0);
  const auto res = runSimulatedAnnealing(obj, {3.0, -3.0}, quickSa());
  EXPECT_EQ(res.reason, TerminationReason::Converged);  // temperature floor
  ASSERT_TRUE(res.bestTrue.has_value());
  EXPECT_LT(*res.bestTrue, 0.5);
}

TEST(Annealing, HandlesNoise) {
  auto obj = test::noisySphere(2, 2.0);
  const auto res = runSimulatedAnnealing(obj, {3.0, -3.0}, quickSa());
  ASSERT_TRUE(res.bestTrue.has_value());
  EXPECT_LT(*res.bestTrue, 3.0);
}

TEST(Annealing, EscapesRastriginLocalMinimum) {
  // Start in the (2,2) local basin; with a hot start SA should find a
  // basin at least as good, usually better.
  noise::NoisyFunction::Options no;
  no.sigma0 = 0.05;
  no.seed = 77;
  noise::NoisyFunction obj(
      2, [](std::span<const double> x) { return testfunctions::rastrigin(x); }, no);
  AnnealingOptions o = quickSa(9);
  o.initialTemperature = 20.0;
  o.stepScale = 1.5;
  const auto res = runSimulatedAnnealing(obj, {2.0, 2.0}, o);
  ASSERT_TRUE(res.bestTrue.has_value());
  // f(2,2) ~ 8; anything under 5 means it left the starting basin.
  EXPECT_LT(*res.bestTrue, 5.0);
}

TEST(Annealing, ReproducibleBySeed) {
  auto obj1 = test::noisySphere(2, 1.0);
  auto obj2 = test::noisySphere(2, 1.0);
  const auto a = runSimulatedAnnealing(obj1, {2.0, 2.0}, quickSa(3));
  const auto b = runSimulatedAnnealing(obj2, {2.0, 2.0}, quickSa(3));
  EXPECT_EQ(a.best, b.best);
  const auto c = runSimulatedAnnealing(obj1, {2.0, 2.0}, quickSa(4));
  EXPECT_NE(a.best, c.best);
}

TEST(Annealing, RespectsBudgets) {
  auto obj = test::noisySphere(2, 1.0);
  AnnealingOptions o = quickSa();
  o.termination.tolerance = 0.0;  // never hit the temperature floor
  o.termination.maxIterations = 7;
  o.termination.maxSamples = 0;
  const auto res = runSimulatedAnnealing(obj, {1.0, 1.0}, o);
  EXPECT_EQ(res.reason, TerminationReason::IterationLimit);
  EXPECT_EQ(res.iterations, 7);

  o.termination.maxIterations = 1'000'000;
  o.termination.maxSamples = 500;
  const auto res2 = runSimulatedAnnealing(obj, {1.0, 1.0}, o);
  EXPECT_EQ(res2.reason, TerminationReason::SampleLimit);
}

TEST(Annealing, TraceTracksBest) {
  auto obj = test::noisySphere(2, 0.5);
  AnnealingOptions o = quickSa();
  o.recordTrace = true;
  o.termination.maxIterations = 30;
  o.termination.tolerance = 0.0;
  const auto res = runSimulatedAnnealing(obj, {3.0, 3.0}, o);
  ASSERT_EQ(static_cast<std::int64_t>(res.trace.size()), res.iterations);
  // Best estimate in the trace is non-increasing (best-so-far tracking).
  double last = res.trace.steps().front().bestEstimate;
  for (const auto& s : res.trace.steps()) {
    EXPECT_LE(s.bestEstimate, last + 1e-12);
    last = s.bestEstimate;
  }
}

TEST(AdaptiveCoefficients, MatchClassicalAtD2) {
  const auto c = core::adaptiveSimplexCoefficients(2);
  EXPECT_DOUBLE_EQ(c.reflection, 1.0);
  EXPECT_DOUBLE_EQ(c.expansion, 2.0);
  EXPECT_DOUBLE_EQ(c.contraction, 0.5);
  EXPECT_DOUBLE_EQ(c.shrink, 0.5);
  EXPECT_THROW((void)core::adaptiveSimplexCoefficients(1), std::invalid_argument);
}

TEST(AdaptiveCoefficients, GentlerInHighDimensions) {
  const auto c = core::adaptiveSimplexCoefficients(20);
  EXPECT_DOUBLE_EQ(c.expansion, 1.1);
  EXPECT_DOUBLE_EQ(c.contraction, 0.725);
  EXPECT_DOUBLE_EQ(c.shrink, 0.95);
}

TEST(AdaptiveCoefficients, EnginesAcceptThem) {
  auto obj = test::noisySphere(8, 0.0, 21);
  core::MaxNoiseOptions o;
  o.common.coefficients = core::adaptiveSimplexCoefficients(8);
  o.common.termination.tolerance = 1e-8;
  o.common.termination.maxIterations = 5000;
  const auto res = core::runMaxNoise(obj, test::simpleStart(8, -1.0, 0.7), o);
  ASSERT_TRUE(res.bestTrue.has_value());
  EXPECT_LT(*res.bestTrue, 1e-3);
}

}  // namespace
