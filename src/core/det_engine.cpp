// Engine for Algorithm 1 (DET), Algorithm 2 (MN) and the Anderson-criterion
// variant: all three share the classical Nelder-Mead decision tree and
// differ only in the wait gate applied before the decisions.

#include <memory>

#include "core/algorithms.hpp"
#include "core/engine_base.hpp"

namespace sfopt::core {

namespace {

enum class GateKind { None, MaxNoise, Anderson };

struct GateSpec {
  GateKind kind = GateKind::None;
  double a = 0.0;  // MN: k.  Anderson: k1.
  double b = 0.0;  // Anderson: k2.
  bool matchTrials = true;
  ResamplePolicy policy;
};

OptimizationResult runClassicTree(const noise::StochasticObjective& objective,
                                  std::span<const Point> initial, const CommonOptions& common,
                                  const GateSpec& gate) {
  detail::EngineBase eng(objective, common);
  const SimplexCoefficients& coef = common.coefficients;
  Simplex s = common.resumeFrom ? eng.buildFromCheckpoint(*common.resumeFrom)
                                : eng.buildInitialSimplex(initial);
  std::int64_t iter = common.resumeFrom ? common.resumeFrom->iteration : 0;
  TerminationReason reason = TerminationReason::IterationLimit;

  for (;;) {
    if (auto stop = eng.shouldStop(s, iter)) {
      reason = *stop;
      break;
    }
    const Simplex::Ordering o = s.ordering();
    const Point cent = s.centroidExcluding(o.max);

    // Reflection trial, optionally precision-matched to the simplex
    // vertices (it runs on its own worker, sampling continuously).
    const auto trialSamples = [&](const Simplex& sx) {
      return gate.matchTrials ? eng.matchedTrialSamples(sx)
                              : common.initialSamplesPerVertex;
    };
    auto ref = eng.createTrial(reflectPoint(cent, s.at(o.max).point(), coef.reflection),
                               trialSamples(s));

    // The wait gate (lines 4-6 of Algorithm 2): postpone the decision until
    // the vertex noise is small relative to the internal spread.  The
    // active reflection trial is co-sampled to stay precision-matched.
    Vertex* trials[] = {ref.get()};
    if (gate.kind == GateKind::MaxNoise) {
      detail::maxNoiseGateWait(eng, s, trials, gate.a, gate.policy);
    } else if (gate.kind == GateKind::Anderson) {
      detail::andersonGateWait(eng, s, trials, gate.a, gate.b, gate.policy);
    }

    MoveKind move;
    if (ref->mean() < s.at(o.min).mean()) {
      // Reflection beats the best vertex: attempt expansion.
      auto exp = eng.createTrial(expandPoint(ref->point(), cent, coef.expansion),
                                 trialSamples(s));
      if (exp->mean() < ref->mean()) {
        (void)s.replace(o.max, std::move(exp));
        s.noteExpansion();
        ++eng.counters().expansions;
        move = MoveKind::Expansion;
      } else {
        (void)s.replace(o.max, std::move(ref));
        ++eng.counters().reflections;
        move = MoveKind::Reflection;
      }
    } else if (ref->mean() < s.at(o.max).mean()) {
      (void)s.replace(o.max, std::move(ref));
      ++eng.counters().reflections;
      move = MoveKind::Reflection;
    } else {
      auto con = eng.createTrial(contractPoint(s.at(o.max).point(), cent, coef.contraction),
                                 trialSamples(s));
      if (con->mean() < s.at(o.max).mean()) {
        (void)s.replace(o.max, std::move(con));
        s.noteContraction();
        ++eng.counters().contractions;
        move = MoveKind::Contraction;
      } else {
        eng.collapse(s, o.min);
        move = MoveKind::Collapse;
      }
    }
    ++iter;
    eng.maybeRecord(s, move, iter);
    eng.maybeCheckpoint(s, iter);
  }
  return eng.finish(s, iter, reason);
}

}  // namespace

OptimizationResult runDeterministic(const noise::StochasticObjective& objective,
                                    std::span<const Point> initial, const DetOptions& options) {
  return runClassicTree(objective, initial, options.common, GateSpec{});
}

OptimizationResult runMaxNoise(const noise::StochasticObjective& objective,
                               std::span<const Point> initial, const MaxNoiseOptions& options) {
  GateSpec gate;
  gate.kind = GateKind::MaxNoise;
  gate.a = options.k;
  gate.matchTrials = options.matchTrialPrecision;
  gate.policy = options.resample;
  return runClassicTree(objective, initial, options.common, gate);
}

OptimizationResult runAnderson(const noise::StochasticObjective& objective,
                               std::span<const Point> initial, const AndersonOptions& options) {
  GateSpec gate;
  gate.kind = GateKind::Anderson;
  gate.a = options.k1;
  gate.b = options.k2;
  gate.policy = options.resample;
  return runClassicTree(objective, initial, options.common, gate);
}

}  // namespace sfopt::core
