#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/sampling_backend.hpp"
#include "core/vertex.hpp"
#include "noise/stochastic_objective.hpp"
#include "noise/virtual_clock.hpp"

namespace sfopt::telemetry {
class Telemetry;
}

namespace sfopt::core {

class EvalScheduler;

/// Mediates all sampling of a StochasticObjective on behalf of an
/// optimization algorithm, and owns the accounting the paper's experiments
/// report on:
///
///  * the virtual wall clock, advanced under the paper's concurrency model
///    (the d+3 workers sample their vertices simultaneously, so a batch of
///    refinements costs max — not sum — of the per-vertex durations);
///  * the global sample counter (total objective evaluations);
///  * vertex identity, which doubles as the reproducible noise-stream id.
///
/// Algorithms never call the objective directly.
class SamplingContext {
 public:
  struct Options {
    SigmaMode sigmaMode = SigmaMode::Estimated;
    /// Hard cap on samples at any single vertex; a gate or comparison that
    /// still cannot resolve at the cap is forcibly resolved (the paper's
    /// "coincidentally nearly identical vertices" hazard, section 2.3).
    std::int64_t maxSamplesPerVertex = 1'000'000;
    /// Optional sampling backend (non-owning; must outlive the context).
    /// nullptr computes samples inline.
    SamplingBackend* backend = nullptr;
    /// First vertex id handed out.  Distinct contexts over the same
    /// objective should use disjoint id ranges so their noise streams stay
    /// independent (ids key the counter-based RNG).
    std::uint64_t firstVertexId = 0;
    /// Shard a backend batch across workers once it exceeds this many
    /// samples (0 = never shard).  Requires a backend with an async()
    /// interface; ignored otherwise.  Results are bitwise identical to the
    /// unsharded backend path (canonical chunk merge).
    std::int64_t shardMinSamples = 0;
    /// Submit the next round's predicted refinement while the current one
    /// is in flight (see EvalScheduler).  Speculative samples are staged
    /// and only absorbed — and only then charged to the sample counter and
    /// virtual clock — when a round actually consumes them, so trajectories
    /// and the paper's time accounting are bitwise unchanged.
    bool speculate = false;
    /// In-flight shard cap for the scheduler (0 = 2 x backend parallelism).
    int maxOutstandingShards = 0;
    /// Observability spine for the scheduler's eval.* metrics (non-owning).
    telemetry::Telemetry* telemetry = nullptr;
  };

  explicit SamplingContext(const noise::StochasticObjective& objective)
      : SamplingContext(objective, Options{}) {}
  SamplingContext(const noise::StochasticObjective& objective, Options options);
  ~SamplingContext();

  SamplingContext(const SamplingContext&) = delete;
  SamplingContext& operator=(const SamplingContext&) = delete;

  /// Create a vertex at x and take `initialSamples` samples there.
  /// Does NOT advance the clock: creation cost is charged by the caller
  /// through coSample/chargeTime so that concurrent creations (the whole
  /// initial simplex at once) are charged once.
  [[nodiscard]] std::unique_ptr<Vertex> createVertex(Point x, std::int64_t initialSamples);

  /// Take `extra` more samples at v (bounded by maxSamplesPerVertex).
  /// Returns the number actually taken.  Does not advance the clock.
  std::int64_t refine(Vertex& v, std::int64_t extra);

  /// Refine several vertices "in parallel": each gets its requested number
  /// of samples, and the clock advances by max(samples actually taken)*dt.
  /// A vertex listed more than once is coalesced into a single request for
  /// the summed sample count (its worker runs the draws back-to-back, so
  /// the noise-stream indices stay distinct and the charge is the total).
  struct RefineRequest {
    Vertex* vertex = nullptr;
    std::int64_t samples = 0;
  };
  void coSample(std::span<const RefineRequest> requests);
  void coSample(std::initializer_list<RefineRequest> requests);

  /// As above, with a prefetch hint: `nextRoundHint` describes the
  /// refinement the caller expects to issue next if this round does not
  /// resolve its gate/comparison.  With a speculating scheduler the hint
  /// is submitted before this call blocks; otherwise it is ignored.  Hints
  /// never affect results, accounting, or the virtual clock.
  void coSample(std::span<const RefineRequest> requests,
                std::span<const RefineRequest> nextRoundHint);

  /// Charge `samples * dt` of wall time without sampling (used when the
  /// caller has already refined through refine() and knows the concurrent
  /// batch shape).
  void chargeTime(std::int64_t samples);

  /// sigma_i(t_i) for v under the configured SigmaMode.  In Exact mode the
  /// objective must declare a noise scale; falls back to the estimate
  /// otherwise.
  [[nodiscard]] double sigma(const Vertex& v) const;

  /// Noise-free value at v's location, when the objective knows it.
  [[nodiscard]] std::optional<double> trueValue(const Vertex& v) const;

  [[nodiscard]] const noise::StochasticObjective& objective() const noexcept {
    return objective_;
  }
  [[nodiscard]] double now() const noexcept { return clock_.now(); }
  [[nodiscard]] std::int64_t totalSamples() const noexcept { return totalSamples_; }
  [[nodiscard]] std::int64_t verticesCreated() const noexcept {
    return static_cast<std::int64_t>(nextVertexId_ - options_.firstVertexId);
  }
  [[nodiscard]] const Options& options() const noexcept { return options_; }

  /// Restore the accounting of a checkpointed run: the virtual clock, the
  /// global sample counter and the next vertex id.  Only meaningful on a
  /// freshly constructed context (resume path).
  void restoreAccounting(double clockNow, std::int64_t totalSamples,
                         std::uint64_t nextVertexId);

  /// True when v has hit the per-vertex sampling cap.
  [[nodiscard]] bool atSampleCap(const Vertex& v) const noexcept {
    return v.sampleCount() >= options_.maxSamplesPerVertex;
  }

  /// The pipeline scheduler, when one is active (backend with an async()
  /// interface plus sharding or speculation requested); nullptr otherwise.
  [[nodiscard]] const EvalScheduler* scheduler() const noexcept { return scheduler_.get(); }

 private:
  /// Duplicate-free view of a request batch: first-occurrence order, one
  /// entry per vertex with the summed sample count and the take actually
  /// permitted by the per-vertex cap.
  struct CoalescedRequest {
    Vertex* vertex = nullptr;
    std::int64_t take = 0;
  };
  [[nodiscard]] std::vector<CoalescedRequest> coalesce(
      std::span<const RefineRequest> requests) const;

  const noise::StochasticObjective& objective_;
  Options options_;
  noise::VirtualClock clock_;
  std::int64_t totalSamples_ = 0;
  std::uint64_t nextVertexId_;
  std::unique_ptr<EvalScheduler> scheduler_;
};

}  // namespace sfopt::core
