file(REMOVE_RECURSE
  "CMakeFiles/sfopt_cli_lib.dir/arg_parser.cpp.o"
  "CMakeFiles/sfopt_cli_lib.dir/arg_parser.cpp.o.d"
  "CMakeFiles/sfopt_cli_lib.dir/commands.cpp.o"
  "CMakeFiles/sfopt_cli_lib.dir/commands.cpp.o.d"
  "libsfopt_cli_lib.a"
  "libsfopt_cli_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfopt_cli_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
