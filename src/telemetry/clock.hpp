#pragma once

#include <chrono>

namespace sfopt::telemetry {

/// Time source for spans and per-step wall times.  Injectable so tests
/// never depend on real wall-clock behavior: production code uses
/// SteadyClock, tests drive a ManualClock by hand.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Seconds since this clock's epoch (construction for SteadyClock).
  [[nodiscard]] virtual double now() const = 0;
};

/// Monotonic wall clock; epoch is construction time, so event timestamps
/// in one run start near zero.
class SteadyClock final : public Clock {
 public:
  SteadyClock() : epoch_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double now() const override {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_).count();
  }

 private:
  std::chrono::steady_clock::time_point epoch_;
};

/// Hand-driven clock for deterministic tests.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(double start = 0.0) : now_(start) {}
  [[nodiscard]] double now() const override { return now_; }
  void advance(double seconds) { now_ += seconds; }
  void set(double seconds) { now_ = seconds; }

 private:
  double now_;
};

}  // namespace sfopt::telemetry
