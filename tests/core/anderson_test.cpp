#include <gtest/gtest.h>

#include <cmath>

#include "core/algorithms.hpp"
#include "core/engine_base.hpp"
#include "tests/core/test_helpers.hpp"

namespace {

using namespace sfopt;
using core::AndersonOptions;
using core::runAnderson;
using core::TerminationReason;

AndersonOptions andersonOptions(double k1, double k2 = 0.0) {
  AndersonOptions o;
  o.k1 = k1;
  o.k2 = k2;
  o.common.termination.tolerance = 1e-3;
  o.common.termination.maxIterations = 400;
  o.common.termination.maxTime = 1e5;
  o.common.sampling.maxSamplesPerVertex = 100'000;
  return o;
}

TEST(Anderson, ConvergesOnNoiselessSphere) {
  auto obj = test::noisySphere(2, 0.0);
  const auto res = runAnderson(obj, test::simpleStart(2), andersonOptions(1.0));
  EXPECT_EQ(res.reason, TerminationReason::Converged);
  ASSERT_TRUE(res.bestTrue.has_value());
  EXPECT_LT(*res.bestTrue, 1e-2);
}

TEST(Anderson, LooseCutoffActsLikeDeterministicEarly) {
  // k1 = 2^30: the cutoff is astronomically large while the contraction
  // level is small, so over a short run the gate never fires.  (Over long
  // runs the level l eventually grows enough to re-tighten the cutoff —
  // that is the intended behaviour of eq. 2.4, not a bug.)
  auto obj = test::noisySphere(2, 10.0);
  AndersonOptions o = andersonOptions(std::pow(2.0, 30));
  o.common.termination.maxIterations = 15;
  o.common.termination.tolerance = 0.0;
  const auto res = runAnderson(obj, test::simpleStart(2), o);
  EXPECT_EQ(res.counters.gateWaitRounds, 0);
}

TEST(Anderson, LooserCutoffWaitsLessThanStricterEarly) {
  // Compared over a fixed short horizon (before the contraction level can
  // re-tighten the loose cutoff), a looser k1 must wait strictly less.
  auto mk = [&](double k1) {
    AndersonOptions o = andersonOptions(k1);
    o.common.termination.maxIterations = 10;
    o.common.termination.tolerance = 0.0;
    return o;
  };
  auto obj1 = test::noisySphere(2, 10.0, 8);
  auto obj2 = test::noisySphere(2, 10.0, 8);
  const auto start = test::simpleStart(2);
  const auto strict = runAnderson(obj1, start, mk(0.1));
  const auto loose = runAnderson(obj2, start, mk(std::pow(2.0, 20)));
  EXPECT_LT(loose.counters.gateWaitRounds, strict.counters.gateWaitRounds);
}

TEST(Anderson, StrictCutoffDemandsSampling) {
  auto obj = test::noisySphere(2, 10.0);
  const auto res = runAnderson(obj, test::simpleStart(2), andersonOptions(1.0));
  EXPECT_GT(res.counters.gateWaitRounds, 0);
}

TEST(Anderson, StrictCutoffStarvesIterationsUnderTimeBudget) {
  // The shape behind Table 3.2: with a fixed time budget, a small k1 forces
  // so much sampling per step that far fewer simplex iterations happen.
  const double budget = 20000.0;
  auto mk = [&](double k1) {
    AndersonOptions o = andersonOptions(k1);
    o.common.termination.tolerance = 0.0;
    o.common.termination.maxTime = budget;
    o.common.termination.maxIterations = 1'000'000;
    return o;
  };
  auto obj1 = test::noisySphere(2, 50.0, 5);
  auto obj2 = test::noisySphere(2, 50.0, 5);
  const auto start = test::simpleStart(2);
  const auto strict = runAnderson(obj1, start, mk(0.01));
  const auto loose = runAnderson(obj2, start, mk(std::pow(2.0, 30)));
  EXPECT_LT(strict.iterations, loose.iterations / 4);
}

TEST(Anderson, ContractionLevelTightensCutoff) {
  // After contractions the level l rises and the cutoff k1 * 2^-l shrinks,
  // demanding more sampling.  Observable as gate rounds growing over time
  // on a landscape that forces contraction (start at the optimum).
  auto obj = test::noisySphere(2, 5.0);
  AndersonOptions o = andersonOptions(4.0);
  o.common.recordTrace = true;
  o.common.termination.tolerance = 1e-4;
  const auto res = runAnderson(obj, test::simpleStart(2, -0.5, 1.0), o);
  EXPECT_GT(res.counters.gateWaitRounds, 0);
  // Level should have risen above the starting 0 at some point.
  bool levelRose = false;
  for (const auto& r : res.trace.steps()) {
    if (r.contractionLevel > 0) levelRose = true;
  }
  EXPECT_TRUE(levelRose);
}

TEST(Anderson, GateCutoffFormulaDirect) {
  // Exercise the gate in isolation: with oracle sigma = sigma0 / sqrt(t),
  // contraction level l and cutoff k1 * 2^{-l(1+k2)}, the gate must sample
  // every vertex past t > sigma0^2 / cutoff and then stop.
  auto obj = test::noisySphere(2, 1.0);  // sigma0 = 1
  core::CommonOptions common;
  common.sampling.sigmaMode = core::SigmaMode::Exact;
  common.initialSamplesPerVertex = 2;
  core::detail::EngineBase eng(obj, common);
  auto s = eng.buildInitialSimplex(test::simpleStart(2));
  s.noteContraction();
  s.noteContraction();  // l = 2
  // k1 = 1, k2 = 1: cutoff = 2^{-4} = 1/16 => need sigma^2 = 1/t < 1/16,
  // i.e. strictly more than 16 samples per vertex.
  core::ResamplePolicy policy;
  core::detail::andersonGateWait(eng, s, {}, 1.0, 1.0, policy);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_GT(s.at(i).sampleCount(), 16);
    EXPECT_LE(s.at(i).sampleCount(), 64);  // geometric blocks overshoot boundedly
  }
}

TEST(Anderson, GateCutoffK2ZeroShallower) {
  auto obj = test::noisySphere(2, 1.0);
  core::CommonOptions common;
  common.sampling.sigmaMode = core::SigmaMode::Exact;
  core::detail::EngineBase eng(obj, common);
  auto s = eng.buildInitialSimplex(test::simpleStart(2));
  s.noteContraction();
  s.noteContraction();  // l = 2
  // k2 = 0: cutoff = 2^{-2} = 1/4 => need more than 4 samples per vertex.
  core::ResamplePolicy policy;
  core::detail::andersonGateWait(eng, s, {}, 1.0, 0.0, policy);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_GT(s.at(i).sampleCount(), 4);
    EXPECT_LE(s.at(i).sampleCount(), 16);
  }
}

TEST(Anderson, CountersConsistent) {
  auto obj = test::noisySphere(2, 1.0);
  const auto res = runAnderson(obj, test::simpleStart(2), andersonOptions(1.0));
  const auto& c = res.counters;
  EXPECT_EQ(c.reflections + c.expansions + c.contractions + c.collapses, res.iterations);
  EXPECT_EQ(c.resampleRounds, 0);
}

}  // namespace
