# Empty compiler generated dependencies file for sfopt_stats.
# This may be replaced when dependencies are built.
