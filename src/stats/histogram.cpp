#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace sfopt::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), binWidth_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  if (bins < 1) throw std::invalid_argument("Histogram: bins must be >= 1");
  if (!(lo < hi)) throw std::invalid_argument("Histogram: requires lo < hi");
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (std::isnan(x)) {
    ++overflow_;  // NaNs are counted but kept out of the bins.
    return;
  }
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    // The top edge is inclusive so that add(hi) does not overflow.
    if (x == hi_) {
      ++counts_.back();
    } else {
      ++overflow_;
    }
    return;
  }
  auto bin = static_cast<std::size_t>((x - lo_) / binWidth_);
  bin = std::min(bin, counts_.size() - 1);
  ++counts_[bin];
}

void Histogram::addAll(const std::vector<double>& xs) noexcept {
  for (double x : xs) add(x);
}

double Histogram::binCenter(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("Histogram::binCenter");
  return lo_ + (static_cast<double>(bin) + 0.5) * binWidth_;
}

Histogram::Balance Histogram::balanceAroundZero() const noexcept {
  Balance b;
  if (total_ == 0) return b;
  const double half = binWidth_ / 2.0;
  std::size_t below = underflow_;
  std::size_t near = 0;
  std::size_t above = overflow_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double c = binCenter(i);
    if (c < -half) {
      below += counts_[i];
    } else if (c > half) {
      above += counts_[i];
    } else {
      near += counts_[i];
    }
  }
  const auto t = static_cast<double>(total_);
  b.below = static_cast<double>(below) / t;
  b.near = static_cast<double>(near) / t;
  b.above = static_cast<double>(above) / t;
  return b;
}

std::string Histogram::asciiRender(std::size_t width) const {
  std::size_t maxCount = 1;
  for (std::size_t c : counts_) maxCount = std::max(maxCount, c);
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(2);
  if (underflow_ > 0) out << "  < " << lo_ << " : " << underflow_ << "\n";
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double l = lo_ + static_cast<double>(i) * binWidth_;
    const double r = l + binWidth_;
    const auto bar = static_cast<std::size_t>(
        std::llround(static_cast<double>(counts_[i]) * static_cast<double>(width) /
                     static_cast<double>(maxCount)));
    out << "  [" << l << ", " << r << ") " << counts_[i] << " \t|";
    out << std::string(bar, '#') << "\n";
  }
  if (overflow_ > 0) out << "  > " << hi_ << " : " << overflow_ << "\n";
  return out.str();
}

}  // namespace sfopt::stats
