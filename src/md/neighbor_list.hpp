#pragma once

#include <utility>
#include <vector>

#include "md/system.hpp"

namespace sfopt::md {

/// Verlet neighbor list: the intermolecular site pairs within
/// cutoff + skin, rebuilt only when some site has moved more than skin/2
/// since the last rebuild (the classic sufficient condition for no pair
/// inside the cutoff to be missing from the list).
///
/// The rebuild is an O(N^2) sweep — fine at this engine's system sizes
/// (hundreds of sites); the payoff is the force loop touching only O(N)
/// listed pairs per step instead of all N^2/2 candidates.
class NeighborList {
 public:
  /// skin > 0; effective list radius is cutoff + skin.
  NeighborList(double cutoff, double skin);

  /// Rebuild from the system's current positions.
  void rebuild(const WaterSystem& sys);

  /// Has any site moved more than skin/2 since the last rebuild?
  /// (Always true before the first rebuild.)
  [[nodiscard]] bool needsRebuild(const WaterSystem& sys) const;

  /// Rebuild if needed; returns true when a rebuild happened.
  bool update(const WaterSystem& sys);

  [[nodiscard]] const std::vector<std::pair<int, int>>& pairs() const noexcept {
    return pairs_;
  }
  [[nodiscard]] double cutoff() const noexcept { return cutoff_; }
  [[nodiscard]] double skin() const noexcept { return skin_; }
  [[nodiscard]] std::int64_t rebuilds() const noexcept { return rebuilds_; }

 private:
  double cutoff_;
  double skin_;
  std::vector<std::pair<int, int>> pairs_;
  std::vector<Vec3> referencePositions_;
  std::int64_t rebuilds_ = 0;
};

}  // namespace sfopt::md
