#include "commands.hpp"

#include <functional>
#include <ostream>
#include <sstream>

#include "core/algorithms.hpp"
#include "core/annealing.hpp"
#include "core/initial_simplex.hpp"
#include "core/noise_probe.hpp"
#include "core/checkpoint.hpp"
#include "core/trace_io.hpp"
#include "core/pso.hpp"
#include "md/simulation.hpp"
#include "mw/parallel_runner.hpp"
#include "noise/noisy_function.hpp"
#include "testfunctions/functions.hpp"
#include "water/cost.hpp"
#include "water/experimental.hpp"

namespace sfopt::tools {

namespace {

using FnPtr = double (*)(std::span<const double>);

FnPtr lookupFunction(const std::string& name) {
  if (name == "rosenbrock") return &testfunctions::rosenbrock;
  if (name == "powell") return &testfunctions::powell;
  if (name == "sphere") return &testfunctions::sphere;
  if (name == "rastrigin") return &testfunctions::rastrigin;
  if (name == "quadratic") return &testfunctions::quadraticBowl;
  throw ArgError("unknown function '" + name +
                 "' (try rosenbrock, powell, sphere, rastrigin, quadratic)");
}

noise::NoisyFunction makeObjective(const Args& args, std::size_t dim) {
  const std::string fn = args.getString("function", "rosenbrock");
  if (fn == "powell" && dim != 4) throw ArgError("powell requires --dim 4");
  noise::NoisyFunction::Options o;
  o.sigma0 = args.getDouble("sigma0", 1.0);
  o.seed = static_cast<std::uint64_t>(args.getInt("seed", 2026));
  return noise::NoisyFunction(dim, lookupFunction(fn), o);
}

core::TerminationCriteria terminationFrom(const Args& args) {
  core::TerminationCriteria t;
  t.tolerance = args.getDouble("tolerance", 1e-4);
  t.maxIterations = args.getInt("max-iterations", 1000);
  t.maxSamples = args.getInt("max-samples", 1'000'000);
  t.maxTime = args.getDouble("max-time", 1e9);
  return t;
}

void printResult(std::ostream& out, const core::OptimizationResult& res) {
  out << "stopped:  " << toString(res.reason) << " after " << res.iterations << " steps\n";
  out << "best:     " << core::toString(res.best, 6) << "\n";
  out << "estimate: " << res.bestEstimate;
  if (res.bestTrue) out << "   (true value " << *res.bestTrue << ")";
  out << "\n";
  out << "effort:   " << res.totalSamples << " samples, " << res.elapsedTime
      << " simulated seconds\n";
  out << "moves:    " << res.counters.reflections << " refl, " << res.counters.expansions
      << " exp, " << res.counters.contractions << " contr, " << res.counters.collapses
      << " collapses\n";
}

}  // namespace

int runOptimizeCommand(const Args& args, std::ostream& out) {
  const auto dim = static_cast<std::size_t>(args.getInt("dim", 4));
  if (dim < 2) throw ArgError("--dim must be >= 2");
  const auto objective = makeObjective(args, dim);
  const std::string algo = args.getString("algorithm", "pc");

  // Initial simplex: explicit --start corner, or random in --box lo,hi.
  std::vector<core::Point> start;
  if (args.has("start")) {
    const auto corner = args.getDoubleList("start", {});
    if (corner.size() != dim) throw ArgError("--start must have --dim coordinates");
    start = core::axisSimplexPoints(corner, 1.0);
  } else {
    const auto box = args.getDoubleList("box", {-5.0, 5.0});
    if (box.size() != 2 || !(box[0] < box[1])) throw ArgError("--box expects lo,hi");
    noise::RngStream rng(static_cast<std::uint64_t>(args.getInt("seed", 2026)), 7);
    start = core::randomSimplexPoints(dim, box[0], box[1], rng);
  }

  const auto term = terminationFrom(args);
  const bool wantTrace = args.has("trace");

  // Checkpoint/resume plumbing (simplex algorithms only).
  core::SimplexCheckpoint resumeState;
  const bool wantResume = args.has("resume");
  const bool wantCheckpoint = args.has("checkpoint");
  if ((wantResume || wantCheckpoint) && (algo == "pso" || algo == "sa")) {
    throw ArgError("--checkpoint/--resume support the simplex algorithms only");
  }
  if (wantResume) resumeState = core::loadCheckpoint(args.requireString("resume"));
  auto applyCheckpointing = [&](core::CommonOptions& common) {
    if (wantResume) common.resumeFrom = &resumeState;
    if (wantCheckpoint) {
      const std::string path = args.requireString("checkpoint");
      common.checkpointEvery = args.getInt("checkpoint-every", 10);
      common.checkpointSink = [path](const core::SimplexCheckpoint& cp) {
        core::saveCheckpoint(path, cp);
      };
    }
  };

  core::OptimizationResult res;
  if (algo == "pso") {
    if (wantResume || wantCheckpoint) {
      throw ArgError("--checkpoint/--resume support the simplex algorithms only");
    }
    core::PsoOptions o;
    o.particles = static_cast<int>(args.getInt("particles", 20));
    o.termination = term;
    o.resample.maxRoundsPerComparison = 8;
    o.recordTrace = wantTrace;
    res = core::runParticleSwarm(objective, o);
  } else if (algo == "sa") {
    if (wantResume || wantCheckpoint) {
      throw ArgError("--checkpoint/--resume support the simplex algorithms only");
    }
    core::AnnealingOptions o;
    o.initialTemperature = args.getDouble("temperature", 10.0);
    o.termination = term;
    res = core::runSimulatedAnnealing(objective, start.front(), o);
  } else {
    mw::AlgorithmOptions options = [&]() -> mw::AlgorithmOptions {
      if (algo == "det") {
        core::DetOptions o;
        o.common.termination = term;
        o.common.recordTrace = wantTrace;
        applyCheckpointing(o.common);
        return o;
      }
      if (algo == "mn") {
        core::MaxNoiseOptions o;
        o.k = args.getDouble("k", 2.0);
        o.common.termination = term;
        o.common.recordTrace = wantTrace;
        applyCheckpointing(o.common);
        return o;
      }
      if (algo == "anderson") {
        core::AndersonOptions o;
        o.k1 = args.getDouble("k1", 1.0);
        o.k2 = args.getDouble("k2", 0.0);
        o.common.termination = term;
        o.common.recordTrace = wantTrace;
        applyCheckpointing(o.common);
        return o;
      }
      if (algo == "pc" || algo == "pcmn") {
        core::PCOptions o;
        o.k = args.getDouble("k", 1.0);
        o.maxNoiseGate = algo == "pcmn";
        o.common.termination = term;
        o.common.recordTrace = wantTrace;
        applyCheckpointing(o.common);
        return o;
      }
      throw ArgError("unknown algorithm '" + algo +
                     "' (try det, mn, anderson, pc, pcmn, pso, sa)");
    }();
    if (args.getBool("mw", false)) {
      mw::MWRunConfig cfg;
      cfg.workers = static_cast<int>(args.getInt("workers", 0));
      cfg.clientsPerWorker = static_cast<int>(args.getInt("clients", 1));
      const auto run = mw::runSimplexOverMW(objective, start, options, cfg);
      out << "master-worker deployment: " << run.allocation.workers() << " workers, "
          << run.allocation.totalCores() << " cores (Table 3.3 rule), " << run.messagesSent
          << " messages\n";
      res = run.optimization;
    } else {
      res = std::visit(
          [&](const auto& o) {
            using T = std::decay_t<decltype(o)>;
            if constexpr (std::is_same_v<T, core::DetOptions>) {
              return core::runDeterministic(objective, start, o);
            } else if constexpr (std::is_same_v<T, core::MaxNoiseOptions>) {
              return core::runMaxNoise(objective, start, o);
            } else if constexpr (std::is_same_v<T, core::AndersonOptions>) {
              return core::runAnderson(objective, start, o);
            } else {
              return core::runPointToPoint(objective, start, o);
            }
          },
          options);
    }
  }
  printResult(out, res);
  if (wantTrace) {
    const std::string path = args.requireString("trace");
    core::saveTraceCsv(path, res.trace);
    out << "trace:    " << res.trace.size() << " rows -> " << path << "\n";
  }
  return 0;
}

int runWaterCommand(const Args& args, std::ostream& out) {
  water::WaterCostObjective::Options objOpts;
  objOpts.sigma0 = args.getDouble("sigma0", 0.2);
  const water::WaterCostObjective objective(objOpts);
  const auto rows = water::table34InitialPoints();
  const std::vector<core::Point> start(rows.begin(), rows.begin() + 4);

  const std::string algo = args.getString("algorithm", "pcmn");
  core::TerminationCriteria term = terminationFrom(args);
  if (!args.has("max-samples")) term.maxSamples = 4'000'000;
  if (!args.has("tolerance")) term.tolerance = 1e-3;

  core::OptimizationResult res;
  if (algo == "mn") {
    core::MaxNoiseOptions o;
    o.common.termination = term;
    res = core::runMaxNoise(objective, start, o);
  } else if (algo == "pc" || algo == "pcmn") {
    core::PCOptions o;
    o.maxNoiseGate = algo == "pcmn";
    o.common.termination = term;
    res = core::runPointToPoint(objective, start, o);
  } else {
    throw ArgError("water supports --algorithm mn, pc or pcmn");
  }

  const auto tip4p = md::tip4pPublished();
  out << "optimized parameters (vs published TIP4P):\n";
  out << "  epsilon " << res.best[0] << "  (" << tip4p.epsilon << ")\n";
  out << "  sigma   " << res.best[1] << "  (" << tip4p.sigma << ")\n";
  out << "  qH      " << res.best[2] << "  (" << tip4p.qH << ")\n";
  out << "cost: " << *objective.trueValue(res.best) << "  vs TIP4P "
      << *objective.trueValue(std::vector<double>{tip4p.epsilon, tip4p.sigma, tip4p.qH})
      << "\n";
  printResult(out, res);
  return 0;
}

int runProbeCommand(const Args& args, std::ostream& out) {
  const auto dim = static_cast<std::size_t>(args.getInt("dim", 4));
  const auto objective = makeObjective(args, dim);
  const auto point = args.getDoubleList("point", core::Point(dim, 0.0));
  if (point.size() != dim) throw ArgError("--point must have --dim coordinates");
  const auto samples = args.getInt("samples", 1000);
  const auto probe = core::probeNoise(objective, point, samples);
  out << "point:        " << core::toString(point, 4) << "\n";
  out << "mean:         " << probe.meanEstimate << " +/- " << probe.standardError << "\n";
  out << "sigma0:       " << probe.sigma0Estimate << " (declared "
      << objective.noiseScale(point).value_or(0.0) << ")\n";
  out << "sampled time: " << probe.sampledTime << " s (" << probe.samples << " samples)\n";
  return 0;
}

int runMdCommand(const Args& args, std::ostream& out) {
  md::SimulationConfig cfg;
  cfg.molecules = static_cast<int>(args.getInt("molecules", 64));
  cfg.temperatureK = args.getDouble("temperature", 298.0);
  cfg.densityGramsPerCc = args.getDouble("density", 0.997);
  cfg.dtPs = args.getDouble("dt", 0.0005);
  cfg.cutoff = args.getDouble("cutoff", 4.0);
  cfg.equilibrationSteps = static_cast<int>(args.getInt("equilibration", 200));
  cfg.productionSteps = static_cast<int>(args.getInt("production", 400));
  cfg.sampleEvery = static_cast<int>(args.getInt("sample-every", 10));
  cfg.seed = static_cast<std::uint64_t>(args.getInt("seed", 12345));
  cfg.forceThreads = static_cast<int>(args.getInt("force-threads", 1));
  if (cfg.molecules < 1) throw ArgError("--molecules must be >= 1");
  if (cfg.forceThreads < 1) throw ArgError("--force-threads must be >= 1");

  md::WaterParameters params = md::tip4pPublished();
  params.epsilon = args.getDouble("epsilon", params.epsilon);
  params.sigma = args.getDouble("sigma", params.sigma);
  params.qH = args.getDouble("qh", params.qH);

  const md::WaterObservables obs = md::simulateWater(params, cfg);
  out << "protocol:     " << cfg.molecules << " molecules, " << cfg.equilibrationSteps
      << " NVT + " << cfg.productionSteps << " NVE steps, dt " << cfg.dtPs << " ps\n";
  out << "<U>/molecule: " << obs.potentialPerMoleculeKcal << " kcal/mol (+/- "
      << obs.potentialStandardError << ")\n";
  out << "<P>:          " << obs.pressureAtm << " atm\n";
  out << "<T>:          " << obs.temperatureK << " K\n";
  out << "D:            " << obs.diffusionCm2PerS << " cm^2/s\n";
  out << "NVE drift:    " << obs.nveDriftKcalPerPs << " kcal/mol/ps\n";
  const md::MdPerfCounters& perf = obs.perf;
  out << "force path:   " << perf.forceThreads << " thread(s), "
      << (perf.cellListUsed ? "cell-list" : "brute-force") << " neighbor build";
  if (perf.cellListUsed) {
    out << " (" << perf.cellsPerDim << "^3 cells, avg occupancy " << perf.avgCellOccupancy
        << ")";
  }
  out << "\n";
  out << "perf:         " << perf.forceEvaluations << " force evals, "
      << perf.pairsPerEvaluation() << " pairs/eval, " << perf.neighborRebuilds
      << " rebuilds (max drift " << perf.maxDriftSeen << " A), "
      << perf.forceSeconds << " s in forces\n";
  return 0;
}

int runInfoCommand(const Args&, std::ostream& out) {
  out << "sfopt - stochastic-function optimization (IPDPS'11 reproduction)\n";
  out << "algorithms: det mn anderson pc pcmn pso sa\n";
  out << "functions:  rosenbrock powell sphere rastrigin quadratic\n";
  out << "commands:\n";
  out << "  optimize --function F --dim D --algorithm A --sigma0 S [--mw] ...\n";
  out << "  water    --algorithm mn|pc|pcmn --sigma0 S\n";
  out << "  probe    --function F --dim D --point x,y,... --samples N\n";
  out << "  md       --molecules N --force-threads T --equilibration E --production P\n";
  out << "  info\n";
  return 0;
}

int runCli(const std::vector<std::string>& argv, std::ostream& out, std::ostream& err) {
  try {
    const Args args = Args::parse(argv);
    const std::string& cmd = args.command();
    if (cmd == "optimize") return runOptimizeCommand(args, out);
    if (cmd == "water") return runWaterCommand(args, out);
    if (cmd == "probe") return runProbeCommand(args, out);
    if (cmd == "md") return runMdCommand(args, out);
    if (cmd == "info" || cmd.empty()) return runInfoCommand(args, out);
    err << "unknown command '" << cmd << "'\n";
    (void)runInfoCommand(args, err);
    return 2;
  } catch (const ArgError& e) {
    err << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    err << "fatal: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace sfopt::tools
