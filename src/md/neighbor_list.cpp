#include "md/neighbor_list.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "md/cell_list.hpp"

namespace sfopt::md {

NeighborList::NeighborList(double cutoff, double skin, NeighborStrategy strategy)
    : cutoff_(cutoff), skin_(skin), strategy_(strategy) {
  if (!(cutoff > 0.0)) throw std::invalid_argument("NeighborList: cutoff must be positive");
  if (!(skin > 0.0)) throw std::invalid_argument("NeighborList: skin must be positive");
}

void NeighborList::rebuild(const WaterSystem& sys) {
  const double listRadius = cutoff_ + skin_;
  if (listRadius > sys.box().edge() / 2.0) {
    throw std::invalid_argument("NeighborList: cutoff + skin exceeds half the box edge");
  }
  const double r2 = listRadius * listRadius;
  const int n = sys.sites();
  pairs_.clear();

  const bool wantCells = strategy_ == NeighborStrategy::kCellList ||
                         (strategy_ == NeighborStrategy::kAuto &&
                          CellList::admits(sys.box(), listRadius));
  if (wantCells) {
    CellList cells(sys.box(), listRadius);
    cells.bin(sys.positions);
    // dr is the displacement under the cell-adjacency image; within the
    // list radius it coincides with the minimum image (cell edge >=
    // radius), so no per-pair minimum-image computation is needed.
    cells.forEachCandidatePair([&](int i, int j, const Vec3& dr) {
      if (normSquared(dr) < r2 && sys.moleculeOf(i) != sys.moleculeOf(j)) {
        pairs_.emplace_back(i, j);
      }
    });
    // Canonicalize to the brute-force scan order so the serial force
    // path sums contributions identically under either strategy.  Cell
    // enumeration emits pairs grouped by cell, so a counting sort on i
    // (O(P + N)) plus tiny per-i sorts on j beats a comparison sort.
    sortScratch_.resize(pairs_.size());
    countScratch_.assign(static_cast<std::size_t>(n) + 1, 0);
    for (const auto& [i, j] : pairs_) ++countScratch_[static_cast<std::size_t>(i) + 1];
    for (std::size_t i = 1; i < countScratch_.size(); ++i) {
      countScratch_[i] += countScratch_[i - 1];
    }
    for (const auto& p : pairs_) {
      sortScratch_[static_cast<std::size_t>(
          countScratch_[static_cast<std::size_t>(p.first)]++)] = p;
    }
    pairs_.swap(sortScratch_);
    // countScratch_[i] now ends each i's segment; walk the segments.
    std::size_t begin = 0;
    for (int i = 0; i < n; ++i) {
      const auto end = static_cast<std::size_t>(countScratch_[static_cast<std::size_t>(i)]);
      std::sort(pairs_.begin() + static_cast<std::ptrdiff_t>(begin),
                pairs_.begin() + static_cast<std::ptrdiff_t>(end));
      begin = end;
    }
    usedCells_ = true;
    cellsPerDim_ = cells.cellsPerDim();
    avgOccupancy_ = cells.averageOccupancy();
    maxOccupancy_ = cells.maxOccupancy();
  } else {
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (sys.moleculeOf(i) == sys.moleculeOf(j)) continue;
        const Vec3 d = sys.box().minimumImage(sys.positions[static_cast<std::size_t>(i)],
                                              sys.positions[static_cast<std::size_t>(j)]);
        if (normSquared(d) < r2) pairs_.emplace_back(i, j);
      }
    }
    usedCells_ = false;
    cellsPerDim_ = 0;
    avgOccupancy_ = 0.0;
    maxOccupancy_ = 0;
  }
  referencePositions_ = sys.positions;
  ++rebuilds_;
}

bool NeighborList::needsRebuild(const WaterSystem& sys) const {
  if (referencePositions_.size() != sys.positions.size()) return true;
  const double limit2 = (skin_ / 2.0) * (skin_ / 2.0);
  for (std::size_t i = 0; i < sys.positions.size(); ++i) {
    // Unwrapped coordinates: plain displacement is the true drift.
    const Vec3 d = sys.positions[i] - referencePositions_[i];
    const double d2 = normSquared(d);
    if (d2 > maxDriftSeen2_) maxDriftSeen2_ = d2;
    if (d2 > limit2) return true;  // early exit: one mover forces a rebuild
  }
  return false;
}

bool NeighborList::update(const WaterSystem& sys) {
  if (!needsRebuild(sys)) return false;
  rebuild(sys);
  return true;
}

double NeighborList::maxDriftSeen() const noexcept { return std::sqrt(maxDriftSeen2_); }

}  // namespace sfopt::md
