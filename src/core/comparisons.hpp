#pragma once

namespace sfopt::core {

/// Outcome of a k-sigma confidence comparison between two noisy estimates.
enum class ConfidenceOutcome {
  Less,        ///< a is confidently less than b
  GreaterEq,   ///< a is confidently greater than or equal to b
  Unresolved,  ///< the k-sigma intervals overlap; more sampling needed
};

/// The point-to-point comparison primitive (section 2.3): `a < b` is
/// accepted only when meanA + k*sigmaA < meanB - k*sigmaB, and `a >= b`
/// only when meanA - k*sigmaA >= meanB + k*sigmaB; otherwise the intervals
/// overlap and the comparison is Unresolved.
///
/// Monotonicity: enlarging k can only move an outcome toward Unresolved,
/// never flip Less to GreaterEq or vice versa.
[[nodiscard]] constexpr ConfidenceOutcome confidenceCompare(double meanA, double sigmaA,
                                                            double meanB, double sigmaB,
                                                            double k) noexcept {
  if (meanA + k * sigmaA < meanB - k * sigmaB) return ConfidenceOutcome::Less;
  if (meanA - k * sigmaA >= meanB + k * sigmaB) return ConfidenceOutcome::GreaterEq;
  return ConfidenceOutcome::Unresolved;
}

}  // namespace sfopt::core
