#include "mw/comm.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace sfopt::mw {

CommWorld::CommWorld(int size) {
  if (size < 1) throw std::invalid_argument("CommWorld: size must be >= 1");
  boxes_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) boxes_.push_back(std::make_unique<Mailbox>());
}

void CommWorld::checkRank(Rank r, const char* what) const {
  if (r < 0 || r >= size()) {
    throw std::out_of_range(std::string("CommWorld::") + what + ": rank out of range");
  }
}

bool CommWorld::matches(const Message& m, Rank source, int tag) noexcept {
  return (source == kAnySource || m.source == source) && (tag == kAnyTag || m.tag == tag);
}

void CommWorld::send(Rank from, Rank to, int tag, MessageBuffer payload,
                     std::uint64_t traceId, std::uint64_t parentSpan) {
  checkRank(from, "send(from)");
  checkRank(to, "send(to)");
  {
    std::lock_guard lock(statsMutex_);
    ++messagesSent_;
    bytesSent_ += payload.sizeBytes();
  }
  Mailbox& box = *boxes_[static_cast<std::size_t>(to)];
  {
    std::lock_guard lock(box.mutex);
    box.queue.push_back(Message{from, tag, std::move(payload), traceId, parentSpan});
  }
  box.cv.notify_all();
}

void CommWorld::countReceived(const Message& m) {
  std::lock_guard lock(statsMutex_);
  ++messagesReceived_;
  bytesReceived_ += m.payload.sizeBytes();
}

Message CommWorld::recv(Rank at, Rank source, int tag) {
  checkRank(at, "recv");
  Mailbox& box = *boxes_[static_cast<std::size_t>(at)];
  std::unique_lock lock(box.mutex);
  for (;;) {
    const auto it = std::find_if(box.queue.begin(), box.queue.end(),
                                 [&](const Message& m) { return matches(m, source, tag); });
    if (it != box.queue.end()) {
      Message m = std::move(*it);
      box.queue.erase(it);
      countReceived(m);
      return m;
    }
    box.cv.wait(lock);
  }
}

std::optional<Message> CommWorld::recvFor(Rank at, double timeoutSeconds, Rank source, int tag) {
  checkRank(at, "recvFor");
  Mailbox& box = *boxes_[static_cast<std::size_t>(at)];
  // Clamp before the duration_cast: a huge timeout (say 1e18 s) overflows
  // steady_clock's representation and yields a bogus (possibly already
  // past) deadline.  One year is as good as forever here; NaN and negative
  // values collapse to an immediate poll.
  constexpr double kMaxTimeoutSeconds = 365.0 * 24.0 * 3600.0;
  const double clamped =
      timeoutSeconds > 0.0 ? std::min(timeoutSeconds, kMaxTimeoutSeconds) : 0.0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(clamped));
  std::unique_lock lock(box.mutex);
  for (;;) {
    const auto it = std::find_if(box.queue.begin(), box.queue.end(),
                                 [&](const Message& m) { return matches(m, source, tag); });
    if (it != box.queue.end()) {
      Message m = std::move(*it);
      box.queue.erase(it);
      countReceived(m);
      return m;
    }
    if (box.cv.wait_until(lock, deadline) == std::cv_status::timeout) {
      // One last scan: a message may have slipped in between the timeout
      // and re-acquiring the lock.
      const auto late = std::find_if(box.queue.begin(), box.queue.end(),
                                     [&](const Message& m) { return matches(m, source, tag); });
      if (late != box.queue.end()) {
        Message m = std::move(*late);
        box.queue.erase(late);
        countReceived(m);
        return m;
      }
      return std::nullopt;
    }
  }
}

std::optional<Message> CommWorld::tryRecv(Rank at, Rank source, int tag) {
  checkRank(at, "tryRecv");
  Mailbox& box = *boxes_[static_cast<std::size_t>(at)];
  std::lock_guard lock(box.mutex);
  const auto it = std::find_if(box.queue.begin(), box.queue.end(),
                               [&](const Message& m) { return matches(m, source, tag); });
  if (it == box.queue.end()) return std::nullopt;
  Message m = std::move(*it);
  box.queue.erase(it);
  countReceived(m);
  return m;
}

std::size_t CommWorld::queuedAt(Rank at) const {
  checkRank(at, "queuedAt");
  const Mailbox& box = *boxes_[static_cast<std::size_t>(at)];
  std::lock_guard lock(box.mutex);
  return box.queue.size();
}

std::uint64_t CommWorld::messagesSent() const noexcept {
  std::lock_guard lock(statsMutex_);
  return messagesSent_;
}

std::uint64_t CommWorld::bytesSent() const noexcept {
  std::lock_guard lock(statsMutex_);
  return bytesSent_;
}

std::uint64_t CommWorld::messagesReceived() const noexcept {
  std::lock_guard lock(statsMutex_);
  return messagesReceived_;
}

std::uint64_t CommWorld::bytesReceived() const noexcept {
  std::lock_guard lock(statsMutex_);
  return bytesReceived_;
}

}  // namespace sfopt::mw
