# Empty compiler generated dependencies file for md_water_demo.
# This may be replaced when dependencies are built.
