#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/checkpoint.hpp"
#include "core/crc32.hpp"

// Fuzz-style hostility tests for the v2 checkpoint format, mirroring
// frame_fuzz_test: the durable service feeds readCheckpoint bytes that
// survived a SIGKILL mid-write, so every malformed input must fail
// closed with a specific error — never a crash, a hang, a giant
// allocation, or a silently wrong simplex.

namespace {

using namespace sfopt;

core::SimplexCheckpoint sampleCheckpoint() {
  core::SimplexCheckpoint cp;
  cp.iteration = 17;
  cp.clock = 3.25;
  cp.totalSamples = 1234;
  cp.nextVertexId = 42;
  cp.contractionLevel = 1;
  cp.counters.reflections = 9;
  cp.counters.contractions = 4;
  for (std::uint64_t id = 0; id < 5; ++id) {
    core::VertexCheckpoint v;
    v.id = id;
    v.samples = 100 + static_cast<std::int64_t>(id);
    v.mean = 0.5 * static_cast<double>(id) + 0.125;
    v.m2 = 1.0 / (static_cast<double>(id) + 3.0);
    v.x = core::Point{1.0 + static_cast<double>(id), -2.5, 0.0078125, 3e-9};
    cp.vertices.push_back(std::move(v));
  }
  return cp;
}

std::string serialized() {
  std::ostringstream out;
  core::writeCheckpoint(out, sampleCheckpoint());
  return out.str();
}

core::SimplexCheckpoint parse(const std::string& text) {
  std::istringstream in(text);
  return core::readCheckpoint(in);
}

/// Append the trailing "crc XXXXXXXX\n" line a writer would produce, so
/// tests can craft hostile bodies that pass the checksum gate.
std::string withValidCrc(const std::string& body) {
  char line[16];
  std::snprintf(line, sizeof(line), "crc %08x\n", core::crc32(body.data(), body.size()));
  return body + line;
}

TEST(CheckpointFuzz, RoundTripSurvivesIntact) {
  const core::SimplexCheckpoint cp = parse(serialized());
  const core::SimplexCheckpoint want = sampleCheckpoint();
  ASSERT_EQ(cp.vertices.size(), want.vertices.size());
  for (std::size_t i = 0; i < cp.vertices.size(); ++i) {
    EXPECT_EQ(cp.vertices[i].x, want.vertices[i].x);
    EXPECT_EQ(cp.vertices[i].mean, want.vertices[i].mean);
    EXPECT_EQ(cp.vertices[i].m2, want.vertices[i].m2);
    EXPECT_EQ(cp.vertices[i].samples, want.vertices[i].samples);
  }
  EXPECT_EQ(cp.iteration, want.iteration);
  EXPECT_EQ(cp.totalSamples, want.totalSamples);
  EXPECT_EQ(cp.counters.reflections, want.counters.reflections);
}

TEST(CheckpointFuzz, EveryTruncationFailsClosed) {
  const std::string wire = serialized();
  // A SIGKILL can land between any two bytes of a checkpoint write; the
  // trailing checksum line makes every proper prefix detectably partial.
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    EXPECT_THROW((void)parse(wire.substr(0, cut)), std::runtime_error)
        << "cut at byte " << cut;
  }
  EXPECT_NO_THROW((void)parse(wire));
}

TEST(CheckpointFuzz, EverySingleBitFlipFailsClosed) {
  const std::string wire = serialized();
  // CRC32 detects all single-bit errors, and flips in the magic, version,
  // or checksum line itself hit their own specific gates — so no flipped
  // checkpoint anywhere in the file may parse.
  for (std::size_t bit = 0; bit < wire.size() * 8; ++bit) {
    std::string fuzzed = wire;
    fuzzed[bit / 8] = static_cast<char>(
        static_cast<unsigned char>(fuzzed[bit / 8]) ^ (1u << (bit % 8)));
    EXPECT_THROW((void)parse(fuzzed), std::runtime_error) << "bit " << bit;
  }
}

TEST(CheckpointFuzz, RandomGarbageIsRejectedNotTrusted) {
  std::mt19937_64 rng(0xC0FFEEULL);
  for (int trial = 0; trial < 500; ++trial) {
    std::string garbage(16 + rng() % 256, '\0');
    for (char& ch : garbage) ch = static_cast<char>(rng() & 0xFF);
    EXPECT_THROW((void)parse(garbage), std::runtime_error);
  }
}

TEST(CheckpointFuzz, WrongMagicAndWrongVersionGetSpecificErrors) {
  try {
    (void)parse(withValidCrc("not-a-checkpoint v2\n"));
    FAIL() << "foreign magic must be rejected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("not an sfopt checkpoint"), std::string::npos);
  }
  // A v1-era file (or a future v3) is ours but unreadable; the error
  // names both versions so the operator knows which build wrote it.
  try {
    (void)parse(withValidCrc("sfopt-checkpoint v1\niteration 0\n"));
    FAIL() << "version mismatch must be rejected";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("v1"), std::string::npos);
    EXPECT_NE(what.find("this build reads v2"), std::string::npos);
  }
}

TEST(CheckpointFuzz, HostileGeometryWithAValidChecksumIsStillRejected) {
  // A correctly-checksummed header claiming 2^31 vertices must be refused
  // at the geometry gate, before any proportional allocation happens —
  // the checksum authenticates bytes, not plausibility.
  const std::string body =
      "sfopt-checkpoint v2\n"
      "iteration 0\nclock 0\ntotalSamples 0\nnextVertexId 0\n"
      "contractionLevel 0\ncounters 0 0 0 0 0 0 0\n"
      "vertices 2147483648 dim 1000000\n";
  try {
    (void)parse(withValidCrc(body));
    FAIL() << "implausible geometry must be rejected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("implausible simplex geometry"), std::string::npos);
  }
}

TEST(CheckpointFuzz, ValidChecksumCannotLaunderNegativeSamplesOrTrailingGarbage) {
  // Tampering below the checksum: re-checksummed bodies with semantic
  // poison must still fail on their own gates.
  const std::string head =
      "sfopt-checkpoint v2\n"
      "iteration 0\nclock 0\ntotalSamples 0\nnextVertexId 0\n"
      "contractionLevel 0\ncounters 0 0 0 0 0 0 0\n";
  EXPECT_THROW((void)parse(withValidCrc(head + "vertices 1 dim 2\n7 -5 0.0 0.0 1.0 2.0\n")),
               std::runtime_error);
  EXPECT_THROW(
      (void)parse(withValidCrc(head + "vertices 1 dim 2\n7 5 0.0 0.0 1.0 2.0\nextra\n")),
      std::runtime_error);
  EXPECT_THROW((void)parse(withValidCrc(head + "vertices 1 dim 2\n7 5 0.0 zebra 1.0 2.0\n")),
               std::runtime_error);
}

TEST(CheckpointFuzz, OversizeInputFailsAtTheCapNotTheAllocator) {
  // 64 MiB cap: a hostile endless stream is cut off while reading, long
  // before checksum or parse work starts.
  std::string huge(65ull << 20, 'x');
  EXPECT_THROW((void)parse(huge), std::runtime_error);
}

}  // namespace
