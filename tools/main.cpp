// The sfopt command-line tool.  All logic lives in the testable command
// layer (commands.cpp); this translation unit only adapts argv.

#include <iostream>
#include <string>
#include <vector>

#include "commands.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc > 0 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return sfopt::tools::runCli(args, std::cout, std::cerr);
}
