#include "telemetry/span.hpp"

namespace sfopt::telemetry {

std::uint64_t SpanTracer::begin(std::string name, std::uint64_t parent,
                                std::uint64_t trace) {
  const double start = clock_->now();
  std::lock_guard lock(mutex_);
  const std::uint64_t id = nextId_++;
  open_.emplace(id, Open{std::move(name), start, parent, trace});
  return id;
}

void SpanTracer::end(std::uint64_t id,
                     std::vector<std::pair<std::string, std::string>> strFields,
                     std::vector<std::pair<std::string, double>> numFields) {
  const double now = clock_->now();
  Open span;
  {
    std::lock_guard lock(mutex_);
    const auto it = open_.find(id);
    if (it == open_.end()) return;
    span = std::move(it->second);
    open_.erase(it);
  }
  Event e;
  e.type = "span";
  e.name = std::move(span.name);
  e.time = span.start;
  e.duration = now - span.start;
  e.id = id;
  e.parent = span.parent;
  e.trace = span.trace;
  e.strFields = std::move(strFields);
  e.numFields = std::move(numFields);
  sink_->emit(e);
}

std::uint64_t SpanTracer::emitComplete(
    std::string name, double startTime, std::uint64_t parent,
    std::vector<std::pair<std::string, std::string>> strFields,
    std::vector<std::pair<std::string, double>> numFields,
    std::uint64_t trace) {
  const double now = clock_->now();
  std::uint64_t id = 0;
  {
    std::lock_guard lock(mutex_);
    id = nextId_++;
  }
  Event e;
  e.type = "span";
  e.name = std::move(name);
  e.time = startTime;
  e.duration = now - startTime;
  e.id = id;
  e.parent = parent;
  e.trace = trace;
  e.strFields = std::move(strFields);
  e.numFields = std::move(numFields);
  sink_->emit(e);
  return id;
}

void SpanTracer::seedIds(std::uint64_t base) {
  std::lock_guard lock(mutex_);
  if (base == 0) base = 1;  // 0 means "no span" everywhere
  if (base > nextId_) nextId_ = base;
}

std::size_t SpanTracer::openSpans() const {
  std::lock_guard lock(mutex_);
  return open_.size();
}

}  // namespace sfopt::telemetry
