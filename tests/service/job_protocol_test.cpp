#include "service/job.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <variant>

#include "core/algorithms.hpp"
#include "mw/message_buffer.hpp"
#include "mw/parallel_runner.hpp"

namespace {

using namespace sfopt;

service::JobSpec sampleSpec() {
  service::JobSpec spec;
  spec.objective.function = "sphere";
  spec.objective.dim = 3;
  spec.objective.sigma0 = 0.5;
  spec.objective.seed = 42;
  spec.objective.clients = 2;
  spec.algorithm = "anderson";
  spec.k1 = 1.25;
  spec.k2 = 0.75;
  spec.termination.tolerance = 1e-3;
  spec.termination.maxIterations = 55;
  spec.termination.maxSamples = 123456;
  spec.termination.maxTime = 9.5;
  spec.shardMinSamples = 128;
  spec.speculate = true;
  spec.initial = {{0.0, 0.0, 0.0}, {1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}, {0.0, 0.0, 1.0}};
  return spec;
}

TEST(JobProtocol, JobSpecRoundTripsThroughTheWire) {
  const service::JobSpec spec = sampleSpec();
  mw::MessageBuffer buf;
  spec.pack(buf);
  const service::JobSpec back = service::JobSpec::unpack(buf);
  EXPECT_EQ(back.objective.function, "sphere");
  EXPECT_EQ(back.objective.dim, 3);
  EXPECT_EQ(back.objective.sigma0, 0.5);
  EXPECT_EQ(back.objective.seed, 42u);
  EXPECT_EQ(back.objective.clients, 2);
  EXPECT_EQ(back.algorithm, "anderson");
  EXPECT_EQ(back.k1, 1.25);
  EXPECT_EQ(back.k2, 0.75);
  EXPECT_EQ(back.termination.tolerance, 1e-3);
  EXPECT_EQ(back.termination.maxIterations, 55);
  EXPECT_EQ(back.termination.maxSamples, 123456);
  EXPECT_EQ(back.termination.maxTime, 9.5);
  EXPECT_EQ(back.shardMinSamples, 128);
  EXPECT_TRUE(back.speculate);
  ASSERT_EQ(back.initial.size(), 4u);
  EXPECT_EQ(back.initial[2], (core::Point{0.0, 1.0, 0.0}));
  EXPECT_NO_THROW(back.validate());
}

TEST(JobProtocol, ValidateRejectsMalformedSpecs) {
  {
    service::JobSpec s = sampleSpec();
    s.objective.function = "nope";
    EXPECT_THROW(s.validate(), std::runtime_error);
  }
  {
    service::JobSpec s = sampleSpec();
    s.algorithm = "bogus";
    EXPECT_THROW(s.validate(), std::runtime_error);
  }
  {
    service::JobSpec s = sampleSpec();
    s.initial.pop_back();  // needs dim + 1 points
    EXPECT_THROW(s.validate(), std::runtime_error);
  }
  {
    service::JobSpec s = sampleSpec();
    s.initial.back().pop_back();  // a point of the wrong dimension
    EXPECT_THROW(s.validate(), std::runtime_error);
  }
  {
    service::JobSpec s = sampleSpec();
    s.objective.function = "powell";  // powell is dim-4 only
    EXPECT_THROW(s.validate(), std::runtime_error);
  }
}

TEST(JobProtocol, MakeOptionsMapsAlgorithmAndPipelineKnobs) {
  service::JobSpec spec = sampleSpec();
  spec.algorithm = "pcmn";
  spec.k = 2.5;
  const mw::AlgorithmOptions options = spec.makeOptions();
  const auto* pc = std::get_if<core::PCOptions>(&options);
  ASSERT_NE(pc, nullptr);
  EXPECT_EQ(pc->k, 2.5);
  EXPECT_TRUE(pc->maxNoiseGate);
  EXPECT_EQ(pc->common.termination.maxIterations, 55);
  EXPECT_EQ(pc->common.sampling.shardMinSamples, 128);
  EXPECT_TRUE(pc->common.sampling.speculate);

  spec.algorithm = "anderson";
  const mw::AlgorithmOptions andersonOptions = spec.makeOptions();
  const auto* anderson = std::get_if<core::AndersonOptions>(&andersonOptions);
  ASSERT_NE(anderson, nullptr);
  EXPECT_EQ(anderson->k1, 1.25);
  EXPECT_EQ(anderson->k2, 0.75);
}

TEST(JobProtocol, OutcomeRoundTripsAndRebuildsAResult) {
  service::JobOutcome outcome;
  outcome.reason = core::TerminationReason::SampleLimit;
  outcome.best = {1.5, -2.5};
  outcome.bestEstimate = 0.125;
  outcome.bestTrue = 0.25;
  outcome.iterations = 77;
  outcome.totalSamples = 4242;
  outcome.elapsedTime = 12.5;
  outcome.counters.reflections = 9;
  outcome.counters.expansions = 3;
  outcome.counters.contractions = 5;
  outcome.counters.collapses = 1;

  mw::MessageBuffer buf;
  outcome.pack(buf);
  const service::JobOutcome back = service::JobOutcome::unpack(buf);
  const core::OptimizationResult res = back.toResult();
  EXPECT_EQ(res.reason, core::TerminationReason::SampleLimit);
  EXPECT_EQ(res.best, (core::Point{1.5, -2.5}));
  EXPECT_EQ(res.bestEstimate, 0.125);
  ASSERT_TRUE(res.bestTrue.has_value());
  EXPECT_EQ(*res.bestTrue, 0.25);
  EXPECT_EQ(res.iterations, 77);
  EXPECT_EQ(res.totalSamples, 4242);
  EXPECT_EQ(res.elapsedTime, 12.5);
  EXPECT_EQ(res.counters.reflections, 9);
  EXPECT_EQ(res.counters.collapses, 1);

  // fromResult(toResult()) is the identity on the marshaled fields.
  const service::JobOutcome again = service::JobOutcome::fromResult(res);
  EXPECT_EQ(again.bestEstimate, outcome.bestEstimate);
  EXPECT_EQ(again.totalSamples, outcome.totalSamples);
}

TEST(JobProtocol, StatusAndResultRepliesRoundTrip) {
  service::StatusReply status;
  status.jobId = 7;
  status.state = service::JobState::Rejected;
  status.detail = "service at capacity";
  status.retryable = true;
  status.queued = 4;
  status.running = 2;
  mw::MessageBuffer sbuf;
  status.pack(sbuf);
  const service::StatusReply sback = service::StatusReply::unpack(sbuf);
  EXPECT_EQ(sback.jobId, 7u);
  EXPECT_EQ(sback.state, service::JobState::Rejected);
  EXPECT_EQ(sback.detail, "service at capacity");
  EXPECT_TRUE(sback.retryable);
  EXPECT_EQ(sback.queued, 4);
  EXPECT_EQ(sback.running, 2);

  service::ResultReply result;
  result.jobId = 9;
  result.state = service::JobState::Cancelled;
  result.detail = "cancelled by client";
  mw::MessageBuffer rbuf;
  result.pack(rbuf);
  const service::ResultReply rback = service::ResultReply::unpack(rbuf);
  EXPECT_EQ(rback.jobId, 9u);
  EXPECT_EQ(rback.state, service::JobState::Cancelled);
  EXPECT_EQ(rback.detail, "cancelled by client");
  EXPECT_FALSE(rback.outcome.has_value());
}

TEST(JobProtocol, TraceNamespacePartitionsByJobId) {
  EXPECT_EQ(service::jobTraceNamespace(0), 0u);
  EXPECT_EQ(service::jobTraceNamespace(1), 1ULL << 40);
  EXPECT_EQ(service::jobTraceNamespace(3) >> service::kJobTraceShift, 3u);
  // A ticket keeps its job's namespace for any realistic sequence number.
  const std::uint64_t ticket = service::jobTraceNamespace(5) | 123456789ULL;
  EXPECT_EQ(ticket >> service::kJobTraceShift, 5u);
}

TEST(JobProtocol, ToStringCoversEveryState) {
  EXPECT_EQ(service::toString(service::JobState::Queued), "queued");
  EXPECT_EQ(service::toString(service::JobState::Running), "running");
  EXPECT_EQ(service::toString(service::JobState::Done), "done");
  EXPECT_EQ(service::toString(service::JobState::Cancelled), "cancelled");
  EXPECT_EQ(service::toString(service::JobState::Failed), "failed");
  EXPECT_EQ(service::toString(service::JobState::Rejected), "rejected");
  EXPECT_EQ(service::toString(service::JobState::Unknown), "unknown");
}

}  // namespace
