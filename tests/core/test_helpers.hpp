#pragma once

#include <span>
#include <vector>

#include "core/algorithms.hpp"
#include "core/initial_simplex.hpp"
#include "noise/noisy_function.hpp"
#include "testfunctions/functions.hpp"

namespace sfopt::test {

/// Noisy generalized Rosenbrock in `dim` dimensions.
inline noise::NoisyFunction noisyRosenbrock(std::size_t dim, double sigma0,
                                            std::uint64_t seed = 1234) {
  noise::NoisyFunction::Options o;
  o.sigma0 = sigma0;
  o.sampleDuration = 1.0;
  o.seed = seed;
  return noise::NoisyFunction(
      dim, [](std::span<const double> x) { return testfunctions::rosenbrock(x); }, o);
}

/// Noisy sphere in `dim` dimensions — the easiest convergence target.
inline noise::NoisyFunction noisySphere(std::size_t dim, double sigma0,
                                        std::uint64_t seed = 77) {
  noise::NoisyFunction::Options o;
  o.sigma0 = sigma0;
  o.sampleDuration = 1.0;
  o.seed = seed;
  return noise::NoisyFunction(
      dim, [](std::span<const double> x) { return testfunctions::sphere(x); }, o);
}

/// Noisy Powell (4-d).
inline noise::NoisyFunction noisyPowell(double sigma0, std::uint64_t seed = 55) {
  noise::NoisyFunction::Options o;
  o.sigma0 = sigma0;
  o.sampleDuration = 1.0;
  o.seed = seed;
  return noise::NoisyFunction(
      4, [](std::span<const double> x) { return testfunctions::powell(x); }, o);
}

/// Deterministic initial simplex a moderate distance from the optimum.
inline std::vector<core::Point> simpleStart(std::size_t dim, double origin = -2.0,
                                            double scale = 1.0) {
  return core::axisSimplexPoints(core::Point(dim, origin), scale);
}

/// Random initial simplex via a reproducible stream.
inline std::vector<core::Point> randomStart(std::size_t dim, double lo, double hi,
                                            std::uint64_t seed, std::uint64_t stream) {
  noise::RngStream rng(seed, stream);
  return core::randomSimplexPoints(dim, lo, hi, rng);
}

}  // namespace sfopt::test
