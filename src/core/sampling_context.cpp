#include "core/sampling_context.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "core/eval_scheduler.hpp"

namespace sfopt::core {

SamplingContext::SamplingContext(const noise::StochasticObjective& objective, Options options)
    : objective_(objective), options_(options), nextVertexId_(options.firstVertexId) {
  if (options_.maxSamplesPerVertex < 1) {
    throw std::invalid_argument("SamplingContext: maxSamplesPerVertex must be >= 1");
  }
  if (options_.shardMinSamples < 0) {
    throw std::invalid_argument("SamplingContext: shardMinSamples must be >= 0");
  }
  // The pipeline engages only when the backend can run asynchronously and
  // the caller asked for sharding or speculation; the plain blocking path
  // stays byte-for-byte what it always was otherwise.
  if (options_.backend != nullptr &&
      (options_.shardMinSamples > 0 || options_.speculate)) {
    if (AsyncSamplingBackend* async = options_.backend->async()) {
      EvalScheduler::Options sched;
      sched.shardMinSamples = options_.shardMinSamples;
      sched.speculate = options_.speculate;
      sched.maxOutstandingShards = options_.maxOutstandingShards;
      sched.telemetry = options_.telemetry;
      scheduler_ = std::make_unique<EvalScheduler>(*async, sched);
    }
  }
}

SamplingContext::~SamplingContext() = default;

std::unique_ptr<Vertex> SamplingContext::createVertex(Point x, std::int64_t initialSamples) {
  if (x.size() != objective_.dimension()) {
    throw std::invalid_argument("SamplingContext::createVertex: dimension mismatch");
  }
  auto v = std::make_unique<Vertex>(std::move(x), nextVertexId_++);
  refine(*v, initialSamples);
  return v;
}

std::int64_t SamplingContext::refine(Vertex& v, std::int64_t extra) {
  if (extra < 0) throw std::invalid_argument("SamplingContext::refine: negative count");
  const std::int64_t room = options_.maxSamplesPerVertex - v.sampleCount();
  const std::int64_t take = std::min(extra, std::max<std::int64_t>(room, 0));
  if (take == 0) return 0;
  const SamplingBackend::BatchRequest req{v.point(), v.id(),
                                          static_cast<std::uint64_t>(v.sampleCount()), take};
  if (scheduler_ != nullptr) {
    v.absorb(scheduler_->evaluate({&req, 1}).front());
  } else if (options_.backend != nullptr) {
    v.absorb(options_.backend->sampleBatch(req));
  } else {
    for (std::int64_t i = 0; i < take; ++i) {
      const noise::SampleKey key{v.id(), static_cast<std::uint64_t>(v.sampleCount())};
      v.absorb(objective_.sample(v.point(), key));
    }
  }
  totalSamples_ += take;
  return take;
}

std::vector<SamplingContext::CoalescedRequest> SamplingContext::coalesce(
    std::span<const RefineRequest> requests) const {
  // One entry per vertex, first-occurrence order, samples summed.  A
  // duplicate must not become two batches: both would start at the same
  // sampleCount and reuse noise-stream indices (duplicate SampleKeys).
  std::vector<CoalescedRequest> out;
  out.reserve(requests.size());
  std::unordered_map<const Vertex*, std::size_t> index;
  for (const RefineRequest& r : requests) {
    if (r.vertex == nullptr) throw std::invalid_argument("coSample: null vertex");
    if (r.samples < 0) throw std::invalid_argument("coSample: negative count");
    const auto [it, fresh] = index.emplace(r.vertex, out.size());
    if (fresh) {
      out.push_back(CoalescedRequest{r.vertex, r.samples});
    } else {
      out[it->second].take += r.samples;
    }
  }
  for (CoalescedRequest& c : out) {
    const std::int64_t room = options_.maxSamplesPerVertex - c.vertex->sampleCount();
    c.take = std::min(c.take, std::max<std::int64_t>(room, 0));
  }
  return out;
}

void SamplingContext::coSample(std::span<const RefineRequest> requests) {
  coSample(requests, std::span<const RefineRequest>{});
}

void SamplingContext::coSample(std::span<const RefineRequest> requests,
                               std::span<const RefineRequest> nextRoundHint) {
  const std::vector<CoalescedRequest> coal = coalesce(requests);
  std::int64_t maxTaken = 0;

  if (options_.backend != nullptr) {
    // Dispatch the whole batch so the backend can run it concurrently
    // (this models the d+3 workers sampling their vertices at once).
    // Capped vertices (take == 0) never leave the master: a zero-count
    // batch would waste a wire round trip to compute nothing.
    std::vector<SamplingBackend::BatchRequest> batch;
    std::vector<std::size_t> batchSlot;  // index into coal per batch entry
    batch.reserve(coal.size());
    batchSlot.reserve(coal.size());
    for (std::size_t i = 0; i < coal.size(); ++i) {
      if (coal[i].take == 0) continue;
      const Vertex& v = *coal[i].vertex;
      batch.push_back({v.point(), v.id(), static_cast<std::uint64_t>(v.sampleCount()),
                       coal[i].take});
      batchSlot.push_back(i);
    }
    std::vector<stats::Welford> results;
    if (scheduler_ != nullptr) {
      // Predict each hinted vertex's future start index: its current count
      // plus whatever this round is about to take at it.
      std::unordered_map<const Vertex*, std::int64_t> currentTake;
      for (const CoalescedRequest& c : coal) currentTake.emplace(c.vertex, c.take);
      std::vector<SamplingBackend::BatchRequest> hintBatch;
      std::unordered_map<const Vertex*, std::int64_t> hintSum;
      std::vector<Vertex*> hintOrder;
      for (const RefineRequest& h : nextRoundHint) {
        if (h.vertex == nullptr || h.samples <= 0) continue;
        const auto [it, fresh] = hintSum.emplace(h.vertex, h.samples);
        if (fresh) {
          hintOrder.push_back(h.vertex);
        } else {
          it->second += h.samples;
        }
      }
      hintBatch.reserve(hintOrder.size());
      for (Vertex* v : hintOrder) {
        const auto t = currentTake.find(v);
        const std::int64_t future =
            v->sampleCount() + (t != currentTake.end() ? t->second : 0);
        const std::int64_t room = options_.maxSamplesPerVertex - future;
        const std::int64_t take =
            std::min(hintSum.at(v), std::max<std::int64_t>(room, 0));
        if (take == 0) continue;
        hintBatch.push_back({v->point(), v->id(), static_cast<std::uint64_t>(future), take});
      }
      results = scheduler_->evaluate(batch, hintBatch);
    } else {
      results = options_.backend->sampleBatches(batch);
    }
    for (std::size_t b = 0; b < batch.size(); ++b) {
      const std::size_t i = batchSlot[b];
      coal[i].vertex->absorb(results[b]);
      totalSamples_ += coal[i].take;
      maxTaken = std::max(maxTaken, coal[i].take);
    }
  } else {
    for (const CoalescedRequest& c : coal) {
      Vertex& v = *c.vertex;
      for (std::int64_t i = 0; i < c.take; ++i) {
        const noise::SampleKey key{v.id(), static_cast<std::uint64_t>(v.sampleCount())};
        v.absorb(objective_.sample(v.point(), key));
      }
      totalSamples_ += c.take;
      maxTaken = std::max(maxTaken, c.take);
    }
  }
  chargeTime(maxTaken);
}

void SamplingContext::coSample(std::initializer_list<RefineRequest> requests) {
  coSample(std::span<const RefineRequest>(requests.begin(), requests.size()));
}

void SamplingContext::chargeTime(std::int64_t samples) {
  clock_.advance(static_cast<double>(samples) * objective_.sampleDuration());
}

void SamplingContext::restoreAccounting(double clockNow, std::int64_t totalSamples,
                                        std::uint64_t nextVertexId) {
  clock_.reset();
  clock_.advance(clockNow);
  totalSamples_ = totalSamples;
  nextVertexId_ = nextVertexId;
}

double SamplingContext::sigma(const Vertex& v) const {
  if (options_.sigmaMode == SigmaMode::Exact) {
    if (auto s0 = objective_.noiseScale(v.point())) {
      return v.exactSigma(*s0, objective_.sampleDuration());
    }
  }
  return v.estimatedSigma();
}

std::optional<double> SamplingContext::trueValue(const Vertex& v) const {
  return objective_.trueValue(v.point());
}

}  // namespace sfopt::core
