#include "telemetry/trace_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace sfopt::telemetry {

namespace {

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  if (v.size() % 2 == 1) return v[mid];
  const double hi = v[mid];
  const double lo = *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

}  // namespace

TraceReport analyzeTraceEvents(const std::vector<Event>& events, int topStragglers) {
  TraceReport report;

  // 1. Clock alignment: the master records one `fleet.clock` event per
  // telemetry heartbeat echo, carrying its NTP-style offset estimate
  // theta = t_worker - t_master.  The per-rank median is robust against
  // the occasional RTT spike; t_master = t_worker - theta.
  std::map<int, std::vector<double>> offsetSamples;
  for (const Event& e : events) {
    if (e.type != "clock" || e.name != "fleet.clock") continue;
    const auto rank = e.num("rank");
    const auto offset = e.num("offset_seconds");
    if (!rank || !offset) continue;
    offsetSamples[static_cast<int>(*rank)].push_back(*offset);
  }
  std::map<int, double> offsets;
  for (auto& [rank, samples] : offsetSamples) {
    offsets[rank] = median(std::move(samples));
  }

  // 2. Collect traced spans, shifting worker-side ones onto the master
  // clock.  Only worker.execute spans originate on worker clocks; every
  // other traced span is emitted by the master process.
  std::map<std::uint64_t, ShardTrace> traces;
  std::map<std::uint64_t, TraceNamespaceReport> nsReports;
  double wallMin = std::numeric_limits<double>::infinity();
  double wallMax = -std::numeric_limits<double>::infinity();
  std::map<int, WorkerReport> workers;
  std::set<int> ranksWithExecuteSpans;
  for (const Event& e : events) {
    if (e.type != "span" || e.trace == 0) continue;
    TraceSpan s;
    s.name = e.name;
    s.start = e.time;
    s.duration = std::max(e.duration, 0.0);
    s.id = e.id;
    s.parent = e.parent;
    if (const auto rank = e.num("rank")) s.rank = static_cast<int>(*rank);
    if (const auto outcome = e.str("outcome")) s.outcome = std::string(*outcome);
    if (const auto reason = e.str("reason")) s.reason = std::string(*reason);
    if (s.name == "service.job") {
      // Per-job root emitted by the service daemon with trace = jobId << 40
      // (task ids start at 1, so that id never collides with a shard).  It
      // is a namespace annotation, not part of any shard tree — record it
      // and keep it out of the per-trace verification below.
      TraceNamespaceReport& nsr = nsReports[e.trace >> kTraceNamespaceShift];
      nsr.jobSpanSeen = true;
      nsr.jobSeconds = std::max(nsr.jobSeconds, s.duration);
      if (!s.outcome.empty()) nsr.jobOutcome = s.outcome;
      wallMin = std::min(wallMin, s.start);
      wallMax = std::max(wallMax, s.start + s.duration);
      continue;
    }
    if (s.name == "worker.execute") {
      report.workerSpansSeen = true;
      if (s.rank >= 0) {
        ranksWithExecuteSpans.insert(s.rank);
        if (const auto it = offsets.find(s.rank); it != offsets.end()) {
          s.start -= it->second;
        }
        WorkerReport& w = workers[s.rank];
        w.rank = s.rank;
        ++w.tasks;
        w.busySeconds += s.duration;
      }
    }
    wallMin = std::min(wallMin, s.start);
    wallMax = std::max(wallMax, s.start + s.duration);
    ShardTrace& t = traces[e.trace];
    t.traceId = e.trace;
    t.spans.push_back(std::move(s));
  }
  if (wallMax > wallMin) report.wallSeconds = wallMax - wallMin;

  // 3. Per-trace span-tree assembly and verification.
  const auto problem = [&](std::uint64_t trace, const std::string& what) {
    report.problems.push_back("trace " + std::to_string(trace) + ": " + what);
    ++nsReports[trace >> kTraceNamespaceShift].problems;
  };
  for (auto& [traceId, t] : traces) {
    std::uint64_t rootId = 0;
    int roots = 0;
    std::unordered_map<std::uint64_t, const TraceSpan*> remotes;
    for (const TraceSpan& s : t.spans) {
      if (s.name == "shard.lifecycle") {
        ++roots;
        rootId = s.id;
        t.totalSeconds = s.duration;
        if (s.outcome == "failed") t.failed = true;
        if (s.outcome == "abandoned") t.abandoned = true;
      } else if (s.name == "shard.remote") {
        remotes.emplace(s.id, &s);
        ++t.dispatches;
        t.wireSeconds += s.duration;  // execute portion subtracted below
        if (s.outcome == "requeued" || s.outcome == "lost") ++t.requeues;
      }
    }
    if (roots == 0) {
      problem(traceId, "missing shard.lifecycle root");
      // Fall back to the span envelope so the straggler sort still works.
      double lo = std::numeric_limits<double>::infinity(), hi = -lo;
      for (const TraceSpan& s : t.spans) {
        lo = std::min(lo, s.start);
        hi = std::max(hi, s.start + s.duration);
      }
      if (hi > lo) t.totalSeconds = hi - lo;
    } else if (roots > 1) {
      problem(traceId, "multiple shard.lifecycle roots");
    }

    std::set<std::uint64_t> remotesWithExecute;
    double okRemoteEnd = -1.0;
    double terminalStart = -1.0;
    int terminals = 0;
    for (const TraceSpan& s : t.spans) {
      if (s.name == "shard.queue") {
        t.queueSeconds += s.duration;
        if (rootId != 0 && s.parent != rootId) {
          problem(traceId, "shard.queue not parented under the lifecycle root");
        }
      } else if (s.name == "shard.remote") {
        if (rootId != 0 && s.parent != rootId) {
          problem(traceId, "shard.remote not parented under the lifecycle root");
        }
        if (s.outcome == "ok") okRemoteEnd = s.start + s.duration;
      } else if (s.name == "worker.execute") {
        t.executeSeconds += s.duration;
        const auto it = remotes.find(s.parent);
        if (it == remotes.end()) {
          problem(traceId, "orphan worker.execute (parent matches no shard.remote)");
        } else {
          remotesWithExecute.insert(s.parent);
          t.wireSeconds = std::max(0.0, t.wireSeconds - s.duration);
        }
      } else if (s.name == "shard.folded" || s.name == "shard.discarded") {
        ++terminals;
        terminalStart = std::max(terminalStart, s.start);
        if (s.name == "shard.folded") t.folded = true;
        else t.discarded = true;
        if (s.parent != 0 && rootId != 0 && s.parent != rootId) {
          problem(traceId, s.name + " not parented under the lifecycle root");
        }
      }
    }
    // Failed roots (retry budget exhausted) and abandoned roots (shutdown
    // with the task queued or in flight) are legitimately terminal-less;
    // an abandoned task may also legitimately never have been dispatched.
    if (terminals == 0 && !t.failed && !t.abandoned) {
      problem(traceId, "no terminal marker (shard.folded / shard.discarded)");
    } else if (terminals > 1) {
      problem(traceId, "multiple terminal markers");
    }
    if (t.dispatches == 0 && !t.abandoned) {
      problem(traceId, "no shard.remote dispatch span");
    }
    // Every completed dispatch should carry a worker.execute child — but
    // only demand it when that worker's trace file was actually supplied
    // (a master-only analysis still verifies the master-side tree).
    for (const auto& [id, remote] : remotes) {
      if (remote->outcome != "ok") continue;  // lost workers never report
      const int rank = remote->rank;
      if (rank >= 0 && !ranksWithExecuteSpans.contains(rank)) continue;
      if (!report.workerSpansSeen) continue;
      if (!remotesWithExecute.contains(id)) {
        problem(traceId, "completed shard.remote has no worker.execute child");
      }
    }
    if (okRemoteEnd >= 0.0 && terminalStart >= 0.0) {
      t.foldSeconds = std::max(0.0, terminalStart - okRemoteEnd);
    }

    report.dispatched += static_cast<std::uint64_t>(t.dispatches);
    report.requeues += static_cast<std::uint64_t>(t.requeues);
    if (t.folded) ++report.folded;
    if (t.discarded) ++report.discarded;
    if (t.failed) ++report.failed;
    if (t.abandoned) ++report.abandoned;
    report.queueSeconds += t.queueSeconds;
    report.wireSeconds += t.wireSeconds;
    report.executeSeconds += t.executeSeconds;
    report.foldSeconds += t.foldSeconds;

    TraceNamespaceReport& nsr = nsReports[traceId >> kTraceNamespaceShift];
    ++nsr.traces;
    nsr.requeues += static_cast<std::uint64_t>(t.requeues);
    if (t.folded) ++nsr.folded;
    if (t.discarded) ++nsr.discarded;
    if (t.failed) ++nsr.failed;
    if (t.abandoned) ++nsr.abandoned;
  }
  report.traces = traces.size();
  for (auto& [ns, nsr] : nsReports) {
    nsr.ns = ns;
    report.namespaces.push_back(nsr);
  }

  // 4. Worker utilization (busy fraction of the run's wall span) and
  // clock-offset annotations.
  for (auto& [rank, w] : workers) {
    if (const auto it = offsets.find(rank); it != offsets.end()) {
      w.clockOffsetSeconds = it->second;
      w.offsetKnown = true;
    }
    if (report.wallSeconds > 0.0) w.utilization = w.busySeconds / report.wallSeconds;
    report.workers.push_back(w);
  }

  // 5. Stragglers: the slowest shard lifecycles, largest first.
  std::vector<ShardTrace> byDuration;
  byDuration.reserve(traces.size());
  for (const auto& [id, t] : traces) byDuration.push_back(t);
  std::sort(byDuration.begin(), byDuration.end(),
            [](const ShardTrace& a, const ShardTrace& b) {
              return a.totalSeconds > b.totalSeconds;
            });
  if (topStragglers >= 0 &&
      byDuration.size() > static_cast<std::size_t>(topStragglers)) {
    byDuration.resize(static_cast<std::size_t>(topStragglers));
  }
  report.stragglers = std::move(byDuration);
  return report;
}

}  // namespace sfopt::telemetry
