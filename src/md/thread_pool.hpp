#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sfopt::md {

/// Persistent worker pool for the force kernel's fork/join pattern.
///
/// `ThreadPool(T)` provides T-way parallelism: it spawns T-1 worker
/// threads and the caller of run() executes tasks too, so a pool of
/// size 1 never context-switches (it degenerates to a plain loop).
/// Workers sleep on a condition variable between jobs — force
/// evaluations are far apart compared to a wake-up, and sleeping keeps
/// the pool honest under ThreadSanitizer and on oversubscribed hosts.
///
/// Tasks are claimed dynamically (per-job atomic counter), which is safe
/// for deterministic reductions as long as the *task index* — not the
/// executing thread — selects the output buffer.  Each run() owns its
/// job state through a shared_ptr, so a worker that wakes late only ever
/// sees its own (already exhausted) job, never a successor's counters.
class ThreadPool {
 public:
  /// `parallelism` >= 1 is the total concurrency including the caller.
  explicit ThreadPool(int parallelism);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  /// Total concurrency (workers + the calling thread).
  [[nodiscard]] int parallelism() const noexcept {
    return static_cast<int>(workers_.size()) + 1;
  }

  /// Execute fn(0) ... fn(tasks-1) across the pool and the calling
  /// thread; returns when all tasks have finished.  fn must tolerate
  /// concurrent invocation with distinct task indices.
  void run(int tasks, const std::function<void(int)>& fn);

 private:
  struct Job {
    const std::function<void(int)>* fn = nullptr;  ///< alive while tasks remain
    int tasks = 0;
    std::atomic<int> next{0};  ///< next unclaimed task index
    int completed = 0;         ///< guarded by the pool mutex
  };

  void workerLoop();
  /// Claim and execute this job's remaining tasks; report completions.
  void drain(Job& job);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::shared_ptr<Job> job_;      ///< guarded by mutex_; null when idle
  std::uint64_t generation_ = 0;  ///< guarded by mutex_
  bool stop_ = false;             ///< guarded by mutex_
};

}  // namespace sfopt::md
