#include "md/cell_list.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <utility>
#include <vector>

#include "md/forces.hpp"
#include "md/integrator.hpp"
#include "md/neighbor_list.hpp"
#include "md/system.hpp"
#include "md/thread_pool.hpp"

namespace {

using namespace sfopt::md;

// 216 waters: box ~18.6 A, so the 5 A list radius (cutoff 4 + skin 1)
// admits 3 cells per dimension and the cell-list path is active.
WaterSystem cellSystem(std::uint64_t seed = 3) {
  return buildWaterLattice(216, 0.997, 298.0, tip4pPublished(), 4.0, seed);
}

/// Scramble positions so configurations are not lattice-structured.
void randomizePositions(WaterSystem& sys, std::uint64_t seed) {
  std::mt19937_64 gen(seed);
  std::uniform_real_distribution<double> jitter(-0.4, 0.4);
  // Also push some molecules across the periodic boundary: unwrapped
  // coordinates must bin correctly regardless of image.
  std::uniform_int_distribution<int> images(-2, 2);
  for (int m = 0; m < sys.molecules(); ++m) {
    const Vec3 shift{sys.box().edge() * images(gen), sys.box().edge() * images(gen),
                     sys.box().edge() * images(gen)};
    for (int s = 0; s < kSitesPerMolecule; ++s) {
      auto& p = sys.positions[static_cast<std::size_t>(m * kSitesPerMolecule + s)];
      p += shift + Vec3{jitter(gen), jitter(gen), jitter(gen)};
    }
  }
}

TEST(CellList, AdmissionRule) {
  // 64 waters: box ~12.4 A -> 2 cells/dim at 5 A; not admissible.
  const auto small = buildWaterLattice(64, 0.997, 298.0, tip4pPublished(), 4.0, 1);
  EXPECT_FALSE(CellList::admits(small.box(), 5.0));
  EXPECT_THROW(CellList(small.box(), 5.0), std::invalid_argument);

  const auto big = cellSystem();
  EXPECT_TRUE(CellList::admits(big.box(), 5.0));
  CellList cells(big.box(), 5.0);
  EXPECT_EQ(cells.cellsPerDim(), 3);
  EXPECT_GE(cells.cellEdge(), 5.0);
}

TEST(CellList, CandidatePairsCoverEveryCloseBruteForcePair) {
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    auto sys = cellSystem(seed);
    randomizePositions(sys, seed * 1000 + 5);
    CellList cells(sys.box(), 5.0);
    cells.bin(sys.positions);

    std::vector<std::pair<int, int>> candidates;
    cells.forEachCandidatePair([&](int i, int j, const Vec3& dr) {
      ASSERT_LT(i, j);
      // Within the interaction radius the adjacency-image displacement
      // must agree in magnitude with the minimum image.
      const Vec3 mi =
          sys.box().minimumImage(sys.positions[static_cast<std::size_t>(i)],
                                 sys.positions[static_cast<std::size_t>(j)]);
      if (normSquared(dr) < 25.0) {
        ASSERT_NEAR(normSquared(dr), normSquared(mi), 1e-9);
      }
      candidates.emplace_back(i, j);
    });
    std::sort(candidates.begin(), candidates.end());
    // Exactly once each.
    ASSERT_TRUE(std::adjacent_find(candidates.begin(), candidates.end()) ==
                candidates.end());

    // Every pair within the interaction radius must be a candidate.
    for (int i = 0; i < sys.sites(); ++i) {
      for (int j = i + 1; j < sys.sites(); ++j) {
        const Vec3 d = sys.box().minimumImage(sys.positions[static_cast<std::size_t>(i)],
                                              sys.positions[static_cast<std::size_t>(j)]);
        if (normSquared(d) < 25.0) {
          ASSERT_TRUE(std::binary_search(candidates.begin(), candidates.end(),
                                         std::make_pair(i, j)))
              << "missing close pair (" << i << ", " << j << ") seed " << seed;
        }
      }
    }
  }
}

TEST(CellList, NeighborListPairsIdenticalUnderBothStrategies) {
  for (std::uint64_t seed : {2ULL, 11ULL, 99ULL}) {
    auto sys = cellSystem(seed);
    randomizePositions(sys, seed);
    NeighborList viaCells(4.0, 1.0, NeighborStrategy::kCellList);
    NeighborList viaBrute(4.0, 1.0, NeighborStrategy::kBruteForce);
    viaCells.rebuild(sys);
    viaBrute.rebuild(sys);
    EXPECT_TRUE(viaCells.lastRebuildUsedCells());
    EXPECT_FALSE(viaBrute.lastRebuildUsedCells());
    // Same pairs in the same (lexicographic) order: the force loop is
    // bitwise independent of the build strategy.
    ASSERT_EQ(viaCells.pairs(), viaBrute.pairs()) << "seed " << seed;
  }
}

TEST(CellList, AutoStrategyFallsBackBelowThreeCellsPerDimension) {
  // 64 molecules: 2 cells/dim at the 5 A radius -> brute-force fallback.
  auto small = buildWaterLattice(64, 0.997, 298.0, tip4pPublished(), 4.0, 5);
  NeighborList list(4.0, 1.0);
  list.rebuild(small);
  EXPECT_FALSE(list.lastRebuildUsedCells());
  EXPECT_EQ(list.cellsPerDim(), 0);

  // 216 molecules: 3 cells/dim -> the cell path engages automatically.
  auto big = cellSystem();
  NeighborList bigList(4.0, 1.0);
  bigList.rebuild(big);
  EXPECT_TRUE(bigList.lastRebuildUsedCells());
  EXPECT_EQ(bigList.cellsPerDim(), 3);
  EXPECT_GT(bigList.averageCellOccupancy(), 0.0);
  EXPECT_GE(bigList.maxCellOccupancy(), 1);
}

TEST(CellList, SerialCellListAndParallelForcesAgree) {
  auto sysAll = cellSystem(13);
  randomizePositions(sysAll, 77);
  auto sysList = sysAll;
  auto sysPar = sysAll;

  const ForceResult all = computeForces(sysAll);  // O(N^2) reference
  NeighborList list(4.0, 1.0, NeighborStrategy::kCellList);
  list.rebuild(sysList);
  const ForceResult viaList = computeForces(sysList, list);
  ParallelForceKernel kernel(4);
  const ForceResult viaPar = kernel.compute(sysPar, list);

  // All-pairs and cell-list walk the contributing pairs in the same
  // lexicographic order: bitwise identical.
  EXPECT_EQ(all.potential, viaList.potential);
  EXPECT_EQ(all.virial, viaList.virial);
  for (std::size_t i = 0; i < sysAll.forces.size(); ++i) {
    EXPECT_EQ(sysAll.forces[i], sysList.forces[i]) << "site " << i;
  }

  // The parallel reduction reassociates sums: agreement to 1e-12 (relative).
  const auto near = [](double a, double b) {
    EXPECT_NEAR(a, b, 1e-12 * std::max(1.0, std::abs(a)));
  };
  near(all.potential, viaPar.potential);
  near(all.lennardJones, viaPar.lennardJones);
  near(all.coulomb, viaPar.coulomb);
  near(all.intramolecular, viaPar.intramolecular);
  near(all.virial, viaPar.virial);
  for (std::size_t i = 0; i < sysAll.forces.size(); ++i) {
    near(sysAll.forces[i].x, sysPar.forces[i].x);
    near(sysAll.forces[i].y, sysPar.forces[i].y);
    near(sysAll.forces[i].z, sysPar.forces[i].z);
  }
  EXPECT_EQ(viaList.pairsEvaluated, viaPar.pairsEvaluated);
}

TEST(CellList, ParallelForcesBitwiseReproduciblePerThreadCount) {
  auto sys = cellSystem(21);
  randomizePositions(sys, 9);
  NeighborList list(4.0, 1.0);
  list.rebuild(sys);

  ParallelForceKernel kernel(3);
  auto sysA = sys;
  auto sysB = sys;
  const ForceResult a = kernel.compute(sysA, list);
  const ForceResult b = kernel.compute(sysB, list);  // same kernel, repeated
  ParallelForceKernel fresh(3);
  auto sysC = sys;
  const ForceResult c = fresh.compute(sysC, list);  // fresh pool, same count

  EXPECT_EQ(a.potential, b.potential);
  EXPECT_EQ(a.potential, c.potential);
  EXPECT_EQ(a.virial, b.virial);
  EXPECT_EQ(a.virial, c.virial);
  for (std::size_t i = 0; i < sys.forces.size(); ++i) {
    EXPECT_EQ(sysA.forces[i], sysB.forces[i]) << "site " << i;
    EXPECT_EQ(sysA.forces[i], sysC.forces[i]) << "site " << i;
  }
}

TEST(CellList, ParallelTrajectoryBitwiseReproducible) {
  // Two independent 50-step runs at forceThreads = 3 must agree bit for
  // bit — the acceptance criterion for the deterministic reduction.
  auto sysA = cellSystem(31);
  auto sysB = sysA;
  VelocityVerlet a(sysA, {.dtPs = 0.0002, .useNeighborList = true, .neighborSkin = 1.0,
                          .forceThreads = 3});
  VelocityVerlet b(sysB, {.dtPs = 0.0002, .useNeighborList = true, .neighborSkin = 1.0,
                          .forceThreads = 3});
  for (int step = 0; step < 50; ++step) {
    const auto fa = a.step();
    const auto fb = b.step();
    ASSERT_EQ(fa.potential, fb.potential) << "step " << step;
  }
  for (std::size_t i = 0; i < sysA.positions.size(); ++i) {
    ASSERT_EQ(sysA.positions[i], sysB.positions[i]) << "site " << i;
  }
}

TEST(CellList, SerialAndSingleThreadKernelTrajectoriesIdentical) {
  // forceThreads = 1 must be the exact serial path (default unchanged).
  auto sysA = cellSystem(17);
  auto sysB = sysA;
  VelocityVerlet serial(sysA, {.dtPs = 0.0002, .useNeighborList = true,
                               .neighborSkin = 1.0});
  VelocityVerlet oneThread(sysB, {.dtPs = 0.0002, .useNeighborList = true,
                                  .neighborSkin = 1.0, .forceThreads = 1});
  for (int step = 0; step < 30; ++step) {
    ASSERT_EQ(serial.step().potential, oneThread.step().potential) << "step " << step;
  }
}

TEST(CellList, IntegratorRejectsParallelWithoutNeighborList) {
  auto sys = buildWaterLattice(8, 0.997, 298.0, tip4pPublished(), 3.0, 1);
  EXPECT_THROW(VelocityVerlet(sys, {.forceThreads = 4}), std::invalid_argument);
  EXPECT_THROW(VelocityVerlet(sys, {.forceThreads = 0}), std::invalid_argument);
}

TEST(CellList, PerfCountersReportTheForcePath) {
  auto sys = cellSystem(41);
  VelocityVerlet vv(sys, {.dtPs = 0.0002, .useNeighborList = true, .neighborSkin = 1.0,
                          .forceThreads = 2});
  (void)vv.run(40);
  const MdPerfCounters perf = vv.perfCounters();
  EXPECT_EQ(perf.forceEvaluations, 41);  // constructor eval + 40 steps
  EXPECT_GT(perf.pairsEvaluated, 0);
  EXPECT_GT(perf.pairsPerEvaluation(), 0.0);
  EXPECT_GE(perf.neighborRebuilds, 1);
  EXPECT_GT(perf.forceSeconds, 0.0);
  EXPECT_TRUE(perf.cellListUsed);
  EXPECT_EQ(perf.cellsPerDim, 3);
  EXPECT_EQ(perf.forceThreads, 2);
  EXPECT_GT(perf.maxDriftSeen, 0.0);
}

TEST(ThreadPool, RunsEveryTaskExactlyOnceAcrossReuse) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.parallelism(), 4);
  for (int round = 0; round < 50; ++round) {
    std::vector<int> hits(17, 0);
    pool.run(17, [&](int t) { ++hits[static_cast<std::size_t>(t)]; });
    for (int h : hits) ASSERT_EQ(h, 1) << "round " << round;
  }
  pool.run(0, [](int) { FAIL() << "no tasks requested"; });
}

}  // namespace
