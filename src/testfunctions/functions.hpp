#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sfopt::testfunctions {

/// Generalized Rosenbrock "banana" function in d >= 2 dimensions
/// (paper eqs. 3.1 / 3.2):
///
///   f(x) = sum_{i=2}^{d} [ (1 - x_{i-1})^2 + 100 (x_i - x_{i-1}^2)^2 ]
///
/// Global minimum f(1, ..., 1) = 0.
[[nodiscard]] double rosenbrock(std::span<const double> x);

/// Gradient of the generalized Rosenbrock function (used by tests to verify
/// stationarity at the optimum, not by the derivative-free algorithms).
[[nodiscard]] std::vector<double> rosenbrockGradient(std::span<const double> x);

/// Powell's singular function in 4 dimensions (paper eq. 3.3):
///
///   f(x) = (x1 + 10 x2)^2 + 5 (x3 - x4)^2 + (x2 - 2 x3)^4 + 10 (x1 - x4)^4
///
/// Global minimum f(0, 0, 0, 0) = 0 with a singular Hessian at the optimum,
/// which makes late-stage progress hard for direct search methods.
[[nodiscard]] double powell(std::span<const double> x);

/// Sphere: f(x) = sum x_i^2, minimum at the origin.  The easiest smoke-test
/// landscape; any reasonable optimizer must crush it.
[[nodiscard]] double sphere(std::span<const double> x);

/// Anisotropic quadratic bowl: f(x) = sum (i+1) x_i^2.
[[nodiscard]] double quadraticBowl(std::span<const double> x);

/// Rastrigin: f(x) = 10 d + sum [x_i^2 - 10 cos(2 pi x_i)], highly
/// multimodal, minimum at the origin.  Used in extended tests to show the
/// local-search nature of simplex (convergence to *a* local minimum).
[[nodiscard]] double rastrigin(std::span<const double> x);

/// Himmelblau (2-d): four global minima of value 0.  Used in extended tests.
[[nodiscard]] double himmelblau(std::span<const double> x);

/// The known minimizer of the generalized Rosenbrock function: (1, ..., 1).
[[nodiscard]] std::vector<double> rosenbrockMinimizer(std::size_t dimension);

/// The known minimizer of the Powell function: (0, 0, 0, 0).
[[nodiscard]] std::vector<double> powellMinimizer();

}  // namespace sfopt::testfunctions
