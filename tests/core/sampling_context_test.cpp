#include "core/sampling_context.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tests/core/test_helpers.hpp"

namespace {

using namespace sfopt;
using core::SamplingContext;
using core::SigmaMode;
using core::Vertex;

TEST(SamplingContext, CreateVertexSamplesAndCounts) {
  auto obj = test::noisySphere(2, 1.0);
  SamplingContext ctx(obj);
  auto v = ctx.createVertex({1.0, 1.0}, 5);
  EXPECT_EQ(v->sampleCount(), 5);
  EXPECT_EQ(ctx.totalSamples(), 5);
  EXPECT_DOUBLE_EQ(ctx.now(), 0.0);  // creation does not advance the clock
}

TEST(SamplingContext, VertexIdsAreUnique) {
  auto obj = test::noisySphere(2, 1.0);
  SamplingContext ctx(obj);
  auto a = ctx.createVertex({0.0, 0.0}, 1);
  auto b = ctx.createVertex({0.0, 0.0}, 1);
  EXPECT_NE(a->id(), b->id());
  EXPECT_EQ(ctx.verticesCreated(), 2);
}

TEST(SamplingContext, DimensionMismatchThrows) {
  auto obj = test::noisySphere(3, 1.0);
  SamplingContext ctx(obj);
  EXPECT_THROW((void)ctx.createVertex({1.0, 1.0}, 1), std::invalid_argument);
}

TEST(SamplingContext, RefineRespectsCap) {
  auto obj = test::noisySphere(2, 1.0);
  SamplingContext::Options opts;
  opts.maxSamplesPerVertex = 10;
  SamplingContext ctx(obj, opts);
  auto v = ctx.createVertex({0.0, 0.0}, 4);
  EXPECT_EQ(ctx.refine(*v, 100), 6);  // only room for 6 more
  EXPECT_EQ(v->sampleCount(), 10);
  EXPECT_TRUE(ctx.atSampleCap(*v));
  EXPECT_EQ(ctx.refine(*v, 5), 0);
}

TEST(SamplingContext, CoSampleChargesMaxDuration) {
  auto obj = test::noisySphere(2, 1.0);  // sampleDuration = 1
  SamplingContext ctx(obj);
  auto a = ctx.createVertex({0.0, 0.0}, 1);
  auto b = ctx.createVertex({1.0, 1.0}, 1);
  ctx.coSample({{a.get(), 10}, {b.get(), 3}});
  // Concurrent refinement: wall time advances by max(10, 3) * dt = 10.
  EXPECT_DOUBLE_EQ(ctx.now(), 10.0);
  EXPECT_EQ(a->sampleCount(), 11);
  EXPECT_EQ(b->sampleCount(), 4);
}

TEST(SamplingContext, CoSampleMaxIsOverSamplesActuallyTaken) {
  auto obj = test::noisySphere(2, 1.0);
  SamplingContext::Options opts;
  opts.maxSamplesPerVertex = 5;
  SamplingContext ctx(obj, opts);
  auto a = ctx.createVertex({0.0, 0.0}, 4);
  auto b = ctx.createVertex({1.0, 1.0}, 1);
  ctx.coSample({{a.get(), 100}, {b.get(), 2}});
  // a could only take 1 more (cap 5); b took 2; charge max = 2.
  EXPECT_DOUBLE_EQ(ctx.now(), 2.0);
}

TEST(SamplingContext, SigmaEstimatedVsExact) {
  auto obj = test::noisySphere(2, 4.0);
  SamplingContext estCtx(obj, {.sigmaMode = SigmaMode::Estimated});
  SamplingContext exactCtx(obj, {.sigmaMode = SigmaMode::Exact});
  auto v = estCtx.createVertex({0.5, 0.5}, 64);
  // Exact: sigma0 / sqrt(64) = 0.5.
  EXPECT_DOUBLE_EQ(exactCtx.sigma(*v), 0.5);
  // Estimated should be in the same ballpark (loose tolerance).
  EXPECT_NEAR(estCtx.sigma(*v), 0.5, 0.35);
}

TEST(SamplingContext, TrueValuePassesThrough) {
  auto obj = test::noisySphere(2, 1.0);
  SamplingContext ctx(obj);
  auto v = ctx.createVertex({3.0, 4.0}, 1);
  ASSERT_TRUE(ctx.trueValue(*v).has_value());
  EXPECT_DOUBLE_EQ(*ctx.trueValue(*v), 25.0);
}

TEST(SamplingContext, EstimateConvergesToTrueValue) {
  auto obj = test::noisySphere(2, 5.0);
  SamplingContext ctx(obj);
  auto v = ctx.createVertex({1.0, 2.0}, 2);
  ctx.refine(*v, 40000);
  EXPECT_NEAR(v->mean(), 5.0, 0.15);
  EXPECT_LT(ctx.sigma(*v), 0.05);
}

TEST(SamplingContext, RejectsBadOptions) {
  auto obj = test::noisySphere(2, 1.0);
  SamplingContext::Options opts;
  opts.maxSamplesPerVertex = 0;
  EXPECT_THROW(SamplingContext(obj, opts), std::invalid_argument);
}

TEST(SamplingContext, CoSampleCoalescesDuplicateVertices) {
  // Regression: two requests for the same vertex used to become two
  // batches starting at the same sampleCount, i.e. the same SampleKeys
  // drawn twice.  They must coalesce into one contiguous batch.
  auto obj = test::noisySphere(2, 1.0);
  SamplingContext ctx(obj);
  auto a = ctx.createVertex({0.5, -0.5}, 1);
  ctx.coSample({{a.get(), 5}, {a.get(), 3}});
  EXPECT_EQ(a->sampleCount(), 9);
  // One vertex running both draws back-to-back: the charge is the sum.
  EXPECT_DOUBLE_EQ(ctx.now(), 8.0);

  // The moments are exactly those of the same refinement issued once.
  SamplingContext ref(obj);
  auto b = ref.createVertex({0.5, -0.5}, 1);
  (void)ref.refine(*b, 8);
  ASSERT_EQ(a->id(), b->id());
  EXPECT_EQ(a->mean(), b->mean());
  EXPECT_EQ(a->sampleCount(), b->sampleCount());
}

TEST(SamplingContext, CoalescedDuplicatesRespectTheCap) {
  auto obj = test::noisySphere(2, 1.0);
  SamplingContext::Options opts;
  opts.maxSamplesPerVertex = 10;
  SamplingContext ctx(obj, opts);
  auto a = ctx.createVertex({0.0, 0.0}, 4);
  ctx.coSample({{a.get(), 5}, {a.get(), 100}});
  EXPECT_EQ(a->sampleCount(), 10);   // summed take clamped to the room left
  EXPECT_DOUBLE_EQ(ctx.now(), 6.0);  // charged what was actually taken
}

TEST(SamplingContext, DuplicatesChargeTheirSummedTakeAgainstTheMax) {
  auto obj = test::noisySphere(2, 1.0);
  SamplingContext ctx(obj);
  auto a = ctx.createVertex({0.0, 0.0}, 1);
  auto b = ctx.createVertex({1.0, 1.0}, 1);
  ctx.coSample({{a.get(), 5}, {b.get(), 3}, {a.get(), 5}});
  // a's coalesced take is 10, b's is 3; the round costs max(10, 3).
  EXPECT_DOUBLE_EQ(ctx.now(), 10.0);
  EXPECT_EQ(a->sampleCount(), 11);
  EXPECT_EQ(b->sampleCount(), 4);
}

TEST(SamplingContext, NegativeRefineThrows) {
  auto obj = test::noisySphere(2, 1.0);
  SamplingContext ctx(obj);
  auto v = ctx.createVertex({0.0, 0.0}, 1);
  EXPECT_THROW((void)ctx.refine(*v, -1), std::invalid_argument);
}

}  // namespace
