#pragma once

#include <utility>
#include <vector>

#include "md/system.hpp"

namespace sfopt::md {

/// How NeighborList::rebuild enumerates candidate pairs.
enum class NeighborStrategy {
  kAuto,        ///< cell list when the box admits >= 3 cells/dim, else brute force
  kBruteForce,  ///< always the O(N^2) all-pairs scan
  kCellList,    ///< always the O(N) cell list (throws on too-small boxes)
};

/// Verlet neighbor list: the intermolecular site pairs within
/// cutoff + skin, rebuilt only when some site has moved more than skin/2
/// since the last rebuild (the classic sufficient condition for no pair
/// inside the cutoff to be missing from the list).
///
/// Rebuilds go through a linked-cell decomposition (`CellList`) in O(N)
/// whenever the box admits >= 3 cells per dimension at the list radius,
/// falling back to the O(N^2) all-pairs scan for small boxes.  Either
/// way the pair list is emitted in ascending (i, j) order, so the force
/// loop's accumulation order — and hence every trajectory bit — is
/// independent of the build strategy.
class NeighborList {
 public:
  /// skin > 0; effective list radius is cutoff + skin.
  NeighborList(double cutoff, double skin,
               NeighborStrategy strategy = NeighborStrategy::kAuto);

  /// Rebuild from the system's current positions.
  void rebuild(const WaterSystem& sys);

  /// Has any site moved more than skin/2 since the last rebuild?
  /// (Always true before the first rebuild.)  Early-exits on the first
  /// offending site; the drift scanned so far feeds maxDriftSeen().
  [[nodiscard]] bool needsRebuild(const WaterSystem& sys) const;

  /// Rebuild if needed; returns true when a rebuild happened.
  bool update(const WaterSystem& sys);

  [[nodiscard]] const std::vector<std::pair<int, int>>& pairs() const noexcept {
    return pairs_;
  }
  [[nodiscard]] double cutoff() const noexcept { return cutoff_; }
  [[nodiscard]] double skin() const noexcept { return skin_; }
  [[nodiscard]] NeighborStrategy strategy() const noexcept { return strategy_; }
  [[nodiscard]] std::int64_t rebuilds() const noexcept { return rebuilds_; }

  /// Perf counters for the most recent rebuild / drift checks.
  [[nodiscard]] bool lastRebuildUsedCells() const noexcept { return usedCells_; }
  [[nodiscard]] int cellsPerDim() const noexcept { return cellsPerDim_; }
  [[nodiscard]] double averageCellOccupancy() const noexcept { return avgOccupancy_; }
  [[nodiscard]] int maxCellOccupancy() const noexcept { return maxOccupancy_; }
  /// Largest site displacement (A) relative to the rebuild reference that
  /// needsRebuild() has observed over this list's lifetime.  Because the
  /// check early-exits, a triggering call records the first offending
  /// drift, not a full-scan max.
  [[nodiscard]] double maxDriftSeen() const noexcept;

 private:
  double cutoff_;
  double skin_;
  NeighborStrategy strategy_;
  std::vector<std::pair<int, int>> pairs_;
  std::vector<std::pair<int, int>> sortScratch_;  ///< counting-sort scratch
  std::vector<int> countScratch_;                 ///< per-site pair counts
  std::vector<Vec3> referencePositions_;
  std::int64_t rebuilds_ = 0;
  bool usedCells_ = false;
  int cellsPerDim_ = 0;
  double avgOccupancy_ = 0.0;
  int maxOccupancy_ = 0;
  mutable double maxDriftSeen2_ = 0.0;  ///< squared; updated by const needsRebuild
};

}  // namespace sfopt::md
