#include "md/simulation.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace sfopt::md;

SimulationConfig quickConfig() {
  SimulationConfig c;
  c.molecules = 27;
  c.cutoff = 4.5;
  c.rdfRMax = 4.5;
  c.rdfBins = 45;
  c.equilibrationSteps = 800;
  c.productionSteps = 300;
  c.sampleEvery = 10;
  c.seed = 11;
  return c;
}

TEST(SimulateWater, ValidatesConfig) {
  SimulationConfig c = quickConfig();
  c.productionSteps = 0;
  EXPECT_THROW((void)simulateWater(tip4pPublished(), c), std::invalid_argument);
  c = quickConfig();
  c.sampleEvery = 0;
  EXPECT_THROW((void)simulateWater(tip4pPublished(), c), std::invalid_argument);
}

TEST(SimulateWater, ProducesLiquidLikeObservables) {
  const auto obs = simulateWater(tip4pPublished(), quickConfig());
  // Cohesive liquid: negative potential energy per molecule.
  EXPECT_LT(obs.potentialPerMoleculeKcal, 0.0);
  // Temperature near the 298 K target after NVT equilibration (the small
  // box still warms a little as the lattice start keeps relaxing).
  EXPECT_NEAR(obs.temperatureK, 298.0, 120.0);
  EXPECT_EQ(obs.productionFrames, 30);
  EXPECT_GE(obs.diffusionCm2PerS, 0.0);
}

TEST(SimulateWater, RdfHasFirstSolvationPeak) {
  SimulationConfig c = quickConfig();
  c.productionSteps = 500;
  const auto obs = simulateWater(tip4pPublished(), c);
  // g_OO must peak above 1 somewhere in the hydrogen-bonding range and be
  // ~0 inside the repulsive core.
  double peak = 0.0;
  double peakR = 0.0;
  double core = 0.0;
  for (std::size_t i = 0; i < obs.gOO.r.size(); ++i) {
    if (obs.gOO.r[i] < 2.0) core = std::max(core, obs.gOO.g[i]);
    if (obs.gOO.g[i] > peak) {
      peak = obs.gOO.g[i];
      peakR = obs.gOO.r[i];
    }
  }
  EXPECT_LT(core, 0.2);
  EXPECT_GT(peak, 1.2);
  EXPECT_GT(peakR, 2.2);
  EXPECT_LT(peakR, 4.0);
}

TEST(SimulateWater, ReproducibleBySeed) {
  const auto a = simulateWater(tip4pPublished(), quickConfig());
  const auto b = simulateWater(tip4pPublished(), quickConfig());
  EXPECT_DOUBLE_EQ(a.potentialPerMoleculeKcal, b.potentialPerMoleculeKcal);
  EXPECT_DOUBLE_EQ(a.pressureAtm, b.pressureAtm);
}

TEST(SimulateWater, DifferentSeedsGiveDifferentSamples) {
  SimulationConfig c = quickConfig();
  const auto a = simulateWater(tip4pPublished(), c);
  c.seed = 12;
  const auto b = simulateWater(tip4pPublished(), c);
  EXPECT_NE(a.potentialPerMoleculeKcal, b.potentialPerMoleculeKcal);
}

TEST(SimulateWater, NveDriftIsModest) {
  const auto obs = simulateWater(tip4pPublished(), quickConfig());
  // Drift per ps must be small relative to the box potential energy scale
  // (27 molecules * ~5 kcal/mol scale).
  EXPECT_LT(std::abs(obs.nveDriftKcalPerPs), 30.0);
}

TEST(SimulateWater, WeakerChargesReduceCohesion) {
  // Turning the partial charges down makes water less bound: potential
  // energy per molecule rises toward zero.
  SimulationConfig c = quickConfig();
  const auto strong = simulateWater(WaterParameters{0.155, 3.1536, 0.52}, c);
  const auto weak = simulateWater(WaterParameters{0.155, 3.1536, 0.20}, c);
  EXPECT_GT(weak.potentialPerMoleculeKcal, strong.potentialPerMoleculeKcal);
}

}  // namespace
