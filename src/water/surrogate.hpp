#pragma once

#include <span>

#include "md/observables.hpp"
#include "md/water_model.hpp"

namespace sfopt::water {

/// The six equilibrium properties entering the cost function, in the
/// paper's units (Table 3.4): U in kJ/mol, P in atm, D in 10^-5 cm^2/s,
/// and the three RDF residuals (dimensionless RMS distances).
struct WaterProperties {
  double internalEnergyKJPerMol = 0.0;
  double pressureAtm = 0.0;
  double diffusion1e5Cm2PerS = 0.0;
  double rdfResidualOO = 0.0;
  double rdfResidualOH = 0.0;
  double rdfResidualHH = 0.0;
};

/// Calibrated surrogate of the TIP4P property response.
///
/// The paper evaluates each simplex vertex with thousands of CPU-hours of
/// NVT/NVE molecular dynamics; this class substitutes a smooth response
/// model of the six properties as functions of the three force-field
/// parameters (epsilon, sigma, qH):
///
///  * anchored so the published TIP4P parameters reproduce the published
///    TIP4P properties (U = -41.8 kJ/mol, P = 373 atm, D = 3.29e-5);
///  * first-order sensitivities carry the physical signs (stronger
///    charges bind harder: U down, D down, P down; a bigger LJ core
///    pushes P up), with magnitudes of the order seen in TIP4P
///    reparameterization studies;
///  * the RDF residuals are quadratic bowls whose minimizer sits slightly
///    off the published TIP4P parameters — mirroring the paper's finding
///    that its optimized models fit the experimental g_OO(r) slightly
///    better than TIP4P itself;
///  * far outside the physical region the response grows rapidly, giving
///    the "regions of parameter space that deliver bad property values"
///    the problem statement describes.
///
/// The noise model is layered on top by WaterCostObjective.
class Tip4pSurrogate {
 public:
  /// Properties at the given parameters.
  [[nodiscard]] WaterProperties properties(const md::WaterParameters& p) const;

  /// The parameter point the RDF residuals are anchored at (the "true"
  /// optimum of the structural part of the fit).
  [[nodiscard]] md::WaterParameters structuralOptimum() const noexcept {
    return {0.1470, 3.160, 0.5230};
  }

  /// Model g_OO(r) curve for the parameters: the experimental curve
  /// deformed by the parameter offsets (peak position tracks sigma, peak
  /// height tracks qH), as displayed in Figs 3.19-3.20.
  [[nodiscard]] md::RdfCurve modelGOO(const md::WaterParameters& p, double rMax = 8.0,
                                      int bins = 160) const;
};

}  // namespace sfopt::water
