#include "net/frame.hpp"

#include <string>

namespace sfopt::net {

namespace {

void putU16(std::vector<std::byte>& out, std::uint16_t v) {
  out.push_back(static_cast<std::byte>(v & 0xFF));
  out.push_back(static_cast<std::byte>((v >> 8) & 0xFF));
}

void putU32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
}

std::uint16_t getU16(const std::byte* p) {
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(p[0]) |
                                    (static_cast<std::uint16_t>(p[1]) << 8));
}

std::uint32_t getU32(const std::byte* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

Frame makeMessageFrame(int tag, std::vector<std::byte> payload) {
  Frame f;
  f.type = FrameType::Message;
  f.tag = tag;
  f.payload = std::move(payload);
  return f;
}

Frame makeHeartbeatFrame() { return Frame{FrameType::Heartbeat, 0, {}}; }

Frame makeHelloFrame() {
  Frame f;
  f.type = FrameType::Hello;
  putU32(f.payload, kProtocolMagic);
  putU16(f.payload, kProtocolVersion);
  return f;
}

Frame makeWelcomeFrame(int rank, int worldSize) {
  Frame f;
  f.type = FrameType::Welcome;
  putU32(f.payload, kProtocolMagic);
  putU16(f.payload, kProtocolVersion);
  putU32(f.payload, static_cast<std::uint32_t>(rank));
  putU32(f.payload, static_cast<std::uint32_t>(worldSize));
  return f;
}

void appendFrame(std::vector<std::byte>& out, const Frame& frame) {
  // Body = type byte [+ tag for messages] + payload.
  const std::size_t body =
      1 + (frame.type == FrameType::Message ? 4 : 0) + frame.payload.size();
  putU32(out, static_cast<std::uint32_t>(body));
  out.push_back(static_cast<std::byte>(frame.type));
  if (frame.type == FrameType::Message) {
    putU32(out, static_cast<std::uint32_t>(frame.tag));
  }
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
}

Hello parseHello(const Frame& frame) {
  if (frame.type != FrameType::Hello || frame.payload.size() != 6) {
    throw ProtocolError("handshake: malformed hello frame");
  }
  Hello h;
  h.magic = getU32(frame.payload.data());
  h.version = getU16(frame.payload.data() + 4);
  if (h.magic != kProtocolMagic) {
    throw ProtocolError("handshake: bad protocol magic (not an sfopt peer)");
  }
  if (h.version != kProtocolVersion) {
    throw ProtocolError("handshake: protocol version mismatch (peer v" +
                        std::to_string(h.version) + ", ours v" +
                        std::to_string(kProtocolVersion) + ")");
  }
  return h;
}

Welcome parseWelcome(const Frame& frame) {
  if (frame.type != FrameType::Welcome || frame.payload.size() != 14) {
    throw ProtocolError("handshake: malformed welcome frame");
  }
  Welcome w;
  w.magic = getU32(frame.payload.data());
  w.version = getU16(frame.payload.data() + 4);
  w.rank = static_cast<std::int32_t>(getU32(frame.payload.data() + 6));
  w.worldSize = static_cast<std::int32_t>(getU32(frame.payload.data() + 10));
  if (w.magic != kProtocolMagic) {
    throw ProtocolError("handshake: bad protocol magic (not an sfopt master)");
  }
  if (w.version != kProtocolVersion) {
    throw ProtocolError("handshake: protocol version mismatch (master v" +
                        std::to_string(w.version) + ", ours v" +
                        std::to_string(kProtocolVersion) + ")");
  }
  if (w.rank < 1 || w.worldSize < 2) {
    throw ProtocolError("handshake: master assigned an invalid rank");
  }
  return w;
}

void FrameDecoder::feed(const std::byte* data, std::size_t n) {
  // Compact the consumed prefix before it can dominate the buffer.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

std::optional<Frame> FrameDecoder::next() {
  const std::size_t avail = buf_.size() - pos_;
  if (avail < 4) return std::nullopt;
  const std::uint32_t body = getU32(buf_.data() + pos_);
  if (body < 1) throw ProtocolError("frame: empty body");
  if (body > maxFrameBytes_) {
    throw ProtocolError("frame: length prefix " + std::to_string(body) +
                        " exceeds the " + std::to_string(maxFrameBytes_) + "-byte limit");
  }
  if (avail < 4 + static_cast<std::size_t>(body)) return std::nullopt;

  const std::byte* p = buf_.data() + pos_ + 4;
  Frame f;
  const auto type = static_cast<std::uint8_t>(p[0]);
  std::size_t consumed = 1;
  switch (type) {
    case static_cast<std::uint8_t>(FrameType::Message): {
      if (body < 5) throw ProtocolError("frame: truncated message header");
      f.type = FrameType::Message;
      f.tag = static_cast<std::int32_t>(getU32(p + 1));
      consumed = 5;
      break;
    }
    case static_cast<std::uint8_t>(FrameType::Heartbeat):
      f.type = FrameType::Heartbeat;
      break;
    case static_cast<std::uint8_t>(FrameType::Hello):
      f.type = FrameType::Hello;
      break;
    case static_cast<std::uint8_t>(FrameType::Welcome):
      f.type = FrameType::Welcome;
      break;
    default:
      throw ProtocolError("frame: unknown frame type " + std::to_string(type));
  }
  f.payload.assign(p + consumed, p + body);
  pos_ += 4 + static_cast<std::size_t>(body);
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  }
  return f;
}

}  // namespace sfopt::net
