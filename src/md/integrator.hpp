#pragma once

#include <memory>

#include "md/forces.hpp"
#include "md/neighbor_list.hpp"
#include "md/system.hpp"

namespace sfopt::telemetry {
class Telemetry;
class Counter;
class Histogram;
}

namespace sfopt::md {

/// Velocity-Verlet integrator with an optional Berendsen weak-coupling
/// thermostat (used for NVT equilibration; disabled for NVE production).
class VelocityVerlet {
 public:
  struct Options {
    double dtPs = 0.0005;         ///< timestep (0.5 fs default, flexible water)
    double targetTemperatureK = 0.0;  ///< 0 disables the thermostat (NVE)
    double berendsenTauPs = 0.1;  ///< thermostat coupling time
    /// Use a Verlet neighbor list for the nonbonded loop (auto-rebuilt
    /// whenever a site drifts more than skin/2).  Requires
    /// cutoff + skin <= box/2.
    bool useNeighborList = false;
    double neighborSkin = 1.0;    ///< A
    /// Threads for the nonbonded force loop (1 = today's serial path).
    /// Values > 1 require useNeighborList — the parallel kernel
    /// partitions the pair list — and reduce per-block partials in fixed
    /// order, so trajectories are bitwise reproducible per thread count.
    int forceThreads = 1;
    /// Optional observability spine (non-owning; must outlive the
    /// integrator).  Registers the md.* force-path metrics once at
    /// construction; the per-step cost when attached is a few relaxed
    /// atomic adds.
    telemetry::Telemetry* telemetry = nullptr;
  };

  VelocityVerlet(WaterSystem& sys, Options options);

  /// Advance one step; returns the force-evaluation result at the new
  /// positions (forces are kept consistent with positions).
  ForceResult step();

  /// Advance n steps, returning the last force result.
  ForceResult run(int steps);

  [[nodiscard]] const Options& options() const noexcept { return options_; }
  [[nodiscard]] const ForceResult& lastForces() const noexcept { return last_; }

  /// Rebuild count of the neighbor list (0 when lists are disabled).
  [[nodiscard]] std::int64_t neighborRebuilds() const noexcept {
    return list_ ? list_->rebuilds() : 0;
  }

  /// Aggregated force-path counters since construction.
  [[nodiscard]] MdPerfCounters perfCounters() const noexcept;

 private:
  ForceResult evaluateForces();

  WaterSystem& sys_;
  Options options_;
  std::unique_ptr<NeighborList> list_;
  std::unique_ptr<ParallelForceKernel> kernel_;  ///< only when forceThreads > 1
  ForceResult last_;
  std::int64_t forceEvaluations_ = 0;
  std::int64_t pairsEvaluated_ = 0;
  double forceSeconds_ = 0.0;

  /// Pre-registered handles; non-null exactly when options_.telemetry is.
  telemetry::Counter* telForceEvals_ = nullptr;
  telemetry::Counter* telPairs_ = nullptr;
  telemetry::Histogram* telForceSeconds_ = nullptr;
};

}  // namespace sfopt::md
