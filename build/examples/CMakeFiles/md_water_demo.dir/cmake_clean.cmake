file(REMOVE_RECURSE
  "CMakeFiles/md_water_demo.dir/md_water_demo.cpp.o"
  "CMakeFiles/md_water_demo.dir/md_water_demo.cpp.o.d"
  "md_water_demo"
  "md_water_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_water_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
