#include "mw/vertex_server.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace sfopt::mw {

VertexServer::VertexServer(const noise::StochasticObjective& objective, int clients)
    : objective_(objective) {
  if (clients < 1) throw std::invalid_argument("VertexServer: clients must be >= 1");
  const auto n = static_cast<std::size_t>(clients);
  jobs_.resize(n);
  partials_.resize(n);
  partialChunks_.resize(n);
  clientSamples_.assign(n, 0);
  clientGeneration_.assign(n, 0);
  clients_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    clients_.emplace_back([this, i] { clientLoop(i); });
  }
}

VertexServer::~VertexServer() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  jobReady_.notify_all();
  for (auto& t : clients_) t.join();
}

stats::Welford VertexServer::runBatch(const core::SamplingBackend::BatchRequest& request) {
  if (request.count < 0) throw std::invalid_argument("VertexServer::runBatch: negative count");
  const auto n = clients_.size();
  {
    std::unique_lock lock(mutex_);
    // Split into contiguous index ranges; the first (count % n) clients
    // take one extra sample.
    const std::int64_t base = request.count / static_cast<std::int64_t>(n);
    const std::int64_t extra = request.count % static_cast<std::int64_t>(n);
    std::uint64_t index = request.startIndex;
    for (std::size_t i = 0; i < n; ++i) {
      const std::int64_t take = base + (static_cast<std::int64_t>(i) < extra ? 1 : 0);
      jobs_[i] = ClientJob{{request.x.begin(), request.x.end()}, request.vertexId, index, take};
      partials_[i].reset();
      index += static_cast<std::uint64_t>(take);
    }
    ++generation_;
    remaining_ = static_cast<int>(n);
    jobReady_.notify_all();
    jobDone_.wait(lock, [this] { return remaining_ == 0; });
    stats::Welford merged;
    for (const auto& p : partials_) merged.merge(p);
    return merged;
  }
}

std::vector<stats::Welford> VertexServer::runBatchChunks(
    const core::SamplingBackend::BatchRequest& request) {
  if (request.count < 0) {
    throw std::invalid_argument("VertexServer::runBatchChunks: negative count");
  }
  if (request.count == 0) return {};
  const auto n = static_cast<std::int64_t>(clients_.size());
  const std::int64_t totalChunks = core::evalChunkCount(request.count);
  std::unique_lock lock(mutex_);
  // Hand out whole chunks contiguously; the first (totalChunks % n)
  // clients take one extra chunk.  Only the batch's final chunk can be
  // partial, and it always lands at the end of the last loaded client.
  const std::int64_t base = totalChunks / n;
  const std::int64_t extra = totalChunks % n;
  std::int64_t chunkFirst = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t myChunks = base + (i < extra ? 1 : 0);
    const std::int64_t sampleOffset = chunkFirst * core::kEvalChunkSamples;
    const std::int64_t myCount =
        myChunks == 0
            ? 0
            : std::min(myChunks * core::kEvalChunkSamples, request.count - sampleOffset);
    jobs_[static_cast<std::size_t>(i)] =
        ClientJob{{request.x.begin(), request.x.end()},
                  request.vertexId,
                  request.startIndex + static_cast<std::uint64_t>(sampleOffset),
                  myCount,
                  /*chunked=*/true};
    partialChunks_[static_cast<std::size_t>(i)].clear();
    partials_[static_cast<std::size_t>(i)].reset();
    chunkFirst += myChunks;
  }
  ++generation_;
  remaining_ = static_cast<int>(n);
  jobReady_.notify_all();
  jobDone_.wait(lock, [this] { return remaining_ == 0; });
  std::vector<stats::Welford> chunks;
  chunks.reserve(static_cast<std::size_t>(totalChunks));
  for (const auto& part : partialChunks_) {
    chunks.insert(chunks.end(), part.begin(), part.end());
  }
  return chunks;
}

void VertexServer::clientLoop(std::size_t clientIndex) {
  std::uint64_t seen = 0;
  for (;;) {
    ClientJob job;
    {
      std::unique_lock lock(mutex_);
      jobReady_.wait(lock, [&] { return stopping_ || generation_ > seen; });
      if (stopping_) return;
      seen = generation_;
      job = jobs_[clientIndex];
    }
    // The "simulation": sample the objective outside the lock.
    stats::Welford partial;
    std::vector<stats::Welford> chunkPartials;
    if (job.chunked) {
      std::int64_t remaining = job.count;
      std::uint64_t index = job.startIndex;
      std::array<double, core::kEvalChunkSamples> buffer;
      while (remaining > 0) {
        const std::int64_t take = std::min(remaining, core::kEvalChunkSamples);
        for (std::int64_t i = 0; i < take; ++i) {
          const noise::SampleKey key{job.vertexId, index + static_cast<std::uint64_t>(i)};
          buffer[static_cast<std::size_t>(i)] = objective_.sample(job.x, key);
        }
        // Canonical chunk-interior accumulation (SIMD-dispatched): the
        // chunk's moments depend only on its sample stream, never on
        // which client or worker computed it.
        chunkPartials.push_back(core::accumulateEvalChunk(
            {buffer.data(), static_cast<std::size_t>(take)}));
        index += static_cast<std::uint64_t>(take);
        remaining -= take;
      }
    } else {
      for (std::int64_t i = 0; i < job.count; ++i) {
        const noise::SampleKey key{job.vertexId,
                                   job.startIndex + static_cast<std::uint64_t>(i)};
        partial.add(objective_.sample(job.x, key));
      }
    }
    {
      std::lock_guard lock(mutex_);
      partials_[clientIndex] = partial;
      partialChunks_[clientIndex] = std::move(chunkPartials);
      clientSamples_[clientIndex] += job.count;
      if (--remaining_ == 0) jobDone_.notify_all();
    }
  }
}

std::vector<std::int64_t> VertexServer::clientSampleCounts() const {
  std::lock_guard lock(mutex_);
  return clientSamples_;
}

}  // namespace sfopt::mw
