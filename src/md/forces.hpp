#pragma once

#include <cstdint>
#include <memory>

#include "md/neighbor_list.hpp"
#include "md/system.hpp"

namespace sfopt::md {

/// Energy/virial decomposition of one force evaluation, plus the perf
/// counters of that evaluation (candidate pairs visited, wall time).
struct ForceResult {
  double potential = 0.0;       ///< total potential energy, kcal/mol
  double lennardJones = 0.0;    ///< O-O LJ part
  double coulomb = 0.0;         ///< site-site electrostatic part
  double intramolecular = 0.0;  ///< bond + angle part
  double virial = 0.0;          ///< sum over pairs of r . F, kcal/mol
  std::int64_t pairsEvaluated = 0;  ///< nonbonded candidate pairs visited
  double evalSeconds = 0.0;         ///< wall time of this evaluation
};

/// Aggregated force-path performance counters over a run: what the MD
/// evaluation actually cost, and which fast paths it exercised.  Summed
/// across integrators by operator+= (counters that describe configuration
/// rather than work — threads, cell geometry — keep the last value).
struct MdPerfCounters {
  std::int64_t forceEvaluations = 0;   ///< computeForces calls
  std::int64_t pairsEvaluated = 0;     ///< nonbonded candidates visited, total
  double forceSeconds = 0.0;           ///< wall time inside force evaluations
  std::int64_t neighborRebuilds = 0;   ///< neighbor-list rebuild count
  double maxDriftSeen = 0.0;           ///< max site drift (A) seen by the skin check
  bool cellListUsed = false;           ///< last rebuild used the O(N) cell list
  int cellsPerDim = 0;                 ///< cells per box dimension (0 = brute force)
  double avgCellOccupancy = 0.0;       ///< mean sites per cell at last rebuild
  int forceThreads = 1;                ///< thread count of the force path

  /// Mean candidate pairs per force evaluation.
  [[nodiscard]] double pairsPerEvaluation() const noexcept {
    return forceEvaluations > 0
               ? static_cast<double>(pairsEvaluated) / static_cast<double>(forceEvaluations)
               : 0.0;
  }

  MdPerfCounters& operator+=(const MdPerfCounters& o) noexcept;
};

/// Compute forces into sys.forces (overwriting) and return the energy
/// decomposition.
///
/// Interactions:
///  * O-O Lennard-Jones with the parameters under optimization, truncated
///    and force-shifted at the cutoff (continuous energy and force, so NVE
///    drift stays small);
///  * site-site Coulomb (qO = -2 qH) with the same force-shifted
///    truncation — the standard minimum-image shifted-force electrostatics
///    of compact MD codes;
///  * harmonic O-H bonds and H-O-H angle (flexible SPC/Fw-style geometry).
/// Intramolecular site pairs are excluded from the nonbonded terms.
[[nodiscard]] ForceResult computeForces(WaterSystem& sys);

/// Same computation, but the nonbonded loop walks only the neighbor
/// list's pairs (the list must be current: call list.update(sys) first).
/// Identical results to the all-pairs path whenever the list radius
/// covers the cutoff — pinned down by the equivalence tests.
[[nodiscard]] ForceResult computeForces(WaterSystem& sys, const NeighborList& list);

class ThreadPool;

/// Thread-parallel force evaluation over a neighbor list.
///
/// The pair list is split into `threads` contiguous blocks; block t is
/// accumulated into thread-private force/energy/virial buffers selected
/// by the *block index* (not the executing thread), and the buffers are
/// reduced in fixed block order 0..T-1.  Results are therefore bitwise
/// reproducible for a given thread count, and agree with the serial path
/// to floating-point reassociation error (~1e-12 relative).
///
/// A kernel with threads == 1 delegates to the serial computeForces and
/// is bitwise identical to it.
class ParallelForceKernel {
 public:
  /// threads >= 1; the calling thread participates, so `threads` is the
  /// total concurrency of one evaluation.
  explicit ParallelForceKernel(int threads);
  ParallelForceKernel(const ParallelForceKernel&) = delete;
  ParallelForceKernel& operator=(const ParallelForceKernel&) = delete;
  ~ParallelForceKernel();

  [[nodiscard]] int threads() const noexcept;

  /// Compute forces into sys.forces from the (current) neighbor list.
  [[nodiscard]] ForceResult compute(WaterSystem& sys, const NeighborList& list);

 private:
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::vector<Vec3>> blockForces_;  ///< per-block force buffers
  std::vector<ForceResult> blockPartials_;      ///< per-block energy/virial partials
};

/// Instantaneous virial pressure in atm:
///   P = (2 K + W) / (3 V)   with K kinetic energy and W the virial.
[[nodiscard]] double pressureAtm(const WaterSystem& sys, double virialKcalPerMol);

/// Standard homogeneous-fluid Lennard-Jones tail corrections beyond the
/// cutoff (Allen & Tildesley): assuming g(r) = 1 for r > rc,
///   U_tail = (8/3) pi rho N eps sigma^3 [ (1/3)(sigma/rc)^9 - (sigma/rc)^3 ]
///   P_tail = (16/3) pi rho^2  eps sigma^3 [ (2/3)(sigma/rc)^9 - (sigma/rc)^3 ]
/// with rho the OXYGEN number density (LJ acts on O-O pairs only).
struct TailCorrections {
  double energyKcalPerMol = 0.0;  ///< whole-box energy correction
  double pressureAtm = 0.0;       ///< pressure correction
};
[[nodiscard]] TailCorrections ljTailCorrections(const WaterSystem& sys);

}  // namespace sfopt::md
