#include "mw/vertex_server.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "tests/core/test_helpers.hpp"

namespace {

using namespace sfopt;
using core::SamplingBackend;
using mw::VertexServer;

TEST(VertexServer, RejectsZeroClients) {
  auto obj = test::noisySphere(2, 1.0);
  EXPECT_THROW(VertexServer(obj, 0), std::invalid_argument);
}

TEST(VertexServer, BatchMatchesInlineSampling) {
  auto obj = test::noisySphere(2, 2.0);
  const std::vector<double> x{1.0, -1.0};

  // Inline reference.
  stats::Welford ref;
  for (std::uint64_t i = 0; i < 100; ++i) ref.add(obj.sample(x, {5, i}));

  for (int clients : {1, 2, 3, 7}) {
    VertexServer server(obj, clients);
    const SamplingBackend::BatchRequest req{x, 5, 0, 100};
    const auto got = server.runBatch(req);
    EXPECT_EQ(got.count(), ref.count()) << clients << " clients";
    EXPECT_NEAR(got.mean(), ref.mean(), 1e-12) << clients << " clients";
    EXPECT_NEAR(got.variance(), ref.variance(), 1e-9) << clients << " clients";
  }
}

TEST(VertexServer, RespectsStartIndex) {
  auto obj = test::noisySphere(2, 2.0);
  const std::vector<double> x{0.5, 0.5};
  VertexServer server(obj, 2);
  const auto first = server.runBatch({x, 9, 0, 50});
  const auto second = server.runBatch({x, 9, 50, 50});
  stats::Welford merged = first;
  merged.merge(second);

  stats::Welford ref;
  for (std::uint64_t i = 0; i < 100; ++i) ref.add(obj.sample(x, {9, i}));
  EXPECT_NEAR(merged.mean(), ref.mean(), 1e-12);
  EXPECT_NEAR(merged.variance(), ref.variance(), 1e-9);
}

TEST(VertexServer, ZeroCountBatch) {
  auto obj = test::noisySphere(2, 1.0);
  VertexServer server(obj, 3);
  const std::vector<double> x{0.0, 0.0};
  const auto got = server.runBatch({x, 1, 0, 0});
  EXPECT_EQ(got.count(), 0);
}

TEST(VertexServer, CountSmallerThanClientPool) {
  auto obj = test::noisySphere(2, 1.0);
  VertexServer server(obj, 8);
  const std::vector<double> x{0.0, 0.0};
  const auto got = server.runBatch({x, 2, 0, 3});
  EXPECT_EQ(got.count(), 3);
}

TEST(VertexServer, LoadIsSplitAcrossClients) {
  auto obj = test::noisySphere(2, 1.0);
  VertexServer server(obj, 4);
  const std::vector<double> x{0.0, 0.0};
  (void)server.runBatch({x, 3, 0, 100});
  const auto counts = server.clientSampleCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), std::int64_t{0}), 100);
  for (auto c : counts) EXPECT_EQ(c, 25);
}

TEST(VertexServer, ManySequentialBatches) {
  auto obj = test::noisySphere(2, 1.0);
  VertexServer server(obj, 2);
  const std::vector<double> x{1.0, 1.0};
  std::int64_t total = 0;
  for (int i = 0; i < 50; ++i) {
    const auto got = server.runBatch({x, 4, static_cast<std::uint64_t>(total), 10});
    EXPECT_EQ(got.count(), 10);
    total += 10;
  }
  const auto counts = server.clientSampleCounts();
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), std::int64_t{0}), total);
}

}  // namespace
