file(REMOVE_RECURSE
  "../bench/table32_anderson"
  "../bench/table32_anderson.pdb"
  "CMakeFiles/table32_anderson.dir/table32_anderson.cpp.o"
  "CMakeFiles/table32_anderson.dir/table32_anderson.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table32_anderson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
