#include "service/job_table.hpp"

#include <algorithm>
#include <utility>

namespace sfopt::service {

JobTable::JobTable(int maxConcurrent, int maxQueued)
    : maxConcurrent_(std::max(maxConcurrent, 1)), maxQueued_(std::max(maxQueued, 0)) {}

Admission JobTable::admit(JobSpec spec, int client, double now) {
  Admission a;
  // A job is admitted when it can run now (a concurrency slot is free) or
  // can wait (the queue has room); anything else is a retryable refusal.
  if (runningCount() >= maxConcurrent_ && queuedCount() >= maxQueued_) {
    a.retryable = true;
    a.message = "service at capacity (" + std::to_string(runningCount()) + " running, " +
                std::to_string(queuedCount()) + " queued); retry later";
    return a;
  }
  const std::uint64_t id = nextId_++;
  JobRecord rec;
  rec.id = id;
  rec.spec = std::move(spec);
  rec.state = JobState::Queued;
  rec.client = client;
  rec.submittedAt = now;
  jobs_.emplace(id, std::move(rec));
  a.accepted = true;
  a.jobId = id;
  a.message = "accepted";
  return a;
}

JobRecord* JobTable::find(std::uint64_t id) {
  const auto it = jobs_.find(id);
  return it != jobs_.end() ? &it->second : nullptr;
}

JobRecord* JobTable::nextQueued() {
  for (auto& [id, rec] : jobs_) {
    if (rec.state == JobState::Queued) return &rec;
  }
  return nullptr;
}

void JobTable::restore(JobRecord rec) {
  const std::uint64_t id = rec.id;
  jobs_.insert_or_assign(id, std::move(rec));
  if (id >= nextId_) nextId_ = id + 1;
}

void JobTable::setNextId(std::uint64_t next) noexcept {
  nextId_ = std::max(nextId_, next);
}

std::vector<std::uint64_t> JobTable::evictFinishedOver(std::size_t cap) {
  std::vector<std::uint64_t> evictedIds;
  std::size_t finished = 0;
  for (const auto& [id, rec] : jobs_) {
    finished += (rec.state == JobState::Done || rec.state == JobState::Cancelled ||
                 rec.state == JobState::Failed)
                    ? 1
                    : 0;
  }
  // std::map iterates in ascending id order, so the first terminal entries
  // seen are the oldest ones.
  for (auto it = jobs_.begin(); it != jobs_.end() && finished > cap;) {
    JobRecord& rec = it->second;
    if (rec.state != JobState::Done && rec.state != JobState::Cancelled &&
        rec.state != JobState::Failed) {
      ++it;
      continue;
    }
    if (rec.thread.joinable()) rec.thread.join();
    evicted_.emplace(it->first, rec.state);
    evictedIds.push_back(it->first);
    it = jobs_.erase(it);
    --finished;
  }
  return evictedIds;
}

const JobState* JobTable::evictedState(std::uint64_t id) const {
  const auto it = evicted_.find(id);
  return it != evicted_.end() ? &it->second : nullptr;
}

void JobTable::markEvicted(std::uint64_t id, JobState finalState) {
  evicted_.insert_or_assign(id, finalState);
  if (id >= nextId_) nextId_ = id + 1;
}

int JobTable::runningCount() const noexcept {
  int n = 0;
  for (const auto& [id, rec] : jobs_) n += rec.state == JobState::Running ? 1 : 0;
  return n;
}

int JobTable::queuedCount() const noexcept {
  int n = 0;
  for (const auto& [id, rec] : jobs_) n += rec.state == JobState::Queued ? 1 : 0;
  return n;
}

std::int64_t JobTable::completedCount() const noexcept {
  // Evicted jobs were terminal when they left the table; counting them
  // keeps the --max-jobs budget honest under --result-retention.
  std::int64_t n = static_cast<std::int64_t>(evicted_.size());
  for (const auto& [id, rec] : jobs_) {
    n += (rec.state == JobState::Done || rec.state == JobState::Cancelled ||
          rec.state == JobState::Failed)
             ? 1
             : 0;
  }
  return n;
}

bool JobTable::anyActive() const noexcept {
  return std::any_of(jobs_.begin(), jobs_.end(), [](const auto& kv) {
    return kv.second.state == JobState::Queued || kv.second.state == JobState::Running;
  });
}

}  // namespace sfopt::service
