#pragma once

#include <vector>

#include "md/observables.hpp"

namespace sfopt::water {

/// The six fitting targets of the paper's application study (section 3.5,
/// Table 3.4): experimental liquid-water values at 298 K.
struct ExperimentalTargets {
  double internalEnergyKJPerMol = -41.5;  ///< <U>, kJ/mol (Mahoney & Jorgensen)
  double pressureAtm = 1.0;               ///< <P> at experimental density
  double diffusion1e5Cm2PerS = 2.27;      ///< D, 10^-5 cm^2/s
  /// RDF residual targets are zero by construction (eq. 3.5: the residual
  /// is the RMS distance to the experimental curve itself).
  double rdfResidualOO = 0.0;
  double rdfResidualOH = 0.0;
  double rdfResidualHH = 0.0;
};

[[nodiscard]] ExperimentalTargets experimentalTargets() noexcept;

/// Synthetic stand-in for the experimental oxygen-oxygen radial
/// distribution function of liquid water (Soper 2000): first peak at
/// 2.73 A (height ~2.75), first minimum near 3.36 A, damped oscillation to
/// 1.  The paper fits simulated g_OO(r) against this curve via eq. 3.5;
/// here the curve is generated analytically (the real data set is not
/// redistributable) — the substitution is documented in DESIGN.md.
[[nodiscard]] md::RdfCurve experimentalGOO(double rMax = 8.0, int bins = 160);

/// Published TIP4P property values used as the benchmark row of Table 3.4.
struct Tip4pReference {
  double internalEnergyKJPerMol = -41.8;
  double pressureAtm = 373.0;
  double diffusion1e5Cm2PerS = 3.29;
};

[[nodiscard]] Tip4pReference tip4pReference() noexcept;

}  // namespace sfopt::water
