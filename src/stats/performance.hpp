#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace sfopt::stats {

/// The three performance measures the paper adopts from Anderson et al.
/// (section 3.2) to score a stochastic optimization run:
///   N - number of simplex iterations to convergence,
///   R - error in the (true, noise-free) function value at convergence,
///   D - Euclidean distance from the best vertex to the known solution.
struct PerformanceMeasures {
  std::int64_t iterations = 0;  ///< N
  double functionError = 0.0;   ///< R
  double distance = 0.0;        ///< D
};

/// Euclidean distance between two points of equal dimension.
[[nodiscard]] double euclideanDistance(std::span<const double> a, std::span<const double> b);

/// Euclidean norm.
[[nodiscard]] double euclideanNorm(std::span<const double> a);

}  // namespace sfopt::stats
