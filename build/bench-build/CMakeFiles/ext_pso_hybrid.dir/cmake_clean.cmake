file(REMOVE_RECURSE
  "../bench/ext_pso_hybrid"
  "../bench/ext_pso_hybrid.pdb"
  "CMakeFiles/ext_pso_hybrid.dir/ext_pso_hybrid.cpp.o"
  "CMakeFiles/ext_pso_hybrid.dir/ext_pso_hybrid.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_pso_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
