# Empty compiler generated dependencies file for sfopt_md.
# This may be replaced when dependencies are built.
