#include "core/eval_scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <thread>
#include <vector>

#include "core/sampling_backend.hpp"
#include "telemetry/sink.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace sfopt;
using core::AsyncSamplingBackend;
using core::EvalScheduler;
using core::SamplingBackend;

/// Deterministic stand-in for the objective: the value depends only on
/// (vertexId, sampleIndex), like the counter-keyed RNG, so any correct
/// sharding must reproduce the same chunk moments.
double sampleValue(std::uint64_t vertexId, std::uint64_t index) {
  return std::sin(static_cast<double>(vertexId * 1000003ULL + index)) +
         static_cast<double>(index % 7);
}

/// The canonical chunk moments of a batch, computed serially.
std::vector<stats::Welford> chunksFor(std::uint64_t vertexId, std::uint64_t start,
                                      std::int64_t count) {
  std::vector<stats::Welford> chunks;
  std::int64_t remaining = count;
  std::uint64_t index = start;
  while (remaining > 0) {
    const std::int64_t take = std::min(remaining, core::kEvalChunkSamples);
    stats::Welford c;
    for (std::int64_t i = 0; i < take; ++i) {
      c.add(sampleValue(vertexId, index + static_cast<std::uint64_t>(i)));
    }
    chunks.push_back(c);
    index += static_cast<std::uint64_t>(take);
    remaining -= take;
  }
  return chunks;
}

/// Fake evaluation fabric: records every submitted shard, computes its
/// chunks eagerly, and delivers completions newest-first — the worst case
/// for any merge that depends on completion order.
class FakeAsyncBackend final : public AsyncSamplingBackend {
 public:
  explicit FakeAsyncBackend(int parallelism) : parallelism_(parallelism) {}

  struct Recorded {
    std::uint64_t vertexId;
    std::uint64_t startIndex;
    std::int64_t count;
  };

  std::uint64_t submit(const SamplingBackend::BatchRequest& request) override {
    const std::uint64_t ticket = nextTicket_++;
    recorded.push_back({request.vertexId, request.startIndex, request.count});
    pending_.push_back({ticket, chunksFor(request.vertexId, request.startIndex, request.count)});
    return ticket;
  }

  std::vector<Completion> poll(double) override {
    std::vector<Completion> out;
    if (holdCompletions) return out;
    if (pollDelaySeconds > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(pollDelaySeconds));
    }
    while (!forcedOrder.empty() && (perPoll == 0 || out.size() < perPoll)) {
      const std::uint64_t want = forcedOrder.front();
      const auto it = std::find_if(pending_.begin(), pending_.end(),
                                   [&](const Completion& c) { return c.ticket == want; });
      if (it == pending_.end()) break;  // not submitted yet
      forcedOrder.pop_front();
      out.push_back(std::move(*it));
      pending_.erase(it);
    }
    if (!forcedOrder.empty()) return out;
    while (!pending_.empty() && (perPoll == 0 || out.size() < perPoll)) {
      out.push_back(std::move(pending_.back()));
      pending_.pop_back();
    }
    return out;
  }

  [[nodiscard]] int parallelism() const override { return parallelism_; }

  std::vector<Recorded> recorded;
  std::size_t perPoll = 0;      ///< completions per poll; 0 = all at once
  bool holdCompletions = false; ///< simulate a silent fabric
  double pollDelaySeconds = 0.0;  ///< simulate a slow fabric
  /// When non-empty, deliver exactly these tickets in this order (ahead
  /// of the default newest-first drain) — for staleness interleavings.
  std::deque<std::uint64_t> forcedOrder;

 private:
  int parallelism_;
  std::uint64_t nextTicket_ = 1;
  std::vector<Completion> pending_;
};

void expectBitwiseEqual(const stats::Welford& got, const stats::Welford& want) {
  EXPECT_EQ(got.count(), want.count());
  EXPECT_EQ(got.mean(), want.mean());
  EXPECT_EQ(got.sumSquaredDeviations(), want.sumSquaredDeviations());
}

TEST(EvalScheduler, UnshardedBatchIsOneTicketAndMatchesSerialFold) {
  FakeAsyncBackend backend(4);
  EvalScheduler sched(backend, {});
  const SamplingBackend::BatchRequest req{{}, 7, 128, 200};
  const auto results = sched.evaluate({&req, 1});
  ASSERT_EQ(results.size(), 1u);
  ASSERT_EQ(backend.recorded.size(), 1u);
  EXPECT_EQ(backend.recorded[0].startIndex, 128u);
  EXPECT_EQ(backend.recorded[0].count, 200);
  expectBitwiseEqual(results[0], core::foldEvalChunks(chunksFor(7, 128, 200)));
  EXPECT_EQ(sched.outstandingTickets(), 0u);
}

TEST(EvalScheduler, ShardsAreChunkAlignedAndCoverTheBatch) {
  FakeAsyncBackend backend(4);
  EvalScheduler sched(backend, {.shardMinSamples = 64});
  const SamplingBackend::BatchRequest req{{}, 3, 64, 640};  // 10 chunks
  const auto results = sched.evaluate({&req, 1});
  ASSERT_EQ(backend.recorded.size(), 4u);  // min(parallelism, chunks, by-threshold)
  std::uint64_t next = 64;
  std::int64_t total = 0;
  for (const auto& shard : backend.recorded) {
    EXPECT_EQ(shard.vertexId, 3u);
    EXPECT_EQ(shard.startIndex, next);  // contiguous
    EXPECT_EQ((shard.startIndex - 64) % core::kEvalChunkSamples, 0u);  // chunk-aligned
    next += static_cast<std::uint64_t>(shard.count);
    total += shard.count;
  }
  EXPECT_EQ(total, 640);
  expectBitwiseEqual(results[0], core::foldEvalChunks(chunksFor(3, 64, 640)));
}

TEST(EvalScheduler, ShardedResultBitwiseInvariantToCompletionOrder) {
  // Reverse delivery, one completion per poll: the fold must still come
  // out bitwise identical to the serial chunk fold.
  FakeAsyncBackend backend(8);
  backend.perPoll = 1;
  EvalScheduler sched(backend, {.shardMinSamples = 64});
  const SamplingBackend::BatchRequest req{{}, 11, 0, 1000};
  const auto results = sched.evaluate({&req, 1});
  EXPECT_GT(backend.recorded.size(), 1u);
  expectBitwiseEqual(results[0], core::foldEvalChunks(chunksFor(11, 0, 1000)));
}

TEST(EvalScheduler, BatchAtThresholdIsNotSharded) {
  FakeAsyncBackend backend(4);
  EvalScheduler sched(backend, {.shardMinSamples = 256});
  const SamplingBackend::BatchRequest req{{}, 1, 0, 256};
  (void)sched.evaluate({&req, 1});
  EXPECT_EQ(backend.recorded.size(), 1u);
}

TEST(EvalScheduler, ZeroCountRequestSkipsTheBackend) {
  FakeAsyncBackend backend(2);
  EvalScheduler sched(backend, {});
  const SamplingBackend::BatchRequest reqs[] = {{{}, 1, 0, 0}, {{}, 2, 0, 64}};
  const auto results = sched.evaluate(reqs);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].count(), 0);
  EXPECT_EQ(results[1].count(), 64);
  EXPECT_EQ(backend.recorded.size(), 1u);  // only the real batch went out
}

TEST(EvalScheduler, NegativeCountThrows) {
  FakeAsyncBackend backend(2);
  EvalScheduler sched(backend, {});
  const SamplingBackend::BatchRequest req{{}, 1, 0, -5};
  EXPECT_THROW((void)sched.evaluate({&req, 1}), std::invalid_argument);
}

TEST(EvalScheduler, SpeculationHitReusesStagedBatch) {
  FakeAsyncBackend backend(4);
  EvalScheduler sched(backend, {.speculate = true});
  const SamplingBackend::BatchRequest demand{{}, 1, 0, 100};
  const SamplingBackend::BatchRequest hint{{}, 2, 50, 100};
  (void)sched.evaluate({&demand, 1}, {&hint, 1});
  const std::size_t submitted = backend.recorded.size();
  EXPECT_EQ(submitted, 2u);  // demand + speculative hint
  EXPECT_EQ(sched.stagedBatches(), 1u);

  const auto results = sched.evaluate({&hint, 1});
  EXPECT_EQ(backend.recorded.size(), submitted);  // no resubmit: staged hit
  EXPECT_EQ(sched.speculationHits(), 1u);
  EXPECT_EQ(sched.speculationMisses(), 1u);
  EXPECT_EQ(sched.stagedBatches(), 0u);
  expectBitwiseEqual(results[0], core::foldEvalChunks(chunksFor(2, 50, 100)));
}

TEST(EvalScheduler, SpeculationSkippedAtOutstandingCap) {
  FakeAsyncBackend backend(4);
  EvalScheduler sched(backend, {.speculate = true, .maxOutstandingShards = 1});
  const SamplingBackend::BatchRequest demand{{}, 1, 0, 64};
  const SamplingBackend::BatchRequest hint{{}, 2, 0, 64};
  (void)sched.evaluate({&demand, 1}, {&hint, 1});
  // The demand ticket already fills the cap, so the hint never launches.
  EXPECT_EQ(backend.recorded.size(), 1u);
  EXPECT_EQ(sched.speculationSkipped(), 1u);
  EXPECT_EQ(sched.stagedBatches(), 0u);
}

TEST(EvalScheduler, StagingCapEvictsOldestWithoutCorruptingResults) {
  FakeAsyncBackend backend(4);
  EvalScheduler sched(backend,
                      {.speculate = true, .maxOutstandingShards = 16, .maxStagedEntries = 1});
  const SamplingBackend::BatchRequest demand{{}, 1, 0, 64};
  const SamplingBackend::BatchRequest hintB{{}, 2, 0, 64};
  const SamplingBackend::BatchRequest hintC{{}, 3, 0, 64};
  const SamplingBackend::BatchRequest hints[] = {hintB, hintC};
  (void)sched.evaluate({&demand, 1}, hints);
  // Both hints were submitted; the cap of 1 evicted the older one (B).
  EXPECT_EQ(sched.stagedBatches(), 1u);
  EXPECT_EQ(sched.stagedEvicted(), 1u);

  // B is a miss (resubmitted) and still bitwise correct; C is a hit.
  const auto b = sched.evaluate({&hintB, 1});
  expectBitwiseEqual(b[0], core::foldEvalChunks(chunksFor(2, 0, 64)));
  const std::uint64_t hitsBefore = sched.speculationHits();
  const auto c = sched.evaluate({&hintC, 1});
  EXPECT_EQ(sched.speculationHits(), hitsBefore + 1);
  expectBitwiseEqual(c[0], core::foldEvalChunks(chunksFor(3, 0, 64)));
}

TEST(EvalScheduler, SupersededSpeculationIsEvictedWhenVertexMovesPast) {
  FakeAsyncBackend backend(4);
  EvalScheduler sched(backend, {.speculate = true});
  const SamplingBackend::BatchRequest demand{{}, 1, 0, 64};
  // Hint guesses the next refinement of vertex 5 wrong (too small).
  const SamplingBackend::BatchRequest hint{{}, 5, 100, 64};
  (void)sched.evaluate({&demand, 1}, {&hint, 1});
  EXPECT_EQ(sched.stagedBatches(), 1u);

  // The actual refinement consumes past the staged start index, so the
  // stale guess can never match again and is dropped.
  const SamplingBackend::BatchRequest actual{{}, 5, 100, 128};
  const auto results = sched.evaluate({&actual, 1});
  EXPECT_EQ(sched.stagedBatches(), 0u);
  EXPECT_EQ(sched.stagedEvicted(), 1u);
  EXPECT_EQ(sched.speculationHits(), 0u);
  expectBitwiseEqual(results[0], core::foldEvalChunks(chunksFor(5, 100, 128)));
}

TEST(EvalScheduler, StaleTicketFromEvictedEntryCannotCorruptRecreatedEntry) {
  // An entry evicted by the staging cap leaves its tickets in flight; a
  // later demand for the same key builds a fresh entry with fresh
  // tickets.  If a stale completion were allowed to fill the fresh entry,
  // the fill counter could reach the total while another chunk slot is
  // still an empty Welford — silently losing samples.  The generation
  // guard must drop the stale completion instead.
  FakeAsyncBackend backend(2);
  backend.holdCompletions = true;
  EvalScheduler sched(backend, {.shardMinSamples = 64,
                                .speculate = true,
                                .maxOutstandingShards = 16,
                                .maxStagedEntries = 1});
  const SamplingBackend::BatchRequest hintK{{}, 9, 0, 128};  // 2 shards: tickets 1, 2
  (void)sched.evaluate({}, {&hintK, 1});
  ASSERT_EQ(backend.recorded.size(), 2u);
  const SamplingBackend::BatchRequest hintB{{}, 10, 0, 64};  // ticket 3; evicts K
  (void)sched.evaluate({}, {&hintB, 1});
  EXPECT_EQ(sched.stagedEvicted(), 1u);

  // Demand K again (tickets 4, 5) and deliver: stale chunk-0 (ticket 1),
  // fresh chunk-0 (ticket 4), fresh chunk-1 (ticket 5) — the interleaving
  // where a counter-only fill would declare the entry complete after two
  // chunk-0 fills with chunk 1 never written.
  backend.holdCompletions = false;
  backend.perPoll = 1;
  backend.forcedOrder = {1, 4, 5};
  const auto results = sched.evaluate({&hintK, 1});
  expectBitwiseEqual(results[0], core::foldEvalChunks(chunksFor(9, 0, 128)));

  // The leftover stale ticket (2) and the unconsumed hint (3) drain
  // harmlessly on a later call: no entry double-fill, nothing outstanding.
  backend.perPoll = 0;
  const SamplingBackend::BatchRequest next{{}, 11, 0, 64};
  const auto r2 = sched.evaluate({&next, 1});
  expectBitwiseEqual(r2[0], core::foldEvalChunks(chunksFor(11, 0, 64)));
  EXPECT_EQ(sched.outstandingTickets(), 0u);
}

TEST(EvalScheduler, CollectTimeoutBoundsSilenceNotTotalRuntime) {
  // Four shards trickle in 60ms apart: total wall time (~240ms) exceeds
  // timeoutSeconds, but the backend is never silent longer than one gap,
  // so the evaluation must complete rather than throw.
  FakeAsyncBackend backend(4);
  backend.perPoll = 1;
  backend.pollDelaySeconds = 0.06;
  EvalScheduler sched(backend, {.shardMinSamples = 64, .timeoutSeconds = 0.15});
  const SamplingBackend::BatchRequest req{{}, 1, 0, 640};  // 10 chunks, 4 shards
  const auto results = sched.evaluate({&req, 1});
  ASSERT_EQ(backend.recorded.size(), 4u);
  expectBitwiseEqual(results[0], core::foldEvalChunks(chunksFor(1, 0, 640)));
}

TEST(EvalScheduler, SpeculativeHintCountsItsShardsAgainstTheCap) {
  // The cap bounds tickets, and one hint can submit several shards: a
  // hint whose shard count would push in-flight tickets past the cap is
  // skipped entirely, while a smaller hint that fits still launches.
  FakeAsyncBackend backend(4);
  EvalScheduler sched(backend, {.shardMinSamples = 64,
                                .speculate = true,
                                .maxOutstandingShards = 4});
  const SamplingBackend::BatchRequest demand{{}, 1, 0, 64};  // 1 ticket in flight
  const SamplingBackend::BatchRequest big{{}, 2, 0, 640};    // 4 shards: 1 + 4 > 4
  const SamplingBackend::BatchRequest small{{}, 3, 0, 64};   // 1 shard: 1 + 1 <= 4
  const SamplingBackend::BatchRequest hints[] = {big, small};
  (void)sched.evaluate({&demand, 1}, hints);
  EXPECT_EQ(sched.speculationSkipped(), 1u);
  EXPECT_EQ(backend.recorded.size(), 2u);  // demand + small hint only
  EXPECT_EQ(sched.stagedBatches(), 1u);
}

TEST(EvalScheduler, TimesOutWhenBackendGoesSilent) {
  FakeAsyncBackend backend(2);
  backend.holdCompletions = true;
  EvalScheduler sched(backend, {.timeoutSeconds = 0.05});
  const SamplingBackend::BatchRequest req{{}, 1, 0, 64};
  EXPECT_THROW((void)sched.evaluate({&req, 1}), std::runtime_error);
}

TEST(EvalScheduler, RegistersEvalMetrics) {
  telemetry::NoopSink sink;
  telemetry::Telemetry spine(sink);
  FakeAsyncBackend backend(4);
  EvalScheduler::Options opts;
  opts.shardMinSamples = 64;
  opts.speculate = true;
  opts.telemetry = &spine;
  EvalScheduler sched(backend, opts);

  const SamplingBackend::BatchRequest demand{{}, 1, 0, 640};
  const SamplingBackend::BatchRequest hint{{}, 2, 0, 64};
  (void)sched.evaluate({&demand, 1}, {&hint, 1});
  (void)sched.evaluate({&hint, 1});

  bool sawShards = false;
  for (const auto& snap : spine.metrics().snapshot()) {
    if (snap.name == "eval.shards_per_batch") {
      sawShards = true;
      EXPECT_GE(snap.count, 2);  // demand (4 shards) + hint (1 shard)
    }
  }
  EXPECT_TRUE(sawShards);
  EXPECT_EQ(spine.metrics().counter("eval.speculation_hits").value(), 1);
  EXPECT_EQ(spine.metrics().counter("eval.speculation_misses").value(), 1);
  EXPECT_DOUBLE_EQ(spine.metrics().gauge("eval.speculation_hit_rate").value(), 0.5);
}

TEST(EvalScheduler, RejectsNegativeOptions) {
  FakeAsyncBackend backend(2);
  EXPECT_THROW(EvalScheduler(backend, {.shardMinSamples = -1}), std::invalid_argument);
  EXPECT_THROW(EvalScheduler(backend, {.maxOutstandingShards = -1}), std::invalid_argument);
}

}  // namespace
