#include "simd/dispatch.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "simd/isa.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace sfopt;

/// Restores the active ISA on scope exit, so a test that pins dispatch
/// cannot leak its choice into the rest of the suite.
struct IsaGuard {
  simd::Isa saved = simd::activeIsa();
  ~IsaGuard() { simd::setActiveIsa(saved); }
};

constexpr simd::Isa kAllIsas[] = {simd::Isa::Scalar, simd::Isa::Sse4, simd::Isa::Avx2,
                                  simd::Isa::Neon};

TEST(SimdIsa, NamesRoundTrip) {
  for (const simd::Isa isa : kAllIsas) {
    simd::Isa parsed{};
    ASSERT_TRUE(simd::parseIsaName(simd::isaName(isa), parsed)) << simd::isaName(isa);
    EXPECT_EQ(parsed, isa);
  }
  simd::Isa parsed{};
  EXPECT_FALSE(simd::parseIsaName("bogus", parsed));
  EXPECT_FALSE(simd::parseIsaName("", parsed));
  EXPECT_FALSE(simd::parseIsaName("AVX2", parsed));  // names are lower-case
}

TEST(SimdIsa, ScalarIsAlwaysSupportedAndListedFirst) {
  EXPECT_TRUE(simd::isaSupported(simd::Isa::Scalar));
  const auto supported = simd::supportedIsas();
  ASSERT_FALSE(supported.empty());
  EXPECT_EQ(supported.front(), simd::Isa::Scalar);
  for (const simd::Isa isa : supported) EXPECT_TRUE(simd::isaSupported(isa));
}

TEST(SimdIsa, DetectedIsaIsSupportedAndWidest) {
  const simd::Isa best = simd::detectBestIsa();
  EXPECT_TRUE(simd::isaSupported(best));
  EXPECT_EQ(simd::supportedIsas().back(), best);
}

TEST(SimdIsa, ActiveIsaIsAlwaysSupported) {
  EXPECT_TRUE(simd::isaSupported(simd::activeIsa()));
}

TEST(SimdIsa, SetActiveIsaPinsEachSupportedLevel) {
  IsaGuard guard;
  for (const simd::Isa isa : simd::supportedIsas()) {
    simd::setActiveIsa(isa);
    EXPECT_EQ(simd::activeIsa(), isa);
  }
}

TEST(SimdIsa, SetActiveIsaRejectsUnsupportedLevels) {
  IsaGuard guard;
  const simd::Isa before = simd::activeIsa();
  for (const simd::Isa isa : kAllIsas) {
    if (simd::isaSupported(isa)) continue;
    EXPECT_THROW(simd::setActiveIsa(isa), std::invalid_argument) << simd::isaName(isa);
    // A rejected request must leave the previous level active.
    EXPECT_EQ(simd::activeIsa(), before);
  }
}

TEST(SimdIsa, SetActiveIsaByNameRejectsUnknownNamesListingOptions) {
  IsaGuard guard;
  try {
    simd::setActiveIsaByName("bogus");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("supported"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("scalar"), std::string::npos);
  }
}

TEST(SimdDispatch, CountsGrowAndTelemetryPublishesGauges) {
  IsaGuard guard;
  simd::setActiveIsa(simd::Isa::Scalar);
  const auto before = simd::dispatchCounts();
  const std::vector<double> samples{1.0, 2.0, 3.0, 4.0};
  (void)simd::welfordChunk(samples);
  const auto after = simd::dispatchCounts();
  EXPECT_EQ(after.welfordChunks, before.welfordChunks + 1);
  EXPECT_GE(after.forceBlocks, before.forceBlocks);

  telemetry::Telemetry spine;
  simd::publishTelemetry(spine);
  bool sawIsa = false;
  bool sawWelford = false;
  for (const auto& m : spine.metrics().snapshot()) {
    if (m.name == "simd.isa") {
      sawIsa = true;
      EXPECT_EQ(m.numValue, static_cast<double>(simd::Isa::Scalar));
    }
    if (m.name == "simd.dispatch.welford_chunks") {
      sawWelford = true;
      EXPECT_GE(m.numValue, static_cast<double>(after.welfordChunks));
    }
  }
  EXPECT_TRUE(sawIsa);
  EXPECT_TRUE(sawWelford);
}

}  // namespace
