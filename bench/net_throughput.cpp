// Loopback TCP transport throughput: a TcpCommWorld master and one
// TcpWorkerTransport worker thread echo framed messages over 127.0.0.1,
// with a fixed window of messages in flight so the wire stays busy.  Two
// payload shapes bracket the deployment's traffic: small frames (the
// tag-and-trace control chatter) and large frames (sampling shards with
// their per-chunk moment payloads).
//
// Reported per shape: median wall seconds, round trips per second, and
// one-way payload megabytes per second.  The wire overhead line uses the
// transport's own frame counters, so it tracks the v2 envelope (21-byte
// message header carrying the distributed trace context).
//
// Usage: net_throughput [repetitions] [--json PATH]   (default 7)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_json.hpp"
#include "mw/mw_task.hpp"
#include "net/tcp_transport.hpp"

using namespace sfopt;

namespace {

struct Shape {
  const char* name;
  std::size_t payloadBytes;
  int messages;  // round trips per repetition
};

constexpr int kWindow = 16;

double runShape(net::TcpCommWorld& comm, const Shape& shape, int reps,
                bench::BenchReport& report) {
  const std::vector<std::byte> payload(shape.payloadBytes, std::byte{0x5A});
  const auto pump = [&] {
    int sent = 0;
    int received = 0;
    while (sent < kWindow && sent < shape.messages) {
      comm.send(0, 1, mw::kTagTask, mw::MessageBuffer(std::vector<std::byte>(payload)));
      ++sent;
    }
    while (received < shape.messages) {
      (void)comm.recv(0, 1, mw::kTagTask);
      ++received;
      if (sent < shape.messages) {
        comm.send(0, 1, mw::kTagTask, mw::MessageBuffer(std::vector<std::byte>(payload)));
        ++sent;
      }
    }
  };
  pump();  // warm-up: faults the buffers and fills the TCP windows
  const std::uint64_t framesBefore = comm.framesSent();
  const std::uint64_t wireBefore = comm.bytesSent();
  const double sec = bench::medianSeconds(reps, pump);
  const double msgsPerSec = static_cast<double>(shape.messages) / sec;
  const double mbPerSec =
      msgsPerSec * static_cast<double>(shape.payloadBytes) / (1024.0 * 1024.0);
  const double wirePerMsg =
      static_cast<double>(comm.bytesSent() - wireBefore) /
      static_cast<double>(comm.framesSent() - framesBefore);

  std::printf("%-8s %10zu B  %10.4f s  %12.0f msg/s  %10.2f MB/s  %7.0f B/frame\n",
              shape.name, shape.payloadBytes, sec, msgsPerSec, mbPerSec, wirePerMsg);
  const std::string prefix = std::string("net.") + shape.name;
  report.add(prefix + ".seconds", sec, "s");
  report.add(prefix + ".msgs_per_sec", msgsPerSec, "msgs/s");
  report.add(prefix + ".payload_mb_per_sec", mbPerSec, "MB/s");
  return sec;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  const std::string jsonPath = bench::extractJsonPath(args);
  const int reps = !args.empty() ? std::atoi(args[0].c_str()) : 7;

  net::TcpCommWorld comm(0);  // ephemeral loopback port
  const std::uint16_t port = comm.port();
  std::thread echo([port] {
    const auto transport = net::connectWithBackoff("127.0.0.1", port, 10, 0.1);
    const net::Rank rank = transport->rank();
    try {
      for (;;) {
        auto msg = transport->recv(rank);
        if (msg.tag == mw::kTagShutdown) return;
        if (msg.tag != mw::kTagTask) continue;
        transport->send(rank, 0, mw::kTagTask, std::move(msg.payload));
      }
    } catch (const net::ConnectionLost&) {
      // Master went away first; nothing left to echo.
    }
  });
  comm.waitForWorkers(1, 30.0);

  std::printf("net_throughput: loopback echo, window %d, median of %d reps (protocol v%d)\n\n",
              kWindow, reps, net::kProtocolVersion);
  std::printf("%-8s %12s  %12s  %14s  %12s  %9s\n", "shape", "payload", "seconds",
              "round trips", "payload", "wire");

  bench::BenchReport report;
  report.bench = "net_throughput";
  report.repetitions = reps;

  const Shape shapes[] = {
      {"small", 64, 2000},
      {"large", 256 * 1024, 128},
  };
  for (const Shape& s : shapes) runShape(comm, s, reps, report);

  comm.send(0, 1, mw::kTagShutdown, mw::MessageBuffer{});
  echo.join();

  std::printf(
      "\nShape check: the small shape is header-dominated (the v2 envelope is\n"
      "25 bytes of framing + trace context per message), the large shape is\n"
      "memory-bandwidth-dominated; both ride the same windowed event loop the\n"
      "distributed deployment uses, so regressions here show up as idle\n"
      "workers there.\n");

  if (!jsonPath.empty()) {
    if (!report.writeJson(jsonPath)) return 1;
    std::printf("json: %zu results -> %s\n", report.results.size(), jsonPath.c_str());
  }
  return 0;
}
