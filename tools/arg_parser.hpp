#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace sfopt::tools {

/// Minimal command-line argument parser for the sfopt CLI:
///
///   sfopt <command> [--flag value] [--flag=value] [--switch]
///
/// Flags are collected into a map; positional arguments (no leading "--")
/// after the command are collected in order.  Typed getters convert on
/// access and throw ArgError with a pointed message on malformed values
/// or unknown flags (validated against the declared flag set).
class ArgError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Args {
 public:
  /// Parse argv-style input (excluding the program name).  `known` lists
  /// every accepted flag name (without "--"); an empty list disables
  /// unknown-flag checking.
  static Args parse(const std::vector<std::string>& argv,
                    const std::vector<std::string>& known = {});

  [[nodiscard]] const std::string& command() const noexcept { return command_; }
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  [[nodiscard]] bool has(const std::string& flag) const;

  /// Typed access with defaults.  Throws ArgError on conversion failure.
  [[nodiscard]] std::string getString(const std::string& flag,
                                      const std::string& fallback) const;
  [[nodiscard]] double getDouble(const std::string& flag, double fallback) const;
  [[nodiscard]] std::int64_t getInt(const std::string& flag, std::int64_t fallback) const;
  [[nodiscard]] bool getBool(const std::string& flag, bool fallback) const;

  /// Comma-separated doubles, e.g. "--start 1.0,2.5,-3".
  [[nodiscard]] std::vector<double> getDoubleList(const std::string& flag,
                                                  std::vector<double> fallback) const;

  /// Required variants: throw ArgError when the flag is absent.
  [[nodiscard]] std::string requireString(const std::string& flag) const;

 private:
  std::string command_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace sfopt::tools
