#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "telemetry/sink.hpp"

namespace sfopt::telemetry {

/// Offline analysis of distributed trace files: merge master + worker
/// JSONL event streams, align worker clocks to the master's using the
/// heartbeat-derived `fleet.clock` offset events, reassemble each shard's
/// span tree by trace id, and report critical-path / utilization /
/// straggler statistics.  Backs `sfopt trace`.

/// Trace ids are namespaced: the top bits above this shift carry the job
/// id on captures taken from the multi-tenant service (the MW driver ORs
/// (jobId << 40) over every task id), and 0 for a classic single-run
/// capture.  Analysis groups span trees per namespace so a capture holding
/// many interleaved jobs still verifies one tree per shard and reports one
/// row per job.
inline constexpr int kTraceNamespaceShift = 40;

/// One span after clock correction, reduced to the fields the analysis
/// needs.
struct TraceSpan {
  std::string name;
  double start = 0.0;     ///< master-clock seconds (workers corrected)
  double duration = 0.0;
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  int rank = -1;          ///< "rank" field when present; -1 = master-side
  std::string outcome;    ///< "outcome" field when present
  std::string reason;     ///< "reason" field when present
};

/// The reassembled span tree for one shard (one trace id).
struct ShardTrace {
  std::uint64_t traceId = 0;
  std::vector<TraceSpan> spans;
  double queueSeconds = 0.0;    ///< sum of shard.queue durations
  double wireSeconds = 0.0;     ///< remote duration not covered by execute
  double executeSeconds = 0.0;  ///< matched worker.execute durations
  double foldSeconds = 0.0;     ///< ok-remote end to fold/discard marker
  double totalSeconds = 0.0;    ///< shard.lifecycle root duration
  int dispatches = 0;           ///< shard.remote spans (attempts)
  int requeues = 0;             ///< remote outcomes requeued / lost
  bool folded = false;
  bool discarded = false;
  bool failed = false;     ///< root ended with outcome=failed
  bool abandoned = false;  ///< root ended with outcome=abandoned (shutdown
                           ///< with the task still queued or in flight)
};

struct WorkerReport {
  int rank = -1;
  std::uint64_t tasks = 0;
  double busySeconds = 0.0;          ///< sum of worker.execute durations
  double utilization = 0.0;          ///< busy / run wall span
  double clockOffsetSeconds = 0.0;   ///< median heartbeat offset applied
  bool offsetKnown = false;
};

/// Aggregate over one trace-id namespace (one service job, or the whole
/// capture when everything lives in namespace 0).
struct TraceNamespaceReport {
  std::uint64_t ns = 0;  ///< trace >> kTraceNamespaceShift (job id; 0 = legacy)
  std::uint64_t traces = 0;
  std::uint64_t folded = 0;
  std::uint64_t discarded = 0;
  std::uint64_t failed = 0;
  std::uint64_t abandoned = 0;
  std::uint64_t requeues = 0;
  std::uint64_t problems = 0;
  bool jobSpanSeen = false;  ///< a service.job root span was captured
  double jobSeconds = 0.0;   ///< its duration (0 until the job ends)
  std::string jobOutcome;    ///< its outcome field, when present
};

struct TraceReport {
  std::uint64_t traces = 0;      ///< distinct shard trace ids seen
  std::uint64_t dispatched = 0;  ///< total dispatch attempts
  std::uint64_t requeues = 0;
  std::uint64_t folded = 0;
  std::uint64_t discarded = 0;
  std::uint64_t failed = 0;
  std::uint64_t abandoned = 0;
  double wallSeconds = 0.0;      ///< run span (earliest start to latest end)
  double queueSeconds = 0.0;
  double wireSeconds = 0.0;
  double executeSeconds = 0.0;
  double foldSeconds = 0.0;
  bool workerSpansSeen = false;  ///< any worker.execute present in input
  std::vector<WorkerReport> workers;        ///< sorted by rank
  std::vector<ShardTrace> stragglers;       ///< slowest traces, desc
  std::vector<std::string> problems;        ///< span-tree integrity failures
  std::vector<TraceNamespaceReport> namespaces;  ///< sorted by ns

  [[nodiscard]] bool ok() const noexcept { return problems.empty(); }

  /// True when the capture holds more than the legacy namespace 0 — i.e.
  /// it came from a multi-tenant service run.
  [[nodiscard]] bool multiJob() const noexcept {
    return namespaces.size() > 1 ||
           (namespaces.size() == 1 && namespaces.front().ns != 0);
  }
};

/// Analyze a merged event stream (concatenate readJsonlEvents() of the
/// master and every worker trace file; order does not matter).  Worker
/// span times are shifted onto the master clock by the per-rank median of
/// the `fleet.clock` offset samples the master recorded from heartbeat
/// echoes.  `topStragglers` bounds the straggler list.
[[nodiscard]] TraceReport analyzeTraceEvents(const std::vector<Event>& events,
                                             int topStragglers = 5);

}  // namespace sfopt::telemetry
