#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "core/point.hpp"
#include "stats/welford.hpp"

namespace sfopt::core {

/// How the per-vertex noise level sigma_i(t_i) is obtained.
enum class SigmaMode {
  /// Standard error of the mean estimated from the vertex's own sample
  /// stream (Welford).  This is the realistic setting: the paper stresses
  /// that "there is no expectation that this variance is known ahead of
  /// time".
  Estimated,
  /// Oracle sigma0 / sqrt(t) using the objective's declared noise scale.
  /// Available only for synthetic objectives; used by tests and by benches
  /// that want to isolate algorithmic behaviour from estimator error.
  Exact,
};

/// One sampled point in parameter space: a location, a unique id (which
/// doubles as the reproducible noise-stream id), and the running estimate
/// of the objective there.
///
/// Vertices are persistent across simplex iterations: additional sampling
/// refines the same estimate (the running mean is martingale-consistent),
/// matching the paper's model where a vertex's variance decays as
/// sigma0^2 / t for as long as it stays in the simplex.
class Vertex {
 public:
  Vertex(Point x, std::uint64_t id) : x_(std::move(x)), id_(id) {}

  [[nodiscard]] const Point& point() const noexcept { return x_; }
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

  /// Current estimate of g at this vertex (mean of all samples so far).
  [[nodiscard]] double mean() const noexcept { return acc_.mean(); }

  /// Number of samples taken so far.
  [[nodiscard]] std::int64_t sampleCount() const noexcept { return acc_.count(); }

  /// Total simulated sampling time t_i = n_i * dt.
  [[nodiscard]] double totalTime(double sampleDuration) const noexcept {
    return static_cast<double>(acc_.count()) * sampleDuration;
  }

  /// Estimated standard error of mean() (+inf until 2 samples exist).
  [[nodiscard]] double estimatedSigma() const noexcept { return acc_.standardError(); }

  /// Oracle sigma for a known noise scale: sigma0 / sqrt(t).
  [[nodiscard]] double exactSigma(double sigma0, double sampleDuration) const noexcept {
    const double t = totalTime(sampleDuration);
    if (t <= 0.0) return std::numeric_limits<double>::infinity();
    return sigma0 / std::sqrt(t);
  }

  /// Raw accumulator access (merging partial sums computed by workers).
  [[nodiscard]] const stats::Welford& accumulator() const noexcept { return acc_; }

  /// Fold one observation into the estimate.  Called by SamplingContext.
  void absorb(double observation) noexcept { acc_.add(observation); }

  /// Fold a batch of observations accumulated elsewhere (worker-side
  /// partial Welford state) into the estimate.
  void absorb(const stats::Welford& partial) noexcept { acc_.merge(partial); }

 private:
  Point x_;
  std::uint64_t id_;
  stats::Welford acc_;
};

}  // namespace sfopt::core
