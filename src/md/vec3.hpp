#pragma once

#include <cmath>

namespace sfopt::md {

/// Minimal 3-vector for the molecular dynamics engine.  Deliberately a
/// plain aggregate: the force loops are the hot path and must stay
/// transparent to the optimizer.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3& operator+=(const Vec3& o) noexcept {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) noexcept {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(double s) noexcept {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }

  friend constexpr Vec3 operator+(Vec3 a, const Vec3& b) noexcept { return a += b; }
  friend constexpr Vec3 operator-(Vec3 a, const Vec3& b) noexcept { return a -= b; }
  friend constexpr Vec3 operator*(Vec3 a, double s) noexcept { return a *= s; }
  friend constexpr Vec3 operator*(double s, Vec3 a) noexcept { return a *= s; }
  friend constexpr Vec3 operator-(const Vec3& a) noexcept { return {-a.x, -a.y, -a.z}; }

  friend constexpr bool operator==(const Vec3&, const Vec3&) = default;
};

[[nodiscard]] constexpr double dot(const Vec3& a, const Vec3& b) noexcept {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

[[nodiscard]] constexpr Vec3 cross(const Vec3& a, const Vec3& b) noexcept {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}

[[nodiscard]] constexpr double normSquared(const Vec3& a) noexcept { return dot(a, a); }

[[nodiscard]] inline double norm(const Vec3& a) noexcept { return std::sqrt(normSquared(a)); }

[[nodiscard]] inline Vec3 normalized(const Vec3& a) noexcept {
  const double n = norm(a);
  return n > 0.0 ? a * (1.0 / n) : Vec3{};
}

}  // namespace sfopt::md
