file(REMOVE_RECURSE
  "CMakeFiles/sfopt_water.dir/cost.cpp.o"
  "CMakeFiles/sfopt_water.dir/cost.cpp.o.d"
  "CMakeFiles/sfopt_water.dir/experimental.cpp.o"
  "CMakeFiles/sfopt_water.dir/experimental.cpp.o.d"
  "CMakeFiles/sfopt_water.dir/md_objective.cpp.o"
  "CMakeFiles/sfopt_water.dir/md_objective.cpp.o.d"
  "CMakeFiles/sfopt_water.dir/surrogate.cpp.o"
  "CMakeFiles/sfopt_water.dir/surrogate.cpp.o.d"
  "libsfopt_water.a"
  "libsfopt_water.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfopt_water.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
