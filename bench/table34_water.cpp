// Reproduces Table 3.4: reparameterization of the TIP4P-class water model
// with the MN, PC and PC+MN algorithms, from the dissertation's poor
// initial simplex.  Prints (a) the initial parameter rows, (b)-(d) the
// final parameters found by each algorithm next to the published TIP4P
// values, and the property table (values and deviations from experiment)
// for MN / PC / PC+MN / TIP4P / experiment.

#include <cstdio>
#include <vector>

#include "common/harness.hpp"
#include "core/algorithms.hpp"
#include "water/cost.hpp"
#include "water/experimental.hpp"

using namespace sfopt;

namespace {

struct AlgoResult {
  std::string name;
  core::OptimizationResult result;
};

void printProperties(const std::string& name, const water::WaterProperties& p) {
  const auto exp = water::experimentalTargets();
  std::printf("%-8s %9.2f (%6.2f) %9.1f (%8.1f) %7.2f (%5.2f) %8.4f %8.4f %8.4f\n",
              name.c_str(), p.internalEnergyKJPerMol,
              p.internalEnergyKJPerMol - exp.internalEnergyKJPerMol, p.pressureAtm,
              p.pressureAtm - exp.pressureAtm, p.diffusion1e5Cm2PerS,
              p.diffusion1e5Cm2PerS - exp.diffusion1e5Cm2PerS, p.rdfResidualOO,
              p.rdfResidualOH, p.rdfResidualHH);
}

}  // namespace

int main() {
  bench::printHeader("Table 3.4 - automated TIP4P water reparameterization");

  water::WaterCostObjective::Options objOpts;
  objOpts.sigma0 = 0.2;
  const water::WaterCostObjective objective(objOpts);

  const auto allRows = water::table34InitialPoints();
  const std::vector<core::Point> start(allRows.begin(), allRows.begin() + 4);

  bench::printSubHeader("(a) initial parameters (Table 3.4a rows)");
  std::printf("%12s %10s %10s\n", "epsilon", "sigma", "qH");
  for (const auto& p : allRows) std::printf("%12.4f %10.3f %10.3f\n", p[0], p[1], p[2]);

  auto budget = [](core::CommonOptions& common) {
    common.termination.tolerance = 1e-3;
    common.termination.maxIterations = 400;
    common.termination.maxSamples = 4'000'000;
    common.sampling.maxSamplesPerVertex = 400'000;
  };

  std::vector<AlgoResult> runs;
  {
    core::MaxNoiseOptions mn;
    budget(mn.common);
    runs.push_back({"MN", core::runMaxNoise(objective, start, mn)});
  }
  {
    core::PCOptions pc;
    budget(pc.common);
    runs.push_back({"PC", core::runPointToPoint(objective, start, pc)});
  }
  {
    core::PCOptions pcmn;
    budget(pcmn.common);
    pcmn.maxNoiseGate = true;
    runs.push_back({"PC+MN", core::runPointToPoint(objective, start, pcmn)});
  }

  bench::printSubHeader("(b)-(d) final parameters vs published TIP4P");
  const auto tip4p = md::tip4pPublished();
  std::printf("%-8s %10s %10s %10s %8s %10s\n", "algo", "epsilon", "sigma", "qH", "steps",
              "stop");
  for (const auto& [name, res] : runs) {
    std::printf("%-8s %10.4f %10.4f %10.4f %8lld %10s\n", name.c_str(), res.best[0],
                res.best[1], res.best[2], static_cast<long long>(res.iterations),
                toString(res.reason).data());
  }
  std::printf("%-8s %10.4f %10.4f %10.4f %8s %10s\n", "TIP4P", tip4p.epsilon, tip4p.sigma,
              tip4p.qH, "-", "-");

  bench::printSubHeader("property table: value (deviation from experiment)");
  std::printf("%-8s %20s %21s %15s %8s %8s %8s\n", "model", "U kJ/mol", "P atm",
              "D 1e-5cm2/s", "gOO", "gOH", "gHH");
  const auto& surrogate = objective.surrogate();
  for (const auto& [name, res] : runs) {
    printProperties(name, surrogate.properties(water::paramsFromPoint(res.best)));
  }
  printProperties("TIP4P", surrogate.properties(tip4p));
  const auto exp = water::experimentalTargets();
  std::printf("%-8s %9.2f (%6.2f) %9.1f (%8.1f) %7.2f (%5.2f) %8s %8s %8s\n", "EXP",
              exp.internalEnergyKJPerMol, 0.0, exp.pressureAtm, 0.0,
              exp.diffusion1e5Cm2PerS, 0.0, "0", "0", "0");

  bench::printSubHeader("cost function at the optima (eq. 3.4)");
  for (const auto& [name, res] : runs) {
    std::printf("%-8s g = %.4f\n", name.c_str(),
                *objective.trueValue(res.best));
  }
  const std::vector<double> tip4pPoint{tip4p.epsilon, tip4p.sigma, tip4p.qH};
  std::printf("%-8s g = %.4f\n", "TIP4P", *objective.trueValue(tip4pPoint));

  std::printf(
      "\nPaper shape check: all three algorithms converge from the poor start\n"
      "into the close neighbourhood of the published TIP4P parameters, with\n"
      "structural residuals at or slightly below the TIP4P baseline (the\n"
      "optimized models slightly improve on TIP4P's g_OO fit).\n");
  return 0;
}
