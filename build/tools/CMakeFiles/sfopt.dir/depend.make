# Empty dependencies file for sfopt.
# This may be replaced when dependencies are built.
