#include "net/tcp_transport.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "telemetry/telemetry.hpp"

namespace sfopt::net {

namespace {

/// Granularity of one poll pass: short enough that heartbeat bookkeeping
/// and deadline checks stay responsive inside long blocking recvs.
constexpr double kPollSliceSeconds = 0.2;

constexpr std::size_t kReadChunk = 64 * 1024;

/// Upper bound on a blocking worker->master write when no master timeout is
/// configured: a peer that stops draining its socket for this long is dead
/// for our purposes, and an unbounded send would pin the heartbeat thread
/// (which writes under sendMutex_) and wedge destruction.
constexpr double kDefaultWriteTimeoutSeconds = 30.0;

int toPollMillis(double seconds) {
  if (seconds <= 0.0) return 0;
  const double ms = seconds * 1000.0;
  return ms > 1.0 ? static_cast<int>(std::min(ms, 60'000.0)) : 1;
}

bool matches(const Message& m, Rank source, int tag) noexcept {
  return (source == kAnySource || m.source == source) && (tag == kAnyTag || m.tag == tag);
}

}  // namespace

NetTelemetry NetTelemetry::registerIn(telemetry::Telemetry* telemetry) {
  NetTelemetry t;
  if (telemetry == nullptr) return t;
  auto& reg = telemetry->metrics();
  t.messagesIn = &reg.counter("net.messages_in");
  t.messagesOut = &reg.counter("net.messages_out");
  t.bytesIn = &reg.counter("net.bytes_in");
  t.bytesOut = &reg.counter("net.bytes_out");
  t.connects = &reg.counter("net.connects");
  t.disconnects = &reg.counter("net.disconnects");
  t.heartbeatsSent = &reg.counter("net.heartbeats_sent");
  t.heartbeatMisses = &reg.counter("net.heartbeat_misses");
  t.sendsDropped = &reg.counter("net.sends_dropped");
  t.sendStalls = &reg.counter("net.send_stalls");
  t.framesIn = &reg.counter("net.frames_in");
  t.framesOut = &reg.counter("net.frames_out");
  t.decodeErrors = &reg.counter("net.decode_errors");
  return t;
}

void NetTelemetry::add(telemetry::Counter* c, std::int64_t n) noexcept {
  if (c != nullptr) c->add(n);
}

// ---------------------------------------------------------------------------
// TcpCommWorld (master)
// ---------------------------------------------------------------------------

TcpCommWorld::TcpCommWorld(std::uint16_t port, Options options)
    : options_(options),
      listener_(tcpListen(port)),
      port_(localPort(listener_)),
      tel_(NetTelemetry::registerIn(options.telemetry)) {}

TcpCommWorld::~TcpCommWorld() = default;

void TcpCommWorld::setGreeting(int tag, mw::MessageBuffer payload) {
  greeting_ = {tag, payload.releaseWire()};
}

int TcpCommWorld::liveWorkers() const noexcept {
  int n = 0;
  for (const auto& p : peers_) n += p->alive ? 1 : 0;
  return n;
}

int TcpCommWorld::size() const noexcept { return 1 + static_cast<int>(peers_.size()); }

double TcpCommWorld::masterNow() const {
  return options_.telemetry != nullptr ? options_.telemetry->clock().now()
                                       : monotonicSeconds();
}

std::vector<FleetHealth> TcpCommWorld::fleetHealth() const {
  std::vector<FleetHealth> out;
  out.reserve(peers_.size());
  for (const auto& p : peers_) out.push_back(p->health);
  return out;
}

void TcpCommWorld::checkMaster(Rank at, const char* what) const {
  if (at != 0) {
    throw std::invalid_argument(std::string("TcpCommWorld::") + what +
                                ": only rank 0 lives on the master transport");
  }
}

int TcpCommWorld::waitForWorkers(int count, double timeoutSeconds) {
  const double deadline = monotonicSeconds() + timeoutSeconds;
  for (;;) {
    if (liveWorkers() >= count) return liveWorkers();
    const double remaining = deadline - monotonicSeconds();
    if (remaining <= 0.0) {
      throw std::runtime_error("TcpCommWorld: timed out waiting for workers (have " +
                               std::to_string(liveWorkers()) + " of " +
                               std::to_string(count) + ")");
    }
    pollOnce(std::min(remaining, kPollSliceSeconds));
  }
}

void TcpCommWorld::send(Rank from, Rank to, int tag, mw::MessageBuffer payload,
                        std::uint64_t traceId, std::uint64_t parentSpan) {
  checkMaster(from, "send(from)");
  if (to < 1 || to >= size()) {
    throw std::out_of_range("TcpCommWorld::send: rank out of range");
  }
  Peer& peer = *peers_[static_cast<std::size_t>(to) - 1];
  if (!peer.alive) {
    NetTelemetry::add(tel_.sendsDropped);
    return;  // loss already reported (or about to be) via kTagWorkerLost
  }
  const Frame frame = makeMessageFrame(tag, payload.releaseWire(), traceId, parentSpan);
  const std::size_t before = peer.sendBuf.size();
  appendFrame(peer.sendBuf, frame);
  ++messagesSent_;
  ++framesSent_;
  bytesSent_ += peer.sendBuf.size() - before;
  NetTelemetry::add(tel_.messagesOut);
  NetTelemetry::add(tel_.framesOut);
  NetTelemetry::add(tel_.bytesOut, static_cast<std::int64_t>(peer.sendBuf.size() - before));
  flushPeer(to);
}

void TcpCommWorld::enqueueToPeer(Rank rank, const Frame& frame) {
  Peer& peer = *peers_[static_cast<std::size_t>(rank) - 1];
  if (!peer.alive) return;
  const std::size_t before = peer.sendBuf.size();
  appendFrame(peer.sendBuf, frame);
  ++framesSent_;
  NetTelemetry::add(tel_.framesOut);
  NetTelemetry::add(tel_.bytesOut, static_cast<std::int64_t>(peer.sendBuf.size() - before));
  flushPeer(rank);
}

void TcpCommWorld::flushPeer(Rank rank) {
  Peer& peer = *peers_[static_cast<std::size_t>(rank) - 1];
  bool progressed = false;
  while (peer.alive && peer.sendPos < peer.sendBuf.size()) {
    const ssize_t n = ::send(peer.sock.fd(), peer.sendBuf.data() + peer.sendPos,
                             peer.sendBuf.size() - peer.sendPos, MSG_NOSIGNAL);
    if (n > 0) {
      peer.sendPos += static_cast<std::size_t>(n);
      progressed = true;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Drained by poll later — but start (or keep) the stall clock: a
      // half-open peer never drains, and only this deadline catches it.
      if (peer.sendBlockedSince <= 0.0 || progressed) {
        peer.sendBlockedSince = monotonicSeconds();
      }
      // Against a stalled consumer the backlog would otherwise grow
      // without bound: cap it and evict the peer as lost.
      if (options_.maxSendBufferBytes > 0 &&
          peer.sendBuf.size() - peer.sendPos > options_.maxSendBufferBytes) {
        NetTelemetry::add(tel_.sendStalls);
        markLost(rank, "send backlog overflow");
      }
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    markLost(rank, "send failed");
    return;
  }
  peer.sendBlockedSince = 0.0;
  if (peer.sendPos == peer.sendBuf.size()) {
    peer.sendBuf.clear();
    peer.sendPos = 0;
  }
}

void TcpCommWorld::retireFleetTelemetry(Rank rank) {
  Peer& peer = *peers_[static_cast<std::size_t>(rank) - 1];
  if (options_.telemetry != nullptr && peer.health.seen) {
    auto& reg = options_.telemetry->metrics();
    const std::string prefix = "fleet.r" + std::to_string(rank) + ".";
    for (const char* name :
         {"execute_ewma_seconds", "tasks_executed", "tasks_failed", "bytes_in",
          "bytes_out", "messages_in", "messages_out", "queue_depth"}) {
      reg.gauge(prefix + name).set(0.0);
    }
    if (peer.health.rttSeconds >= 0.0) {
      reg.gauge(prefix + "rtt_seconds").set(0.0);
      reg.gauge(prefix + "clock_offset_seconds").set(0.0);
    }
  }
  peer.health = FleetHealth{};
}

void TcpCommWorld::markLost(Rank rank, const char* why) {
  Peer& peer = *peers_[static_cast<std::size_t>(rank) - 1];
  if (!peer.alive) return;
  peer.alive = false;
  peer.sock.close();
  peer.sendBuf.clear();
  peer.sendPos = 0;
  peer.sendBlockedSince = 0.0;
  // Retire the rank's gauges and clock-offset estimate now: ranks are
  // never reused, so nothing would ever overwrite them, and a reconnected
  // worker reporting under its fresh rank must not leave the old keys
  // frozen at their last pre-loss readings.
  retireFleetTelemetry(rank);
  NetTelemetry::add(tel_.disconnects);
  Message lost;
  lost.source = rank;
  lost.tag = kTagWorkerLost;
  lost.payload.pack(std::string(why));
  inbox_.push_back(std::move(lost));
}

void TcpCommWorld::serviceListener() {
  while (auto accepted = tcpAccept(listener_)) {
    PendingPeer p;
    p.sock = std::move(*accepted);
    p.decoder = FrameDecoder(options_.maxFrameBytes);
    p.since = monotonicSeconds();
    pending_.push_back(std::move(p));
  }
}

void TcpCommWorld::promotePending(std::size_t index) {
  // Hello validated by the caller; assign the next rank and register.
  auto peer = std::make_unique<Peer>();
  peer->sock = std::move(pending_[index].sock);
  peer->decoder = std::move(pending_[index].decoder);
  peer->lastHeard = monotonicSeconds();
  peer->lastBeat = peer->lastHeard;
  peer->alive = true;
  peers_.push_back(std::move(peer));
  pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(index));

  const Rank rank = static_cast<Rank>(peers_.size());
  NetTelemetry::add(tel_.connects);
  enqueueToPeer(rank, makeWelcomeFrame(rank, size()));
  if (greeting_.has_value()) {
    enqueueToPeer(rank, makeMessageFrame(greeting_->first,
                                         std::vector<std::byte>(greeting_->second)));
  }
  Message joined;
  joined.source = rank;
  joined.tag = kTagWorkerJoined;
  inbox_.push_back(std::move(joined));
}

void TcpCommWorld::servicePending(std::size_t index) {
  PendingPeer& p = pending_[index];
  std::byte chunk[kReadChunk];
  bool closed = false;
  for (;;) {
    const ssize_t n = ::recv(p.sock.fd(), chunk, sizeof chunk, 0);
    if (n > 0) {
      p.decoder.feed(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // EOF/error: defer the drop until the decoder is consulted — the Hello
    // may have arrived in the connection's final segments, and a completed
    // registration must surface (as a join, then a loss) rather than vanish.
    closed = true;
    break;
  }
  try {
    if (auto frame = p.decoder.next()) {
      const Hello hello = parseHello(*frame);  // throws on bad magic/version
      if (hello.peerKind == kPeerClient) {
        promoteClient(index);
      } else {
        promotePending(index);
      }
      return;
    }
  } catch (const ProtocolError&) {
    // Not an sfopt worker (or an incompatible one): refuse registration.
    ++decodeErrors_;
    NetTelemetry::add(tel_.decodeErrors);
    pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(index));
    return;
  }
  // Closed before completing the handshake: just drop it.
  if (closed) pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(index));
}

void TcpCommWorld::promoteClient(std::size_t index) {
  auto client = std::make_unique<ClientPeer>();
  client->sock = std::move(pending_[index].sock);
  client->decoder = std::move(pending_[index].decoder);
  client->alive = true;
  clients_.push_back(std::move(client));
  pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(index));

  const int id = static_cast<int>(clients_.size());
  NetTelemetry::add(tel_.connects);
  // The Welcome's rank field carries the client id; worldSize is the
  // worker world as the client would see it (floored at 2 so the
  // handshake validation on the other end holds before workers join).
  ClientPeer& c = *clients_[static_cast<std::size_t>(id) - 1];
  const std::size_t before = c.sendBuf.size();
  appendFrame(c.sendBuf, makeWelcomeFrame(id, std::max(size(), 2)));
  ++framesSent_;
  NetTelemetry::add(tel_.framesOut);
  NetTelemetry::add(tel_.bytesOut, static_cast<std::int64_t>(c.sendBuf.size() - before));
  flushClient(id);
}

void TcpCommWorld::dropClient(int client) {
  ClientPeer& c = *clients_[static_cast<std::size_t>(client) - 1];
  if (!c.alive) return;
  c.alive = false;
  c.sock.close();
  c.sendBuf.clear();
  c.sendPos = 0;
  NetTelemetry::add(tel_.disconnects);
}

void TcpCommWorld::flushClient(int client) {
  ClientPeer& c = *clients_[static_cast<std::size_t>(client) - 1];
  while (c.alive && c.sendPos < c.sendBuf.size()) {
    const ssize_t n = ::send(c.sock.fd(), c.sendBuf.data() + c.sendPos,
                             c.sendBuf.size() - c.sendPos, MSG_NOSIGNAL);
    if (n > 0) {
      c.sendPos += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    dropClient(client);
    return;
  }
  if (c.sendPos == c.sendBuf.size()) {
    c.sendBuf.clear();
    c.sendPos = 0;
  }
}

void TcpCommWorld::serviceClient(int client) {
  ClientPeer& c = *clients_[static_cast<std::size_t>(client) - 1];
  std::byte chunk[kReadChunk];
  bool closed = false;
  for (;;) {
    const ssize_t n = ::recv(c.sock.fd(), chunk, sizeof chunk, 0);
    if (n > 0) {
      c.decoder.feed(chunk, static_cast<std::size_t>(n));
      NetTelemetry::add(tel_.bytesIn, n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // Drain buffered frames below before retiring the id: a cancel or
    // final status request often rides the connection's last segments.
    closed = true;
    break;
  }
  try {
    while (auto frame = c.decoder.next()) {
      ++framesReceived_;
      NetTelemetry::add(tel_.framesIn);
      if (isJobFrame(frame->type)) {
        ClientRequest req;
        req.client = client;
        req.type = frame->type;
        req.payload = mw::MessageBuffer(std::move(frame->payload));
        ++messagesReceived_;
        bytesReceived_ += req.payload.sizeBytes();
        clientInbox_.push_back(std::move(req));
        NetTelemetry::add(tel_.messagesIn);
        continue;
      }
      if (frame->type == FrameType::Heartbeat) continue;
      throw ProtocolError("client sent a non-job frame after registration");
    }
    if (closed) dropClient(client);
  } catch (const ProtocolError&) {
    ++decodeErrors_;
    NetTelemetry::add(tel_.decodeErrors);
    dropClient(client);
  }
}

std::vector<TcpCommWorld::ClientRequest> TcpCommWorld::takeClientRequests() {
  std::vector<ClientRequest> out;
  out.reserve(clientInbox_.size());
  while (!clientInbox_.empty()) {
    out.push_back(std::move(clientInbox_.front()));
    clientInbox_.pop_front();
  }
  return out;
}

void TcpCommWorld::sendToClient(int client, FrameType type, mw::MessageBuffer payload) {
  if (client < 1 || client > static_cast<int>(clients_.size())) {
    throw std::out_of_range("TcpCommWorld::sendToClient: unknown client id");
  }
  ClientPeer& c = *clients_[static_cast<std::size_t>(client) - 1];
  if (!c.alive) {
    NetTelemetry::add(tel_.sendsDropped);
    return;
  }
  const std::size_t before = c.sendBuf.size();
  appendFrame(c.sendBuf, makeJobFrame(type, payload.releaseWire()));
  ++messagesSent_;
  ++framesSent_;
  bytesSent_ += c.sendBuf.size() - before;
  NetTelemetry::add(tel_.messagesOut);
  NetTelemetry::add(tel_.framesOut);
  NetTelemetry::add(tel_.bytesOut, static_cast<std::int64_t>(c.sendBuf.size() - before));
  flushClient(client);
}

int TcpCommWorld::connectedClients() const noexcept {
  int n = 0;
  for (const auto& c : clients_) n += c->alive ? 1 : 0;
  return n;
}

void TcpCommWorld::pump(double timeoutSeconds) { pollOnce(timeoutSeconds); }

void TcpCommWorld::servicePeer(Rank rank) {
  Peer& peer = *peers_[static_cast<std::size_t>(rank) - 1];
  std::byte chunk[kReadChunk];
  for (;;) {
    const ssize_t n = ::recv(peer.sock.fd(), chunk, sizeof chunk, 0);
    if (n > 0) {
      peer.decoder.feed(chunk, static_cast<std::size_t>(n));
      NetTelemetry::add(tel_.bytesIn, n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    markLost(rank, n == 0 ? "connection closed" : "connection error");
    return;
  }
  try {
    while (auto frame = peer.decoder.next()) {
      peer.lastHeard = monotonicSeconds();
      ++framesReceived_;
      NetTelemetry::add(tel_.framesIn);
      switch (frame->type) {
        case FrameType::Message: {
          Message m;
          m.source = rank;
          m.tag = frame->tag;
          m.traceId = frame->traceId;
          m.parentSpan = frame->parentSpan;
          m.payload = mw::MessageBuffer(std::move(frame->payload));
          ++messagesReceived_;
          bytesReceived_ += m.payload.sizeBytes();
          inbox_.push_back(std::move(m));
          NetTelemetry::add(tel_.messagesIn);
          break;
        }
        case FrameType::Heartbeat:
          break;  // lastHeard already refreshed
        case FrameType::Telemetry:
          handleSnapshot(rank, parseTelemetrySnapshot(*frame));
          break;
        default:
          throw ProtocolError("unexpected handshake frame after registration");
      }
    }
  } catch (const ProtocolError&) {
    ++decodeErrors_;
    NetTelemetry::add(tel_.decodeErrors);
    markLost(rank, "protocol violation");
  }
}

void TcpCommWorld::handleSnapshot(Rank rank, const TelemetrySnapshot& snap) {
  Peer& peer = *peers_[static_cast<std::size_t>(rank) - 1];
  FleetHealth& h = peer.health;
  const double now = masterNow();
  h.seen = true;
  h.executeEwmaSeconds = snap.executeEwmaSeconds;
  h.tasksExecuted = snap.tasksExecuted;
  h.tasksFailed = snap.tasksFailed;
  h.bytesIn = snap.bytesIn;
  h.bytesOut = snap.bytesOut;
  h.messagesIn = snap.messagesIn;
  h.messagesOut = snap.messagesOut;
  h.queueDepth = snap.queueDepth;
  h.lastUpdateSeconds = now;
  // One NTP-style exchange per snapshot: the worker echoes our heartbeat
  // stamp plus how long it held it; what's left of the round trip is wire
  // time, split symmetrically for the offset estimate.
  if (snap.echoMasterTime > 0.0) {
    const double rtt = std::max(0.0, now - snap.echoMasterTime - snap.holdSeconds);
    h.rttSeconds = rtt;
    h.clockOffsetSeconds =
        (snap.workerNow - snap.holdSeconds) - snap.echoMasterTime - rtt / 2.0;
  }
  if (options_.telemetry == nullptr) return;
  auto& reg = options_.telemetry->metrics();
  const std::string prefix = "fleet.r" + std::to_string(rank) + ".";
  reg.gauge(prefix + "execute_ewma_seconds").set(h.executeEwmaSeconds);
  reg.gauge(prefix + "tasks_executed").set(static_cast<double>(h.tasksExecuted));
  reg.gauge(prefix + "tasks_failed").set(static_cast<double>(h.tasksFailed));
  reg.gauge(prefix + "bytes_in").set(static_cast<double>(h.bytesIn));
  reg.gauge(prefix + "bytes_out").set(static_cast<double>(h.bytesOut));
  reg.gauge(prefix + "messages_in").set(static_cast<double>(h.messagesIn));
  reg.gauge(prefix + "messages_out").set(static_cast<double>(h.messagesOut));
  reg.gauge(prefix + "queue_depth").set(static_cast<double>(h.queueDepth));
  if (h.rttSeconds >= 0.0) {
    reg.gauge(prefix + "rtt_seconds").set(h.rttSeconds);
    reg.gauge(prefix + "clock_offset_seconds").set(h.clockOffsetSeconds);
    // Anchor event for `sfopt trace`: maps this worker's clock onto ours so
    // merged span trees share a timeline.
    telemetry::Event e;
    e.type = "clock";
    e.name = "fleet.clock";
    e.time = now;
    e.numFields = {{"rank", static_cast<double>(rank)},
                   {"offset_seconds", h.clockOffsetSeconds},
                   {"rtt_seconds", h.rttSeconds}};
    options_.telemetry->sink().emit(e);
  }
}

void TcpCommWorld::pollOnce(double timeoutSeconds) {
  std::vector<pollfd> fds;
  // Order: listener, pending peers, live peers (kinds recovered by index).
  // The pending count is snapshotted here: serviceListener() below may
  // append freshly accepted peers, which were never polled and must not be
  // indexed against this pass's fds — they get polled next pass.
  fds.push_back({listener_.fd(), POLLIN, 0});
  const std::size_t polledPending = pending_.size();
  for (const PendingPeer& p : pending_) fds.push_back({p.sock.fd(), POLLIN, 0});
  std::vector<Rank> liveRanks;
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    const Peer& p = *peers_[i];
    if (!p.alive) continue;
    short events = POLLIN;
    if (p.sendPos < p.sendBuf.size()) events |= POLLOUT;
    fds.push_back({p.sock.fd(), events, 0});
    liveRanks.push_back(static_cast<Rank>(i + 1));
  }
  std::vector<int> liveClients;
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    const ClientPeer& c = *clients_[i];
    if (!c.alive) continue;
    short events = POLLIN;
    if (c.sendPos < c.sendBuf.size()) events |= POLLOUT;
    fds.push_back({c.sock.fd(), events, 0});
    liveClients.push_back(static_cast<int>(i + 1));
  }

  const int ready =
      ::poll(fds.data(), fds.size(), toPollMillis(std::min(timeoutSeconds, kPollSliceSeconds)));
  if (ready > 0) {
    std::size_t idx = 0;
    if (fds[idx].revents & POLLIN) serviceListener();
    ++idx;
    // Walk pending list back to front so erasure is index-stable.
    for (std::size_t i = polledPending; i-- > 0;) {
      if (fds[idx + i].revents & (POLLIN | POLLERR | POLLHUP)) servicePending(i);
    }
    idx += polledPending;
    for (std::size_t i = 0; i < liveRanks.size(); ++i) {
      const short re = fds[idx + i].revents;
      const Rank rank = liveRanks[i];
      if (re & (POLLIN | POLLERR | POLLHUP)) servicePeer(rank);
      if ((re & POLLOUT) && peers_[static_cast<std::size_t>(rank) - 1]->alive) {
        flushPeer(rank);
      }
    }
    idx += liveRanks.size();
    for (std::size_t i = 0; i < liveClients.size(); ++i) {
      const short re = fds[idx + i].revents;
      const int client = liveClients[i];
      if (re & (POLLIN | POLLERR | POLLHUP)) serviceClient(client);
      if ((re & POLLOUT) && clients_[static_cast<std::size_t>(client) - 1]->alive) {
        flushClient(client);
      }
    }
  }

  // Heartbeat bookkeeping: beat every live peer on the cadence, declare
  // lost any peer silent past the timeout, and declare lost any peer whose
  // socket has refused our bytes past the send-stall deadline (a half-open
  // connection keeps heartbeating us, so recv silence never fires for it).
  const double now = monotonicSeconds();
  const double stallTimeout = options_.sendStallTimeoutSeconds > 0.0
                                  ? options_.sendStallTimeoutSeconds
                                  : options_.heartbeatTimeoutSeconds;
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    Peer& p = *peers_[i];
    if (!p.alive) continue;
    const Rank rank = static_cast<Rank>(i + 1);
    if (now - p.lastBeat >= options_.heartbeatIntervalSeconds) {
      p.lastBeat = now;
      enqueueToPeer(rank, makeHeartbeatFrame(masterNow()));
      NetTelemetry::add(tel_.heartbeatsSent);
    }
    if (p.alive && now - p.lastHeard > options_.heartbeatTimeoutSeconds) {
      NetTelemetry::add(tel_.heartbeatMisses);
      markLost(rank, "heartbeat timeout");
    }
    if (p.alive && p.sendBlockedSince > 0.0 && now - p.sendBlockedSince > stallTimeout) {
      NetTelemetry::add(tel_.sendStalls);
      markLost(rank, "send stall");
    }
  }
}

std::optional<Message> TcpCommWorld::takeMatching(Rank source, int tag) {
  const auto it = std::find_if(inbox_.begin(), inbox_.end(),
                               [&](const Message& m) { return matches(m, source, tag); });
  if (it == inbox_.end()) return std::nullopt;
  Message m = std::move(*it);
  inbox_.erase(it);
  return m;
}

Message TcpCommWorld::recv(Rank at, Rank source, int tag) {
  checkMaster(at, "recv");
  for (;;) {
    if (auto m = takeMatching(source, tag)) return std::move(*m);
    pollOnce(kPollSliceSeconds);
  }
}

std::optional<Message> TcpCommWorld::recvFor(Rank at, double timeoutSeconds, Rank source,
                                             int tag) {
  checkMaster(at, "recvFor");
  const double deadline = monotonicSeconds() + timeoutSeconds;
  for (;;) {
    if (auto m = takeMatching(source, tag)) return m;
    const double remaining = deadline - monotonicSeconds();
    if (remaining <= 0.0) return std::nullopt;
    pollOnce(remaining);
  }
}

std::optional<Message> TcpCommWorld::tryRecv(Rank at, Rank source, int tag) {
  checkMaster(at, "tryRecv");
  if (auto m = takeMatching(source, tag)) return m;
  pollOnce(0.0);
  return takeMatching(source, tag);
}

// ---------------------------------------------------------------------------
// TcpWorkerTransport (worker)
// ---------------------------------------------------------------------------

TcpWorkerTransport::TcpWorkerTransport(const std::string& host, std::uint16_t port,
                                       Options options)
    : options_(options),
      sock_(tcpConnect(host, port, options.connectTimeoutSeconds)),
      decoder_(options.maxFrameBytes),
      tel_(NetTelemetry::registerIn(options.telemetry)) {
  {
    std::lock_guard lock(sendMutex_);
    writeFrameLocked(makeHelloFrame(), /*nothrow=*/false);
  }
  // Wait for the Welcome; any stray frames decoded alongside it (the
  // greeting often rides the same segment) stay queued for recv().
  const double deadline = monotonicSeconds() + options_.handshakeTimeoutSeconds;
  std::optional<Welcome> welcome;
  while (!welcome.has_value()) {
    const double remaining = deadline - monotonicSeconds();
    if (remaining <= 0.0) {
      throw ConnectionLost("handshake: no welcome from master within " +
                           std::to_string(options_.handshakeTimeoutSeconds) + "s");
    }
    fill(std::min(remaining, kPollSliceSeconds));
    while (auto frame = decoder_.next()) {
      if (frame->type == FrameType::Welcome) {
        welcome = parseWelcome(*frame);
        break;
      }
      if (frame->type == FrameType::Message) {
        Message m;
        m.source = 0;
        m.tag = frame->tag;
        m.traceId = frame->traceId;
        m.parentSpan = frame->parentSpan;
        m.payload = mw::MessageBuffer(std::move(frame->payload));
        inbox_.push_back(std::move(m));
        inboxDepth_.store(static_cast<std::uint32_t>(inbox_.size()));
      }
      if (frame->type == FrameType::Heartbeat && frame->senderTime > 0.0) {
        lastMasterBeat_.store(frame->senderTime);
        lastMasterBeatLocal_.store(localNow());
      }
    }
  }
  rank_ = welcome->rank;
  worldSize_ = welcome->worldSize;
  lastHeard_ = monotonicSeconds();
  NetTelemetry::add(tel_.connects);
  beat_ = std::thread([this] { beatLoop(); });
}

TcpWorkerTransport::~TcpWorkerTransport() {
  stopping_.store(true);
  stopCv_.notify_all();
  if (beat_.joinable()) beat_.join();
  sock_.close();
}

double TcpWorkerTransport::localNow() const {
  return options_.telemetry != nullptr ? options_.telemetry->clock().now()
                                       : monotonicSeconds();
}

void TcpWorkerTransport::beatLoop() {
  std::unique_lock lock(stopMutex_);
  while (!stopping_.load()) {
    stopCv_.wait_for(lock,
                     std::chrono::duration<double>(options_.heartbeatIntervalSeconds),
                     [this] { return stopping_.load(); });
    if (stopping_.load() || dead_.load()) continue;
    // Poll the provider while holding its mutex, so setStatsProvider({})
    // is a barrier: once it returns, the callback (and whatever worker
    // state it captured) is guaranteed not to be mid-invocation here.
    std::optional<WorkerStats> stats;
    {
      std::lock_guard providerLock(providerMutex_);
      if (statsProvider_) stats = statsProvider_();
    }
    std::lock_guard sendLock(sendMutex_);
    writeFrameLocked(makeHeartbeatFrame(localNow()), /*nothrow=*/true);
    NetTelemetry::add(tel_.heartbeatsSent);
    if (stats.has_value() && !dead_.load()) {
      TelemetrySnapshot snap;
      const double echo = lastMasterBeat_.load();
      snap.echoMasterTime = echo;
      snap.workerNow = localNow();
      snap.holdSeconds = echo > 0.0 ? snap.workerNow - lastMasterBeatLocal_.load() : 0.0;
      snap.tasksExecuted = stats->tasksExecuted;
      snap.tasksFailed = stats->tasksFailed;
      snap.executeEwmaSeconds = stats->executeEwmaSeconds;
      snap.bytesIn = rawBytesIn_.load();
      snap.bytesOut = rawBytesOut_.load();
      snap.messagesIn = atomicMessagesIn_.load();
      snap.messagesOut = atomicMessagesOut_.load();
      snap.queueDepth = inboxDepth_.load();
      writeFrameLocked(makeTelemetryFrame(snap), /*nothrow=*/true);
    }
  }
}

void TcpWorkerTransport::writeFrameLocked(const Frame& frame, bool nothrow) {
  std::vector<std::byte> wire;
  appendFrame(wire, frame);
  const double writeTimeout = options_.masterTimeoutSeconds > 0.0
                                  ? options_.masterTimeoutSeconds
                                  : kDefaultWriteTimeoutSeconds;
  const double deadline = monotonicSeconds() + writeTimeout;
  std::size_t sent = 0;
  while (sent < wire.size()) {
    if (stopping_.load()) {
      // Destruction is waiting on the heartbeat thread (which writes under
      // sendMutex_); abandon the partial write so it can exit.
      dead_.store(true);
      if (nothrow) return;
      throw ConnectionLost("transport stopping while sending");
    }
    const ssize_t n =
        ::send(sock_.fd(), wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (monotonicSeconds() >= deadline) {
        dead_.store(true);
        NetTelemetry::add(tel_.disconnects);
        if (nothrow) return;
        throw ConnectionLost("master stopped draining its socket for " +
                             std::to_string(writeTimeout) + "s while sending");
      }
      pollfd pfd{sock_.fd(), POLLOUT, 0};
      (void)::poll(&pfd, 1, toPollMillis(kPollSliceSeconds));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    dead_.store(true);
    if (nothrow) return;
    throw ConnectionLost("master connection lost while sending");
  }
  ++framesSent_;
  rawBytesOut_ += wire.size();
  NetTelemetry::add(tel_.framesOut);
  NetTelemetry::add(tel_.bytesOut, static_cast<std::int64_t>(wire.size()));
}

void TcpWorkerTransport::fill(double timeoutSeconds) {
  if (dead_.load()) throw ConnectionLost("master connection lost");
  pollfd pfd{sock_.fd(), POLLIN, 0};
  const int ready = ::poll(&pfd, 1, toPollMillis(timeoutSeconds));
  if (ready <= 0) {
    if (options_.masterTimeoutSeconds > 0.0 &&
        monotonicSeconds() - lastHeard_ > options_.masterTimeoutSeconds) {
      dead_.store(true);
      NetTelemetry::add(tel_.heartbeatMisses);
      throw ConnectionLost("master silent past the heartbeat timeout");
    }
    return;
  }
  std::byte chunk[kReadChunk];
  for (;;) {
    const ssize_t n = ::recv(sock_.fd(), chunk, sizeof chunk, 0);
    if (n > 0) {
      decoder_.feed(chunk, static_cast<std::size_t>(n));
      lastHeard_ = monotonicSeconds();
      rawBytesIn_ += static_cast<std::uint64_t>(n);
      NetTelemetry::add(tel_.bytesIn, n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // Mark dead but return normally so frames already buffered (a shutdown
    // message often rides the connection's final segments) still reach the
    // caller; the next fill() throws via the dead_ check at entry.
    dead_.store(true);
    NetTelemetry::add(tel_.disconnects);
    return;
  }
}

void TcpWorkerTransport::readSome(double timeoutSeconds) {
  fill(timeoutSeconds);
  try {
    while (auto frame = decoder_.next()) {
      ++framesReceived_;
      NetTelemetry::add(tel_.framesIn);
      switch (frame->type) {
        case FrameType::Message: {
          Message m;
          m.source = 0;
          m.tag = frame->tag;
          m.traceId = frame->traceId;
          m.parentSpan = frame->parentSpan;
          m.payload = mw::MessageBuffer(std::move(frame->payload));
          ++messagesReceived_;
          bytesReceived_ += m.payload.sizeBytes();
          ++atomicMessagesIn_;
          inbox_.push_back(std::move(m));
          inboxDepth_.store(static_cast<std::uint32_t>(inbox_.size()));
          NetTelemetry::add(tel_.messagesIn);
          break;
        }
        case FrameType::Heartbeat:
          if (frame->senderTime > 0.0) {
            lastMasterBeat_.store(frame->senderTime);
            lastMasterBeatLocal_.store(localNow());
          }
          break;
        default:
          dead_.store(true);
          throw ConnectionLost("master sent an unexpected handshake frame");
      }
    }
  } catch (const ProtocolError&) {
    ++decodeErrors_;
    NetTelemetry::add(tel_.decodeErrors);
    dead_.store(true);
    throw;
  }
}

void TcpWorkerTransport::checkSelf(Rank r, const char* what) const {
  if (r != rank_) {
    throw std::invalid_argument(std::string("TcpWorkerTransport::") + what +
                                ": only the assigned rank lives on this transport");
  }
}

void TcpWorkerTransport::setStatsProvider(std::function<WorkerStats()> provider) {
  std::lock_guard lock(providerMutex_);
  statsProvider_ = std::move(provider);
}

void TcpWorkerTransport::send(Rank from, Rank to, int tag, mw::MessageBuffer payload,
                              std::uint64_t traceId, std::uint64_t parentSpan) {
  checkSelf(from, "send(from)");
  if (to != 0) {
    throw std::out_of_range("TcpWorkerTransport::send: workers only talk to rank 0");
  }
  const Frame frame = makeMessageFrame(tag, payload.releaseWire(), traceId, parentSpan);
  std::lock_guard lock(sendMutex_);
  writeFrameLocked(frame, /*nothrow=*/false);
  ++messagesSent_;
  ++atomicMessagesOut_;
  // Frame header: 4 len + 1 type + 4 tag + 8 trace + 8 parent.
  bytesSent_ += frame.payload.size() + 25;
  NetTelemetry::add(tel_.messagesOut);
}

std::optional<Message> TcpWorkerTransport::takeMatching(Rank source, int tag) {
  const auto it = std::find_if(inbox_.begin(), inbox_.end(),
                               [&](const Message& m) { return matches(m, source, tag); });
  if (it == inbox_.end()) return std::nullopt;
  Message m = std::move(*it);
  inbox_.erase(it);
  inboxDepth_.store(static_cast<std::uint32_t>(inbox_.size()));
  return m;
}

Message TcpWorkerTransport::recv(Rank at, Rank source, int tag) {
  checkSelf(at, "recv");
  for (;;) {
    if (auto m = takeMatching(source, tag)) return std::move(*m);
    readSome(kPollSliceSeconds);
  }
}

std::optional<Message> TcpWorkerTransport::recvFor(Rank at, double timeoutSeconds,
                                                   Rank source, int tag) {
  checkSelf(at, "recvFor");
  const double deadline = monotonicSeconds() + timeoutSeconds;
  for (;;) {
    if (auto m = takeMatching(source, tag)) return m;
    const double remaining = deadline - monotonicSeconds();
    if (remaining <= 0.0) return std::nullopt;
    readSome(std::min(remaining, kPollSliceSeconds));
  }
}

std::optional<Message> TcpWorkerTransport::tryRecv(Rank at, Rank source, int tag) {
  checkSelf(at, "tryRecv");
  if (auto m = takeMatching(source, tag)) return m;
  readSome(0.0);
  return takeMatching(source, tag);
}

double backoffDelaySeconds(int attempt, double initialBackoffSeconds,
                           std::uint64_t jitterSeed) {
  const int doublings = std::min(std::max(attempt, 1) - 1, 60);
  const double base = std::min(std::ldexp(initialBackoffSeconds, doublings), 5.0);
  // splitmix64 finalizer over (seed, attempt): cheap, stateless, and
  // well-scrambled even for adjacent seeds (rank 1 vs rank 2).
  std::uint64_t z =
      jitterSeed + 0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(attempt);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  const double unit = static_cast<double>(z >> 11) * 0x1.0p-53;  // [0, 1)
  return base * (0.5 + unit);
}

std::unique_ptr<TcpWorkerTransport> connectWithBackoff(
    const std::string& host, std::uint16_t port, int attempts, double initialBackoffSeconds,
    const TcpWorkerTransport::Options& options, std::uint64_t jitterSeed) {
  for (int attempt = 1;; ++attempt) {
    try {
      return std::make_unique<TcpWorkerTransport>(host, port, options);
    } catch (const std::exception&) {
      if (attempt >= attempts) throw;
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(
        backoffDelaySeconds(attempt, initialBackoffSeconds, jitterSeed)));
  }
}

}  // namespace sfopt::net
