// Reproduces Figure 3.7: PC with confidence width k=1 versus k=2 at noise
// level sigma0 = 1000, over 100 random 4-d Rosenbrock initial simplexes.
// The paper finds "no substantial change in the performance".

#include <cstdio>

#include "common/harness.hpp"

using namespace sfopt;

int main(int argc, char** argv) {
  const int trials = argc > 1 ? std::atoi(argv[1]) : 100;
  bench::printHeader("Figure 3.7 - PC k=1 vs k=2, sigma0 = 1000, 4-d Rosenbrock");

  bench::PairwiseCampaign campaign;
  campaign.trials = trials;

  auto runWithK = [](double k) {
    return [k](const noise::StochasticObjective& obj, std::span<const core::Point> start) {
      core::PCOptions pc = bench::campaignPc();
      pc.k = k;
      return core::runPointToPoint(obj, start, pc);
    };
  };

  const auto hist = bench::comparePair(
      campaign, [](std::uint64_t seed) { return bench::noisyRosenbrock(4, 1000.0, seed); },
      runWithK(1.0), runWithK(2.0));
  bench::printComparison("log10(min PC[k=1] / min PC[k=2])", hist);
  std::printf(
      "\nPaper shape check: the distribution is centered near zero - raising\n"
      "the confidence level does not substantially change the performance.\n");
  return 0;
}
