// End-to-end water wall-time baseline: the full pipeline the paper's
// chapter 3 case study exercises — stochastic simplex -> eq. 3.4 cost ->
// molecular dynamics — timed as a whole, not per layer.  Two shapes:
//
//   e2e.md.*        the REAL MD engine behind the cost (tiny 8-molecule
//                   protocol; every force loop, neighbor rebuild and
//                   Welford fold on the clock), MN driving 6 moves.
//   e2e.surrogate.* the fitted surrogate behind the same cost, PC+MN
//                   driving a full Table 3.4-style reparameterization to
//                   convergence.  Cheap per sample, so this shape times
//                   the optimizer spine (simplex logic, scheduling,
//                   moment folds) rather than the physics.
//
// The counter-keyed noise makes every repetition identical work, so the
// median is a clean wall-time for bench_diff to watch: a regression here
// means some layer of the pipeline got slower end to end.
//
// Usage: e2e_water [repetitions] [--json PATH]   (default 3)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/bench_json.hpp"
#include "common/harness.hpp"
#include "core/algorithms.hpp"
#include "water/cost.hpp"
#include "water/md_objective.hpp"

using namespace sfopt;

namespace {

/// Median-time one optimization run and report seconds plus the derived
/// sampling rate (samples from the run itself: reps do identical work).
void timeShape(const char* name, int reps, bench::BenchReport& report,
               const std::function<core::OptimizationResult()>& run) {
  const core::OptimizationResult probe = run();  // warm-up + shape of the work
  const double sec = bench::medianSeconds(reps, [&] { (void)run(); });
  const double samplesPerSec = static_cast<double>(probe.totalSamples) / sec;
  report.add(std::string(name) + ".seconds", sec, "s");
  report.add(std::string(name) + ".samples_per_sec", samplesPerSec, "samples/s");
  std::printf("%-16s %10.3f s  %12.0f samples/s  (%lld iterations, %lld samples, %s)\n",
              name, sec, samplesPerSec, static_cast<long long>(probe.iterations),
              static_cast<long long>(probe.totalSamples),
              toString(probe.reason).data());
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  const std::string jsonPath = bench::extractJsonPath(args);
  const int reps = args.empty() ? 3 : std::atoi(args[0].c_str());

  bench::printHeader("End-to-end water reparameterization wall time");
  std::printf("median of %d repetitions per shape\n\n", reps);

  bench::BenchReport report;
  report.bench = "e2e_water";
  report.repetitions = reps;

  // Shape 1: the honest pipeline.  Same tiny protocol as the end-to-end
  // test, a couple more moves so the timing is dominated by MD, not setup.
  {
    water::MdWaterObjective::Options objOpts;
    objOpts.simulation.molecules = 16;
    objOpts.simulation.cutoff = 3.0;
    objOpts.simulation.rdfRMax = 3.0;
    objOpts.simulation.rdfBins = 30;
    objOpts.simulation.equilibrationSteps = 120;
    objOpts.simulation.productionSteps = 240;
    objOpts.simulation.sampleEvery = 10;
    const water::MdWaterObjective objective(objOpts);

    const std::vector<core::Point> start{
        {0.20, 3.05, 0.50},
        {0.12, 3.30, 0.55},
        {0.17, 3.15, 0.45},
        {0.14, 3.20, 0.58},
    };
    core::MaxNoiseOptions o;
    o.common.termination.tolerance = 0.0;
    o.common.termination.maxIterations = 8;
    o.common.initialSamplesPerVertex = 2;
    o.common.sampling.maxSamplesPerVertex = 4;
    timeShape("e2e.md", reps, report,
              [&] { return core::runMaxNoise(objective, start, o); });
  }

  // Shape 2: the surrogate-backed Table 3.4 run, PC+MN from the poor
  // initial simplex with the table34_water bench's budget.
  {
    water::WaterCostObjective::Options objOpts;
    objOpts.sigma0 = 0.2;
    const water::WaterCostObjective objective(objOpts);

    const auto allRows = water::table34InitialPoints();
    const std::vector<core::Point> start(allRows.begin(), allRows.begin() + 4);

    core::PCOptions pcmn;
    pcmn.maxNoiseGate = true;
    pcmn.common.termination.tolerance = 1e-3;
    pcmn.common.termination.maxIterations = 400;
    pcmn.common.termination.maxSamples = 4'000'000;
    pcmn.common.sampling.maxSamplesPerVertex = 400'000;
    timeShape("e2e.surrogate", reps, report,
              [&] { return core::runPointToPoint(objective, start, pcmn); });
  }

  std::printf(
      "\nShape check: e2e.md is physics-bound (force loops and neighbor\n"
      "rebuilds), e2e.surrogate is optimizer-bound (simplex moves and moment\n"
      "folds); a regression in only one of them points at the layer to blame.\n");

  if (!jsonPath.empty()) {
    if (!report.writeJson(jsonPath)) return 1;
    std::printf("json: %zu results -> %s\n", report.results.size(), jsonPath.c_str());
  }
  return 0;
}
