#include "stats/performance.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace {

using sfopt::stats::euclideanDistance;
using sfopt::stats::euclideanNorm;

TEST(EuclideanDistance, Basic) {
  const std::vector<double> a{0.0, 0.0};
  const std::vector<double> b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(euclideanDistance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(euclideanDistance(a, a), 0.0);
}

TEST(EuclideanDistance, DimensionMismatchThrows) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW((void)euclideanDistance(a, b), std::invalid_argument);
}

TEST(EuclideanNorm, Basic) {
  const std::vector<double> a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(euclideanNorm(a), 5.0);
  EXPECT_DOUBLE_EQ(euclideanNorm(std::vector<double>{}), 0.0);
}

TEST(EuclideanDistance, Symmetric) {
  const std::vector<double> a{1.0, -2.0, 3.0};
  const std::vector<double> b{-4.0, 5.0, 0.5};
  EXPECT_DOUBLE_EQ(euclideanDistance(a, b), euclideanDistance(b, a));
}

}  // namespace
