#pragma once

#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

#include "mw/processor_allocation.hpp"

namespace sfopt::mw {

/// One processor slot from a PBS machinefile: the host name and the slot's
/// ordinal on that host.
struct ProcessorSlot {
  std::string host;
  int slotOnHost = 0;

  friend bool operator==(const ProcessorSlot&, const ProcessorSlot&) = default;
};

/// Parse a PBS $PBS_NODEFILE: one hostname per line, with a node's slots
/// appearing as repeated lines (8 entries per node on the paper's
/// cluster).  Blank lines and '#' comments are skipped.
[[nodiscard]] std::vector<ProcessorSlot> parseMachinefile(std::istream& in);
[[nodiscard]] std::vector<ProcessorSlot> parseMachinefile(const std::filesystem::path& file);

/// The paper's in-program scheduling (section 4.2, "Job Scheduling"): PBS
/// provides the machinefile; the framework itself walks it in order,
/// giving one slot to the master, the next d+3 to the workers, and each
/// worker's client-server job the next Ns+1 slots.  "When a worker is
/// restarted by the master it is restarted on the same processors" — so
/// assignments are stable for the lifetime of the run.
class MachinefileScheduler {
 public:
  explicit MachinefileScheduler(std::vector<ProcessorSlot> slots);

  /// Per-worker slice of the plan.
  struct WorkerAssignment {
    ProcessorSlot worker;
    ProcessorSlot server;
    std::vector<ProcessorSlot> clients;
  };

  struct Plan {
    ProcessorSlot master;
    std::vector<WorkerAssignment> workers;
  };

  /// Build the full assignment for a deployment; throws when the
  /// machinefile has fewer slots than allocation.totalCores().
  [[nodiscard]] Plan plan(const ProcessorAllocation& allocation) const;

  /// Slots available in the machinefile.
  [[nodiscard]] std::size_t slotCount() const noexcept { return slots_.size(); }

  /// Restart assignment for worker i of a plan: the same slots, by the
  /// paper's rule.
  [[nodiscard]] static const WorkerAssignment& restartAssignment(const Plan& plan,
                                                                 std::size_t workerIndex);

 private:
  std::vector<ProcessorSlot> slots_;
};

}  // namespace sfopt::mw
