#include "noise/rng.hpp"

#include <cmath>
#include <numbers>

namespace sfopt::noise {

std::uint64_t CounterRng::bits(SampleKey key, std::uint64_t salt) const noexcept {
  std::uint64_t h = splitmix64(seed_);
  h = hashCombine(h, key.stream);
  h = hashCombine(h, key.index);
  h = hashCombine(h, salt);
  return h;
}

double CounterRng::uniform(SampleKey key, std::uint64_t salt) const noexcept {
  // 53 random bits into the mantissa => uniform on [0, 1).
  return static_cast<double>(bits(key, salt) >> 11) * 0x1.0p-53;
}

double CounterRng::uniform(SampleKey key, double lo, double hi, std::uint64_t salt) const noexcept {
  return lo + (hi - lo) * uniform(key, salt);
}

double CounterRng::gaussian(SampleKey key, std::uint64_t salt) const noexcept {
  // Box-Muller; u1 is kept away from 0 so log() is finite.
  const double u1 = uniform(key, salt) + 0x1.0p-54;
  const double u2 = uniform(key, salt + 1);
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

std::uint64_t RngStream::below(std::uint64_t n) noexcept {
  if (n == 0) return 0;
  // Modulo bias is negligible for n << 2^64 (all library uses are tiny n).
  return bits() % n;
}

}  // namespace sfopt::noise
