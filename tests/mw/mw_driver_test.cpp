#include "mw/mw_driver.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <thread>
#include <vector>

#include "mw/mw_task.hpp"
#include "mw/mw_worker.hpp"
#include "telemetry/sink.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace sfopt::mw;

/// Toy task: square an integer.
class SquareTask final : public MWTask {
 public:
  SquareTask() = default;
  explicit SquareTask(std::int64_t v) : value_(v) {}

  void packInput(MessageBuffer& buf) const override { buf.pack(value_); }
  void unpackInput(MessageBuffer& buf) override { value_ = buf.unpackInt64(); }
  void packResult(MessageBuffer& buf) const override { buf.pack(result_); }
  void unpackResult(MessageBuffer& buf) override { result_ = buf.unpackInt64(); }

  std::int64_t value_ = 0;
  std::int64_t result_ = 0;
};

/// Toy worker implementing the square service.
class SquareWorker final : public MWWorker {
 public:
  using MWWorker::MWWorker;

 protected:
  void executeTask(MessageBuffer& in, MessageBuffer& out) override {
    SquareTask t;
    t.unpackInput(in);
    t.result_ = t.value_ * t.value_;
    t.packResult(out);
  }
};

struct Pool {
  explicit Pool(CommWorld& comm, int workers) {
    for (int w = 0; w < workers; ++w) {
      objs.push_back(std::make_unique<SquareWorker>(comm, w + 1));
      threads.emplace_back([this, w] { objs[static_cast<std::size_t>(w)]->run(); });
    }
  }
  ~Pool() {
    for (auto& t : threads) t.join();
  }
  std::vector<std::unique_ptr<SquareWorker>> objs;
  std::vector<std::thread> threads;
};

TEST(MWDriver, RequiresAtLeastOneWorker) {
  CommWorld w(1);
  EXPECT_THROW(MWDriver d(w), std::invalid_argument);
}

TEST(MWDriver, ExecutesTypedTasks) {
  CommWorld comm(4);
  Pool pool(comm, 3);
  MWDriver driver(comm);
  std::vector<SquareTask> tasks;
  for (std::int64_t i = 0; i < 20; ++i) tasks.emplace_back(i);
  std::vector<MWTask*> ptrs;
  for (auto& t : tasks) ptrs.push_back(&t);
  driver.executeTasks(ptrs);
  for (std::int64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(tasks[static_cast<std::size_t>(i)].result_, i * i);
  }
  EXPECT_EQ(driver.tasksCompleted(), 20u);
  driver.shutdown();
}

TEST(MWDriver, EmptyBatchIsNoop) {
  CommWorld comm(2);
  Pool pool(comm, 1);
  MWDriver driver(comm);
  auto results = driver.executeBuffers({});
  EXPECT_TRUE(results.empty());
  driver.shutdown();
}

TEST(MWDriver, ResultsInTaskOrderDespiteDynamicScheduling) {
  CommWorld comm(3);
  Pool pool(comm, 2);
  MWDriver driver(comm);
  std::vector<MessageBuffer> inputs;
  for (std::int64_t i = 0; i < 50; ++i) {
    MessageBuffer b;
    b.pack(i);
    inputs.push_back(std::move(b));
  }
  auto results = driver.executeBuffers(std::move(inputs));
  ASSERT_EQ(results.size(), 50u);
  for (std::int64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)].unpackInt64(), i * i);
  }
  driver.shutdown();
}

TEST(MWDriver, MoreTasksThanWorkers) {
  CommWorld comm(2);  // single worker
  Pool pool(comm, 1);
  MWDriver driver(comm);
  std::vector<SquareTask> tasks;
  for (std::int64_t i = 0; i < 7; ++i) tasks.emplace_back(i + 100);
  std::vector<MWTask*> ptrs;
  for (auto& t : tasks) ptrs.push_back(&t);
  driver.executeTasks(ptrs);
  for (const auto& t : tasks) EXPECT_EQ(t.result_, t.value_ * t.value_);
  driver.shutdown();
}

TEST(MWDriver, MultipleBatchesReuseWorkers) {
  CommWorld comm(3);
  Pool pool(comm, 2);
  MWDriver driver(comm);
  for (int round = 0; round < 5; ++round) {
    SquareTask t(round);
    MWTask* p = &t;
    driver.executeTasks({&p, 1});
    EXPECT_EQ(t.result_, static_cast<std::int64_t>(round) * round);
  }
  EXPECT_EQ(driver.tasksCompleted(), 5u);
  driver.shutdown();
}

TEST(MWDriver, ShutdownIsIdempotentAndExecuteAfterThrows) {
  CommWorld comm(2);
  Pool pool(comm, 1);
  MWDriver driver(comm);
  driver.shutdown();
  driver.shutdown();
  EXPECT_THROW((void)driver.executeBuffers({}), std::logic_error);
}

TEST(MWDriver, RecvTimeoutThrowsWithTasksOutstanding) {
  // No worker ever answers: the dispatch succeeds but the receive loop's
  // backstop must fire instead of blocking forever.
  CommWorld comm(2);
  MWDriver driver(comm);
  driver.setRecvTimeout(0.05);
  SquareTask task(3);
  std::vector<MWTask*> ptrs = {&task};
  EXPECT_THROW(driver.executeTasks(ptrs), std::runtime_error);
}

TEST(MWDriver, WorkerLostRequeuesItsTaskOntoSurvivors) {
  CommWorld comm(3);
  // Only rank 2 has a real worker; rank 1 is "lost" via a scripted
  // transport notification already queued when the batch starts.
  SquareWorker survivor(comm, 2);
  std::thread runner([&survivor] { survivor.run(); });
  comm.send(1, 0, sfopt::net::kTagWorkerLost, {});

  MWDriver driver(comm);
  driver.setRecvTimeout(5.0);
  std::vector<SquareTask> tasks;
  for (std::int64_t i = 1; i <= 3; ++i) tasks.emplace_back(i);
  std::vector<MWTask*> ptrs;
  for (auto& t : tasks) ptrs.push_back(&t);
  driver.executeTasks(ptrs);

  for (std::int64_t i = 1; i <= 3; ++i) {
    EXPECT_EQ(tasks[static_cast<std::size_t>(i - 1)].result_, i * i);
  }
  EXPECT_EQ(driver.workersLost(), 1u);
  EXPECT_GE(driver.tasksRequeued(), 1u);
  EXPECT_EQ(driver.liveWorkerCount(), 1);
  driver.shutdown();  // skips the dead rank, stops the survivor
  runner.join();
}

TEST(MWDriver, ThrowsWhenEveryWorkerIsLost) {
  CommWorld comm(2);
  comm.send(1, 0, sfopt::net::kTagWorkerLost, {});
  MWDriver driver(comm);
  driver.setRecvTimeout(5.0);
  SquareTask task(3);
  std::vector<MWTask*> ptrs = {&task};
  EXPECT_THROW(driver.executeTasks(ptrs), std::runtime_error);
}

/// Reports kTagError on its first task (MWWorker turns the std::exception
/// into a polite error reply), then behaves.
class FailOnceWorker final : public MWWorker {
 public:
  using MWWorker::MWWorker;

 protected:
  void executeTask(MessageBuffer& in, MessageBuffer& out) override {
    if (!failed_) {
      failed_ = true;
      throw std::runtime_error("transient failure");
    }
    SquareTask t;
    t.unpackInput(in);
    t.result_ = t.value_ * t.value_;
    t.packResult(out);
  }

 private:
  bool failed_ = false;
};

TEST(MWDriver, AsyncSubmitAndDrainCompleteEverything) {
  CommWorld comm(3);
  Pool pool(comm, 2);
  MWDriver driver(comm);
  std::map<std::uint64_t, std::int64_t> want;
  for (std::int64_t i = 0; i < 12; ++i) {
    MessageBuffer b;
    b.pack(i);
    want[driver.submit(std::move(b))] = i * i;
  }
  EXPECT_EQ(driver.outstanding(), 12u);
  auto done = driver.drain();
  EXPECT_EQ(driver.outstanding(), 0u);
  ASSERT_EQ(done.size(), 12u);
  for (auto& c : done) {
    ASSERT_TRUE(want.contains(c.id));
    EXPECT_EQ(c.payload.unpackInt64(), want.at(c.id));
  }
  EXPECT_EQ(driver.tasksCompleted(), 12u);
  driver.shutdown();
}

TEST(MWDriver, AsyncPollDeliversIncrementally) {
  CommWorld comm(2);
  Pool pool(comm, 1);
  MWDriver driver(comm);
  std::map<std::uint64_t, std::int64_t> want;
  for (std::int64_t i = 0; i < 5; ++i) {
    MessageBuffer b;
    b.pack(i + 10);
    want[driver.submit(std::move(b))] = (i + 10) * (i + 10);
  }
  std::size_t collected = 0;
  while (collected < 5) {
    auto ready = driver.poll(5.0);
    for (auto& c : ready) {
      EXPECT_EQ(c.payload.unpackInt64(), want.at(c.id));
      ++collected;
    }
  }
  EXPECT_EQ(driver.outstanding(), 0u);
  driver.shutdown();
}

TEST(MWDriver, AsyncErrorReplyIsRequeued) {
  CommWorld comm(3);
  FailOnceWorker flaky(comm, 1);
  SquareWorker steady(comm, 2);
  std::thread t1([&flaky] { flaky.run(); });
  std::thread t2([&steady] { steady.run(); });

  MWDriver driver(comm);
  std::map<std::uint64_t, std::int64_t> want;
  for (std::int64_t i = 1; i <= 6; ++i) {
    MessageBuffer b;
    b.pack(i);
    want[driver.submit(std::move(b))] = i * i;
  }
  auto done = driver.drain();
  ASSERT_EQ(done.size(), 6u);
  for (auto& c : done) EXPECT_EQ(c.payload.unpackInt64(), want.at(c.id));
  EXPECT_GE(driver.tasksRequeued(), 1u);
  driver.shutdown();
  t1.join();
  t2.join();
}

TEST(MWDriver, AsyncWorkerLostRequeuesOntoSurvivors) {
  CommWorld comm(3);
  SquareWorker survivor(comm, 2);
  std::thread runner([&survivor] { survivor.run(); });
  comm.send(1, 0, sfopt::net::kTagWorkerLost, {});

  MWDriver driver(comm);
  driver.setRecvTimeout(5.0);
  std::map<std::uint64_t, std::int64_t> want;
  for (std::int64_t i = 1; i <= 4; ++i) {
    MessageBuffer b;
    b.pack(i);
    want[driver.submit(std::move(b))] = i * i;
  }
  auto done = driver.drain();
  ASSERT_EQ(done.size(), 4u);
  for (auto& c : done) EXPECT_EQ(c.payload.unpackInt64(), want.at(c.id));
  EXPECT_EQ(driver.workersLost(), 1u);
  EXPECT_EQ(driver.liveWorkerCount(), 1);
  driver.shutdown();
  runner.join();
}

TEST(MWDriver, AsyncDrainGivesRequeuedTaskAFreshWindow) {
  // A poll window that carries only an error report (no completion) is
  // recovery in progress, not silence: the requeued task must get a fresh
  // timeout window instead of killing the run with "no worker message".
  CommWorld comm(3);
  MWDriver driver(comm);
  driver.setRecvTimeout(0.6);
  MessageBuffer b;
  b.pack(std::int64_t{5});
  const std::uint64_t id = driver.submit(std::move(b));  // dispatched to rank 1

  std::thread script([&comm, id] {
    // Window 1: rank 1 reports failure — a message, but no completion.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    MessageBuffer err;
    err.pack(id);
    err.pack(std::string("transient"));
    comm.send(1, 0, kTagError, std::move(err));
    // Window 2: the requeued attempt (now on rank 2) completes.
    std::this_thread::sleep_for(std::chrono::milliseconds(700));
    MessageBuffer res;
    res.pack(id);
    res.pack(std::int64_t{25});
    comm.send(2, 0, kTagResult, std::move(res));
  });

  auto done = driver.drain();
  script.join();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].id, id);
  EXPECT_EQ(done[0].payload.unpackInt64(), 25);
  EXPECT_EQ(driver.tasksRequeued(), 1u);
  driver.shutdown();
}

TEST(MWDriver, AsyncDrainTimesOutWhenNobodyAnswers) {
  CommWorld comm(2);
  MWDriver driver(comm);
  driver.setRecvTimeout(0.05);
  MessageBuffer b;
  b.pack(std::int64_t{3});
  (void)driver.submit(std::move(b));
  EXPECT_THROW((void)driver.drain(), std::runtime_error);
}

TEST(MWDriver, WorkersCountTheirTasks) {
  CommWorld comm(3);
  Pool pool(comm, 2);
  {
    MWDriver driver(comm);
    std::vector<SquareTask> tasks;
    for (std::int64_t i = 0; i < 10; ++i) tasks.emplace_back(i);
    std::vector<MWTask*> ptrs;
    for (auto& t : tasks) ptrs.push_back(&t);
    driver.executeTasks(ptrs);
    driver.shutdown();
  }
  // Sum over workers equals the batch size (load split is dynamic).
  std::uint64_t total = 0;
  for (const auto& w : pool.objs) total += w->tasksExecuted();
  EXPECT_EQ(total, 10u);
}

TEST(MWDriver, DuplicateCompletionsForFoldedTasksAreDiscardedAndCounted) {
  // A fabric that re-delivers frames (or a proxy that duplicates them)
  // hands the driver a second kTagResult / kTagError for a task it already
  // folded.  The duplicates must be discarded and counted — the driver
  // used to throw "result for unknown task id" and kill the whole batch.
  sfopt::telemetry::NoopSink sink;
  sfopt::telemetry::Telemetry spine(sink);
  CommWorld comm(2);
  MWDriver driver(comm);
  driver.setTelemetry(&spine);

  std::thread script([&comm] {
    // Task 1 completes normally on rank 1...
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    MessageBuffer res;
    res.pack(std::uint64_t{1});
    res.pack(std::int64_t{25});
    comm.send(1, 0, kTagResult, std::move(res));
    // ...then the fabric re-delivers the same result frame, and a stale
    // error report for the same id on top of it.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    MessageBuffer dup;
    dup.pack(std::uint64_t{1});
    dup.pack(std::int64_t{25});
    comm.send(1, 0, kTagResult, std::move(dup));
    MessageBuffer err;
    err.pack(std::uint64_t{1});
    err.pack(std::string("ghost failure"));
    comm.send(1, 0, kTagError, std::move(err));
    // Task 2 (dispatched once task 1 folded) completes last, so the
    // duplicates are guaranteed to pass through the dispatch bookkeeping
    // while the batch is still running.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    MessageBuffer res2;
    res2.pack(std::uint64_t{2});
    res2.pack(std::int64_t{36});
    comm.send(1, 0, kTagResult, std::move(res2));
  });

  std::vector<MessageBuffer> inputs(2);
  inputs[0].pack(std::int64_t{5});
  inputs[1].pack(std::int64_t{6});
  auto results = driver.executeBuffers(std::move(inputs));
  script.join();

  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].unpackInt64(), 25);
  EXPECT_EQ(results[1].unpackInt64(), 36);
  EXPECT_EQ(driver.staleResultsDiscarded(), 2u);
  EXPECT_EQ(driver.tasksRequeued(), 0u) << "a stale error report must not requeue";
  EXPECT_EQ(spine.metrics().counter("mw.stale_results_discarded").value(), 2);
  driver.shutdown();
}

TEST(MWDriver, LateResultReorderedAcrossReconnectIsDiscardedOnAsyncPath) {
  // A rank dies holding a task; the task requeues to another rank; THEN
  // the dead rank's result frame arrives (late frames can be reordered
  // across a loss — a healed proxy flushes them after the requeue).  The
  // late frame must not fold, must not free anyone else's slot, and must
  // not disturb the requeued attempt's bookkeeping.
  CommWorld comm(3);
  MWDriver driver(comm);
  driver.setRecvTimeout(5.0);
  MessageBuffer b;
  b.pack(std::int64_t{7});
  const std::uint64_t id = driver.submit(std::move(b));  // dispatched to rank 1

  std::thread script([&comm, id] {
    // Rank 1 is declared lost while holding the task -> requeue to rank 2.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    comm.send(1, 0, sfopt::net::kTagWorkerLost, {});
    // The ghost's result surfaces AFTER the requeue: stale, discard.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    MessageBuffer late;
    late.pack(id);
    late.pack(std::int64_t{49});
    comm.send(1, 0, kTagResult, std::move(late));
    // The requeued attempt on rank 2 is the one that folds.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    MessageBuffer res;
    res.pack(id);
    res.pack(std::int64_t{49});
    comm.send(2, 0, kTagResult, std::move(res));
    // And one more duplicate after the fold, for good measure.
    MessageBuffer dup;
    dup.pack(id);
    dup.pack(std::int64_t{49});
    comm.send(2, 0, kTagResult, std::move(dup));
  });

  auto done = driver.drain();
  (void)driver.poll(0.3);  // give the post-fold duplicate a window to land
  script.join();

  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].id, id);
  EXPECT_EQ(done[0].payload.unpackInt64(), 49);
  EXPECT_EQ(driver.tasksRequeued(), 1u);
  EXPECT_EQ(driver.workersLost(), 1u);
  EXPECT_EQ(driver.staleResultsDiscarded(), 2u);
  driver.shutdown();
}

}  // namespace
