#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "service/job.hpp"

namespace sfopt::service {

/// The daemon's persistence layer: an append-only, versioned, crc-guarded
/// journal of job-table transitions plus per-job optimizer snapshots, all
/// under one --state-dir.  A daemon killed at any instant — including
/// mid-append, which leaves a torn record the next recovery truncates
/// away — restarts into the exact job table it had, and every job that
/// was running resumes from its last iteration-boundary checkpoint with a
/// continuation bitwise identical to the uninterrupted run (the
/// counter-keyed-noise guarantee of core/checkpoint.hpp, held end-to-end).
///
/// Layout inside the state dir:
///   journal.sfj    append-only transition log (see the record format in
///                  durable_state.cpp)
///   job-<id>.ckpt  latest SimplexCheckpoint of a running job, replaced
///                  atomically (tmp file + rename) so a reader never sees
///                  a half-written snapshot
///
/// Thread-safety: writeJobCheckpoint is called from job engine threads
/// while the daemon thread appends journal entries; one mutex covers both.
class DurableState {
 public:
  /// One job reconstructed from the journal.
  struct RecoveredJob {
    std::uint64_t id = 0;
    JobSpec spec;
    JobState state = JobState::Queued;
    std::string error;
    std::optional<JobOutcome> outcome;
    /// Present when the job was running and a readable snapshot exists.
    std::optional<core::SimplexCheckpoint> checkpoint;
    bool evicted = false;
  };

  struct Recovery {
    std::vector<RecoveredJob> jobs;  ///< ascending id order
    std::uint64_t maxJobId = 0;
    std::size_t entriesReplayed = 0;
    /// The journal ended in a torn (half-written) record — expected after
    /// a kill mid-append; the torn bytes were truncated away.
    bool truncatedTail = false;
  };

  /// Opens (creating if needed) the state dir and its journal.  Throws
  /// when the dir is unusable or holds a journal from a different format
  /// version — silently ignoring either would drop committed jobs.
  explicit DurableState(std::filesystem::path dir);

  /// Replay the journal into a job table image, truncate any torn tail,
  /// and load the last snapshot of every previously-running job (a
  /// missing or unreadable snapshot just means that job restarts fresh).
  [[nodiscard]] Recovery recover();

  // -- transition log (daemon thread) --------------------------------------
  void recordSubmitted(std::uint64_t jobId, const JobSpec& spec);
  void recordStarted(std::uint64_t jobId);
  void recordFinished(std::uint64_t jobId, JobState state, const std::string& error,
                      const std::optional<JobOutcome>& outcome);
  void recordEvicted(std::uint64_t jobId);

  // -- snapshots (job engine threads) --------------------------------------
  void writeJobCheckpoint(std::uint64_t jobId, const core::SimplexCheckpoint& cp);
  void removeJobCheckpoint(std::uint64_t jobId);

  [[nodiscard]] std::uint64_t journalBytes() const;
  [[nodiscard]] const std::filesystem::path& dir() const noexcept { return dir_; }

 private:
  void appendRecord(const std::vector<std::byte>& body);
  [[nodiscard]] std::filesystem::path checkpointPath(std::uint64_t jobId) const;

  std::filesystem::path dir_;
  std::filesystem::path journalPath_;
  mutable std::mutex mutex_;
  std::ofstream journal_;
  std::uint64_t journalBytes_ = 0;
  std::uint64_t appendCount_ = 0;  ///< drives the torn-write fault hook
  std::uint64_t tornWriteAt_ = 0;  ///< SFOPT_DURABLE_TORN_WRITE; 0 = off
};

}  // namespace sfopt::service
