# Empty dependencies file for fig38_317_pc_conditions.
# This may be replaced when dependencies are built.
