#include "simd/isa.hpp"

#include <atomic>
#include <cstdlib>
#include <stdexcept>

namespace sfopt::simd {

namespace {

/// -1 = not yet initialized; otherwise the int value of the active Isa.
std::atomic<int> g_activeIsa{-1};

[[noreturn]] void throwUnsupported(std::string_view name, bool fromEnv) {
  const std::string msg = std::string(fromEnv ? "SFOPT_ISA" : "--isa") + ": \"" +
                          std::string(name) + "\" is not available on this host (supported: " +
                          supportedIsaNames() + ")";
  if (fromEnv) throw std::runtime_error(msg);
  throw std::invalid_argument(msg);
}

[[noreturn]] void throwUnknown(std::string_view name, bool fromEnv) {
  const std::string msg = std::string(fromEnv ? "SFOPT_ISA" : "--isa") + ": unknown ISA \"" +
                          std::string(name) + "\" (supported: " + supportedIsaNames() + ")";
  if (fromEnv) throw std::runtime_error(msg);
  throw std::invalid_argument(msg);
}

Isa parseOrThrow(std::string_view name, bool fromEnv) {
  Isa isa;
  if (!parseIsaName(name, isa)) throwUnknown(name, fromEnv);
  if (!isaSupported(isa)) throwUnsupported(name, fromEnv);
  return isa;
}

}  // namespace

const char* isaName(Isa isa) noexcept {
  switch (isa) {
    case Isa::Scalar:
      return "scalar";
    case Isa::Sse4:
      return "sse4";
    case Isa::Avx2:
      return "avx2";
    case Isa::Neon:
      return "neon";
  }
  return "unknown";
}

bool parseIsaName(std::string_view name, Isa& out) noexcept {
  if (name == "scalar") {
    out = Isa::Scalar;
  } else if (name == "sse4") {
    out = Isa::Sse4;
  } else if (name == "avx2") {
    out = Isa::Avx2;
  } else if (name == "neon") {
    out = Isa::Neon;
  } else {
    return false;
  }
  return true;
}

bool isaSupported(Isa isa) noexcept {
  switch (isa) {
    case Isa::Scalar:
      return true;
#if defined(__x86_64__) || defined(__i386__)
    case Isa::Sse4:
      return __builtin_cpu_supports("sse4.1") != 0;
    case Isa::Avx2:
      return __builtin_cpu_supports("avx2") != 0;
    case Isa::Neon:
      return false;
#elif defined(__aarch64__)
    case Isa::Sse4:
    case Isa::Avx2:
      return false;
    case Isa::Neon:
      return true;
#else
    case Isa::Sse4:
    case Isa::Avx2:
    case Isa::Neon:
      return false;
#endif
  }
  return false;
}

Isa detectBestIsa() noexcept {
  if (isaSupported(Isa::Avx2)) return Isa::Avx2;
  if (isaSupported(Isa::Sse4)) return Isa::Sse4;
  if (isaSupported(Isa::Neon)) return Isa::Neon;
  return Isa::Scalar;
}

std::vector<Isa> supportedIsas() {
  std::vector<Isa> out;
  for (Isa isa : {Isa::Scalar, Isa::Sse4, Isa::Neon, Isa::Avx2}) {
    if (isaSupported(isa)) out.push_back(isa);
  }
  return out;
}

std::string supportedIsaNames() {
  std::string names;
  for (Isa isa : supportedIsas()) {
    if (!names.empty()) names += ' ';
    names += isaName(isa);
  }
  return names;
}

Isa activeIsa() {
  const int cur = g_activeIsa.load(std::memory_order_acquire);
  if (cur >= 0) return static_cast<Isa>(cur);
  Isa init = detectBestIsa();
  if (const char* env = std::getenv("SFOPT_ISA"); env != nullptr && *env != '\0') {
    init = parseOrThrow(env, /*fromEnv=*/true);
  }
  int expected = -1;
  g_activeIsa.compare_exchange_strong(expected, static_cast<int>(init),
                                      std::memory_order_acq_rel);
  return static_cast<Isa>(g_activeIsa.load(std::memory_order_acquire));
}

void setActiveIsa(Isa isa) {
  if (!isaSupported(isa)) throwUnsupported(isaName(isa), /*fromEnv=*/false);
  g_activeIsa.store(static_cast<int>(isa), std::memory_order_release);
}

void setActiveIsaByName(std::string_view name) {
  setActiveIsa(parseOrThrow(name, /*fromEnv=*/false));
}

}  // namespace sfopt::simd
