#pragma once

#include <filesystem>
#include <iosfwd>

#include "core/trace.hpp"

namespace sfopt::core {

/// Write a trace as CSV with a header row:
///   iteration,time,best_estimate,best_true,diameter,contraction_level,move,
///   total_samples,wall_seconds,resample_rounds
/// Unknown true values are written as empty fields.  The format is the
/// raw material of the paper's value-vs-time plots (gnuplot: `set datafile
/// separator ','`); the trailing wall-time and resample columns are
/// appended so pre-existing column-indexed readers keep working.
void writeTraceCsv(std::ostream& out, const OptimizationTrace& trace);

/// File convenience wrapper.
void saveTraceCsv(const std::filesystem::path& file, const OptimizationTrace& trace);

}  // namespace sfopt::core
