# Empty dependencies file for ext_pso_hybrid.
# This may be replaced when dependencies are built.
