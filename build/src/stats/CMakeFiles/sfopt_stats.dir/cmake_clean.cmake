file(REMOVE_RECURSE
  "CMakeFiles/sfopt_stats.dir/autocorrelation.cpp.o"
  "CMakeFiles/sfopt_stats.dir/autocorrelation.cpp.o.d"
  "CMakeFiles/sfopt_stats.dir/histogram.cpp.o"
  "CMakeFiles/sfopt_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/sfopt_stats.dir/performance.cpp.o"
  "CMakeFiles/sfopt_stats.dir/performance.cpp.o.d"
  "CMakeFiles/sfopt_stats.dir/summary.cpp.o"
  "CMakeFiles/sfopt_stats.dir/summary.cpp.o.d"
  "libsfopt_stats.a"
  "libsfopt_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfopt_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
