#include "md/integrator.hpp"

#include <cmath>
#include <stdexcept>

#include "telemetry/telemetry.hpp"

namespace sfopt::md {

VelocityVerlet::VelocityVerlet(WaterSystem& sys, Options options)
    : sys_(sys), options_(options) {
  if (!(options_.dtPs > 0.0)) throw std::invalid_argument("VelocityVerlet: dt must be positive");
  if (options_.targetTemperatureK < 0.0) {
    throw std::invalid_argument("VelocityVerlet: negative target temperature");
  }
  if (options_.forceThreads < 1) {
    throw std::invalid_argument("VelocityVerlet: forceThreads must be >= 1");
  }
  if (options_.forceThreads > 1 && !options_.useNeighborList) {
    throw std::invalid_argument(
        "VelocityVerlet: forceThreads > 1 requires useNeighborList (the parallel "
        "kernel partitions the neighbor pair list)");
  }
  if (options_.useNeighborList) {
    list_ = std::make_unique<NeighborList>(sys_.cutoff(), options_.neighborSkin);
  }
  if (options_.forceThreads > 1) {
    kernel_ = std::make_unique<ParallelForceKernel>(options_.forceThreads);
  }
  if (options_.telemetry != nullptr) {
    auto& reg = options_.telemetry->metrics();
    telForceEvals_ = &reg.counter("md.force_evaluations");
    telPairs_ = &reg.counter("md.pairs_evaluated");
    telForceSeconds_ = &reg.histogram(
        "md.force_eval_seconds", telemetry::Histogram::exponentialBounds(1e-6, 10.0, 7));
  }
  last_ = evaluateForces();
}

ForceResult VelocityVerlet::evaluateForces() {
  ForceResult result;
  if (list_) {
    (void)list_->update(sys_);
    result = kernel_ ? kernel_->compute(sys_, *list_) : computeForces(sys_, *list_);
  } else {
    result = computeForces(sys_);
  }
  ++forceEvaluations_;
  pairsEvaluated_ += result.pairsEvaluated;
  forceSeconds_ += result.evalSeconds;
  if (telForceEvals_ != nullptr) {
    telForceEvals_->add(1);
    telPairs_->add(result.pairsEvaluated);
    telForceSeconds_->observe(result.evalSeconds);
  }
  return result;
}

MdPerfCounters VelocityVerlet::perfCounters() const noexcept {
  MdPerfCounters c;
  c.forceEvaluations = forceEvaluations_;
  c.pairsEvaluated = pairsEvaluated_;
  c.forceSeconds = forceSeconds_;
  c.forceThreads = options_.forceThreads;
  if (list_) {
    c.neighborRebuilds = list_->rebuilds();
    c.maxDriftSeen = list_->maxDriftSeen();
    c.cellListUsed = list_->lastRebuildUsedCells();
    c.cellsPerDim = list_->cellsPerDim();
    c.avgCellOccupancy = list_->averageCellOccupancy();
  }
  return c;
}

ForceResult VelocityVerlet::step() {
  const double dt = options_.dtPs;
  const int n = sys_.sites();
  // Half kick + drift.  Forces are kcal/mol/A; acceleration needs the
  // kcal/mol -> amu A^2/ps^2 conversion.
  for (int i = 0; i < n; ++i) {
    const auto s = static_cast<std::size_t>(i);
    const double invM = kKcalPerMolInMdUnits / sys_.massOf(i);
    sys_.velocities[s] += (0.5 * dt * invM) * sys_.forces[s];
    sys_.positions[s] += dt * sys_.velocities[s];
  }
  last_ = evaluateForces();
  for (int i = 0; i < n; ++i) {
    const auto s = static_cast<std::size_t>(i);
    const double invM = kKcalPerMolInMdUnits / sys_.massOf(i);
    sys_.velocities[s] += (0.5 * dt * invM) * sys_.forces[s];
  }
  if (options_.targetTemperatureK > 0.0) {
    // Berendsen weak coupling: lambda = sqrt(1 + dt/tau (T0/T - 1)).
    const double t = sys_.temperature();
    if (t > 0.0) {
      const double lambda = std::sqrt(
          1.0 + dt / options_.berendsenTauPs * (options_.targetTemperatureK / t - 1.0));
      for (auto& v : sys_.velocities) v *= lambda;
    }
  }
  return last_;
}

ForceResult VelocityVerlet::run(int steps) {
  for (int i = 0; i < steps; ++i) (void)step();
  return last_;
}

}  // namespace sfopt::md
