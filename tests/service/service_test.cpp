#include "service/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <variant>
#include <vector>

#include "core/algorithms.hpp"
#include "core/initial_simplex.hpp"
#include "mw/parallel_runner.hpp"
#include "net/tcp_transport.hpp"
#include "service/service_client.hpp"
#include "service/service_worker.hpp"
#include "service/ticket_exchange.hpp"

namespace {

using namespace sfopt;
using namespace std::chrono_literals;

service::JobSpec makeSpec(const std::string& function, std::int64_t dim,
                          const std::string& algorithm, std::uint64_t seed,
                          std::int64_t maxIterations) {
  service::JobSpec spec;
  spec.objective.function = function;
  spec.objective.dim = dim;
  spec.objective.seed = seed;
  spec.algorithm = algorithm;
  spec.k = algorithm == "mn" ? 2.0 : 1.0;
  spec.termination.maxIterations = maxIterations;
  spec.initial = core::axisSimplexPoints(
      core::Point(static_cast<std::size_t>(dim), 1.0), 1.0);
  spec.validate();
  return spec;
}

/// The ground truth a service job must match bitwise: the same spec run
/// alone, in-process, over the MW backend.  (Against the pure serial path
/// everything but the estimate is bitwise too; the estimate differs in
/// the last bits because serial absorbs per sample instead of folding
/// chunk moments — see pipeline_equivalence_test.)
core::OptimizationResult soloRun(const service::JobSpec& spec) {
  const noise::NoisyFunction objective = spec.objective.makeObjective();
  const mw::AlgorithmOptions options = spec.makeOptions();
  mw::MWRunConfig cfg;
  cfg.workers = 2;
  cfg.clientsPerWorker = static_cast<int>(spec.objective.clients);
  return mw::runSimplexOverMW(objective, spec.initial, options, cfg).optimization;
}

void expectBitwiseEqual(const service::JobOutcome& outcome,
                        const core::OptimizationResult& solo) {
  EXPECT_EQ(outcome.best, solo.best);
  EXPECT_EQ(outcome.bestEstimate, solo.bestEstimate);
  EXPECT_EQ(outcome.iterations, solo.iterations);
  EXPECT_EQ(outcome.totalSamples, solo.totalSamples);
  EXPECT_EQ(outcome.elapsedTime, solo.elapsedTime);
  EXPECT_EQ(static_cast<int>(outcome.reason), static_cast<int>(solo.reason));
  EXPECT_EQ(outcome.counters.reflections, solo.counters.reflections);
  EXPECT_EQ(outcome.counters.contractions, solo.counters.contractions);
}

/// Escapes MWWorker::run()'s std::exception net so the worker thread
/// unwinds and its socket closes abruptly — a crash, not a polite error.
struct Die {};

class DyingServiceWorker final : public service::ServiceWorker {
 public:
  DyingServiceWorker(net::Transport& comm, mw::Rank rank, int dieAfterTasks)
      : ServiceWorker(comm, rank), remaining_(dieAfterTasks) {}

 protected:
  void executeTask(mw::MessageBuffer& in, mw::MessageBuffer& out) override {
    if (remaining_-- <= 0) throw Die{};
    ServiceWorker::executeTask(in, out);
  }

 private:
  int remaining_;
};

/// One daemon + worker fleet on an ephemeral port, torn down on scope
/// exit.  The daemon runs OptimizationService on its own thread with a
/// maxJobs budget so run() returns once the test's jobs are terminal.
struct Harness {
  net::TcpCommWorld comm{0};
  service::ServiceOptions opts;
  std::vector<std::thread> workers;
  std::thread daemon;
  std::atomic<bool> stop{false};
  std::int64_t completed = -1;

  explicit Harness(std::int64_t maxJobs, int workerCount = 2, int dieAfterTasks = -1) {
    opts.maxJobs = maxJobs;
    opts.pollSeconds = 0.02;
    opts.recvTimeoutSeconds = 20.0;
    for (int i = 0; i < workerCount; ++i) {
      const bool dies = dieAfterTasks >= 0 && i == 0;
      const std::uint16_t port = comm.port();
      workers.emplace_back([port, dies, dieAfterTasks] {
        try {
          net::TcpWorkerTransport transport("127.0.0.1", port);
          if (dies) {
            DyingServiceWorker worker(transport, transport.rank(), dieAfterTasks);
            worker.run();
          } else {
            service::ServiceWorker worker(transport, transport.rank());
            worker.run();
          }
        } catch (const Die&) {
          // Crash: socket closes with the stack frame.
        } catch (const net::ConnectionLost&) {
        }
      });
      (void)comm.waitForWorkers(comm.liveWorkers() + 1, 10.0);
    }
  }

  void start() {
    daemon = std::thread([this] {
      service::OptimizationService svc(comm, opts);
      completed = svc.run(stop);
    });
  }

  ~Harness() {
    stop.store(true);
    if (daemon.joinable()) daemon.join();
    for (auto& t : workers) t.join();
  }
};

TEST(Service, TwoConcurrentJobsMatchSoloRunsBitwise) {
  const service::JobSpec specA = makeSpec("rosenbrock", 4, "pc", 2026, 25);
  const service::JobSpec specB = makeSpec("sphere", 3, "mn", 99, 25);
  const core::OptimizationResult soloA = soloRun(specA);
  const core::OptimizationResult soloB = soloRun(specB);

  // maxJobs 3 keeps the daemon alive after both jobs finish, so the
  // post-completion status query below still gets answered.
  Harness h(3);
  h.start();
  service::ServiceClient clientA("127.0.0.1", h.comm.port());
  service::ServiceClient clientB("127.0.0.1", h.comm.port());

  const service::StatusReply ackA = clientA.submit(specA);
  const service::StatusReply ackB = clientB.submit(specB);
  ASSERT_EQ(ackA.state, service::JobState::Queued);
  ASSERT_EQ(ackB.state, service::JobState::Queued);
  ASSERT_NE(ackA.jobId, ackB.jobId);

  const service::ResultReply resultA = clientA.waitResult(60.0);
  const service::ResultReply resultB = clientB.waitResult(60.0);
  ASSERT_EQ(resultA.state, service::JobState::Done) << resultA.detail;
  ASSERT_EQ(resultB.state, service::JobState::Done) << resultB.detail;
  ASSERT_TRUE(resultA.outcome.has_value());
  ASSERT_TRUE(resultB.outcome.has_value());
  expectBitwiseEqual(*resultA.outcome, soloA);
  expectBitwiseEqual(*resultB.outcome, soloB);

  // Status stays truthful after the fact.
  const service::StatusReply after = clientA.status(resultA.jobId);
  EXPECT_EQ(after.state, service::JobState::Done);
}

TEST(Service, WorkerLossMidJobKeepsTheResultBitwise) {
  const service::JobSpec spec = makeSpec("rosenbrock", 4, "pc", 7, 20);
  const core::OptimizationResult solo = soloRun(spec);

  // Worker rank 1 dies after three tasks; the survivor absorbs the rest
  // via the driver's requeue path, invisibly to the job.
  Harness h(1, 2, 3);
  h.start();
  service::ServiceClient client("127.0.0.1", h.comm.port());
  const service::StatusReply ack = client.submit(spec);
  ASSERT_EQ(ack.state, service::JobState::Queued);
  const service::ResultReply result = client.waitResult(60.0);
  ASSERT_EQ(result.state, service::JobState::Done) << result.detail;
  ASSERT_TRUE(result.outcome.has_value());
  expectBitwiseEqual(*result.outcome, solo);
}

TEST(Service, CancellingOneJobLeavesItsNeighbourBitwise) {
  const service::JobSpec victim = makeSpec("rastrigin", 4, "pc", 11, 100000);
  const service::JobSpec survivor = makeSpec("sphere", 3, "pc", 5, 25);
  const core::OptimizationResult solo = soloRun(survivor);

  Harness h(2);
  h.start();
  service::ServiceClient clientA("127.0.0.1", h.comm.port());
  service::ServiceClient clientB("127.0.0.1", h.comm.port());

  const service::StatusReply ackVictim = clientA.submit(victim);
  const service::StatusReply ackSurvivor = clientB.submit(survivor);
  ASSERT_EQ(ackVictim.state, service::JobState::Queued);
  ASSERT_EQ(ackSurvivor.state, service::JobState::Queued);

  // Let the victim get some shards in flight, then kill it.
  std::this_thread::sleep_for(200ms);
  const service::StatusReply cancelAck = clientA.cancel(ackVictim.jobId);
  EXPECT_NE(cancelAck.state, service::JobState::Unknown);

  const service::ResultReply cancelled = clientA.waitResult(60.0);
  EXPECT_EQ(cancelled.state, service::JobState::Cancelled) << cancelled.detail;

  const service::ResultReply done = clientB.waitResult(60.0);
  ASSERT_EQ(done.state, service::JobState::Done) << done.detail;
  ASSERT_TRUE(done.outcome.has_value());
  expectBitwiseEqual(*done.outcome, solo);
}

TEST(Service, SubmittingPastTheAdmissionCapIsARetryableRejection) {
  Harness h(3);
  h.opts.maxConcurrentJobs = 1;
  h.opts.maxQueuedJobs = 1;
  h.start();
  service::ServiceClient client("127.0.0.1", h.comm.port());

  // A long-running job occupies the single concurrency slot...
  const service::StatusReply a =
      client.submit(makeSpec("rastrigin", 4, "pc", 3, 100000));
  ASSERT_EQ(a.state, service::JobState::Queued);
  for (int i = 0; i < 200; ++i) {
    if (client.status(a.jobId).state == service::JobState::Running) break;
    std::this_thread::sleep_for(20ms);
  }
  ASSERT_EQ(client.status(a.jobId).state, service::JobState::Running);

  // ...a second fills the queue...
  const service::StatusReply b =
      client.submit(makeSpec("sphere", 3, "pc", 4, 100000));
  ASSERT_EQ(b.state, service::JobState::Queued);

  // ...and a third is refused retryably, not hung or crashed.
  const service::StatusReply c = client.submit(makeSpec("sphere", 3, "pc", 6, 10));
  EXPECT_EQ(c.state, service::JobState::Rejected);
  EXPECT_TRUE(c.retryable);
  EXPECT_NE(c.detail.find("capacity"), std::string::npos);

  // Status reports the load truthfully while saturated.
  const service::StatusReply summary = client.status(0);
  EXPECT_EQ(summary.running, 1);
  EXPECT_EQ(summary.queued, 1);

  // Unblock the daemon's maxJobs budget.
  (void)client.cancel(a.jobId);
  (void)client.cancel(b.jobId);
  const service::ResultReply r1 = client.waitResult(60.0);
  const service::ResultReply r2 = client.waitResult(60.0);
  EXPECT_EQ(r1.state, service::JobState::Cancelled);
  EXPECT_EQ(r2.state, service::JobState::Cancelled);
  // The rejected submission never entered the table; with both real jobs
  // cancelled, nothing is left running.
  const service::StatusReply drained = client.status(0);
  EXPECT_EQ(drained.running, 0);
}

TEST(Service, StatusForUnknownJobSaysSo) {
  Harness h(1);
  h.start();
  service::ServiceClient client("127.0.0.1", h.comm.port());
  const service::StatusReply reply = client.status(424242);
  EXPECT_EQ(reply.state, service::JobState::Unknown);
  // Let the daemon exit: run one tiny job through.
  const service::StatusReply ack = client.submit(makeSpec("sphere", 2, "det", 1, 5));
  ASSERT_EQ(ack.state, service::JobState::Queued);
  EXPECT_EQ(client.waitResult(60.0).state, service::JobState::Done);
}

TEST(TicketExchange, RoundRobinInterleavesJobsFairly) {
  service::TicketExchange ex;
  ex.openJob(1);
  ex.openJob(2);
  for (int i = 0; i < 3; ++i) {
    (void)ex.submit(1, mw::MessageBuffer{});
    (void)ex.submit(2, mw::MessageBuffer{});
  }
  EXPECT_EQ(ex.pendingShards(), 6u);
  const auto batch = ex.drainPending(4);
  ASSERT_EQ(batch.size(), 4u);
  // One shard per job per cycle: jobs alternate instead of draining job 1
  // dry first.
  EXPECT_NE(batch[0].jobId, batch[1].jobId);
  EXPECT_NE(batch[2].jobId, batch[3].jobId);
  // Tickets carry their job's namespace.
  for (const auto& shard : batch) {
    EXPECT_EQ(shard.ticket >> service::kJobTraceShift, shard.jobId);
  }
  ex.closeJob(1);
  ex.closeJob(2);
}

TEST(TicketExchange, AbortMakesTheJobThreadThrowJobAborted) {
  service::TicketExchange ex;
  ex.openJob(1);
  ex.abort(1, "cancelled by client", true);
  try {
    (void)ex.poll(1, 0.0);
    FAIL() << "poll after abort must throw";
  } catch (const service::JobAborted& e) {
    EXPECT_TRUE(e.cancelled());
    EXPECT_STREQ(e.what(), "cancelled by client");
  }
  EXPECT_THROW((void)ex.submit(1, mw::MessageBuffer{}), service::JobAborted);
  ex.closeJob(1);
}

TEST(TicketExchange, DeliveryToAClosedJobIsDroppedSilently) {
  service::TicketExchange ex;
  ex.openJob(1);
  const std::uint64_t ticket = ex.submit(1, mw::MessageBuffer{});
  ex.closeJob(1);
  EXPECT_NO_THROW(ex.deliver(1, ticket, {}));
}

}  // namespace
