# Empty dependencies file for sfopt_testfunctions.
# This may be replaced when dependencies are built.
