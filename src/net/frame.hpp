#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace sfopt::net {

/// Wire protocol of the TCP transport, version 2.
///
/// Every frame is length-prefixed so a byte stream can be reassembled into
/// discrete messages regardless of how the kernel segments it:
///
///   u32-LE  bodyLength            (bytes that follow, >= 1)
///   u8      FrameType
///   ...     type-specific body
///
/// Bodies (all integers little-endian, doubles as IEEE-754 u64 bits):
///   Message:   i32 tag, u64 trace id, u64 parent span id,
///              then the MessageBuffer wire bytes
///   Heartbeat: f64 sender time (telemetry-clock seconds; 0 when the
///              sender has no clock).  The v1 empty body is still accepted
///              and decodes as senderTime 0.
///   Telemetry: compact worker health snapshot (see TelemetrySnapshot)
///   Hello:     u32 magic, u16 version [, u8 peer kind]  (peer -> master, once)
///   Welcome:   u32 magic, u16 version, i32 assigned rank, i32 world size
///   Job*:      opaque MessageBuffer wire bytes (client <-> daemon job
///              control plane; semantics live in src/service)
///
/// v2 widened the Message header with trace context (trace id + parent
/// span id) so a shard ticket's span tree can continue across the
/// process boundary, stamped heartbeats with the sender's clock for
/// NTP-style offset estimation, and added the Telemetry snapshot frame.
/// v1 peers are rejected at the Hello/Welcome handshake with an explicit
/// version-mismatch error; nothing after the handshake needs to sniff
/// versions.
///
/// The multi-tenant service extended v2 compatibly (still version 2):
/// Hello grew an optional trailing peer-kind byte (absent = worker, the
/// original 6-byte body every pre-service worker still sends), and four
/// client-facing frame types — JobSubmit/JobStatus/JobCancel/JobResult —
/// carry the job control plane between a ServiceClient and the daemon.
/// Masters that predate the service reject both (unknown frame type /
/// malformed hello), which is the correct failure for a client dialing an
/// old master.
///
/// The handshake is Hello/Welcome: a connecting worker announces the
/// protocol magic and version, the master validates both, assigns the next
/// rank, and replies.  Anything malformed — wrong magic, unknown frame
/// type, or a length prefix beyond the configured maximum — raises
/// ProtocolError instead of being trusted.
inline constexpr std::uint32_t kProtocolMagic = 0x53464F50u;  // "SFOP"
inline constexpr std::uint16_t kProtocolVersion = 2;

/// Upper bound on a single frame body; a malformed or hostile length
/// prefix fails fast here rather than driving a giant allocation.
inline constexpr std::size_t kDefaultMaxFrameBytes = std::size_t{64} << 20;

class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class FrameType : std::uint8_t {
  Message = 1,
  Heartbeat = 2,
  Hello = 3,
  Welcome = 4,
  Telemetry = 5,
  JobSubmit = 6,
  JobStatus = 7,
  JobCancel = 8,
  JobResult = 9,
};

/// Client-facing job control frames (body = type byte + opaque
/// MessageBuffer wire).  The transport routes them by kind; the payload
/// schema belongs to src/service.
[[nodiscard]] constexpr bool isJobFrame(FrameType t) noexcept {
  return t == FrameType::JobSubmit || t == FrameType::JobStatus ||
         t == FrameType::JobCancel || t == FrameType::JobResult;
}

/// Peer kinds announced in the Hello trailing byte.  A 6-byte Hello
/// (no kind byte) is a worker — the wire form every pre-service build
/// emits, kept valid so old workers join new masters unchanged.
inline constexpr std::uint8_t kPeerWorker = 0;
inline constexpr std::uint8_t kPeerClient = 1;

struct Frame {
  FrameType type = FrameType::Heartbeat;
  int tag = 0;                      ///< Message frames only
  std::uint64_t traceId = 0;        ///< Message frames only
  std::uint64_t parentSpan = 0;     ///< Message frames only
  double senderTime = 0.0;          ///< Heartbeat frames only
  std::vector<std::byte> payload;   ///< Message: buffer wire; Hello/Welcome: handshake fields
};

struct Hello {
  std::uint32_t magic = kProtocolMagic;
  std::uint16_t version = kProtocolVersion;
  std::uint8_t peerKind = kPeerWorker;
};

struct Welcome {
  std::uint32_t magic = kProtocolMagic;
  std::uint16_t version = kProtocolVersion;
  std::int32_t rank = 0;
  std::int32_t worldSize = 0;
};

/// Compact per-worker health snapshot piggybacked on the heartbeat
/// cadence.  The three clock fields implement one NTP-style exchange:
/// `echoMasterTime` is the most recent master heartbeat timestamp the
/// worker saw, `holdSeconds` how long the worker sat on it before
/// replying, and `workerNow` the worker's own telemetry clock at send
/// time.  The master derives round-trip time and clock offset from them.
struct TelemetrySnapshot {
  double workerNow = 0.0;
  double echoMasterTime = 0.0;  ///< 0 = no master heartbeat seen yet
  double holdSeconds = 0.0;
  std::uint64_t tasksExecuted = 0;
  std::uint64_t tasksFailed = 0;
  double executeEwmaSeconds = 0.0;
  std::uint64_t bytesIn = 0;
  std::uint64_t bytesOut = 0;
  std::uint64_t messagesIn = 0;
  std::uint64_t messagesOut = 0;
  std::uint32_t queueDepth = 0;
};

[[nodiscard]] Frame makeMessageFrame(int tag, std::vector<std::byte> payload,
                                     std::uint64_t traceId = 0,
                                     std::uint64_t parentSpan = 0);
[[nodiscard]] Frame makeHeartbeatFrame(double senderTime = 0.0);
[[nodiscard]] Frame makeHelloFrame(std::uint8_t peerKind = kPeerWorker);
[[nodiscard]] Frame makeWelcomeFrame(int rank, int worldSize);
[[nodiscard]] Frame makeTelemetryFrame(const TelemetrySnapshot& snap);
[[nodiscard]] Frame makeJobFrame(FrameType type, std::vector<std::byte> payload);

/// Serialize `frame` (length prefix included) onto `out`.
void appendFrame(std::vector<std::byte>& out, const Frame& frame);

/// Decode handshake bodies; throws ProtocolError on bad magic, version
/// mismatch, or a short body.
[[nodiscard]] Hello parseHello(const Frame& frame);
[[nodiscard]] Welcome parseWelcome(const Frame& frame);

/// Decode a Telemetry frame body; throws ProtocolError on a short body.
[[nodiscard]] TelemetrySnapshot parseTelemetrySnapshot(const Frame& frame);

/// Incremental frame reassembly over an arbitrary chunking of the byte
/// stream: feed() whatever arrived, next() yields complete frames.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t maxFrameBytes = kDefaultMaxFrameBytes)
      : maxFrameBytes_(maxFrameBytes) {}

  void feed(const std::byte* data, std::size_t n);

  /// Next complete frame, or nullopt when more bytes are needed.  Throws
  /// ProtocolError on a malformed prefix, unknown type, or oversize frame.
  [[nodiscard]] std::optional<Frame> next();

  [[nodiscard]] std::size_t buffered() const noexcept { return buf_.size() - pos_; }

  /// Malformed frames this decoder has rejected (every ProtocolError
  /// thrown from next() increments it once).  The stream is unframeable
  /// after a throw — callers drop the connection — so the counter is a
  /// per-connection violation tally, mirrored up into the transports'
  /// aggregate decodeErrors().
  [[nodiscard]] std::uint64_t decodeErrors() const noexcept { return decodeErrors_; }

 private:
  [[noreturn]] void fail(std::string message);

  std::vector<std::byte> buf_;
  std::size_t pos_ = 0;  ///< consumed prefix of buf_, compacted lazily
  std::size_t maxFrameBytes_;
  std::uint64_t decodeErrors_ = 0;
};

}  // namespace sfopt::net
