#include "md/observables.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace sfopt::md {

RdfAccumulator::RdfAccumulator(double rMax, int bins)
    : rMax_(rMax), dr_(rMax / bins), bins_(bins) {
  if (bins < 1) throw std::invalid_argument("RdfAccumulator: bins must be >= 1");
  if (!(rMax > 0.0)) throw std::invalid_argument("RdfAccumulator: rMax must be positive");
  histOO_.assign(static_cast<std::size_t>(bins), 0);
  histOH_.assign(static_cast<std::size_t>(bins), 0);
  histHH_.assign(static_cast<std::size_t>(bins), 0);
}

void RdfAccumulator::addFrame(const WaterSystem& sys) {
  const int n = sys.sites();
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (sys.moleculeOf(i) == sys.moleculeOf(j)) continue;
      const Vec3 d = sys.box().minimumImage(sys.positions[static_cast<std::size_t>(i)],
                                            sys.positions[static_cast<std::size_t>(j)]);
      const double r = norm(d);
      if (r >= rMax_) continue;
      const auto bin = static_cast<std::size_t>(r / dr_);
      const bool iO = sys.speciesOf(i) == Species::Oxygen;
      const bool jO = sys.speciesOf(j) == Species::Oxygen;
      if (iO && jO) {
        ++histOO_[bin];
      } else if (iO != jO) {
        ++histOH_[bin];
      } else {
        ++histHH_[bin];
      }
    }
  }
  ++frames_;
}

RdfCurve RdfAccumulator::curve(PairKind kind, const WaterSystem& sys) const {
  if (frames_ == 0) throw std::logic_error("RdfAccumulator::curve: no frames recorded");
  const auto& hist = kind == PairKind::OO ? histOO_ : (kind == PairKind::OH ? histOH_ : histHH_);
  const double nMol = sys.molecules();
  // Number of distinct intermolecular pairs for the kind:
  //   OO: N(N-1)/2, OH: 2 N (N-1)  (each O pairs with 2 H on other mols,
  //   counted once per unordered site pair => 2 N (N-1)), HH: 2 N (N-1).
  double pairCount = 0.0;
  switch (kind) {
    case PairKind::OO: pairCount = nMol * (nMol - 1.0) / 2.0; break;
    case PairKind::OH: pairCount = 2.0 * nMol * (nMol - 1.0); break;
    case PairKind::HH: pairCount = 2.0 * nMol * (nMol - 1.0); break;
  }
  const double volume = sys.box().volume();
  RdfCurve out;
  out.r.resize(static_cast<std::size_t>(bins_));
  out.g.resize(static_cast<std::size_t>(bins_));
  for (int b = 0; b < bins_; ++b) {
    const double rLo = b * dr_;
    const double rHi = rLo + dr_;
    const double shell = 4.0 / 3.0 * std::numbers::pi * (rHi * rHi * rHi - rLo * rLo * rLo);
    // Ideal-gas expectation for this shell over all frames.
    const double ideal = pairCount * shell / volume * frames_;
    out.r[static_cast<std::size_t>(b)] = rLo + dr_ / 2.0;
    out.g[static_cast<std::size_t>(b)] =
        ideal > 0.0 ? static_cast<double>(hist[static_cast<std::size_t>(b)]) / ideal : 0.0;
  }
  return out;
}

MsdAccumulator::MsdAccumulator(const WaterSystem& sys) {
  start_.reserve(static_cast<std::size_t>(sys.molecules()));
  for (int m = 0; m < sys.molecules(); ++m) {
    start_.push_back(sys.positions[static_cast<std::size_t>(m * kSitesPerMolecule)]);
  }
}

void MsdAccumulator::addFrame(const WaterSystem& sys, double tPs) {
  double acc = 0.0;
  for (int m = 0; m < sys.molecules(); ++m) {
    const Vec3 d =
        sys.positions[static_cast<std::size_t>(m * kSitesPerMolecule)] -
        start_[static_cast<std::size_t>(m)];
    acc += normSquared(d);  // unwrapped positions: plain displacement
  }
  times_.push_back(tPs);
  msd_.push_back(acc / sys.molecules());
}

double MsdAccumulator::diffusionCm2PerS() const {
  if (times_.size() < 2) {
    throw std::logic_error("MsdAccumulator::diffusionCm2PerS: need at least 2 frames");
  }
  // Least-squares slope through the recorded (t, MSD) points.
  double st = 0.0;
  double sm = 0.0;
  double stt = 0.0;
  double stm = 0.0;
  const double n = static_cast<double>(times_.size());
  for (std::size_t i = 0; i < times_.size(); ++i) {
    st += times_[i];
    sm += msd_[i];
    stt += times_[i] * times_[i];
    stm += times_[i] * msd_[i];
  }
  const double denom = n * stt - st * st;
  if (denom <= 0.0) return 0.0;
  const double slope = (n * stm - st * sm) / denom;  // A^2 / ps
  // D = slope / 6; A^2/ps = 1e-16 cm^2 / 1e-12 s = 1e-4 cm^2/s.
  return slope / 6.0 * 1e-4;
}

double rdfResidual(const RdfCurve& sampled, const RdfCurve& reference, double rMin, double rMax) {
  if (sampled.r.size() != sampled.g.size() || reference.r.size() != reference.g.size()) {
    throw std::invalid_argument("rdfResidual: malformed curve");
  }
  if (!(rMin < rMax)) throw std::invalid_argument("rdfResidual: requires rMin < rMax");
  // Integrate on the sampled grid, linearly interpolating the reference.
  auto refAt = [&](double r) {
    if (reference.r.empty()) return 0.0;
    if (r <= reference.r.front()) return reference.g.front();
    if (r >= reference.r.back()) return reference.g.back();
    std::size_t hi = 1;
    while (hi < reference.r.size() && reference.r[hi] < r) ++hi;
    const double r0 = reference.r[hi - 1];
    const double r1 = reference.r[hi];
    const double w = (r - r0) / (r1 - r0);
    return reference.g[hi - 1] * (1.0 - w) + reference.g[hi] * w;
  };
  double acc = 0.0;
  double span = 0.0;
  for (std::size_t i = 0; i < sampled.r.size(); ++i) {
    const double r = sampled.r[i];
    if (r < rMin || r > rMax) continue;
    const double d = sampled.g[i] - refAt(r);
    acc += d * d;
    span += 1.0;
  }
  if (span == 0.0) return 0.0;
  return std::sqrt(acc / span);
}

}  // namespace sfopt::md
