#include "md/forces.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <numbers>

#include "md/thread_pool.hpp"
#include "simd/dispatch.hpp"
#include "simd/force_kernel.hpp"

namespace sfopt::md {

MdPerfCounters& MdPerfCounters::operator+=(const MdPerfCounters& o) noexcept {
  forceEvaluations += o.forceEvaluations;
  pairsEvaluated += o.pairsEvaluated;
  forceSeconds += o.forceSeconds;
  neighborRebuilds += o.neighborRebuilds;
  maxDriftSeen = std::max(maxDriftSeen, o.maxDriftSeen);
  cellListUsed = o.cellListUsed;
  cellsPerDim = o.cellsPerDim;
  avgCellOccupancy = o.avgCellOccupancy;
  forceThreads = o.forceThreads;
  return *this;
}

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Accumulate a pairwise force f on sites i (+f) and j (-f) and its
/// virial, into an arbitrary force buffer (sys.forces for the serial
/// path, a thread-private block buffer for the parallel one).
struct PairAccumulator {
  std::vector<Vec3>& forces;
  double virial = 0.0;

  void apply(int i, int j, const Vec3& rij, const Vec3& f) {
    forces[static_cast<std::size_t>(i)] += f;
    forces[static_cast<std::size_t>(j)] -= f;
    virial += dot(rij, f);
  }
};

/// Shared per-pair nonbonded kernel and the intramolecular terms; the
/// computeForces variants differ only in how nonbonded pairs are
/// enumerated and into which buffers they accumulate.
struct NonbondedKernel {
  const WaterSystem& sys;
  PairAccumulator& acc;
  ForceResult& out;
  double rc;
  double rc2;
  double s2;
  double eps;
  double ljErc;
  double ljFrc;

  void operator()(int i, int j) const {
    const Vec3 rij = sys.box().minimumImage(sys.positions[static_cast<std::size_t>(i)],
                                            sys.positions[static_cast<std::size_t>(j)]);
    const double r2 = normSquared(rij);
    if (r2 >= rc2) return;
    const double r = std::sqrt(r2);

    // Coulomb, force-shifted: V = C q q (1/r - 1/rc + (r - rc)/rc^2).
    const double qq = kCoulomb * sys.chargeOf(i) * sys.chargeOf(j);
    if (qq != 0.0) {
      const double e = qq * (1.0 / r - 1.0 / rc + (r - rc) / rc2);
      const double fMag = qq * (1.0 / r2 - 1.0 / rc2);  // -dV/dr
      out.coulomb += e;
      acc.apply(i, j, rij, rij * (fMag / r));
    }

    // Lennard-Jones on O-O pairs only, force-shifted.
    if (sys.speciesOf(i) == Species::Oxygen && sys.speciesOf(j) == Species::Oxygen) {
      const double inv2 = s2 / r2;
      const double inv6 = inv2 * inv2 * inv2;
      const double inv12 = inv6 * inv6;
      const double e = 4.0 * eps * (inv12 - inv6);
      const double fOverR = 24.0 * eps * (2.0 * inv12 - inv6) / r2;
      const double eShifted = e - ljErc + ljFrc * (r - rc);
      const double fMag = fOverR * r - ljFrc;  // force-shift
      out.lennardJones += eShifted;
      acc.apply(i, j, rij, rij * (fMag / r));
    }
  }
};

/// Intramolecular bonds and angle; identical in every force path (always
/// evaluated serially — it is O(molecules) and cheap).
void intramolecularForces(const WaterSystem& sys, std::vector<Vec3>& forces,
                          PairAccumulator& acc, ForceResult& out) {
  const IntramolecularConstants& c = sys.intramolecular();
  for (int m = 0; m < sys.molecules(); ++m) {
    const int o = m * kSitesPerMolecule;
    const int h1 = o + 1;
    const int h2 = o + 2;
    for (int h : {h1, h2}) {
      const Vec3 d = sys.positions[static_cast<std::size_t>(h)] -
                     sys.positions[static_cast<std::size_t>(o)];
      const double r = norm(d);
      const double dr = r - c.bondR0;
      out.intramolecular += c.bondK * dr * dr;
      const double fMag = -2.0 * c.bondK * dr;  // on the H, along +d
      acc.apply(h, o, d, d * (fMag / r));
    }
    // Angle H1-O-H2.
    const Vec3 a = sys.positions[static_cast<std::size_t>(h1)] -
                   sys.positions[static_cast<std::size_t>(o)];
    const Vec3 b = sys.positions[static_cast<std::size_t>(h2)] -
                   sys.positions[static_cast<std::size_t>(o)];
    const double ra = norm(a);
    const double rb = norm(b);
    double cosT = dot(a, b) / (ra * rb);
    cosT = std::clamp(cosT, -1.0, 1.0);
    const double theta = std::acos(cosT);
    const double dTheta = theta - c.angleTheta0;
    out.intramolecular += c.angleK * dTheta * dTheta;
    const double sinT = std::sqrt(std::max(1.0 - cosT * cosT, 1e-12));
    const double coeff = 2.0 * c.angleK * dTheta / sinT;  // dV/d(cos theta)
    const Vec3 dCosDa = (b * (1.0 / (ra * rb))) - (a * (cosT / (ra * ra)));
    const Vec3 dCosDb = (a * (1.0 / (ra * rb))) - (b * (cosT / (rb * rb)));
    const Vec3 fH1 = coeff * dCosDa;
    const Vec3 fH2 = coeff * dCosDb;
    forces[static_cast<std::size_t>(h1)] += fH1;
    forces[static_cast<std::size_t>(h2)] += fH2;
    forces[static_cast<std::size_t>(o)] -= fH1 + fH2;
    acc.virial += dot(a, fH1) + dot(b, fH2);
  }
}

/// Structure-of-arrays snapshot of the system plus the precomputed model
/// constants, built once per evaluation and shared read-only by every
/// block of the dispatched SIMD force path.  The reciprocal constants are
/// the exact quotients the scalar kernel computes per pair.
struct SimdForceContext {
  simd::ForceConstants constants;
  std::vector<double> x, y, z, q, oxy;

  explicit SimdForceContext(const WaterSystem& sys) {
    const WaterParameters& p = sys.parameters();
    const double rc = sys.cutoff();
    const double rc2 = rc * rc;
    const double s2 = p.sigma * p.sigma;
    const double inv2 = s2 / rc2;
    const double inv6 = inv2 * inv2 * inv2;
    const double inv12 = inv6 * inv6;
    constants.boxEdge = sys.box().edge();
    constants.invBoxEdge = 1.0 / sys.box().edge();
    constants.rc = rc;
    constants.rc2 = rc2;
    constants.invRc = 1.0 / rc;
    constants.invRc2 = 1.0 / rc2;
    constants.s2 = s2;
    constants.eps4 = 4.0 * p.epsilon;
    constants.eps24 = 24.0 * p.epsilon;
    constants.ljErc = 4.0 * p.epsilon * (inv12 - inv6);
    constants.ljFrc = 24.0 * p.epsilon * (2.0 * inv12 - inv6) / rc2 * rc;
    constants.coulombScale = kCoulomb;
    const auto n = static_cast<std::size_t>(sys.sites());
    x.resize(n);
    y.resize(n);
    z.resize(n);
    q.resize(n);
    oxy.resize(n);
    for (std::size_t s = 0; s < n; ++s) {
      x[s] = sys.positions[s].x;
      y[s] = sys.positions[s].y;
      z[s] = sys.positions[s].z;
      const int site = static_cast<int>(s);
      q[s] = sys.chargeOf(site);
      oxy[s] = sys.speciesOf(site) == Species::Oxygen ? 1.0 : 0.0;
    }
  }
};

/// Streams pairs through the dispatched per-pair kernel in fixed-size
/// blocks and drains each block scalar, in pair-stream order.  The kernel
/// lanes are pure (a pair's values depend only on its own inputs) and the
/// tail group is padded so every pair runs through identical full-width
/// SIMD instructions — so the drained result depends only on the pair
/// stream, never on where block or lane boundaries fell.  Any two
/// enumerations of the same contributing pairs in the same order (the
/// all-pairs triangle vs the neighbor list) therefore stay bitwise equal,
/// exactly like the scalar path.
class SimdPairStream {
 public:
  SimdPairStream(const SimdForceContext& ctx, PairAccumulator& acc, ForceResult& out)
      : ctx_(ctx), acc_(acc), out_(out) {}

  void add(int i, int j) {
    idxI_[static_cast<std::size_t>(count_)] = i;
    idxJ_[static_cast<std::size_t>(count_)] = j;
    if (++count_ == simd::kForceBlockPairs) flush();
  }

  void finish() {
    if (count_ > 0) flush();
  }

 private:
  void flush() {
    // Pad the tail group with the last real pair; padded lanes are
    // computed and discarded.
    std::int64_t padded = count_;
    while (padded % simd::kForceLaneGroup != 0) {
      idxI_[static_cast<std::size_t>(padded)] = idxI_[static_cast<std::size_t>(count_ - 1)];
      idxJ_[static_cast<std::size_t>(padded)] = idxJ_[static_cast<std::size_t>(count_ - 1)];
      ++padded;
    }
    const simd::ForcePairBlockIn in{ctx_.x.data(), ctx_.y.data(),   ctx_.z.data(),
                                    ctx_.q.data(), ctx_.oxy.data(), idxI_.data(),
                                    idxJ_.data(),  count_};
    const simd::ForcePairBlockOut block{dx_.data(),       dy_.data(),  dz_.data(),
                                        coulombE_.data(), coulombS_.data(),
                                        ljE_.data(),      ljS_.data(),
                                        within_.data(),   coulombOn_.data(),
                                        ljOn_.data()};
    simd::forcePairBlock(ctx_.constants, in, block);
    // Scalar drain in pair-stream order: mirrors the scalar kernel's
    // accumulation semantics (Coulomb term, then LJ, per pair).
    for (std::int64_t k = 0; k < count_; ++k) {
      const auto uk = static_cast<std::size_t>(k);
      if (within_[uk] == 0) continue;
      const Vec3 rij{dx_[uk], dy_[uk], dz_[uk]};
      if (coulombOn_[uk] != 0) {
        out_.coulomb += coulombE_[uk];
        acc_.apply(idxI_[uk], idxJ_[uk], rij, rij * coulombS_[uk]);
      }
      if (ljOn_[uk] != 0) {
        out_.lennardJones += ljE_[uk];
        acc_.apply(idxI_[uk], idxJ_[uk], rij, rij * ljS_[uk]);
      }
    }
    count_ = 0;
  }

  static constexpr std::size_t kCap = static_cast<std::size_t>(simd::kForceBlockPairs);

  const SimdForceContext& ctx_;
  PairAccumulator& acc_;
  ForceResult& out_;
  std::int64_t count_ = 0;
  std::array<std::int32_t, kCap> idxI_{};
  std::array<std::int32_t, kCap> idxJ_{};
  std::array<double, kCap> dx_{}, dy_{}, dz_{};
  std::array<double, kCap> coulombE_{}, coulombS_{}, ljE_{}, ljS_{};
  std::array<std::uint8_t, kCap> within_{}, coulombOn_{}, ljOn_{};
};

NonbondedKernel makeKernel(const WaterSystem& sys, PairAccumulator& acc, ForceResult& out) {
  const WaterParameters& p = sys.parameters();
  const double rc = sys.cutoff();
  const double rc2 = rc * rc;
  const double s2 = p.sigma * p.sigma;
  // Shifted-force terms at the cutoff.
  const double inv2 = s2 / rc2;
  const double inv6 = inv2 * inv2 * inv2;
  const double inv12 = inv6 * inv6;
  const double ljErc = 4.0 * p.epsilon * (inv12 - inv6);
  const double ljFrcOverRc = 24.0 * p.epsilon * (2.0 * inv12 - inv6) / rc2;
  return NonbondedKernel{sys, acc, out, rc, rc2, s2, p.epsilon, ljErc, ljFrcOverRc * rc};
}

}  // namespace

ForceResult computeForces(WaterSystem& sys) {
  const auto start = Clock::now();
  ForceResult out;
  for (auto& f : sys.forces) f = Vec3{};
  PairAccumulator acc{sys.forces};
  const int n = sys.sites();
  if (simd::activeIsa() == simd::Isa::Scalar) {
    // The legacy loop, untouched: forcing SFOPT_ISA=scalar reproduces the
    // pre-SIMD trajectory bit for bit.
    const NonbondedKernel kernel = makeKernel(sys, acc, out);
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (sys.moleculeOf(i) == sys.moleculeOf(j)) continue;
        kernel(i, j);
      }
    }
  } else {
    const SimdForceContext ctx(sys);
    SimdPairStream stream(ctx, acc, out);
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (sys.moleculeOf(i) == sys.moleculeOf(j)) continue;
        stream.add(i, j);
      }
    }
    stream.finish();
  }
  // All intermolecular i<j pairs: the full triangle minus the 3 pairs
  // internal to each of the molecules.
  out.pairsEvaluated = static_cast<std::int64_t>(n) * (n - 1) / 2 - 3LL * sys.molecules();
  intramolecularForces(sys, sys.forces, acc, out);
  out.potential = out.lennardJones + out.coulomb + out.intramolecular;
  out.virial = acc.virial;
  out.evalSeconds = secondsSince(start);
  return out;
}

ForceResult computeForces(WaterSystem& sys, const NeighborList& list) {
  const auto start = Clock::now();
  ForceResult out;
  for (auto& f : sys.forces) f = Vec3{};
  PairAccumulator acc{sys.forces};
  if (simd::activeIsa() == simd::Isa::Scalar) {
    const NonbondedKernel kernel = makeKernel(sys, acc, out);
    for (const auto& [i, j] : list.pairs()) {
      kernel(i, j);
    }
  } else {
    const SimdForceContext ctx(sys);
    SimdPairStream stream(ctx, acc, out);
    for (const auto& [i, j] : list.pairs()) {
      stream.add(i, j);
    }
    stream.finish();
  }
  out.pairsEvaluated = static_cast<std::int64_t>(list.pairs().size());
  intramolecularForces(sys, sys.forces, acc, out);
  out.potential = out.lennardJones + out.coulomb + out.intramolecular;
  out.virial = acc.virial;
  out.evalSeconds = secondsSince(start);
  return out;
}

ParallelForceKernel::ParallelForceKernel(int threads)
    : pool_(std::make_unique<ThreadPool>(threads)) {}

ParallelForceKernel::~ParallelForceKernel() = default;

int ParallelForceKernel::threads() const noexcept { return pool_->parallelism(); }

ForceResult ParallelForceKernel::compute(WaterSystem& sys, const NeighborList& list) {
  const int blocks = pool_->parallelism();
  if (blocks == 1) return computeForces(sys, list);

  const auto start = Clock::now();
  const auto& pairs = list.pairs();
  const std::size_t nSites = sys.forces.size();
  blockForces_.resize(static_cast<std::size_t>(blocks));
  blockPartials_.assign(static_cast<std::size_t>(blocks), ForceResult{});

  const bool scalarIsa = simd::activeIsa() == simd::Isa::Scalar;
  // One read-only SoA snapshot shared by all blocks of the SIMD path.
  const std::unique_ptr<SimdForceContext> ctx =
      scalarIsa ? nullptr : std::make_unique<SimdForceContext>(sys);

  pool_->run(blocks, [&](int t) {
    const auto ut = static_cast<std::size_t>(t);
    std::vector<Vec3>& buffer = blockForces_[ut];
    buffer.assign(nSites, Vec3{});
    ForceResult& part = blockPartials_[ut];
    PairAccumulator acc{buffer};
    const std::size_t begin = pairs.size() * ut / static_cast<std::size_t>(blocks);
    const std::size_t end = pairs.size() * (ut + 1) / static_cast<std::size_t>(blocks);
    if (scalarIsa) {
      const NonbondedKernel kernel = makeKernel(sys, acc, part);
      for (std::size_t k = begin; k < end; ++k) {
        kernel(pairs[k].first, pairs[k].second);
      }
    } else {
      SimdPairStream stream(*ctx, acc, part);
      for (std::size_t k = begin; k < end; ++k) {
        stream.add(pairs[k].first, pairs[k].second);
      }
      stream.finish();
    }
    part.pairsEvaluated = static_cast<std::int64_t>(end - begin);
    part.virial = acc.virial;
  });

  // Deterministic reduction: block order 0..T-1 is fixed regardless of
  // which thread executed which block, so the result is bitwise
  // reproducible for a given thread count.
  ForceResult out;
  for (auto& f : sys.forces) f = Vec3{};
  for (int t = 0; t < blocks; ++t) {
    const auto ut = static_cast<std::size_t>(t);
    out.lennardJones += blockPartials_[ut].lennardJones;
    out.coulomb += blockPartials_[ut].coulomb;
    out.virial += blockPartials_[ut].virial;
    out.pairsEvaluated += blockPartials_[ut].pairsEvaluated;
    const std::vector<Vec3>& buffer = blockForces_[ut];
    for (std::size_t i = 0; i < nSites; ++i) sys.forces[i] += buffer[i];
  }
  PairAccumulator acc{sys.forces, out.virial};
  intramolecularForces(sys, sys.forces, acc, out);
  out.potential = out.lennardJones + out.coulomb + out.intramolecular;
  out.virial = acc.virial;
  out.evalSeconds = secondsSince(start);
  return out;
}

TailCorrections ljTailCorrections(const WaterSystem& sys) {
  const WaterParameters& p = sys.parameters();
  const double rc = sys.cutoff();
  const double rho = static_cast<double>(sys.molecules()) / sys.box().volume();
  const double sr3 = std::pow(p.sigma / rc, 3.0);
  const double sr9 = sr3 * sr3 * sr3;
  const double s3 = p.sigma * p.sigma * p.sigma;
  TailCorrections t;
  t.energyKcalPerMol = 8.0 / 3.0 * std::numbers::pi * rho *
                       static_cast<double>(sys.molecules()) * p.epsilon * s3 *
                       (sr9 / 3.0 - sr3);
  t.pressureAtm = 16.0 / 3.0 * std::numbers::pi * rho * rho * p.epsilon * s3 *
                  (2.0 / 3.0 * sr9 - sr3) * kKcalPerMolPerA3InAtm;
  return t;
}

double pressureAtm(const WaterSystem& sys, double virialKcalPerMol) {
  const double volume = sys.box().volume();
  const double kinetic = sys.kineticEnergy();
  const double pKcal = (2.0 * kinetic + virialKcalPerMol) / (3.0 * volume);
  return pKcal * kKcalPerMolPerA3InAtm;
}

}  // namespace sfopt::md
