# Empty dependencies file for sfopt_config.
# This may be replaced when dependencies are built.
