#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "core/point.hpp"
#include "core/sampling_context.hpp"
#include "core/vertex.hpp"

namespace sfopt::core {

/// Coefficients of the Nelder-Mead transformations.  The paper fixes
/// alpha (reflection) = 1, gamma (expansion) = 2, beta (contraction) = 0.5
/// and shrinks halfway toward the best vertex on collapse.
struct SimplexCoefficients {
  double reflection = 1.0;
  double expansion = 2.0;
  double contraction = 0.5;
  double shrink = 0.5;
};

/// Dimension-adaptive coefficients (Gao & Han 2012): alpha = 1,
/// gamma = 1 + 2/d, beta = 0.75 - 1/(2d), shrink = 1 - 1/d.  Identical to
/// the classical values at d = 2 and progressively gentler in higher
/// dimensions, where the classical expansion/shrink are known to thrash.
[[nodiscard]] SimplexCoefficients adaptiveSimplexCoefficients(std::size_t dimension);

/// theta_ref = (1 + alpha) * centroid - alpha * worst.
[[nodiscard]] Point reflectPoint(std::span<const double> centroid, std::span<const double> worst,
                                 double alpha = 1.0);

/// theta_exp = gamma * theta_ref - (gamma - 1) * centroid.
[[nodiscard]] Point expandPoint(std::span<const double> reflected,
                                std::span<const double> centroid, double gamma = 2.0);

/// theta_con = beta * worst + (1 - beta) * centroid.
[[nodiscard]] Point contractPoint(std::span<const double> worst, std::span<const double> centroid,
                                  double beta = 0.5);

/// The d+1 sampled vertices of a d-dimensional downhill simplex, plus the
/// bookkeeping the stochastic variants need: the contraction level l
/// (section 2.2: contraction l += 1, expansion l -= 1, reflection
/// unchanged, collapse l += d) and value-ordering queries.
///
/// The simplex owns its vertices.  Replacing the worst vertex transfers
/// ownership of the (already sampled) trial vertex in, so accumulated
/// sampling is never discarded accidentally.
class Simplex {
 public:
  explicit Simplex(std::vector<std::unique_ptr<Vertex>> vertices);

  [[nodiscard]] std::size_t dimension() const noexcept { return vertices_.size() - 1; }
  [[nodiscard]] std::size_t size() const noexcept { return vertices_.size(); }
  [[nodiscard]] Vertex& at(std::size_t i) { return *vertices_.at(i); }
  [[nodiscard]] const Vertex& at(std::size_t i) const { return *vertices_.at(i); }

  /// Indices of the vertices with highest, second-highest and lowest
  /// current mean estimate.
  struct Ordering {
    std::size_t max = 0;
    std::size_t smax = 0;
    std::size_t min = 0;
  };
  [[nodiscard]] Ordering ordering() const;

  /// Centroid of all vertices except the one at `excluded`.
  [[nodiscard]] Point centroidExcluding(std::size_t excluded) const;

  /// Swap in a new vertex at index i, returning the old one.
  std::unique_ptr<Vertex> replace(std::size_t i, std::unique_ptr<Vertex> v);

  /// The collapse (shrink) targets: for every i != minIndex, the point
  /// shrink * theta_i + (1 - shrink) * theta_min (the paper's collapse is
  /// shrink = 0.5).  Pairs of (index, new location).
  [[nodiscard]] std::vector<std::pair<std::size_t, Point>> collapseTargets(
      std::size_t minIndex, double shrink = 0.5) const;

  /// Simplex "diameter" D (eq. 2.2): max pairwise Euclidean distance.
  [[nodiscard]] double diameter() const;

  /// Termination quantity of eq. 2.9: max_i |g_i - g_min| over current means.
  [[nodiscard]] double valueSpread() const;

  /// Mean of the current vertex estimates (the g-bar of eq. 2.3).
  [[nodiscard]] double meanValue() const;

  /// Internal variance of the vertex values: mean of (g_i - g-bar)^2.
  /// This is the "internal variance of the vertices themselves" the MN
  /// wait-gate compares the noise against.
  [[nodiscard]] double internalVariance() const;

  /// Largest sigma_i(t_i) over the simplex vertices, under ctx's SigmaMode.
  [[nodiscard]] double maxSigma(const SamplingContext& ctx) const;

  /// Contraction level l (section 2.2).
  [[nodiscard]] int contractionLevel() const noexcept { return contractionLevel_; }
  void noteExpansion() noexcept { --contractionLevel_; }
  void noteContraction() noexcept { ++contractionLevel_; }
  void noteCollapse() noexcept { contractionLevel_ += static_cast<int>(dimension()); }

 private:
  std::vector<std::unique_ptr<Vertex>> vertices_;
  int contractionLevel_ = 0;
};

}  // namespace sfopt::core
