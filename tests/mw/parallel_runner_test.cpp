#include "mw/parallel_runner.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mw/processor_allocation.hpp"
#include "tests/core/test_helpers.hpp"

namespace {

using namespace sfopt;
using mw::MWRunConfig;
using mw::ProcessorAllocation;
using mw::runSimplexOverMW;

TEST(ProcessorAllocation, MatchesTable33) {
  // Table 3.3 of the paper: d = 20, 50, 100 with Ns = 1.
  const ProcessorAllocation a20{20, 1};
  EXPECT_EQ(a20.workers(), 23);
  EXPECT_EQ(a20.servers(), 23);
  EXPECT_EQ(a20.clients(), 23);
  EXPECT_EQ(a20.totalCores(), 70);
  const ProcessorAllocation a50{50, 1};
  EXPECT_EQ(a50.totalCores(), 160);
  const ProcessorAllocation a100{100, 1};
  EXPECT_EQ(a100.totalCores(), 310);
}

TEST(ProcessorAllocation, ConsistencyIdentityHoldsBroadly) {
  for (std::int64_t d = 2; d <= 64; d *= 2) {
    for (std::int64_t ns = 1; ns <= 5; ++ns) {
      const ProcessorAllocation a{d, ns};
      EXPECT_TRUE(a.consistent()) << "d=" << d << " ns=" << ns;
    }
  }
}

TEST(ParallelRunner, MatchesSequentialRun) {
  // The central integration property: farming the sampling over the MW
  // master-worker runtime must not change the optimization, because noise
  // draws are keyed by (vertexId, sampleIndex), not by which worker
  // computes them.  The trajectory (moves, samples, best point) is exactly
  // equal; the estimate itself may differ in the last bits because the
  // split-and-merge Welford reduction sums in a different order.
  auto obj = test::noisyRosenbrock(3, 10.0);
  const auto start = test::simpleStart(3, -1.0, 0.8);

  core::MaxNoiseOptions opts;
  opts.common.termination.tolerance = 1e-2;
  opts.common.termination.maxIterations = 150;
  opts.common.sampling.maxSamplesPerVertex = 50'000;

  const auto sequential = core::runMaxNoise(obj, start, opts);
  const auto parallel = runSimplexOverMW(obj, start, opts, MWRunConfig{});

  EXPECT_EQ(parallel.optimization.iterations, sequential.iterations);
  EXPECT_EQ(parallel.optimization.totalSamples, sequential.totalSamples);
  EXPECT_EQ(parallel.optimization.best, sequential.best);
  EXPECT_NEAR(parallel.optimization.bestEstimate, sequential.bestEstimate,
              1e-9 * std::abs(sequential.bestEstimate) + 1e-12);
  EXPECT_EQ(parallel.optimization.reason, sequential.reason);
}

TEST(ParallelRunner, PCMatchesSequentialToo) {
  auto obj = test::noisySphere(2, 5.0);
  const auto start = test::simpleStart(2);
  core::PCOptions opts;
  opts.common.termination.tolerance = 1e-2;
  opts.common.termination.maxIterations = 80;
  opts.common.sampling.maxSamplesPerVertex = 50'000;

  const auto sequential = core::runPointToPoint(obj, start, opts);
  const auto parallel = runSimplexOverMW(obj, start, opts, MWRunConfig{.workers = 4});
  EXPECT_EQ(parallel.optimization.best, sequential.best);
  EXPECT_EQ(parallel.optimization.iterations, sequential.iterations);
}

TEST(ParallelRunner, MultipleClientsPerWorkerStillIdentical) {
  auto obj = test::noisySphere(2, 5.0);
  const auto start = test::simpleStart(2);
  core::MaxNoiseOptions opts;
  opts.common.termination.tolerance = 1e-2;
  opts.common.termination.maxIterations = 60;
  opts.common.sampling.maxSamplesPerVertex = 20'000;

  const auto sequential = core::runMaxNoise(obj, start, opts);
  const auto parallel =
      runSimplexOverMW(obj, start, opts, MWRunConfig{.workers = 3, .clientsPerWorker = 4});
  EXPECT_EQ(parallel.optimization.best, sequential.best);
  EXPECT_EQ(parallel.optimization.totalSamples, sequential.totalSamples);
}

TEST(ParallelRunner, DefaultWorkerCountIsDPlusThree) {
  auto obj = test::noisySphere(2, 1.0);
  const auto start = test::simpleStart(2);
  core::DetOptions opts;
  opts.common.termination.maxIterations = 10;
  opts.common.termination.tolerance = 0.0;
  const auto run = runSimplexOverMW(obj, start, opts, MWRunConfig{});
  EXPECT_EQ(run.allocation.workers(), 5);  // d=2 => d+3
  EXPECT_GT(run.messagesSent, 0u);
  EXPECT_GT(run.tasksCompleted, 0u);
}

TEST(ParallelRunner, RejectsBadClientCount) {
  auto obj = test::noisySphere(2, 1.0);
  const auto start = test::simpleStart(2);
  core::DetOptions opts;
  EXPECT_THROW(
      (void)runSimplexOverMW(obj, start, opts, MWRunConfig{.workers = 2, .clientsPerWorker = 0}),
      std::invalid_argument);
}

TEST(ParallelRunner, CommunicationScalesWithWork) {
  auto obj = test::noisySphere(2, 1.0);
  const auto start = test::simpleStart(2);
  core::DetOptions small;
  small.common.termination.maxIterations = 5;
  small.common.termination.tolerance = 0.0;
  core::DetOptions large;
  large.common.termination.maxIterations = 50;
  large.common.termination.tolerance = 0.0;
  const auto a = runSimplexOverMW(obj, start, small, MWRunConfig{.workers = 2});
  const auto b = runSimplexOverMW(obj, start, large, MWRunConfig{.workers = 2});
  EXPECT_GT(b.messagesSent, a.messagesSent);
}

}  // namespace
