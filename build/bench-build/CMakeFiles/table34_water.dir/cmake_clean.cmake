file(REMOVE_RECURSE
  "../bench/table34_water"
  "../bench/table34_water.pdb"
  "CMakeFiles/table34_water.dir/table34_water.cpp.o"
  "CMakeFiles/table34_water.dir/table34_water.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table34_water.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
