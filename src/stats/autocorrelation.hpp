#pragma once

#include <cstddef>
#include <vector>

namespace sfopt::stats {

/// Normalized autocorrelation function of a time series:
///   rho(k) = Cov[x_t, x_{t+k}] / Var[x]
/// for k = 0..maxLag.  rho(0) == 1 by construction.  Throws when the
/// series is shorter than maxLag + 2 or has zero variance.
[[nodiscard]] std::vector<double> autocorrelation(const std::vector<double>& series,
                                                  std::size_t maxLag);

/// Integrated autocorrelation time
///   tau = 1 + 2 * sum_k rho(k)
/// with the standard self-consistent window cutoff (sum until the first
/// non-positive rho, or window > c * tau).  For an i.i.d. series tau ~ 1;
/// for an AR(1) process with coefficient phi, tau = (1+phi)/(1-phi).
[[nodiscard]] double integratedAutocorrelationTime(const std::vector<double>& series,
                                                   double windowFactor = 5.0);

/// Statistical inefficiency g = tau: the factor by which correlated
/// samples are fewer than they look.  The effective sample count of a
/// series is n / g, and the honest standard error of its mean is
/// sqrt(g * Var / n) — this is what the molecular-dynamics objective must
/// use for the paper's sigma(t), since successive MD frames are strongly
/// correlated.
[[nodiscard]] double statisticalInefficiency(const std::vector<double>& series);

/// Block-averaging (Flyvbjerg-Petersen) estimate of the standard error of
/// the mean of a correlated series: the series is repeatedly pair-blocked
/// and the naive standard error recomputed until it plateaus; the largest
/// estimate across block levels (with at least `minBlocks` blocks) is
/// returned.  Agrees with sqrt(g * Var / n) on well-behaved series and is
/// robust when the autocorrelation tail is hard to sum.
[[nodiscard]] double blockedStandardError(const std::vector<double>& series,
                                          std::size_t minBlocks = 16);

}  // namespace sfopt::stats
