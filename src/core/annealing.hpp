#pragma once

#include "core/algorithms.hpp"
#include "core/result.hpp"
#include "noise/stochastic_objective.hpp"

namespace sfopt::core {

/// Simulated annealing for stochastic objectives — the classic global
/// method the paper surveys in section 1.3.3.4, implemented against the
/// same StochasticObjective / virtual-time substrate so it can serve as a
/// comparison baseline for the restarted-simplex and PSO strategies.
///
/// Proposals are isotropic Gaussian steps whose scale cools with the
/// temperature; acceptance is Metropolis on the sampled means.  The best
/// point ever visited is tracked with its own accumulating estimate and
/// returned (under noise, the final walker position is not the best
/// visited point).
struct AnnealingOptions {
  double initialTemperature = 10.0;
  /// Geometric cooling factor applied after every sweep.
  double coolingRate = 0.95;
  /// Proposals per temperature level.
  int sweepSize = 20;
  /// Initial proposal step scale (per coordinate); cools with temperature
  /// as scale * sqrt(T / T0), the standard coupled schedule.
  double stepScale = 1.0;
  /// Samples per proposal evaluation.
  std::int64_t samplesPerEvaluation = 4;
  TerminationCriteria termination;
  SamplingContext::Options sampling;
  std::uint64_t seed = 0x5A;
  bool recordTrace = false;
};

/// Run simulated annealing from `start`.  iterations counts temperature
/// sweeps; counters are unused except in the trace.
[[nodiscard]] OptimizationResult runSimulatedAnnealing(
    const noise::StochasticObjective& objective, const Point& start,
    const AnnealingOptions& options = {});

}  // namespace sfopt::core
