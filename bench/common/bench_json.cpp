#include "common/bench_json.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "simd/isa.hpp"

namespace sfopt::bench {

namespace {

/// First "model name" line from /proc/cpuinfo, or "unknown" elsewhere.
std::string cpuModel() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    if (line.rfind("model name", 0) == 0) {
      auto value = line.substr(colon + 1);
      const auto first = value.find_first_not_of(" \t");
      return first == std::string::npos ? value : value.substr(first);
    }
  }
  return "unknown";
}

void appendEscaped(std::ostringstream& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned char>(c));
      out << buf;
    } else {
      out << c;
    }
  }
}

void appendNumber(std::ostringstream& out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out << buf;
}

}  // namespace

void BenchReport::add(std::string name, double value, std::string unit) {
  results.push_back({std::move(name), value, std::move(unit)});
}

bool BenchReport::writeJson(const std::string& path) const {
  std::ostringstream out;
  out << "{\n  \"bench\": \"";
  appendEscaped(out, bench);
  out << "\",\n  \"repetitions\": " << repetitions << ",\n";
  out << "  \"host\": {\n    \"cpu\": \"";
  appendEscaped(out, cpuModel());
  out << "\",\n    \"hardware_concurrency\": " << std::thread::hardware_concurrency()
      << ",\n    \"detected_isa\": \"" << simd::isaName(simd::detectBestIsa())
      << "\",\n    \"supported_isas\": \"" << simd::supportedIsaNames() << "\"\n  },\n";
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    out << "    {\"name\": \"";
    appendEscaped(out, r.name);
    out << "\", \"value\": ";
    appendNumber(out, r.value);
    out << ", \"unit\": \"";
    appendEscaped(out, r.unit);
    out << "\"}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";

  std::ofstream file(path);
  if (!file) {
    std::fprintf(stderr, "bench_json: cannot open %s for writing\n", path.c_str());
    return false;
  }
  file << out.str();
  return true;
}

double medianSeconds(int reps, const std::function<void()>& fn) {
  using Clock = std::chrono::steady_clock;
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    times.push_back(std::chrono::duration<double>(Clock::now() - t0).count());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

std::string extractJsonPath(std::vector<std::string>& args) {
  std::string path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--json" && i + 1 < args.size()) {
      path = args[i + 1];
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      break;
    }
  }
  return path;
}

}  // namespace sfopt::bench
