# Empty compiler generated dependencies file for sfopt_core.
# This may be replaced when dependencies are built.
