#include <gtest/gtest.h>

#include "core/algorithms.hpp"
#include "stats/performance.hpp"
#include "stats/summary.hpp"
#include "tests/core/test_helpers.hpp"

namespace {

using namespace sfopt;
using core::MaxNoiseOptions;
using core::runDeterministic;
using core::runMaxNoise;
using core::TerminationReason;

MaxNoiseOptions mnOptions(double k = 2.0) {
  MaxNoiseOptions o;
  o.k = k;
  o.common.termination.tolerance = 1e-3;
  o.common.termination.maxIterations = 400;
  o.common.termination.maxTime = 2e6;
  o.common.sampling.maxSamplesPerVertex = 200'000;
  return o;
}

TEST(MaxNoise, ConvergesOnNoiselessSphere) {
  auto obj = test::noisySphere(2, 0.0);
  const auto res = runMaxNoise(obj, test::simpleStart(2), mnOptions());
  EXPECT_EQ(res.reason, TerminationReason::Converged);
  ASSERT_TRUE(res.bestTrue.has_value());
  EXPECT_LT(*res.bestTrue, 1e-2);
  // Noiseless: estimated sigma is 0, the gate never has to wait.
  EXPECT_EQ(res.counters.gateWaitRounds, 0);
}

TEST(MaxNoise, GateEngagesUnderNoise) {
  auto obj = test::noisySphere(2, 10.0);
  const auto res = runMaxNoise(obj, test::simpleStart(2), mnOptions());
  EXPECT_GT(res.counters.gateWaitRounds, 0);
}

TEST(MaxNoise, ApproachesOptimumOnNoisySphere) {
  auto obj = test::noisySphere(2, 1.0);
  const auto res = runMaxNoise(obj, test::simpleStart(2), mnOptions());
  ASSERT_TRUE(res.bestTrue.has_value());
  EXPECT_LT(*res.bestTrue, 0.5);
}

TEST(MaxNoise, BeatsDeterministicOnNoisyRosenbrockMedian) {
  // The paper's central claim for MN (Fig 3.5a): on a noisy landscape the
  // gate prevents premature convergence; across starts the MN minimum is
  // at least as good as DET's in the median.
  const double sigma0 = 100.0;
  std::vector<double> ratios;
  for (std::uint64_t s = 0; s < 9; ++s) {
    auto obj = test::noisyRosenbrock(3, sigma0, 9000 + s);
    const auto start = test::randomStart(3, -6.0, 3.0, 31, s);

    core::DetOptions det;
    det.common.termination.tolerance = 1e-3;
    det.common.termination.maxIterations = 400;
    const auto rd = runDeterministic(obj, start, det);

    const auto rm = runMaxNoise(obj, start, mnOptions());
    ASSERT_TRUE(rd.bestTrue.has_value());
    ASSERT_TRUE(rm.bestTrue.has_value());
    ratios.push_back(stats::logRatio(*rm.bestTrue, *rd.bestTrue));
  }
  stats::Summary s(ratios);
  EXPECT_LE(s.median(), 0.5);   // MN not worse in the median
  EXPECT_LT(s.percentile(25.0), 0.0);  // and clearly better in a solid fraction
}

TEST(MaxNoise, LargerKConvergesFaster) {
  // k only controls how long the gate waits: larger k = looser gate =
  // fewer wait rounds per decision (paper section 3.2).
  auto obj1 = test::noisySphere(2, 5.0, 42);
  auto obj2 = test::noisySphere(2, 5.0, 42);
  const auto start = test::simpleStart(2);
  const auto strict = runMaxNoise(obj1, start, mnOptions(1.0));
  const auto loose = runMaxNoise(obj2, start, mnOptions(16.0));
  EXPECT_LE(loose.totalSamples, strict.totalSamples);
}

TEST(MaxNoise, TimeLimitRespectedWithinOneBlock) {
  auto obj = test::noisySphere(2, 50.0);
  MaxNoiseOptions o = mnOptions();
  o.common.termination.tolerance = 0.0;
  o.common.termination.maxTime = 1000.0;
  o.common.termination.maxIterations = 1'000'000;
  const auto res = runMaxNoise(obj, test::simpleStart(2), o);
  EXPECT_EQ(res.reason, TerminationReason::TimeLimit);
  // The gate checks the budget every round; overshoot is bounded by one
  // refinement block plus one trial creation.
  EXPECT_LT(res.elapsedTime, 1000.0 + 3.0 * static_cast<double>(o.resample.maxBlock));
}

TEST(MaxNoise, SampleCapForcesProgress) {
  // With a tiny per-vertex cap, the gate cannot always be satisfied; the
  // run must still make moves and terminate rather than spin.
  auto obj = test::noisySphere(2, 100.0);
  MaxNoiseOptions o = mnOptions();
  o.common.sampling.maxSamplesPerVertex = 8;
  o.common.termination.maxIterations = 50;
  o.common.termination.tolerance = 0.0;
  const auto res = runMaxNoise(obj, test::simpleStart(2), o);
  EXPECT_EQ(res.iterations, 50);
  EXPECT_GT(res.counters.forcedResolutions, 0);
}

TEST(MaxNoise, CountersConsistent) {
  auto obj = test::noisySphere(2, 1.0);
  const auto res = runMaxNoise(obj, test::simpleStart(2), mnOptions());
  const auto& c = res.counters;
  EXPECT_EQ(c.reflections + c.expansions + c.contractions + c.collapses, res.iterations);
  EXPECT_EQ(c.resampleRounds, 0);  // MN never does pairwise resampling
}

TEST(MaxNoise, TraceDiameterShrinksOverall) {
  auto obj = test::noisySphere(2, 0.0);
  MaxNoiseOptions o = mnOptions();
  o.common.recordTrace = true;
  const auto res = runMaxNoise(obj, test::simpleStart(2), o);
  ASSERT_GE(res.trace.size(), 2u);
  EXPECT_LT(res.trace.steps().back().diameter, res.trace.steps().front().diameter);
}

}  // namespace
