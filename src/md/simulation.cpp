#include "md/simulation.hpp"
#include <algorithm>

#include <stdexcept>

#include "md/forces.hpp"
#include "md/integrator.hpp"
#include "stats/autocorrelation.hpp"
#include "stats/welford.hpp"
#include "telemetry/telemetry.hpp"

namespace sfopt::md {

namespace {

/// Fold the aggregated force-path counters into the registry as md.*
/// gauges/counters.  The counters are cumulative across calls (gauges are
/// last-write-wins), matching the registry's process-wide semantics.
void exportPerfCounters(telemetry::Telemetry* telemetry, const MdPerfCounters& perf) {
  if (telemetry == nullptr) return;
  auto& reg = telemetry->metrics();
  reg.counter("md.neighbor_rebuilds").add(perf.neighborRebuilds);
  reg.gauge("md.force_threads").set(static_cast<double>(perf.forceThreads));
  reg.gauge("md.max_drift_seen").set(perf.maxDriftSeen);
  reg.gauge("md.cells_per_dim").set(static_cast<double>(perf.cellsPerDim));
  reg.gauge("md.avg_cell_occupancy").set(perf.avgCellOccupancy);
  reg.gauge("md.pairs_per_evaluation").set(perf.pairsPerEvaluation());
}

}  // namespace

WaterObservables simulateWater(const WaterParameters& params, const SimulationConfig& config) {
  if (config.equilibrationSteps < 0 || config.productionSteps < 1) {
    throw std::invalid_argument("simulateWater: bad step counts");
  }
  if (config.sampleEvery < 1) throw std::invalid_argument("simulateWater: sampleEvery >= 1");

  WaterSystem sys = buildWaterLattice(config.molecules, config.densityGramsPerCc,
                                      config.temperatureK, params, config.cutoff, config.seed);

  // Neighbor-list feasibility: lists need cutoff + skin under half the box
  // edge; fall back to the all-pairs path when the skin cannot fit.
  double skin = config.neighborSkin;
  bool useList = config.useNeighborList;
  if (useList) {
    const double room = sys.box().edge() / 2.0 - config.cutoff;
    if (skin <= 0.0) skin = std::min(1.0, room * 0.9);
    if (skin <= 0.05) useList = false;
  }
  if (config.forceThreads < 1) {
    throw std::invalid_argument("simulateWater: forceThreads must be >= 1");
  }
  const auto integratorOptions = [&](double targetT) {
    VelocityVerlet::Options o;
    o.dtPs = config.dtPs;
    o.targetTemperatureK = targetT;
    o.berendsenTauPs = config.berendsenTauPs;
    o.useNeighborList = useList;
    o.neighborSkin = skin;
    // The parallel kernel walks the neighbor pair list; without a list
    // (tiny boxes) the force path stays serial.
    o.forceThreads = useList ? config.forceThreads : 1;
    o.telemetry = config.telemetry;
    return o;
  };

  // Phase 1: NVT equilibration with Berendsen coupling.  The lattice start
  // carries excess potential energy that converts to heat as the structure
  // relaxes, so the early phase also hard-rescales periodically — standard
  // practice for cold starts.
  MdPerfCounters perf;
  {
    const double phaseStart =
        config.telemetry != nullptr ? config.telemetry->tracer().now() : 0.0;
    VelocityVerlet integrator(sys, integratorOptions(config.temperatureK));
    constexpr int kRescalePeriod = 25;
    int remaining = config.equilibrationSteps;
    while (remaining > 0) {
      const int chunk = std::min(remaining, kRescalePeriod);
      (void)integrator.run(chunk);
      sys.rescaleTo(config.temperatureK);
      remaining -= chunk;
    }
    perf += integrator.perfCounters();
    if (config.telemetry != nullptr) {
      config.telemetry->tracer().emitComplete(
          "md.equilibration", phaseStart, 0, {},
          {{"steps", static_cast<double>(config.equilibrationSteps)},
           {"molecules", static_cast<double>(config.molecules)}});
    }
  }
  sys.zeroMomentum();
  sys.rescaleTo(config.temperatureK);

  // Phase 2: NVE production with property sampling.
  WaterObservables out;
  {
    const double phaseStart =
        config.telemetry != nullptr ? config.telemetry->tracer().now() : 0.0;
    VelocityVerlet integrator(sys, integratorOptions(0.0));

    RdfAccumulator rdf(config.rdfRMax, config.rdfBins);
    MsdAccumulator msd(sys);
    stats::Welford potential;
    stats::Welford pressure;
    stats::Welford temperature;
    std::vector<double> potentialSeries;
    potentialSeries.reserve(static_cast<std::size_t>(config.productionSteps /
                                                     config.sampleEvery + 1));

    const double e0 = integrator.lastForces().potential + sys.kineticEnergy();
    double eLast = e0;
    for (int step = 1; step <= config.productionSteps; ++step) {
      const ForceResult f = integrator.step();
      if (step % config.sampleEvery == 0) {
        potential.add(f.potential / sys.molecules());
        potentialSeries.push_back(f.potential / sys.molecules());
        pressure.add(pressureAtm(sys, f.virial));
        temperature.add(sys.temperature());
        rdf.addFrame(sys);
        msd.addFrame(sys, step * config.dtPs);
        eLast = f.potential + sys.kineticEnergy();
      }
    }
    out.potentialPerMoleculeKcal = potential.mean();
    out.pressureAtm = pressure.mean();
    if (config.applyTailCorrections) {
      const TailCorrections tail = ljTailCorrections(sys);
      out.potentialPerMoleculeKcal += tail.energyKcalPerMol / sys.molecules();
      out.pressureAtm += tail.pressureAtm;
    }
    out.temperatureK = temperature.mean();
    out.diffusionCm2PerS = msd.diffusionCm2PerS();
    out.gOO = rdf.curve(PairKind::OO, sys);
    out.gOH = rdf.curve(PairKind::OH, sys);
    out.gHH = rdf.curve(PairKind::HH, sys);
    out.productionFrames = rdf.frames();
    if (potentialSeries.size() >= 16) {
      out.potentialInefficiency = stats::statisticalInefficiency(potentialSeries);
      out.potentialStandardError = stats::blockedStandardError(potentialSeries);
    }
    const double elapsedPs = config.productionSteps * config.dtPs;
    out.nveDriftKcalPerPs = elapsedPs > 0.0 ? (eLast - e0) / elapsedPs : 0.0;
    perf += integrator.perfCounters();
    if (config.telemetry != nullptr) {
      config.telemetry->tracer().emitComplete(
          "md.production", phaseStart, 0, {},
          {{"steps", static_cast<double>(config.productionSteps)},
           {"frames", static_cast<double>(out.productionFrames)},
           {"nve_drift_kcal_per_ps", out.nveDriftKcalPerPs}});
    }
  }
  out.perf = perf;
  exportPerfCounters(config.telemetry, perf);
  return out;
}

}  // namespace sfopt::md
