#include "stats/autocorrelation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/welford.hpp"

namespace sfopt::stats {

std::vector<double> autocorrelation(const std::vector<double>& series, std::size_t maxLag) {
  if (series.size() < maxLag + 2) {
    throw std::invalid_argument("autocorrelation: series shorter than maxLag + 2");
  }
  const std::size_t n = series.size();
  Welford w;
  for (double x : series) w.add(x);
  const double mean = w.mean();
  // Biased (1/n) covariance normalization, the standard choice: it keeps
  // the estimated spectrum positive semi-definite.
  double c0 = 0.0;
  for (double x : series) c0 += (x - mean) * (x - mean);
  c0 /= static_cast<double>(n);
  if (c0 <= 0.0) {
    throw std::invalid_argument("autocorrelation: series has zero variance");
  }
  std::vector<double> rho(maxLag + 1, 0.0);
  for (std::size_t k = 0; k <= maxLag; ++k) {
    double ck = 0.0;
    for (std::size_t t = 0; t + k < n; ++t) {
      ck += (series[t] - mean) * (series[t + k] - mean);
    }
    ck /= static_cast<double>(n);
    rho[k] = ck / c0;
  }
  return rho;
}

double integratedAutocorrelationTime(const std::vector<double>& series, double windowFactor) {
  if (series.size() < 8) {
    throw std::invalid_argument("integratedAutocorrelationTime: series too short");
  }
  const std::size_t maxLag = std::min<std::size_t>(series.size() / 4, 2000);
  const auto rho = autocorrelation(series, maxLag);
  double tau = 1.0;
  for (std::size_t k = 1; k <= maxLag; ++k) {
    if (rho[k] <= 0.0) break;  // noise floor reached
    tau += 2.0 * rho[k];
    // Self-consistent window: stop summing once the window is several
    // times tau (Sokal's criterion) — beyond it only noise accumulates.
    if (static_cast<double>(k) >= windowFactor * tau) break;
  }
  return std::max(tau, 1.0);
}

double statisticalInefficiency(const std::vector<double>& series) {
  return integratedAutocorrelationTime(series);
}

double blockedStandardError(const std::vector<double>& series, std::size_t minBlocks) {
  if (series.size() < std::max<std::size_t>(minBlocks, 4)) {
    throw std::invalid_argument("blockedStandardError: series too short");
  }
  std::vector<double> blocks = series;
  double best = 0.0;
  while (blocks.size() >= std::max<std::size_t>(minBlocks, 4)) {
    Welford w;
    for (double b : blocks) w.add(b);
    best = std::max(best, w.standardError());
    // Pair-block for the next level.
    std::vector<double> next;
    next.reserve(blocks.size() / 2);
    for (std::size_t i = 0; i + 1 < blocks.size(); i += 2) {
      next.push_back(0.5 * (blocks[i] + blocks[i + 1]));
    }
    blocks = std::move(next);
  }
  return best;
}

}  // namespace sfopt::stats
