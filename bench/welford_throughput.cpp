// Throughput of the canonical 64-sample Welford chunk kernel, per SIMD
// ISA available on this host.  This is the batch-accumulation inner loop
// behind core::accumulateEvalChunk (VertexServer clients, MW sampling
// workers and foldEvalChunks all funnel through it), so samples/second
// here bounds how fast the whole evaluation pipeline can digest noise.
//
// Every ISA is a pinned lane-reduction order, so the per-ISA moments are
// bitwise reproducible; the bench asserts scalar-vs-vector agreement to
// 1e-12 on the side while timing.
//
// Usage: welford_throughput [repetitions] [--json PATH]   (default 15)

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "common/bench_json.hpp"
#include "core/sampling_backend.hpp"
#include "simd/dispatch.hpp"
#include "simd/isa.hpp"
#include "stats/welford.hpp"

using namespace sfopt;

namespace {

constexpr std::size_t kSamples = 1 << 22;  // 4M doubles, ~32 MiB

struct IsaTiming {
  simd::Isa isa;
  double seconds;
  double samplesPerSec;
  double mean;  // fold of the chunk stream, to keep the loop live
};

IsaTiming timeIsa(simd::Isa isa, const std::vector<double>& data, int reps) {
  simd::setActiveIsa(isa);
  stats::Welford folded;
  const double sec = bench::medianSeconds(reps, [&] {
    stats::Welford total;
    for (std::size_t first = 0; first < data.size(); first += core::kEvalChunkSamples) {
      const std::size_t take =
          std::min<std::size_t>(core::kEvalChunkSamples, data.size() - first);
      total.merge(core::accumulateEvalChunk({data.data() + first, take}));
    }
    folded = total;
  });
  return {isa, sec, static_cast<double>(data.size()) / sec, folded.mean()};
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  const std::string jsonPath = bench::extractJsonPath(args);
  const int reps = !args.empty() ? std::atoi(args[0].c_str()) : 15;

  std::vector<double> data(kSamples);
  std::mt19937_64 rng(20260807);
  std::normal_distribution<double> dist(1.0, 3.0);
  for (auto& x : data) x = dist(rng);

  std::printf("welford_throughput: %zu samples in %lld-sample chunks, median of %d reps\n\n",
              data.size(), static_cast<long long>(core::kEvalChunkSamples), reps);
  std::printf("%-8s %-12s %-14s %-10s\n", "isa", "seconds", "Msamples/s", "speedup");

  bench::BenchReport report;
  report.bench = "welford_throughput";
  report.repetitions = reps;

  double scalarSec = 0.0;
  double scalarMean = 0.0;
  for (const simd::Isa isa : simd::supportedIsas()) {
    const IsaTiming t = timeIsa(isa, data, reps);
    if (isa == simd::Isa::Scalar) {
      scalarSec = t.seconds;
      scalarMean = t.mean;
    } else if (std::fabs(t.mean - scalarMean) >
               1e-12 * std::max(1.0, std::fabs(scalarMean))) {
      std::fprintf(stderr, "ERROR: %s mean %.17g disagrees with scalar %.17g\n",
                   simd::isaName(isa), t.mean, scalarMean);
      return 1;
    }
    const double speedup = scalarSec / t.seconds;
    std::printf("%-8s %-12.4f %-14.1f x%-10.2f\n", simd::isaName(isa), t.seconds,
                t.samplesPerSec / 1e6, speedup);
    const std::string prefix = std::string("welford.") + simd::isaName(isa);
    report.add(prefix + ".seconds", t.seconds, "s");
    report.add(prefix + ".samples_per_sec", t.samplesPerSec, "samples/s");
    report.add(prefix + ".speedup_vs_scalar", speedup, "x");
  }
  simd::setActiveIsa(simd::detectBestIsa());

  std::printf(
      "\nShape check: each vector ISA processes a chunk in fixed lane strides\n"
      "(4-wide on avx2, 2-wide on sse4/neon) with a deterministic tail, so the\n"
      "speedup is bounded by the lane count and the division-latency chain in\n"
      "the running-mean update.  Scalar is the legacy add() stream, bit-exact.\n");

  if (!jsonPath.empty()) {
    if (!report.writeJson(jsonPath)) return 1;
    std::printf("json: %zu results -> %s\n", report.results.size(), jsonPath.c_str());
  }
  return 0;
}
