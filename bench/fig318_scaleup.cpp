// Reproduces Table 3.3 and Figure 3.18: the MW master-worker scale-up
// study on the d-dimensional Rosenbrock function for d = 20, 50, 100.
// Reported: the processor-allocation table (Table 3.3), function value vs
// virtual time and vs steps (Fig 3.18a/b), and the real time per simplex
// step vs dimension (Fig 3.18c).

#include <cstdio>
#include <vector>

#include "common/harness.hpp"
#include "core/initial_simplex.hpp"
#include "mw/parallel_runner.hpp"

using namespace sfopt;

int main(int argc, char** argv) {
  std::vector<int> dims{20, 50, 100};
  if (argc > 1) {
    dims.clear();
    for (int i = 1; i < argc; ++i) dims.push_back(std::atoi(argv[i]));
  }

  bench::printHeader("Table 3.3 - processor allocation for Rosenbrock over MW (Ns = 1)");
  std::printf("\n%-12s %-10s %-10s %-10s %-12s\n", "dims (d)", "workers", "servers",
              "clients", "total cores");
  for (int d : dims) {
    const mw::ProcessorAllocation a{d, 1};
    std::printf("%-12d %-10lld %-10lld %-10lld %-12lld\n", d,
                static_cast<long long>(a.workers()), static_cast<long long>(a.servers()),
                static_cast<long long>(a.clients()), static_cast<long long>(a.totalCores()));
  }

  bench::printHeader("Figure 3.18 - MW scale-up runs");
  struct Row {
    int d;
    long long steps;
    double finalValue;
    double virtualTime;
    double wallPerStepMs;
  };
  std::vector<Row> rows;

  for (int d : dims) {
    auto objective = bench::noisyRosenbrock(static_cast<std::size_t>(d), 1.0, 8800);
    noise::RngStream startRng(808, static_cast<std::uint64_t>(d));
    const auto start =
        core::randomSimplexPoints(static_cast<std::size_t>(d), -2.0, 2.0, startRng);

    core::MaxNoiseOptions opts;
    opts.common.termination.tolerance = 1e-3;
    opts.common.termination.maxIterations = 40 * d * d;  // NM needs O(d^2) steps here
    opts.common.termination.maxSamples = 30'000'000;
    opts.common.sampling.maxSamplesPerVertex = 2'000;
    opts.common.recordTrace = true;

    const auto run = mw::runSimplexOverMW(objective, start, opts, mw::MWRunConfig{});
    const auto& res = run.optimization;

    bench::printSubHeader("d = " + std::to_string(d) + "  (value vs virtual time / steps)");
    std::printf("  %10s %10s %16s\n", "step", "time(s)", "best true value");
    const auto& steps = res.trace.steps();
    const std::size_t stride = std::max<std::size_t>(steps.size() / 10, 1);
    for (std::size_t i = 0; i < steps.size(); i += stride) {
      std::printf("  %10lld %10.1f %16.6g\n", static_cast<long long>(steps[i].iteration),
                  steps[i].time, steps[i].bestTrue.value_or(steps[i].bestEstimate));
    }
    const double perStepMs =
        res.iterations > 0 ? 1000.0 * run.masterWallSeconds / res.iterations : 0.0;
    rows.push_back({d, static_cast<long long>(res.iterations),
                    res.bestTrue.value_or(res.bestEstimate), res.elapsedTime, perStepMs});
    std::printf("  messages: %llu   bytes: %llu   tasks: %llu\n",
                static_cast<unsigned long long>(run.messagesSent),
                static_cast<unsigned long long>(run.bytesSent),
                static_cast<unsigned long long>(run.tasksCompleted));
  }

  bench::printSubHeader("Fig 3.18c - time per simplex step vs dimension");
  std::printf("\n%-8s %-8s %-16s %-14s %-16s\n", "d", "steps", "final value",
              "virtual t(s)", "wall ms/step");
  for (const Row& r : rows) {
    std::printf("%-8d %-8lld %-16.6g %-14.1f %-16.3f\n", r.d, r.steps, r.finalValue,
                r.virtualTime, r.wallPerStepMs);
  }
  std::printf(
      "\nPaper shape check: more dimensions need more steps and more time to\n"
      "converge (Fig 3.18a/b); the wall-clock cost of a single step grows only\n"
      "mildly with d (Fig 3.18c - the paper attributes it to I/O overhead; here\n"
      "it is message-passing and bookkeeping overhead).\n");
  return 0;
}
