# Empty compiler generated dependencies file for sfopt_mw.
# This may be replaced when dependencies are built.
