#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"

namespace sfopt::telemetry {
class Telemetry;
class Counter;
}

namespace sfopt::net {

/// Direction of travel through a ChaosProxy link.  `Up` is client->server
/// (worker frames toward the master it dialed through the proxy), `Down`
/// is server->client (master frames back to the worker).
enum class ChaosDir : int { Up = 0, Down = 1 };

/// One fault-injection action.  A schedule is a list of these ordered by
/// `atSeconds` (relative to proxy start); tests can also inject() them
/// immediately.  `connIndex` narrows an event to the Nth accepted
/// connection (0-based); -1 applies it to every current and future one.
struct ChaosEvent {
  enum class Kind {
    /// Drop both directions (frames sent during the partition vanish, as
    /// on a real partition) until a Heal.
    Partition,
    /// Clear every standing fault on the link: partition, blackholes,
    /// stalls, delay, duplication.  Frames dropped meanwhile stay dropped.
    Heal,
    /// Drop one direction only: the sender's writes keep succeeding (the
    /// proxy reads and discards) while the receiver hears silence — the
    /// classic half-open connection.
    Blackhole,
    /// Stop *reading* the source socket of `dir`.  The sender's kernel
    /// buffer fills and its non-blocking writes start failing with EAGAIN
    /// — a write stall, which is how a consumer that wedged (rather than
    /// died) looks from the other end.
    Stall,
    /// Deliver the first `stallAfterBytes` bytes of the next complete
    /// frame in `dir`, then freeze the direction like Stall.  The
    /// receiver's FrameDecoder starves mid-frame.
    StallMidFrame,
    /// Delay every frame in `dir` by delaySeconds plus a deterministic
    /// jitter in [0, jitterSeconds) drawn from the schedule seed.  Order
    /// within the direction is preserved (TCP cannot reorder a stream).
    Delay,
    /// Forward every frame in `dir` twice until healed.
    Duplicate,
    /// Hard-close every active link (both sockets), as if a middlebox
    /// reset the connections.  Future dials still go through.
    CloseConnections,
  };

  double atSeconds = 0.0;
  Kind kind = Kind::Partition;
  ChaosDir dir = ChaosDir::Up;
  double delaySeconds = 0.0;
  double jitterSeconds = 0.0;
  std::size_t stallAfterBytes = 0;
  int connIndex = -1;
};

/// A deterministic, seeded fault plan: every run of the same schedule
/// against the same traffic injects the same faults with the same jitter,
/// so any chaos failure is replayable from (seed, events).
struct ChaosSchedule {
  std::uint64_t seed = 0;
  std::vector<ChaosEvent> events;

  /// Canonical named scenarios shared by the tests, the `sfopt chaosproxy`
  /// CLI, and the partition-chaos CI smoke:
  ///   none            forward faithfully (plumbing check)
  ///   partition-heal  full partition at 2s, healed at 6s
  ///   blackhole-up    worker->master frames vanish from 2s to 6s
  ///   blackhole-down  master->worker frames vanish from 2s to 6s
  ///   delay-duplicate 20ms +/- jittered delay both ways, worker->master
  ///                   frames duplicated, for the whole run
  ///   midframe-stall  master->worker direction freezes 7 bytes into the
  ///                   next frame at 2s, healed at 8s
  /// Throws std::invalid_argument for an unknown name.
  [[nodiscard]] static ChaosSchedule preset(const std::string& name, std::uint64_t seed);
};

/// A fault-injecting TCP proxy between master and workers.  Workers dial
/// the proxy's port; each accepted connection is paired with a fresh
/// connection to the real master, and bytes are relayed frame-by-frame
/// with the scheduled faults applied per direction.  Runs on one
/// background thread; construction binds + listens, destruction (or
/// stop()) tears everything down.
///
/// The relay is frame-aware: bytes are reassembled into whole wire frames
/// (u32-LE length prefix) before forwarding, so duplication duplicates
/// exact frames and a mid-frame stall can freeze a precise number of
/// bytes into one.  When either side closes, the proxy closes both — a
/// real middlebox propagates resets the same way.
///
/// Exposes `chaos.*` telemetry counters when a spine is attached, and the
/// same counts programmatically through counters() for tests.
class ChaosProxy {
 public:
  /// Listen on `listenPort` (0 = ephemeral, read back via port()) and
  /// relay every accepted connection to targetHost:targetPort under
  /// `schedule`.  The telemetry pointer may be null.
  ChaosProxy(std::string targetHost, std::uint16_t targetPort, ChaosSchedule schedule = {},
             telemetry::Telemetry* telemetry = nullptr, std::uint16_t listenPort = 0);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Stop relaying and close every socket.  Idempotent; the destructor
  /// calls it.
  void stop();

  /// Apply an event on the proxy thread before its next poll pass
  /// (atSeconds is ignored — injection is immediate).  Thread-safe.
  void inject(ChaosEvent event);

  /// Convenience: inject a Heal for every connection.
  void heal();

  /// Point-in-time copy of the fault/traffic counters (all monotonic).
  struct Counters {
    std::uint64_t connectionsAccepted = 0;
    std::uint64_t connectionsClosed = 0;
    std::uint64_t framesForwarded = 0;
    std::uint64_t bytesForwarded = 0;
    std::uint64_t framesDropped = 0;
    std::uint64_t bytesDropped = 0;
    std::uint64_t framesDuplicated = 0;
    std::uint64_t framesDelayed = 0;
    std::uint64_t partitions = 0;
    std::uint64_t heals = 0;
    std::uint64_t stalls = 0;
  };
  [[nodiscard]] Counters counters() const;

  /// Links currently relaying (accepted and not yet closed).
  [[nodiscard]] int activeConnections() const noexcept {
    return active_.load(std::memory_order_relaxed);
  }

 private:
  /// One queued delivery toward a link endpoint: whole frame bytes (or a
  /// deliberate mid-frame prefix) releasable at `dueAt`.
  struct Chunk {
    std::vector<std::byte> bytes;
    double dueAt = 0.0;
  };

  /// Per-direction fault state + relay buffers of one link.
  struct LinkDir {
    std::vector<std::byte> inbox;  ///< raw bytes from the source, pre-carve
    std::deque<Chunk> outQ;        ///< carved frames awaiting delivery
    std::size_t outPos = 0;        ///< partially written prefix of outQ.front()
    bool drop = false;             ///< partition / blackhole: discard frames
    bool stalled = false;          ///< stop reading source + stop delivering
    bool midFrameArmed = false;    ///< next frame: deliver prefix, then stall
    std::size_t midFramePrefix = 0;
    bool duplicate = false;
    double delaySeconds = 0.0;
    double jitterSeconds = 0.0;
  };

  struct Link {
    Socket client;  ///< accepted worker/client side
    Socket server;  ///< our dial to the real master
    LinkDir dir[2];  ///< indexed by ChaosDir
    bool open = false;
  };

  void run();
  void applyDue(double elapsed);
  void apply(const ChaosEvent& event);
  void applyToLink(Link& link, const ChaosEvent& event);
  void acceptOne();
  /// Read whatever the source socket of `d` has, carve complete frames,
  /// and route each through the direction's fault state.
  void pumpIn(Link& link, ChaosDir d);
  /// Deliver due chunks of `d` to its sink socket until EAGAIN.
  void pumpOut(Link& link, ChaosDir d, double now);
  void closeLink(Link& link);
  [[nodiscard]] double jitterUnit();  ///< deterministic [0, 1) stream

  std::string targetHost_;
  std::uint16_t targetPort_ = 0;
  ChaosSchedule schedule_;
  std::size_t nextEvent_ = 0;  ///< schedule_.events consumed so far
  Socket listener_;
  std::uint16_t port_ = 0;
  double startSeconds_ = 0.0;
  std::uint64_t rngState_ = 0;
  /// Defaults applied to connections accepted after a global (-1) event;
  /// mirrors the standing per-direction fault state.
  LinkDir pendingDefaults_[2];
  bool defaultsPartitioned_ = false;
  std::vector<std::unique_ptr<Link>> links_;  ///< index = accept order

  std::mutex injectMutex_;
  std::vector<ChaosEvent> injected_;

  std::atomic<bool> stopping_{false};
  std::atomic<int> active_{0};
  std::thread thread_;

  // Counter storage is atomic: the proxy thread writes, tests read.
  struct AtomicCounters {
    std::atomic<std::uint64_t> connectionsAccepted{0};
    std::atomic<std::uint64_t> connectionsClosed{0};
    std::atomic<std::uint64_t> framesForwarded{0};
    std::atomic<std::uint64_t> bytesForwarded{0};
    std::atomic<std::uint64_t> framesDropped{0};
    std::atomic<std::uint64_t> bytesDropped{0};
    std::atomic<std::uint64_t> framesDuplicated{0};
    std::atomic<std::uint64_t> framesDelayed{0};
    std::atomic<std::uint64_t> partitions{0};
    std::atomic<std::uint64_t> heals{0};
    std::atomic<std::uint64_t> stalls{0};
  };
  AtomicCounters counts_;

  /// Mirrored `chaos.*` registry handles (null without a spine).
  telemetry::Counter* telConnections_ = nullptr;
  telemetry::Counter* telFramesForwarded_ = nullptr;
  telemetry::Counter* telBytesForwarded_ = nullptr;
  telemetry::Counter* telFramesDropped_ = nullptr;
  telemetry::Counter* telBytesDropped_ = nullptr;
  telemetry::Counter* telFramesDuplicated_ = nullptr;
  telemetry::Counter* telFramesDelayed_ = nullptr;
  telemetry::Counter* telPartitions_ = nullptr;
  telemetry::Counter* telHeals_ = nullptr;
  telemetry::Counter* telStalls_ = nullptr;
};

}  // namespace sfopt::net
