#pragma once

#include <span>
#include <string>
#include <vector>

namespace sfopt::core {

/// A point in d-dimensional parameter space.
using Point = std::vector<double>;

/// r = a + b (element-wise). Throws on dimension mismatch.
[[nodiscard]] Point add(std::span<const double> a, std::span<const double> b);

/// r = a - b (element-wise).
[[nodiscard]] Point subtract(std::span<const double> a, std::span<const double> b);

/// r = s * a.
[[nodiscard]] Point scale(std::span<const double> a, double s);

/// r = alpha * a + beta * b; the shape of every simplex transformation.
[[nodiscard]] Point affineCombine(double alpha, std::span<const double> a, double beta,
                                  std::span<const double> b);

/// Arithmetic mean of a set of points of equal dimension.
[[nodiscard]] Point centroid(std::span<const Point> points);

/// Maximum |a_i - b_i|.
[[nodiscard]] double chebyshevDistance(std::span<const double> a, std::span<const double> b);

/// Render as "(x1, x2, ...)" with the given precision, for logs and benches.
[[nodiscard]] std::string toString(std::span<const double> p, int precision = 6);

}  // namespace sfopt::core
