# Empty compiler generated dependencies file for ext_global_methods.
# This may be replaced when dependencies are built.
