#include "core/pso.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/comparisons.hpp"
#include "core/sampling_context.hpp"
#include "core/trace.hpp"

namespace sfopt::core {

namespace {

struct Particle {
  Point position;
  Point velocity;
  std::unique_ptr<Vertex> best;  ///< personal best (sampled estimate)
};

/// Noise-aware duel: does challenger confidently beat incumbent?  In plain
/// mode a mean comparison decides immediately; in confidence mode both are
/// resampled (concurrently) until the k-sigma intervals separate, up to
/// the round cap.
bool challengerWins(SamplingContext& ctx, Vertex& challenger, Vertex& incumbent,
                    const PsoOptions& opt, MoveCounters& counters, double maxTime) {
  if (!opt.confidenceBestUpdates) {
    return challenger.mean() < incumbent.mean();
  }
  std::int64_t block = std::max<std::int64_t>(opt.resample.initialBlock, 1);
  std::int64_t rounds = 0;
  for (;;) {
    const bool floorMet = challenger.sampleCount() >= opt.minSamplesForConfidence &&
                          incumbent.sampleCount() >= opt.minSamplesForConfidence;
    if (floorMet) {
      switch (confidenceCompare(challenger.mean(), ctx.sigma(challenger), incumbent.mean(),
                                ctx.sigma(incumbent), opt.k)) {
        case ConfidenceOutcome::Less: return true;
        case ConfidenceOutcome::GreaterEq: return false;
        case ConfidenceOutcome::Unresolved: break;
      }
    }
    const bool capped = ctx.atSampleCap(challenger) && ctx.atSampleCap(incumbent);
    const bool roundCapped = opt.resample.maxRoundsPerComparison > 0 &&
                             rounds >= opt.resample.maxRoundsPerComparison;
    if (capped || roundCapped || ctx.now() >= maxTime) {
      ++counters.forcedResolutions;
      return challenger.mean() < incumbent.mean();
    }
    ++rounds;
    ctx.coSample({{&challenger, block}, {&incumbent, block}});
    ++counters.resampleRounds;
    block = std::min<std::int64_t>(
        opt.resample.maxBlock,
        static_cast<std::int64_t>(
            std::ceil(static_cast<double>(block) * std::max(opt.resample.growth, 1.0))));
  }
}

}  // namespace

OptimizationResult runParticleSwarm(const noise::StochasticObjective& objective,
                                    const PsoOptions& options) {
  if (options.particles < 2) throw std::invalid_argument("runParticleSwarm: particles >= 2");
  if (!(options.boxLo < options.boxHi)) {
    throw std::invalid_argument("runParticleSwarm: requires boxLo < boxHi");
  }
  if (options.samplesPerEvaluation < 1) {
    throw std::invalid_argument("runParticleSwarm: samplesPerEvaluation >= 1");
  }

  const std::size_t d = objective.dimension();
  SamplingContext ctx(objective, options.sampling);
  noise::RngStream rng(options.seed, 0x9050);
  const double vMax = options.maxVelocityFraction * (options.boxHi - options.boxLo);

  // Initialize particles and evaluate their starting positions; all
  // initial evaluations run concurrently (one worker per particle).
  std::vector<Particle> swarm;
  swarm.reserve(static_cast<std::size_t>(options.particles));
  for (int p = 0; p < options.particles; ++p) {
    Particle part;
    part.position.resize(d);
    part.velocity.resize(d);
    for (std::size_t i = 0; i < d; ++i) {
      part.position[i] = rng.uniform(options.boxLo, options.boxHi);
      part.velocity[i] = rng.uniform(-vMax, vMax);
    }
    part.best = ctx.createVertex(part.position, options.samplesPerEvaluation);
    swarm.push_back(std::move(part));
  }
  ctx.chargeTime(options.samplesPerEvaluation);

  std::size_t globalIdx = 0;
  for (std::size_t p = 1; p < swarm.size(); ++p) {
    if (swarm[p].best->mean() < swarm[globalIdx].best->mean()) globalIdx = p;
  }

  MoveCounters counters;
  OptimizationTrace trace;
  std::int64_t iter = 0;
  TerminationReason reason = TerminationReason::IterationLimit;
  const TerminationCriteria& term = options.termination;

  for (;;) {
    // Termination: personal-best spread (the swarm analogue of eq. 2.9),
    // then the usual budgets.
    double lo = swarm[globalIdx].best->mean();
    double hi = lo;
    for (const Particle& p : swarm) {
      lo = std::min(lo, p.best->mean());
      hi = std::max(hi, p.best->mean());
    }
    if (term.tolerance > 0.0 && hi - lo <= term.tolerance) {
      reason = TerminationReason::Converged;
      break;
    }
    if (ctx.now() >= term.maxTime) {
      reason = TerminationReason::TimeLimit;
      break;
    }
    if (iter >= term.maxIterations) {
      reason = TerminationReason::IterationLimit;
      break;
    }
    if (term.maxSamples > 0 && ctx.totalSamples() >= term.maxSamples) {
      reason = TerminationReason::SampleLimit;
      break;
    }

    // Velocity/position update, then concurrent evaluation of the new
    // positions.
    std::vector<std::unique_ptr<Vertex>> evals;
    evals.reserve(swarm.size());
    for (Particle& p : swarm) {
      const Point& gBest = swarm[globalIdx].best->point();
      for (std::size_t i = 0; i < d; ++i) {
        const double r1 = rng.uniform();
        const double r2 = rng.uniform();
        p.velocity[i] = options.inertia * p.velocity[i] +
                        options.cognitive * r1 * (p.best->point()[i] - p.position[i]) +
                        options.social * r2 * (gBest[i] - p.position[i]);
        p.velocity[i] = std::clamp(p.velocity[i], -vMax, vMax);
        p.position[i] += p.velocity[i];
      }
      evals.push_back(ctx.createVertex(p.position, options.samplesPerEvaluation));
    }
    ctx.chargeTime(options.samplesPerEvaluation);

    // Personal-best duels (noise-aware in confidence mode), then the
    // global-best pass over the updated personal bests.
    for (std::size_t p = 0; p < swarm.size(); ++p) {
      if (challengerWins(ctx, *evals[p], *swarm[p].best, options, counters, term.maxTime)) {
        swarm[p].best = std::move(evals[p]);
      }
    }
    globalIdx = 0;
    for (std::size_t p = 1; p < swarm.size(); ++p) {
      if (swarm[p].best->mean() < swarm[globalIdx].best->mean()) globalIdx = p;
    }

    ++iter;
    if (options.recordTrace) {
      StepRecord r;
      r.iteration = iter;
      r.time = ctx.now();
      r.bestEstimate = swarm[globalIdx].best->mean();
      r.bestTrue = ctx.trueValue(*swarm[globalIdx].best);
      r.totalSamples = ctx.totalSamples();
      trace.record(std::move(r));
    }
  }

  OptimizationResult out;
  out.best = swarm[globalIdx].best->point();
  out.bestEstimate = swarm[globalIdx].best->mean();
  out.bestTrue = ctx.trueValue(*swarm[globalIdx].best);
  out.iterations = iter;
  out.elapsedTime = ctx.now();
  out.totalSamples = ctx.totalSamples();
  out.reason = reason;
  out.counters = counters;
  out.trace = std::move(trace);
  return out;
}

}  // namespace sfopt::core
