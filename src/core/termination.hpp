#pragma once

#include <cstdint>
#include <limits>
#include <string_view>

namespace sfopt::core {

/// Why an optimization run stopped.
enum class TerminationReason {
  Converged,      ///< eq. 2.9: all vertex values within tolerance of the min
  TimeLimit,      ///< simulated wall-clock budget exhausted
  IterationLimit, ///< simplex step budget exhausted
  SampleLimit,    ///< total objective-sample budget exhausted
};

[[nodiscard]] constexpr std::string_view toString(TerminationReason r) noexcept {
  switch (r) {
    case TerminationReason::Converged: return "converged";
    case TerminationReason::TimeLimit: return "time-limit";
    case TerminationReason::IterationLimit: return "iteration-limit";
    case TerminationReason::SampleLimit: return "sample-limit";
  }
  return "unknown";
}

/// The paper's two termination criteria (section 2.4.1) plus safety caps.
/// A run stops as soon as ANY criterion fires.
struct TerminationCriteria {
  /// eq. 2.9 tolerance tau on max_i |g_i - g_min|; <= 0 disables.
  double tolerance = 1e-8;
  /// Simulated wall-time limit in seconds; infinity disables.
  double maxTime = std::numeric_limits<double>::infinity();
  /// Simplex iteration cap.
  std::int64_t maxIterations = 100'000;
  /// Total objective-sample cap; <= 0 disables.
  std::int64_t maxSamples = 0;
};

}  // namespace sfopt::core
