#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "mw/message_buffer.hpp"
#include "net/transport.hpp"

namespace sfopt::mw {

/// The MW layer speaks the transport vocabulary; these aliases keep the
/// historical sfopt::mw spellings working now that the definitions live
/// with the Transport interface in sfopt::net.
using Rank = net::Rank;
using Message = net::Message;
inline constexpr Rank kAnySource = net::kAnySource;
inline constexpr int kAnyTag = net::kAnyTag;

/// In-process message-passing "world": N ranks, each with a mailbox of
/// tagged messages, point-to-point send/recv with MPI-like any-source /
/// any-tag matching.  One of two Transport implementations under the MW
/// classes — the other is the TCP pair in net/tcp_transport.hpp, which
/// swaps real sockets and processes in without touching the MW layer.
///
/// Thread-safety: each rank is intended to be driven by one thread, but
/// sends may target any rank from any thread.
class CommWorld final : public net::Transport {
 public:
  explicit CommWorld(int size);

  [[nodiscard]] int size() const noexcept override {
    return static_cast<int>(boxes_.size());
  }

  /// Deliver `payload` to `to`'s mailbox with the given tag, recording
  /// `from` as the source.  Never blocks (mailboxes are unbounded).
  void send(Rank from, Rank to, int tag, MessageBuffer payload,
            std::uint64_t traceId = 0, std::uint64_t parentSpan = 0) override;

  /// Block until a message matching (source, tag) arrives at `at`; remove
  /// and return it.  kAnySource / kAnyTag match anything.
  [[nodiscard]] Message recv(Rank at, Rank source = kAnySource, int tag = kAnyTag) override;

  /// Deadline variant of recv(): wait at most `timeoutSeconds` for a
  /// matching message, returning nullopt on timeout.
  [[nodiscard]] std::optional<Message> recvFor(Rank at, double timeoutSeconds,
                                               Rank source = kAnySource,
                                               int tag = kAnyTag) override;

  /// Non-blocking probe-and-take: returns nullopt when no matching message
  /// is queued.
  [[nodiscard]] std::optional<Message> tryRecv(Rank at, Rank source = kAnySource,
                                               int tag = kAnyTag) override;

  /// Number of queued messages at a rank (diagnostics).
  [[nodiscard]] std::size_t queuedAt(Rank at) const;

  /// Total messages and bytes ever sent (for the scale-up accounting).
  [[nodiscard]] std::uint64_t messagesSent() const noexcept override;
  [[nodiscard]] std::uint64_t bytesSent() const noexcept override;

  /// Receive-side mirror: messages and bytes taken out of mailboxes.
  [[nodiscard]] std::uint64_t messagesReceived() const noexcept override;
  [[nodiscard]] std::uint64_t bytesReceived() const noexcept override;

 private:
  struct Mailbox {
    mutable std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> queue;
  };

  void checkRank(Rank r, const char* what) const;
  static bool matches(const Message& m, Rank source, int tag) noexcept;

  void countReceived(const Message& m);

  std::vector<std::unique_ptr<Mailbox>> boxes_;
  mutable std::mutex statsMutex_;
  std::uint64_t messagesSent_ = 0;
  std::uint64_t bytesSent_ = 0;
  std::uint64_t messagesReceived_ = 0;
  std::uint64_t bytesReceived_ = 0;
};

}  // namespace sfopt::mw
