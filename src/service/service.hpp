#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <unordered_map>

#include "mw/mw_driver.hpp"
#include "net/tcp_transport.hpp"
#include "service/durable_state.hpp"
#include "service/job.hpp"
#include "service/job_table.hpp"
#include "service/ticket_exchange.hpp"

namespace sfopt::telemetry {
class Telemetry;
class Counter;
class Gauge;
class Histogram;
}

namespace sfopt::service {

struct ServiceOptions {
  /// Jobs allowed to run engines concurrently; more wait in the queue.
  int maxConcurrentJobs = 2;
  /// Jobs allowed to wait behind the running set; beyond this submissions
  /// are refused with a retryable status.
  int maxQueuedJobs = 8;
  /// Backpressure threshold on the exchange's undrained shard backlog:
  /// above it, new submissions are refused retryably until the fleet
  /// catches up.
  std::size_t maxPendingShards = 1024;
  /// Daemon loop granularity (driver poll / transport pump timeout).
  double pollSeconds = 0.05;
  /// Exit once this many jobs reached a terminal state (0 = serve until
  /// stopped).  CI smoke runs use it for a bounded daemon lifetime.
  std::int64_t maxJobs = 0;
  double recvTimeoutSeconds = 300.0;
  /// Durability: when non-empty, every job-table transition is journaled
  /// under this directory and running jobs snapshot their optimizer state
  /// there, so a restarted daemon resumes every job (bitwise) where the
  /// killed one left off.  Empty = in-memory only (the pre-durability
  /// behaviour).
  std::string stateDir;
  /// Snapshot cadence in engine iterations (only meaningful with a state
  /// dir; <= 0 disables snapshots, leaving journal-only durability).
  std::int64_t checkpointInterval = 25;
  /// Keep at most this many finished jobs in the table, evicting oldest
  /// first (the journal keeps them durable).  0 = unlimited.
  std::int64_t resultRetention = 0;
  /// Straggler mitigation: duplicate-dispatch a shard to an idle worker
  /// once it has been outstanding longer than this factor times the
  /// fleet's EWMA execute time.  0 = off.
  double speculativeFactor = 0.0;
  telemetry::Telemetry* telemetry = nullptr;
  std::ostream* log = nullptr;  ///< lifecycle lines; nullptr = silent
};

/// The long-lived multi-tenant daemon behind `sfopt serve --daemon`: one
/// accept loop, one worker fleet, one MWDriver — many concurrent jobs.
///
/// Topology: clients connect over the same TCP transport workers use
/// (Hello peer-kind byte routes them), submit JobSpecs, and wait for
/// JobResult frames.  Each admitted job runs its unmodified optimization
/// engine on a dedicated thread against an ExchangeBackend; the daemon
/// thread multiplexes every job's shard tickets fairly into the shared
/// driver and routes completions back by ticket.  Because each engine's
/// sample stream is counter-keyed and folded canonically, a job's result
/// is bitwise identical to running it alone — whatever the interleaving,
/// worker losses, or a neighbour's cancellation.
///
/// Failure envelope: a worker loss mid-job is the driver's ordinary
/// requeue path (invisible to jobs); losing the whole fleet fails the
/// running jobs with a retryable-style error, drops the driver, and keeps
/// accepting workers and jobs.  Cancelling a job aborts its engine thread
/// at the next sampling call; its in-flight shards are dropped on
/// completion.
class OptimizationService {
 public:
  OptimizationService(net::TcpCommWorld& comm, ServiceOptions options);
  ~OptimizationService();

  OptimizationService(const OptimizationService&) = delete;
  OptimizationService& operator=(const OptimizationService&) = delete;

  /// Serve until `stop` is set or the maxJobs budget completes.  Returns
  /// the number of jobs that reached a terminal state.
  std::int64_t run(const std::atomic<bool>& stop);

  [[nodiscard]] JobTable& table() noexcept { return table_; }

 private:
  struct Route {
    std::uint64_t jobId = 0;
    std::uint64_t ticket = 0;
  };
  struct FinishedJob {
    std::uint64_t id = 0;
    JobState state = JobState::Failed;
    std::optional<JobOutcome> outcome;
    std::string error;
  };

  [[nodiscard]] double telNow() const;
  void logLine(const std::string& line);

  void recoverState();
  void ensureDriver();
  void reapFinished();
  void handleClients();
  void handleSubmit(net::TcpCommWorld::ClientRequest& req);
  void handleStatus(net::TcpCommWorld::ClientRequest& req);
  void handleCancel(net::TcpCommWorld::ClientRequest& req);
  void handleResultFetch(net::TcpCommWorld::ClientRequest& req);
  void applyRetention();
  void promoteQueued();
  void pumpShards();
  void progress();
  void fleetFailure(const std::string& what);
  void finalizeJob(JobRecord& rec, JobState state, std::optional<JobOutcome> outcome,
                   std::string error);
  void notifyResult(const JobRecord& rec);
  void sendStatus(int client, const StatusReply& reply);
  void shutdownAll();

  void jobMain(std::uint64_t id, JobSpec spec,
               std::optional<core::SimplexCheckpoint> resume) noexcept;
  void pushFinished(FinishedJob f);

  net::TcpCommWorld& comm_;
  ServiceOptions opts_;
  JobTable table_;
  TicketExchange exchange_;
  std::unique_ptr<DurableState> durable_;
  /// Graceful-stop flag: while set, non-Done finalizations are not
  /// journaled and their snapshots are kept, so interrupted jobs recover
  /// as queued/running on the next start instead of failed.
  bool durableShutdown_ = false;
  std::unique_ptr<mw::MWDriver> driver_;
  std::unordered_map<std::uint64_t, Route> routes_;  ///< driver task id -> job/ticket

  std::mutex finishedMutex_;
  std::condition_variable finishedCv_;
  std::deque<FinishedJob> finished_;

  telemetry::Counter* jobsSubmitted_ = nullptr;
  telemetry::Counter* jobsRejected_ = nullptr;
  telemetry::Counter* jobsCompleted_ = nullptr;
  telemetry::Counter* jobsCancelled_ = nullptr;
  telemetry::Counter* jobsFailed_ = nullptr;
  telemetry::Counter* shardsRouted_ = nullptr;
  telemetry::Histogram* jobSeconds_ = nullptr;
  telemetry::Counter* checkpointsWritten_ = nullptr;
  telemetry::Counter* recoveredQueued_ = nullptr;
  telemetry::Counter* recoveredRunning_ = nullptr;
  telemetry::Counter* recoveredFinished_ = nullptr;
  telemetry::Gauge* journalBytes_ = nullptr;
  telemetry::Histogram* recoverySeconds_ = nullptr;
};

}  // namespace sfopt::service
