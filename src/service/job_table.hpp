#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/checkpoint.hpp"
#include "service/job.hpp"

namespace sfopt::service {

/// Per-job daemon state.  Owned and mutated by the daemon thread only;
/// job engine threads communicate exclusively through the TicketExchange
/// and the service's finished queue.
struct JobRecord {
  std::uint64_t id = 0;
  JobSpec spec;
  JobState state = JobState::Queued;
  int client = -1;  ///< submitting client id (sendToClient target); -1 = detached
  std::string error;
  std::optional<JobOutcome> outcome;
  std::thread thread;  ///< running engine thread; joined by the reaper
  double submittedAt = 0.0;
  double startedAt = 0.0;
  double finishedAt = 0.0;
  /// Snapshot recovered from the durable state dir; the engine resumes
  /// from it instead of the initial simplex when the job is promoted.
  std::optional<core::SimplexCheckpoint> resume;
};

/// Admission verdict for one JobSubmit.
struct Admission {
  bool accepted = false;
  bool retryable = false;  ///< refusal was load-based; client may retry
  std::uint64_t jobId = 0;
  std::string message;
};

/// The daemon's job registry with admission control: at most
/// `maxConcurrent` jobs run at once and at most `maxQueued` wait behind
/// them; submissions beyond that are refused with a retryable status
/// instead of being parked forever or crashing the daemon.
class JobTable {
 public:
  JobTable(int maxConcurrent, int maxQueued);

  /// Admit or refuse a (pre-validated) spec.  On acceptance the job is
  /// recorded as Queued.
  [[nodiscard]] Admission admit(JobSpec spec, int client, double now);

  [[nodiscard]] JobRecord* find(std::uint64_t id);

  /// Lowest-id queued job, or nullptr.  The caller promotes it.
  [[nodiscard]] JobRecord* nextQueued();

  /// Recovery: re-insert a journal-replayed record verbatim, keeping its
  /// original id.  The caller is the durable-state recovery path only.
  void restore(JobRecord rec);

  /// Recovery: continue the id sequence where the journal left off so
  /// restarted daemons never reuse a job id (ticket namespaces stay
  /// unique across restarts).
  void setNextId(std::uint64_t next) noexcept;

  /// Retention: drop the oldest terminal records until at most `cap`
  /// remain, remembering each evicted job's final state so `status` can
  /// say "evicted" instead of "unknown".  Returns the evicted ids.
  [[nodiscard]] std::vector<std::uint64_t> evictFinishedOver(std::size_t cap);

  /// Final state of an evicted job, or nullptr if the id was never
  /// evicted.
  [[nodiscard]] const JobState* evictedState(std::uint64_t id) const;

  /// Recovery: mark a job as evicted (journal replay of an Evicted entry).
  void markEvicted(std::uint64_t id, JobState finalState);

  [[nodiscard]] int runningCount() const noexcept;
  [[nodiscard]] int queuedCount() const noexcept;
  [[nodiscard]] std::int64_t completedCount() const noexcept;  ///< terminal states
  [[nodiscard]] bool anyActive() const noexcept;  ///< queued or running jobs exist

  [[nodiscard]] std::map<std::uint64_t, JobRecord>& all() noexcept { return jobs_; }

  [[nodiscard]] int maxConcurrent() const noexcept { return maxConcurrent_; }
  [[nodiscard]] int maxQueued() const noexcept { return maxQueued_; }

 private:
  std::map<std::uint64_t, JobRecord> jobs_;
  std::map<std::uint64_t, JobState> evicted_;  ///< final state of retained-out jobs
  std::uint64_t nextId_ = 1;
  int maxConcurrent_;
  int maxQueued_;
};

}  // namespace sfopt::service
