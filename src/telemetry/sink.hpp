#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sfopt::telemetry {

/// One structured telemetry event.  The fixed fields cover the span and
/// metric cases; everything else rides in the string/number field lists.
/// JSONL wire form (one object per line, flat):
///   {"type":"span","name":"engine.iteration","t":0.12,"dur":0.01,
///    "id":7,"parent":1,"move":"reflection","samples":120}
struct Event {
  std::string type;        ///< "span", "metric", "event"
  std::string name;
  double time = 0.0;       ///< seconds on the emitting clock
  double duration = -1.0;  ///< span length; negative = absent
  std::uint64_t id = 0;    ///< span id; 0 = absent
  std::uint64_t parent = 0;  ///< parent span id; 0 = root/absent
  std::uint64_t trace = 0;   ///< distributed trace id; 0 = absent
  std::vector<std::pair<std::string, std::string>> strFields;
  std::vector<std::pair<std::string, double>> numFields;

  [[nodiscard]] std::optional<double> num(std::string_view key) const;
  [[nodiscard]] std::optional<std::string_view> str(std::string_view key) const;
};

/// Receives every emitted event.  Implementations must be safe to call
/// from multiple threads (the MW layer emits from the driver thread while
/// MD instrumentation may emit from workers).
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void emit(const Event& e) = 0;
  [[nodiscard]] virtual std::uint64_t eventsWritten() const noexcept { return 0; }
};

/// Default sink: drops everything.  Kept trivially small so instrumented
/// code paths pay only the virtual call when telemetry is attached but
/// unexported, and nothing at all when no Telemetry is plugged in.
class NoopSink final : public EventSink {
 public:
  void emit(const Event&) override {}
};

/// Structured-event sink writing one JSON object per line.
class JsonlSink final : public EventSink {
 public:
  /// Opens `file` (truncating unless `append`).  Throws std::runtime_error
  /// on open failure.
  explicit JsonlSink(const std::filesystem::path& file, bool append = false);
  /// Stream variant for tests; the stream must outlive the sink.
  explicit JsonlSink(std::ostream& out);

  void emit(const Event& e) override;
  [[nodiscard]] std::uint64_t eventsWritten() const noexcept override { return count_; }
  void flush();

  /// Opt-in crash durability for long-lived processes: flush the stream
  /// whenever at least `seconds` of wall time passed since the last flush
  /// (0 = flush after every event).  Negative (the default) restores the
  /// buffered behaviour where events reach disk only on explicit flush()
  /// or destruction.
  void setFlushIntervalSeconds(double seconds);

 private:
  std::ofstream owned_;
  std::ostream* out_;
  std::mutex mutex_;
  std::uint64_t count_ = 0;
  double flushIntervalSeconds_ = -1.0;
  double lastFlushSeconds_ = 0.0;  ///< monotonic, valid when interval >= 0
};

/// Serialize one event to its JSONL line (no trailing newline).
[[nodiscard]] std::string toJsonLine(const Event& e);

/// Escape a string for inclusion in a JSON string literal (quotes not
/// included).
[[nodiscard]] std::string jsonEscape(std::string_view s);

/// Parse one JSONL line back into an Event.  Accepts exactly the flat
/// objects toJsonLine produces (plus unknown keys, kept as fields).
/// Returns nullopt on malformed input or blank lines.
[[nodiscard]] std::optional<Event> parseJsonLine(std::string_view line);

/// Read every parseable event from a JSONL file.  Throws on open failure;
/// malformed lines are skipped.
[[nodiscard]] std::vector<Event> readJsonlEvents(const std::filesystem::path& file);

}  // namespace sfopt::telemetry
