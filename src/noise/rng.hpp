#pragma once

#include <cstdint>
#include <utility>

namespace sfopt::noise {

/// SplitMix64 finalizer step: a strong 64-bit mixing function.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combine keys into a single 64-bit hash, order-sensitively.
[[nodiscard]] constexpr std::uint64_t hashCombine(std::uint64_t a, std::uint64_t b) noexcept {
  return splitmix64(a ^ (splitmix64(b) + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/// Identifies one noise draw.  The pair (stream, index) maps to a unique,
/// reproducible random value regardless of the order in which draws are
/// requested — this is what makes parallel (master-worker) runs bitwise
/// reproducible: vertex k's j-th sample sees the same noise whether it is
/// computed by worker 3 or worker 7, first or last.
struct SampleKey {
  std::uint64_t stream = 0;  ///< typically a vertex id
  std::uint64_t index = 0;   ///< sample counter within the stream
};

/// Stateless counter-based random generator: every (seed, key) pair yields
/// an independent, reproducible value.  This is the philox-style discipline
/// recommended for HPC reproducibility, implemented with SplitMix64 mixing.
class CounterRng {
 public:
  explicit constexpr CounterRng(std::uint64_t seed) noexcept : seed_(seed) {}

  /// Raw 64 random bits for (key, salt).
  [[nodiscard]] std::uint64_t bits(SampleKey key, std::uint64_t salt = 0) const noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform(SampleKey key, std::uint64_t salt = 0) const noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(SampleKey key, double lo, double hi,
                               std::uint64_t salt = 0) const noexcept;

  /// Standard normal deviate via Box-Muller (uses salts `salt` and `salt+1`).
  [[nodiscard]] double gaussian(SampleKey key, std::uint64_t salt = 0) const noexcept;

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  std::uint64_t seed_;
};

/// A small stateful convenience stream on top of CounterRng: draws advance
/// an internal counter.  Useful for setup code (initial simplex generation)
/// where replay ordering is naturally sequential.
class RngStream {
 public:
  RngStream(std::uint64_t seed, std::uint64_t stream) noexcept
      : rng_(seed), key_{stream, 0} {}

  double uniform() noexcept { return rng_.uniform(next()); }
  double uniform(double lo, double hi) noexcept { return rng_.uniform(next(), lo, hi); }
  double gaussian() noexcept { return rng_.gaussian(next()); }
  std::uint64_t bits() noexcept { return rng_.bits(next()); }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) noexcept;

 private:
  SampleKey next() noexcept {
    SampleKey k = key_;
    ++key_.index;
    return k;
  }
  CounterRng rng_;
  SampleKey key_;
};

}  // namespace sfopt::noise
