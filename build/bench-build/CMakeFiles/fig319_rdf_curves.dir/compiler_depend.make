# Empty compiler generated dependencies file for fig319_rdf_curves.
# This may be replaced when dependencies are built.
