#pragma once

#include <cmath>
#include <functional>
#include <utility>

#include "noise/stochastic_objective.hpp"

namespace sfopt::noise {

/// A stochastic objective whose noise scale depends on the location in
/// parameter space — the general case the paper's problem statement
/// allows: "the inherent variance (sigma0_k)^2 may depend on the location
/// in parameter space (some models may be noisier than others) but there
/// is no expectation that this variance is known ahead of time" (eq. 1.2
/// discussion).
///
/// The stochastic simplex variants must cope with this without being told:
/// they only ever see the estimated sigma from the sample stream.
class HeteroscedasticFunction final : public StochasticObjective {
 public:
  using Fn = std::function<double(std::span<const double>)>;
  using SigmaFn = std::function<double(std::span<const double>)>;

  struct Options {
    double sampleDuration = 1.0;
    std::uint64_t seed = 0x6e7;
  };

  HeteroscedasticFunction(std::size_t dimension, Fn f, SigmaFn sigma0)
      : HeteroscedasticFunction(dimension, std::move(f), std::move(sigma0), Options{}) {}
  HeteroscedasticFunction(std::size_t dimension, Fn f, SigmaFn sigma0, Options opts)
      : dim_(dimension),
        f_(std::move(f)),
        sigma0_(std::move(sigma0)),
        opts_(opts),
        rng_(opts.seed) {}

  [[nodiscard]] std::size_t dimension() const override { return dim_; }
  [[nodiscard]] double sampleDuration() const override { return opts_.sampleDuration; }

  [[nodiscard]] double sample(std::span<const double> x, SampleKey key) const override {
    const double perSample = sigma0_(x) / std::sqrt(opts_.sampleDuration);
    return f_(x) + perSample * rng_.gaussian(key);
  }

  [[nodiscard]] std::optional<double> trueValue(std::span<const double> x) const override {
    return f_(x);
  }

  [[nodiscard]] std::optional<double> noiseScale(std::span<const double> x) const override {
    return sigma0_(x);
  }

 private:
  std::size_t dim_;
  Fn f_;
  SigmaFn sigma0_;
  Options opts_;
  CounterRng rng_;
};

}  // namespace sfopt::noise
