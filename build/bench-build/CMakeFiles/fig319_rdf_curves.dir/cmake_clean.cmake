file(REMOVE_RECURSE
  "../bench/fig319_rdf_curves"
  "../bench/fig319_rdf_curves.pdb"
  "CMakeFiles/fig319_rdf_curves.dir/fig319_rdf_curves.cpp.o"
  "CMakeFiles/fig319_rdf_curves.dir/fig319_rdf_curves.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig319_rdf_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
