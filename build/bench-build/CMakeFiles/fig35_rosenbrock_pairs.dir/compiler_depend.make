# Empty compiler generated dependencies file for fig35_rosenbrock_pairs.
# This may be replaced when dependencies are built.
