#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "simd/dispatch.hpp"
#include "stats/welford.hpp"

namespace sfopt::core {

/// Canonical evaluation chunk size (samples).  Backends report batch
/// results as per-chunk Welford moments on a fixed grid relative to the
/// request's startIndex: chunk j covers sample indices
/// [startIndex + 64 j, startIndex + 64 (j+1)) (the last chunk may be
/// partial).  Because Welford merging is not associative in floating
/// point, the chunk grid — not the shard or client split — defines the
/// merge tree: the master folds a batch's chunks left-to-right, so the
/// merged moments are bitwise independent of how the work was sharded
/// across workers, how many clients each worker ran, and in which order
/// shards completed.
///
/// Canonical-moment contract.  Two reductions, and only these two, define
/// a batch's moments; every producer and consumer must go through them so
/// alternative accumulation modes (SIMD lanes today, bf16 or pairwise
/// trees tomorrow) cannot silently diverge from each other:
///
///  1. Chunk interior: accumulateEvalChunk() turns the chunk's sample
///     stream into moments.  It dispatches on the active SIMD ISA; the
///     scalar ISA is the sequential Welford::add stream bit for bit, and
///     each vector ISA pins a canonical lane order, so a chunk's moments
///     are a pure function of (samples, active ISA).
///  2. Batch fold: foldEvalChunks() merges a batch's chunk moments
///     left-to-right in chunk-index order.
inline constexpr std::int64_t kEvalChunkSamples = 64;

/// Number of chunks a batch of `count` samples decomposes into.
[[nodiscard]] constexpr std::int64_t evalChunkCount(std::int64_t count) noexcept {
  return (count + kEvalChunkSamples - 1) / kEvalChunkSamples;
}

/// Accumulate the sample stream of ONE canonical chunk into Welford
/// moments (contract step 1).  THE chunk-interior accumulator everybody
/// must use; see the canonical-moment contract above.
[[nodiscard]] inline stats::Welford accumulateEvalChunk(std::span<const double> samples) {
  return simd::welfordChunk(samples);
}

/// Fold a batch's chunk moments in canonical (index) order (contract
/// step 2).  This is THE merge everybody must use so results stay bitwise
/// reproducible.
[[nodiscard]] inline stats::Welford foldEvalChunks(std::span<const stats::Welford> chunks) {
  stats::Welford merged;
  for (const stats::Welford& c : chunks) merged.merge(c);
  return merged;
}

class AsyncSamplingBackend;

/// Where the raw objective samples are computed.
///
/// The default (no backend) computes samples inline on the calling thread.
/// The master-worker runtime (src/mw) provides a backend that ships each
/// batch to a worker process and returns the worker's partial Welford
/// state.  Because every sample is keyed by (vertexId, sampleIndex) through
/// the counter-based RNG, the merged estimate is bitwise identical no
/// matter which backend computed it or in which order — the property the
/// integration tests pin down.
class SamplingBackend {
 public:
  struct BatchRequest {
    std::span<const double> x;      ///< evaluation point
    std::uint64_t vertexId = 0;     ///< noise-stream id
    std::uint64_t startIndex = 0;   ///< first sample index in the batch
    std::int64_t count = 0;         ///< number of samples to draw
  };

  virtual ~SamplingBackend() = default;

  /// Compute one batch and return its accumulated partial statistics.
  [[nodiscard]] virtual stats::Welford sampleBatch(const BatchRequest& request) = 0;

  /// Compute several batches, potentially concurrently; results are
  /// returned in request order.  The default implementation loops.
  [[nodiscard]] virtual std::vector<stats::Welford> sampleBatches(
      std::span<const BatchRequest> requests) {
    std::vector<stats::Welford> out;
    out.reserve(requests.size());
    for (const BatchRequest& r : requests) out.push_back(sampleBatch(r));
    return out;
  }

  /// Non-blocking pipeline interface, when this backend has one.  nullptr
  /// (the default) means the backend is synchronous-only and the
  /// EvalScheduler cannot shard or speculate over it.
  [[nodiscard]] virtual AsyncSamplingBackend* async() { return nullptr; }
};

/// Ticketed, non-blocking counterpart of SamplingBackend: submit() hands a
/// batch to the evaluation fabric and returns immediately; poll() delivers
/// whatever completed since the last call.  Results arrive as canonical
/// chunk moments (see kEvalChunkSamples), never pre-merged, so the caller
/// owns the merge order.  Submitted batches may complete in any order.
class AsyncSamplingBackend {
 public:
  struct Completion {
    std::uint64_t ticket = 0;
    std::vector<stats::Welford> chunks;  ///< canonical chunk moments, in index order
  };

  virtual ~AsyncSamplingBackend() = default;

  /// Enqueue one batch; returns a ticket its completion will carry.
  [[nodiscard]] virtual std::uint64_t submit(const SamplingBackend::BatchRequest& request) = 0;

  /// Wait up to `timeoutSeconds` for at least one completion (0 = just
  /// drain what is already available).  Returns every completion ready at
  /// that point; empty on timeout or when nothing is outstanding.
  [[nodiscard]] virtual std::vector<Completion> poll(double timeoutSeconds) = 0;

  /// How many batches the fabric can usefully run at once (live workers
  /// for the MW backend).  Used to size shards; always >= 1.
  [[nodiscard]] virtual int parallelism() const = 0;
};

}  // namespace sfopt::core
