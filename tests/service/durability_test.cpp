#include "service/durable_state.hpp"

#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/algorithms.hpp"
#include "core/initial_simplex.hpp"
#include "mw/parallel_runner.hpp"
#include "net/chaos_transport.hpp"
#include "net/tcp_transport.hpp"
#include "service/service.hpp"
#include "service/service_client.hpp"
#include "service/service_worker.hpp"
#include "service/ticket_exchange.hpp"

// Chaos and property tests for the durable service (§9.9): journal replay
// round-trips, torn-tail truncation at every cut point, the torn-write
// fault hook, and the headline invariant — a daemon killed mid-job (up to
// and including SIGKILL of a real `sfopt serve --daemon` process) restarts,
// resumes from the last snapshot, and finishes with a result bitwise
// identical to the uninterrupted solo run.

namespace {

using namespace sfopt;
using namespace std::chrono_literals;

namespace fs = std::filesystem;

service::JobSpec makeSpec(const std::string& function, std::int64_t dim,
                          const std::string& algorithm, std::uint64_t seed,
                          std::int64_t maxIterations) {
  service::JobSpec spec;
  spec.objective.function = function;
  spec.objective.dim = dim;
  spec.objective.seed = seed;
  spec.algorithm = algorithm;
  spec.k = algorithm == "mn" ? 2.0 : 1.0;
  spec.termination.maxIterations = maxIterations;
  spec.initial = core::axisSimplexPoints(
      core::Point(static_cast<std::size_t>(dim), 1.0), 1.0);
  spec.validate();
  return spec;
}

/// Ground truth for the bitwise assertions: the same spec run alone,
/// in-process, over the MW backend (see service_test.cpp).
core::OptimizationResult soloRun(const service::JobSpec& spec) {
  const noise::NoisyFunction objective = spec.objective.makeObjective();
  const mw::AlgorithmOptions options = spec.makeOptions();
  mw::MWRunConfig cfg;
  cfg.workers = 2;
  cfg.clientsPerWorker = static_cast<int>(spec.objective.clients);
  return mw::runSimplexOverMW(objective, spec.initial, options, cfg).optimization;
}

void expectBitwiseEqual(const service::JobOutcome& outcome,
                        const core::OptimizationResult& solo) {
  EXPECT_EQ(outcome.best, solo.best);
  EXPECT_EQ(outcome.bestEstimate, solo.bestEstimate);
  EXPECT_EQ(outcome.iterations, solo.iterations);
  EXPECT_EQ(outcome.totalSamples, solo.totalSamples);
  EXPECT_EQ(outcome.elapsedTime, solo.elapsedTime);
  EXPECT_EQ(static_cast<int>(outcome.reason), static_cast<int>(solo.reason));
  EXPECT_EQ(outcome.counters.reflections, solo.counters.reflections);
  EXPECT_EQ(outcome.counters.contractions, solo.counters.contractions);
}

/// Fresh directory under the system temp root, removed on scope exit.
struct TempDir {
  fs::path path;
  TempDir() {
    std::string tmpl = (fs::temp_directory_path() / "sfopt-durable-XXXXXX").string();
    char* made = ::mkdtemp(tmpl.data());
    if (made == nullptr) throw std::runtime_error("mkdtemp failed");
    path = made;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

service::JobOutcome fakeOutcome(std::uint64_t salt) {
  service::JobOutcome o;
  o.reason = core::TerminationReason::IterationLimit;
  o.best = core::Point{1.5, -0.25, static_cast<double>(salt) * 0.125};
  o.bestEstimate = 0.0009765625 * static_cast<double>(salt);
  o.iterations = 10 + static_cast<std::int64_t>(salt);
  o.totalSamples = 1000 + static_cast<std::int64_t>(salt);
  o.elapsedTime = 0.5;
  o.counters.reflections = static_cast<std::int64_t>(salt);
  return o;
}

TEST(DurableJournal, HundredEntryReplayRoundTripsUnderASecond) {
  TempDir dir;
  {
    service::DurableState ds(dir.path);
    // 40 submits + 30 starts + 25 finishes + 5 evictions = 100 entries.
    for (std::uint64_t id = 1; id <= 40; ++id) {
      service::JobSpec spec =
          makeSpec(id % 2 == 0 ? "sphere" : "rosenbrock", 3 + static_cast<std::int64_t>(id % 3),
                   "pc", 100 + id, 20);
      spec.priority = 1 + static_cast<std::int64_t>(id % 7);
      ds.recordSubmitted(id, spec);
    }
    for (std::uint64_t id = 1; id <= 30; ++id) ds.recordStarted(id);
    for (std::uint64_t id = 1; id <= 25; ++id) {
      if (id % 5 == 0) {
        ds.recordFinished(id, service::JobState::Failed, "fleet lost", std::nullopt);
      } else {
        ds.recordFinished(id, service::JobState::Done, "", fakeOutcome(id));
      }
    }
    for (std::uint64_t id = 1; id <= 5; ++id) ds.recordEvicted(id);
  }

  const auto t0 = std::chrono::steady_clock::now();
  service::DurableState ds(dir.path);
  const service::DurableState::Recovery rec = ds.recover();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_LT(seconds, 1.0);

  EXPECT_EQ(rec.entriesReplayed, 100u);
  EXPECT_FALSE(rec.truncatedTail);
  EXPECT_EQ(rec.maxJobId, 40u);
  ASSERT_EQ(rec.jobs.size(), 40u);
  for (const service::DurableState::RecoveredJob& job : rec.jobs) {
    const std::uint64_t id = job.id;
    EXPECT_EQ(job.spec.objective.seed, 100 + id);
    EXPECT_EQ(job.spec.priority, 1 + static_cast<std::int64_t>(id % 7));
    EXPECT_EQ(job.evicted, id <= 5);
    if (id > 30) {
      EXPECT_EQ(job.state, service::JobState::Queued) << "job " << id;
    } else if (id > 25) {
      EXPECT_EQ(job.state, service::JobState::Running) << "job " << id;
    } else if (id % 5 == 0) {
      EXPECT_EQ(job.state, service::JobState::Failed) << "job " << id;
      EXPECT_EQ(job.error, "fleet lost");
      EXPECT_FALSE(job.outcome.has_value());
    } else {
      EXPECT_EQ(job.state, service::JobState::Done) << "job " << id;
      ASSERT_TRUE(job.outcome.has_value()) << "job " << id;
      const service::JobOutcome want = fakeOutcome(id);
      EXPECT_EQ(job.outcome->best, want.best);
      EXPECT_EQ(job.outcome->bestEstimate, want.bestEstimate);
      EXPECT_EQ(job.outcome->totalSamples, want.totalSamples);
    }
  }
}

TEST(DurableJournal, EveryTornTailTruncatesToTheCleanPrefix) {
  TempDir dir;
  {
    service::DurableState ds(dir.path);
    for (std::uint64_t id = 1; id <= 6; ++id) {
      ds.recordSubmitted(id, makeSpec("sphere", 3, "pc", id, 10));
      ds.recordStarted(id);
    }
  }
  std::vector<char> wire;
  {
    std::ifstream in(dir.path / "journal.sfj", std::ios::binary);
    wire.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  ASSERT_GT(wire.size(), 12u);

  // A kill can tear the journal at any byte: every cut must recover the
  // longest clean record prefix, flag the torn tail, truncate it away,
  // and replay identically (and quietly) the second time around.
  for (std::size_t cut = 0; cut < wire.size(); cut += 13) {
    TempDir torn;
    {
      std::ofstream out(torn.path / "journal.sfj", std::ios::binary);
      out.write(wire.data(), static_cast<std::streamsize>(cut));
    }
    service::DurableState ds(torn.path);
    service::DurableState::Recovery first;
    ASSERT_NO_THROW(first = ds.recover()) << "cut at byte " << cut;
    EXPECT_LE(first.entriesReplayed, 12u);
    EXPECT_EQ(first.truncatedTail, cut > 12 && fs::file_size(torn.path / "journal.sfj") < cut)
        << "cut at byte " << cut;

    service::DurableState again(torn.path);
    const service::DurableState::Recovery second = again.recover();
    EXPECT_FALSE(second.truncatedTail) << "cut at byte " << cut;
    EXPECT_EQ(second.entriesReplayed, first.entriesReplayed) << "cut at byte " << cut;
  }
}

TEST(DurableJournal, TornWriteFaultHookLeavesARecoverableJournal) {
  TempDir dir;
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Die the hard way halfway through the third append; only async-safe
    // work after this point (DurableState flushes then _Exit(137)s).
    ::setenv("SFOPT_DURABLE_TORN_WRITE", "3", 1);
    service::DurableState ds(dir.path);
    for (std::uint64_t id = 1; id <= 5; ++id) {
      ds.recordSubmitted(id, makeSpec("sphere", 3, "pc", id, 10));
    }
    std::_Exit(0);  // hook failed to fire: report success=0 so the parent fails
  }
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 137) << "torn-write hook did not fire";

  service::DurableState ds(dir.path);
  const service::DurableState::Recovery rec = ds.recover();
  EXPECT_TRUE(rec.truncatedTail);
  EXPECT_EQ(rec.entriesReplayed, 2u);
  ASSERT_EQ(rec.jobs.size(), 2u);
  EXPECT_EQ(rec.jobs[0].spec.objective.seed, 1u);
  EXPECT_EQ(rec.jobs[1].spec.objective.seed, 2u);

  // The truncation is durable: a second recovery sees a clean journal.
  service::DurableState again(dir.path);
  EXPECT_FALSE(again.recover().truncatedTail);
}

TEST(DurableJournal, ForeignMagicAndFutureVersionsAreRefused) {
  {
    TempDir dir;
    std::ofstream(dir.path / "journal.sfj", std::ios::binary) << "NOTOURSXxxxxx";
    EXPECT_THROW(service::DurableState ds(dir.path), std::runtime_error);
  }
  {
    TempDir dir;
    {
      service::DurableState ds(dir.path);  // writes a valid header
    }
    std::fstream f(dir.path / "journal.sfj",
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(8);
    const char v99[4] = {99, 0, 0, 0};
    f.write(v99, 4);
    f.close();
    try {
      service::DurableState ds(dir.path);
      FAIL() << "future journal version must be refused, not guessed at";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("version 99"), std::string::npos);
    }
  }
}

/// A worker that sleeps before every task — the straggler the speculative
/// duplicates route around.
class SlowServiceWorker final : public service::ServiceWorker {
 public:
  SlowServiceWorker(net::Transport& comm, mw::Rank rank, std::chrono::milliseconds delay)
      : ServiceWorker(comm, rank), delay_(delay) {}

 protected:
  void executeTask(mw::MessageBuffer& in, mw::MessageBuffer& out) override {
    std::this_thread::sleep_for(delay_);
    ServiceWorker::executeTask(in, out);
  }

 private:
  std::chrono::milliseconds delay_;
};

/// One daemon + worker fleet on an ephemeral port (service_test.cpp's
/// harness, grown durability/speculation knobs).
struct Harness {
  net::TcpCommWorld comm{0};
  service::ServiceOptions opts;
  std::vector<std::thread> workers;
  std::thread daemon;
  std::atomic<bool> stop{false};
  std::int64_t completed = -1;

  explicit Harness(std::int64_t maxJobs, int workerCount = 2,
                   std::chrono::milliseconds slowWorkerDelay = 0ms) {
    opts.maxJobs = maxJobs;
    opts.pollSeconds = 0.02;
    opts.recvTimeoutSeconds = 20.0;
    for (int i = 0; i < workerCount; ++i) {
      const bool slow = slowWorkerDelay > 0ms && i == 0;
      const std::uint16_t port = comm.port();
      workers.emplace_back([port, slow, slowWorkerDelay] {
        try {
          net::TcpWorkerTransport transport("127.0.0.1", port);
          if (slow) {
            SlowServiceWorker worker(transport, transport.rank(), slowWorkerDelay);
            worker.run();
          } else {
            service::ServiceWorker worker(transport, transport.rank());
            worker.run();
          }
        } catch (const net::ConnectionLost&) {
        }
      });
      (void)comm.waitForWorkers(comm.liveWorkers() + 1, 10.0);
    }
  }

  void start() {
    daemon = std::thread([this] {
      service::OptimizationService svc(comm, opts);
      completed = svc.run(stop);
    });
  }

  void finish() {
    stop.store(true);
    if (daemon.joinable()) daemon.join();
    for (auto& t : workers) t.join();
    workers.clear();
  }

  ~Harness() { finish(); }
};

service::StatusReply pollUntilTerminal(service::ServiceClient& client, std::uint64_t jobId,
                                       double timeoutSeconds = 60.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeoutSeconds);
  for (;;) {
    const service::StatusReply reply = client.status(jobId);
    if (reply.state != service::JobState::Queued &&
        reply.state != service::JobState::Running) {
      return reply;
    }
    if (std::chrono::steady_clock::now() > deadline) return reply;
    std::this_thread::sleep_for(30ms);
  }
}

bool waitForFile(const fs::path& file, double timeoutSeconds = 30.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeoutSeconds);
  while (!fs::exists(file)) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(10ms);
  }
  return true;
}

TEST(Durability, RestartRecoversFinishedRunningAndQueuedJobsBitwise) {
  const service::JobSpec finishedSpec = makeSpec("sphere", 3, "pc", 5, 10);
  const service::JobSpec interruptedSpec = makeSpec("rosenbrock", 4, "pc", 2026, 80);
  const service::JobSpec queuedSpec = makeSpec("rastrigin", 3, "mn", 42, 15);
  const core::OptimizationResult soloFinished = soloRun(finishedSpec);
  const core::OptimizationResult soloInterrupted = soloRun(interruptedSpec);
  const core::OptimizationResult soloQueued = soloRun(queuedSpec);

  TempDir state;
  std::uint64_t finishedId = 0;
  std::uint64_t interruptedId = 0;
  std::uint64_t queuedId = 0;

  // Incarnation one: one job finishes, one is stopped mid-run right after
  // its first snapshot lands, one never leaves the queue.
  {
    Harness h(100);
    h.opts.stateDir = state.path.string();
    h.opts.checkpointInterval = 3;
    h.opts.maxConcurrentJobs = 1;
    h.start();
    service::ServiceClient client("127.0.0.1", h.comm.port());

    finishedId = client.submit(finishedSpec).jobId;
    ASSERT_EQ(pollUntilTerminal(client, finishedId).state, service::JobState::Done);

    interruptedId = client.submit(interruptedSpec).jobId;
    queuedId = client.submit(queuedSpec).jobId;
    ASSERT_TRUE(waitForFile(state.path / ("job-" + std::to_string(interruptedId) + ".ckpt")))
        << "no snapshot appeared before the stop";
    h.finish();
  }

  // Incarnation two: a fresh daemon + fleet over the same state dir must
  // resume the interrupted job from its snapshot, run the queued one, and
  // still serve the finished one's stored result — all bitwise.
  {
    Harness h(100);
    h.opts.stateDir = state.path.string();
    h.opts.checkpointInterval = 3;
    h.start();
    service::ServiceClient client("127.0.0.1", h.comm.port());

    EXPECT_EQ(pollUntilTerminal(client, interruptedId).state, service::JobState::Done);
    EXPECT_EQ(pollUntilTerminal(client, queuedId).state, service::JobState::Done);

    const service::ResultReply finished = client.fetchResult(finishedId);
    const service::ResultReply interrupted = client.fetchResult(interruptedId);
    const service::ResultReply queued = client.fetchResult(queuedId);
    ASSERT_TRUE(finished.outcome.has_value()) << finished.detail;
    ASSERT_TRUE(interrupted.outcome.has_value()) << interrupted.detail;
    ASSERT_TRUE(queued.outcome.has_value()) << queued.detail;
    expectBitwiseEqual(*finished.outcome, soloFinished);
    expectBitwiseEqual(*interrupted.outcome, soloInterrupted);
    expectBitwiseEqual(*queued.outcome, soloQueued);

    // Job ids stay unique across incarnations: a new submission must not
    // reuse a recovered id's namespace.
    const std::uint64_t freshId = client.submit(makeSpec("sphere", 2, "det", 9, 5)).jobId;
    EXPECT_GT(freshId, queuedId);
    EXPECT_EQ(pollUntilTerminal(client, freshId).state, service::JobState::Done);
  }
}

// ---------------------------------------------------------------------------
// Subprocess chaos: SIGKILL a real `sfopt serve --daemon` process.

struct DaemonProcess {
  pid_t pid = -1;
  fs::path logPath;

  void spawn(const std::vector<std::string>& args, const fs::path& log) {
    logPath = log;
    pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      const int fd = ::open(log.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (fd >= 0) {
        ::dup2(fd, 1);
        ::dup2(fd, 2);
      }
      std::vector<char*> argv;
      std::vector<std::string> storage = args;
      argv.push_back(const_cast<char*>(SFOPT_CLI_PATH));
      for (std::string& a : storage) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(SFOPT_CLI_PATH, argv.data());
      std::_Exit(127);
    }
  }

  /// Parse "listening on 0.0.0.0:<port>" out of the daemon's log.
  std::uint16_t waitForPort(double timeoutSeconds = 20.0) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(timeoutSeconds);
    const std::string needle = "listening on 0.0.0.0:";
    while (std::chrono::steady_clock::now() < deadline) {
      std::ifstream in(logPath);
      std::string text((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
      const std::size_t at = text.find(needle);
      if (at != std::string::npos) {
        const long port = std::strtol(text.c_str() + at + needle.size(), nullptr, 10);
        if (port > 0 && port <= 65535) return static_cast<std::uint16_t>(port);
      }
      std::this_thread::sleep_for(20ms);
    }
    return 0;
  }

  void kill9() {
    if (pid < 0) return;
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    pid = -1;
  }

  void terminate() {
    if (pid < 0) return;
    ::kill(pid, SIGTERM);
    int status = 0;
    ::waitpid(pid, &status, 0);
    pid = -1;
  }

  ~DaemonProcess() { kill9(); }
};

std::unique_ptr<service::ServiceClient> dialDaemon(std::uint16_t port,
                                                   double timeoutSeconds = 15.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeoutSeconds);
  for (;;) {
    try {
      return std::make_unique<service::ServiceClient>("127.0.0.1", port);
    } catch (const std::exception&) {
      if (std::chrono::steady_clock::now() > deadline) throw;
      std::this_thread::sleep_for(100ms);
    }
  }
}

/// Kill the daemon either the instant the job is admitted (journal-only
/// recovery, resume from the initial simplex) or after the first snapshot
/// lands (checkpoint resume) — both continuations must be bitwise clean.
void runKillRestartRound(bool waitForSnapshot) {
  ::unsetenv("SFOPT_DURABLE_TORN_WRITE");
  const service::JobSpec spec = makeSpec("rosenbrock", 4, "pc", 7, 60);
  const core::OptimizationResult solo = soloRun(spec);

  TempDir state;
  TempDir logs;

  DaemonProcess first;
  first.spawn({"serve", "--daemon", "--port", "0", "--state-dir", state.path.string(),
               "--checkpoint-interval", "2"},
              logs.path / "daemon1.log");
  ASSERT_GE(first.pid, 0);
  const std::uint16_t port = first.waitForPort();
  ASSERT_NE(port, 0) << "daemon never announced its port";

  // Workers outlive both daemon incarnations by re-dialing the fixed port.
  std::atomic<bool> stopWorkers{false};
  std::vector<std::thread> workers;
  for (int i = 0; i < 2; ++i) {
    workers.emplace_back([port, &stopWorkers] {
      while (!stopWorkers.load()) {
        try {
          net::TcpWorkerTransport transport("127.0.0.1", port);
          service::ServiceWorker worker(transport, transport.rank());
          worker.run();
        } catch (const std::exception&) {
        }
        std::this_thread::sleep_for(50ms);
      }
    });
  }
  const auto joinWorkers = [&] {
    stopWorkers.store(true);
    for (auto& t : workers) t.join();
  };

  std::uint64_t jobId = 0;
  {
    const std::unique_ptr<service::ServiceClient> client = dialDaemon(port);
    const service::StatusReply ack = client->submit(spec);
    ASSERT_EQ(ack.state, service::JobState::Queued) << ack.detail;
    jobId = ack.jobId;
  }
  if (waitForSnapshot) {
    ASSERT_TRUE(waitForFile(state.path / ("job-" + std::to_string(jobId) + ".ckpt")))
        << "no snapshot before the kill";
  }
  first.kill9();  // no goodbye: clients, workers, and engine threads all die

  DaemonProcess second;
  second.spawn({"serve", "--daemon", "--port", std::to_string(port), "--state-dir",
                state.path.string(), "--checkpoint-interval", "2"},
               logs.path / "daemon2.log");
  ASSERT_GE(second.pid, 0);
  if (second.waitForPort() == 0) {
    joinWorkers();
    FAIL() << "restarted daemon never came up on port " << port;
  }

  {
    const std::unique_ptr<service::ServiceClient> client = dialDaemon(port);
    const service::StatusReply done = pollUntilTerminal(*client, jobId, 90.0);
    EXPECT_EQ(done.state, service::JobState::Done) << done.detail;
    const service::ResultReply result = client->fetchResult(jobId);
    ASSERT_TRUE(result.outcome.has_value()) << result.detail;
    expectBitwiseEqual(*result.outcome, solo);
  }
  second.terminate();
  joinWorkers();
}

TEST(Durability, DaemonSigkilledRightAfterAdmissionRecoversBitwise) {
  runKillRestartRound(/*waitForSnapshot=*/false);
}

TEST(Durability, DaemonSigkilledAfterACheckpointResumesFromItBitwise) {
  runKillRestartRound(/*waitForSnapshot=*/true);
}

// ---------------------------------------------------------------------------
// Chaos: the worker fabric misbehaves mid-job, the result must not move.

TEST(Durability, JobSurvivesChaosPartitionAndDuplicationBitwise) {
  // Both workers dial the daemon through a ChaosProxy that duplicates
  // every worker->master frame for the whole run; mid-job one worker's
  // link is partitioned and later healed.  The master must evict the
  // silenced rank, requeue its in-flight shards onto the survivor, accept
  // the evicted worker back under a fresh rank, discard the duplicated and
  // late frames — and hand the client a result bitwise identical to the
  // solo run.
  const service::JobSpec spec = makeSpec("rosenbrock", 4, "pc", 2026, 80);
  const core::OptimizationResult solo = soloRun(spec);

  net::TcpCommWorld::Options copts;
  copts.heartbeatIntervalSeconds = 0.05;
  copts.heartbeatTimeoutSeconds = 0.6;
  net::TcpCommWorld comm(0, copts);

  net::ChaosSchedule schedule;
  schedule.seed = 2026;
  schedule.events.push_back({0.0, net::ChaosEvent::Kind::Duplicate, net::ChaosDir::Up,
                             0.0, 0.0, 0, -1});
  net::ChaosProxy proxy("127.0.0.1", comm.port(), schedule);

  // CLI-style reconnect loops: a worker whose link dies re-dials the proxy
  // and serves under whatever fresh rank the master assigns.
  std::atomic<bool> stopWorkers{false};
  std::vector<std::thread> workers;
  std::atomic<bool> stop{false};
  std::thread daemon;
  // Wind down on every exit path: a failed ASSERT or a thrown
  // ConnectionLost must surface as a test failure, not as std::terminate
  // from a joinable thread's destructor.
  struct Cleanup {
    std::function<void()> fn;
    ~Cleanup() { fn(); }
  } cleanup{[&] {
    stop.store(true);
    if (daemon.joinable()) daemon.join();
    stopWorkers.store(true);
    for (auto& t : workers) {
      if (t.joinable()) t.join();
    }
  }};
  for (int i = 0; i < 2; ++i) {
    workers.emplace_back([&] {
      while (!stopWorkers.load()) {
        try {
          net::TcpWorkerTransport::Options wopts;
          wopts.heartbeatIntervalSeconds = 0.05;
          wopts.masterTimeoutSeconds = 1.0;
          wopts.handshakeTimeoutSeconds = 1.0;
          net::TcpWorkerTransport transport("127.0.0.1", proxy.port(), wopts);
          service::ServiceWorker worker(transport, transport.rank());
          worker.run();
          break;  // clean shutdown from the service
        } catch (const std::exception&) {
        }
        std::this_thread::sleep_for(30ms);
      }
    });
    (void)comm.waitForWorkers(i + 1, 10.0);
  }

  service::ServiceOptions opts;
  opts.maxJobs = 1;
  opts.pollSeconds = 0.02;
  opts.recvTimeoutSeconds = 30.0;
  daemon = std::thread([&] {
    service::OptimizationService svc(comm, opts);
    (void)svc.run(stop);
  });

  // The client dials the daemon directly — chaos only on the worker fabric.
  service::ServiceClient client("127.0.0.1", comm.port());
  const service::StatusReply ack = client.submit(spec);
  ASSERT_EQ(ack.state, service::JobState::Queued);

  // Mid-job: partition the first worker's link, then heal it.  The window
  // must comfortably exceed the master's 0.6s heartbeat timeout: task
  // frames dropped during the partition are only ever recovered by the
  // requeue that eviction triggers, so a heal racing the eviction deadline
  // could strand them in-flight forever.
  std::this_thread::sleep_for(150ms);
  net::ChaosEvent cut;
  cut.kind = net::ChaosEvent::Kind::Partition;
  cut.connIndex = 0;
  proxy.inject(cut);
  std::this_thread::sleep_for(1200ms);
  proxy.heal();

  const service::ResultReply result = client.waitResult(120.0);
  ASSERT_EQ(result.state, service::JobState::Done) << result.detail;
  ASSERT_TRUE(result.outcome.has_value());
  expectBitwiseEqual(*result.outcome, solo);
  EXPECT_GT(proxy.counters().framesDuplicated, 0u);
}

// ---------------------------------------------------------------------------
// Satellites: speculation, priorities, retention.

TEST(Service, SpeculativeDuplicationKeepsResultsBitwise) {
  const service::JobSpec spec = makeSpec("rosenbrock", 4, "pc", 2026, 12);
  const core::OptimizationResult solo = soloRun(spec);

  // Worker 0 drags every task out by 150 ms; with the factor at 2 the
  // driver re-dispatches its shards to the fast worker, whose identical
  // counter-keyed payload wins. The result must not betray any of it.
  Harness h(1, 2, 150ms);
  h.opts.speculativeFactor = 2.0;
  h.start();
  service::ServiceClient client("127.0.0.1", h.comm.port());
  const service::StatusReply ack = client.submit(spec);
  ASSERT_EQ(ack.state, service::JobState::Queued);
  const service::ResultReply result = client.waitResult(90.0);
  ASSERT_EQ(result.state, service::JobState::Done) << result.detail;
  ASSERT_TRUE(result.outcome.has_value());
  expectBitwiseEqual(*result.outcome, solo);
}

TEST(TicketExchange, WeightedDrainIsProportionalAndStarvationFree) {
  service::TicketExchange ex;
  ex.openJob(1, 5);
  ex.openJob(2, 1);
  for (int i = 0; i < 20; ++i) {
    (void)ex.submit(1, mw::MessageBuffer{});
    (void)ex.submit(2, mw::MessageBuffer{});
  }
  const auto batch = ex.drainPending(12);
  ASSERT_EQ(batch.size(), 12u);
  std::size_t high = 0;
  std::size_t low = 0;
  for (const auto& shard : batch) (shard.jobId == 1 ? high : low)++;
  // Two full cycles of 5:1 — proportional share for the high-priority job,
  // but the low-priority job is served every cycle, never starved.
  EXPECT_EQ(high, 10u);
  EXPECT_EQ(low, 2u);
  ex.closeJob(1);
  ex.closeJob(2);
}

TEST(Service, PriorityJobsStayBitwiseIsolated) {
  service::JobSpec urgent = makeSpec("rosenbrock", 4, "pc", 2026, 20);
  urgent.priority = 10;
  service::JobSpec background = makeSpec("sphere", 3, "mn", 99, 20);
  background.priority = 1;
  const core::OptimizationResult soloUrgent = soloRun(urgent);
  const core::OptimizationResult soloBackground = soloRun(background);

  Harness h(2);
  h.start();
  service::ServiceClient clientA("127.0.0.1", h.comm.port());
  service::ServiceClient clientB("127.0.0.1", h.comm.port());
  const service::StatusReply ackA = clientA.submit(urgent);
  const service::StatusReply ackB = clientB.submit(background);
  ASSERT_EQ(ackA.state, service::JobState::Queued);
  ASSERT_EQ(ackB.state, service::JobState::Queued);

  const service::ResultReply resultA = clientA.waitResult(60.0);
  const service::ResultReply resultB = clientB.waitResult(60.0);
  ASSERT_EQ(resultA.state, service::JobState::Done) << resultA.detail;
  ASSERT_EQ(resultB.state, service::JobState::Done) << resultB.detail;
  // Weighted scheduling shifts *when* shards run, never *what* they
  // compute: both neighbours still match their solo runs bitwise.
  expectBitwiseEqual(*resultA.outcome, soloUrgent);
  expectBitwiseEqual(*resultB.outcome, soloBackground);
}

TEST(Service, ResultRetentionEvictsOldestAndStatusSaysSo) {
  Harness h(100);
  h.opts.resultRetention = 1;
  h.start();
  service::ServiceClient client("127.0.0.1", h.comm.port());

  const std::uint64_t first = client.submit(makeSpec("sphere", 2, "det", 1, 5)).jobId;
  ASSERT_EQ(pollUntilTerminal(client, first).state, service::JobState::Done);
  const std::uint64_t second = client.submit(makeSpec("sphere", 2, "det", 2, 5)).jobId;
  ASSERT_EQ(pollUntilTerminal(client, second).state, service::JobState::Done);

  // With the cap at one finished job, the older result must give way.
  service::StatusReply evicted;
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  do {
    evicted = client.status(first);
    std::this_thread::sleep_for(20ms);
  } while (evicted.detail.find("evicted") == std::string::npos &&
           std::chrono::steady_clock::now() < deadline);
  EXPECT_EQ(evicted.state, service::JobState::Done);
  EXPECT_NE(evicted.detail.find("evicted by --result-retention"), std::string::npos)
      << evicted.detail;

  // Fetch over a fresh connection (the `status --result` pattern): the
  // submitting client's parked push for `first` would otherwise shadow
  // the fetch reply.
  service::ServiceClient fetcher("127.0.0.1", h.comm.port());
  const service::ResultReply gone = fetcher.fetchResult(first);
  EXPECT_FALSE(gone.outcome.has_value());
  EXPECT_NE(gone.detail.find("evicted"), std::string::npos) << gone.detail;

  // The younger job's result is untouched.
  const service::ResultReply kept = fetcher.fetchResult(second);
  EXPECT_TRUE(kept.outcome.has_value()) << kept.detail;
}

}  // namespace
