
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mw/comm.cpp" "src/mw/CMakeFiles/sfopt_mw.dir/comm.cpp.o" "gcc" "src/mw/CMakeFiles/sfopt_mw.dir/comm.cpp.o.d"
  "/root/repo/src/mw/machinefile.cpp" "src/mw/CMakeFiles/sfopt_mw.dir/machinefile.cpp.o" "gcc" "src/mw/CMakeFiles/sfopt_mw.dir/machinefile.cpp.o.d"
  "/root/repo/src/mw/message_buffer.cpp" "src/mw/CMakeFiles/sfopt_mw.dir/message_buffer.cpp.o" "gcc" "src/mw/CMakeFiles/sfopt_mw.dir/message_buffer.cpp.o.d"
  "/root/repo/src/mw/mw_driver.cpp" "src/mw/CMakeFiles/sfopt_mw.dir/mw_driver.cpp.o" "gcc" "src/mw/CMakeFiles/sfopt_mw.dir/mw_driver.cpp.o.d"
  "/root/repo/src/mw/parallel_runner.cpp" "src/mw/CMakeFiles/sfopt_mw.dir/parallel_runner.cpp.o" "gcc" "src/mw/CMakeFiles/sfopt_mw.dir/parallel_runner.cpp.o.d"
  "/root/repo/src/mw/sampling_service.cpp" "src/mw/CMakeFiles/sfopt_mw.dir/sampling_service.cpp.o" "gcc" "src/mw/CMakeFiles/sfopt_mw.dir/sampling_service.cpp.o.d"
  "/root/repo/src/mw/vertex_server.cpp" "src/mw/CMakeFiles/sfopt_mw.dir/vertex_server.cpp.o" "gcc" "src/mw/CMakeFiles/sfopt_mw.dir/vertex_server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sfopt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/noise/CMakeFiles/sfopt_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sfopt_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
