#include "mw/machinefile.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace {

using namespace sfopt::mw;

std::vector<ProcessorSlot> slotsFor(int nodes, int perNode) {
  std::ostringstream file;
  for (int n = 0; n < nodes; ++n) {
    for (int s = 0; s < perNode; ++s) file << "node" << n << "\n";
  }
  std::istringstream in(file.str());
  return parseMachinefile(in);
}

TEST(Machinefile, ParsesRepeatedHostEntries) {
  std::istringstream in("alpha\nalpha\nbeta\n\n# comment line\nalpha\n");
  const auto slots = parseMachinefile(in);
  ASSERT_EQ(slots.size(), 4u);
  EXPECT_EQ(slots[0], (ProcessorSlot{"alpha", 0}));
  EXPECT_EQ(slots[1], (ProcessorSlot{"alpha", 1}));
  EXPECT_EQ(slots[2], (ProcessorSlot{"beta", 0}));
  EXPECT_EQ(slots[3], (ProcessorSlot{"alpha", 2}));
}

TEST(Machinefile, EmptyFileRejectedByScheduler) {
  EXPECT_THROW(MachinefileScheduler({}), std::invalid_argument);
}

TEST(Machinefile, PlanCoversTable33Deployment) {
  // d = 20, Ns = 1 needs 70 cores (Table 3.3): 9 nodes x 8 slots = 72.
  MachinefileScheduler sched(slotsFor(9, 8));
  const ProcessorAllocation alloc{20, 1};
  const auto plan = sched.plan(alloc);
  EXPECT_EQ(plan.workers.size(), 23u);
  for (const auto& w : plan.workers) {
    EXPECT_EQ(w.clients.size(), 1u);
  }
  // Master is the very first slot.
  EXPECT_EQ(plan.master, (ProcessorSlot{"node0", 0}));
}

TEST(Machinefile, AssignmentsAreDisjoint) {
  MachinefileScheduler sched(slotsFor(9, 8));
  const auto plan = sched.plan(ProcessorAllocation{20, 1});
  std::vector<ProcessorSlot> used{plan.master};
  for (const auto& w : plan.workers) {
    used.push_back(w.worker);
    used.push_back(w.server);
    for (const auto& c : w.clients) used.push_back(c);
  }
  EXPECT_EQ(used.size(), 70u);  // totalCores for d=20, Ns=1
  for (std::size_t i = 0; i < used.size(); ++i) {
    for (std::size_t j = i + 1; j < used.size(); ++j) {
      EXPECT_FALSE(used[i] == used[j]) << "slots " << i << " and " << j << " collide";
    }
  }
}

TEST(Machinefile, WorkersPrecedeServersInFileOrder) {
  // The paper's ordering: master, then all workers, then the client-server
  // blocks from the next available entries.
  MachinefileScheduler sched(slotsFor(4, 8));  // 32 slots
  const auto plan = sched.plan(ProcessorAllocation{2, 2});  // 2d+7+2Ns+dNs... = 21
  // Workers occupy slots 1..5 (d+3 = 5 of them).
  EXPECT_EQ(plan.workers[0].worker, (ProcessorSlot{"node0", 1}));
  EXPECT_EQ(plan.workers[4].worker, (ProcessorSlot{"node0", 5}));
  // First server comes after all workers.
  EXPECT_EQ(plan.workers[0].server, (ProcessorSlot{"node0", 6}));
}

TEST(Machinefile, InsufficientSlotsThrow) {
  MachinefileScheduler sched(slotsFor(1, 8));
  EXPECT_THROW((void)sched.plan(ProcessorAllocation{20, 1}), std::runtime_error);
}

TEST(Machinefile, RestartReusesTheSameSlots) {
  MachinefileScheduler sched(slotsFor(9, 8));
  const auto plan = sched.plan(ProcessorAllocation{20, 1});
  const auto& original = plan.workers[7];
  const auto& restarted = MachinefileScheduler::restartAssignment(plan, 7);
  EXPECT_EQ(restarted.worker, original.worker);
  EXPECT_EQ(restarted.server, original.server);
  EXPECT_EQ(restarted.clients, original.clients);
  EXPECT_THROW((void)MachinefileScheduler::restartAssignment(plan, 99), std::out_of_range);
}

TEST(Machinefile, MultipleClientsPerWorker) {
  MachinefileScheduler sched(slotsFor(20, 8));  // 160 slots
  const auto plan = sched.plan(ProcessorAllocation{10, 3});
  for (const auto& w : plan.workers) {
    EXPECT_EQ(w.clients.size(), 3u);
  }
}

}  // namespace
