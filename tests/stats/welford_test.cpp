#include "stats/welford.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>
#include <vector>

namespace {

using sfopt::stats::Welford;

TEST(Welford, EmptyStateHasInfiniteVariance) {
  Welford w;
  EXPECT_EQ(w.count(), 0);
  EXPECT_EQ(w.mean(), 0.0);
  EXPECT_TRUE(std::isinf(w.variance()));
  EXPECT_TRUE(std::isinf(w.standardError()));
}

TEST(Welford, SingleObservationHasInfiniteVariance) {
  Welford w;
  w.add(3.5);
  EXPECT_EQ(w.count(), 1);
  EXPECT_DOUBLE_EQ(w.mean(), 3.5);
  EXPECT_TRUE(std::isinf(w.variance()));
}

TEST(Welford, TwoObservations) {
  Welford w;
  w.add(1.0);
  w.add(3.0);
  EXPECT_DOUBLE_EQ(w.mean(), 2.0);
  EXPECT_DOUBLE_EQ(w.variance(), 2.0);  // ((1-2)^2 + (3-2)^2) / (2-1)
  EXPECT_DOUBLE_EQ(w.standardError(), 1.0);
}

TEST(Welford, MatchesTwoPassComputation) {
  std::mt19937_64 gen(42);
  std::normal_distribution<double> dist(5.0, 2.0);
  std::vector<double> xs(1000);
  for (double& x : xs) x = dist(gen);

  Welford w;
  for (double x : xs) w.add(x);

  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);

  EXPECT_NEAR(w.mean(), mean, 1e-12);
  EXPECT_NEAR(w.variance(), var, 1e-9);
}

TEST(Welford, MergeEquivalentToSequential) {
  std::mt19937_64 gen(7);
  std::uniform_real_distribution<double> dist(-10.0, 10.0);
  Welford whole;
  Welford a;
  Welford b;
  for (int i = 0; i < 500; ++i) {
    const double x = dist(gen);
    whole.add(x);
    (i % 3 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
}

TEST(Welford, MergeWithEmptyIsIdentity) {
  Welford a;
  a.add(1.0);
  a.add(2.0);
  Welford empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);

  Welford c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2);
  EXPECT_DOUBLE_EQ(c.mean(), 1.5);
}

TEST(Welford, StandardErrorShrinksWithSampleSize) {
  std::mt19937_64 gen(13);
  std::normal_distribution<double> dist(0.0, 1.0);
  Welford w;
  for (int i = 0; i < 100; ++i) w.add(dist(gen));
  const double se100 = w.standardError();
  for (int i = 0; i < 9900; ++i) w.add(dist(gen));
  const double se10000 = w.standardError();
  // SE should shrink roughly as sqrt(n) — a factor of ~10 here.
  EXPECT_LT(se10000, se100 * 0.2);
}

TEST(Welford, ResetClearsState) {
  Welford w;
  w.add(5.0);
  w.add(6.0);
  w.reset();
  EXPECT_EQ(w.count(), 0);
  EXPECT_EQ(w.mean(), 0.0);
}

TEST(Welford, NumericallyStableAroundLargeOffset) {
  // Classic catastrophic-cancellation scenario for naive sum-of-squares.
  Welford w;
  const double offset = 1e9;
  w.add(offset + 1.0);
  w.add(offset + 2.0);
  w.add(offset + 3.0);
  EXPECT_NEAR(w.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(w.variance(), 1.0, 1e-6);
}

}  // namespace
