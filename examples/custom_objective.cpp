// Define your own stochastic objective and configure a run the way the
// paper's software does (section 4.2): through an $OPTROOT directory tree
// holding the simplex input file, the systems to simulate, and the
// property targets/weights.
//
// The "simulation" here is a cheap synthetic model — a damped oscillator
// whose two observable properties (period, amplitude decay) depend on the
// two parameters under fit — but the plumbing is the real thing: the tree
// is written to disk, parsed back, and drives the optimization.

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "config/optroot.hpp"
#include "core/algorithms.hpp"
#include "noise/noisy_function.hpp"

int main() {
  using namespace sfopt;
  namespace fs = std::filesystem;

  // --- 1. Author the $OPTROOT tree (normally the user writes this). ----
  const fs::path root = fs::temp_directory_path() / "sfopt_example_optroot";
  fs::remove_all(root);
  config::OptRoot tree;
  tree.parameterNames = {"stiffness", "damping"};
  tree.initialPoints = {{2.0, 0.1}, {5.0, 0.8}, {1.0, 0.5},
                        {4.0, 0.2}, {3.0, 0.6}};  // d+3 rows as the paper prescribes
  tree.systems = {config::SystemSpec{"oscillator", {".", "production"}}};
  tree.properties = {config::PropertySpec{"prop_period", 2.0, 1.0, true},
                     config::PropertySpec{"prop_decay", 0.25, 2.0, true}};
  config::writeOptRoot(root, tree);

  // --- 2. Load it back, as the optimization program would at startup. --
  const config::OptRoot loaded = config::loadOptRoot(root);
  std::printf("$OPTROOT = %s\n", loaded.root.string().c_str());
  std::printf("parameters:");
  for (const auto& n : loaded.parameterNames) std::printf(" %s", n.c_str());
  std::printf("  (d = %zu)\n", loaded.dimension());
  std::printf("systems: %zu, run scripts: %zu (= processors the PBS wrapper requests)\n",
              loaded.systems.size(), loaded.runScriptCount());

  // --- 3. Build the cost function from the loaded targets/weights. -----
  // Properties of the model: period = 2*pi/sqrt(k), decay = c / 2.
  auto cost = [&](std::span<const double> x) {
    const double k = x[0];
    const double c = x[1];
    const double period = 2.0 * std::numbers::pi / std::sqrt(std::max(k, 1e-6));
    const double decay = c / 2.0;
    double g = 0.0;
    for (const auto& p : loaded.properties) {
      // Match computed values to properties by name: loadOptRoot returns
      // them in filename order, not authoring order.
      const double value = p.name == "prop_period" ? period : decay;
      const double rel = (value - p.target) / p.target;
      g += p.weight * p.weight * rel * rel;  // eq. 3.4
    }
    return g;
  };
  noise::NoisyFunction::Options noiseOpts;
  noiseOpts.sigma0 = 0.05;
  noise::NoisyFunction objective(loaded.dimension(), cost, noiseOpts);

  // --- 4. Optimize from the tree's initial simplex (first d+1 rows). ---
  const std::vector<core::Point> start(loaded.initialPoints.begin(),
                                       loaded.initialPoints.begin() +
                                           static_cast<long>(loaded.dimension()) + 1);
  core::MaxNoiseOptions options;
  options.common.termination.tolerance = 1e-4;
  options.common.termination.maxIterations = 300;
  options.common.termination.maxSamples = 2'000'000;
  const auto result = core::runMaxNoise(objective, start, options);

  std::printf("\noptimized: stiffness = %.4f, damping = %.4f (%lld steps, %s)\n",
              result.best[0], result.best[1], static_cast<long long>(result.iterations),
              toString(result.reason).data());
  std::printf("targets:   period %.3f (want 2.0), decay %.3f (want 0.25)\n",
              2.0 * std::numbers::pi / std::sqrt(result.best[0]), result.best[1] / 2.0);
  // Exact solution: k = (2 pi / 2)^2 = pi^2 ~ 9.87, c = 0.5.
  std::printf("exact:     stiffness = %.4f, damping = %.4f\n", std::numbers::pi * std::numbers::pi,
              0.5);
  fs::remove_all(root);
  return 0;
}
