#include "core/point.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace sfopt::core {

namespace {
void requireSameDim(std::span<const double> a, std::span<const double> b, const char* what) {
  if (a.size() != b.size()) {
    throw std::invalid_argument(std::string(what) + ": dimension mismatch");
  }
}
}  // namespace

Point add(std::span<const double> a, std::span<const double> b) {
  requireSameDim(a, b, "add");
  Point r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] + b[i];
  return r;
}

Point subtract(std::span<const double> a, std::span<const double> b) {
  requireSameDim(a, b, "subtract");
  Point r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] - b[i];
  return r;
}

Point scale(std::span<const double> a, double s) {
  Point r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = s * a[i];
  return r;
}

Point affineCombine(double alpha, std::span<const double> a, double beta,
                    std::span<const double> b) {
  requireSameDim(a, b, "affineCombine");
  Point r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = alpha * a[i] + beta * b[i];
  return r;
}

Point centroid(std::span<const Point> points) {
  if (points.empty()) throw std::invalid_argument("centroid: no points");
  const std::size_t d = points.front().size();
  Point c(d, 0.0);
  for (const Point& p : points) {
    if (p.size() != d) throw std::invalid_argument("centroid: dimension mismatch");
    for (std::size_t i = 0; i < d; ++i) c[i] += p[i];
  }
  const double inv = 1.0 / static_cast<double>(points.size());
  for (double& v : c) v *= inv;
  return c;
}

double chebyshevDistance(std::span<const double> a, std::span<const double> b) {
  requireSameDim(a, b, "chebyshevDistance");
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a[i] - b[i]));
  }
  return m;
}

std::string toString(std::span<const double> p, int precision) {
  std::ostringstream out;
  out.precision(precision);
  out << "(";
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (i != 0) out << ", ";
    out << p[i];
  }
  out << ")";
  return out.str();
}

}  // namespace sfopt::core
