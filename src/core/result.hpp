#pragma once

#include <cstdint>
#include <optional>

#include "core/point.hpp"
#include "core/termination.hpp"
#include "core/trace.hpp"

namespace sfopt::core {

/// Per-run counters of algorithmic events; benches report these and the
/// condition-ablation studies compare them across variants.
struct MoveCounters {
  std::int64_t reflections = 0;
  std::int64_t expansions = 0;
  std::int64_t contractions = 0;
  std::int64_t collapses = 0;
  /// MN/Anderson: rounds the wait-gate demanded extra sampling.
  std::int64_t gateWaitRounds = 0;
  /// PC: rounds an unresolved confidence comparison demanded resampling.
  std::int64_t resampleRounds = 0;
  /// Comparisons forcibly resolved at the per-vertex sample cap.
  std::int64_t forcedResolutions = 0;
};

/// Outcome of one optimization run.
struct OptimizationResult {
  Point best;                        ///< location of the lowest vertex at stop
  double bestEstimate = 0.0;         ///< its sampled mean value
  std::optional<double> bestTrue;    ///< noise-free f there, if known
  std::int64_t iterations = 0;       ///< N, simplex steps taken
  double elapsedTime = 0.0;          ///< simulated seconds consumed
  std::int64_t totalSamples = 0;     ///< objective samples consumed
  TerminationReason reason = TerminationReason::Converged;
  MoveCounters counters;
  OptimizationTrace trace;           ///< populated when tracing is enabled
};

}  // namespace sfopt::core
