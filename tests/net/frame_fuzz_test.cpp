#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <random>
#include <vector>

#include "net/frame.hpp"

namespace {

using namespace sfopt::net;

/// A deterministic stream of valid frames covering every frame type,
/// including the service's Job* control frames.
std::vector<std::byte> validStream(std::mt19937_64& rng) {
  std::vector<std::byte> wire;
  const auto payload = [&rng](std::size_t n) {
    std::vector<std::byte> p(n);
    for (auto& b : p) b = static_cast<std::byte>(rng() & 0xFF);
    return p;
  };
  appendFrame(wire, makeHelloFrame());
  appendFrame(wire, makeHelloFrame(kPeerClient));
  appendFrame(wire, makeWelcomeFrame(3, 5));
  appendFrame(wire, makeHeartbeatFrame(12.5));
  appendFrame(wire, makeMessageFrame(7, payload(24), 0x123456789ULL, 42));
  appendFrame(wire, makeJobFrame(FrameType::JobSubmit, payload(48)));
  appendFrame(wire, makeJobFrame(FrameType::JobStatus, payload(8)));
  appendFrame(wire, makeJobFrame(FrameType::JobCancel, payload(8)));
  appendFrame(wire, makeJobFrame(FrameType::JobResult, payload(96)));
  TelemetrySnapshot snap;
  snap.workerNow = 1.0;
  snap.tasksExecuted = 9;
  appendFrame(wire, makeTelemetryFrame(snap));
  return wire;
}

std::size_t drain(FrameDecoder& decoder) {
  std::size_t n = 0;
  while (decoder.next()) ++n;
  return n;
}

TEST(FrameFuzz, EveryTruncationEitherWaitsOrFailsCleanly) {
  std::mt19937_64 rng(0xF00DULL);
  const std::vector<std::byte> wire = validStream(rng);
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    FrameDecoder decoder;
    decoder.feed(wire.data(), cut);
    // A truncated prefix of a valid stream is never malformed — the
    // decoder must park on the partial frame and ask for more bytes, not
    // throw and not over-read past the fed prefix.
    std::size_t frames = 0;
    EXPECT_NO_THROW(frames = drain(decoder)) << "cut at byte " << cut;
    EXPECT_EQ(decoder.decodeErrors(), 0u) << "cut at byte " << cut;
    EXPECT_LE(decoder.buffered(), cut);
    // Feeding the remainder always completes the stream exactly.
    decoder.feed(wire.data() + cut, wire.size() - cut);
    EXPECT_EQ(frames + drain(decoder), 10u) << "cut at byte " << cut;
    EXPECT_EQ(decoder.buffered(), 0u);
  }
}

TEST(FrameFuzz, RandomBitFlipsNeverCrashAndCountDecodeErrors) {
  std::mt19937_64 rng(0xBEEFULL);
  const std::vector<std::byte> wire = validStream(rng);
  std::uint64_t rejected = 0;
  std::uint64_t decoded = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::byte> fuzzed = wire;
    // Flip 1-4 random bits anywhere in the stream.
    const int flips = 1 + static_cast<int>(rng() % 4);
    for (int f = 0; f < flips; ++f) {
      const std::size_t bit = rng() % (fuzzed.size() * 8);
      fuzzed[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
    }
    FrameDecoder decoder;
    decoder.feed(fuzzed.data(), fuzzed.size());
    const std::uint64_t before = decoder.decodeErrors();
    try {
      while (decoder.next()) ++decoded;
    } catch (const ProtocolError&) {
      ++rejected;
      // Exactly one throw per rejection, mirrored in the counter; the
      // stream is unframeable from here (callers drop the connection).
      EXPECT_EQ(decoder.decodeErrors(), before + 1);
      continue;
    }
    EXPECT_EQ(decoder.decodeErrors(), before);
  }
  // Flips in length prefixes / type bytes must be rejected, flips in
  // payload bytes decode fine — both paths need real coverage.
  EXPECT_GT(rejected, 100u);
  EXPECT_GT(decoded, 1000u);
}

TEST(FrameFuzz, RandomBitFlipsUnderByteWiseFeedingMatchWholeBufferFeeding) {
  std::mt19937_64 rng(0xCAFEULL);
  const std::vector<std::byte> wire = validStream(rng);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::byte> fuzzed = wire;
    const std::size_t bit = rng() % (fuzzed.size() * 8);
    fuzzed[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));

    const auto run = [&fuzzed](std::size_t chunk) {
      FrameDecoder decoder;
      std::size_t frames = 0;
      bool threw = false;
      for (std::size_t at = 0; at < fuzzed.size() && !threw; at += chunk) {
        decoder.feed(fuzzed.data() + at, std::min(chunk, fuzzed.size() - at));
        try {
          while (decoder.next()) ++frames;
        } catch (const ProtocolError&) {
          threw = true;
        }
      }
      return std::pair<std::size_t, bool>(frames, threw);
    };
    // Kernel segmentation must not change what decodes: 1-byte feeding and
    // whole-buffer feeding agree on both frame count and verdict.
    EXPECT_EQ(run(1), run(fuzzed.size())) << "bit " << bit;
  }
}

TEST(FrameFuzz, RandomGarbageIsRejectedNotTrusted) {
  std::mt19937_64 rng(0xDEADULL);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::byte> garbage(16 + rng() % 256);
    for (auto& b : garbage) b = static_cast<std::byte>(rng() & 0xFF);
    FrameDecoder decoder;
    decoder.feed(garbage.data(), garbage.size());
    try {
      while (decoder.next()) {
      }
      // Rarely, random bytes happen to spell a well-formed stream prefix;
      // the decoder just waits for more. That is fine — no crash, no lie.
    } catch (const ProtocolError&) {
      EXPECT_GE(decoder.decodeErrors(), 1u);
    }
  }
}

TEST(FrameFuzz, OversizeLengthPrefixFailsFastWithoutAllocating) {
  // 64 MiB default cap: a hostile length prefix is rejected at the header,
  // not trusted into a giant allocation.
  std::vector<std::byte> wire;
  const std::uint32_t huge = 0x7FFFFFFFu;
  for (int i = 0; i < 4; ++i) {
    wire.push_back(static_cast<std::byte>((huge >> (8 * i)) & 0xFF));
  }
  wire.push_back(static_cast<std::byte>(FrameType::Message));
  FrameDecoder decoder;
  decoder.feed(wire.data(), wire.size());
  EXPECT_THROW((void)decoder.next(), ProtocolError);
  EXPECT_EQ(decoder.decodeErrors(), 1u);
}

}  // namespace
