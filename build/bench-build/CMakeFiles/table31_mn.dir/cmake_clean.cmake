file(REMOVE_RECURSE
  "../bench/table31_mn"
  "../bench/table31_mn.pdb"
  "CMakeFiles/table31_mn.dir/table31_mn.cpp.o"
  "CMakeFiles/table31_mn.dir/table31_mn.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table31_mn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
