#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "stats/welford.hpp"

namespace sfopt::core {

/// Where the raw objective samples are computed.
///
/// The default (no backend) computes samples inline on the calling thread.
/// The master-worker runtime (src/mw) provides a backend that ships each
/// batch to a worker process and returns the worker's partial Welford
/// state.  Because every sample is keyed by (vertexId, sampleIndex) through
/// the counter-based RNG, the merged estimate is bitwise identical no
/// matter which backend computed it or in which order — the property the
/// integration tests pin down.
class SamplingBackend {
 public:
  struct BatchRequest {
    std::span<const double> x;      ///< evaluation point
    std::uint64_t vertexId = 0;     ///< noise-stream id
    std::uint64_t startIndex = 0;   ///< first sample index in the batch
    std::int64_t count = 0;         ///< number of samples to draw
  };

  virtual ~SamplingBackend() = default;

  /// Compute one batch and return its accumulated partial statistics.
  [[nodiscard]] virtual stats::Welford sampleBatch(const BatchRequest& request) = 0;

  /// Compute several batches, potentially concurrently; results are
  /// returned in request order.  The default implementation loops.
  [[nodiscard]] virtual std::vector<stats::Welford> sampleBatches(
      std::span<const BatchRequest> requests) {
    std::vector<stats::Welford> out;
    out.reserve(requests.size());
    for (const BatchRequest& r : requests) out.push_back(sampleBatch(r));
    return out;
  }
};

}  // namespace sfopt::core
