#include "core/checkpoint.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/crc32.hpp"

namespace sfopt::core {

namespace {

constexpr const char* kMagic = "sfopt-checkpoint";
constexpr int kVersion = 2;

/// Hard caps on the parsed geometry so a hostile header cannot make the
/// reader reserve unbounded memory before the vertex lines disprove it.
constexpr std::size_t kMaxVertices = 100000;
constexpr std::size_t kMaxDim = 100000;
constexpr std::size_t kMaxCoordinates = 10000000;

/// The whole checkpoint is read into memory to verify the checksum; cap
/// it so a hostile stream cannot balloon the process first.
constexpr std::size_t kMaxCheckpointBytes = 64ull << 20;

/// "crc " + 8 hex digits + newline.
constexpr std::size_t kCrcLineBytes = 4 + 8 + 1;

std::string readAllBounded(std::istream& in) {
  std::string data;
  char buf[65536];
  for (;;) {
    in.read(buf, sizeof(buf));
    const auto got = static_cast<std::size_t>(in.gcount());
    data.append(buf, got);
    if (data.size() > kMaxCheckpointBytes) {
      throw std::runtime_error("readCheckpoint: input exceeds the 64 MiB checkpoint cap");
    }
    if (got < sizeof(buf)) break;
  }
  return data;
}

/// Read one whitespace token and parse it as a double via strtod — the
/// portable way to round-trip hexfloat (istream hexfloat extraction is
/// unreliable across standard libraries).
double readDouble(std::istream& in) {
  std::string tok;
  if (!(in >> tok)) throw std::runtime_error("readCheckpoint: missing number");
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    throw std::runtime_error("readCheckpoint: malformed number '" + tok + "'");
  }
  return v;
}

/// Extract one integer, failing loudly on garbage, overflow, or EOF
/// instead of leaving a default-initialized field behind.
template <typename T>
T readInt(std::istream& in, const char* what) {
  T v{};
  if (!(in >> v)) {
    throw std::runtime_error(std::string("readCheckpoint: malformed or missing ") + what);
  }
  return v;
}

void expectToken(std::istream& in, const char* token) {
  std::string got;
  if (!(in >> got) || got != token) {
    throw std::runtime_error(std::string("readCheckpoint: expected '") + token + "', got '" +
                             got + "'");
  }
}

}  // namespace

void writeCheckpoint(std::ostream& out, const SimplexCheckpoint& cp) {
  std::ostringstream body;
  body << kMagic << " v" << kVersion << "\n";
  body << std::hexfloat;
  body << "iteration " << cp.iteration << "\n";
  body << "clock " << cp.clock << "\n";
  body << "totalSamples " << cp.totalSamples << "\n";
  body << "nextVertexId " << cp.nextVertexId << "\n";
  body << "contractionLevel " << cp.contractionLevel << "\n";
  const MoveCounters& c = cp.counters;
  body << "counters " << c.reflections << " " << c.expansions << " " << c.contractions << " "
       << c.collapses << " " << c.gateWaitRounds << " " << c.resampleRounds << " "
       << c.forcedResolutions << "\n";
  const std::size_t dim = cp.vertices.empty() ? 0 : cp.vertices.front().x.size();
  body << "vertices " << cp.vertices.size() << " dim " << dim << "\n";
  for (const VertexCheckpoint& v : cp.vertices) {
    if (v.x.size() != dim) {
      throw std::invalid_argument("writeCheckpoint: inconsistent vertex dimensions");
    }
    body << v.id << " " << v.samples << " " << v.mean << " " << v.m2;
    for (double coord : v.x) body << " " << coord;
    body << "\n";
  }
  const std::string text = body.str();
  char crcLine[kCrcLineBytes + 1];
  std::snprintf(crcLine, sizeof(crcLine), "crc %08x\n", crc32(text.data(), text.size()));
  out << text << crcLine;
}

SimplexCheckpoint readCheckpoint(std::istream& in) {
  const std::string data = readAllBounded(in);

  // Identify the format before anything else so the errors stay specific:
  // wrong magic means "not ours", wrong version means "ours, but from a
  // different build" — both clearer than a bare checksum failure.
  {
    std::istringstream head(data);
    std::string magic;
    std::string version;
    if (!(head >> magic >> version) || magic != kMagic) {
      throw std::runtime_error("readCheckpoint: not an sfopt checkpoint");
    }
    if (version != "v" + std::to_string(kVersion)) {
      throw std::runtime_error("readCheckpoint: unsupported checkpoint version '" + version +
                               "' (this build reads v" + std::to_string(kVersion) + ")");
    }
  }

  // The trailing "crc XXXXXXXX\n" line guards every byte before it; a
  // truncated, bit-flipped, or tampered checkpoint fails closed here.
  if (data.size() < kCrcLineBytes || data.back() != '\n') {
    throw std::runtime_error("readCheckpoint: missing checksum line (truncated checkpoint)");
  }
  const std::size_t bodyBytes = data.size() - kCrcLineBytes;
  if (data.compare(bodyBytes, 4, "crc ") != 0 ||
      (bodyBytes > 0 && data[bodyBytes - 1] != '\n')) {
    throw std::runtime_error("readCheckpoint: missing checksum line (truncated checkpoint)");
  }
  std::uint32_t stored = 0;
  for (std::size_t i = bodyBytes + 4; i < data.size() - 1; ++i) {
    const char ch = data[i];
    std::uint32_t digit = 0;
    if (ch >= '0' && ch <= '9') {
      digit = static_cast<std::uint32_t>(ch - '0');
    } else if (ch >= 'a' && ch <= 'f') {
      digit = static_cast<std::uint32_t>(ch - 'a') + 10;
    } else {
      throw std::runtime_error("readCheckpoint: malformed checksum line");
    }
    stored = (stored << 4) | digit;
  }
  if (stored != crc32(data.data(), bodyBytes)) {
    throw std::runtime_error("readCheckpoint: checksum mismatch (truncated or corrupt checkpoint)");
  }

  std::istringstream body(data.substr(0, bodyBytes));
  std::string magic;
  std::string version;
  body >> magic >> version;

  SimplexCheckpoint cp;
  expectToken(body, "iteration");
  cp.iteration = readInt<std::int64_t>(body, "iteration");
  expectToken(body, "clock");
  cp.clock = readDouble(body);
  expectToken(body, "totalSamples");
  cp.totalSamples = readInt<std::int64_t>(body, "totalSamples");
  expectToken(body, "nextVertexId");
  cp.nextVertexId = readInt<std::uint64_t>(body, "nextVertexId");
  expectToken(body, "contractionLevel");
  cp.contractionLevel = readInt<int>(body, "contractionLevel");
  expectToken(body, "counters");
  MoveCounters& c = cp.counters;
  c.reflections = readInt<std::int64_t>(body, "counters");
  c.expansions = readInt<std::int64_t>(body, "counters");
  c.contractions = readInt<std::int64_t>(body, "counters");
  c.collapses = readInt<std::int64_t>(body, "counters");
  c.gateWaitRounds = readInt<std::int64_t>(body, "counters");
  c.resampleRounds = readInt<std::int64_t>(body, "counters");
  c.forcedResolutions = readInt<std::int64_t>(body, "counters");
  expectToken(body, "vertices");
  const auto count = readInt<std::size_t>(body, "vertex count");
  expectToken(body, "dim");
  const auto dim = readInt<std::size_t>(body, "dimension");
  if (count > kMaxVertices || dim > kMaxDim ||
      (dim != 0 && count > kMaxCoordinates / dim)) {
    throw std::runtime_error("readCheckpoint: implausible simplex geometry (" +
                             std::to_string(count) + " vertices of dim " +
                             std::to_string(dim) + ")");
  }
  cp.vertices.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    VertexCheckpoint v;
    v.id = readInt<std::uint64_t>(body, "vertex id");
    v.samples = readInt<std::int64_t>(body, "vertex sample count");
    if (v.samples < 0) {
      throw std::runtime_error("readCheckpoint: negative vertex sample count");
    }
    v.mean = readDouble(body);
    v.m2 = readDouble(body);
    v.x.resize(dim);
    for (double& coord : v.x) coord = readDouble(body);
    cp.vertices.push_back(std::move(v));
  }
  std::string trailing;
  if (body >> trailing) {
    throw std::runtime_error("readCheckpoint: trailing garbage after the last vertex");
  }
  return cp;
}

void saveCheckpoint(const std::filesystem::path& file, const SimplexCheckpoint& cp) {
  std::ofstream out(file, std::ios::trunc);
  if (!out) throw std::runtime_error("saveCheckpoint: cannot open " + file.string());
  writeCheckpoint(out, cp);
  if (!out) throw std::runtime_error("saveCheckpoint: write failed for " + file.string());
}

SimplexCheckpoint loadCheckpoint(const std::filesystem::path& file) {
  std::ifstream in(file);
  if (!in) throw std::runtime_error("loadCheckpoint: cannot open " + file.string());
  return readCheckpoint(in);
}

}  // namespace sfopt::core
