#pragma once

#include <stdexcept>

namespace sfopt::noise {

/// Simulated wall-clock.
///
/// The paper tunes its noise amplitude so that real simplex updates take
/// ~10^4 wall seconds; reproducing that literally is pointless.  Instead
/// every sample of the objective carries a *simulated* duration, and all
/// time axes (Fig 3.4, Fig 3.18) are expressed in these simulated seconds.
/// Concurrency is modeled explicitly: when the d+3 workers sample their
/// vertices simultaneously, the caller advances the clock by the *maximum*
/// of the per-worker durations, not the sum (see SamplingContext).
class VirtualClock {
 public:
  [[nodiscard]] double now() const noexcept { return now_; }

  /// Advance by dt simulated seconds.  dt must be non-negative.
  void advance(double dt) {
    if (dt < 0.0) throw std::invalid_argument("VirtualClock::advance: negative dt");
    now_ += dt;
  }

  void reset() noexcept { now_ = 0.0; }

 private:
  double now_ = 0.0;
};

}  // namespace sfopt::noise
