#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "core/sampling_backend.hpp"
#include "noise/stochastic_objective.hpp"
#include "stats/welford.hpp"

namespace sfopt::mw {

/// The vertex-level tier of the paper's architecture (section 4.3): each
/// MW worker is paired with a *server* that coordinates Ns *client*
/// processes, each running one sampling simulation.  "Each vertex has one
/// server process running and Ns client processes ... the server process
/// communicates with the client processes and coordinates the start and
/// end of each simulation."
///
/// Here clients are persistent threads fed through a small work queue;
/// a sampling batch is split into Ns contiguous index ranges so results
/// are independent of scheduling (counter-based RNG keys).
class VertexServer {
 public:
  VertexServer(const noise::StochasticObjective& objective, int clients);
  ~VertexServer();

  VertexServer(const VertexServer&) = delete;
  VertexServer& operator=(const VertexServer&) = delete;

  /// Run one sampling batch across the client pool and merge the partial
  /// statistics.  Blocking; safe to call repeatedly.
  [[nodiscard]] stats::Welford runBatch(const core::SamplingBackend::BatchRequest& request);

  /// Run one sampling batch and return its canonical per-chunk moments
  /// (see core::kEvalChunkSamples): whole chunks are handed out
  /// contiguously across the Ns clients, so chunk j is always the same
  /// 64-sample add-stream no matter how many clients computed the batch —
  /// the master's canonical chunk fold is then bitwise independent of
  /// every deployment knob.  Blocking; safe to call repeatedly.
  [[nodiscard]] std::vector<stats::Welford> runBatchChunks(
      const core::SamplingBackend::BatchRequest& request);

  [[nodiscard]] int clientCount() const noexcept { return static_cast<int>(clients_.size()); }

  /// Total samples computed by each client (diagnostics / load balance).
  [[nodiscard]] std::vector<std::int64_t> clientSampleCounts() const;

 private:
  struct ClientJob {
    std::vector<double> x;
    std::uint64_t vertexId = 0;
    std::uint64_t startIndex = 0;
    std::int64_t count = 0;
    /// Chunked batches report per-chunk moments instead of one partial;
    /// startIndex is chunk-aligned relative to the batch by construction.
    bool chunked = false;
  };

  void clientLoop(std::size_t clientIndex);

  const noise::StochasticObjective& objective_;

  mutable std::mutex mutex_;
  std::condition_variable jobReady_;
  std::condition_variable jobDone_;
  // One job slot per client per batch; generation counter sequences batches.
  std::vector<ClientJob> jobs_;
  std::vector<stats::Welford> partials_;
  std::vector<std::vector<stats::Welford>> partialChunks_;
  std::vector<std::int64_t> clientSamples_;
  std::uint64_t generation_ = 0;
  std::vector<std::uint64_t> clientGeneration_;
  int remaining_ = 0;
  bool stopping_ = false;

  std::vector<std::thread> clients_;
};

}  // namespace sfopt::mw
