#include "net/frame.hpp"

#include <cstring>
#include <string>

namespace sfopt::net {

namespace {

void putU16(std::vector<std::byte>& out, std::uint16_t v) {
  out.push_back(static_cast<std::byte>(v & 0xFF));
  out.push_back(static_cast<std::byte>((v >> 8) & 0xFF));
}

void putU32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
}

void putU64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
}

void putF64(std::vector<std::byte>& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  putU64(out, bits);
}

std::uint16_t getU16(const std::byte* p) {
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(p[0]) |
                                    (static_cast<std::uint16_t>(p[1]) << 8));
}

std::uint32_t getU32(const std::byte* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t getU64(const std::byte* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

double getF64(const std::byte* p) {
  const std::uint64_t bits = getU64(p);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// Message body layout past the type byte: tag + trace context.
constexpr std::size_t kMessageHeaderBytes = 1 + 4 + 8 + 8;

/// Telemetry body layout past the type byte; see TelemetrySnapshot.
constexpr std::size_t kTelemetryBodyBytes = 1 + 3 * 8 + 2 * 8 + 8 + 4 * 8 + 4;

}  // namespace

Frame makeMessageFrame(int tag, std::vector<std::byte> payload,
                       std::uint64_t traceId, std::uint64_t parentSpan) {
  Frame f;
  f.type = FrameType::Message;
  f.tag = tag;
  f.traceId = traceId;
  f.parentSpan = parentSpan;
  f.payload = std::move(payload);
  return f;
}

Frame makeHeartbeatFrame(double senderTime) {
  Frame f;
  f.type = FrameType::Heartbeat;
  f.senderTime = senderTime;
  return f;
}

Frame makeHelloFrame(std::uint8_t peerKind) {
  Frame f;
  f.type = FrameType::Hello;
  putU32(f.payload, kProtocolMagic);
  putU16(f.payload, kProtocolVersion);
  // Workers keep the original 6-byte body so old masters still accept
  // them; only non-default kinds need the trailing byte.
  if (peerKind != kPeerWorker) f.payload.push_back(static_cast<std::byte>(peerKind));
  return f;
}

Frame makeWelcomeFrame(int rank, int worldSize) {
  Frame f;
  f.type = FrameType::Welcome;
  putU32(f.payload, kProtocolMagic);
  putU16(f.payload, kProtocolVersion);
  putU32(f.payload, static_cast<std::uint32_t>(rank));
  putU32(f.payload, static_cast<std::uint32_t>(worldSize));
  return f;
}

Frame makeJobFrame(FrameType type, std::vector<std::byte> payload) {
  Frame f;
  f.type = type;
  f.payload = std::move(payload);
  return f;
}

Frame makeTelemetryFrame(const TelemetrySnapshot& snap) {
  Frame f;
  f.type = FrameType::Telemetry;
  putF64(f.payload, snap.workerNow);
  putF64(f.payload, snap.echoMasterTime);
  putF64(f.payload, snap.holdSeconds);
  putU64(f.payload, snap.tasksExecuted);
  putU64(f.payload, snap.tasksFailed);
  putF64(f.payload, snap.executeEwmaSeconds);
  putU64(f.payload, snap.bytesIn);
  putU64(f.payload, snap.bytesOut);
  putU64(f.payload, snap.messagesIn);
  putU64(f.payload, snap.messagesOut);
  putU32(f.payload, snap.queueDepth);
  return f;
}

void appendFrame(std::vector<std::byte>& out, const Frame& frame) {
  // Body = type byte + type-specific header + payload.
  std::size_t body = 1 + frame.payload.size();
  if (frame.type == FrameType::Message) body = kMessageHeaderBytes + frame.payload.size();
  if (frame.type == FrameType::Heartbeat) body = 1 + 8;
  putU32(out, static_cast<std::uint32_t>(body));
  out.push_back(static_cast<std::byte>(frame.type));
  if (frame.type == FrameType::Message) {
    putU32(out, static_cast<std::uint32_t>(frame.tag));
    putU64(out, frame.traceId);
    putU64(out, frame.parentSpan);
  }
  if (frame.type == FrameType::Heartbeat) {
    putF64(out, frame.senderTime);
    return;  // heartbeats never carry a payload
  }
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
}

Hello parseHello(const Frame& frame) {
  // 6 bytes = pre-service worker hello; 7 adds the peer-kind byte.
  if (frame.type != FrameType::Hello ||
      (frame.payload.size() != 6 && frame.payload.size() != 7)) {
    throw ProtocolError("handshake: malformed hello frame");
  }
  Hello h;
  h.magic = getU32(frame.payload.data());
  h.version = getU16(frame.payload.data() + 4);
  if (frame.payload.size() == 7) {
    h.peerKind = static_cast<std::uint8_t>(frame.payload[6]);
    if (h.peerKind != kPeerWorker && h.peerKind != kPeerClient) {
      throw ProtocolError("handshake: unknown peer kind " + std::to_string(h.peerKind));
    }
  }
  if (h.magic != kProtocolMagic) {
    throw ProtocolError("handshake: bad protocol magic (not an sfopt peer)");
  }
  if (h.version != kProtocolVersion) {
    throw ProtocolError("handshake: protocol version mismatch (peer v" +
                        std::to_string(h.version) + ", ours v" +
                        std::to_string(kProtocolVersion) + ")");
  }
  return h;
}

Welcome parseWelcome(const Frame& frame) {
  if (frame.type != FrameType::Welcome || frame.payload.size() != 14) {
    throw ProtocolError("handshake: malformed welcome frame");
  }
  Welcome w;
  w.magic = getU32(frame.payload.data());
  w.version = getU16(frame.payload.data() + 4);
  w.rank = static_cast<std::int32_t>(getU32(frame.payload.data() + 6));
  w.worldSize = static_cast<std::int32_t>(getU32(frame.payload.data() + 10));
  if (w.magic != kProtocolMagic) {
    throw ProtocolError("handshake: bad protocol magic (not an sfopt master)");
  }
  if (w.version != kProtocolVersion) {
    throw ProtocolError("handshake: protocol version mismatch (master v" +
                        std::to_string(w.version) + ", ours v" +
                        std::to_string(kProtocolVersion) + ")");
  }
  if (w.rank < 1 || w.worldSize < 2) {
    throw ProtocolError("handshake: master assigned an invalid rank");
  }
  return w;
}

TelemetrySnapshot parseTelemetrySnapshot(const Frame& frame) {
  if (frame.type != FrameType::Telemetry ||
      frame.payload.size() != kTelemetryBodyBytes - 1) {
    throw ProtocolError("telemetry: malformed snapshot frame");
  }
  const std::byte* p = frame.payload.data();
  TelemetrySnapshot s;
  s.workerNow = getF64(p);
  s.echoMasterTime = getF64(p + 8);
  s.holdSeconds = getF64(p + 16);
  s.tasksExecuted = getU64(p + 24);
  s.tasksFailed = getU64(p + 32);
  s.executeEwmaSeconds = getF64(p + 40);
  s.bytesIn = getU64(p + 48);
  s.bytesOut = getU64(p + 56);
  s.messagesIn = getU64(p + 64);
  s.messagesOut = getU64(p + 72);
  s.queueDepth = getU32(p + 80);
  return s;
}

void FrameDecoder::feed(const std::byte* data, std::size_t n) {
  // Compact the consumed prefix before it can dominate the buffer.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

void FrameDecoder::fail(std::string message) {
  ++decodeErrors_;
  throw ProtocolError(std::move(message));
}

std::optional<Frame> FrameDecoder::next() {
  const std::size_t avail = buf_.size() - pos_;
  if (avail < 4) return std::nullopt;
  const std::uint32_t body = getU32(buf_.data() + pos_);
  if (body < 1) fail("frame: empty body");
  if (body > maxFrameBytes_) {
    fail("frame: length prefix " + std::to_string(body) +
         " exceeds the " + std::to_string(maxFrameBytes_) + "-byte limit");
  }
  if (avail < 4 + static_cast<std::size_t>(body)) return std::nullopt;

  const std::byte* p = buf_.data() + pos_ + 4;
  Frame f;
  const auto type = static_cast<std::uint8_t>(p[0]);
  std::size_t consumed = 1;
  switch (type) {
    case static_cast<std::uint8_t>(FrameType::Message): {
      if (body < kMessageHeaderBytes) fail("frame: truncated message header");
      f.type = FrameType::Message;
      f.tag = static_cast<std::int32_t>(getU32(p + 1));
      f.traceId = getU64(p + 5);
      f.parentSpan = getU64(p + 13);
      consumed = kMessageHeaderBytes;
      break;
    }
    case static_cast<std::uint8_t>(FrameType::Heartbeat):
      f.type = FrameType::Heartbeat;
      // v1 heartbeats had an empty body; tolerate them as senderTime 0.
      if (body >= 1 + 8) {
        f.senderTime = getF64(p + 1);
        consumed = 1 + 8;
      }
      break;
    case static_cast<std::uint8_t>(FrameType::Hello):
      f.type = FrameType::Hello;
      break;
    case static_cast<std::uint8_t>(FrameType::Welcome):
      f.type = FrameType::Welcome;
      break;
    case static_cast<std::uint8_t>(FrameType::Telemetry):
      f.type = FrameType::Telemetry;
      break;
    case static_cast<std::uint8_t>(FrameType::JobSubmit):
    case static_cast<std::uint8_t>(FrameType::JobStatus):
    case static_cast<std::uint8_t>(FrameType::JobCancel):
    case static_cast<std::uint8_t>(FrameType::JobResult):
      f.type = static_cast<FrameType>(type);
      break;
    default:
      fail("frame: unknown frame type " + std::to_string(type));
  }
  f.payload.assign(p + consumed, p + body);
  pos_ += 4 + static_cast<std::size_t>(body);
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  }
  return f;
}

}  // namespace sfopt::net
