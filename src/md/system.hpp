#pragma once

#include <cstdint>
#include <vector>

#include "md/periodic_box.hpp"
#include "md/vec3.hpp"
#include "md/water_model.hpp"

namespace sfopt::md {

/// Site indexing: molecule m owns sites 3m (O), 3m+1 (H1), 3m+2 (H2).
inline constexpr int kSitesPerMolecule = 3;

enum class Species : std::uint8_t { Oxygen = 0, Hydrogen = 1 };

/// The full dynamical state of a box of flexible 3-site water.
///
/// Positions are kept *unwrapped* (they drift across periodic images) so
/// that mean-square displacements are trivially correct; the force loop
/// applies minimum image, and wrapped coordinates are derived on demand.
class WaterSystem {
 public:
  WaterSystem(int molecules, PeriodicBox box, WaterParameters params,
              IntramolecularConstants intra, double cutoff);

  [[nodiscard]] int molecules() const noexcept { return molecules_; }
  [[nodiscard]] int sites() const noexcept { return molecules_ * kSitesPerMolecule; }
  [[nodiscard]] const PeriodicBox& box() const noexcept { return box_; }
  [[nodiscard]] const WaterParameters& parameters() const noexcept { return params_; }
  [[nodiscard]] const IntramolecularConstants& intramolecular() const noexcept { return intra_; }
  [[nodiscard]] double cutoff() const noexcept { return cutoff_; }

  [[nodiscard]] Species speciesOf(int site) const noexcept {
    return site % kSitesPerMolecule == 0 ? Species::Oxygen : Species::Hydrogen;
  }
  [[nodiscard]] int moleculeOf(int site) const noexcept { return site / kSitesPerMolecule; }
  [[nodiscard]] double massOf(int site) const noexcept {
    return speciesOf(site) == Species::Oxygen ? kMassO : kMassH;
  }
  /// Site charge: O carries -2 qH, each H carries +qH.
  [[nodiscard]] double chargeOf(int site) const noexcept {
    return speciesOf(site) == Species::Oxygen ? -2.0 * params_.qH : params_.qH;
  }

  std::vector<Vec3> positions;   ///< unwrapped, size sites()
  std::vector<Vec3> velocities;  ///< A/ps
  std::vector<Vec3> forces;      ///< kcal/mol/A

  /// Kinetic energy in kcal/mol (whole box).
  [[nodiscard]] double kineticEnergy() const noexcept;

  /// Instantaneous temperature (K); dof = 3*sites - 3 (COM momentum fixed).
  [[nodiscard]] double temperature() const noexcept;

  /// Remove center-of-mass momentum.
  void zeroMomentum() noexcept;

  /// Draw Maxwell-Boltzmann velocities at T and remove COM drift.
  void thermalizeVelocities(double temperatureK, std::uint64_t seed);

  /// Rescale velocities to exactly the target temperature.
  void rescaleTo(double temperatureK) noexcept;

 private:
  int molecules_;
  PeriodicBox box_;
  WaterParameters params_;
  IntramolecularConstants intra_;
  double cutoff_;
};

/// Build a box of `molecules` waters at the given mass density (g/cm^3),
/// placed on a simple cubic lattice with random orientations, equilibrium
/// internal geometry and Maxwell-Boltzmann velocities at `temperatureK`.
[[nodiscard]] WaterSystem buildWaterLattice(int molecules, double densityGramsPerCc,
                                            double temperatureK, WaterParameters params,
                                            double cutoff, std::uint64_t seed,
                                            IntramolecularConstants intra = {});

}  // namespace sfopt::md
