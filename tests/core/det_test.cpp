#include <gtest/gtest.h>

#include "core/algorithms.hpp"
#include "stats/performance.hpp"
#include "tests/core/test_helpers.hpp"

namespace {

using namespace sfopt;
using core::DetOptions;
using core::runDeterministic;
using core::TerminationReason;

DetOptions quickOptions(std::int64_t maxIter = 2000, double tol = 1e-10) {
  DetOptions o;
  o.common.termination.tolerance = tol;
  o.common.termination.maxIterations = maxIter;
  return o;
}

TEST(Deterministic, ConvergesOnNoiselessSphere) {
  auto obj = test::noisySphere(2, 0.0);
  const auto start = test::simpleStart(2);
  const auto res = runDeterministic(obj, start, quickOptions());
  EXPECT_EQ(res.reason, TerminationReason::Converged);
  ASSERT_TRUE(res.bestTrue.has_value());
  EXPECT_LT(*res.bestTrue, 1e-6);
  EXPECT_LT(stats::euclideanNorm(res.best), 1e-2);
}

TEST(Deterministic, ConvergesOnNoiselessRosenbrock2D) {
  auto obj = test::noisyRosenbrock(2, 0.0);
  const auto start = test::simpleStart(2, -1.5, 0.5);
  const auto res = runDeterministic(obj, start, quickOptions(20000));
  EXPECT_EQ(res.reason, TerminationReason::Converged);
  ASSERT_TRUE(res.bestTrue.has_value());
  EXPECT_LT(*res.bestTrue, 1e-6);
  const auto target = testfunctions::rosenbrockMinimizer(2);
  EXPECT_LT(stats::euclideanDistance(res.best, target), 0.05);
}

TEST(Deterministic, ConvergesOnNoiselessRosenbrock3D) {
  auto obj = test::noisyRosenbrock(3, 0.0);
  const auto start = test::simpleStart(3, -1.0, 0.8);
  const auto res = runDeterministic(obj, start, quickOptions(50000));
  EXPECT_EQ(res.reason, TerminationReason::Converged);
  ASSERT_TRUE(res.bestTrue.has_value());
  EXPECT_LT(*res.bestTrue, 1e-5);
}

TEST(Deterministic, ConvergesOnNoiselessPowell) {
  auto obj = test::noisyPowell(0.0);
  const auto start = test::simpleStart(4, 2.0, 1.0);
  const auto res = runDeterministic(obj, start, quickOptions(50000, 1e-12));
  EXPECT_EQ(res.reason, TerminationReason::Converged);
  ASSERT_TRUE(res.bestTrue.has_value());
  EXPECT_LT(*res.bestTrue, 1e-6);
}

TEST(Deterministic, RespectsIterationLimit) {
  auto obj = test::noisyRosenbrock(2, 0.0);
  const auto start = test::simpleStart(2);
  auto opts = quickOptions(5);
  const auto res = runDeterministic(obj, start, opts);
  EXPECT_EQ(res.reason, TerminationReason::IterationLimit);
  EXPECT_EQ(res.iterations, 5);
}

TEST(Deterministic, RespectsTimeLimit) {
  auto obj = test::noisySphere(2, 1.0);
  const auto start = test::simpleStart(2);
  DetOptions o;
  o.common.termination.tolerance = 0.0;  // disabled
  o.common.termination.maxTime = 50.0;   // simulated seconds
  o.common.termination.maxIterations = 1'000'000;
  const auto res = runDeterministic(obj, start, o);
  EXPECT_EQ(res.reason, TerminationReason::TimeLimit);
  EXPECT_GE(res.elapsedTime, 50.0);
  // DET takes at most ~3 samples per iteration; modest overshoot only.
  EXPECT_LT(res.elapsedTime, 100.0);
}

TEST(Deterministic, RespectsSampleLimit) {
  auto obj = test::noisySphere(2, 1.0);
  const auto start = test::simpleStart(2);
  DetOptions o;
  o.common.termination.tolerance = 0.0;
  o.common.termination.maxSamples = 40;
  o.common.termination.maxIterations = 1'000'000;
  const auto res = runDeterministic(obj, start, o);
  EXPECT_EQ(res.reason, TerminationReason::SampleLimit);
  EXPECT_GE(res.totalSamples, 40);
}

TEST(Deterministic, TraceRecordsEveryIteration) {
  auto obj = test::noisyRosenbrock(2, 0.0);
  const auto start = test::simpleStart(2);
  auto opts = quickOptions(50);
  opts.common.recordTrace = true;
  opts.common.termination.tolerance = 0.0;
  const auto res = runDeterministic(obj, start, opts);
  ASSERT_EQ(static_cast<std::int64_t>(res.trace.size()), res.iterations);
  double lastTime = -1.0;
  std::int64_t lastIter = 0;
  for (const auto& r : res.trace.steps()) {
    EXPECT_GE(r.time, lastTime);
    EXPECT_GT(r.iteration, lastIter);
    lastTime = r.time;
    lastIter = r.iteration;
    ASSERT_TRUE(r.bestTrue.has_value());
  }
}

TEST(Deterministic, MoveCountersSumToIterations) {
  auto obj = test::noisyRosenbrock(2, 0.0);
  const auto start = test::simpleStart(2);
  const auto res = runDeterministic(obj, start, quickOptions(500));
  const auto& c = res.counters;
  EXPECT_EQ(c.reflections + c.expansions + c.contractions + c.collapses, res.iterations);
  EXPECT_EQ(c.gateWaitRounds, 0);   // DET has no gate
  EXPECT_EQ(c.resampleRounds, 0);   // and no resampling
}

TEST(Deterministic, NoisyRunStillTerminates) {
  auto obj = test::noisySphere(2, 100.0);
  const auto start = test::simpleStart(2);
  DetOptions o;
  o.common.termination.tolerance = 1e-8;
  o.common.termination.maxIterations = 300;
  const auto res = runDeterministic(obj, start, o);
  // With heavy noise DET may converge spuriously or hit the cap; either way
  // it must stop and report honestly.
  EXPECT_TRUE(res.reason == TerminationReason::Converged ||
              res.reason == TerminationReason::IterationLimit);
}

TEST(Deterministic, BestEstimateMatchesBestVertex) {
  auto obj = test::noisySphere(3, 0.0);
  const auto start = test::simpleStart(3);
  const auto res = runDeterministic(obj, start, quickOptions());
  ASSERT_TRUE(res.bestTrue.has_value());
  // Noiseless: estimate equals the true value at the best point.
  EXPECT_DOUBLE_EQ(res.bestEstimate, *res.bestTrue);
}

TEST(Deterministic, WrongInitialPointCountThrows) {
  auto obj = test::noisySphere(3, 0.0);
  const auto start = test::simpleStart(2);  // 3 points for a 3-d problem: wrong
  EXPECT_THROW((void)runDeterministic(obj, start, quickOptions()), std::invalid_argument);
}

}  // namespace
