#pragma once

#include <stdexcept>

#include "md/vec3.hpp"

namespace sfopt::md {

/// Cubic periodic simulation cell with minimum-image convention.
class PeriodicBox {
 public:
  explicit PeriodicBox(double edge) : edge_(edge), inv_(1.0 / edge) {
    if (!(edge > 0.0)) throw std::invalid_argument("PeriodicBox: edge must be positive");
  }

  [[nodiscard]] double edge() const noexcept { return edge_; }
  [[nodiscard]] double volume() const noexcept { return edge_ * edge_ * edge_; }

  /// Minimum-image displacement a - b.
  [[nodiscard]] Vec3 minimumImage(const Vec3& a, const Vec3& b) const noexcept {
    Vec3 d = a - b;
    d.x -= edge_ * std::nearbyint(d.x * inv_);
    d.y -= edge_ * std::nearbyint(d.y * inv_);
    d.z -= edge_ * std::nearbyint(d.z * inv_);
    return d;
  }

  /// Wrap a position into [0, edge)^3.
  [[nodiscard]] Vec3 wrap(Vec3 p) const noexcept {
    p.x -= edge_ * std::floor(p.x * inv_);
    p.y -= edge_ * std::floor(p.y * inv_);
    p.z -= edge_ * std::floor(p.z * inv_);
    return p;
  }

 private:
  double edge_;
  double inv_;
};

}  // namespace sfopt::md
