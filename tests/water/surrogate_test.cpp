#include "water/surrogate.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "water/experimental.hpp"

namespace {

using namespace sfopt;
using water::Tip4pSurrogate;

TEST(Surrogate, AnchoredAtPublishedTip4p) {
  Tip4pSurrogate s;
  const auto p = s.properties(md::tip4pPublished());
  const auto ref = water::tip4pReference();
  EXPECT_NEAR(p.internalEnergyKJPerMol, ref.internalEnergyKJPerMol, 1e-9);
  EXPECT_NEAR(p.pressureAtm, ref.pressureAtm, 1e-9);
  EXPECT_NEAR(p.diffusion1e5Cm2PerS, ref.diffusion1e5Cm2PerS, 1e-9);
}

TEST(Surrogate, StrongerChargesBindHarder) {
  Tip4pSurrogate s;
  md::WaterParameters hi = md::tip4pPublished();
  hi.qH += 0.05;
  md::WaterParameters lo = md::tip4pPublished();
  lo.qH -= 0.05;
  const auto pHi = s.properties(hi);
  const auto pLo = s.properties(lo);
  EXPECT_LT(pHi.internalEnergyKJPerMol, pLo.internalEnergyKJPerMol);  // more negative
  EXPECT_LT(pHi.diffusion1e5Cm2PerS, pLo.diffusion1e5Cm2PerS);        // slower
  EXPECT_LT(pHi.pressureAtm, pLo.pressureAtm);                        // more cohesive
}

TEST(Surrogate, BiggerCoreRaisesPressure) {
  Tip4pSurrogate s;
  md::WaterParameters big = md::tip4pPublished();
  big.sigma += 0.1;
  md::WaterParameters small = md::tip4pPublished();
  small.sigma -= 0.1;
  EXPECT_GT(s.properties(big).pressureAtm, s.properties(small).pressureAtm);
}

TEST(Surrogate, RdfResidualsMinimizedAtStructuralOptimum) {
  Tip4pSurrogate s;
  const auto opt = s.structuralOptimum();
  const auto atOpt = s.properties(opt);
  for (double dq : {-0.05, -0.02, 0.02, 0.05}) {
    md::WaterParameters p = opt;
    p.qH += dq;
    const auto off = s.properties(p);
    EXPECT_GT(off.rdfResidualOO, atOpt.rdfResidualOO) << "dq=" << dq;
    EXPECT_GT(off.rdfResidualOH, atOpt.rdfResidualOH) << "dq=" << dq;
    EXPECT_GT(off.rdfResidualHH, atOpt.rdfResidualHH) << "dq=" << dq;
  }
}

TEST(Surrogate, StructuralOptimumBeatsTip4pOnStructure) {
  // Mirrors the paper's finding: the refit slightly improves the g_OO fit
  // over the published model.
  Tip4pSurrogate s;
  const auto refit = s.properties(s.structuralOptimum());
  const auto tip4p = s.properties(md::tip4pPublished());
  EXPECT_LT(refit.rdfResidualOO, tip4p.rdfResidualOO);
}

TEST(Surrogate, UnphysicalRegionPenalized) {
  Tip4pSurrogate s;
  const auto sane = s.properties(md::tip4pPublished());
  const auto crazy = s.properties({0.001, 2.0, 1.5});
  EXPECT_GT(crazy.rdfResidualOO, sane.rdfResidualOO * 2.0);
  // Every property is driven far from its experimental value (here: wild
  // over-binding and a pressure blow-up), so the cost explodes.
  const auto exp = water::experimentalTargets();
  EXPECT_GT(std::abs(crazy.internalEnergyKJPerMol - exp.internalEnergyKJPerMol),
            std::abs(sane.internalEnergyKJPerMol - exp.internalEnergyKJPerMol) * 10.0);
  EXPECT_GT(std::abs(crazy.pressureAtm - exp.pressureAtm),
            std::abs(sane.pressureAtm - exp.pressureAtm) * 5.0);
}

TEST(Surrogate, ModelGOOMatchesExperimentAtOptimum) {
  Tip4pSurrogate s;
  const auto model = s.modelGOO(s.structuralOptimum());
  const auto exp = water::experimentalGOO();
  ASSERT_EQ(model.r.size(), exp.r.size());
  for (std::size_t i = 0; i < model.r.size(); ++i) {
    EXPECT_NEAR(model.g[i], exp.g[i], 1e-9);
  }
}

TEST(Surrogate, ModelGOOPeakTracksSigma) {
  Tip4pSurrogate s;
  md::WaterParameters big = s.structuralOptimum();
  big.sigma += 0.3;
  const auto curve = s.modelGOO(big);
  // Find the peak location; it should shift right of 2.73.
  double peakR = 0.0;
  double peak = 0.0;
  for (std::size_t i = 0; i < curve.r.size(); ++i) {
    if (curve.g[i] > peak) {
      peak = curve.g[i];
      peakR = curve.r[i];
    }
  }
  EXPECT_GT(peakR, 2.80);
}

TEST(ExperimentalGOO, PhysicalShape) {
  const auto g = water::experimentalGOO();
  // Zero inside the core.
  for (std::size_t i = 0; i < g.r.size(); ++i) {
    if (g.r[i] < 2.0) {
      EXPECT_EQ(g.g[i], 0.0);
    }
  }
  // First peak near 2.73 with height between 2 and 3.5.
  double peak = 0.0;
  double peakR = 0.0;
  for (std::size_t i = 0; i < g.r.size(); ++i) {
    if (g.g[i] > peak) {
      peak = g.g[i];
      peakR = g.r[i];
    }
  }
  EXPECT_NEAR(peakR, 2.73, 0.15);
  EXPECT_GT(peak, 2.0);
  EXPECT_LT(peak, 3.5);
  // Tends to 1 at large r.
  EXPECT_NEAR(g.g.back(), 1.0, 0.2);
}

}  // namespace
