file(REMOVE_RECURSE
  "CMakeFiles/sfopt_core.dir/annealing.cpp.o"
  "CMakeFiles/sfopt_core.dir/annealing.cpp.o.d"
  "CMakeFiles/sfopt_core.dir/checkpoint.cpp.o"
  "CMakeFiles/sfopt_core.dir/checkpoint.cpp.o.d"
  "CMakeFiles/sfopt_core.dir/det_engine.cpp.o"
  "CMakeFiles/sfopt_core.dir/det_engine.cpp.o.d"
  "CMakeFiles/sfopt_core.dir/engine_base.cpp.o"
  "CMakeFiles/sfopt_core.dir/engine_base.cpp.o.d"
  "CMakeFiles/sfopt_core.dir/initial_simplex.cpp.o"
  "CMakeFiles/sfopt_core.dir/initial_simplex.cpp.o.d"
  "CMakeFiles/sfopt_core.dir/noise_probe.cpp.o"
  "CMakeFiles/sfopt_core.dir/noise_probe.cpp.o.d"
  "CMakeFiles/sfopt_core.dir/pc_engine.cpp.o"
  "CMakeFiles/sfopt_core.dir/pc_engine.cpp.o.d"
  "CMakeFiles/sfopt_core.dir/point.cpp.o"
  "CMakeFiles/sfopt_core.dir/point.cpp.o.d"
  "CMakeFiles/sfopt_core.dir/pso.cpp.o"
  "CMakeFiles/sfopt_core.dir/pso.cpp.o.d"
  "CMakeFiles/sfopt_core.dir/restart.cpp.o"
  "CMakeFiles/sfopt_core.dir/restart.cpp.o.d"
  "CMakeFiles/sfopt_core.dir/sampling_context.cpp.o"
  "CMakeFiles/sfopt_core.dir/sampling_context.cpp.o.d"
  "CMakeFiles/sfopt_core.dir/simplex.cpp.o"
  "CMakeFiles/sfopt_core.dir/simplex.cpp.o.d"
  "CMakeFiles/sfopt_core.dir/trace_io.cpp.o"
  "CMakeFiles/sfopt_core.dir/trace_io.cpp.o.d"
  "libsfopt_core.a"
  "libsfopt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfopt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
