#include "core/restart.hpp"

#include <stdexcept>
#include <utility>

#include "core/initial_simplex.hpp"
#include "core/sampling_context.hpp"

namespace sfopt::core {

SimplexRunner makeRunner(DetOptions options) {
  return [options](const noise::StochasticObjective& obj, std::span<const Point> start,
                   std::uint64_t firstId) mutable {
    options.common.sampling.firstVertexId = firstId;
    return runDeterministic(obj, start, options);
  };
}

SimplexRunner makeRunner(MaxNoiseOptions options) {
  return [options](const noise::StochasticObjective& obj, std::span<const Point> start,
                   std::uint64_t firstId) mutable {
    options.common.sampling.firstVertexId = firstId;
    return runMaxNoise(obj, start, options);
  };
}

SimplexRunner makeRunner(AndersonOptions options) {
  return [options](const noise::StochasticObjective& obj, std::span<const Point> start,
                   std::uint64_t firstId) mutable {
    options.common.sampling.firstVertexId = firstId;
    return runAnderson(obj, start, options);
  };
}

SimplexRunner makeRunner(PCOptions options) {
  return [options](const noise::StochasticObjective& obj, std::span<const Point> start,
                   std::uint64_t firstId) mutable {
    options.common.sampling.firstVertexId = firstId;
    return runPointToPoint(obj, start, options);
  };
}

namespace {

/// Freshly re-sample a point and return the mean: the stage-winner referee.
double refereeMean(const noise::StochasticObjective& obj, const Point& x,
                   std::uint64_t vertexId, std::int64_t samples) {
  SamplingContext::Options opts;
  opts.firstVertexId = vertexId;
  SamplingContext ctx(obj, opts);
  auto v = ctx.createVertex(x, samples);
  return v->mean();
}

}  // namespace

RestartResult runWithRestarts(const noise::StochasticObjective& objective,
                              std::span<const Point> initial, const SimplexRunner& runner,
                              const RestartOptions& options) {
  if (options.restarts < 0) throw std::invalid_argument("runWithRestarts: negative restarts");
  if (options.evaluationSamples < 1) {
    throw std::invalid_argument("runWithRestarts: evaluationSamples must be >= 1");
  }

  RestartResult out;
  std::uint64_t idBase = 0;
  out.best = runner(objective, initial, idBase);
  out.stagesRun = 1;
  out.totalElapsedTime = out.best.elapsedTime;
  out.totalSamples = out.best.totalSamples;

  double scale = options.initialScale;
  for (int stage = 1; stage <= options.restarts; ++stage) {
    idBase += options.vertexIdStride;
    const auto start = axisSimplexPoints(out.best.best, scale);
    OptimizationResult candidate = runner(objective, start, idBase);
    out.stagesRun += 1;
    out.totalElapsedTime += candidate.elapsedTime;
    out.totalSamples += candidate.totalSamples;

    // Referee: fresh samples at both points, disjoint noise streams.
    idBase += options.vertexIdStride;
    const double incumbentMean =
        refereeMean(objective, out.best.best, idBase, options.evaluationSamples);
    const double candidateMean =
        refereeMean(objective, candidate.best, idBase + 1, options.evaluationSamples);
    out.totalSamples += 2 * options.evaluationSamples;
    if (candidateMean < incumbentMean) {
      out.best = std::move(candidate);
      out.winningStage = stage;
    }
    scale *= options.scaleDecay;
  }
  return out;
}

}  // namespace sfopt::core
