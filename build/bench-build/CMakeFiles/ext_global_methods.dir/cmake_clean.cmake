file(REMOVE_RECURSE
  "../bench/ext_global_methods"
  "../bench/ext_global_methods.pdb"
  "CMakeFiles/ext_global_methods.dir/ext_global_methods.cpp.o"
  "CMakeFiles/ext_global_methods.dir/ext_global_methods.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_global_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
