#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "telemetry/clock.hpp"
#include "telemetry/sink.hpp"

namespace sfopt::telemetry {

/// Emits span events (named, timed intervals with explicit ids and
/// parent-child nesting) to an EventSink.  Ids are sequential per tracer;
/// 0 is "no span".  A span event is written once, when the span ends, with
/// its start time and duration — sinks never see half-open state.
///
/// Thread-safe; timestamps come from the injected Clock, so tests drive a
/// ManualClock and assert exact durations.
class SpanTracer {
 public:
  SpanTracer(EventSink& sink, const Clock& clock) : sink_(&sink), clock_(&clock) {}

  /// Start a span; returns its id (never 0).  `trace` tags the emitted
  /// event with a distributed trace id (0 = untraced).
  [[nodiscard]] std::uint64_t begin(std::string name, std::uint64_t parent = 0,
                                    std::uint64_t trace = 0);

  /// End a span begun earlier, attaching optional extra fields.  Unknown
  /// ids are ignored (a span may outlive a tracer reset in tests).
  void end(std::uint64_t id,
           std::vector<std::pair<std::string, std::string>> strFields = {},
           std::vector<std::pair<std::string, double>> numFields = {});

  /// Emit an already-measured span in one call: the caller tracked the
  /// start time itself (e.g. the engine's per-iteration spans).  Returns
  /// the id assigned to the emitted span.
  std::uint64_t emitComplete(std::string name, double startTime, std::uint64_t parent = 0,
                             std::vector<std::pair<std::string, std::string>> strFields = {},
                             std::vector<std::pair<std::string, double>> numFields = {},
                             std::uint64_t trace = 0);

  /// Rebase the id counter so ids from this tracer never collide with
  /// another process's when their JSONL files are merged (each worker
  /// seeds a rank-salted base after the handshake).  Ids must stay below
  /// 2^53 — they travel through JSON doubles.
  void seedIds(std::uint64_t base);

  /// Current time on the tracer's clock.
  [[nodiscard]] double now() const { return clock_->now(); }

  [[nodiscard]] std::size_t openSpans() const;

 private:
  struct Open {
    std::string name;
    double start = 0.0;
    std::uint64_t parent = 0;
    std::uint64_t trace = 0;
  };

  EventSink* sink_;
  const Clock* clock_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, Open> open_;
  std::uint64_t nextId_ = 1;
};

/// RAII span: begins on construction, ends on destruction.
class ScopedSpan {
 public:
  ScopedSpan(SpanTracer& tracer, std::string name, std::uint64_t parent = 0)
      : tracer_(&tracer), id_(tracer.begin(std::move(name), parent)) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (tracer_ != nullptr) tracer_->end(id_);
  }

  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

  /// End early with fields attached.
  void end(std::vector<std::pair<std::string, std::string>> strFields = {},
           std::vector<std::pair<std::string, double>> numFields = {}) {
    if (tracer_ != nullptr) {
      tracer_->end(id_, std::move(strFields), std::move(numFields));
      tracer_ = nullptr;
    }
  }

 private:
  SpanTracer* tracer_;
  std::uint64_t id_;
};

}  // namespace sfopt::telemetry
