#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace sfopt::stats {

/// Numerically stable running mean / variance accumulator (Welford's method).
///
/// Used throughout the library to estimate the mean objective value at a
/// simplex vertex and the standard error of that mean from the stream of
/// noisy samples, without storing the samples themselves.
class Welford {
 public:
  /// Incorporate one observation.
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  /// Merge another accumulator into this one (parallel reduction step).
  /// The result is identical (up to rounding) to having observed both
  /// streams in a single accumulator.
  void merge(const Welford& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
  }

  /// Number of observations so far.
  [[nodiscard]] std::int64_t count() const noexcept { return n_; }

  /// Sample mean; 0 when empty.
  [[nodiscard]] double mean() const noexcept { return mean_; }

  /// Unbiased sample variance (n-1 denominator); +inf when n < 2 so that a
  /// barely-sampled vertex is always treated as "too noisy to trust".
  [[nodiscard]] double variance() const noexcept {
    if (n_ < 2) return std::numeric_limits<double>::infinity();
    return m2_ / static_cast<double>(n_ - 1);
  }

  /// Sample standard deviation of the observations.
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }

  /// Standard error of the mean: s / sqrt(n).  This is the sigma_i(t_i)
  /// the stochastic simplex algorithms reason about.
  [[nodiscard]] double standardError() const noexcept {
    if (n_ < 2) return std::numeric_limits<double>::infinity();
    return std::sqrt(variance() / static_cast<double>(n_));
  }

  /// Sum of squared deviations from the mean (the raw M2 moment); exposed
  /// for serialization across the master-worker wire.
  [[nodiscard]] double sumSquaredDeviations() const noexcept { return m2_; }

  /// Rebuild an accumulator from its serialized moments.
  [[nodiscard]] static Welford fromMoments(std::int64_t n, double mean, double m2) noexcept {
    Welford w;
    w.n_ = n;
    w.mean_ = mean;
    w.m2_ = m2;
    return w;
  }

  /// Reset to the empty state.
  void reset() noexcept { *this = Welford{}; }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace sfopt::stats
