// Reproduces Figure 3.4: function value vs (virtual) time traces for the
// MN algorithm (k = 2..5) and the Anderson criterion (k1 = 2^0..2^30) on
// the controlled-noise 3-d Rosenbrock function, five inputs each.  The
// series are printed in gnuplot-ready columns (decade-subsampled).

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/harness.hpp"
#include "core/initial_simplex.hpp"

using namespace sfopt;

namespace {

/// Print a trace as "time  best-true-value" rows, subsampled to at most
/// `maxRows` points, log-spaced in time like the paper's log-log panels.
void printTrace(const core::OptimizationTrace& trace, int maxRows) {
  if (trace.empty()) {
    std::printf("  (no steps recorded)\n");
    return;
  }
  const auto& steps = trace.steps();
  const double t0 = std::max(steps.front().time, 1.0);
  const double t1 = std::max(steps.back().time, t0 * 1.001);
  double nextT = t0;
  const double factor = std::pow(t1 / t0, 1.0 / maxRows);
  for (const auto& s : steps) {
    if (s.time < nextT) continue;
    std::printf("  %12.1f  %14.6g\n", s.time, s.bestTrue.value_or(s.bestEstimate));
    nextT = std::max(s.time * factor, s.time + 1.0);
  }
  std::printf("  %12.1f  %14.6g  (final)\n", steps.back().time,
              steps.back().bestTrue.value_or(steps.back().bestEstimate));
}

}  // namespace

int main() {
  bench::printHeader("Figure 3.4 - function value vs time, MN (left) vs Anderson (right)");

  for (int input = 1; input <= 5; ++input) {
    noise::RngStream startRng(41, static_cast<std::uint64_t>(input));
    const auto start = core::randomSimplexPoints(3, -6.0, 3.0, startRng);

    bench::printSubHeader("input " + std::to_string(input) + " : MN algorithm");
    for (double k : {2.0, 3.0, 4.0, 5.0}) {
      auto objective = bench::noisyRosenbrock(3, 100.0, 7000 + static_cast<std::uint64_t>(input));
      core::MaxNoiseOptions opts;
      opts.k = k;
      bench::applyTableBudget(opts.common);
      opts.common.recordTrace = true;
      const auto res = core::runMaxNoise(objective, start, opts);
      std::printf("\n k = %.0f  (%lld steps, stop: %s)\n", k,
                  static_cast<long long>(res.iterations), toString(res.reason).data());
      printTrace(res.trace, 12);
    }

    bench::printSubHeader("input " + std::to_string(input) + " : Anderson criterion");
    for (double e : {0.0, 10.0, 20.0, 30.0}) {
      auto objective = bench::noisyRosenbrock(3, 100.0, 7000 + static_cast<std::uint64_t>(input));
      core::AndersonOptions opts;
      opts.k1 = std::pow(2.0, e);
      bench::applyTableBudget(opts.common);
      opts.common.recordTrace = true;
      const auto res = core::runAnderson(objective, start, opts);
      std::printf("\n k1 = 2^%.0f  (%lld steps, stop: %s)\n", e,
                  static_cast<long long>(res.iterations), toString(res.reason).data());
      printTrace(res.trace, 12);
    }
  }
  return 0;
}
