#include "service/ticket_exchange.hpp"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <utility>

#include "core/sampling_context.hpp"

namespace sfopt::service {

void TicketExchange::openJob(std::uint64_t jobId, int priority) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto channel = std::make_unique<Channel>();
  channel->priority = std::clamp(priority, 1, 100);
  jobs_.emplace(jobId, std::move(channel));
}

void TicketExchange::closeJob(std::uint64_t jobId) {
  const std::lock_guard<std::mutex> lock(mutex_);
  jobs_.erase(jobId);
}

TicketExchange::Channel& TicketExchange::channelOrThrow(std::uint64_t jobId) {
  const auto it = jobs_.find(jobId);
  if (it == jobs_.end()) {
    throw JobAborted("job " + std::to_string(jobId) + " is closed", false);
  }
  Channel& ch = *it->second;
  if (ch.aborted) throw JobAborted(ch.reason, ch.cancelled);
  return ch;
}

std::uint64_t TicketExchange::submit(std::uint64_t jobId, mw::MessageBuffer input) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Channel& ch = channelOrThrow(jobId);
  const std::uint64_t ticket = jobTraceNamespace(jobId) | nextSequence_++;
  ch.pending.push_back(PendingShard{jobId, ticket, std::move(input)});
  return ticket;
}

std::vector<TicketExchange::Completion> TicketExchange::poll(std::uint64_t jobId,
                                                             double timeoutSeconds) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_.find(jobId);
  if (it == jobs_.end()) {
    throw JobAborted("job " + std::to_string(jobId) + " is closed", false);
  }
  Channel& ch = *it->second;
  const auto ready = [&ch] { return ch.aborted || !ch.done.empty(); };
  if (!ready() && timeoutSeconds > 0.0) {
    ch.cv.wait_for(lock, std::chrono::duration<double>(timeoutSeconds), ready);
  }
  if (ch.aborted) throw JobAborted(ch.reason, ch.cancelled);
  std::vector<Completion> out(std::make_move_iterator(ch.done.begin()),
                              std::make_move_iterator(ch.done.end()));
  ch.done.clear();
  return out;
}

bool TicketExchange::deliver(std::uint64_t jobId, std::uint64_t ticket,
                             std::vector<stats::Welford> chunks) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(jobId);
  if (it == jobs_.end()) return false;  // late completion for a finished job
  it->second->done.push_back(Completion{ticket, std::move(chunks)});
  it->second->cv.notify_all();
  return true;
}

void TicketExchange::abort(std::uint64_t jobId, const std::string& reason, bool cancelled) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(jobId);
  if (it == jobs_.end()) return;
  Channel& ch = *it->second;
  if (ch.aborted) return;
  ch.aborted = true;
  ch.cancelled = cancelled;
  ch.reason = reason;
  ch.cv.notify_all();
}

std::vector<TicketExchange::PendingShard> TicketExchange::drainPending(
    std::size_t maxShards) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<PendingShard> out;
  if (jobs_.empty() || maxShards == 0) return out;
  // Up to `priority` shards per job per cycle, resuming after the job the
  // previous drain stopped at.  Every job with pending work is visited
  // every cycle, so a shard-heavy or high-priority job cannot starve its
  // neighbours — it only gets a proportionally bigger slice.
  bool progressed = true;
  while (out.size() < maxShards && progressed) {
    progressed = false;
    for (std::size_t step = 0; step < jobs_.size() && out.size() < maxShards; ++step) {
      auto it = jobs_.begin();
      std::advance(it, static_cast<std::ptrdiff_t>((cursor_ + step) % jobs_.size()));
      Channel& ch = *it->second;
      for (int q = 0; q < ch.priority && !ch.pending.empty() && out.size() < maxShards; ++q) {
        out.push_back(std::move(ch.pending.front()));
        ch.pending.pop_front();
        progressed = true;
      }
    }
    cursor_ = jobs_.empty() ? 0 : (cursor_ + 1) % jobs_.size();
  }
  return out;
}

std::size_t TicketExchange::pendingShards() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [id, ch] : jobs_) n += ch->pending.size();
  return n;
}

stats::Welford ExchangeBackend::sampleBatch(const BatchRequest& request) {
  const BatchRequest reqs[] = {request};
  return sampleBatches(reqs).front();
}

std::vector<stats::Welford> ExchangeBackend::sampleBatches(
    std::span<const BatchRequest> requests) {
  // Synchronous facade over the ticket path: submit every real batch, then
  // poll until each ticket reports.  Zero-count requests (capped vertices)
  // cost nothing.
  std::vector<stats::Welford> out(requests.size());
  std::unordered_map<std::uint64_t, std::size_t> slotOf;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].count == 0) continue;
    slotOf.emplace(async_.submit(requests[i]), i);
  }
  while (!slotOf.empty()) {
    for (auto& c : exchange_.poll(jobId_, 1.0)) {
      const auto it = slotOf.find(c.ticket);
      if (it == slotOf.end()) continue;
      out[it->second] = core::foldEvalChunks(c.chunks);
      slotOf.erase(it);
    }
  }
  return out;
}

std::uint64_t ExchangeBackend::Async::submit(
    const core::SamplingBackend::BatchRequest& request) {
  mw::MessageBuffer buf;
  packServiceTaskInput(buf, owner_.jobId_, owner_.spec_, request);
  return owner_.exchange_.submit(owner_.jobId_, std::move(buf));
}

std::vector<core::AsyncSamplingBackend::Completion> ExchangeBackend::Async::poll(
    double timeoutSeconds) {
  auto done = owner_.exchange_.poll(owner_.jobId_, timeoutSeconds);
  std::vector<Completion> out;
  out.reserve(done.size());
  for (auto& c : done) out.push_back(Completion{c.ticket, std::move(c.chunks)});
  return out;
}

int ExchangeBackend::Async::parallelism() const {
  return std::max(owner_.exchange_.parallelism(), 1);
}

}  // namespace sfopt::service
