#include "telemetry/export.hpp"

#include <ostream>

namespace sfopt::telemetry {

namespace {

std::string promName(const std::string& name) {
  std::string out = "sfopt_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

const char* kindName(MetricSnapshot::Kind k) {
  switch (k) {
    case MetricSnapshot::Kind::Counter: return "counter";
    case MetricSnapshot::Kind::Gauge: return "gauge";
    case MetricSnapshot::Kind::Histogram: return "histogram";
  }
  return "unknown";
}

}  // namespace

void writePrometheusText(const MetricsRegistry& registry, std::ostream& out) {
  const auto snap = registry.snapshot();
  out.precision(17);
  for (const MetricSnapshot& m : snap) {
    const std::string name = promName(m.name);
    out << "# TYPE " << name << ' ' << kindName(m.kind) << '\n';
    switch (m.kind) {
      case MetricSnapshot::Kind::Counter:
        out << name << ' ' << m.intValue << '\n';
        break;
      case MetricSnapshot::Kind::Gauge:
        out << name << ' ' << m.numValue << '\n';
        break;
      case MetricSnapshot::Kind::Histogram: {
        std::int64_t cumulative = 0;
        for (std::size_t b = 0; b < m.bounds.size(); ++b) {
          cumulative += m.bucketCounts[b];
          out << name << "_bucket{le=\"" << m.bounds[b] << "\"} " << cumulative << '\n';
        }
        out << name << "_bucket{le=\"+Inf\"} " << m.count << '\n';
        out << name << "_sum " << m.numValue << '\n';
        out << name << "_count " << m.count << '\n';
        break;
      }
    }
  }
}

void writeCsvSummary(const MetricsRegistry& registry, std::ostream& out) {
  out << "name,kind,count,sum,value\n";
  out.precision(17);
  for (const MetricSnapshot& m : registry.snapshot()) {
    out << m.name << ',' << kindName(m.kind) << ',';
    switch (m.kind) {
      case MetricSnapshot::Kind::Counter:
        out << ",," << m.intValue << '\n';
        break;
      case MetricSnapshot::Kind::Gauge:
        out << ",," << m.numValue << '\n';
        break;
      case MetricSnapshot::Kind::Histogram:
        out << m.count << ',' << m.numValue << ",\n";
        break;
    }
  }
}

std::size_t writeMetricEvents(const MetricsRegistry& registry, EventSink& sink, double time) {
  const auto snap = registry.snapshot();
  for (const MetricSnapshot& m : snap) {
    Event e;
    e.type = "metric";
    e.name = m.name;
    e.time = time;
    e.strFields.emplace_back("kind", kindName(m.kind));
    switch (m.kind) {
      case MetricSnapshot::Kind::Counter:
        e.numFields.emplace_back("value", static_cast<double>(m.intValue));
        break;
      case MetricSnapshot::Kind::Gauge:
        e.numFields.emplace_back("value", m.numValue);
        break;
      case MetricSnapshot::Kind::Histogram:
        e.numFields.emplace_back("count", static_cast<double>(m.count));
        e.numFields.emplace_back("sum", m.numValue);
        if (m.count > 0) {
          e.numFields.emplace_back("mean", m.numValue / static_cast<double>(m.count));
        }
        break;
    }
    sink.emit(e);
  }
  return snap.size();
}

}  // namespace sfopt::telemetry
