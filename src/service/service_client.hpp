#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "service/job.hpp"

namespace sfopt::service {

/// Synchronous client for the multi-tenant daemon: dials the same TCP
/// port workers use, announces itself with a client-kind Hello, and
/// exchanges Job* frames.  One outstanding request at a time; the daemon
/// may push an unsolicited JobResult at any point after submission, so
/// replies are matched by frame type and out-of-order frames are parked
/// until asked for.
class ServiceClient {
 public:
  /// Connect and complete the Hello/Welcome handshake.  Throws
  /// std::runtime_error on connect or handshake failure.
  ServiceClient(const std::string& host, std::uint16_t port,
                double timeoutSeconds = 10.0);

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  /// Client id the daemon assigned (the Welcome rank field).
  [[nodiscard]] int clientId() const noexcept { return clientId_; }

  /// Submit a job; the reply carries the assigned job id or a rejection.
  [[nodiscard]] StatusReply submit(const JobSpec& spec, double timeoutSeconds = 30.0);

  /// Query one job (or the whole service with jobId 0).
  [[nodiscard]] StatusReply status(std::uint64_t jobId, double timeoutSeconds = 30.0);

  /// Request cancellation of a job.
  [[nodiscard]] StatusReply cancel(std::uint64_t jobId, double timeoutSeconds = 30.0);

  /// Block until the daemon pushes a JobResult frame (the terminal state
  /// of a job this client submitted).  Throws std::runtime_error on
  /// timeout or a dropped connection.
  [[nodiscard]] ResultReply waitResult(double timeoutSeconds);

  /// Pull the stored result of any job by id — including jobs submitted
  /// by clients of an earlier daemon incarnation (the durable journal
  /// restores their outcomes across restarts).  Non-terminal jobs reply
  /// without an outcome; evicted jobs say so in the detail.  Call this on
  /// a connection with no submissions of its own (as `sfopt status
  /// --result` does): on a submitting connection a pushed completion for
  /// the same job is indistinguishable from the fetch reply.
  [[nodiscard]] ResultReply fetchResult(std::uint64_t jobId, double timeoutSeconds = 30.0);

 private:
  void sendFrame(const net::Frame& frame);
  /// Next frame of `want`, waiting at most until `deadline`; frames of
  /// other types are parked in arrival order.
  [[nodiscard]] net::Frame recvFrameOfType(net::FrameType want, double deadline);
  [[nodiscard]] StatusReply roundTrip(net::FrameType type, mw::MessageBuffer request,
                                      double timeoutSeconds);

  net::Socket socket_;
  net::FrameDecoder decoder_;
  std::deque<net::Frame> parked_;
  int clientId_ = 0;
};

}  // namespace sfopt::service
