#pragma once

#include <cstddef>
#include <cstdint>

namespace sfopt::core {

/// IEEE 802.3 CRC-32 (the zlib/PNG polynomial, reflected, init/final
/// xor 0xFFFFFFFF).  Used to guard checkpoint files and the durable
/// service journal against truncation and corruption — it detects all
/// single-bit errors and all burst errors shorter than 32 bits.
///
/// `seed` is the CRC of any preceding bytes, so large inputs can be
/// checksummed incrementally: crc32(b, crc32(a)) == crc32(a + b).
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size,
                                  std::uint32_t seed = 0);

}  // namespace sfopt::core
