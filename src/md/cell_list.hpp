#pragma once

#include <vector>

#include "md/periodic_box.hpp"
#include "md/vec3.hpp"

namespace sfopt::md {

/// Linked-cell spatial decomposition over a cubic periodic box.
///
/// The box is divided into `m^3` cubic cells with `m = floor(edge / r)`
/// for an interaction radius `r`, so every cell edge is >= r and any two
/// sites within r of each other (minimum image) sit in the same or in
/// adjacent cells.  Binning is a counting sort over the wrapped
/// positions — O(N) — and candidate-pair enumeration walks each cell's
/// own sites plus a half stencil of 13 neighbor cells, visiting every
/// unordered pair exactly once.  Neighbor-list construction over the
/// cells is therefore O(N) at fixed density instead of the O(N^2)
/// all-pairs scan.
///
/// The decomposition is only sound with >= 3 cells per dimension: with 2
/// the periodic half stencil would reach the same cell from both sides
/// and double-count, and with fewer the cells cannot cover the minimum
/// image uniquely.  `admits()` gates this; callers fall back to the
/// brute-force scan for boxes that small (where O(N^2) is cheap anyway).
class CellList {
 public:
  /// Cells per dimension for this box/radius: floor(edge / radius).
  [[nodiscard]] static int cellsPerDimension(const PeriodicBox& box,
                                             double interactionRadius);

  /// True when the box admits >= 3 cells per dimension at this radius.
  [[nodiscard]] static bool admits(const PeriodicBox& box, double interactionRadius);

  /// Throws std::invalid_argument unless admits(box, interactionRadius).
  CellList(const PeriodicBox& box, double interactionRadius);

  /// Bin sites into cells (positions may be unwrapped; they are wrapped
  /// into the box here).  Deterministic: within a cell, sites keep
  /// ascending index order.
  void bin(const std::vector<Vec3>& positions);

  /// Visit every unordered candidate pair (i, j) with i < j whose cells
  /// are identical or adjacent, exactly once, passing the displacement
  /// `dr` between the two sites under the image implied by the cell
  /// adjacency.  Because the cell edge is >= the interaction radius,
  /// |dr| < radius if and only if the minimum-image distance is < radius
  /// (beyond the radius the two may disagree, but both filter the pair),
  /// so callers can range-test on dr without a per-pair minimum-image
  /// computation.  The visit order is a deterministic function of the
  /// binning alone.
  template <typename Visitor>
  void forEachCandidatePair(Visitor&& visit) const {
    const int m = cellsPerDim_;
    const double edge = box_.edge();
    for (int cz = 0; cz < m; ++cz) {
      for (int cy = 0; cy < m; ++cy) {
        for (int cx = 0; cx < m; ++cx) {
          const int c = cellIndex(cx, cy, cz);
          const int begin = cellStart_[static_cast<std::size_t>(c)];
          const int end = cellStart_[static_cast<std::size_t>(c) + 1];
          // Pairs within the cell: slots are in ascending site order,
          // and wrapped coordinates differ by < one cell edge per axis,
          // so the plain difference is already the minimum image.
          for (int a = begin; a < end; ++a) {
            const Vec3 pa = wrappedOfSlot_[static_cast<std::size_t>(a)];
            for (int b = a + 1; b < end; ++b) {
              visit(siteOfSlot_[static_cast<std::size_t>(a)],
                    siteOfSlot_[static_cast<std::size_t>(b)],
                    pa - wrappedOfSlot_[static_cast<std::size_t>(b)]);
            }
          }
          // Pairs against the 13-cell half stencil (each adjacent cell
          // pair is reached from exactly one of its two members).  The
          // periodic image shift is a function of the offset alone, so
          // it is hoisted out of the pair loop.
          for (const auto& [dx, dy, dz] : kHalfStencil) {
            const int nx = cx + dx;
            const int ny = cy + dy;
            const int nz = cz + dz;
            const int n = cellIndex(wrapCoord(nx), wrapCoord(ny), wrapCoord(nz));
            const Vec3 shift{nx < 0 ? -edge : (nx >= m ? edge : 0.0),
                             ny < 0 ? -edge : (ny >= m ? edge : 0.0),
                             nz < 0 ? -edge : (nz >= m ? edge : 0.0)};
            const int nBegin = cellStart_[static_cast<std::size_t>(n)];
            const int nEnd = cellStart_[static_cast<std::size_t>(n) + 1];
            for (int a = begin; a < end; ++a) {
              const int i = siteOfSlot_[static_cast<std::size_t>(a)];
              const Vec3 pa = wrappedOfSlot_[static_cast<std::size_t>(a)] - shift;
              for (int b = nBegin; b < nEnd; ++b) {
                const int j = siteOfSlot_[static_cast<std::size_t>(b)];
                const Vec3 dr = pa - wrappedOfSlot_[static_cast<std::size_t>(b)];
                if (i < j) {
                  visit(i, j, dr);
                } else {
                  visit(j, i, dr);
                }
              }
            }
          }
        }
      }
    }
  }

  [[nodiscard]] int cellsPerDim() const noexcept { return cellsPerDim_; }
  [[nodiscard]] int cells() const noexcept {
    return cellsPerDim_ * cellsPerDim_ * cellsPerDim_;
  }
  [[nodiscard]] double cellEdge() const noexcept { return cellEdge_; }

  /// Sites binned by the last bin() call.
  [[nodiscard]] int sites() const noexcept {
    return static_cast<int>(siteOfSlot_.size());
  }
  /// Mean sites per cell over the last bin().
  [[nodiscard]] double averageOccupancy() const noexcept;
  /// Largest cell population over the last bin().
  [[nodiscard]] int maxOccupancy() const noexcept;

 private:
  struct Offset {
    int dx, dy, dz;
  };
  /// Half of the 26 neighbor offsets: lexicographically positive ones.
  static constexpr Offset kHalfStencil[13] = {
      {1, 0, 0},  {-1, 1, 0}, {0, 1, 0},  {1, 1, 0},  {-1, -1, 1}, {0, -1, 1},
      {1, -1, 1}, {-1, 0, 1}, {0, 0, 1},  {1, 0, 1},  {-1, 1, 1},  {0, 1, 1},
      {1, 1, 1}};

  [[nodiscard]] int wrapCoord(int c) const noexcept {
    if (c < 0) return c + cellsPerDim_;
    if (c >= cellsPerDim_) return c - cellsPerDim_;
    return c;
  }
  [[nodiscard]] int cellIndex(int cx, int cy, int cz) const noexcept {
    return (cz * cellsPerDim_ + cy) * cellsPerDim_ + cx;
  }
  [[nodiscard]] int cellOf(const Vec3& p) const noexcept;

  PeriodicBox box_;
  int cellsPerDim_;
  double cellEdge_;
  std::vector<int> cellStart_;   ///< size cells()+1; prefix offsets into siteOfSlot_
  std::vector<int> siteOfSlot_;  ///< site indices grouped by cell, ascending per cell
  std::vector<Vec3> wrappedOfSlot_;     ///< wrapped positions in slot order
  std::vector<int> cellOfSiteScratch_;  ///< bin() scratch, kept to avoid reallocation
};

}  // namespace sfopt::md
