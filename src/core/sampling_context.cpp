#include "core/sampling_context.hpp"

#include <algorithm>
#include <stdexcept>

namespace sfopt::core {

SamplingContext::SamplingContext(const noise::StochasticObjective& objective, Options options)
    : objective_(objective), options_(options), nextVertexId_(options.firstVertexId) {
  if (options_.maxSamplesPerVertex < 1) {
    throw std::invalid_argument("SamplingContext: maxSamplesPerVertex must be >= 1");
  }
}

std::unique_ptr<Vertex> SamplingContext::createVertex(Point x, std::int64_t initialSamples) {
  if (x.size() != objective_.dimension()) {
    throw std::invalid_argument("SamplingContext::createVertex: dimension mismatch");
  }
  auto v = std::make_unique<Vertex>(std::move(x), nextVertexId_++);
  refine(*v, initialSamples);
  return v;
}

std::int64_t SamplingContext::refine(Vertex& v, std::int64_t extra) {
  if (extra < 0) throw std::invalid_argument("SamplingContext::refine: negative count");
  const std::int64_t room = options_.maxSamplesPerVertex - v.sampleCount();
  const std::int64_t take = std::min(extra, std::max<std::int64_t>(room, 0));
  if (take == 0) return 0;
  if (options_.backend != nullptr) {
    const SamplingBackend::BatchRequest req{v.point(), v.id(),
                                            static_cast<std::uint64_t>(v.sampleCount()), take};
    v.absorb(options_.backend->sampleBatch(req));
  } else {
    for (std::int64_t i = 0; i < take; ++i) {
      const noise::SampleKey key{v.id(), static_cast<std::uint64_t>(v.sampleCount())};
      v.absorb(objective_.sample(v.point(), key));
    }
  }
  totalSamples_ += take;
  return take;
}

void SamplingContext::coSample(std::span<const RefineRequest> requests) {
  std::int64_t maxTaken = 0;
  if (options_.backend != nullptr) {
    // Dispatch the whole batch so the backend can run it concurrently
    // (this models the d+3 workers sampling their vertices at once).
    std::vector<SamplingBackend::BatchRequest> batch;
    std::vector<std::int64_t> takes;
    batch.reserve(requests.size());
    takes.reserve(requests.size());
    for (const RefineRequest& r : requests) {
      if (r.vertex == nullptr) throw std::invalid_argument("coSample: null vertex");
      if (r.samples < 0) throw std::invalid_argument("coSample: negative count");
      const std::int64_t room = options_.maxSamplesPerVertex - r.vertex->sampleCount();
      const std::int64_t take = std::min(r.samples, std::max<std::int64_t>(room, 0));
      takes.push_back(take);
      batch.push_back({r.vertex->point(), r.vertex->id(),
                       static_cast<std::uint64_t>(r.vertex->sampleCount()), take});
    }
    const auto results = options_.backend->sampleBatches(batch);
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (takes[i] == 0) continue;
      requests[i].vertex->absorb(results[i]);
      totalSamples_ += takes[i];
      maxTaken = std::max(maxTaken, takes[i]);
    }
  } else {
    for (const RefineRequest& r : requests) {
      if (r.vertex == nullptr) throw std::invalid_argument("coSample: null vertex");
      maxTaken = std::max(maxTaken, refine(*r.vertex, r.samples));
    }
  }
  chargeTime(maxTaken);
}

void SamplingContext::coSample(std::initializer_list<RefineRequest> requests) {
  coSample(std::span<const RefineRequest>(requests.begin(), requests.size()));
}

void SamplingContext::chargeTime(std::int64_t samples) {
  clock_.advance(static_cast<double>(samples) * objective_.sampleDuration());
}

void SamplingContext::restoreAccounting(double clockNow, std::int64_t totalSamples,
                                        std::uint64_t nextVertexId) {
  clock_.reset();
  clock_.advance(clockNow);
  totalSamples_ = totalSamples;
  nextVertexId_ = nextVertexId;
}

double SamplingContext::sigma(const Vertex& v) const {
  if (options_.sigmaMode == SigmaMode::Exact) {
    if (auto s0 = objective_.noiseScale(v.point())) {
      return v.exactSigma(*s0, objective_.sampleDuration());
    }
  }
  return v.estimatedSigma();
}

std::optional<double> SamplingContext::trueValue(const Vertex& v) const {
  return objective_.trueValue(v.point());
}

}  // namespace sfopt::core
