file(REMOVE_RECURSE
  "libsfopt_bench_common.a"
)
