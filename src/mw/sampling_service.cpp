#include "mw/sampling_service.hpp"

namespace sfopt::mw {

void SamplingTask::packInput(MessageBuffer& buf) const {
  buf.pack(std::span<const double>(x_));
  buf.pack(vertexId_);
  buf.pack(startIndex_);
  buf.pack(count_);
}

void SamplingTask::unpackInput(MessageBuffer& buf) {
  x_ = buf.unpackDoubleVector();
  vertexId_ = buf.unpackUint64();
  startIndex_ = buf.unpackUint64();
  count_ = buf.unpackInt64();
}

void SamplingTask::packResult(MessageBuffer& buf) const {
  buf.pack(result_.count());
  buf.pack(result_.mean());
  buf.pack(result_.sumSquaredDeviations());
}

void SamplingTask::unpackResult(MessageBuffer& buf) {
  const std::int64_t n = buf.unpackInt64();
  const double mean = buf.unpackDouble();
  const double m2 = buf.unpackDouble();
  result_ = stats::Welford::fromMoments(n, mean, m2);
}

SamplingWorker::SamplingWorker(net::Transport& comm, Rank rank,
                               const noise::StochasticObjective& objective, int clients)
    : MWWorker(comm, rank), server_(objective, clients) {}

void SamplingWorker::executeTask(MessageBuffer& in, MessageBuffer& out) {
  SamplingTask task;
  task.unpackInput(in);
  const core::SamplingBackend::BatchRequest req{task.x(), task.vertexId(), task.startIndex(),
                                                task.count()};
  task.setResult(server_.runBatch(req));
  task.packResult(out);
}

stats::Welford MWSamplingBackend::sampleBatch(const BatchRequest& request) {
  const BatchRequest reqs[] = {request};
  return sampleBatches(reqs).front();
}

std::vector<stats::Welford> MWSamplingBackend::sampleBatches(
    std::span<const BatchRequest> requests) {
  std::vector<SamplingTask> tasks;
  tasks.reserve(requests.size());
  for (const BatchRequest& r : requests) tasks.emplace_back(r);
  std::vector<MWTask*> ptrs;
  ptrs.reserve(tasks.size());
  for (auto& t : tasks) ptrs.push_back(&t);
  driver_.executeTasks(ptrs);
  std::vector<stats::Welford> out;
  out.reserve(tasks.size());
  for (const auto& t : tasks) out.push_back(t.result());
  return out;
}

}  // namespace sfopt::mw
