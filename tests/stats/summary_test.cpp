#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

using sfopt::stats::logRatio;
using sfopt::stats::Summary;

TEST(Summary, ThrowsOnEmpty) { EXPECT_THROW(Summary({}), std::invalid_argument); }

TEST(Summary, SingleValue) {
  Summary s({4.0});
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.median(), 4.0);
}

TEST(Summary, OrderStatistics) {
  Summary s({5.0, 1.0, 3.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(25.0), 2.0);
}

TEST(Summary, PercentileInterpolates) {
  Summary s({0.0, 10.0});
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(10.0), 1.0);
}

TEST(Summary, PercentileRangeChecked) {
  Summary s({1.0, 2.0});
  EXPECT_THROW((void)s.percentile(-1.0), std::invalid_argument);
  EXPECT_THROW((void)s.percentile(101.0), std::invalid_argument);
}

TEST(LogRatio, BasicRatios) {
  EXPECT_DOUBLE_EQ(logRatio(100.0, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(logRatio(1.0, 100.0), -2.0);
  EXPECT_DOUBLE_EQ(logRatio(5.0, 5.0), 0.0);
}

TEST(LogRatio, BothZeroIsTie) { EXPECT_DOUBLE_EQ(logRatio(0.0, 0.0), 0.0); }

TEST(LogRatio, OneZeroClamps) {
  EXPECT_DOUBLE_EQ(logRatio(0.0, 1.0), -16.0);
  EXPECT_DOUBLE_EQ(logRatio(1.0, 0.0), 16.0);
  EXPECT_DOUBLE_EQ(logRatio(0.0, 1.0, 8.0), -8.0);
}

TEST(LogRatio, ExtremeRatioClamps) {
  EXPECT_DOUBLE_EQ(logRatio(1e-200, 1e200, 10.0), -10.0);
}

TEST(LogRatio, UsesAbsoluteValues) {
  // Sampled minima can be slightly negative due to noise; the ratio is on
  // magnitudes.
  EXPECT_DOUBLE_EQ(logRatio(-100.0, 1.0), 2.0);
}

}  // namespace
