#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/algorithms.hpp"
#include "noise/noisy_function.hpp"
#include "stats/histogram.hpp"
#include "stats/performance.hpp"

namespace sfopt::bench {

/// Banner + rule printing for the paper-style console reports.
void printHeader(const std::string& title);
void printSubHeader(const std::string& title);

/// The three Anderson performance measures of a finished run against a
/// known solution (section 3.2): N = iterations, R = |f(best)| (the true
/// minimum is 0 for every test function used), D = distance to solution.
[[nodiscard]] stats::PerformanceMeasures measure(const core::OptimizationResult& result,
                                                 std::span<const double> solution);

/// A noisy generalized Rosenbrock objective in `dim` dimensions.
[[nodiscard]] noise::NoisyFunction noisyRosenbrock(std::size_t dim, double sigma0,
                                                   std::uint64_t seed);

/// A noisy Powell (4-d) objective.
[[nodiscard]] noise::NoisyFunction noisyPowell(double sigma0, std::uint64_t seed);

/// Run a pairwise comparison campaign in the style of Figs 3.5-3.17: for
/// each of `trials` random initial simplexes, run A and B on the same
/// objective and histogram log10(min_A / min_B) of the true minima found.
struct PairwiseCampaign {
  std::size_t dimension = 4;
  double boxLo = -5.0;
  double boxHi = 5.0;
  int trials = 100;
  std::uint64_t startSeed = 2025;
  std::uint64_t noiseSeed = 999;
};

using RunFn = std::function<core::OptimizationResult(const noise::StochasticObjective&,
                                                     std::span<const core::Point>)>;

[[nodiscard]] stats::Histogram comparePair(
    const PairwiseCampaign& campaign,
    const std::function<noise::NoisyFunction(std::uint64_t seed)>& makeObjective,
    const RunFn& runA, const RunFn& runB);

/// Print a histogram in the paper's "count vs log10(minA/minB)" format,
/// with the below/near/above summary that tells who won.
void printComparison(const std::string& label, const stats::Histogram& hist);

/// Termination and sampling budgets shared by the synthetic-function
/// campaigns: virtual-time limited (the paper terminates on walltime at
/// high noise), with a sample guard so bench runtime stays bounded.
[[nodiscard]] core::TerminationCriteria campaignTermination();

void applyCampaignBudget(core::CommonOptions& common);

/// Larger budget for the Table 3.1/3.2 controlled-noise study, whose runs
/// are few (5 inputs x 4 settings) and should be limited by the algorithm,
/// not the bench harness.
void applyTableBudget(core::CommonOptions& common);

/// Algorithm configurations used by the Fig 3.5-3.17 campaigns.  MN is run
/// in its literal Algorithm 2 reading (trial vertices are not
/// precision-matched; the gate governs only the simplex vertices), which is
/// what the paper evaluated; the library-default enhancements are measured
/// separately by the ablation_trial_matching bench.
[[nodiscard]] core::DetOptions campaignDet();
[[nodiscard]] core::MaxNoiseOptions campaignMn();
[[nodiscard]] core::PCOptions campaignPc();
[[nodiscard]] core::PCOptions campaignPcMn();

}  // namespace sfopt::bench
