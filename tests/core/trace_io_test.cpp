#include "core/trace_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/algorithms.hpp"
#include "tests/core/test_helpers.hpp"

namespace {

namespace fs = std::filesystem;
using namespace sfopt;

core::OptimizationTrace sampleTrace() {
  core::OptimizationTrace t;
  core::StepRecord a;
  a.iteration = 1;
  a.time = 10.5;
  a.bestEstimate = 3.25;
  a.bestTrue = 3.0;
  a.diameter = 1.5;
  a.contractionLevel = 0;
  a.move = core::MoveKind::Reflection;
  a.totalSamples = 42;
  t.record(a);
  core::StepRecord b;
  b.iteration = 2;
  b.time = 20.0;
  b.bestEstimate = 1.0;
  // bestTrue unknown
  b.move = core::MoveKind::Collapse;
  b.totalSamples = 99;
  t.record(b);
  return t;
}

TEST(TraceIo, CsvHeaderAndRows) {
  std::stringstream ss;
  core::writeTraceCsv(ss, sampleTrace());
  std::string line;
  std::getline(ss, line);
  EXPECT_EQ(line,
            "iteration,time,best_estimate,best_true,diameter,contraction_level,move,"
            "total_samples,wall_seconds,resample_rounds");
  std::getline(ss, line);
  EXPECT_EQ(line, "1,10.5,3.25,3,1.5,0,reflection,42,0,0");
  std::getline(ss, line);
  EXPECT_EQ(line, "2,20,1,,0,0,collapse,99,0,0");  // empty best_true field
  EXPECT_FALSE(std::getline(ss, line));
}

TEST(TraceIo, EmptyTraceIsJustHeader) {
  std::stringstream ss;
  core::writeTraceCsv(ss, core::OptimizationTrace{});
  std::string line;
  std::getline(ss, line);
  EXPECT_FALSE(line.empty());
  EXPECT_FALSE(std::getline(ss, line));
}

TEST(TraceIo, FileRoundTripFromRealRun) {
  auto obj = test::noisySphere(2, 1.0);
  core::MaxNoiseOptions o;
  o.common.recordTrace = true;
  o.common.termination.maxIterations = 20;
  o.common.termination.tolerance = 0.0;
  const auto res = core::runMaxNoise(obj, test::simpleStart(2), o);
  const fs::path path = fs::temp_directory_path() / "sfopt_trace_test.csv";
  fs::remove(path);
  core::saveTraceCsv(path, res.trace);
  std::ifstream in(path);
  std::string line;
  std::size_t rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, res.trace.size() + 1);  // header + one row per step
  fs::remove(path);
}

TEST(TraceIo, BadPathThrows) {
  EXPECT_THROW(core::saveTraceCsv("/no/such/dir/trace.csv", core::OptimizationTrace{}),
               std::runtime_error);
}

}  // namespace
