
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/config/optroot_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/config/optroot_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/config/optroot_test.cpp.o.d"
  "/root/repo/tests/core/algorithm_matrix_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/core/algorithm_matrix_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/core/algorithm_matrix_test.cpp.o.d"
  "/root/repo/tests/core/anderson_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/core/anderson_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/core/anderson_test.cpp.o.d"
  "/root/repo/tests/core/annealing_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/core/annealing_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/core/annealing_test.cpp.o.d"
  "/root/repo/tests/core/checkpoint_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/core/checkpoint_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/core/checkpoint_test.cpp.o.d"
  "/root/repo/tests/core/condition_mask_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/core/condition_mask_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/core/condition_mask_test.cpp.o.d"
  "/root/repo/tests/core/det_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/core/det_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/core/det_test.cpp.o.d"
  "/root/repo/tests/core/engine_base_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/core/engine_base_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/core/engine_base_test.cpp.o.d"
  "/root/repo/tests/core/initial_simplex_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/core/initial_simplex_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/core/initial_simplex_test.cpp.o.d"
  "/root/repo/tests/core/max_noise_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/core/max_noise_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/core/max_noise_test.cpp.o.d"
  "/root/repo/tests/core/pc_options_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/core/pc_options_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/core/pc_options_test.cpp.o.d"
  "/root/repo/tests/core/pc_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/core/pc_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/core/pc_test.cpp.o.d"
  "/root/repo/tests/core/point_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/core/point_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/core/point_test.cpp.o.d"
  "/root/repo/tests/core/pso_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/core/pso_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/core/pso_test.cpp.o.d"
  "/root/repo/tests/core/restart_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/core/restart_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/core/restart_test.cpp.o.d"
  "/root/repo/tests/core/sampling_context_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/core/sampling_context_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/core/sampling_context_test.cpp.o.d"
  "/root/repo/tests/core/simplex_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/core/simplex_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/core/simplex_test.cpp.o.d"
  "/root/repo/tests/core/trace_io_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/core/trace_io_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/core/trace_io_test.cpp.o.d"
  "/root/repo/tests/core/vertex_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/core/vertex_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/core/vertex_test.cpp.o.d"
  "/root/repo/tests/md/forces_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/md/forces_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/md/forces_test.cpp.o.d"
  "/root/repo/tests/md/integrator_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/md/integrator_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/md/integrator_test.cpp.o.d"
  "/root/repo/tests/md/neighbor_list_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/md/neighbor_list_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/md/neighbor_list_test.cpp.o.d"
  "/root/repo/tests/md/observables_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/md/observables_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/md/observables_test.cpp.o.d"
  "/root/repo/tests/md/periodic_box_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/md/periodic_box_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/md/periodic_box_test.cpp.o.d"
  "/root/repo/tests/md/simulation_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/md/simulation_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/md/simulation_test.cpp.o.d"
  "/root/repo/tests/md/system_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/md/system_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/md/system_test.cpp.o.d"
  "/root/repo/tests/md/tail_corrections_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/md/tail_corrections_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/md/tail_corrections_test.cpp.o.d"
  "/root/repo/tests/md/trajectory_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/md/trajectory_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/md/trajectory_test.cpp.o.d"
  "/root/repo/tests/md/vec3_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/md/vec3_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/md/vec3_test.cpp.o.d"
  "/root/repo/tests/mw/comm_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/mw/comm_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/mw/comm_test.cpp.o.d"
  "/root/repo/tests/mw/failure_injection_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/mw/failure_injection_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/mw/failure_injection_test.cpp.o.d"
  "/root/repo/tests/mw/machinefile_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/mw/machinefile_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/mw/machinefile_test.cpp.o.d"
  "/root/repo/tests/mw/message_buffer_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/mw/message_buffer_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/mw/message_buffer_test.cpp.o.d"
  "/root/repo/tests/mw/mw_driver_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/mw/mw_driver_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/mw/mw_driver_test.cpp.o.d"
  "/root/repo/tests/mw/parallel_runner_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/mw/parallel_runner_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/mw/parallel_runner_test.cpp.o.d"
  "/root/repo/tests/mw/sampling_service_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/mw/sampling_service_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/mw/sampling_service_test.cpp.o.d"
  "/root/repo/tests/mw/vertex_server_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/mw/vertex_server_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/mw/vertex_server_test.cpp.o.d"
  "/root/repo/tests/noise/heteroscedastic_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/noise/heteroscedastic_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/noise/heteroscedastic_test.cpp.o.d"
  "/root/repo/tests/noise/noisy_function_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/noise/noisy_function_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/noise/noisy_function_test.cpp.o.d"
  "/root/repo/tests/noise/rng_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/noise/rng_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/noise/rng_test.cpp.o.d"
  "/root/repo/tests/noise/virtual_clock_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/noise/virtual_clock_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/noise/virtual_clock_test.cpp.o.d"
  "/root/repo/tests/stats/autocorrelation_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/stats/autocorrelation_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/stats/autocorrelation_test.cpp.o.d"
  "/root/repo/tests/stats/histogram_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/stats/histogram_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/stats/histogram_test.cpp.o.d"
  "/root/repo/tests/stats/performance_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/stats/performance_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/stats/performance_test.cpp.o.d"
  "/root/repo/tests/stats/summary_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/stats/summary_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/stats/summary_test.cpp.o.d"
  "/root/repo/tests/stats/welford_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/stats/welford_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/stats/welford_test.cpp.o.d"
  "/root/repo/tests/testfunctions/functions_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/testfunctions/functions_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/testfunctions/functions_test.cpp.o.d"
  "/root/repo/tests/tools/arg_parser_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/tools/arg_parser_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/tools/arg_parser_test.cpp.o.d"
  "/root/repo/tests/tools/commands_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/tools/commands_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/tools/commands_test.cpp.o.d"
  "/root/repo/tests/water/cost_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/water/cost_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/water/cost_test.cpp.o.d"
  "/root/repo/tests/water/end_to_end_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/water/end_to_end_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/water/end_to_end_test.cpp.o.d"
  "/root/repo/tests/water/md_objective_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/water/md_objective_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/water/md_objective_test.cpp.o.d"
  "/root/repo/tests/water/surrogate_test.cpp" "tests/CMakeFiles/sfopt_tests.dir/water/surrogate_test.cpp.o" "gcc" "tests/CMakeFiles/sfopt_tests.dir/water/surrogate_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sfopt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/noise/CMakeFiles/sfopt_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sfopt_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/testfunctions/CMakeFiles/sfopt_testfunctions.dir/DependInfo.cmake"
  "/root/repo/build/src/mw/CMakeFiles/sfopt_mw.dir/DependInfo.cmake"
  "/root/repo/build/src/md/CMakeFiles/sfopt_md.dir/DependInfo.cmake"
  "/root/repo/build/src/water/CMakeFiles/sfopt_water.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/sfopt_config.dir/DependInfo.cmake"
  "/root/repo/build/tools/CMakeFiles/sfopt_cli_lib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
