file(REMOVE_RECURSE
  "CMakeFiles/water_reparameterization.dir/water_reparameterization.cpp.o"
  "CMakeFiles/water_reparameterization.dir/water_reparameterization.cpp.o.d"
  "water_reparameterization"
  "water_reparameterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/water_reparameterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
