#include "service/service_client.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>
#include <vector>

namespace sfopt::service {
namespace {

/// Write the whole buffer, poll()ing for writability on a short-write.
void sendAll(const net::Socket& socket, const std::byte* data, std::size_t n,
             double deadline) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t rc = ::send(socket.fd(), data + sent, n - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      throw std::runtime_error(std::string("service client send failed: ") +
                               std::strerror(errno));
    }
    if (net::monotonicSeconds() >= deadline) {
      throw std::runtime_error("service client send timed out");
    }
    pollfd pfd{socket.fd(), POLLOUT, 0};
    ::poll(&pfd, 1, 50);
  }
}

}  // namespace

ServiceClient::ServiceClient(const std::string& host, std::uint16_t port,
                             double timeoutSeconds)
    : socket_(net::tcpConnect(host, port, timeoutSeconds)) {
  const double deadline = net::monotonicSeconds() + timeoutSeconds;
  std::vector<std::byte> wire;
  net::appendFrame(wire, net::makeHelloFrame(net::kPeerClient));
  sendAll(socket_, wire.data(), wire.size(), deadline);
  const net::Frame frame = recvFrameOfType(net::FrameType::Welcome, deadline);
  const net::Welcome welcome = net::parseWelcome(frame);
  clientId_ = welcome.rank;
}

void ServiceClient::sendFrame(const net::Frame& frame) {
  std::vector<std::byte> wire;
  net::appendFrame(wire, frame);
  sendAll(socket_, wire.data(), wire.size(), net::monotonicSeconds() + 30.0);
}

net::Frame ServiceClient::recvFrameOfType(net::FrameType want, double deadline) {
  for (auto it = parked_.begin(); it != parked_.end(); ++it) {
    if (it->type == want) {
      net::Frame frame = std::move(*it);
      parked_.erase(it);
      return frame;
    }
  }
  std::byte chunk[4096];
  while (true) {
    while (auto frame = decoder_.next()) {
      if (frame->type == want) return std::move(*frame);
      // Heartbeats carry no job state; anything else (typically an early
      // JobResult push) is parked for a later waitResult call.
      if (frame->type != net::FrameType::Heartbeat) parked_.push_back(std::move(*frame));
    }
    const ssize_t rc = ::recv(socket_.fd(), chunk, sizeof(chunk), 0);
    if (rc > 0) {
      decoder_.feed(chunk, static_cast<std::size_t>(rc));
      continue;
    }
    if (rc == 0) throw std::runtime_error("service connection closed by daemon");
    if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      throw std::runtime_error(std::string("service client recv failed: ") +
                               std::strerror(errno));
    }
    const double now = net::monotonicSeconds();
    if (now >= deadline) throw std::runtime_error("timed out waiting for daemon reply");
    pollfd pfd{socket_.fd(), POLLIN, 0};
    const double wait = std::min(deadline - now, 0.1);
    ::poll(&pfd, 1, static_cast<int>(wait * 1000.0) + 1);
  }
}

StatusReply ServiceClient::roundTrip(net::FrameType type, mw::MessageBuffer request,
                                     double timeoutSeconds) {
  sendFrame(net::makeJobFrame(type, request.releaseWire()));
  net::Frame reply = recvFrameOfType(net::FrameType::JobStatus,
                                     net::monotonicSeconds() + timeoutSeconds);
  mw::MessageBuffer buf(std::move(reply.payload));
  return StatusReply::unpack(buf);
}

StatusReply ServiceClient::submit(const JobSpec& spec, double timeoutSeconds) {
  mw::MessageBuffer buf;
  spec.pack(buf);
  return roundTrip(net::FrameType::JobSubmit, std::move(buf), timeoutSeconds);
}

StatusReply ServiceClient::status(std::uint64_t jobId, double timeoutSeconds) {
  mw::MessageBuffer buf;
  buf.pack(jobId);
  return roundTrip(net::FrameType::JobStatus, std::move(buf), timeoutSeconds);
}

StatusReply ServiceClient::cancel(std::uint64_t jobId, double timeoutSeconds) {
  mw::MessageBuffer buf;
  buf.pack(jobId);
  return roundTrip(net::FrameType::JobCancel, std::move(buf), timeoutSeconds);
}

ResultReply ServiceClient::waitResult(double timeoutSeconds) {
  net::Frame frame = recvFrameOfType(net::FrameType::JobResult,
                                     net::monotonicSeconds() + timeoutSeconds);
  mw::MessageBuffer buf(std::move(frame.payload));
  return ResultReply::unpack(buf);
}

ResultReply ServiceClient::fetchResult(std::uint64_t jobId, double timeoutSeconds) {
  mw::MessageBuffer request;
  request.pack(jobId);
  sendFrame(net::makeJobFrame(net::FrameType::JobResult, request.releaseWire()));
  net::Frame frame = recvFrameOfType(net::FrameType::JobResult,
                                     net::monotonicSeconds() + timeoutSeconds);
  mw::MessageBuffer buf(std::move(frame.payload));
  return ResultReply::unpack(buf);
}

}  // namespace sfopt::service
