#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sfopt::telemetry {

namespace detail {

/// Relaxed add for atomic doubles; a CAS loop rather than fetch_add so the
/// code does not depend on lock-free FP atomics being available.
inline void atomicAdd(std::atomic<double>& a, double x) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + x, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

/// Monotonically increasing integer metric.  The handle returned by
/// MetricsRegistry::counter is stable for the registry's lifetime, so hot
/// paths register once and then touch a single relaxed atomic.
class Counter {
 public:
  void add(std::int64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-value-wins floating-point metric (configuration and level readings:
/// worker counts, occupancies, totals computed at run end).
class Gauge {
 public:
  void set(double x) noexcept { value_.store(x, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: cumulative-style buckets with explicit upper
/// bounds plus an implicit +inf bucket, and running count/sum so exports
/// can report means without retaining samples.  observe() is wait-free on
/// the bucket counter and lock-free on the sum.
class Histogram {
 public:
  /// `bounds` are ascending bucket upper bounds (inclusive).  An empty
  /// list yields a count/sum-only histogram with a single +inf bucket.
  explicit Histogram(std::vector<double> bounds);

  void observe(double x) noexcept;

  [[nodiscard]] std::int64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  [[nodiscard]] double mean() const noexcept {
    const std::int64_t n = count();
    return n > 0 ? sum() / static_cast<double>(n) : 0.0;
  }
  [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Per-bucket (non-cumulative) counts; the last entry is the +inf bucket.
  [[nodiscard]] std::vector<std::int64_t> bucketCounts() const;

  /// `count` bounds growing geometrically from `start` by `factor` — the
  /// usual latency-style bucket layout.
  [[nodiscard]] static std::vector<double> exponentialBounds(double start, double factor,
                                                             int count);

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::int64_t>[]> buckets_;  ///< bounds_.size() + 1 slots
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// One exported metric value, decoupled from the live atomics so writers
/// (Prometheus text, CSV, JSONL events) all consume the same snapshot.
struct MetricSnapshot {
  enum class Kind { Counter, Gauge, Histogram };
  std::string name;
  Kind kind = Kind::Counter;
  std::int64_t intValue = 0;                ///< counters
  double numValue = 0.0;                    ///< gauges; histogram sum
  std::int64_t count = 0;                   ///< histogram observation count
  std::vector<double> bounds;               ///< histogram bucket upper bounds
  std::vector<std::int64_t> bucketCounts;   ///< histogram per-bucket counts (+inf last)
};

/// Registry of named metrics.  Registration (counter/gauge/histogram) takes
/// a mutex and returns a stable handle; all subsequent updates through the
/// handle are lock-free.  Names are dot-separated (`engine.iterations`);
/// exporters sanitize as their format demands.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Register-or-get.  Throws std::invalid_argument if the name is already
  /// registered with a different metric kind (or different histogram
  /// bounds).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  /// Consistent point-in-time copy of every registered metric, sorted by
  /// name.
  [[nodiscard]] std::vector<MetricSnapshot> snapshot() const;

  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    MetricSnapshot::Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  mutable std::mutex mutex_;
  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace sfopt::telemetry
