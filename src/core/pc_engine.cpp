// Engine for Algorithm 3 (PC, point-to-point comparison) and Algorithm 4
// (PC+MN).  Every simplex decision is a comparison of two sampled vertices
// made at a k-sigma confidence separation; unresolved comparisons trigger
// concurrent resampling of the two vertices involved until the intervals
// separate (or a budget forces a plain-mean resolution).

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/algorithms.hpp"
#include "core/comparisons.hpp"
#include "core/engine_base.hpp"
#include "telemetry/metrics.hpp"

namespace sfopt::core {

namespace {

enum class Tri { True, False, Unresolved };

/// Is a confidently (k-sigma-separated) less than b?
Tri confidentlyLess(detail::EngineBase& eng, const Vertex& a, const Vertex& b, double k) {
  switch (confidenceCompare(a.mean(), eng.ctx().sigma(a), b.mean(), eng.ctx().sigma(b), k)) {
    case ConfidenceOutcome::Less: return Tri::True;
    case ConfidenceOutcome::GreaterEq: return Tri::False;
    case ConfidenceOutcome::Unresolved: return Tri::Unresolved;
  }
  return Tri::Unresolved;
}

/// Evaluate a "less-than" condition honoring the noise-awareness mask:
/// masked-off conditions are plain comparisons of the current means and
/// can never be Unresolved.
Tri evalLess(detail::EngineBase& eng, const PCOptions& opt, int condition, const Vertex& a,
             const Vertex& b) {
  if (!opt.mask.isNoiseAware(condition)) {
    return a.mean() < b.mean() ? Tri::True : Tri::False;
  }
  // An estimated sigma from very few samples is too unreliable to resolve
  // a k-sigma comparison either way; demand more sampling first.
  if (a.sampleCount() < opt.minSamplesForConfidence ||
      b.sampleCount() < opt.minSamplesForConfidence) {
    return Tri::Unresolved;
  }
  return confidentlyLess(eng, a, b, opt.k);
}

/// Evaluate a "greater-or-equal" condition under the mask.
Tri evalGeq(detail::EngineBase& eng, const PCOptions& opt, int condition, const Vertex& a,
            const Vertex& b) {
  if (!opt.mask.isNoiseAware(condition)) {
    return a.mean() >= b.mean() ? Tri::True : Tri::False;
  }
  switch (confidentlyLess(eng, a, b, opt.k)) {
    case Tri::True: return Tri::False;
    case Tri::False: return Tri::True;
    case Tri::Unresolved: return Tri::Unresolved;
  }
  return Tri::Unresolved;
}

enum class PairOutcome { Less, GreaterEq };

/// Resolve one of Algorithm 3's paired condition stages — (c1, c5) on
/// (reflection, second-highest), (c3, c4) on (expansion, reflection),
/// (c6, c7) on (contraction, highest) — resampling both vertices until
/// either side fires.  `a` and `b` are the compared vertices; `lessCond`
/// and `geqCond` the 1-based condition numbers.
PairOutcome resolvePair(detail::EngineBase& eng, const PCOptions& opt, Vertex& a, Vertex& b,
                        int lessCond, int geqCond) {
  std::int64_t block = std::max<std::int64_t>(opt.resample.initialBlock, 1);
  std::int64_t rounds = 0;
  bool forced = false;
  PairOutcome outcome = PairOutcome::Less;
  for (;;) {
    if (evalLess(eng, opt, lessCond, a, b) == Tri::True) break;
    if (evalGeq(eng, opt, geqCond, a, b) == Tri::True) {
      outcome = PairOutcome::GreaterEq;
      break;
    }
    // Neither condition resolved: resample both vertices concurrently
    // ("resample vertices and repeat until condition X or Y is satisfied").
    const bool capped = eng.ctx().atSampleCap(a) && eng.ctx().atSampleCap(b);
    const bool roundCapped = opt.resample.maxRoundsPerComparison > 0 &&
                             rounds >= opt.resample.maxRoundsPerComparison;
    if (capped || roundCapped || eng.timeExhausted()) {
      ++eng.counters().forcedResolutions;
      forced = true;
      outcome = a.mean() < b.mean() ? PairOutcome::Less : PairOutcome::GreaterEq;
      break;
    }
    ++rounds;
    const std::int64_t nextBlock = std::min<std::int64_t>(
        opt.resample.maxBlock,
        static_cast<std::int64_t>(
            std::ceil(static_cast<double>(block) * std::max(opt.resample.growth, 1.0))));
    // If this round still does not separate the intervals, the next one
    // resamples the same pair at the grown block — hand that to the
    // pipeline as a prefetch hint so workers stay busy while we decide.
    const core::SamplingContext::RefineRequest cur[] = {{&a, block}, {&b, block}};
    const core::SamplingContext::RefineRequest hint[] = {{&a, nextBlock}, {&b, nextBlock}};
    eng.ctx().coSample(cur, hint);
    ++eng.counters().resampleRounds;
    block = nextBlock;
  }
  // Per-comparison resolution accounting: how many resample rounds each
  // k-sigma decision cost, and whether it had to be forced (the paper's
  // section 2.3 near-identical-vertices hazard).
  detail::EngineTelemetry& tel = eng.tel();
  if (tel.telemetry != nullptr) {
    tel.comparisons->add(1);
    tel.resampleRounds->add(rounds);
    tel.roundsPerComparison->observe(static_cast<double>(rounds));
    if (forced) tel.forcedResolutions->add(1);
  }
  return outcome;
}

/// Sample count for a fresh PC trial vertex: precision-matched to the
/// most-sampled simplex vertex when matchTrialPrecision is on (the
/// worker-per-vertex architecture keeps trials sampling continuously),
/// otherwise the bare initial count.
std::int64_t trialSamples(detail::EngineBase& eng, const Simplex& s, const PCOptions& opt) {
  if (!opt.matchTrialPrecision) return opt.common.initialSamplesPerVertex;
  return eng.matchedTrialSamples(s);
}

}  // namespace

OptimizationResult runPointToPoint(const noise::StochasticObjective& objective,
                                   std::span<const Point> initial, const PCOptions& options) {
  detail::EngineBase eng(objective, options.common);
  const SimplexCoefficients& coef = options.common.coefficients;
  Simplex s = options.common.resumeFrom
                  ? eng.buildFromCheckpoint(*options.common.resumeFrom)
                  : eng.buildInitialSimplex(initial);
  std::int64_t iter = options.common.resumeFrom ? options.common.resumeFrom->iteration : 0;
  TerminationReason reason = TerminationReason::IterationLimit;

  for (;;) {
    if (auto stop = eng.shouldStop(s, iter)) {
      reason = *stop;
      break;
    }

    // PC+MN (Algorithm 4): the max-noise wait gate precedes every decision.
    if (options.maxNoiseGate) {
      detail::maxNoiseGateWait(eng, s, {}, options.gateK, options.resample);
    }

    const Simplex::Ordering o = s.ordering();
    const Point cent = s.centroidExcluding(o.max);
    auto ref = eng.createTrial(reflectPoint(cent, s.at(o.max).point(), coef.reflection),
                               trialSamples(eng, s, options));

    MoveKind move;
    // Stage 1: conditions 1 / 5 — reflection against the second-highest.
    if (resolvePair(eng, options, *ref, s.at(o.smax), 1, 5) == PairOutcome::Less) {
      // Condition 2: is the reflection confidently worse than the best
      // vertex?  If so, plain acceptance; otherwise (it may be a new best)
      // attempt expansion.  Algorithm 3 gives c2 no resample loop: an
      // unresolved c2 routes to the expansion attempt.
      const bool refWorseThanMin = evalGeq(eng, options, 2, *ref, s.at(o.min)) == Tri::True;
      if (refWorseThanMin) {
        (void)s.replace(o.max, std::move(ref));
        ++eng.counters().reflections;
        move = MoveKind::Reflection;
      } else {
        auto exp = eng.createTrial(expandPoint(ref->point(), cent, coef.expansion),
                                   trialSamples(eng, s, options));
        // Stage 2: conditions 3 / 4 — expansion against reflection.
        if (resolvePair(eng, options, *exp, *ref, 3, 4) == PairOutcome::Less) {
          (void)s.replace(o.max, std::move(exp));
          s.noteExpansion();
          ++eng.counters().expansions;
          move = MoveKind::Expansion;
        } else {
          (void)s.replace(o.max, std::move(ref));
          ++eng.counters().reflections;
          move = MoveKind::Reflection;
        }
      }
    } else {
      // Conditions 5-7: the reflection failed; try contraction.
      auto con = eng.createTrial(contractPoint(s.at(o.max).point(), cent, coef.contraction),
                                 trialSamples(eng, s, options));
      // Stage 3: conditions 6 / 7 — contraction against the highest.
      if (resolvePair(eng, options, *con, s.at(o.max), 6, 7) == PairOutcome::Less) {
        (void)s.replace(o.max, std::move(con));
        s.noteContraction();
        ++eng.counters().contractions;
        move = MoveKind::Contraction;
      } else {
        eng.collapse(s, o.min);
        move = MoveKind::Collapse;
      }
    }
    ++iter;
    eng.maybeRecord(s, move, iter);
    eng.maybeCheckpoint(s, iter);
  }
  return eng.finish(s, iter, reason);
}

OptimizationResult runPointToPointWithMaxNoise(const noise::StochasticObjective& objective,
                                               std::span<const Point> initial, PCOptions options) {
  options.maxNoiseGate = true;
  return runPointToPoint(objective, initial, options);
}

}  // namespace sfopt::core
