#include "water/surrogate.hpp"

#include <algorithm>
#include <cmath>

#include "water/experimental.hpp"

namespace sfopt::water {

namespace {

/// Published TIP4P anchor.
constexpr double kEps0 = 0.1550;
constexpr double kSig0 = 3.1536;
constexpr double kQ0 = 0.5200;

/// Smoothly growing penalty outside the physically sensible window —
/// models the "highly sensitive regions" of the parameterization problem.
double outOfRangePenalty(const md::WaterParameters& p) {
  auto ramp = [](double x, double lo, double hi, double scale) {
    if (x < lo) return (lo - x) * (lo - x) * scale;
    if (x > hi) return (x - hi) * (x - hi) * scale;
    return 0.0;
  };
  return ramp(p.epsilon, 0.02, 0.5, 400.0) + ramp(p.sigma, 2.4, 3.9, 40.0) +
         ramp(p.qH, 0.1, 0.9, 150.0);
}

}  // namespace

WaterProperties Tip4pSurrogate::properties(const md::WaterParameters& p) const {
  const Tip4pReference ref = tip4pReference();
  const double de = p.epsilon - kEps0;
  const double ds = p.sigma - kSig0;
  const double dq = p.qH - kQ0;
  const double bad = outOfRangePenalty(p);

  WaterProperties out;
  // Internal energy: stronger charges and a deeper LJ well bind harder
  // (more negative U); a bigger core reduces binding.  Mild curvature in
  // q (cohesion saturates quadratically).
  out.internalEnergyKJPerMol =
      ref.internalEnergyKJPerMol - 95.0 * dq - 45.0 * de + 24.0 * ds - 60.0 * dq * dq + bad;

  // Pressure at fixed (experimental) density: dominated by the core size;
  // cohesion (q, eps) pulls it down.
  out.pressureAtm = ref.pressureAtm + 9500.0 * ds - 5200.0 * dq - 2600.0 * de +
                    14000.0 * ds * ds + 30.0 * bad;

  // Self-diffusion: stronger binding slows the molecules.
  out.diffusion1e5Cm2PerS =
      ref.diffusion1e5Cm2PerS - 9.0 * dq - 4.0 * de + 1.5 * ds + 12.0 * dq * dq + 0.05 * bad;

  // Structural residuals: quadratic bowls around the structural optimum
  // (slightly off the published parameters), floors matching the scale of
  // Table 3.4's residual entries.
  const md::WaterParameters opt = structuralOptimum();
  const double eo = p.epsilon - opt.epsilon;
  const double so = p.sigma - opt.sigma;
  const double qo = p.qH - opt.qH;
  auto bowl = [&](double floor, double cEps, double cSig, double cQ) {
    return std::sqrt(floor * floor + cEps * eo * eo + cSig * so * so + cQ * qo * qo +
                     0.02 * bad);
  };
  out.rdfResidualOO = bowl(0.055, 18.0, 6.5, 28.0);
  out.rdfResidualOH = bowl(0.100, 9.0, 2.8, 40.0);
  out.rdfResidualHH = bowl(0.028, 5.0, 1.6, 22.0);
  return out;
}

md::RdfCurve Tip4pSurrogate::modelGOO(const md::WaterParameters& p, double rMax,
                                      int bins) const {
  const md::WaterParameters opt = structuralOptimum();
  const double peakShift = 0.85 * (p.sigma - opt.sigma);
  const double heightScale = 1.0 + 1.8 * (p.qH - opt.qH) - 0.8 * (p.epsilon - opt.epsilon);
  md::RdfCurve base = experimentalGOO(rMax, bins);
  md::RdfCurve out;
  out.r = base.r;
  out.g.resize(base.g.size());
  // Deform: translate the curve by the peak shift and scale the deviation
  // from 1 by the height factor.
  auto baseAt = [&](double r) {
    if (r <= base.r.front()) return base.g.front();
    if (r >= base.r.back()) return base.g.back();
    const double dr = base.r[1] - base.r[0];
    const auto i = static_cast<std::size_t>((r - base.r.front()) / dr);
    const auto j = std::min(i + 1, base.r.size() - 1);
    const double w = (r - base.r[i]) / dr;
    return base.g[i] * (1.0 - w) + base.g[j] * w;
  };
  for (std::size_t i = 0; i < out.r.size(); ++i) {
    const double g = baseAt(out.r[i] - peakShift);
    out.g[i] = g <= 0.0 ? 0.0 : 1.0 + heightScale * (g - 1.0);
    if (out.g[i] < 0.0) out.g[i] = 0.0;
  }
  return out;
}

}  // namespace sfopt::water
