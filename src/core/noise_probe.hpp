#pragma once

#include <cstdint>

#include "core/point.hpp"
#include "noise/stochastic_objective.hpp"

namespace sfopt::core {

/// Result of probing the noise of a stochastic objective at one point.
struct NoiseProbe {
  double meanEstimate = 0.0;   ///< sample mean of the probes
  double sigma0Estimate = 0.0; ///< inherent scale: stderr * sqrt(n * dt)
  double standardError = 0.0;  ///< of the mean, at the probe's sampling time
  std::int64_t samples = 0;
  double sampledTime = 0.0;    ///< n * dt simulated seconds spent
};

/// Estimate the inherent noise scale sigma0 of `objective` at `x` from
/// `samples` fresh draws: under the eq. 1.2 model, the per-sample standard
/// deviation is sigma0 / sqrt(dt), so sigma0 = s * sqrt(dt).
///
/// Practitioners use this to size noise-dependent knobs (MN's k, the
/// Anderson k1, termination tolerances) before committing to a long run —
/// the calibration step the Anderson baseline needs per problem.
/// `probeStream` selects the noise stream; reuse a stream only if you want
/// the identical draws again.
[[nodiscard]] NoiseProbe probeNoise(const noise::StochasticObjective& objective, const Point& x,
                                    std::int64_t samples, std::uint64_t probeStream = 0x9e0b);

}  // namespace sfopt::core
