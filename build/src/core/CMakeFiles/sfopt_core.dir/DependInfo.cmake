
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/annealing.cpp" "src/core/CMakeFiles/sfopt_core.dir/annealing.cpp.o" "gcc" "src/core/CMakeFiles/sfopt_core.dir/annealing.cpp.o.d"
  "/root/repo/src/core/checkpoint.cpp" "src/core/CMakeFiles/sfopt_core.dir/checkpoint.cpp.o" "gcc" "src/core/CMakeFiles/sfopt_core.dir/checkpoint.cpp.o.d"
  "/root/repo/src/core/det_engine.cpp" "src/core/CMakeFiles/sfopt_core.dir/det_engine.cpp.o" "gcc" "src/core/CMakeFiles/sfopt_core.dir/det_engine.cpp.o.d"
  "/root/repo/src/core/engine_base.cpp" "src/core/CMakeFiles/sfopt_core.dir/engine_base.cpp.o" "gcc" "src/core/CMakeFiles/sfopt_core.dir/engine_base.cpp.o.d"
  "/root/repo/src/core/initial_simplex.cpp" "src/core/CMakeFiles/sfopt_core.dir/initial_simplex.cpp.o" "gcc" "src/core/CMakeFiles/sfopt_core.dir/initial_simplex.cpp.o.d"
  "/root/repo/src/core/noise_probe.cpp" "src/core/CMakeFiles/sfopt_core.dir/noise_probe.cpp.o" "gcc" "src/core/CMakeFiles/sfopt_core.dir/noise_probe.cpp.o.d"
  "/root/repo/src/core/pc_engine.cpp" "src/core/CMakeFiles/sfopt_core.dir/pc_engine.cpp.o" "gcc" "src/core/CMakeFiles/sfopt_core.dir/pc_engine.cpp.o.d"
  "/root/repo/src/core/point.cpp" "src/core/CMakeFiles/sfopt_core.dir/point.cpp.o" "gcc" "src/core/CMakeFiles/sfopt_core.dir/point.cpp.o.d"
  "/root/repo/src/core/pso.cpp" "src/core/CMakeFiles/sfopt_core.dir/pso.cpp.o" "gcc" "src/core/CMakeFiles/sfopt_core.dir/pso.cpp.o.d"
  "/root/repo/src/core/restart.cpp" "src/core/CMakeFiles/sfopt_core.dir/restart.cpp.o" "gcc" "src/core/CMakeFiles/sfopt_core.dir/restart.cpp.o.d"
  "/root/repo/src/core/sampling_context.cpp" "src/core/CMakeFiles/sfopt_core.dir/sampling_context.cpp.o" "gcc" "src/core/CMakeFiles/sfopt_core.dir/sampling_context.cpp.o.d"
  "/root/repo/src/core/simplex.cpp" "src/core/CMakeFiles/sfopt_core.dir/simplex.cpp.o" "gcc" "src/core/CMakeFiles/sfopt_core.dir/simplex.cpp.o.d"
  "/root/repo/src/core/trace_io.cpp" "src/core/CMakeFiles/sfopt_core.dir/trace_io.cpp.o" "gcc" "src/core/CMakeFiles/sfopt_core.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/noise/CMakeFiles/sfopt_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sfopt_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
