#include "core/restart.hpp"

#include <gtest/gtest.h>

#include "stats/performance.hpp"
#include "tests/core/test_helpers.hpp"

namespace {

using namespace sfopt;
using core::makeRunner;
using core::RestartOptions;
using core::runWithRestarts;

core::MaxNoiseOptions quickMn() {
  core::MaxNoiseOptions o;
  o.common.termination.tolerance = 1e-4;
  o.common.termination.maxIterations = 300;
  o.common.termination.maxSamples = 100'000;
  return o;
}

TEST(Restart, ValidatesOptions) {
  auto obj = test::noisySphere(2, 0.0);
  RestartOptions bad;
  bad.restarts = -1;
  EXPECT_THROW(
      (void)runWithRestarts(obj, test::simpleStart(2), makeRunner(quickMn()), bad),
      std::invalid_argument);
  RestartOptions bad2;
  bad2.evaluationSamples = 0;
  EXPECT_THROW(
      (void)runWithRestarts(obj, test::simpleStart(2), makeRunner(quickMn()), bad2),
      std::invalid_argument);
}

TEST(Restart, ZeroRestartsEqualsSingleRun) {
  auto obj = test::noisySphere(2, 1.0);
  RestartOptions opts;
  opts.restarts = 0;
  const auto restarted =
      runWithRestarts(obj, test::simpleStart(2), makeRunner(quickMn()), opts);
  const auto single = core::runMaxNoise(obj, test::simpleStart(2), quickMn());
  EXPECT_EQ(restarted.stagesRun, 1);
  EXPECT_EQ(restarted.winningStage, 0);
  EXPECT_EQ(restarted.best.best, single.best);
  EXPECT_EQ(restarted.totalSamples, single.totalSamples);
}

TEST(Restart, AggregatesEffortAcrossStages) {
  auto obj = test::noisySphere(2, 1.0);
  RestartOptions opts;
  opts.restarts = 2;
  const auto r = runWithRestarts(obj, test::simpleStart(2), makeRunner(quickMn()), opts);
  EXPECT_EQ(r.stagesRun, 3);
  EXPECT_GT(r.totalSamples, r.best.totalSamples);
  EXPECT_GE(r.totalElapsedTime, r.best.elapsedTime);
}

TEST(Restart, NeverWorseThanFirstStageOnSphere) {
  auto obj = test::noisySphere(2, 1.0);
  RestartOptions opts;
  opts.restarts = 3;
  const auto r = runWithRestarts(obj, test::simpleStart(2), makeRunner(quickMn()), opts);
  const auto first = core::runMaxNoise(obj, test::simpleStart(2), quickMn());
  ASSERT_TRUE(r.best.bestTrue.has_value());
  ASSERT_TRUE(first.bestTrue.has_value());
  // The referee can only keep or improve the incumbent (up to its own
  // sampling error — allow a small tolerance).
  EXPECT_LE(*r.best.bestTrue, *first.bestTrue + 0.5);
}

TEST(Restart, EscapesLocalMinimumOnRastrigin) {
  // Rastrigin has local minima at every integer lattice point; a single
  // local simplex from a bad start often gets trapped, while the
  // restarted strategy drills toward the origin.
  noise::NoisyFunction::Options no;
  no.sigma0 = 0.05;
  no.seed = 31;
  noise::NoisyFunction obj(
      2, [](std::span<const double> x) { return testfunctions::rastrigin(x); }, no);
  const auto start = test::simpleStart(2, 2.1, 0.4);  // near the (2,2) local min

  core::MaxNoiseOptions inner = quickMn();
  RestartOptions opts;
  opts.restarts = 6;
  opts.initialScale = 2.0;
  opts.scaleDecay = 0.7;
  const auto r = runWithRestarts(obj, start, makeRunner(inner), opts);
  const auto single = core::runMaxNoise(obj, start, inner);
  ASSERT_TRUE(r.best.bestTrue.has_value());
  ASSERT_TRUE(single.bestTrue.has_value());
  EXPECT_LE(*r.best.bestTrue, *single.bestTrue + 1e-9);
}

TEST(Restart, WorksWithPCRunner) {
  auto obj = test::noisySphere(2, 1.0);
  core::PCOptions pc;
  pc.common.termination.tolerance = 1e-3;
  pc.common.termination.maxIterations = 100;
  pc.common.termination.maxSamples = 100'000;
  RestartOptions opts;
  opts.restarts = 1;
  const auto r = runWithRestarts(obj, test::simpleStart(2), makeRunner(pc), opts);
  ASSERT_TRUE(r.best.bestTrue.has_value());
  EXPECT_LT(*r.best.bestTrue, 1.0);
}

}  // namespace
