file(REMOVE_RECURSE
  "libsfopt_mw.a"
)
