#include "water/experimental.hpp"

#include <cmath>
#include <numbers>

namespace sfopt::water {

ExperimentalTargets experimentalTargets() noexcept { return {}; }

Tip4pReference tip4pReference() noexcept { return {}; }

md::RdfCurve experimentalGOO(double rMax, int bins) {
  md::RdfCurve curve;
  curve.r.reserve(static_cast<std::size_t>(bins));
  curve.g.reserve(static_cast<std::size_t>(bins));
  const double dr = rMax / bins;
  for (int b = 0; b < bins; ++b) {
    const double r = (b + 0.5) * dr;
    double g = 0.0;
    if (r > 2.2) {
      // Steep repulsive onset, first peak, then a damped oscillation about
      // 1 with the experimental period (~2.6 A) and decay length.
      const double onset = 1.0 / (1.0 + std::exp(-(r - 2.55) / 0.07));
      const double peak1 = 1.85 * std::exp(-(r - 2.73) * (r - 2.73) / (2.0 * 0.12 * 0.12));
      const double tail =
          1.0 + 0.35 * std::exp(-(r - 2.9) / 1.8) *
                    std::cos(2.0 * std::numbers::pi * (r - 4.5) / 2.6);
      g = onset * (tail + peak1);
    }
    curve.r.push_back(r);
    curve.g.push_back(g);
  }
  return curve;
}

}  // namespace sfopt::water
