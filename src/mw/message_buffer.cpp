#include "mw/message_buffer.hpp"

#include <cstring>
#include <stdexcept>

namespace sfopt::mw {

MessageBuffer::MessageBuffer(std::vector<std::byte> wire) : bytes_(std::move(wire)) {}

void MessageBuffer::putTag(Tag t) {
  bytes_.push_back(static_cast<std::byte>(t));
}

void MessageBuffer::expectTag(Tag t) {
  if (cursor_ >= bytes_.size()) {
    throw std::runtime_error("MessageBuffer: unpack past end of buffer");
  }
  const auto got = static_cast<Tag>(bytes_[cursor_]);
  ++cursor_;
  if (got != t) {
    throw std::runtime_error("MessageBuffer: type/order mismatch while unpacking");
  }
}

void MessageBuffer::putRaw(const void* p, std::size_t n) {
  const auto* b = static_cast<const std::byte*>(p);
  bytes_.insert(bytes_.end(), b, b + n);
}

void MessageBuffer::getRaw(void* p, std::size_t n) {
  if (cursor_ + n > bytes_.size()) {
    throw std::runtime_error("MessageBuffer: unpack past end of buffer");
  }
  std::memcpy(p, bytes_.data() + cursor_, n);
  cursor_ += n;
}

void MessageBuffer::pack(double v) {
  putTag(Tag::Double);
  putRaw(&v, sizeof v);
}

void MessageBuffer::pack(std::int64_t v) {
  putTag(Tag::Int64);
  putRaw(&v, sizeof v);
}

void MessageBuffer::pack(std::uint64_t v) {
  putTag(Tag::Uint64);
  putRaw(&v, sizeof v);
}

void MessageBuffer::pack(const std::string& v) {
  putTag(Tag::String);
  const std::uint64_t n = v.size();
  putRaw(&n, sizeof n);
  putRaw(v.data(), v.size());
}

void MessageBuffer::pack(std::span<const double> v) {
  putTag(Tag::DoubleVector);
  const std::uint64_t n = v.size();
  putRaw(&n, sizeof n);
  putRaw(v.data(), v.size_bytes());
}

double MessageBuffer::unpackDouble() {
  expectTag(Tag::Double);
  double v = 0.0;
  getRaw(&v, sizeof v);
  return v;
}

std::int64_t MessageBuffer::unpackInt64() {
  expectTag(Tag::Int64);
  std::int64_t v = 0;
  getRaw(&v, sizeof v);
  return v;
}

std::uint64_t MessageBuffer::unpackUint64() {
  expectTag(Tag::Uint64);
  std::uint64_t v = 0;
  getRaw(&v, sizeof v);
  return v;
}

std::string MessageBuffer::unpackString() {
  expectTag(Tag::String);
  std::uint64_t n = 0;
  getRaw(&n, sizeof n);
  std::string v(n, '\0');
  getRaw(v.data(), n);
  return v;
}

std::vector<double> MessageBuffer::unpackDoubleVector() {
  expectTag(Tag::DoubleVector);
  std::uint64_t n = 0;
  getRaw(&n, sizeof n);
  std::vector<double> v(n);
  getRaw(v.data(), n * sizeof(double));
  return v;
}

}  // namespace sfopt::mw
