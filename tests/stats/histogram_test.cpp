#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

using sfopt::stats::Histogram;

TEST(Histogram, RejectsInvalidConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.0);   // bin 0
  h.add(0.99);  // bin 0
  h.add(1.0);   // bin 1
  h.add(9.99);  // bin 9
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, TopEdgeIsInclusive) {
  Histogram h(0.0, 10.0, 10);
  h.add(10.0);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, UnderflowAndOverflow) {
  Histogram h(-1.0, 1.0, 4);
  h.add(-2.0);
  h.add(2.0);
  h.add(0.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, NanCountsAsOverflowNotBin) {
  Histogram h(0.0, 1.0, 2);
  h.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(0) + h.count(1), 0u);
}

TEST(Histogram, BinCenters) {
  Histogram h(0.0, 4.0, 4);
  EXPECT_DOUBLE_EQ(h.binCenter(0), 0.5);
  EXPECT_DOUBLE_EQ(h.binCenter(3), 3.5);
  EXPECT_THROW((void)h.binCenter(4), std::out_of_range);
}

TEST(Histogram, BalanceAroundZero) {
  Histogram h(-4.0, 4.0, 8);
  // Three below zero, one near, two above.
  h.add(-3.5);
  h.add(-2.5);
  h.add(-1.5);
  h.add(0.1);   // bin centered at 0.5 = half width -> counted as "near"
  h.add(2.5);
  h.add(3.5);
  const auto b = h.balanceAroundZero();
  EXPECT_NEAR(b.below + b.near + b.above, 1.0, 1e-12);
  EXPECT_NEAR(b.below, 3.0 / 6.0, 1e-12);
  EXPECT_NEAR(b.near, 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(b.above, 2.0 / 6.0, 1e-12);
}

TEST(Histogram, AddAll) {
  Histogram h(0.0, 1.0, 2);
  h.addAll({0.1, 0.2, 0.7});
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
}

TEST(Histogram, AsciiRenderContainsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const std::string art = h.asciiRender(10);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find('2'), std::string::npos);
}

}  // namespace
