#include "core/vertex.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/welford.hpp"

namespace {

using sfopt::core::Vertex;

TEST(Vertex, HoldsPointAndId) {
  Vertex v({1.0, 2.0}, 42);
  EXPECT_EQ(v.id(), 42u);
  EXPECT_EQ(v.point(), (sfopt::core::Point{1.0, 2.0}));
  EXPECT_EQ(v.sampleCount(), 0);
}

TEST(Vertex, AbsorbUpdatesEstimate) {
  Vertex v({0.0, 0.0}, 0);
  v.absorb(2.0);
  v.absorb(4.0);
  EXPECT_EQ(v.sampleCount(), 2);
  EXPECT_DOUBLE_EQ(v.mean(), 3.0);
  EXPECT_DOUBLE_EQ(v.estimatedSigma(), std::sqrt(2.0 / 2.0));
}

TEST(Vertex, TotalTimeScalesWithDuration) {
  Vertex v({0.0, 0.0}, 0);
  v.absorb(1.0);
  v.absorb(1.0);
  v.absorb(1.0);
  EXPECT_DOUBLE_EQ(v.totalTime(2.0), 6.0);
  EXPECT_DOUBLE_EQ(v.totalTime(0.5), 1.5);
}

TEST(Vertex, ExactSigmaFollowsDecayLaw) {
  Vertex v({0.0, 0.0}, 0);
  EXPECT_TRUE(std::isinf(v.exactSigma(10.0, 1.0)));
  for (int i = 0; i < 4; ++i) v.absorb(0.0);
  // t = 4, sigma = sigma0 / sqrt(4) = sigma0 / 2.
  EXPECT_DOUBLE_EQ(v.exactSigma(10.0, 1.0), 5.0);
  for (int i = 0; i < 12; ++i) v.absorb(0.0);
  // t = 16.
  EXPECT_DOUBLE_EQ(v.exactSigma(10.0, 1.0), 2.5);
}

TEST(Vertex, AbsorbWelfordBatch) {
  Vertex v({0.0}, 1);
  v.absorb(1.0);
  sfopt::stats::Welford partial;
  partial.add(3.0);
  partial.add(5.0);
  v.absorb(partial);
  EXPECT_EQ(v.sampleCount(), 3);
  EXPECT_DOUBLE_EQ(v.mean(), 3.0);
}

TEST(Vertex, SigmaInfiniteUntilTwoSamples) {
  Vertex v({0.0}, 1);
  v.absorb(1.0);
  EXPECT_TRUE(std::isinf(v.estimatedSigma()));
  v.absorb(2.0);
  EXPECT_FALSE(std::isinf(v.estimatedSigma()));
}

}  // namespace
