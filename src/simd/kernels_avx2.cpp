// AVX2 kernels (4-lane double).  Compiled per-TU with -mavx2 -mfma so the
// rest of the tree stays baseline-ISA, and -ffp-contract=off so the
// compiler cannot fuse the explicit mul/add sequences — every lane op is
// the exact IEEE instruction written here, making each pair/sample's
// result independent of its lane and block position.

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include "simd/kernels.hpp"
#include "stats/welford.hpp"

namespace sfopt::simd::detail {

void welfordChunkAvx2(const double* samples, std::int64_t count, std::int64_t* outN,
                      double* outMean, double* outM2) {
  const std::int64_t main = count - count % 4;
  __m256d cnt = _mm256_setzero_pd();
  __m256d mean = _mm256_setzero_pd();
  __m256d m2 = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  for (std::int64_t k = 0; k < main; k += 4) {
    const __m256d x = _mm256_loadu_pd(samples + k);
    cnt = _mm256_add_pd(cnt, one);
    const __m256d delta = _mm256_sub_pd(x, mean);
    mean = _mm256_add_pd(mean, _mm256_div_pd(delta, cnt));
    m2 = _mm256_add_pd(m2, _mm256_mul_pd(delta, _mm256_sub_pd(x, mean)));
  }
  alignas(32) double cntL[4];
  alignas(32) double meanL[4];
  alignas(32) double m2L[4];
  _mm256_store_pd(cntL, cnt);
  _mm256_store_pd(meanL, mean);
  _mm256_store_pd(m2L, m2);
  // Canonical reduction: fold lanes 0..3 in order, then the tail samples
  // sequentially.
  stats::Welford merged;
  for (int l = 0; l < 4; ++l) {
    merged.merge(
        stats::Welford::fromMoments(static_cast<std::int64_t>(cntL[l]), meanL[l], m2L[l]));
  }
  for (std::int64_t k = main; k < count; ++k) merged.add(samples[k]);
  *outN = merged.count();
  *outMean = merged.mean();
  *outM2 = merged.sumSquaredDeviations();
}

void forcePairBlockAvx2(const ForceConstants& c, const ForcePairBlockIn& in,
                        const ForcePairBlockOut& out) {
  const __m256d edge = _mm256_set1_pd(c.boxEdge);
  const __m256d invEdge = _mm256_set1_pd(c.invBoxEdge);
  const __m256d rcV = _mm256_set1_pd(c.rc);
  const __m256d rc2V = _mm256_set1_pd(c.rc2);
  const __m256d invRcV = _mm256_set1_pd(c.invRc);
  const __m256d invRc2V = _mm256_set1_pd(c.invRc2);
  const __m256d s2V = _mm256_set1_pd(c.s2);
  const __m256d eps4V = _mm256_set1_pd(c.eps4);
  const __m256d eps24V = _mm256_set1_pd(c.eps24);
  const __m256d ljErcV = _mm256_set1_pd(c.ljErc);
  const __m256d ljFrcV = _mm256_set1_pd(c.ljFrc);
  const __m256d qScaleV = _mm256_set1_pd(c.coulombScale);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d two = _mm256_set1_pd(2.0);
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d zero = _mm256_setzero_pd();
  const int rnd = _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC;

  for (std::int64_t k = 0; k < in.count; k += 4) {
    const __m128i vi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in.i + k));
    const __m128i vj = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in.j + k));

    __m256d dx = _mm256_sub_pd(_mm256_i32gather_pd(in.x, vi, 8), _mm256_i32gather_pd(in.x, vj, 8));
    __m256d dy = _mm256_sub_pd(_mm256_i32gather_pd(in.y, vi, 8), _mm256_i32gather_pd(in.y, vj, 8));
    __m256d dz = _mm256_sub_pd(_mm256_i32gather_pd(in.z, vi, 8), _mm256_i32gather_pd(in.z, vj, 8));
    dx = _mm256_sub_pd(dx, _mm256_mul_pd(edge, _mm256_round_pd(_mm256_mul_pd(dx, invEdge), rnd)));
    dy = _mm256_sub_pd(dy, _mm256_mul_pd(edge, _mm256_round_pd(_mm256_mul_pd(dy, invEdge), rnd)));
    dz = _mm256_sub_pd(dz, _mm256_mul_pd(edge, _mm256_round_pd(_mm256_mul_pd(dz, invEdge), rnd)));

    const __m256d r2 = _mm256_add_pd(
        _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)), _mm256_mul_pd(dz, dz));
    const __m256d r = _mm256_sqrt_pd(r2);
    const __m256d within = _mm256_cmp_pd(r2, rc2V, _CMP_LT_OQ);

    const __m256d qq = _mm256_mul_pd(_mm256_mul_pd(qScaleV, _mm256_i32gather_pd(in.q, vi, 8)),
                                     _mm256_i32gather_pd(in.q, vj, 8));
    const __m256d coulombE = _mm256_mul_pd(
        qq, _mm256_add_pd(_mm256_sub_pd(_mm256_div_pd(one, r), invRcV),
                          _mm256_div_pd(_mm256_sub_pd(r, rcV), rc2V)));
    const __m256d coulombF = _mm256_mul_pd(qq, _mm256_sub_pd(_mm256_div_pd(one, r2), invRc2V));
    const __m256d coulombS = _mm256_div_pd(coulombF, r);

    const __m256d inv2 = _mm256_div_pd(s2V, r2);
    const __m256d inv6 = _mm256_mul_pd(_mm256_mul_pd(inv2, inv2), inv2);
    const __m256d inv12 = _mm256_mul_pd(inv6, inv6);
    const __m256d ljE0 = _mm256_mul_pd(eps4V, _mm256_sub_pd(inv12, inv6));
    const __m256d ljFOverR =
        _mm256_div_pd(_mm256_mul_pd(eps24V, _mm256_sub_pd(_mm256_mul_pd(two, inv12), inv6)), r2);
    const __m256d ljE =
        _mm256_add_pd(_mm256_sub_pd(ljE0, ljErcV), _mm256_mul_pd(ljFrcV, _mm256_sub_pd(r, rcV)));
    const __m256d ljF = _mm256_sub_pd(_mm256_mul_pd(ljFOverR, r), ljFrcV);
    const __m256d ljS = _mm256_div_pd(ljF, r);

    const __m256d oo = _mm256_mul_pd(_mm256_i32gather_pd(in.oxy, vi, 8),
                                     _mm256_i32gather_pd(in.oxy, vj, 8));
    const __m256d coulombOn = _mm256_and_pd(within, _mm256_cmp_pd(qq, zero, _CMP_NEQ_OQ));
    const __m256d ljOn = _mm256_and_pd(within, _mm256_cmp_pd(oo, half, _CMP_GT_OQ));

    _mm256_storeu_pd(out.dx + k, dx);
    _mm256_storeu_pd(out.dy + k, dy);
    _mm256_storeu_pd(out.dz + k, dz);
    _mm256_storeu_pd(out.coulombE + k, coulombE);
    _mm256_storeu_pd(out.coulombS + k, coulombS);
    _mm256_storeu_pd(out.ljE + k, ljE);
    _mm256_storeu_pd(out.ljS + k, ljS);
    const int withinBits = _mm256_movemask_pd(within);
    const int coulombBits = _mm256_movemask_pd(coulombOn);
    const int ljBits = _mm256_movemask_pd(ljOn);
    for (int l = 0; l < 4; ++l) {
      out.withinCutoff[k + l] = static_cast<std::uint8_t>((withinBits >> l) & 1);
      out.coulombActive[k + l] = static_cast<std::uint8_t>((coulombBits >> l) & 1);
      out.ljActive[k + l] = static_cast<std::uint8_t>((ljBits >> l) & 1);
    }
  }
}

}  // namespace sfopt::simd::detail

#endif  // x86
