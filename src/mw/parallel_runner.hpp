#pragma once

#include <cstdint>
#include <span>
#include <variant>

#include "core/algorithms.hpp"
#include "mw/processor_allocation.hpp"
#include "noise/stochastic_objective.hpp"

namespace sfopt::net {
class Transport;
}

namespace sfopt::mw {

/// Any of the four simplex variants, selected by its options type.
using AlgorithmOptions = std::variant<core::DetOptions, core::MaxNoiseOptions,
                                      core::AndersonOptions, core::PCOptions>;

/// Shape of the master-worker deployment.
struct MWRunConfig {
  /// Number of MW workers; 0 means the paper's d+3 (d+1 vertices plus two
  /// trial vertices).
  int workers = 0;
  /// Ns: client simulations per vertex server.
  int clientsPerWorker = 1;
  /// Optional observability spine for the driver's task-lifecycle metrics
  /// (non-owning; must outlive the run).  Engine-layer instrumentation is
  /// configured separately via the algorithm's CommonOptions.
  telemetry::Telemetry* telemetry = nullptr;
  /// Backstop for a wedged run: longest silence the driver tolerates while
  /// tasks are in flight (see MWDriver::setRecvTimeout).
  double recvTimeoutSeconds = 300.0;
};

/// Outcome of a master-worker optimization run: the optimization result
/// plus the deployment and communication accounting reported in the
/// paper's scale-up study.
struct MWRunResult {
  core::OptimizationResult optimization;
  ProcessorAllocation allocation;
  std::uint64_t messagesSent = 0;
  std::uint64_t bytesSent = 0;
  std::uint64_t tasksCompleted = 0;
  std::uint64_t tasksRequeued = 0;  ///< failure-driven re-dispatches
  double masterWallSeconds = 0.0;   ///< real (host) time spent, for Fig 3.18c
};

/// Run a simplex optimization with sampling farmed out over the MW
/// master-worker runtime: rank 0 hosts the driver and the simplex logic,
/// ranks 1..W host SamplingWorkers, each fronting a VertexServer with Ns
/// clients.  Results are bitwise identical to the sequential run of the
/// same options (counter-based noise), which the integration tests verify.
[[nodiscard]] MWRunResult runSimplexOverMW(const noise::StochasticObjective& objective,
                                           std::span<const core::Point> initial,
                                           const AlgorithmOptions& options,
                                           const MWRunConfig& config = {});

/// The master half of runSimplexOverMW over an already-populated
/// transport: rank 0 of `comm` hosts the driver and the simplex logic;
/// whoever occupies ranks 1..size-1 (in-process threads or remote
/// processes over TCP) must run SamplingWorker loops against the same
/// objective.  This is what `sfopt serve` calls — distributed results are
/// bitwise identical to the in-process run because the noise is
/// counter-based and the wire encoding is byte-exact.
[[nodiscard]] MWRunResult runSimplexOverTransport(const noise::StochasticObjective& objective,
                                                  std::span<const core::Point> initial,
                                                  const AlgorithmOptions& options,
                                                  net::Transport& comm,
                                                  const MWRunConfig& config = {});

}  // namespace sfopt::mw
