#include "core/initial_simplex.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

using namespace sfopt;
using core::Point;

TEST(RandomSimplexPoints, ShapeAndRange) {
  noise::RngStream rng(1, 0);
  const auto pts = core::randomSimplexPoints(4, -5.0, 5.0, rng);
  ASSERT_EQ(pts.size(), 5u);
  for (const auto& p : pts) {
    ASSERT_EQ(p.size(), 4u);
    for (double c : p) {
      EXPECT_GE(c, -5.0);
      EXPECT_LT(c, 5.0);
    }
  }
}

TEST(RandomSimplexPoints, ReproducibleByStream) {
  noise::RngStream a(9, 3);
  noise::RngStream b(9, 3);
  EXPECT_EQ(core::randomSimplexPoints(3, -6.0, 3.0, a),
            core::randomSimplexPoints(3, -6.0, 3.0, b));
}

TEST(RandomSimplexPoints, DifferentStreamsDiffer) {
  noise::RngStream a(9, 3);
  noise::RngStream b(9, 4);
  EXPECT_NE(core::randomSimplexPoints(3, -6.0, 3.0, a),
            core::randomSimplexPoints(3, -6.0, 3.0, b));
}

TEST(RandomSimplexPoints, Validation) {
  noise::RngStream rng(1, 0);
  EXPECT_THROW((void)core::randomSimplexPoints(1, -1.0, 1.0, rng), std::invalid_argument);
  EXPECT_THROW((void)core::randomSimplexPoints(3, 1.0, 1.0, rng), std::invalid_argument);
}

TEST(AxisSimplexPoints, Structure) {
  const auto pts = core::axisSimplexPoints(Point{1.0, 2.0, 3.0}, 0.5);
  ASSERT_EQ(pts.size(), 4u);
  EXPECT_EQ(pts[0], (Point{1.0, 2.0, 3.0}));
  EXPECT_EQ(pts[1], (Point{1.5, 2.0, 3.0}));
  EXPECT_EQ(pts[2], (Point{1.0, 2.5, 3.0}));
  EXPECT_EQ(pts[3], (Point{1.0, 2.0, 3.5}));
}

TEST(AxisSimplexPoints, Validation) {
  EXPECT_THROW((void)core::axisSimplexPoints(Point{1.0}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)core::axisSimplexPoints(Point{1.0, 2.0}, 0.0), std::invalid_argument);
}

}  // namespace
