#pragma once

#include <cstdint>
#include <exception>
#include <string>

#include "mw/comm.hpp"
#include "mw/mw_task.hpp"

namespace sfopt::mw {

/// Re-implementation of the MW framework's MWWorker abstraction: "execute
/// worker tasks, compute results, report results back, and wait for
/// another task".
///
/// A concrete worker implements executeTask(); run() is the standard
/// receive/execute/reply loop, terminated by a shutdown message from the
/// master.  One worker instance is driven by one thread (over the
/// in-process CommWorld) or one process (over a TcpWorkerTransport).
class MWWorker {
 public:
  MWWorker(net::Transport& comm, Rank rank) : comm_(comm), rank_(rank) {}
  virtual ~MWWorker() = default;

  MWWorker(const MWWorker&) = delete;
  MWWorker& operator=(const MWWorker&) = delete;

  /// The worker main loop.  Returns after a shutdown message.  A failing
  /// task (exception out of executeTask) is reported to the master with
  /// kTagError so it can be requeued elsewhere; the worker itself stays up.
  void run() {
    for (;;) {
      Message msg = comm_.recv(rank_);
      if (msg.tag == kTagShutdown) return;
      if (msg.tag != kTagTask) continue;  // ignore stray messages
      const std::uint64_t taskId = msg.payload.unpackUint64();
      MessageBuffer result;
      result.pack(taskId);
      try {
        executeTask(msg.payload, result);
      } catch (const std::exception& e) {
        ++tasksFailed_;
        MessageBuffer error;
        error.pack(taskId);
        error.pack(std::string(e.what()));
        comm_.send(rank_, msg.source, kTagError, std::move(error));
        continue;
      }
      ++tasksExecuted_;
      comm_.send(rank_, msg.source, kTagResult, std::move(result));
    }
  }

  [[nodiscard]] Rank rank() const noexcept { return rank_; }
  [[nodiscard]] std::uint64_t tasksExecuted() const noexcept { return tasksExecuted_; }
  [[nodiscard]] std::uint64_t tasksFailed() const noexcept { return tasksFailed_; }

 protected:
  /// Unpack the task input from `in`, compute, pack the result into `out`.
  /// (The task id has already been consumed from `in` and echoed to `out`.)
  virtual void executeTask(MessageBuffer& in, MessageBuffer& out) = 0;

  [[nodiscard]] net::Transport& comm() noexcept { return comm_; }

 private:
  net::Transport& comm_;
  Rank rank_;
  std::uint64_t tasksExecuted_ = 0;
  std::uint64_t tasksFailed_ = 0;
};

}  // namespace sfopt::mw
