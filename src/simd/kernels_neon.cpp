// NEON kernels (2-lane double, aarch64 baseline — no extra compile flags
// needed).  Same structure and per-lane-purity contract as the x86 TUs;
// compiled with -ffp-contract=off for the same reason.

#if defined(__aarch64__)

#include <arm_neon.h>

#include "simd/kernels.hpp"
#include "stats/welford.hpp"

namespace sfopt::simd::detail {

namespace {

inline float64x2_t load2(const double* p, std::size_t a, std::size_t b) {
  return vsetq_lane_f64(p[b], vdupq_n_f64(p[a]), 1);
}

}  // namespace

void welfordChunkNeon(const double* samples, std::int64_t count, std::int64_t* outN,
                      double* outMean, double* outM2) {
  const std::int64_t main = count - count % 2;
  float64x2_t cnt = vdupq_n_f64(0.0);
  float64x2_t mean = vdupq_n_f64(0.0);
  float64x2_t m2 = vdupq_n_f64(0.0);
  const float64x2_t one = vdupq_n_f64(1.0);
  for (std::int64_t k = 0; k < main; k += 2) {
    const float64x2_t x = vld1q_f64(samples + k);
    cnt = vaddq_f64(cnt, one);
    const float64x2_t delta = vsubq_f64(x, mean);
    mean = vaddq_f64(mean, vdivq_f64(delta, cnt));
    m2 = vaddq_f64(m2, vmulq_f64(delta, vsubq_f64(x, mean)));
  }
  // Canonical reduction: fold lanes 0..1 in order, then the tail samples
  // sequentially.
  stats::Welford merged;
  for (int l = 0; l < 2; ++l) {
    const double n = l == 0 ? vgetq_lane_f64(cnt, 0) : vgetq_lane_f64(cnt, 1);
    const double mu = l == 0 ? vgetq_lane_f64(mean, 0) : vgetq_lane_f64(mean, 1);
    const double ss = l == 0 ? vgetq_lane_f64(m2, 0) : vgetq_lane_f64(m2, 1);
    merged.merge(stats::Welford::fromMoments(static_cast<std::int64_t>(n), mu, ss));
  }
  for (std::int64_t k = main; k < count; ++k) merged.add(samples[k]);
  *outN = merged.count();
  *outMean = merged.mean();
  *outM2 = merged.sumSquaredDeviations();
}

void forcePairBlockNeon(const ForceConstants& c, const ForcePairBlockIn& in,
                        const ForcePairBlockOut& out) {
  const float64x2_t edge = vdupq_n_f64(c.boxEdge);
  const float64x2_t invEdge = vdupq_n_f64(c.invBoxEdge);
  const float64x2_t rcV = vdupq_n_f64(c.rc);
  const float64x2_t rc2V = vdupq_n_f64(c.rc2);
  const float64x2_t invRcV = vdupq_n_f64(c.invRc);
  const float64x2_t invRc2V = vdupq_n_f64(c.invRc2);
  const float64x2_t s2V = vdupq_n_f64(c.s2);
  const float64x2_t eps4V = vdupq_n_f64(c.eps4);
  const float64x2_t eps24V = vdupq_n_f64(c.eps24);
  const float64x2_t ljErcV = vdupq_n_f64(c.ljErc);
  const float64x2_t ljFrcV = vdupq_n_f64(c.ljFrc);
  const float64x2_t qScaleV = vdupq_n_f64(c.coulombScale);
  const float64x2_t one = vdupq_n_f64(1.0);
  const float64x2_t two = vdupq_n_f64(2.0);
  const float64x2_t half = vdupq_n_f64(0.5);
  const float64x2_t zero = vdupq_n_f64(0.0);

  for (std::int64_t k = 0; k < in.count; k += 2) {
    const auto i0 = static_cast<std::size_t>(in.i[k]);
    const auto i1 = static_cast<std::size_t>(in.i[k + 1]);
    const auto j0 = static_cast<std::size_t>(in.j[k]);
    const auto j1 = static_cast<std::size_t>(in.j[k + 1]);

    float64x2_t dx = vsubq_f64(load2(in.x, i0, i1), load2(in.x, j0, j1));
    float64x2_t dy = vsubq_f64(load2(in.y, i0, i1), load2(in.y, j0, j1));
    float64x2_t dz = vsubq_f64(load2(in.z, i0, i1), load2(in.z, j0, j1));
    dx = vsubq_f64(dx, vmulq_f64(edge, vrndnq_f64(vmulq_f64(dx, invEdge))));
    dy = vsubq_f64(dy, vmulq_f64(edge, vrndnq_f64(vmulq_f64(dy, invEdge))));
    dz = vsubq_f64(dz, vmulq_f64(edge, vrndnq_f64(vmulq_f64(dz, invEdge))));

    const float64x2_t r2 =
        vaddq_f64(vaddq_f64(vmulq_f64(dx, dx), vmulq_f64(dy, dy)), vmulq_f64(dz, dz));
    const float64x2_t r = vsqrtq_f64(r2);
    const uint64x2_t within = vcltq_f64(r2, rc2V);

    const float64x2_t qq =
        vmulq_f64(vmulq_f64(qScaleV, load2(in.q, i0, i1)), load2(in.q, j0, j1));
    const float64x2_t coulombE =
        vmulq_f64(qq, vaddq_f64(vsubq_f64(vdivq_f64(one, r), invRcV),
                                vdivq_f64(vsubq_f64(r, rcV), rc2V)));
    const float64x2_t coulombF = vmulq_f64(qq, vsubq_f64(vdivq_f64(one, r2), invRc2V));
    const float64x2_t coulombS = vdivq_f64(coulombF, r);

    const float64x2_t inv2 = vdivq_f64(s2V, r2);
    const float64x2_t inv6 = vmulq_f64(vmulq_f64(inv2, inv2), inv2);
    const float64x2_t inv12 = vmulq_f64(inv6, inv6);
    const float64x2_t ljE0 = vmulq_f64(eps4V, vsubq_f64(inv12, inv6));
    const float64x2_t ljFOverR =
        vdivq_f64(vmulq_f64(eps24V, vsubq_f64(vmulq_f64(two, inv12), inv6)), r2);
    const float64x2_t ljE =
        vaddq_f64(vsubq_f64(ljE0, ljErcV), vmulq_f64(ljFrcV, vsubq_f64(r, rcV)));
    const float64x2_t ljF = vsubq_f64(vmulq_f64(ljFOverR, r), ljFrcV);
    const float64x2_t ljS = vdivq_f64(ljF, r);

    const float64x2_t oo = vmulq_f64(load2(in.oxy, i0, i1), load2(in.oxy, j0, j1));
    const uint64x2_t notZero =
        veorq_u64(vceqq_f64(qq, zero), vdupq_n_u64(~0ULL));
    const uint64x2_t coulombOn = vandq_u64(within, notZero);
    const uint64x2_t ljOn = vandq_u64(within, vcgtq_f64(oo, half));

    vst1q_f64(out.dx + k, dx);
    vst1q_f64(out.dy + k, dy);
    vst1q_f64(out.dz + k, dz);
    vst1q_f64(out.coulombE + k, coulombE);
    vst1q_f64(out.coulombS + k, coulombS);
    vst1q_f64(out.ljE + k, ljE);
    vst1q_f64(out.ljS + k, ljS);
    out.withinCutoff[k] = vgetq_lane_u64(within, 0) != 0 ? 1 : 0;
    out.withinCutoff[k + 1] = vgetq_lane_u64(within, 1) != 0 ? 1 : 0;
    out.coulombActive[k] = vgetq_lane_u64(coulombOn, 0) != 0 ? 1 : 0;
    out.coulombActive[k + 1] = vgetq_lane_u64(coulombOn, 1) != 0 ? 1 : 0;
    out.ljActive[k] = vgetq_lane_u64(ljOn, 0) != 0 ? 1 : 0;
    out.ljActive[k + 1] = vgetq_lane_u64(ljOn, 1) != 0 ? 1 : 0;
  }
}

}  // namespace sfopt::simd::detail

#endif  // __aarch64__
