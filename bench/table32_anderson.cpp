// Reproduces Table 3.2: the same controlled-noise 3-d Rosenbrock campaign
// as Table 3.1, run with the Anderson et al. sampling criterion (eq. 2.4)
// for k1 in {2^0, 2^10, 2^20, 2^30} and k2 = 0.

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/harness.hpp"
#include "core/initial_simplex.hpp"
#include "testfunctions/functions.hpp"

using namespace sfopt;

int main() {
  bench::printHeader(
      "Table 3.2 - Anderson criterion on noisy 3-d Rosenbrock (controlled noise)");

  const std::vector<double> k1Exponents{0.0, 10.0, 20.0, 30.0};
  const auto solution = testfunctions::rosenbrockMinimizer(3);

  std::printf("\n%-6s %-7s %8s %12s %10s %12s %10s\n", "input", "k1", "N", "R", "D",
              "samples", "time(s)");
  for (int input = 1; input <= 5; ++input) {
    noise::RngStream startRng(44, static_cast<std::uint64_t>(input));
    const auto start = core::randomSimplexPoints(3, -6.0, 3.0, startRng);
    for (double e : k1Exponents) {
      auto objective = bench::noisyRosenbrock(3, 10.0, 7000 + static_cast<std::uint64_t>(input));
      core::AndersonOptions opts;
      opts.k1 = std::pow(2.0, e);
      opts.k2 = 0.0;
      bench::applyTableBudget(opts.common);
      const auto res = core::runAnderson(objective, start, opts);
      const auto m = bench::measure(res, solution);
      std::printf("%-6d 2^%-5.0f %8lld %12.4g %10.4g %12lld %10.3g\n", input, e,
                  static_cast<long long>(m.iterations), m.functionError, m.distance,
                  static_cast<long long>(res.totalSamples), res.elapsedTime);
    }
  }
  std::printf(
      "\nPaper shape check: small k1 starves the run (small N, large R) because\n"
      "the strict cutoff eats the whole budget; large k1 approaches MN-quality\n"
      "results - the criterion must be re-tuned per problem, unlike MN.\n");
  return 0;
}
