// The paper's flagship application, end to end: automated
// reparameterization of a TIP4P-class water model.
//
// The three force-field parameters (epsilon, sigma, qH) are fit against
// six experimental properties (internal energy, pressure, diffusion
// coefficient and the three radial-distribution residuals) through the
// weighted cost of eq. 3.4, starting from the dissertation's deliberately
// poor Table 3.4a simplex.  The evaluation uses the calibrated TIP4P
// surrogate with sampling noise; see examples/md_water_demo.cpp for the
// raw MD engine behind it.

#include <cstdio>

#include "core/algorithms.hpp"
#include "water/cost.hpp"
#include "water/experimental.hpp"

int main() {
  using namespace sfopt;

  water::WaterCostObjective::Options objOpts;
  objOpts.sigma0 = 0.2;  // sampling noise on the cost
  const water::WaterCostObjective objective(objOpts);

  const auto rows = water::table34InitialPoints();
  const std::vector<core::Point> start(rows.begin(), rows.begin() + 4);

  std::printf("initial simplex (epsilon, sigma, qH):\n");
  for (const auto& p : start) std::printf("  %s\n", core::toString(p, 4).c_str());

  core::PCOptions options;
  options.maxNoiseGate = true;  // PC+MN, the paper's most effective variant
  options.common.termination.tolerance = 1e-3;
  options.common.termination.maxIterations = 400;
  options.common.termination.maxSamples = 4'000'000;
  const auto result = core::runPointToPointWithMaxNoise(objective, start, options);

  const auto tip4p = md::tip4pPublished();
  std::printf("\noptimized parameters (%lld steps, %s):\n",
              static_cast<long long>(result.iterations), toString(result.reason).data());
  std::printf("  epsilon = %.4f kcal/mol   (published TIP4P: %.4f)\n", result.best[0],
              tip4p.epsilon);
  std::printf("  sigma   = %.4f A          (published TIP4P: %.4f)\n", result.best[1],
              tip4p.sigma);
  std::printf("  qH      = %.4f e          (published TIP4P: %.4f)\n", result.best[2],
              tip4p.qH);

  const auto props = objective.surrogate().properties(water::paramsFromPoint(result.best));
  const auto exp = water::experimentalTargets();
  std::printf("\nmodel properties vs experiment:\n");
  std::printf("  U = %7.2f kJ/mol      (experiment %.1f)\n", props.internalEnergyKJPerMol,
              exp.internalEnergyKJPerMol);
  std::printf("  P = %7.1f atm          (experiment %.0f)\n", props.pressureAtm,
              exp.pressureAtm);
  std::printf("  D = %7.2f 1e-5 cm^2/s  (experiment %.2f)\n", props.diffusion1e5Cm2PerS,
              exp.diffusion1e5Cm2PerS);
  std::printf("  g(r) residuals: OO %.4f, OH %.4f, HH %.4f\n", props.rdfResidualOO,
              props.rdfResidualOH, props.rdfResidualHH);
  std::printf("\ncost: optimized g = %.4f  vs  published-TIP4P g = %.4f\n",
              *objective.trueValue(result.best),
              *objective.trueValue(std::vector<double>{tip4p.epsilon, tip4p.sigma, tip4p.qH}));
  return 0;
}
