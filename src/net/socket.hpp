#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace sfopt::net {

/// RAII wrapper around a POSIX socket descriptor.  Move-only; closing is
/// idempotent.  All sockets handed out by the helpers below are
/// non-blocking with TCP_NODELAY set (the MW protocol is latency-bound
/// request/response, so Nagle only hurts).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Bind + listen on all interfaces; port 0 picks an ephemeral port (read it
/// back with localPort).  Throws std::runtime_error on failure.
[[nodiscard]] Socket tcpListen(std::uint16_t port);

/// The locally bound port of a listening socket.
[[nodiscard]] std::uint16_t localPort(const Socket& listener);

/// Accept one pending connection, or nullopt when none is queued.
[[nodiscard]] std::optional<Socket> tcpAccept(const Socket& listener);

/// Connect to host:port, waiting at most `timeoutSeconds` for the connect
/// to complete.  Resolves names via getaddrinfo.  Throws std::runtime_error
/// on resolution, connection, or timeout failure.
[[nodiscard]] Socket tcpConnect(const std::string& host, std::uint16_t port,
                                double timeoutSeconds);

/// Monotonic seconds for transport-internal timing (heartbeats, deadlines).
[[nodiscard]] double monotonicSeconds() noexcept;

}  // namespace sfopt::net
