#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/algorithms.hpp"
#include "mw/mw_driver.hpp"
#include "mw/mw_worker.hpp"
#include "mw/parallel_runner.hpp"
#include "mw/sampling_service.hpp"
#include "net/tcp_transport.hpp"
#include "noise/noisy_function.hpp"
#include "telemetry/sink.hpp"
#include "telemetry/span.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_analysis.hpp"
#include "testfunctions/functions.hpp"

namespace {

using namespace sfopt;

std::vector<telemetry::Event> parseEvents(const std::string& jsonl) {
  std::vector<telemetry::Event> out;
  std::istringstream in(jsonl);
  std::string line;
  while (std::getline(in, line)) {
    if (auto e = telemetry::parseJsonLine(line)) out.push_back(std::move(*e));
  }
  return out;
}

/// Thrown past MWWorker::run()'s catch(std::exception) so the worker
/// "crashes" instead of reporting a polite kTagError — the transport is
/// destroyed mid-task and the master only learns from the dead socket.
struct Die {};

class EchoWorker final : public mw::MWWorker {
 public:
  EchoWorker(net::Transport& comm, mw::Rank rank, bool dieOnFirstTask)
      : MWWorker(comm, rank), die_(dieOnFirstTask) {}

 protected:
  void executeTask(mw::MessageBuffer& in, mw::MessageBuffer& out) override {
    if (die_) throw Die{};
    out.pack(in.unpackInt64() * 2);
  }

 private:
  bool die_;
};

TEST(DistributedFailure, KilledWorkerTaskIsRequeuedAndBatchCompletes) {
  telemetry::NoopSink sink;
  telemetry::Telemetry spine(sink);
  net::TcpCommWorld::Options opts;
  opts.telemetry = &spine;
  net::TcpCommWorld master(0, opts);
  const std::uint16_t port = master.port();

  // Worker 1 dies on its first task (abrupt socket close, no error reply);
  // worker 2 is healthy and picks up the pieces.
  std::vector<std::thread> threads;
  for (const bool die : {true, false}) {
    threads.emplace_back([port, die] {
      try {
        net::TcpWorkerTransport transport("127.0.0.1", port);
        EchoWorker worker(transport, transport.rank(), die);
        worker.run();
      } catch (const Die&) {
        // Crash: the transport goes down with the stack frame.
      } catch (const net::ConnectionLost&) {
      }
    });
    (void)master.waitForWorkers(master.liveWorkers() + 1, 10.0);
  }

  mw::MWDriver driver(master);
  driver.setRecvTimeout(10.0);
  std::vector<mw::MessageBuffer> inputs;
  for (std::int64_t v = 1; v <= 4; ++v) {
    mw::MessageBuffer b;
    b.pack(v);
    inputs.push_back(std::move(b));
  }
  auto results = driver.executeBuffers(std::move(inputs));

  ASSERT_EQ(results.size(), 4u);
  for (std::int64_t v = 1; v <= 4; ++v) {
    EXPECT_EQ(results[static_cast<std::size_t>(v - 1)].unpackInt64(), 2 * v);
  }
  EXPECT_EQ(driver.tasksCompleted(), 4u);
  EXPECT_EQ(driver.workersLost(), 1u);
  EXPECT_GE(driver.tasksRequeued(), 1u);
  EXPECT_EQ(driver.liveWorkerCount(), 1);

  // The driver's view and the transport telemetry tell the same story.
  EXPECT_EQ(spine.metrics().counter("net.disconnects").value(),
            static_cast<std::int64_t>(driver.workersLost()));

  driver.shutdown();
  for (auto& t : threads) t.join();
}

TEST(DistributedFailure, KilledWorkerLeavesCompleteSpanTree) {
  // Same crash scenario as above, but with the full tracing spine on both
  // sides: the requeued shard's span tree must reconstruct completely —
  // one lifecycle root, a queue + remote span per dispatch attempt, the
  // lost attempt ended with outcome=lost, and exactly one terminal marker.
  std::ostringstream masterJsonl;
  telemetry::JsonlSink masterSink(masterJsonl);
  telemetry::Telemetry masterSpine(masterSink);
  net::TcpCommWorld::Options opts;
  opts.telemetry = &masterSpine;
  net::TcpCommWorld master(0, opts);
  const std::uint16_t port = master.port();

  std::array<std::ostringstream, 2> workerJsonl;
  std::vector<std::thread> threads;
  int joined = 0;
  for (const bool die : {true, false}) {
    std::ostringstream& stream = workerJsonl[static_cast<std::size_t>(joined)];
    threads.emplace_back([port, die, &stream] {
      telemetry::JsonlSink sink(stream);
      telemetry::Telemetry spine(sink);
      try {
        net::TcpWorkerTransport::Options wopts;
        wopts.telemetry = &spine;
        net::TcpWorkerTransport transport("127.0.0.1", port, wopts);
        spine.tracer().seedIds(
            (static_cast<std::uint64_t>(transport.rank()) << 40) + 1);
        EchoWorker worker(transport, transport.rank(), die);
        worker.setTelemetry(&spine);
        worker.run();
      } catch (const Die&) {
      } catch (const net::ConnectionLost&) {
      }
    });
    (void)master.waitForWorkers(++joined, 10.0);
  }

  mw::MWDriver driver(master);
  driver.setTelemetry(&masterSpine);
  driver.setRecvTimeout(10.0);
  std::vector<mw::MessageBuffer> inputs;
  for (std::int64_t v = 1; v <= 4; ++v) {
    mw::MessageBuffer b;
    b.pack(v);
    inputs.push_back(std::move(b));
  }
  auto results = driver.executeBuffers(std::move(inputs));
  ASSERT_EQ(results.size(), 4u);
  EXPECT_GE(driver.tasksRequeued(), 1u);
  driver.shutdown();
  for (auto& t : threads) t.join();

  auto events = parseEvents(masterJsonl.str());
  for (const auto& stream : workerJsonl) {
    auto more = parseEvents(stream.str());
    events.insert(events.end(), more.begin(), more.end());
  }
  const telemetry::TraceReport report = telemetry::analyzeTraceEvents(events);
  for (const std::string& p : report.problems) ADD_FAILURE() << p;
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.traces, 4u);
  EXPECT_EQ(report.folded, 4u);
  EXPECT_EQ(report.discarded, 0u);
  EXPECT_GE(report.requeues, 1u);
  // Every dispatch attempt is accounted for: it either folded its shard or
  // was traced as requeued/lost — nothing vanishes.
  EXPECT_EQ(report.dispatched, report.traces + report.requeues);
  EXPECT_TRUE(report.workerSpansSeen);
}

TEST(DistributedFailure, TracingOnOffIsBitwiseIdentical) {
  // Tracing is observation-only: the same pipelined run with the full
  // span/metric spine attached must reproduce the untraced run bit for
  // bit, including with sharding and speculation exercising the
  // EvalScheduler terminal markers.
  const noise::NoisyFunction::Options noiseOpts{.sigma0 = 1.0, .seed = 7};
  const noise::NoisyFunction objective(2, &testfunctions::sphere, noiseOpts);
  const std::vector<core::Point> start = {{2.0, 2.0}, {3.0, 2.0}, {2.0, 3.0}};

  core::MaxNoiseOptions algo;
  algo.common.termination.maxIterations = 10;
  algo.common.termination.maxSamples = 20'000;
  algo.common.sampling.shardMinSamples = 64;
  algo.common.sampling.speculate = true;

  mw::MWRunConfig config;
  config.workers = 2;
  config.clientsPerWorker = 1;
  const auto untraced = mw::runSimplexOverMW(objective, start, algo, config);

  std::ostringstream jsonl;
  telemetry::JsonlSink sink(jsonl);
  telemetry::Telemetry spine(sink);
  core::MaxNoiseOptions tracedAlgo = algo;
  tracedAlgo.common.telemetry = &spine;
  mw::MWRunConfig tracedConfig = config;
  tracedConfig.telemetry = &spine;
  const auto traced = mw::runSimplexOverMW(objective, start, tracedAlgo, tracedConfig);

  EXPECT_EQ(traced.optimization.iterations, untraced.optimization.iterations);
  EXPECT_EQ(traced.optimization.totalSamples, untraced.optimization.totalSamples);
  EXPECT_EQ(traced.optimization.bestEstimate, untraced.optimization.bestEstimate);
  ASSERT_EQ(traced.optimization.best.size(), untraced.optimization.best.size());
  for (std::size_t i = 0; i < traced.optimization.best.size(); ++i) {
    EXPECT_EQ(traced.optimization.best[i], untraced.optimization.best[i]);
  }
  EXPECT_EQ(traced.tasksCompleted, untraced.tasksCompleted);

  // And the traced run actually produced shard span trees.
  const auto events = parseEvents(jsonl.str());
  const telemetry::TraceReport report = telemetry::analyzeTraceEvents(events);
  EXPECT_GT(report.traces, 0u);
  for (const std::string& p : report.problems) ADD_FAILURE() << p;
}

TEST(DistributedFailure, TcpRunMatchesInProcessRunBitwise) {
  const noise::NoisyFunction::Options noiseOpts{.sigma0 = 1.0, .seed = 99};
  const noise::NoisyFunction objective(2, &testfunctions::sphere, noiseOpts);
  const std::vector<core::Point> start = {{2.0, 2.0}, {3.0, 2.0}, {2.0, 3.0}};

  core::MaxNoiseOptions algo;
  algo.common.termination.maxIterations = 12;
  algo.common.termination.maxSamples = 20'000;
  const mw::AlgorithmOptions options = algo;

  mw::MWRunConfig config;
  config.workers = 2;
  config.clientsPerWorker = 1;
  const auto inProcess = mw::runSimplexOverMW(objective, start, options, config);

  net::TcpCommWorld master(0);
  const std::uint16_t port = master.port();
  std::vector<std::thread> threads;
  for (int i = 0; i < 2; ++i) {
    threads.emplace_back([port, &objective] {
      try {
        net::TcpWorkerTransport transport("127.0.0.1", port);
        mw::SamplingWorker worker(transport, transport.rank(), objective, 1);
        worker.run();
      } catch (const net::ConnectionLost&) {
      }
    });
    (void)master.waitForWorkers(i + 1, 10.0);
  }
  const auto overTcp = mw::runSimplexOverTransport(objective, start, options, master, config);
  for (auto& t : threads) t.join();

  // Counter-based noise + byte-exact little-endian marshaling: the
  // distributed run reproduces the in-process run bit for bit.
  EXPECT_EQ(overTcp.optimization.iterations, inProcess.optimization.iterations);
  EXPECT_EQ(overTcp.optimization.totalSamples, inProcess.optimization.totalSamples);
  EXPECT_EQ(overTcp.optimization.bestEstimate, inProcess.optimization.bestEstimate);
  ASSERT_EQ(overTcp.optimization.best.size(), inProcess.optimization.best.size());
  for (std::size_t i = 0; i < overTcp.optimization.best.size(); ++i) {
    EXPECT_EQ(overTcp.optimization.best[i], inProcess.optimization.best[i]);
  }
  EXPECT_EQ(overTcp.tasksCompleted, inProcess.tasksCompleted);
}

}  // namespace
