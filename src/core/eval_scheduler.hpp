#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/sampling_backend.hpp"
#include "stats/welford.hpp"

namespace sfopt::telemetry {
class Telemetry;
class Counter;
class Gauge;
class Histogram;
}

namespace sfopt::core {

/// Turns refinement batches into shardable sub-batch tickets over an
/// AsyncSamplingBackend and merges the completed shards back in canonical
/// order, so the evaluation fabric can be kept busy without perturbing a
/// single bit of the optimization trajectory.
///
/// Two independent mechanisms, both optional:
///
///  * **Sharding** (shardMinSamples > 0): a batch larger than the
///    threshold is split into up to `parallelism()` chunk-aligned shards
///    that run on different workers.  Shard boundaries always fall on the
///    canonical 64-sample chunk grid (kEvalChunkSamples), and the merge
///    folds the *chunks* — not the shards — in index order, so the merged
///    moments are bitwise identical whatever the shard count or completion
///    order.
///
///  * **Speculation** (speculate = true): callers pass the refinement they
///    expect to issue next as a hint; the scheduler submits it while the
///    caller is still blocked on (or deciding after) the current round.
///    Completed speculative chunks land in a staging buffer keyed by
///    (vertexId, startIndex, count) and are only handed out — and only
///    then charged by the caller to the sample counter and virtual clock —
///    when a later evaluate() asks for exactly that batch.  A hint that is
///    never consumed (gate opened, comparison resolved, vertex replaced)
///    is evicted without ever touching the trajectory, so speculation is
///    invisible to the paper's time accounting.
///
/// Memory is bounded: speculative submits stop when the in-flight ticket
/// count reaches maxOutstandingShards, and the staging buffer holds at
/// most maxStagedEntries batches (oldest evicted first; evicting an entry
/// with tickets still in flight is safe — their completions are dropped).
class EvalScheduler {
 public:
  struct Options {
    /// Shard a batch across workers once it exceeds this many samples;
    /// 0 disables sharding (every batch is a single ticket).
    std::int64_t shardMinSamples = 0;
    /// Honor prefetch hints; off = hints are ignored.
    bool speculate = false;
    /// Cap on in-flight tickets before speculative submits are skipped;
    /// 0 = 2 x backend parallelism, the "one round ahead" sweet spot.
    int maxOutstandingShards = 0;
    /// Cap on staged (completed or in-flight) speculative batches;
    /// 0 = same resolved value as maxOutstandingShards.
    int maxStagedEntries = 0;
    /// Give up when the backend stays silent this long with results
    /// outstanding (backstop; the MW driver detects dead workers first).
    double timeoutSeconds = 300.0;
    /// Observability spine (non-owning).  Registers eval.shards_per_batch,
    /// eval.speculation_hits / _misses and the eval.speculation_hit_rate
    /// gauge.  nullptr = uninstrumented.
    telemetry::Telemetry* telemetry = nullptr;
  };

  EvalScheduler(AsyncSamplingBackend& backend, Options options);

  /// Evaluate `requests` (blocking) and return one merged accumulator per
  /// request, in request order.  Zero-count requests yield an empty
  /// accumulator without touching the backend.  `hints` describes the
  /// batches the caller expects to need next; when speculation is on they
  /// are submitted before this call blocks, so workers stay busy across
  /// the caller's decide step.
  [[nodiscard]] std::vector<stats::Welford> evaluate(
      std::span<const SamplingBackend::BatchRequest> requests,
      std::span<const SamplingBackend::BatchRequest> hints = {});

  /// Tickets submitted but not yet completed (demand + speculative).
  [[nodiscard]] std::size_t outstandingTickets() const noexcept { return ticketRoute_.size(); }

  /// Staged speculative batches (completed or still in flight).
  [[nodiscard]] std::size_t stagedBatches() const noexcept { return staged_.size(); }

  [[nodiscard]] std::uint64_t speculationHits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t speculationMisses() const noexcept { return misses_; }
  /// Speculative batches never submitted because the in-flight cap was hit.
  [[nodiscard]] std::uint64_t speculationSkipped() const noexcept { return skipped_; }
  /// Staged batches evicted unconsumed (mis-speculation or FIFO pressure).
  [[nodiscard]] std::uint64_t stagedEvicted() const noexcept { return evicted_; }

  [[nodiscard]] const Options& options() const noexcept { return options_; }

 private:
  /// Identity of a stageable batch.  The point x is implied: a vertex id
  /// names an immutable location, so (vertexId, startIndex, count) pins
  /// the exact sample set.
  struct BatchKey {
    std::uint64_t vertexId = 0;
    std::uint64_t startIndex = 0;
    std::int64_t count = 0;
    auto operator<=>(const BatchKey&) const = default;
  };

  /// One batch in flight or staged: chunk slots fill as shard completions
  /// arrive (a shard's chunks map to a contiguous slot range).
  struct Entry {
    std::vector<stats::Welford> chunks;
    std::int64_t chunksFilled = 0;
    std::int64_t chunksTotal = 0;
    int ticketsOutstanding = 0;
    bool speculative = false;
    /// Entry generation: tickets record it at submit time and
    /// routeCompletion drops completions whose generation does not match,
    /// so a stale ticket from an evicted entry can never fill a re-created
    /// entry for the same key.
    std::uint64_t sequence = 0;
    [[nodiscard]] bool complete() const noexcept { return chunksFilled == chunksTotal; }
  };

  /// Shard count submitSharded would use for a batch of `count` samples.
  [[nodiscard]] std::int64_t plannedShards(std::int64_t count) const;

  /// Split `request` into chunk-aligned shards and submit them, wiring
  /// each ticket back to `key`'s chunk slots.  Returns the shard count.
  int submitSharded(const SamplingBackend::BatchRequest& request, const BatchKey& key);

  /// Block until every entry in `needed` is complete (or time out).
  void collect(const std::vector<BatchKey>& needed);

  void routeCompletion(const AsyncSamplingBackend::Completion& completion);

  /// Drop staged entries that can no longer match (same vertex, start
  /// index already consumed past) and enforce the staging cap.
  void evictSuperseded(std::uint64_t vertexId, std::uint64_t consumedEnd);
  void enforceStagingCap();
  void dropEntry(const BatchKey& key);

  [[nodiscard]] int resolvedOutstandingCap() const;
  [[nodiscard]] int resolvedStagingCap() const;

  AsyncSamplingBackend& backend_;
  Options options_;

  std::map<BatchKey, Entry> entries_;
  struct TicketRoute {
    BatchKey key;
    std::int64_t firstChunk = 0;
    std::uint64_t generation = 0;  ///< Entry::sequence at submit time
  };
  std::unordered_map<std::uint64_t, TicketRoute> ticketRoute_;
  /// Staged = speculative entries not yet demanded, in submit order.
  std::deque<BatchKey> staged_;
  std::uint64_t nextSequence_ = 0;

  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t skipped_ = 0;
  std::uint64_t evicted_ = 0;

  telemetry::Histogram* telShardsPerBatch_ = nullptr;
  telemetry::Counter* telHits_ = nullptr;
  telemetry::Counter* telMisses_ = nullptr;
  telemetry::Gauge* telHitRate_ = nullptr;
  telemetry::Counter* telEvicted_ = nullptr;
};

}  // namespace sfopt::core
