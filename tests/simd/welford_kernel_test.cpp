#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "simd/dispatch.hpp"
#include "simd/isa.hpp"
#include "stats/welford.hpp"

namespace {

using namespace sfopt;

struct IsaGuard {
  simd::Isa saved = simd::activeIsa();
  ~IsaGuard() { simd::setActiveIsa(saved); }
};

stats::Welford chunkWith(simd::Isa isa, const std::vector<double>& samples) {
  IsaGuard guard;
  simd::setActiveIsa(isa);
  return simd::welfordChunk(samples);
}

/// Randomized chunks spanning several magnitudes, plus adversarial
/// values: exact zeros, denormals, and sign flips.
std::vector<double> adversarialSamples(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> dist(0.5, 2.0);
  std::vector<double> samples(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (i % 7) {
      case 3:
        samples[i] = 0.0;
        break;
      case 5:
        samples[i] = std::numeric_limits<double>::denorm_min() *
                     static_cast<double>(1 + (i % 13));
        break;
      case 6:
        samples[i] = dist(rng) * 1e12;
        break;
      default:
        samples[i] = dist(rng);
        break;
    }
  }
  return samples;
}

TEST(SimdWelford, EveryIsaAgreesWithScalarWithinTolerance) {
  for (const std::size_t n : {std::size_t{64}, std::size_t{63}, std::size_t{65},
                              std::size_t{128}, std::size_t{1000}}) {
    const auto samples = adversarialSamples(n, 40 + n);
    const auto ref = chunkWith(simd::Isa::Scalar, samples);
    for (const simd::Isa isa : simd::supportedIsas()) {
      const auto got = chunkWith(isa, samples);
      EXPECT_EQ(got.count(), ref.count());
      EXPECT_NEAR(got.mean(), ref.mean(), 1e-12 * std::max(1.0, std::fabs(ref.mean())))
          << simd::isaName(isa) << " n=" << n;
      EXPECT_NEAR(got.sumSquaredDeviations(), ref.sumSquaredDeviations(),
                  1e-12 * std::max(1.0, ref.sumSquaredDeviations()))
          << simd::isaName(isa) << " n=" << n;
    }
  }
}

TEST(SimdWelford, ScalarIsaIsTheSequentialAddStreamBitwise) {
  const auto samples = adversarialSamples(97, 7);
  stats::Welford ref;
  for (const double x : samples) ref.add(x);
  const auto got = chunkWith(simd::Isa::Scalar, samples);
  EXPECT_EQ(got.count(), ref.count());
  EXPECT_EQ(got.mean(), ref.mean());
  EXPECT_EQ(got.sumSquaredDeviations(), ref.sumSquaredDeviations());
}

TEST(SimdWelford, ChunksShorterThanTheLaneWidthMatchScalarBitwise) {
  // The vector kernels run zero full strides here, so the deterministic
  // tail must reproduce the sequential stream exactly.
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                              std::size_t{3}}) {
    const auto samples = adversarialSamples(n, 100 + n);
    const auto ref = chunkWith(simd::Isa::Scalar, samples);
    for (const simd::Isa isa : simd::supportedIsas()) {
      const auto got = chunkWith(isa, samples);
      EXPECT_EQ(got.count(), ref.count()) << simd::isaName(isa);
      EXPECT_EQ(got.mean(), ref.mean()) << simd::isaName(isa) << " n=" << n;
      EXPECT_EQ(got.sumSquaredDeviations(), ref.sumSquaredDeviations())
          << simd::isaName(isa) << " n=" << n;
    }
  }
}

TEST(SimdWelford, EachIsaIsBitwiseReproducibleRunToRun) {
  const auto samples = adversarialSamples(333, 11);
  for (const simd::Isa isa : simd::supportedIsas()) {
    const auto first = chunkWith(isa, samples);
    const auto second = chunkWith(isa, samples);
    EXPECT_EQ(first.count(), second.count()) << simd::isaName(isa);
    EXPECT_EQ(first.mean(), second.mean()) << simd::isaName(isa);
    EXPECT_EQ(first.sumSquaredDeviations(), second.sumSquaredDeviations())
        << simd::isaName(isa);
  }
}

}  // namespace
