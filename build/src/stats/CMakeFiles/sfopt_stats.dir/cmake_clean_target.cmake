file(REMOVE_RECURSE
  "libsfopt_stats.a"
)
