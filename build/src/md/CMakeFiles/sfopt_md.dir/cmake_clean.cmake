file(REMOVE_RECURSE
  "CMakeFiles/sfopt_md.dir/forces.cpp.o"
  "CMakeFiles/sfopt_md.dir/forces.cpp.o.d"
  "CMakeFiles/sfopt_md.dir/integrator.cpp.o"
  "CMakeFiles/sfopt_md.dir/integrator.cpp.o.d"
  "CMakeFiles/sfopt_md.dir/neighbor_list.cpp.o"
  "CMakeFiles/sfopt_md.dir/neighbor_list.cpp.o.d"
  "CMakeFiles/sfopt_md.dir/observables.cpp.o"
  "CMakeFiles/sfopt_md.dir/observables.cpp.o.d"
  "CMakeFiles/sfopt_md.dir/simulation.cpp.o"
  "CMakeFiles/sfopt_md.dir/simulation.cpp.o.d"
  "CMakeFiles/sfopt_md.dir/system.cpp.o"
  "CMakeFiles/sfopt_md.dir/system.cpp.o.d"
  "CMakeFiles/sfopt_md.dir/trajectory.cpp.o"
  "CMakeFiles/sfopt_md.dir/trajectory.cpp.o.d"
  "libsfopt_md.a"
  "libsfopt_md.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfopt_md.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
