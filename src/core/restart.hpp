#pragma once

#include <functional>

#include "core/algorithms.hpp"

namespace sfopt::core {

/// Restarted-simplex meta-strategy (the paper's section 1.3.5.1: using the
/// local simplex "for finding the global minima of non-convex functions
/// ... by restarting the simplex").
///
/// After each inner run, a fresh axis-aligned simplex is built around the
/// incumbent best point with a decaying scale, and the inner optimizer
/// runs again.  Because the incumbent values are noisy, stage winners are
/// decided by re-sampling both candidates afresh and comparing the means —
/// never by trusting a possibly lucky low estimate.
struct RestartOptions {
  /// Number of restarts after the initial run.
  int restarts = 3;
  /// Axis-simplex scale around the incumbent for the first restart.
  double initialScale = 1.0;
  /// Scale multiplier per restart (shrinking search neighbourhoods).
  double scaleDecay = 0.5;
  /// Fresh samples drawn at each candidate when deciding a stage winner.
  std::int64_t evaluationSamples = 256;
  /// Vertex-id block reserved per stage so noise streams never collide
  /// across stages.
  std::uint64_t vertexIdStride = 1u << 20;
};

/// The inner optimizer: any of the run* entry points, pre-bound to its
/// options.  The third argument is the first vertex id the stage may use;
/// honoring it keeps each stage's noise streams independent (see
/// SamplingContext::Options::firstVertexId).
using SimplexRunner = std::function<OptimizationResult(
    const noise::StochasticObjective&, std::span<const Point>, std::uint64_t firstVertexId)>;

/// Bind one of the four algorithms into a SimplexRunner.
[[nodiscard]] SimplexRunner makeRunner(DetOptions options);
[[nodiscard]] SimplexRunner makeRunner(MaxNoiseOptions options);
[[nodiscard]] SimplexRunner makeRunner(AndersonOptions options);
[[nodiscard]] SimplexRunner makeRunner(PCOptions options);

/// Outcome of a restarted run.
struct RestartResult {
  OptimizationResult best;       ///< the winning stage's result
  int winningStage = 0;          ///< 0 = the initial run
  std::int64_t stagesRun = 0;
  double totalElapsedTime = 0.0;     ///< summed simulated time of all stages
  std::int64_t totalSamples = 0;     ///< summed samples (incl. winner checks)
};

/// Run `runner` from `initial`, then `options.restarts` more times from
/// axis simplexes around the incumbent best.  Each stage's candidate is
/// accepted only if its freshly re-sampled mean beats the incumbent's.
[[nodiscard]] RestartResult runWithRestarts(const noise::StochasticObjective& objective,
                                            std::span<const Point> initial,
                                            const SimplexRunner& runner,
                                            const RestartOptions& options = {});

}  // namespace sfopt::core
