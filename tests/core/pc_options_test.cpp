// Tests for the PC/MN option knobs added on top of the paper's listings:
// minSamplesForConfidence, matchTrialPrecision, maxRoundsPerComparison.

#include <gtest/gtest.h>

#include "core/algorithms.hpp"
#include "stats/summary.hpp"
#include "tests/core/test_helpers.hpp"

namespace {

using namespace sfopt;
using core::MaxNoiseOptions;
using core::PCOptions;
using core::runMaxNoise;
using core::runPointToPoint;

PCOptions basePc() {
  PCOptions o;
  o.common.termination.tolerance = 0.0;
  o.common.termination.maxIterations = 60;
  o.common.termination.maxSamples = 500'000;
  o.common.sampling.maxSamplesPerVertex = 50'000;
  return o;
}

TEST(PCOptionsDefaults, CarrySigmaFloorAndRoundCap) {
  const PCOptions o;
  EXPECT_EQ(o.common.initialSamplesPerVertex, 32);
  EXPECT_EQ(o.resample.maxRoundsPerComparison, 9);
  EXPECT_EQ(o.minSamplesForConfidence, 8);
  EXPECT_TRUE(o.matchTrialPrecision);
}

TEST(PCMinSamples, GuardForcesEarlySampling) {
  // With a high floor, every noise-aware comparison must first bring both
  // vertices to the floor, so the per-iteration sample cost rises.
  auto obj1 = test::noisySphere(2, 5.0, 71);
  auto obj2 = test::noisySphere(2, 5.0, 71);
  const auto start = test::simpleStart(2);
  PCOptions lo = basePc();
  lo.minSamplesForConfidence = 2;
  lo.matchTrialPrecision = false;
  lo.common.initialSamplesPerVertex = 2;
  PCOptions hi = lo;
  hi.minSamplesForConfidence = 256;
  const auto rLo = runPointToPoint(obj1, start, lo);
  const auto rHi = runPointToPoint(obj2, start, hi);
  EXPECT_GT(rHi.totalSamples / std::max<std::int64_t>(rHi.iterations, 1),
            rLo.totalSamples / std::max<std::int64_t>(rLo.iterations, 1));
}

TEST(PCRoundCap, BoundsResolutionEffort) {
  // An uncapped run on a heavy-noise flat-ish landscape spends far more
  // samples per iteration than a capped one.
  auto obj1 = test::noisySphere(2, 50.0, 73);
  auto obj2 = test::noisySphere(2, 50.0, 73);
  const auto start = test::simpleStart(2, -0.3, 0.4);  // small simplex: ties abound
  PCOptions capped = basePc();
  capped.resample.maxRoundsPerComparison = 4;
  PCOptions uncapped = basePc();
  uncapped.resample.maxRoundsPerComparison = 0;
  const auto rCap = runPointToPoint(obj1, start, capped);
  const auto rUncap = runPointToPoint(obj2, start, uncapped);
  const double perIterCap =
      static_cast<double>(rCap.totalSamples) / std::max<std::int64_t>(rCap.iterations, 1);
  const double perIterUncap =
      static_cast<double>(rUncap.totalSamples) / std::max<std::int64_t>(rUncap.iterations, 1);
  EXPECT_LT(perIterCap, perIterUncap);
  EXPECT_GT(rCap.counters.forcedResolutions, 0);
}

TEST(PCTrialMatching, MatchedTrialsStartHeavier) {
  // Run a few iterations with and without matching on a noisy landscape;
  // matched runs consume more samples per iteration because every trial is
  // born at the precision of the most-sampled vertex.
  auto obj1 = test::noisySphere(2, 10.0, 75);
  auto obj2 = test::noisySphere(2, 10.0, 75);
  const auto start = test::simpleStart(2);
  PCOptions matched = basePc();
  matched.matchTrialPrecision = true;
  PCOptions literal = basePc();
  literal.matchTrialPrecision = false;
  literal.common.initialSamplesPerVertex = 2;
  const auto rM = runPointToPoint(obj1, start, matched);
  const auto rL = runPointToPoint(obj2, start, literal);
  const double perIterM =
      static_cast<double>(rM.totalSamples) / std::max<std::int64_t>(rM.iterations, 1);
  const double perIterL =
      static_cast<double>(rL.totalSamples) / std::max<std::int64_t>(rL.iterations, 1);
  EXPECT_GE(perIterM, perIterL);
}

TEST(MNTrialMatching, MatchedBeatsLiteralInMedian) {
  // The ablation claim of DESIGN.md: precision-matched trials improve MN
  // at high noise (its decisions are plain mean comparisons, so an
  // unsampled trial is pure danger).
  std::vector<double> ratios;
  for (std::uint64_t s = 0; s < 9; ++s) {
    auto obj1 = test::noisyRosenbrock(3, 200.0, 400 + s);
    auto obj2 = test::noisyRosenbrock(3, 200.0, 400 + s);
    const auto start = test::randomStart(3, -5.0, 5.0, 19, s);
    MaxNoiseOptions matched;
    matched.common.termination.tolerance = 1e-3;
    matched.common.termination.maxIterations = 200;
    matched.common.termination.maxSamples = 300'000;
    matched.matchTrialPrecision = true;
    MaxNoiseOptions literal = matched;
    literal.matchTrialPrecision = false;
    const auto rM = runMaxNoise(obj1, start, matched);
    const auto rL = runMaxNoise(obj2, start, literal);
    ASSERT_TRUE(rM.bestTrue.has_value());
    ASSERT_TRUE(rL.bestTrue.has_value());
    ratios.push_back(stats::logRatio(*rM.bestTrue, *rL.bestTrue));
  }
  EXPECT_LE(stats::Summary(ratios).median(), 0.2);
}

}  // namespace
