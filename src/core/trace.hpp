#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/point.hpp"

namespace sfopt::core {

/// Which simplex move an iteration ended with.
enum class MoveKind : std::uint8_t {
  Reflection,
  Expansion,
  Contraction,
  Collapse,
};

[[nodiscard]] constexpr const char* toString(MoveKind m) noexcept {
  switch (m) {
    case MoveKind::Reflection: return "reflection";
    case MoveKind::Expansion: return "expansion";
    case MoveKind::Contraction: return "contraction";
    case MoveKind::Collapse: return "collapse";
  }
  return "unknown";
}

/// One row of an optimization trace: the state after a simplex iteration.
/// These records are the raw series behind the paper's function-value-vs-
/// time plots (Fig 3.4) and the scale-up curves (Fig 3.18).
struct StepRecord {
  std::int64_t iteration = 0;
  double time = 0.0;                      ///< simulated seconds at end of step
  double bestEstimate = 0.0;              ///< min vertex mean
  std::optional<double> bestTrue;         ///< noise-free value there, if known
  double diameter = 0.0;                  ///< simplex diameter D
  int contractionLevel = 0;               ///< level l
  MoveKind move = MoveKind::Reflection;
  std::int64_t totalSamples = 0;
  /// Real (host) seconds this step took, from the engine's wall clock
  /// (injectable via CommonOptions::telemetry, so tests stay deterministic).
  double wallSeconds = 0.0;
  /// Extra-sampling rounds this step spent in wait gates and unresolved
  /// comparisons — where the paper's sampling effort actually goes.
  std::int64_t resampleRounds = 0;
};

/// Append-only record of an optimization run.
class OptimizationTrace {
 public:
  void record(StepRecord r) { steps_.push_back(std::move(r)); }
  [[nodiscard]] const std::vector<StepRecord>& steps() const noexcept { return steps_; }
  [[nodiscard]] bool empty() const noexcept { return steps_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return steps_.size(); }

 private:
  std::vector<StepRecord> steps_;
};

}  // namespace sfopt::core
