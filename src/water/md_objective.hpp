#pragma once

#include <vector>

#include "md/simulation.hpp"
#include "noise/stochastic_objective.hpp"
#include "water/cost.hpp"

namespace sfopt::water {

/// The honest end-to-end objective: every sample *actually runs* the MD
/// engine's NVT/NVE protocol at the candidate parameters and evaluates the
/// eq. 3.4 cost from the sampled observables.  The per-sample noise is the
/// genuine statistical error of the finite simulation, which decays with
/// the amount of simulation exactly as the paper's eq. 1.2 models.
///
/// Each objective sample costs a full (short) MD run — minutes of real
/// optimization even at demo sizes — so this class is used by the example
/// binaries and smoke tests, while the calibrated surrogate
/// (WaterCostObjective) carries the Table 3.4 reproduction.
class MdWaterObjective final : public noise::StochasticObjective {
 public:
  struct Options {
    /// Per-sample protocol (keep it small).  `simulation.forceThreads`
    /// runs each sample's nonbonded loop thread-parallel — the per-sample
    /// knob to pair with the MW framework's across-sample parallelism.
    md::SimulationConfig simulation;
    /// Targets; empty = U, P, D and the g_OO residual with weights scaled
    /// for the flexible 3-site engine.
    std::vector<PropertyTarget> targets;
    std::uint64_t seed = 0x3D;
  };

  MdWaterObjective() : MdWaterObjective(Options{}) {}
  explicit MdWaterObjective(Options options);

  [[nodiscard]] std::size_t dimension() const override { return 3; }
  /// One sample simulates productionSteps * dt picoseconds; the virtual
  /// clock advances by that simulated span.
  [[nodiscard]] double sampleDuration() const override;
  [[nodiscard]] double sample(std::span<const double> x, noise::SampleKey key) const override;

  /// Cost from one protocol run's observables (exposed for tests).
  [[nodiscard]] double costOf(const md::WaterObservables& obs) const;

  [[nodiscard]] const std::vector<PropertyTarget>& targets() const noexcept {
    return options_.targets;
  }

 private:
  Options options_;
  md::RdfCurve referenceGOO_;
};

}  // namespace sfopt::water
