// Scaling study of the MD hot path: neighbor-list construction
// (brute-force O(N^2) scan vs linked-cell O(N)) and the nonbonded force
// evaluation (serial vs thread-parallel kernel), swept over system size
// and thread count.  These numbers back the CHANGES.md entry for the
// cell-list + parallel-force PR; every stochastic objective sample runs
// this kernel a few hundred times, so per-eval wall time here is the
// unit cost of the whole optimization stack.
//
// Usage: force_scaling [repetitions]   (default 25)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "md/forces.hpp"
#include "md/neighbor_list.hpp"
#include "md/system.hpp"

namespace {

using namespace sfopt::md;
using Clock = std::chrono::steady_clock;

constexpr double kCutoff = 4.0;
constexpr double kSkin = 1.0;

/// Median-of-reps wall seconds for one invocation of fn.
template <typename F>
double medianSeconds(int reps, F&& fn) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    times.push_back(std::chrono::duration<double>(Clock::now() - t0).count());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

void runSystemSize(int molecules, int reps) {
  WaterSystem sys = buildWaterLattice(molecules, 0.997, 298.0, tip4pPublished(),
                                      kCutoff, 3);
  const double listRadius = kCutoff + kSkin;

  // --- Neighbor-list rebuild: brute force vs cell list. ---
  NeighborList brute(kCutoff, kSkin, NeighborStrategy::kBruteForce);
  const double bruteSec = medianSeconds(reps, [&] { brute.rebuild(sys); });
  NeighborList autoList(kCutoff, kSkin);  // cell list when the box admits it
  const double autoSec = medianSeconds(reps, [&] { autoList.rebuild(sys); });
  std::printf("N=%3d  rebuild: brute %9.1f us | %s %9.1f us | speedup x%5.2f",
              molecules, bruteSec * 1e6,
              autoList.lastRebuildUsedCells() ? "cells" : "brute(fallback)",
              autoSec * 1e6, bruteSec / autoSec);
  if (autoList.lastRebuildUsedCells()) {
    std::printf("  (%d^3 cells, avg occ %.1f)", autoList.cellsPerDim(),
                autoList.averageCellOccupancy());
  }
  std::printf("  [%zu pairs]\n", autoList.pairs().size());
  (void)listRadius;

  // --- Force evaluation: serial vs parallel over the pair list. ---
  const double serialSec =
      medianSeconds(reps, [&] { (void)computeForces(sys, autoList); });
  std::printf("N=%3d  force:   serial %8.1f us", molecules, serialSec * 1e6);
  for (int threads : {2, 4}) {
    ParallelForceKernel kernel(threads);
    const double parSec =
        medianSeconds(reps, [&] { (void)kernel.compute(sys, autoList); });
    std::printf(" | %dT %8.1f us (x%4.2f)", threads, parSec * 1e6,
                serialSec / parSec);
  }
  const double pairsPerSec =
      static_cast<double>(autoList.pairs().size()) / serialSec;
  std::printf("  [%.1f Mpairs/s serial]\n", pairsPerSec / 1e6);
}

}  // namespace

int main(int argc, char** argv) {
  const int reps = argc > 1 ? std::atoi(argv[1]) : 25;
  std::printf("force_scaling: cutoff %.1f A + skin %.1f A, median of %d reps\n",
              kCutoff, kSkin, reps);
  std::printf("(64 molecules -> box ~12.4 A admits only 2 cells/dim at the 5 A list "
              "radius, so the auto strategy falls back to the brute scan there)\n\n");
  for (int molecules : {64, 216, 512}) {
    runSystemSize(molecules, reps);
  }
  return 0;
}
