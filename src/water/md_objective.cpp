#include "water/md_objective.hpp"

#include "noise/rng.hpp"
#include "water/experimental.hpp"

namespace sfopt::water {

namespace {
/// kcal/mol -> kJ/mol.
constexpr double kKcalToKJ = 4.184;
}  // namespace

MdWaterObjective::MdWaterObjective(Options options) : options_(std::move(options)) {
  if (options_.targets.empty()) {
    const ExperimentalTargets t = experimentalTargets();
    // The flexible 3-site engine over-binds relative to experiment, so the
    // energy/diffusion weights are softened: the optimization surface stays
    // informative without one runaway term dominating.
    options_.targets = {
        {"U", t.internalEnergyKJPerMol, 2.0},
        {"P", t.pressureAtm, 0.0005},
        {"D", t.diffusion1e5Cm2PerS, 0.5},
        {"gOO", 0.0, 3.0},
    };
  }
  referenceGOO_ = experimentalGOO(options_.simulation.rdfRMax, options_.simulation.rdfBins);
}

double MdWaterObjective::sampleDuration() const {
  return options_.simulation.productionSteps * options_.simulation.dtPs;
}

double MdWaterObjective::costOf(const md::WaterObservables& obs) const {
  std::vector<double> values;
  values.reserve(options_.targets.size());
  for (const PropertyTarget& t : options_.targets) {
    if (t.name == "U") {
      values.push_back(obs.potentialPerMoleculeKcal * kKcalToKJ);
    } else if (t.name == "P") {
      values.push_back(obs.pressureAtm);
    } else if (t.name == "D") {
      values.push_back(obs.diffusionCm2PerS * 1e5);
    } else if (t.name == "gOO") {
      values.push_back(md::rdfResidual(obs.gOO, referenceGOO_, 2.0,
                                       options_.simulation.rdfRMax - 0.5));
    } else {
      throw std::invalid_argument("MdWaterObjective: unknown target " + t.name);
    }
  }
  return weightedCost(values, options_.targets);
}

double MdWaterObjective::sample(std::span<const double> x, noise::SampleKey key) const {
  md::SimulationConfig cfg = options_.simulation;
  // Every sample is an independent protocol run: mix the vertex stream and
  // sample index into the initial-condition seed so replicas decorrelate
  // while staying reproducible.
  cfg.seed = noise::hashCombine(noise::hashCombine(options_.seed, key.stream), key.index);
  const md::WaterObservables obs = md::simulateWater(paramsFromPoint(x), cfg);
  return costOf(obs);
}

}  // namespace sfopt::water
