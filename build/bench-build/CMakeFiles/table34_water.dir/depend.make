# Empty dependencies file for table34_water.
# This may be replaced when dependencies are built.
