#include "md/neighbor_list.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "md/forces.hpp"
#include "md/integrator.hpp"
#include "md/system.hpp"

namespace {

using namespace sfopt::md;

WaterSystem mediumSystem(std::uint64_t seed = 3) {
  // 64 waters: box ~12.4 A, cutoff 4.0 + skin 1.0 fits under half edge.
  return buildWaterLattice(64, 0.997, 298.0, tip4pPublished(), 4.0, seed);
}

TEST(NeighborList, Validation) {
  EXPECT_THROW(NeighborList(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(NeighborList(4.0, 0.0), std::invalid_argument);
  auto sys = buildWaterLattice(8, 0.997, 298.0, tip4pPublished(), 3.0, 1);
  NeighborList tooBig(3.0, 2.0);  // 5.0 > box/2 ~ 3.1
  EXPECT_THROW(tooBig.rebuild(sys), std::invalid_argument);
}

TEST(NeighborList, NeedsRebuildBeforeFirstBuild) {
  auto sys = mediumSystem();
  NeighborList list(4.0, 1.0);
  EXPECT_TRUE(list.needsRebuild(sys));
  list.rebuild(sys);
  EXPECT_FALSE(list.needsRebuild(sys));
  EXPECT_EQ(list.rebuilds(), 1);
}

TEST(NeighborList, ContainsAllCutoffPairs) {
  auto sys = mediumSystem();
  NeighborList list(4.0, 1.0);
  list.rebuild(sys);
  // Every intermolecular pair within the bare cutoff must be listed.
  const double rc2 = 4.0 * 4.0;
  std::size_t inCutoff = 0;
  for (int i = 0; i < sys.sites(); ++i) {
    for (int j = i + 1; j < sys.sites(); ++j) {
      if (sys.moleculeOf(i) == sys.moleculeOf(j)) continue;
      const Vec3 d = sys.box().minimumImage(sys.positions[static_cast<std::size_t>(i)],
                                            sys.positions[static_cast<std::size_t>(j)]);
      if (normSquared(d) < rc2) ++inCutoff;
    }
  }
  std::size_t listedInCutoff = 0;
  for (const auto& [i, j] : list.pairs()) {
    const Vec3 d = sys.box().minimumImage(sys.positions[static_cast<std::size_t>(i)],
                                          sys.positions[static_cast<std::size_t>(j)]);
    if (normSquared(d) < rc2) ++listedInCutoff;
  }
  EXPECT_EQ(listedInCutoff, inCutoff);
  EXPECT_GE(list.pairs().size(), inCutoff);  // plus the skin shell
}

TEST(NeighborList, SmallDriftNeedsNoRebuild) {
  auto sys = mediumSystem();
  NeighborList list(4.0, 1.0);
  list.rebuild(sys);
  for (auto& p : sys.positions) p += Vec3{0.1, 0.1, 0.1};  // |d| ~ 0.17 < 0.5
  EXPECT_FALSE(list.needsRebuild(sys));
  sys.positions[0] += Vec3{0.6, 0.0, 0.0};  // one site past skin/2
  EXPECT_TRUE(list.needsRebuild(sys));
  EXPECT_TRUE(list.update(sys));
  EXPECT_FALSE(list.update(sys));
}

TEST(NeighborList, ForcesMatchAllPairsPath) {
  auto sys = mediumSystem();
  auto sysRef = sys;
  NeighborList list(4.0, 1.0);
  list.rebuild(sys);
  const auto viaList = computeForces(sys, list);
  const auto viaAll = computeForces(sysRef);
  EXPECT_NEAR(viaList.potential, viaAll.potential, 1e-9);
  EXPECT_NEAR(viaList.virial, viaAll.virial, 1e-9);
  for (std::size_t i = 0; i < sys.forces.size(); ++i) {
    EXPECT_NEAR(sys.forces[i].x, sysRef.forces[i].x, 1e-9);
    EXPECT_NEAR(sys.forces[i].y, sysRef.forces[i].y, 1e-9);
    EXPECT_NEAR(sys.forces[i].z, sysRef.forces[i].z, 1e-9);
  }
}

TEST(NeighborList, DynamicsMatchAllPairsPath) {
  // Run the same trajectory with and without lists; the list path must
  // track the all-pairs path (tiny fp drift allowed over 200 steps).
  auto sysA = mediumSystem(7);
  auto sysB = sysA;
  VelocityVerlet plain(sysA, {.dtPs = 0.0002});
  VelocityVerlet listed(sysB, {.dtPs = 0.0002, .useNeighborList = true, .neighborSkin = 1.0});
  for (int i = 0; i < 200; ++i) {
    const auto fa = plain.step();
    const auto fb = listed.step();
    ASSERT_NEAR(fa.potential, fb.potential, 1e-6 * std::abs(fa.potential) + 1e-9)
        << "step " << i;
  }
  EXPECT_GE(listed.neighborRebuilds(), 1);
  EXPECT_EQ(plain.neighborRebuilds(), 0);
}

TEST(NeighborList, NveEnergyConservedWithList) {
  auto sys = mediumSystem(9);
  VelocityVerlet vv(sys, {.dtPs = 0.0002, .useNeighborList = true, .neighborSkin = 1.0});
  const double e0 = vv.lastForces().potential + sys.kineticEnergy();
  double maxDev = 0.0;
  for (int i = 0; i < 400; ++i) {
    const auto f = vv.step();
    maxDev = std::max(maxDev, std::abs(f.potential + sys.kineticEnergy() - e0));
  }
  const double scale = std::abs(e0) + sys.kineticEnergy();
  EXPECT_LT(maxDev, 0.01 * scale);
}

}  // namespace
