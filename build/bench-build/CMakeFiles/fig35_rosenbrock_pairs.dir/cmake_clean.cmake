file(REMOVE_RECURSE
  "../bench/fig35_rosenbrock_pairs"
  "../bench/fig35_rosenbrock_pairs.pdb"
  "CMakeFiles/fig35_rosenbrock_pairs.dir/fig35_rosenbrock_pairs.cpp.o"
  "CMakeFiles/fig35_rosenbrock_pairs.dir/fig35_rosenbrock_pairs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig35_rosenbrock_pairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
