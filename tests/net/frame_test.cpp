#include "net/frame.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/transport.hpp"

namespace {

using namespace sfopt::net;

std::vector<std::byte> bytesOf(const Frame& f) {
  std::vector<std::byte> wire;
  appendFrame(wire, f);
  return wire;
}

TEST(Frame, MessageRoundTripsThroughDecoder) {
  std::vector<std::byte> payload = {std::byte{0xDE}, std::byte{0xAD}, std::byte{0xBE}};
  const auto wire = bytesOf(makeMessageFrame(42, payload));

  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  const auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->type, FrameType::Message);
  EXPECT_EQ(f->tag, 42);
  EXPECT_EQ(f->traceId, 0u);
  EXPECT_EQ(f->parentSpan, 0u);
  EXPECT_EQ(f->payload, payload);
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(Frame, TraceContextRoundTripsThroughDecoder) {
  const auto wire = bytesOf(makeMessageFrame(7, {std::byte{0x01}},
                                             /*traceId=*/0x0123456789ABCDEFULL,
                                             /*parentSpan=*/0xFEDCBA9876543210ULL));
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  const auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->tag, 7);
  EXPECT_EQ(f->traceId, 0x0123456789ABCDEFULL);
  EXPECT_EQ(f->parentSpan, 0xFEDCBA9876543210ULL);
  EXPECT_EQ(f->payload, std::vector<std::byte>{std::byte{0x01}});
}

TEST(Frame, HeartbeatCarriesSenderTime) {
  const auto wire = bytesOf(makeHeartbeatFrame(12.625));
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  const auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->type, FrameType::Heartbeat);
  EXPECT_DOUBLE_EQ(f->senderTime, 12.625);
}

TEST(Frame, LegacyEmptyHeartbeatBodyTolerated) {
  // A v1 heartbeat is just the type byte; the decoder must not choke on
  // old captures and reports senderTime 0 ("unknown").
  std::vector<std::byte> wire = {std::byte{1}, std::byte{0}, std::byte{0}, std::byte{0},
                                 std::byte{2}};  // len=1 | type=Heartbeat
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  const auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->type, FrameType::Heartbeat);
  EXPECT_DOUBLE_EQ(f->senderTime, 0.0);
}

TEST(Frame, TelemetrySnapshotRoundTrips) {
  TelemetrySnapshot snap;
  snap.workerNow = 3.5;
  snap.echoMasterTime = 2.25;
  snap.holdSeconds = 0.125;
  snap.tasksExecuted = 17;
  snap.tasksFailed = 2;
  snap.executeEwmaSeconds = 0.0625;
  snap.bytesIn = 1234;
  snap.bytesOut = 5678;
  snap.messagesIn = 21;
  snap.messagesOut = 34;
  snap.queueDepth = 3;

  const auto wire = bytesOf(makeTelemetryFrame(snap));
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  const auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  ASSERT_EQ(f->type, FrameType::Telemetry);
  const TelemetrySnapshot back = parseTelemetrySnapshot(*f);
  EXPECT_DOUBLE_EQ(back.workerNow, 3.5);
  EXPECT_DOUBLE_EQ(back.echoMasterTime, 2.25);
  EXPECT_DOUBLE_EQ(back.holdSeconds, 0.125);
  EXPECT_EQ(back.tasksExecuted, 17u);
  EXPECT_EQ(back.tasksFailed, 2u);
  EXPECT_DOUBLE_EQ(back.executeEwmaSeconds, 0.0625);
  EXPECT_EQ(back.bytesIn, 1234u);
  EXPECT_EQ(back.bytesOut, 5678u);
  EXPECT_EQ(back.messagesIn, 21u);
  EXPECT_EQ(back.messagesOut, 34u);
  EXPECT_EQ(back.queueDepth, 3u);
}

TEST(Frame, TruncatedTelemetryRejected) {
  Frame f = makeTelemetryFrame(TelemetrySnapshot{});
  f.payload.pop_back();
  EXPECT_THROW((void)parseTelemetrySnapshot(f), ProtocolError);
}

TEST(Frame, NegativeControlTagsSurvive) {
  const auto wire = bytesOf(makeMessageFrame(kTagWorkerLost, {}));
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  const auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->tag, kTagWorkerLost);
}

TEST(Frame, ByteByByteFeedReassembles) {
  std::vector<std::byte> wire;
  appendFrame(wire, makeHelloFrame());
  appendFrame(wire, makeMessageFrame(7, {std::byte{1}, std::byte{2}}));
  appendFrame(wire, makeHeartbeatFrame());

  FrameDecoder dec;
  std::vector<Frame> out;
  for (const std::byte b : wire) {
    dec.feed(&b, 1);
    while (auto f = dec.next()) out.push_back(std::move(*f));
  }
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].type, FrameType::Hello);
  EXPECT_EQ(out[1].type, FrameType::Message);
  EXPECT_EQ(out[1].tag, 7);
  EXPECT_EQ(out[2].type, FrameType::Heartbeat);
}

TEST(Frame, HelloRoundTrip) {
  const auto wire = bytesOf(makeHelloFrame());
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  const auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  const Hello h = parseHello(*f);
  EXPECT_EQ(h.magic, kProtocolMagic);
  EXPECT_EQ(h.version, kProtocolVersion);
}

TEST(Frame, WelcomeRoundTrip) {
  const auto wire = bytesOf(makeWelcomeFrame(3, 5));
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  const auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  const Welcome w = parseWelcome(*f);
  EXPECT_EQ(w.rank, 3);
  EXPECT_EQ(w.worldSize, 5);
}

TEST(Frame, BadMagicRejected) {
  Frame f = makeHelloFrame();
  f.payload[0] = std::byte{0x00};
  EXPECT_THROW((void)parseHello(f), ProtocolError);
}

TEST(Frame, VersionMismatchRejected) {
  Frame f = makeHelloFrame();
  f.payload[4] = std::byte{0x7F};  // LE low byte of the version field
  EXPECT_THROW((void)parseHello(f), ProtocolError);
}

TEST(Frame, WelcomeRejectsInvalidRank) {
  EXPECT_THROW((void)parseWelcome(makeWelcomeFrame(0, 5)), ProtocolError);
  EXPECT_THROW((void)parseWelcome(makeWelcomeFrame(1, 1)), ProtocolError);
}

TEST(Frame, OversizeLengthPrefixRejectedBeforeBuffering) {
  // A hostile length prefix must be refused outright, not allocated.
  FrameDecoder dec(/*maxFrameBytes=*/64);
  std::vector<std::byte> wire;
  const std::uint32_t huge = 1u << 30;
  for (int i = 0; i < 4; ++i) wire.push_back(static_cast<std::byte>((huge >> (8 * i)) & 0xFF));
  dec.feed(wire.data(), wire.size());
  EXPECT_THROW((void)dec.next(), ProtocolError);
}

TEST(Frame, UnknownTypeRejected) {
  std::vector<std::byte> wire = {std::byte{1}, std::byte{0}, std::byte{0}, std::byte{0},
                                 std::byte{99}};
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  EXPECT_THROW((void)dec.next(), ProtocolError);
}

TEST(Frame, EmptyBodyRejected) {
  std::vector<std::byte> wire(4, std::byte{0});  // length prefix 0
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  EXPECT_THROW((void)dec.next(), ProtocolError);
}

TEST(Frame, TruncatedMessageHeaderRejected) {
  // v2 message frames need type + 4 tag + 8 trace + 8 parent bytes in the
  // body; a v1-sized header (type + tag only) is a version violation.
  std::vector<std::byte> wire = {std::byte{5}, std::byte{0}, std::byte{0}, std::byte{0},
                                 std::byte{1}, std::byte{0}, std::byte{0}, std::byte{0},
                                 std::byte{0}};
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  EXPECT_THROW((void)dec.next(), ProtocolError);
}

TEST(Frame, WireLayoutIsLittleEndianStable) {
  // Pin the v2 wire bytes of a small message so accidental layout changes
  // are caught: len=22 LE | type=1 | tag=0x0102 LE | traceId LE |
  // parentSpan LE | payload {0xAB}.
  const auto wire = bytesOf(makeMessageFrame(0x0102, {std::byte{0xAB}},
                                             /*traceId=*/0x03, /*parentSpan=*/0x04));
  const std::vector<std::byte> expected = {
      std::byte{22},   std::byte{0}, std::byte{0}, std::byte{0},     // length
      std::byte{1},                                                  // type
      std::byte{0x02}, std::byte{0x01}, std::byte{0}, std::byte{0},  // tag LE
      std::byte{0x03}, std::byte{0}, std::byte{0}, std::byte{0},     // traceId LE
      std::byte{0},    std::byte{0}, std::byte{0}, std::byte{0},
      std::byte{0x04}, std::byte{0}, std::byte{0}, std::byte{0},     // parentSpan LE
      std::byte{0},    std::byte{0}, std::byte{0}, std::byte{0},
      std::byte{0xAB}};
  EXPECT_EQ(wire, expected);
}

TEST(Frame, DuplicatedFrameDecodesTwiceByteIdentical) {
  // A fabric (or chaos proxy) that re-delivers a frame hands the decoder
  // the same bytes twice.  The decoder's contract is fidelity, not dedup:
  // both copies must surface, bit-identical — discarding the duplicate is
  // MWDriver's job, keyed on task ids, not the transport's.
  const auto wire = bytesOf(makeMessageFrame(9, {std::byte{0x5A}, std::byte{0xA5}},
                                             /*traceId=*/77, /*parentSpan=*/88));
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  dec.feed(wire.data(), wire.size());

  const auto first = dec.next();
  const auto second = dec.next();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->tag, second->tag);
  EXPECT_EQ(first->traceId, second->traceId);
  EXPECT_EQ(first->parentSpan, second->parentSpan);
  EXPECT_EQ(first->payload, second->payload);
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(Frame, ReorderedFramesDecodeInArrivalOrder) {
  // Frames reordered across a reconnect (a healed proxy flushing stale
  // bytes after fresh ones) arrive B-then-A: the decoder must surface
  // them in arrival order with no reordering or sequencing of its own.
  const auto a = bytesOf(makeMessageFrame(1, {std::byte{0xAA}}));
  const auto b = bytesOf(makeMessageFrame(2, {std::byte{0xBB}}));

  FrameDecoder dec;
  dec.feed(b.data(), b.size());
  dec.feed(a.data(), a.size());

  const auto first = dec.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->tag, 2);
  EXPECT_EQ(first->payload, std::vector<std::byte>{std::byte{0xBB}});
  const auto second = dec.next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->tag, 1);
  EXPECT_EQ(second->payload, std::vector<std::byte>{std::byte{0xAA}});
  EXPECT_FALSE(dec.next().has_value());
}

}  // namespace
