#include "telemetry/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace sfopt::telemetry {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bucket bounds must be ascending");
  }
  buckets_ = std::make_unique<std::atomic<std::int64_t>[]>(bounds_.size() + 1);
}

void Histogram::observe(double x) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  detail::atomicAdd(sum_, x);
}

std::vector<std::int64_t> Histogram::bucketCounts() const {
  std::vector<std::int64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<double> Histogram::exponentialBounds(double start, double factor, int count) {
  if (!(start > 0.0) || !(factor > 1.0) || count < 1) {
    throw std::invalid_argument("Histogram::exponentialBounds: need start > 0, factor > 1");
  }
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(count));
  double b = start;
  for (int i = 0; i < count; ++i, b *= factor) out.push_back(b);
  return out;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e{MetricSnapshot::Kind::Counter, std::make_unique<Counter>(), nullptr, nullptr};
    it = entries_.emplace(std::string(name), std::move(e)).first;
  } else if (it->second.kind != MetricSnapshot::Kind::Counter) {
    throw std::invalid_argument("MetricsRegistry: '" + std::string(name) +
                                "' already registered with a different kind");
  }
  return *it->second.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e{MetricSnapshot::Kind::Gauge, nullptr, std::make_unique<Gauge>(), nullptr};
    it = entries_.emplace(std::string(name), std::move(e)).first;
  } else if (it->second.kind != MetricSnapshot::Kind::Gauge) {
    throw std::invalid_argument("MetricsRegistry: '" + std::string(name) +
                                "' already registered with a different kind");
  }
  return *it->second.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name, std::vector<double> bounds) {
  std::lock_guard lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e{MetricSnapshot::Kind::Histogram, nullptr, nullptr,
            std::make_unique<Histogram>(std::move(bounds))};
    it = entries_.emplace(std::string(name), std::move(e)).first;
  } else if (it->second.kind != MetricSnapshot::Kind::Histogram) {
    throw std::invalid_argument("MetricsRegistry: '" + std::string(name) +
                                "' already registered with a different kind");
  } else if (it->second.histogram->bounds() != bounds) {
    throw std::invalid_argument("MetricsRegistry: '" + std::string(name) +
                                "' already registered with different bounds");
  }
  return *it->second.histogram;
}

std::vector<MetricSnapshot> MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<MetricSnapshot> out;
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {
    MetricSnapshot s;
    s.name = name;
    s.kind = e.kind;
    switch (e.kind) {
      case MetricSnapshot::Kind::Counter:
        s.intValue = e.counter->value();
        break;
      case MetricSnapshot::Kind::Gauge:
        s.numValue = e.gauge->value();
        break;
      case MetricSnapshot::Kind::Histogram:
        s.count = e.histogram->count();
        s.numValue = e.histogram->sum();
        s.bounds = e.histogram->bounds();
        s.bucketCounts = e.histogram->bucketCounts();
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

}  // namespace sfopt::telemetry
