#include "mw/message_buffer.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace {

using sfopt::mw::MessageBuffer;

TEST(MessageBuffer, RoundTripsScalars) {
  MessageBuffer b;
  b.pack(3.25);
  b.pack(std::int64_t{-42});
  b.pack(std::uint64_t{7});
  b.pack(std::string("hello"));
  EXPECT_DOUBLE_EQ(b.unpackDouble(), 3.25);
  EXPECT_EQ(b.unpackInt64(), -42);
  EXPECT_EQ(b.unpackUint64(), 7u);
  EXPECT_EQ(b.unpackString(), "hello");
  EXPECT_TRUE(b.exhausted());
}

TEST(MessageBuffer, RoundTripsDoubleVector) {
  MessageBuffer b;
  const std::vector<double> v{1.0, -2.5, 1e300, 0.0};
  b.pack(std::span<const double>(v));
  EXPECT_EQ(b.unpackDoubleVector(), v);
}

TEST(MessageBuffer, EmptyVectorAndString) {
  MessageBuffer b;
  b.pack(std::span<const double>{});
  b.pack(std::string{});
  EXPECT_TRUE(b.unpackDoubleVector().empty());
  EXPECT_TRUE(b.unpackString().empty());
}

TEST(MessageBuffer, TypeMismatchThrows) {
  MessageBuffer b;
  b.pack(1.0);
  EXPECT_THROW((void)b.unpackInt64(), std::runtime_error);
}

TEST(MessageBuffer, OrderMismatchThrows) {
  MessageBuffer b;
  b.pack(std::int64_t{1});
  b.pack(2.0);
  EXPECT_EQ(b.unpackInt64(), 1);
  EXPECT_THROW((void)b.unpackString(), std::runtime_error);
}

TEST(MessageBuffer, UnpackPastEndThrows) {
  MessageBuffer b;
  EXPECT_THROW((void)b.unpackDouble(), std::runtime_error);
  b.pack(1.0);
  (void)b.unpackDouble();
  EXPECT_THROW((void)b.unpackDouble(), std::runtime_error);
}

TEST(MessageBuffer, WireSurvivesTransport) {
  MessageBuffer b;
  b.pack(std::uint64_t{99});
  b.pack(std::string("payload"));
  // Simulate a transport copying the bytes.
  MessageBuffer received(std::vector<std::byte>(b.wire()));
  EXPECT_EQ(received.unpackUint64(), 99u);
  EXPECT_EQ(received.unpackString(), "payload");
}

TEST(MessageBuffer, TruncatedWireThrows) {
  MessageBuffer b;
  b.pack(std::string("long payload string"));
  auto wire = b.releaseWire();
  wire.resize(wire.size() / 2);
  MessageBuffer truncated(std::move(wire));
  EXPECT_THROW((void)truncated.unpackString(), std::runtime_error);
}

TEST(MessageBuffer, HostileStringLengthPrefixRejectedBeforeAllocation) {
  MessageBuffer b;
  b.pack(std::string("hi"));
  auto wire = b.releaseWire();
  // Overwrite the 8-byte length prefix (after the 1-byte type tag) with an
  // absurd value; unpack must refuse before trying to allocate it.
  for (std::size_t i = 1; i <= 8; ++i) wire[i] = std::byte{0xFF};
  MessageBuffer tampered(std::move(wire));
  EXPECT_THROW((void)tampered.unpackString(), std::runtime_error);
}

TEST(MessageBuffer, HostileVectorLengthPrefixRejectedBeforeAllocation) {
  MessageBuffer b;
  const std::vector<double> values = {1.0, 2.0};
  b.pack(values);
  auto wire = b.releaseWire();
  for (std::size_t i = 1; i <= 8; ++i) wire[i] = std::byte{0x7F};
  MessageBuffer tampered(std::move(wire));
  EXPECT_THROW((void)tampered.unpackDoubleVector(), std::runtime_error);
}

TEST(MessageBuffer, WireEncodingIsLittleEndianStable) {
  // Pin the exact bytes: the format crosses machine boundaries over TCP,
  // so it must not drift with host byte order or struct layout.
  MessageBuffer b;
  b.pack(std::int64_t{0x0102});
  const std::vector<std::byte> expected = {
      std::byte{2},  // Tag::Int64
      std::byte{0x02}, std::byte{0x01}, std::byte{0}, std::byte{0},
      std::byte{0},    std::byte{0},    std::byte{0}, std::byte{0}};
  EXPECT_EQ(b.wire(), expected);

  MessageBuffer d;
  d.pack(1.0);  // IEEE-754: 0x3FF0000000000000, little-endian on the wire
  const std::vector<std::byte> expectedDouble = {
      std::byte{1},  // Tag::Double
      std::byte{0}, std::byte{0}, std::byte{0},    std::byte{0},
      std::byte{0}, std::byte{0}, std::byte{0xF0}, std::byte{0x3F}};
  EXPECT_EQ(d.wire(), expectedDouble);
}

TEST(MessageBuffer, SizeBytesGrows) {
  MessageBuffer b;
  const auto s0 = b.sizeBytes();
  b.pack(1.0);
  EXPECT_GT(b.sizeBytes(), s0);
}

}  // namespace
