
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/md/forces.cpp" "src/md/CMakeFiles/sfopt_md.dir/forces.cpp.o" "gcc" "src/md/CMakeFiles/sfopt_md.dir/forces.cpp.o.d"
  "/root/repo/src/md/integrator.cpp" "src/md/CMakeFiles/sfopt_md.dir/integrator.cpp.o" "gcc" "src/md/CMakeFiles/sfopt_md.dir/integrator.cpp.o.d"
  "/root/repo/src/md/neighbor_list.cpp" "src/md/CMakeFiles/sfopt_md.dir/neighbor_list.cpp.o" "gcc" "src/md/CMakeFiles/sfopt_md.dir/neighbor_list.cpp.o.d"
  "/root/repo/src/md/observables.cpp" "src/md/CMakeFiles/sfopt_md.dir/observables.cpp.o" "gcc" "src/md/CMakeFiles/sfopt_md.dir/observables.cpp.o.d"
  "/root/repo/src/md/simulation.cpp" "src/md/CMakeFiles/sfopt_md.dir/simulation.cpp.o" "gcc" "src/md/CMakeFiles/sfopt_md.dir/simulation.cpp.o.d"
  "/root/repo/src/md/system.cpp" "src/md/CMakeFiles/sfopt_md.dir/system.cpp.o" "gcc" "src/md/CMakeFiles/sfopt_md.dir/system.cpp.o.d"
  "/root/repo/src/md/trajectory.cpp" "src/md/CMakeFiles/sfopt_md.dir/trajectory.cpp.o" "gcc" "src/md/CMakeFiles/sfopt_md.dir/trajectory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/noise/CMakeFiles/sfopt_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sfopt_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
