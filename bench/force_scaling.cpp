// Scaling study of the MD hot path: neighbor-list construction
// (brute-force O(N^2) scan vs linked-cell O(N)) and the nonbonded force
// evaluation (serial vs thread-parallel kernel, and per SIMD ISA), swept
// over system size and thread count.  Every stochastic objective sample
// runs this kernel a few hundred times, so per-eval wall time here is the
// unit cost of the whole optimization stack.
//
// The ISA sweep times the same serial pair loop under each dispatch level
// the host supports; scalar is the legacy loop, the vector levels run the
// blocked simd::forcePairBlock kernel with its pinned lane-reduction
// order (results stay bitwise reproducible within an ISA).
//
// Usage: force_scaling [repetitions] [--json PATH]   (default 25)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/bench_json.hpp"
#include "md/forces.hpp"
#include "md/neighbor_list.hpp"
#include "md/system.hpp"
#include "simd/isa.hpp"

namespace {

using namespace sfopt;
using namespace sfopt::md;

constexpr double kCutoff = 4.0;
constexpr double kSkin = 1.0;

void runSystemSize(int molecules, int reps, bench::BenchReport& report) {
  WaterSystem sys = buildWaterLattice(molecules, 0.997, 298.0, tip4pPublished(),
                                      kCutoff, 3);
  const std::string tag = "force.N" + std::to_string(molecules);

  // --- Neighbor-list rebuild: brute force vs cell list. ---
  NeighborList brute(kCutoff, kSkin, NeighborStrategy::kBruteForce);
  const double bruteSec = bench::medianSeconds(reps, [&] { brute.rebuild(sys); });
  NeighborList autoList(kCutoff, kSkin);  // cell list when the box admits it
  const double autoSec = bench::medianSeconds(reps, [&] { autoList.rebuild(sys); });
  std::printf("N=%3d  rebuild: brute %9.1f us | %s %9.1f us | speedup x%5.2f",
              molecules, bruteSec * 1e6,
              autoList.lastRebuildUsedCells() ? "cells" : "brute(fallback)",
              autoSec * 1e6, bruteSec / autoSec);
  if (autoList.lastRebuildUsedCells()) {
    std::printf("  (%d^3 cells, avg occ %.1f)", autoList.cellsPerDim(),
                autoList.averageCellOccupancy());
  }
  std::printf("  [%zu pairs]\n", autoList.pairs().size());
  report.add(tag + ".rebuild.brute.seconds", bruteSec, "s");
  report.add(tag + ".rebuild.auto.seconds", autoSec, "s");

  // --- Force evaluation per SIMD ISA (serial pair loop). ---
  double scalarSec = 0.0;
  std::printf("N=%3d  force:  ", molecules);
  for (const simd::Isa isa : simd::supportedIsas()) {
    simd::setActiveIsa(isa);
    const double sec =
        bench::medianSeconds(reps, [&] { (void)computeForces(sys, autoList); });
    if (isa == simd::Isa::Scalar) scalarSec = sec;
    std::printf(" %s %8.1f us (x%4.2f) |", simd::isaName(isa), sec * 1e6,
                scalarSec / sec);
    const std::string prefix = tag + ".serial." + simd::isaName(isa);
    report.add(prefix + ".seconds", sec, "s");
    report.add(prefix + ".speedup_vs_scalar", scalarSec / sec, "x");
  }
  simd::setActiveIsa(simd::detectBestIsa());
  const double pairsPerSec =
      static_cast<double>(autoList.pairs().size()) / scalarSec;
  std::printf("  [%.1f Mpairs/s scalar]\n", pairsPerSec / 1e6);

  // --- Thread-parallel kernel at the detected ISA. ---
  const double serialSec =
      bench::medianSeconds(reps, [&] { (void)computeForces(sys, autoList); });
  std::printf("N=%3d  threads: serial %8.1f us", molecules, serialSec * 1e6);
  for (int threads : {2, 4}) {
    ParallelForceKernel kernel(threads);
    const double parSec =
        bench::medianSeconds(reps, [&] { (void)kernel.compute(sys, autoList); });
    std::printf(" | %dT %8.1f us (x%4.2f)", threads, parSec * 1e6,
                serialSec / parSec);
    report.add(tag + ".parallel." + std::to_string(threads) + "T.seconds", parSec, "s");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  const std::string jsonPath = bench::extractJsonPath(args);
  const int reps = !args.empty() ? std::atoi(args[0].c_str()) : 25;
  std::printf("force_scaling: cutoff %.1f A + skin %.1f A, median of %d reps\n",
              kCutoff, kSkin, reps);
  std::printf("(64 molecules -> box ~12.4 A admits only 2 cells/dim at the 5 A list "
              "radius, so the auto strategy falls back to the brute scan there)\n\n");

  bench::BenchReport report;
  report.bench = "force_scaling";
  report.repetitions = reps;
  for (int molecules : {64, 216, 512}) {
    runSystemSize(molecules, reps, report);
  }
  if (!jsonPath.empty()) {
    if (!report.writeJson(jsonPath)) return 1;
    std::printf("\njson: %zu results -> %s\n", report.results.size(), jsonPath.c_str());
  }
  return 0;
}
