#include "core/checkpoint.hpp"

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace sfopt::core {

namespace {

constexpr const char* kMagic = "sfopt-checkpoint";
constexpr int kVersion = 1;

/// Read one whitespace token and parse it as a double via strtod — the
/// portable way to round-trip hexfloat (istream hexfloat extraction is
/// unreliable across standard libraries).
double readDouble(std::istream& in) {
  std::string tok;
  if (!(in >> tok)) throw std::runtime_error("readCheckpoint: missing number");
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    throw std::runtime_error("readCheckpoint: malformed number '" + tok + "'");
  }
  return v;
}

void expectToken(std::istream& in, const char* token) {
  std::string got;
  if (!(in >> got) || got != token) {
    throw std::runtime_error(std::string("readCheckpoint: expected '") + token + "', got '" +
                             got + "'");
  }
}

}  // namespace

void writeCheckpoint(std::ostream& out, const SimplexCheckpoint& cp) {
  out << kMagic << " v" << kVersion << "\n";
  out << std::hexfloat;
  out << "iteration " << cp.iteration << "\n";
  out << "clock " << cp.clock << "\n";
  out << "totalSamples " << cp.totalSamples << "\n";
  out << "nextVertexId " << cp.nextVertexId << "\n";
  out << "contractionLevel " << cp.contractionLevel << "\n";
  const MoveCounters& c = cp.counters;
  out << "counters " << c.reflections << " " << c.expansions << " " << c.contractions << " "
      << c.collapses << " " << c.gateWaitRounds << " " << c.resampleRounds << " "
      << c.forcedResolutions << "\n";
  const std::size_t dim = cp.vertices.empty() ? 0 : cp.vertices.front().x.size();
  out << "vertices " << cp.vertices.size() << " dim " << dim << "\n";
  for (const VertexCheckpoint& v : cp.vertices) {
    if (v.x.size() != dim) {
      throw std::invalid_argument("writeCheckpoint: inconsistent vertex dimensions");
    }
    out << v.id << " " << v.samples << " " << v.mean << " " << v.m2;
    for (double coord : v.x) out << " " << coord;
    out << "\n";
  }
}

SimplexCheckpoint readCheckpoint(std::istream& in) {
  std::string magic;
  std::string version;
  if (!(in >> magic >> version) || magic != kMagic) {
    throw std::runtime_error("readCheckpoint: not an sfopt checkpoint");
  }
  if (version != "v1") {
    throw std::runtime_error("readCheckpoint: unsupported version " + version);
  }
  SimplexCheckpoint cp;
  expectToken(in, "iteration");
  in >> cp.iteration;
  expectToken(in, "clock");
  cp.clock = readDouble(in);
  expectToken(in, "totalSamples");
  in >> cp.totalSamples;
  expectToken(in, "nextVertexId");
  in >> cp.nextVertexId;
  expectToken(in, "contractionLevel");
  in >> cp.contractionLevel;
  expectToken(in, "counters");
  MoveCounters& c = cp.counters;
  in >> c.reflections >> c.expansions >> c.contractions >> c.collapses >> c.gateWaitRounds >>
      c.resampleRounds >> c.forcedResolutions;
  expectToken(in, "vertices");
  std::size_t count = 0;
  in >> count;
  expectToken(in, "dim");
  std::size_t dim = 0;
  in >> dim;
  if (!in) throw std::runtime_error("readCheckpoint: truncated header");
  cp.vertices.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    VertexCheckpoint v;
    in >> v.id >> v.samples;
    if (!in) throw std::runtime_error("readCheckpoint: truncated vertex block");
    v.mean = readDouble(in);
    v.m2 = readDouble(in);
    v.x.resize(dim);
    for (double& coord : v.x) coord = readDouble(in);
    cp.vertices.push_back(std::move(v));
  }
  return cp;
}

void saveCheckpoint(const std::filesystem::path& file, const SimplexCheckpoint& cp) {
  std::ofstream out(file, std::ios::trunc);
  if (!out) throw std::runtime_error("saveCheckpoint: cannot open " + file.string());
  writeCheckpoint(out, cp);
  if (!out) throw std::runtime_error("saveCheckpoint: write failed for " + file.string());
}

SimplexCheckpoint loadCheckpoint(const std::filesystem::path& file) {
  std::ifstream in(file);
  if (!in) throw std::runtime_error("loadCheckpoint: cannot open " + file.string());
  return readCheckpoint(in);
}

}  // namespace sfopt::core
