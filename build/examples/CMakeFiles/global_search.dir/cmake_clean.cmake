file(REMOVE_RECURSE
  "CMakeFiles/global_search.dir/global_search.cpp.o"
  "CMakeFiles/global_search.dir/global_search.cpp.o.d"
  "global_search"
  "global_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
