#include "noise/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "stats/welford.hpp"

namespace {

using sfopt::noise::CounterRng;
using sfopt::noise::RngStream;
using sfopt::noise::SampleKey;

TEST(CounterRng, DeterministicForSameKey) {
  CounterRng rng(123);
  const SampleKey k{7, 42};
  EXPECT_EQ(rng.bits(k), rng.bits(k));
  EXPECT_DOUBLE_EQ(rng.uniform(k), rng.uniform(k));
  EXPECT_DOUBLE_EQ(rng.gaussian(k), rng.gaussian(k));
}

TEST(CounterRng, DifferentKeysDiffer) {
  CounterRng rng(123);
  EXPECT_NE(rng.bits({0, 0}), rng.bits({0, 1}));
  EXPECT_NE(rng.bits({0, 0}), rng.bits({1, 0}));
  // stream/index are not interchangeable
  EXPECT_NE(rng.bits({3, 5}), rng.bits({5, 3}));
}

TEST(CounterRng, DifferentSeedsDiffer) {
  CounterRng a(1);
  CounterRng b(2);
  EXPECT_NE(a.bits({0, 0}), b.bits({0, 0}));
}

TEST(CounterRng, UniformInUnitInterval) {
  CounterRng rng(99);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    const double u = rng.uniform({1, i});
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(CounterRng, UniformRangeRespected) {
  CounterRng rng(99);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const double u = rng.uniform({2, i}, -6.0, 3.0);
    EXPECT_GE(u, -6.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(CounterRng, UniformMeanIsHalf) {
  CounterRng rng(7);
  sfopt::stats::Welford w;
  for (std::uint64_t i = 0; i < 100000; ++i) w.add(rng.uniform({0, i}));
  EXPECT_NEAR(w.mean(), 0.5, 0.01);
  EXPECT_NEAR(w.variance(), 1.0 / 12.0, 0.01);
}

TEST(CounterRng, GaussianMomentsMatchStandardNormal) {
  CounterRng rng(11);
  sfopt::stats::Welford w;
  for (std::uint64_t i = 0; i < 100000; ++i) w.add(rng.gaussian({0, i}));
  EXPECT_NEAR(w.mean(), 0.0, 0.02);
  EXPECT_NEAR(w.variance(), 1.0, 0.03);
}

TEST(CounterRng, GaussianTailFractionReasonable) {
  // ~4.55% of standard normal draws lie beyond 2 sigma.
  CounterRng rng(17);
  int beyond = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (std::fabs(rng.gaussian({0, static_cast<std::uint64_t>(i)})) > 2.0) ++beyond;
  }
  const double frac = static_cast<double>(beyond) / n;
  EXPECT_NEAR(frac, 0.0455, 0.01);
}

TEST(RngStream, AdvancesAndIsReproducible) {
  RngStream a(5, 0);
  RngStream b(5, 0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
  // Consecutive draws differ (the counter advances).
  RngStream c(5, 0);
  EXPECT_NE(c.uniform(), c.uniform());
}

TEST(RngStream, DistinctStreamsAreIndependent) {
  RngStream a(5, 1);
  RngStream b(5, 2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.bits() == b.bits()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngStream, BelowStaysInRange) {
  RngStream a(9, 0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    const auto v = a.below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit in 200 draws
  EXPECT_EQ(a.below(0), 0u);
}

TEST(SplitMix, KnownGoodMixing) {
  // Adjacent inputs should produce wildly different outputs.
  const auto a = sfopt::noise::splitmix64(1);
  const auto b = sfopt::noise::splitmix64(2);
  int diffBits = 0;
  for (int i = 0; i < 64; ++i) {
    if (((a ^ b) >> i) & 1u) ++diffBits;
  }
  EXPECT_GT(diffBits, 16);
}

}  // namespace
