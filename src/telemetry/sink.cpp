#include "telemetry/sink.hpp"

#include <cctype>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace sfopt::telemetry {

std::optional<double> Event::num(std::string_view key) const {
  for (const auto& [k, v] : numFields) {
    if (k == key) return v;
  }
  return std::nullopt;
}

std::optional<std::string_view> Event::str(std::string_view key) const {
  for (const auto& [k, v] : strFields) {
    if (k == key) return std::string_view(v);
  }
  return std::nullopt;
}

JsonlSink::JsonlSink(const std::filesystem::path& file, bool append)
    : owned_(file, append ? std::ios::app : std::ios::trunc), out_(&owned_) {
  if (!owned_) throw std::runtime_error("JsonlSink: cannot open " + file.string());
}

JsonlSink::JsonlSink(std::ostream& out) : out_(&out) {}

namespace {

double monotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void JsonlSink::emit(const Event& e) {
  const std::string line = toJsonLine(e);
  std::lock_guard lock(mutex_);
  *out_ << line << '\n';
  ++count_;
  if (flushIntervalSeconds_ >= 0.0) {
    const double now = monotonicSeconds();
    if (now - lastFlushSeconds_ >= flushIntervalSeconds_) {
      out_->flush();
      lastFlushSeconds_ = now;
    }
  }
}

void JsonlSink::flush() {
  std::lock_guard lock(mutex_);
  out_->flush();
  if (flushIntervalSeconds_ >= 0.0) lastFlushSeconds_ = monotonicSeconds();
}

void JsonlSink::setFlushIntervalSeconds(double seconds) {
  std::lock_guard lock(mutex_);
  flushIntervalSeconds_ = seconds;
  // Arm the timer so a long-lived serve process flushes its first event
  // no later than one interval after enabling.
  lastFlushSeconds_ = seconds >= 0.0 ? monotonicSeconds() : 0.0;
}

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// Shortest round-trip representation; JSON has no Inf/NaN, so clamp those
/// to null-ish zero (instrumentation never emits them on purpose).
void appendNumber(std::string& out, double x) {
  if (!(x == x) || x > 1.7e308 || x < -1.7e308) {
    out += "0";
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), x);
  out.append(buf, res.ptr);
}

}  // namespace

std::string toJsonLine(const Event& e) {
  std::string out;
  out.reserve(96);
  out += "{\"type\":\"";
  out += jsonEscape(e.type);
  out += "\",\"name\":\"";
  out += jsonEscape(e.name);
  out += "\",\"t\":";
  appendNumber(out, e.time);
  if (e.duration >= 0.0) {
    out += ",\"dur\":";
    appendNumber(out, e.duration);
  }
  if (e.id != 0) {
    out += ",\"id\":";
    appendNumber(out, static_cast<double>(e.id));
  }
  if (e.parent != 0) {
    out += ",\"parent\":";
    appendNumber(out, static_cast<double>(e.parent));
  }
  if (e.trace != 0) {
    out += ",\"trace\":";
    appendNumber(out, static_cast<double>(e.trace));
  }
  for (const auto& [k, v] : e.numFields) {
    out += ",\"";
    out += jsonEscape(k);
    out += "\":";
    appendNumber(out, v);
  }
  for (const auto& [k, v] : e.strFields) {
    out += ",\"";
    out += jsonEscape(k);
    out += "\":\"";
    out += jsonEscape(v);
    out += "\"";
  }
  out += "}";
  return out;
}

namespace {

void skipSpace(std::string_view s, std::size_t& i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
}

bool parseString(std::string_view s, std::size_t& i, std::string& out) {
  if (i >= s.size() || s[i] != '"') return false;
  ++i;
  out.clear();
  while (i < s.size()) {
    const char c = s[i];
    if (c == '"') {
      ++i;
      return true;
    }
    if (c == '\\') {
      if (i + 1 >= s.size()) return false;
      const char esc = s[i + 1];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (i + 5 >= s.size()) return false;
          unsigned code = 0;
          const auto res =
              std::from_chars(s.data() + i + 2, s.data() + i + 6, code, 16);
          if (res.ec != std::errc{}) return false;
          out += static_cast<char>(code & 0xFF);  // flat ASCII payloads only
          i += 4;
          break;
        }
        default: return false;
      }
      i += 2;
      continue;
    }
    out += c;
    ++i;
  }
  return false;
}

bool parseNumber(std::string_view s, std::size_t& i, double& out) {
  std::size_t end = i;
  while (end < s.size() &&
         (std::isdigit(static_cast<unsigned char>(s[end])) || s[end] == '-' ||
          s[end] == '+' || s[end] == '.' || s[end] == 'e' || s[end] == 'E')) {
    ++end;
  }
  const auto res = std::from_chars(s.data() + i, s.data() + end, out);
  if (res.ec != std::errc{}) return false;
  i = static_cast<std::size_t>(res.ptr - s.data());
  return true;
}

}  // namespace

std::optional<Event> parseJsonLine(std::string_view line) {
  std::size_t i = 0;
  skipSpace(line, i);
  if (i >= line.size() || line[i] != '{') return std::nullopt;
  ++i;
  Event e;
  for (;;) {
    skipSpace(line, i);
    if (i < line.size() && line[i] == '}') break;
    std::string key;
    if (!parseString(line, i, key)) return std::nullopt;
    skipSpace(line, i);
    if (i >= line.size() || line[i] != ':') return std::nullopt;
    ++i;
    skipSpace(line, i);
    if (i < line.size() && line[i] == '"') {
      std::string val;
      if (!parseString(line, i, val)) return std::nullopt;
      if (key == "type") {
        e.type = std::move(val);
      } else if (key == "name") {
        e.name = std::move(val);
      } else {
        e.strFields.emplace_back(std::move(key), std::move(val));
      }
    } else {
      double val = 0.0;
      if (!parseNumber(line, i, val)) return std::nullopt;
      if (key == "t") {
        e.time = val;
      } else if (key == "dur") {
        e.duration = val;
      } else if (key == "id") {
        e.id = static_cast<std::uint64_t>(val);
      } else if (key == "parent") {
        e.parent = static_cast<std::uint64_t>(val);
      } else if (key == "trace") {
        e.trace = static_cast<std::uint64_t>(val);
      } else {
        e.numFields.emplace_back(std::move(key), val);
      }
    }
    skipSpace(line, i);
    if (i < line.size() && line[i] == ',') {
      ++i;
      continue;
    }
    if (i < line.size() && line[i] == '}') break;
    return std::nullopt;
  }
  if (e.type.empty()) return std::nullopt;
  return e;
}

std::vector<Event> readJsonlEvents(const std::filesystem::path& file) {
  std::ifstream in(file);
  if (!in) throw std::runtime_error("readJsonlEvents: cannot open " + file.string());
  std::vector<Event> out;
  std::string line;
  while (std::getline(in, line)) {
    if (auto e = parseJsonLine(line)) out.push_back(std::move(*e));
  }
  return out;
}

}  // namespace sfopt::telemetry
