file(REMOVE_RECURSE
  "../bench/fig38_317_pc_conditions"
  "../bench/fig38_317_pc_conditions.pdb"
  "CMakeFiles/fig38_317_pc_conditions.dir/fig38_317_pc_conditions.cpp.o"
  "CMakeFiles/fig38_317_pc_conditions.dir/fig38_317_pc_conditions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig38_317_pc_conditions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
