// Reproduces Figure 3.5: histograms of log10(min A / min B) for the pairs
// (a) MN vs DET, (b) PC vs MN, (c) PC+MN vs PC at noise levels sigma0 in
// {1, 100, 1000}, over 100 random initial simplex states of the 4-d
// Rosenbrock function (coordinates uniform in [-5, 5)).

#include <cmath>
#include <cstdio>

#include "common/harness.hpp"
#include "core/initial_simplex.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"

using namespace sfopt;

namespace {

struct PanelSet {
  stats::Histogram mnVsDet{-8.0, 8.0, 16};
  stats::Histogram pcVsMn{-8.0, 8.0, 16};
  stats::Histogram pcmnVsPc{-8.0, 8.0, 16};
};

double minOf(const core::OptimizationResult& r) {
  return r.bestTrue ? std::fabs(*r.bestTrue) : std::fabs(r.bestEstimate);
}

void runCampaign(std::size_t dimension, double sigma0, int trials, PanelSet& panels,
                 const std::function<noise::NoisyFunction(std::uint64_t)>& makeObjective) {
  for (int t = 0; t < trials; ++t) {
    noise::RngStream startRng(2025, static_cast<std::uint64_t>(t));
    const auto start = core::randomSimplexPoints(dimension, -5.0, 5.0, startRng);
    auto objective = makeObjective(static_cast<std::uint64_t>(t) * 13 + 1);

    const double detMin =
        minOf(core::runDeterministic(objective, start, bench::campaignDet()));
    const double mnMin = minOf(core::runMaxNoise(objective, start, bench::campaignMn()));
    const double pcMin = minOf(core::runPointToPoint(objective, start, bench::campaignPc()));
    const double pcmnMin =
        minOf(core::runPointToPoint(objective, start, bench::campaignPcMn()));

    panels.mnVsDet.add(stats::logRatio(mnMin, detMin, 8.0));
    panels.pcVsMn.add(stats::logRatio(pcMin, mnMin, 8.0));
    panels.pcmnVsPc.add(stats::logRatio(pcmnMin, pcMin, 8.0));
  }
  (void)sigma0;
}

}  // namespace

int main(int argc, char** argv) {
  const int trials = argc > 1 ? std::atoi(argv[1]) : 100;
  bench::printHeader("Figure 3.5 - MN/DET, PC/MN, PC+MN/PC on 4-d Rosenbrock (" +
                     std::to_string(trials) + " initial states)");

  for (double sigma0 : {1.0, 100.0, 1000.0}) {
    PanelSet panels;
    runCampaign(4, sigma0, trials, panels, [&](std::uint64_t seed) {
      return bench::noisyRosenbrock(4, sigma0, 5000 + seed);
    });
    bench::printSubHeader("noise sigma0 = " + std::to_string(static_cast<int>(sigma0)));
    bench::printComparison("(a) log10(min MN / min DET)", panels.mnVsDet);
    bench::printComparison("(b) log10(min PC / min MN)", panels.pcVsMn);
    bench::printComparison("(c) log10(min PC+MN / min PC)", panels.pcmnVsPc);
  }
  std::printf(
      "\nPaper shape check: (a) centered at 0 for sigma0=1, grows a negative\n"
      "tail as noise rises (MN avoids premature convergence); (b) PC ties or\n"
      "beats MN in ~90%% of cases at high noise; (c) roughly symmetric with a\n"
      "slight PC+MN edge.\n");
  return 0;
}
