#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sfopt::simd {

/// Instruction-set levels the kernel library is built for.  The numeric
/// order is the preference order on x86 (wider is better); Neon is the
/// aarch64 level and never coexists with the x86 ones.
enum class Isa : int {
  Scalar = 0,  ///< portable reference path; bit-identical to the legacy loops
  Sse4 = 1,    ///< 2-lane double (SSE4.1: needed for roundpd)
  Avx2 = 2,    ///< 4-lane double
  Neon = 3,    ///< 2-lane double (aarch64 baseline)
};

/// Canonical lower-case name ("scalar", "sse4", "avx2", "neon").
[[nodiscard]] const char* isaName(Isa isa) noexcept;

/// Parse a canonical name; returns false on an unknown string.
[[nodiscard]] bool parseIsaName(std::string_view name, Isa& out) noexcept;

/// Whether this build AND this CPU can execute the level's kernels
/// (runtime CPUID check on x86; compile-time on aarch64).
[[nodiscard]] bool isaSupported(Isa isa) noexcept;

/// Widest supported level on this host.
[[nodiscard]] Isa detectBestIsa() noexcept;

/// Every supported level, narrowest first (always starts with Scalar).
[[nodiscard]] std::vector<Isa> supportedIsas();

/// Space-separated names of supportedIsas(), for messages and `sfopt info`.
[[nodiscard]] std::string supportedIsaNames();

/// The level the dispatch table currently routes to.  Initialized lazily
/// on first use: the SFOPT_ISA environment variable if set (throwing
/// std::runtime_error on an unknown or unsupported value), otherwise
/// detectBestIsa().
[[nodiscard]] Isa activeIsa();

/// Force a level (the `--isa` CLI flag / tests).  Throws
/// std::invalid_argument when the host does not support it.
void setActiveIsa(Isa isa);

/// Parse-and-set; the std::invalid_argument message lists the supported
/// names.  This is the single entry point behind `--isa`.
void setActiveIsaByName(std::string_view name);

}  // namespace sfopt::simd
