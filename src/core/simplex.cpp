#include "core/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/performance.hpp"

namespace sfopt::core {

Point reflectPoint(std::span<const double> centroid, std::span<const double> worst, double alpha) {
  return affineCombine(1.0 + alpha, centroid, -alpha, worst);
}

Point expandPoint(std::span<const double> reflected, std::span<const double> centroid,
                  double gamma) {
  return affineCombine(gamma, reflected, -(gamma - 1.0), centroid);
}

Point contractPoint(std::span<const double> worst, std::span<const double> centroid, double beta) {
  return affineCombine(beta, worst, 1.0 - beta, centroid);
}

SimplexCoefficients adaptiveSimplexCoefficients(std::size_t dimension) {
  if (dimension < 2) throw std::invalid_argument("adaptiveSimplexCoefficients: d >= 2");
  const double d = static_cast<double>(dimension);
  SimplexCoefficients c;
  c.reflection = 1.0;
  c.expansion = 1.0 + 2.0 / d;
  c.contraction = 0.75 - 1.0 / (2.0 * d);
  c.shrink = 1.0 - 1.0 / d;
  return c;
}

Simplex::Simplex(std::vector<std::unique_ptr<Vertex>> vertices) : vertices_(std::move(vertices)) {
  if (vertices_.size() < 3) {
    throw std::invalid_argument("Simplex: needs d+1 >= 3 vertices (d >= 2)");
  }
  const std::size_t d = vertices_.size() - 1;
  for (const auto& v : vertices_) {
    if (v == nullptr) throw std::invalid_argument("Simplex: null vertex");
    if (v->point().size() != d) {
      throw std::invalid_argument("Simplex: vertex dimension must be size()-1");
    }
  }
}

Simplex::Ordering Simplex::ordering() const {
  Ordering o;
  // Find min and max first.
  for (std::size_t i = 1; i < vertices_.size(); ++i) {
    if (vertices_[i]->mean() > vertices_[o.max]->mean()) o.max = i;
    if (vertices_[i]->mean() < vertices_[o.min]->mean()) o.min = i;
  }
  // Second-highest: max over indices != o.max.
  o.smax = (o.max == 0) ? 1 : 0;
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    if (i == o.max) continue;
    if (vertices_[i]->mean() > vertices_[o.smax]->mean()) o.smax = i;
  }
  return o;
}

Point Simplex::centroidExcluding(std::size_t excluded) const {
  if (excluded >= vertices_.size()) throw std::out_of_range("centroidExcluding");
  std::vector<Point> pts;
  pts.reserve(vertices_.size() - 1);
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    if (i != excluded) pts.push_back(vertices_[i]->point());
  }
  return centroid(pts);
}

std::unique_ptr<Vertex> Simplex::replace(std::size_t i, std::unique_ptr<Vertex> v) {
  if (i >= vertices_.size()) throw std::out_of_range("Simplex::replace");
  if (v == nullptr) throw std::invalid_argument("Simplex::replace: null vertex");
  if (v->point().size() != dimension()) {
    throw std::invalid_argument("Simplex::replace: dimension mismatch");
  }
  std::swap(vertices_[i], v);
  return v;
}

std::vector<std::pair<std::size_t, Point>> Simplex::collapseTargets(std::size_t minIndex,
                                                                    double shrink) const {
  if (minIndex >= vertices_.size()) throw std::out_of_range("collapseTargets");
  if (!(shrink > 0.0 && shrink < 1.0)) {
    throw std::invalid_argument("collapseTargets: shrink must be in (0, 1)");
  }
  std::vector<std::pair<std::size_t, Point>> out;
  out.reserve(vertices_.size() - 1);
  const Point& pmin = vertices_[minIndex]->point();
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    if (i == minIndex) continue;
    out.emplace_back(i, affineCombine(shrink, vertices_[i]->point(), 1.0 - shrink, pmin));
  }
  return out;
}

double Simplex::diameter() const {
  double dmax = 0.0;
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    for (std::size_t j = i + 1; j < vertices_.size(); ++j) {
      dmax = std::max(dmax,
                      stats::euclideanDistance(vertices_[i]->point(), vertices_[j]->point()));
    }
  }
  return dmax;
}

double Simplex::valueSpread() const {
  const Ordering o = ordering();
  return vertices_[o.max]->mean() - vertices_[o.min]->mean();
}

double Simplex::meanValue() const {
  double s = 0.0;
  for (const auto& v : vertices_) s += v->mean();
  return s / static_cast<double>(vertices_.size());
}

double Simplex::internalVariance() const {
  const double gbar = meanValue();
  double s = 0.0;
  for (const auto& v : vertices_) {
    const double d = v->mean() - gbar;
    s += d * d;
  }
  return s / static_cast<double>(vertices_.size());
}

double Simplex::maxSigma(const SamplingContext& ctx) const {
  double m = 0.0;
  for (const auto& v : vertices_) m = std::max(m, ctx.sigma(*v));
  return m;
}

}  // namespace sfopt::core
