#include "service/job.hpp"

#include <span>
#include <stdexcept>
#include <utility>

#include "testfunctions/functions.hpp"

namespace sfopt::service {

namespace {

using FnPtr = double (*)(std::span<const double>);

FnPtr lookupFunction(const std::string& name) {
  if (name == "rosenbrock") return &testfunctions::rosenbrock;
  if (name == "powell") return &testfunctions::powell;
  if (name == "sphere") return &testfunctions::sphere;
  if (name == "rastrigin") return &testfunctions::rastrigin;
  if (name == "quadratic") return &testfunctions::quadraticBowl;
  throw std::runtime_error("unknown objective function '" + name + "'");
}

void packBool(mw::MessageBuffer& buf, bool v) {
  buf.pack(static_cast<std::int64_t>(v ? 1 : 0));
}

bool unpackBool(mw::MessageBuffer& buf) { return buf.unpackInt64() != 0; }

}  // namespace

void ObjectiveSpec::pack(mw::MessageBuffer& buf) const {
  buf.pack(function);
  buf.pack(dim);
  buf.pack(sigma0);
  buf.pack(seed);
  buf.pack(clients);
}

ObjectiveSpec ObjectiveSpec::unpack(mw::MessageBuffer& buf) {
  ObjectiveSpec s;
  s.function = buf.unpackString();
  s.dim = buf.unpackInt64();
  s.sigma0 = buf.unpackDouble();
  s.seed = buf.unpackUint64();
  s.clients = buf.unpackInt64();
  return s;
}

noise::NoisyFunction ObjectiveSpec::makeObjective() const {
  if (dim < 2) throw std::runtime_error("objective dim must be >= 2");
  if (function == "powell" && dim != 4) {
    throw std::runtime_error("powell requires dim 4");
  }
  noise::NoisyFunction::Options o;
  o.sigma0 = sigma0;
  o.seed = seed;
  return noise::NoisyFunction(static_cast<std::size_t>(dim), lookupFunction(function), o);
}

void JobSpec::pack(mw::MessageBuffer& buf) const {
  buf.pack(std::string("job-v2"));
  objective.pack(buf);
  buf.pack(algorithm);
  buf.pack(k);
  buf.pack(k1);
  buf.pack(k2);
  buf.pack(termination.tolerance);
  buf.pack(termination.maxIterations);
  buf.pack(termination.maxSamples);
  buf.pack(termination.maxTime);
  buf.pack(shardMinSamples);
  packBool(buf, speculate);
  buf.pack(priority);
  buf.pack(static_cast<std::int64_t>(initial.size()));
  for (const core::Point& p : initial) buf.pack(std::span<const double>(p));
}

JobSpec JobSpec::unpack(mw::MessageBuffer& buf) {
  const std::string schema = buf.unpackString();
  if (schema != "job-v2") {
    throw std::runtime_error("unsupported job schema '" + schema + "' (this build speaks job-v2)");
  }
  JobSpec s;
  s.objective = ObjectiveSpec::unpack(buf);
  s.algorithm = buf.unpackString();
  s.k = buf.unpackDouble();
  s.k1 = buf.unpackDouble();
  s.k2 = buf.unpackDouble();
  s.termination.tolerance = buf.unpackDouble();
  s.termination.maxIterations = buf.unpackInt64();
  s.termination.maxSamples = buf.unpackInt64();
  s.termination.maxTime = buf.unpackDouble();
  s.shardMinSamples = buf.unpackInt64();
  s.speculate = unpackBool(buf);
  s.priority = buf.unpackInt64();
  const std::int64_t points = buf.unpackInt64();
  if (points < 0 || points > 1'000'000) {
    throw std::runtime_error("job spec: implausible simplex point count");
  }
  s.initial.reserve(static_cast<std::size_t>(points));
  for (std::int64_t i = 0; i < points; ++i) s.initial.push_back(buf.unpackDoubleVector());
  return s;
}

void JobSpec::validate() const {
  (void)lookupFunction(objective.function);
  if (objective.dim < 2) throw std::runtime_error("job spec: dim must be >= 2");
  if (objective.function == "powell" && objective.dim != 4) {
    throw std::runtime_error("job spec: powell requires dim 4");
  }
  if (objective.clients < 1) throw std::runtime_error("job spec: clients must be >= 1");
  if (algorithm != "det" && algorithm != "mn" && algorithm != "anderson" &&
      algorithm != "pc" && algorithm != "pcmn") {
    throw std::runtime_error("job spec: unknown algorithm '" + algorithm +
                             "' (det, mn, anderson, pc, pcmn)");
  }
  if (initial.size() != static_cast<std::size_t>(objective.dim) + 1) {
    throw std::runtime_error("job spec: initial simplex needs dim + 1 points");
  }
  for (const core::Point& p : initial) {
    if (p.size() != static_cast<std::size_t>(objective.dim)) {
      throw std::runtime_error("job spec: initial point has wrong dimension");
    }
  }
  if (shardMinSamples < 0) throw std::runtime_error("job spec: shardMinSamples < 0");
  if (priority < 1 || priority > 100) {
    throw std::runtime_error("job spec: priority must be in 1..100");
  }
}

mw::AlgorithmOptions JobSpec::makeOptions() const {
  mw::AlgorithmOptions options;
  if (algorithm == "det") {
    core::DetOptions o;
    o.common.termination = termination;
    options = o;
  } else if (algorithm == "mn") {
    core::MaxNoiseOptions o;
    o.k = k;
    o.common.termination = termination;
    options = o;
  } else if (algorithm == "anderson") {
    core::AndersonOptions o;
    o.k1 = k1;
    o.k2 = k2;
    o.common.termination = termination;
    options = o;
  } else {
    core::PCOptions o;
    o.k = k;
    o.maxNoiseGate = algorithm == "pcmn";
    o.common.termination = termination;
    options = o;
  }
  std::visit(
      [&](auto& o) {
        o.common.sampling.shardMinSamples = shardMinSamples;
        o.common.sampling.speculate = speculate;
      },
      options);
  return options;
}

std::string_view toString(JobState s) noexcept {
  switch (s) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Done: return "done";
    case JobState::Cancelled: return "cancelled";
    case JobState::Failed: return "failed";
    case JobState::Rejected: return "rejected";
    case JobState::Unknown: return "unknown";
  }
  return "unknown";
}

void JobOutcome::pack(mw::MessageBuffer& buf) const {
  buf.pack(static_cast<std::int64_t>(reason));
  buf.pack(std::span<const double>(best));
  buf.pack(bestEstimate);
  packBool(buf, bestTrue.has_value());
  if (bestTrue) buf.pack(*bestTrue);
  buf.pack(iterations);
  buf.pack(totalSamples);
  buf.pack(elapsedTime);
  buf.pack(counters.reflections);
  buf.pack(counters.expansions);
  buf.pack(counters.contractions);
  buf.pack(counters.collapses);
  buf.pack(counters.gateWaitRounds);
  buf.pack(counters.resampleRounds);
  buf.pack(counters.forcedResolutions);
}

JobOutcome JobOutcome::unpack(mw::MessageBuffer& buf) {
  JobOutcome o;
  o.reason = static_cast<core::TerminationReason>(buf.unpackInt64());
  o.best = buf.unpackDoubleVector();
  o.bestEstimate = buf.unpackDouble();
  if (unpackBool(buf)) o.bestTrue = buf.unpackDouble();
  o.iterations = buf.unpackInt64();
  o.totalSamples = buf.unpackInt64();
  o.elapsedTime = buf.unpackDouble();
  o.counters.reflections = buf.unpackInt64();
  o.counters.expansions = buf.unpackInt64();
  o.counters.contractions = buf.unpackInt64();
  o.counters.collapses = buf.unpackInt64();
  o.counters.gateWaitRounds = buf.unpackInt64();
  o.counters.resampleRounds = buf.unpackInt64();
  o.counters.forcedResolutions = buf.unpackInt64();
  return o;
}

JobOutcome JobOutcome::fromResult(const core::OptimizationResult& res) {
  JobOutcome o;
  o.reason = res.reason;
  o.best = res.best;
  o.bestEstimate = res.bestEstimate;
  o.bestTrue = res.bestTrue;
  o.iterations = res.iterations;
  o.totalSamples = res.totalSamples;
  o.elapsedTime = res.elapsedTime;
  o.counters = res.counters;
  return o;
}

core::OptimizationResult JobOutcome::toResult() const {
  core::OptimizationResult res;
  res.reason = reason;
  res.best = best;
  res.bestEstimate = bestEstimate;
  res.bestTrue = bestTrue;
  res.iterations = iterations;
  res.totalSamples = totalSamples;
  res.elapsedTime = elapsedTime;
  res.counters = counters;
  return res;
}

void StatusReply::pack(mw::MessageBuffer& buf) const {
  buf.pack(jobId);
  buf.pack(static_cast<std::int64_t>(state));
  buf.pack(detail);
  packBool(buf, retryable);
  buf.pack(queued);
  buf.pack(running);
}

StatusReply StatusReply::unpack(mw::MessageBuffer& buf) {
  StatusReply r;
  r.jobId = buf.unpackUint64();
  r.state = static_cast<JobState>(buf.unpackInt64());
  r.detail = buf.unpackString();
  r.retryable = unpackBool(buf);
  r.queued = buf.unpackInt64();
  r.running = buf.unpackInt64();
  return r;
}

void ResultReply::pack(mw::MessageBuffer& buf) const {
  buf.pack(jobId);
  buf.pack(static_cast<std::int64_t>(state));
  buf.pack(detail);
  packBool(buf, outcome.has_value());
  if (outcome) outcome->pack(buf);
}

ResultReply ResultReply::unpack(mw::MessageBuffer& buf) {
  ResultReply r;
  r.jobId = buf.unpackUint64();
  r.state = static_cast<JobState>(buf.unpackInt64());
  r.detail = buf.unpackString();
  if (unpackBool(buf)) r.outcome = JobOutcome::unpack(buf);
  return r;
}

void packServiceTaskInput(mw::MessageBuffer& buf, std::uint64_t jobId,
                          const ObjectiveSpec& spec,
                          const core::SamplingBackend::BatchRequest& request) {
  buf.pack(jobId);
  spec.pack(buf);
  buf.pack(request.x);
  buf.pack(request.vertexId);
  buf.pack(request.startIndex);
  buf.pack(request.count);
}

}  // namespace sfopt::service
