// MD-layer telemetry: the MdPerfCounters fold into the registry and the
// two protocol phases emit spans.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "md/simulation.hpp"
#include "md/system.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/sink.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace sfopt;

class CaptureSink final : public telemetry::EventSink {
 public:
  void emit(const telemetry::Event& e) override { events.push_back(e); }
  std::vector<telemetry::Event> events;
};

md::SimulationConfig tinyConfig() {
  md::SimulationConfig cfg;
  cfg.molecules = 32;
  cfg.cutoff = 4.0;
  cfg.equilibrationSteps = 30;
  cfg.productionSteps = 60;
  cfg.sampleEvery = 10;
  return cfg;
}

TEST(MdTelemetry, PerfCountersFoldIntoRegistry) {
  CaptureSink sink;
  telemetry::Telemetry tel(sink);
  md::SimulationConfig cfg = tinyConfig();
  cfg.telemetry = &tel;

  const md::WaterObservables obs = md::simulateWater(md::tip4pPublished(), cfg);

  auto& reg = tel.metrics();
  EXPECT_EQ(reg.counter("md.force_evaluations").value(), obs.perf.forceEvaluations);
  EXPECT_EQ(reg.counter("md.pairs_evaluated").value(), obs.perf.pairsEvaluated);
  EXPECT_EQ(reg.counter("md.neighbor_rebuilds").value(), obs.perf.neighborRebuilds);
  EXPECT_DOUBLE_EQ(reg.gauge("md.force_threads").value(),
                   static_cast<double>(obs.perf.forceThreads));
  EXPECT_DOUBLE_EQ(reg.gauge("md.max_drift_seen").value(), obs.perf.maxDriftSeen);
  EXPECT_DOUBLE_EQ(reg.gauge("md.pairs_per_evaluation").value(),
                   obs.perf.pairsPerEvaluation());

  auto& evalSeconds = reg.histogram("md.force_eval_seconds",
                                    telemetry::Histogram::exponentialBounds(1e-6, 10.0, 7));
  EXPECT_EQ(evalSeconds.count(), obs.perf.forceEvaluations);
  // Both sides sum the same per-evaluation wall times but in separate
  // accumulators, so they can drift a few ULPs apart; 4 ULPs
  // (EXPECT_DOUBLE_EQ) is occasionally too tight for ~100 additions.
  EXPECT_NEAR(evalSeconds.sum(), obs.perf.forceSeconds,
              1e-12 * std::max(1.0, obs.perf.forceSeconds));
}

TEST(MdTelemetry, ProtocolPhasesEmitSpans) {
  CaptureSink sink;
  telemetry::Telemetry tel(sink);
  md::SimulationConfig cfg = tinyConfig();
  cfg.telemetry = &tel;

  const md::WaterObservables obs = md::simulateWater(md::tip4pPublished(), cfg);

  int equilibration = 0;
  int production = 0;
  for (const auto& e : sink.events) {
    if (e.type != "span") continue;
    if (e.name == "md.equilibration") {
      ++equilibration;
      EXPECT_EQ(e.num("steps"), static_cast<double>(cfg.equilibrationSteps));
      EXPECT_EQ(e.num("molecules"), static_cast<double>(cfg.molecules));
    } else if (e.name == "md.production") {
      ++production;
      EXPECT_EQ(e.num("steps"), static_cast<double>(cfg.productionSteps));
      EXPECT_EQ(e.num("frames"), static_cast<double>(obs.productionFrames));
    }
  }
  EXPECT_EQ(equilibration, 1);
  EXPECT_EQ(production, 1);
}

TEST(MdTelemetry, NullTelemetryIsZeroCost) {
  md::SimulationConfig cfg = tinyConfig();
  const md::WaterObservables obs = md::simulateWater(md::tip4pPublished(), cfg);
  EXPECT_GT(obs.perf.forceEvaluations, 0);
}

}  // namespace
