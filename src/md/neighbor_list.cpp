#include "md/neighbor_list.hpp"

#include <stdexcept>

namespace sfopt::md {

NeighborList::NeighborList(double cutoff, double skin) : cutoff_(cutoff), skin_(skin) {
  if (!(cutoff > 0.0)) throw std::invalid_argument("NeighborList: cutoff must be positive");
  if (!(skin > 0.0)) throw std::invalid_argument("NeighborList: skin must be positive");
}

void NeighborList::rebuild(const WaterSystem& sys) {
  const double listRadius = cutoff_ + skin_;
  if (listRadius > sys.box().edge() / 2.0) {
    throw std::invalid_argument("NeighborList: cutoff + skin exceeds half the box edge");
  }
  const double r2 = listRadius * listRadius;
  const int n = sys.sites();
  pairs_.clear();
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (sys.moleculeOf(i) == sys.moleculeOf(j)) continue;
      const Vec3 d = sys.box().minimumImage(sys.positions[static_cast<std::size_t>(i)],
                                            sys.positions[static_cast<std::size_t>(j)]);
      if (normSquared(d) < r2) pairs_.emplace_back(i, j);
    }
  }
  referencePositions_ = sys.positions;
  ++rebuilds_;
}

bool NeighborList::needsRebuild(const WaterSystem& sys) const {
  if (referencePositions_.size() != sys.positions.size()) return true;
  const double limit2 = (skin_ / 2.0) * (skin_ / 2.0);
  for (std::size_t i = 0; i < sys.positions.size(); ++i) {
    // Unwrapped coordinates: plain displacement is the true drift.
    const Vec3 d = sys.positions[i] - referencePositions_[i];
    if (normSquared(d) > limit2) return true;
  }
  return false;
}

bool NeighborList::update(const WaterSystem& sys) {
  if (!needsRebuild(sys)) return false;
  rebuild(sys);
  return true;
}

}  // namespace sfopt::md
