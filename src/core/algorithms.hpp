#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "core/checkpoint.hpp"
#include "core/condition_mask.hpp"
#include "core/point.hpp"
#include "core/result.hpp"
#include "core/sampling_context.hpp"
#include "core/simplex.hpp"
#include "core/termination.hpp"
#include "noise/stochastic_objective.hpp"

namespace sfopt::telemetry {
class Telemetry;
}

namespace sfopt::core {

/// Options common to every simplex variant.
struct CommonOptions {
  TerminationCriteria termination;
  /// Observability spine (non-owning; must outlive the run).  When set the
  /// engine pre-registers its metric handles, emits per-iteration spans
  /// and gate-stall/comparison histograms, and stamps per-step wall times
  /// from the telemetry clock.  nullptr = uninstrumented.
  telemetry::Telemetry* telemetry = nullptr;
  SimplexCoefficients coefficients;
  /// Samples taken when a vertex is first created.  The deterministic
  /// algorithm traditionally takes 1 (a single noisy evaluation); the
  /// stochastic variants need >= 2 so an estimated sigma exists.
  std::int64_t initialSamplesPerVertex = 2;
  /// Record a StepRecord per iteration into the result's trace.
  bool recordTrace = false;
  /// Resume from a snapshot instead of building the initial simplex; the
  /// `initial` points argument is ignored when set.  Non-owning: the
  /// checkpoint must outlive the run.  The continuation is exactly the
  /// interrupted run's (noise draws are keyed, not stateful).
  const SimplexCheckpoint* resumeFrom = nullptr;
  /// Snapshot cadence: every `checkpointEvery` iterations the sink is
  /// called with the current state (0 disables).
  std::int64_t checkpointEvery = 0;
  std::function<void(const SimplexCheckpoint&)> checkpointSink;
  SamplingContext::Options sampling;
};

/// Classical deterministic Nelder-Mead applied to the noisy objective
/// (the paper's Algorithm 1, "DET"): decisions use whatever the current
/// sample means happen to say.
struct DetOptions {
  DetOptions() { common.initialSamplesPerVertex = 1; }
  CommonOptions common;
};

/// Policy for the extra-sampling loops (the MN wait gate and the PC
/// resample loops): block sizes grow geometrically so that deep waits cost
/// O(log) decision rounds rather than one round per sample.
struct ResamplePolicy {
  std::int64_t initialBlock = 2;
  std::int64_t maxBlock = 1 << 16;
  double growth = 2.0;
  /// PC only: cap on resample rounds spent on a single unresolved
  /// comparison before it is forcibly resolved by the plain means.  This
  /// bounds the paper's acknowledged hazard (section 2.3) of two
  /// coincidentally near-identical vertices soaking up unbounded sampling
  /// even though "the eventual result may not depend strongly on the
  /// outcome".  <= 0 disables the cap.
  std::int64_t maxRoundsPerComparison = 0;
};

/// Max-noise algorithm (Algorithm 2, "MN"): before each simplex decision,
/// wait (sample all vertices concurrently) until
///   max_i sigma_i(t_i)^2  <=  k * internalVariance
/// where internalVariance is the variance of the vertex values around
/// their mean (eq. 2.3's "internal variance of the vertices themselves").
struct MaxNoiseOptions {
  CommonOptions common;
  double k = 2.0;
  /// Create trial vertices precision-matched to the most-sampled simplex
  /// vertex (see PCOptions::matchTrialPrecision).  When off, trials start
  /// from initialSamplesPerVertex and gain samples only through the wait
  /// gate's co-sampling — the literal reading of Algorithm 2, whose gate
  /// constrains vertex noise but says nothing about trial precision.
  bool matchTrialPrecision = true;
  ResamplePolicy resample;
};

/// Anderson et al. comparison criterion (eq. 2.4): wait until every vertex
/// satisfies sigma_i(t_i)^2 < k1 * 2^{-l (1 + k2)} where l is the simplex
/// contraction level.  The paper evaluates k1 in {2^0, 2^10, 2^20, 2^30}
/// with k2 = 0.
struct AndersonOptions {
  CommonOptions common;
  double k1 = 1.0;
  double k2 = 0.0;
  ResamplePolicy resample;
};

/// Point-to-point comparison algorithm (Algorithm 3, "PC"), optionally
/// combined with the max-noise gate (Algorithm 4, "PC+MN").
///
/// Interpretation note (documented deviation): as printed, condition 5 is
/// the literal complement of condition 1, which would make the "resample
/// until condition 1 or 5" branch unreachable.  We implement the clearly
/// intended symmetric-confidence semantics: c1 fires when the reflection is
/// confidently below the second-highest (intervals separated downward), c5
/// when it is confidently above-or-equal (separated upward), and
/// overlapping intervals trigger resampling.  The same symmetric reading
/// applies to the c3/c4 and c6/c7 pairs.
struct PCOptions {
  PCOptions() {
    // PC decisions hinge on estimated sigmas, so vertices start with a
    // sane floor of samples, and the per-comparison resample spiral (the
    // section 2.3 near-identical-vertices hazard) is bounded by default.
    common.initialSamplesPerVertex = 32;
    resample.maxRoundsPerComparison = 9;
  }
  CommonOptions common;
  /// Confidence width multiplier: comparisons require a separation of
  /// k * sigma on each side (the paper studies k = 1 and k = 2).
  double k = 1.0;
  /// Which of the seven conditions are noise-aware (section 3.3 ablations).
  PCConditionMask mask = PCConditionMask::all();
  /// Enable the max-noise wait gate as well (PC+MN, Algorithm 4).
  bool maxNoiseGate = false;
  /// Gate constant for PC+MN.
  double gateK = 2.0;
  /// A noise-aware comparison refuses to resolve until both vertices carry
  /// at least this many samples: the Welford standard error of a 2-sample
  /// estimate is far too fat-tailed to hang a k-sigma decision on, and
  /// trusting it produces confidently-wrong moves.
  std::int64_t minSamplesForConfidence = 8;
  /// Create trial vertices precision-matched to the most-sampled simplex
  /// vertex (the d+3-worker architecture samples trials continuously), so
  /// comparisons start from comparable intervals instead of a 2-sample
  /// fresh estimate against a heavily sampled incumbent.
  bool matchTrialPrecision = true;
  ResamplePolicy resample;
};

/// Run the deterministic simplex (DET) from the given initial points
/// (exactly dimension+1 of them).
[[nodiscard]] OptimizationResult runDeterministic(const noise::StochasticObjective& objective,
                                                  std::span<const Point> initial,
                                                  const DetOptions& options = {});

/// Run the max-noise algorithm (MN).
[[nodiscard]] OptimizationResult runMaxNoise(const noise::StochasticObjective& objective,
                                             std::span<const Point> initial,
                                             const MaxNoiseOptions& options = {});

/// Run the simplex with the Anderson sampling criterion.
[[nodiscard]] OptimizationResult runAnderson(const noise::StochasticObjective& objective,
                                             std::span<const Point> initial,
                                             const AndersonOptions& options = {});

/// Run the point-to-point comparison algorithm (PC), or PC+MN when
/// options.maxNoiseGate is set.
[[nodiscard]] OptimizationResult runPointToPoint(const noise::StochasticObjective& objective,
                                                 std::span<const Point> initial,
                                                 const PCOptions& options = {});

/// Convenience: PC+MN (Algorithm 4) with the given base options.
[[nodiscard]] OptimizationResult runPointToPointWithMaxNoise(
    const noise::StochasticObjective& objective, std::span<const Point> initial,
    PCOptions options = {});

}  // namespace sfopt::core
