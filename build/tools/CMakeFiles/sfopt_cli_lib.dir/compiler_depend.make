# Empty compiler generated dependencies file for sfopt_cli_lib.
# This may be replaced when dependencies are built.
