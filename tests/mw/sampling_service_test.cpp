#include "mw/sampling_service.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "tests/core/test_helpers.hpp"

namespace {

using namespace sfopt;
using namespace sfopt::mw;

TEST(SamplingTask, InputRoundTrip) {
  const std::vector<double> x{1.5, -2.5, 3.5};
  SamplingTask t(core::SamplingBackend::BatchRequest{x, 11, 100, 25});
  MessageBuffer buf;
  t.packInput(buf);
  SamplingTask u;
  u.unpackInput(buf);
  EXPECT_EQ(u.x(), x);
  EXPECT_EQ(u.vertexId(), 11u);
  EXPECT_EQ(u.startIndex(), 100u);
  EXPECT_EQ(u.count(), 25);
}

TEST(SamplingTask, ResultRoundTripPreservesMoments) {
  SamplingTask t;
  stats::Welford w;
  w.add(1.0);
  w.add(2.0);
  w.add(4.0);
  t.setResult(w);
  MessageBuffer buf;
  t.packResult(buf);
  SamplingTask u;
  u.unpackResult(buf);
  EXPECT_EQ(u.result().count(), 3);
  EXPECT_DOUBLE_EQ(u.result().mean(), w.mean());
  EXPECT_DOUBLE_EQ(u.result().variance(), w.variance());
}

struct ServiceFixture {
  explicit ServiceFixture(const noise::StochasticObjective& obj, int workers, int clients)
      : comm(workers + 1) {
    for (int w = 0; w < workers; ++w) {
      workerObjs.push_back(std::make_unique<SamplingWorker>(comm, w + 1, obj, clients));
      threads.emplace_back([this, w] { workerObjs[static_cast<std::size_t>(w)]->run(); });
    }
    driver = std::make_unique<MWDriver>(comm);
  }
  ~ServiceFixture() {
    driver->shutdown();
    for (auto& t : threads) t.join();
  }
  CommWorld comm;
  std::vector<std::unique_ptr<SamplingWorker>> workerObjs;
  std::vector<std::thread> threads;
  std::unique_ptr<MWDriver> driver;
};

TEST(MWSamplingBackend, SingleBatchMatchesInline) {
  auto obj = test::noisySphere(2, 3.0);
  ServiceFixture fx(obj, 3, 2);
  MWSamplingBackend backend(*fx.driver);

  const std::vector<double> x{2.0, -1.0};
  const auto got = backend.sampleBatch({x, 21, 0, 64});

  stats::Welford ref;
  for (std::uint64_t i = 0; i < 64; ++i) ref.add(obj.sample(x, {21, i}));
  EXPECT_EQ(got.count(), 64);
  EXPECT_NEAR(got.mean(), ref.mean(), 1e-12);
  EXPECT_NEAR(got.variance(), ref.variance(), 1e-9);
}

TEST(MWSamplingBackend, ManyBatchesInOrder) {
  auto obj = test::noisySphere(2, 1.0);
  ServiceFixture fx(obj, 4, 1);
  MWSamplingBackend backend(*fx.driver);

  std::vector<std::vector<double>> points;
  std::vector<core::SamplingBackend::BatchRequest> reqs;
  for (std::uint64_t v = 0; v < 10; ++v) {
    points.push_back({static_cast<double>(v), 0.0});
  }
  for (std::uint64_t v = 0; v < 10; ++v) {
    reqs.push_back({points[v], v, 0, 16});
  }
  const auto got = backend.sampleBatches(reqs);
  ASSERT_EQ(got.size(), 10u);
  for (std::uint64_t v = 0; v < 10; ++v) {
    stats::Welford ref;
    for (std::uint64_t i = 0; i < 16; ++i) ref.add(obj.sample(points[v], {v, i}));
    EXPECT_NEAR(got[v].mean(), ref.mean(), 1e-12) << "v=" << v;
  }
}

TEST(MWSamplingBackend, WorkersShareTheLoad) {
  auto obj = test::noisySphere(2, 1.0);
  ServiceFixture fx(obj, 3, 1);
  MWSamplingBackend backend(*fx.driver);
  const std::vector<double> x{0.0, 0.0};
  std::vector<core::SamplingBackend::BatchRequest> reqs;
  for (std::uint64_t v = 0; v < 30; ++v) reqs.push_back({x, v, 0, 4});
  (void)backend.sampleBatches(reqs);
  // Dynamic dispatch should engage more than one worker for 30 tasks.
  int engaged = 0;
  for (const auto& w : fx.workerObjs) {
    if (w->tasksExecuted() > 0) ++engaged;
  }
  EXPECT_GE(engaged, 2);
}

}  // namespace
