// Run a 20-dimensional noisy Rosenbrock optimization through the full MW
// master-worker stack: rank 0 drives the simplex, d+3 = 23 workers each
// front a vertex server with Ns clients, and every objective sample
// travels the message-passing wire.  The result is identical to a
// sequential run (noise draws are keyed, not ordered), which this example
// verifies at the end.
//
// The MW framework exists because one objective sample is expensive; the
// per-sample axis of that scale-up is the MD force kernel, so the example
// first times one MD-water objective sample serial vs thread-parallel
// (`mw_scaleup [force-threads]`, default 2) before the across-sample run.

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "core/algorithms.hpp"
#include "core/initial_simplex.hpp"
#include "mw/parallel_runner.hpp"
#include "noise/noisy_function.hpp"
#include "testfunctions/functions.hpp"
#include "water/md_objective.hpp"

namespace {

/// Time one MD-water objective sample at the given force-thread count.
double sampleSeconds(int forceThreads) {
  using namespace sfopt;
  water::MdWaterObjective::Options opts;
  opts.simulation.molecules = 64;
  opts.simulation.cutoff = 4.0;
  opts.simulation.equilibrationSteps = 100;
  opts.simulation.productionSteps = 200;
  opts.simulation.forceThreads = forceThreads;
  const water::MdWaterObjective objective(opts);
  const std::vector<double> tip4p{0.1550, 3.1536, 0.5200};
  const auto t0 = std::chrono::steady_clock::now();
  (void)objective.sample(tip4p, {1, 0});
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sfopt;
  constexpr std::size_t kDim = 20;

  // Per-sample scale-up: the MD evaluation behind every water-objective
  // sample, serial vs thread-parallel force kernel.
  const int forceThreads = argc > 1 ? std::atoi(argv[1]) : 2;
  if (forceThreads >= 1) {
    const double serial = sampleSeconds(1);
    const double parallel = forceThreads > 1 ? sampleSeconds(forceThreads) : serial;
    std::printf("per-sample:  one MD-water sample %.3f s serial, %.3f s at %d force "
                "threads (x%.2f)\n",
                serial, parallel, forceThreads, serial / parallel);
  }

  noise::NoisyFunction::Options noiseOpts;
  noiseOpts.sigma0 = 1.0;
  noise::NoisyFunction objective(
      kDim, [](std::span<const double> x) { return testfunctions::rosenbrock(x); }, noiseOpts);

  noise::RngStream rng(99, 0);
  const auto start = core::randomSimplexPoints(kDim, -2.0, 2.0, rng);

  core::MaxNoiseOptions options;
  options.common.termination.tolerance = 1e-2;
  options.common.termination.maxIterations = 3000;
  options.common.termination.maxSamples = 2'000'000;
  options.common.sampling.maxSamplesPerVertex = 2'000;

  mw::MWRunConfig config;
  config.clientsPerWorker = 2;  // Ns = 2 client simulations per vertex server
  const auto run = mw::runSimplexOverMW(objective, start, options, config);

  std::printf("deployment: %lld workers, %lld servers, %lld clients => %lld cores (Table 3.3 rule)\n",
              static_cast<long long>(run.allocation.workers()),
              static_cast<long long>(run.allocation.servers()),
              static_cast<long long>(run.allocation.clients()),
              static_cast<long long>(run.allocation.totalCores()));
  std::printf("result:     best true value %.4g after %lld steps (%s)\n",
              run.optimization.bestTrue.value_or(run.optimization.bestEstimate),
              static_cast<long long>(run.optimization.iterations),
              toString(run.optimization.reason).data());
  std::printf("traffic:    %llu messages, %llu bytes, %llu tasks; master wall %.2f s\n",
              static_cast<unsigned long long>(run.messagesSent),
              static_cast<unsigned long long>(run.bytesSent),
              static_cast<unsigned long long>(run.tasksCompleted), run.masterWallSeconds);

  // Cross-check against the sequential engine: identical trajectory.
  const auto sequential = core::runMaxNoise(objective, start, options);
  const bool identical = sequential.best == run.optimization.best &&
                         sequential.iterations == run.optimization.iterations;
  std::printf("sequential cross-check: %s\n",
              identical ? "identical trajectory" : "MISMATCH (bug!)");
  return identical ? 0 : 1;
}
