#include "core/eval_scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/sampling_backend.hpp"
#include "telemetry/sink.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace sfopt;
using core::AsyncSamplingBackend;
using core::EvalScheduler;
using core::SamplingBackend;

/// Deterministic stand-in for the objective: the value depends only on
/// (vertexId, sampleIndex), like the counter-keyed RNG, so any correct
/// sharding must reproduce the same chunk moments.
double sampleValue(std::uint64_t vertexId, std::uint64_t index) {
  return std::sin(static_cast<double>(vertexId * 1000003ULL + index)) +
         static_cast<double>(index % 7);
}

/// The canonical chunk moments of a batch, computed serially.
std::vector<stats::Welford> chunksFor(std::uint64_t vertexId, std::uint64_t start,
                                      std::int64_t count) {
  std::vector<stats::Welford> chunks;
  std::int64_t remaining = count;
  std::uint64_t index = start;
  while (remaining > 0) {
    const std::int64_t take = std::min(remaining, core::kEvalChunkSamples);
    stats::Welford c;
    for (std::int64_t i = 0; i < take; ++i) {
      c.add(sampleValue(vertexId, index + static_cast<std::uint64_t>(i)));
    }
    chunks.push_back(c);
    index += static_cast<std::uint64_t>(take);
    remaining -= take;
  }
  return chunks;
}

/// Fake evaluation fabric: records every submitted shard, computes its
/// chunks eagerly, and delivers completions newest-first — the worst case
/// for any merge that depends on completion order.
class FakeAsyncBackend final : public AsyncSamplingBackend {
 public:
  explicit FakeAsyncBackend(int parallelism) : parallelism_(parallelism) {}

  struct Recorded {
    std::uint64_t vertexId;
    std::uint64_t startIndex;
    std::int64_t count;
  };

  std::uint64_t submit(const SamplingBackend::BatchRequest& request) override {
    const std::uint64_t ticket = nextTicket_++;
    recorded.push_back({request.vertexId, request.startIndex, request.count});
    pending_.push_back({ticket, chunksFor(request.vertexId, request.startIndex, request.count)});
    return ticket;
  }

  std::vector<Completion> poll(double) override {
    std::vector<Completion> out;
    if (holdCompletions) return out;
    while (!pending_.empty() && (perPoll == 0 || out.size() < perPoll)) {
      out.push_back(std::move(pending_.back()));
      pending_.pop_back();
    }
    return out;
  }

  [[nodiscard]] int parallelism() const override { return parallelism_; }

  std::vector<Recorded> recorded;
  std::size_t perPoll = 0;      ///< completions per poll; 0 = all at once
  bool holdCompletions = false; ///< simulate a silent fabric

 private:
  int parallelism_;
  std::uint64_t nextTicket_ = 1;
  std::vector<Completion> pending_;
};

void expectBitwiseEqual(const stats::Welford& got, const stats::Welford& want) {
  EXPECT_EQ(got.count(), want.count());
  EXPECT_EQ(got.mean(), want.mean());
  EXPECT_EQ(got.sumSquaredDeviations(), want.sumSquaredDeviations());
}

TEST(EvalScheduler, UnshardedBatchIsOneTicketAndMatchesSerialFold) {
  FakeAsyncBackend backend(4);
  EvalScheduler sched(backend, {});
  const SamplingBackend::BatchRequest req{{}, 7, 128, 200};
  const auto results = sched.evaluate({&req, 1});
  ASSERT_EQ(results.size(), 1u);
  ASSERT_EQ(backend.recorded.size(), 1u);
  EXPECT_EQ(backend.recorded[0].startIndex, 128u);
  EXPECT_EQ(backend.recorded[0].count, 200);
  expectBitwiseEqual(results[0], core::foldEvalChunks(chunksFor(7, 128, 200)));
  EXPECT_EQ(sched.outstandingTickets(), 0u);
}

TEST(EvalScheduler, ShardsAreChunkAlignedAndCoverTheBatch) {
  FakeAsyncBackend backend(4);
  EvalScheduler sched(backend, {.shardMinSamples = 64});
  const SamplingBackend::BatchRequest req{{}, 3, 64, 640};  // 10 chunks
  const auto results = sched.evaluate({&req, 1});
  ASSERT_EQ(backend.recorded.size(), 4u);  // min(parallelism, chunks, by-threshold)
  std::uint64_t next = 64;
  std::int64_t total = 0;
  for (const auto& shard : backend.recorded) {
    EXPECT_EQ(shard.vertexId, 3u);
    EXPECT_EQ(shard.startIndex, next);  // contiguous
    EXPECT_EQ((shard.startIndex - 64) % core::kEvalChunkSamples, 0u);  // chunk-aligned
    next += static_cast<std::uint64_t>(shard.count);
    total += shard.count;
  }
  EXPECT_EQ(total, 640);
  expectBitwiseEqual(results[0], core::foldEvalChunks(chunksFor(3, 64, 640)));
}

TEST(EvalScheduler, ShardedResultBitwiseInvariantToCompletionOrder) {
  // Reverse delivery, one completion per poll: the fold must still come
  // out bitwise identical to the serial chunk fold.
  FakeAsyncBackend backend(8);
  backend.perPoll = 1;
  EvalScheduler sched(backend, {.shardMinSamples = 64});
  const SamplingBackend::BatchRequest req{{}, 11, 0, 1000};
  const auto results = sched.evaluate({&req, 1});
  EXPECT_GT(backend.recorded.size(), 1u);
  expectBitwiseEqual(results[0], core::foldEvalChunks(chunksFor(11, 0, 1000)));
}

TEST(EvalScheduler, BatchAtThresholdIsNotSharded) {
  FakeAsyncBackend backend(4);
  EvalScheduler sched(backend, {.shardMinSamples = 256});
  const SamplingBackend::BatchRequest req{{}, 1, 0, 256};
  (void)sched.evaluate({&req, 1});
  EXPECT_EQ(backend.recorded.size(), 1u);
}

TEST(EvalScheduler, ZeroCountRequestSkipsTheBackend) {
  FakeAsyncBackend backend(2);
  EvalScheduler sched(backend, {});
  const SamplingBackend::BatchRequest reqs[] = {{{}, 1, 0, 0}, {{}, 2, 0, 64}};
  const auto results = sched.evaluate(reqs);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].count(), 0);
  EXPECT_EQ(results[1].count(), 64);
  EXPECT_EQ(backend.recorded.size(), 1u);  // only the real batch went out
}

TEST(EvalScheduler, NegativeCountThrows) {
  FakeAsyncBackend backend(2);
  EvalScheduler sched(backend, {});
  const SamplingBackend::BatchRequest req{{}, 1, 0, -5};
  EXPECT_THROW((void)sched.evaluate({&req, 1}), std::invalid_argument);
}

TEST(EvalScheduler, SpeculationHitReusesStagedBatch) {
  FakeAsyncBackend backend(4);
  EvalScheduler sched(backend, {.speculate = true});
  const SamplingBackend::BatchRequest demand{{}, 1, 0, 100};
  const SamplingBackend::BatchRequest hint{{}, 2, 50, 100};
  (void)sched.evaluate({&demand, 1}, {&hint, 1});
  const std::size_t submitted = backend.recorded.size();
  EXPECT_EQ(submitted, 2u);  // demand + speculative hint
  EXPECT_EQ(sched.stagedBatches(), 1u);

  const auto results = sched.evaluate({&hint, 1});
  EXPECT_EQ(backend.recorded.size(), submitted);  // no resubmit: staged hit
  EXPECT_EQ(sched.speculationHits(), 1u);
  EXPECT_EQ(sched.speculationMisses(), 1u);
  EXPECT_EQ(sched.stagedBatches(), 0u);
  expectBitwiseEqual(results[0], core::foldEvalChunks(chunksFor(2, 50, 100)));
}

TEST(EvalScheduler, SpeculationSkippedAtOutstandingCap) {
  FakeAsyncBackend backend(4);
  EvalScheduler sched(backend, {.speculate = true, .maxOutstandingShards = 1});
  const SamplingBackend::BatchRequest demand{{}, 1, 0, 64};
  const SamplingBackend::BatchRequest hint{{}, 2, 0, 64};
  (void)sched.evaluate({&demand, 1}, {&hint, 1});
  // The demand ticket already fills the cap, so the hint never launches.
  EXPECT_EQ(backend.recorded.size(), 1u);
  EXPECT_EQ(sched.speculationSkipped(), 1u);
  EXPECT_EQ(sched.stagedBatches(), 0u);
}

TEST(EvalScheduler, StagingCapEvictsOldestWithoutCorruptingResults) {
  FakeAsyncBackend backend(4);
  EvalScheduler sched(backend,
                      {.speculate = true, .maxOutstandingShards = 16, .maxStagedEntries = 1});
  const SamplingBackend::BatchRequest demand{{}, 1, 0, 64};
  const SamplingBackend::BatchRequest hintB{{}, 2, 0, 64};
  const SamplingBackend::BatchRequest hintC{{}, 3, 0, 64};
  const SamplingBackend::BatchRequest hints[] = {hintB, hintC};
  (void)sched.evaluate({&demand, 1}, hints);
  // Both hints were submitted; the cap of 1 evicted the older one (B).
  EXPECT_EQ(sched.stagedBatches(), 1u);
  EXPECT_EQ(sched.stagedEvicted(), 1u);

  // B is a miss (resubmitted) and still bitwise correct; C is a hit.
  const auto b = sched.evaluate({&hintB, 1});
  expectBitwiseEqual(b[0], core::foldEvalChunks(chunksFor(2, 0, 64)));
  const std::uint64_t hitsBefore = sched.speculationHits();
  const auto c = sched.evaluate({&hintC, 1});
  EXPECT_EQ(sched.speculationHits(), hitsBefore + 1);
  expectBitwiseEqual(c[0], core::foldEvalChunks(chunksFor(3, 0, 64)));
}

TEST(EvalScheduler, SupersededSpeculationIsEvictedWhenVertexMovesPast) {
  FakeAsyncBackend backend(4);
  EvalScheduler sched(backend, {.speculate = true});
  const SamplingBackend::BatchRequest demand{{}, 1, 0, 64};
  // Hint guesses the next refinement of vertex 5 wrong (too small).
  const SamplingBackend::BatchRequest hint{{}, 5, 100, 64};
  (void)sched.evaluate({&demand, 1}, {&hint, 1});
  EXPECT_EQ(sched.stagedBatches(), 1u);

  // The actual refinement consumes past the staged start index, so the
  // stale guess can never match again and is dropped.
  const SamplingBackend::BatchRequest actual{{}, 5, 100, 128};
  const auto results = sched.evaluate({&actual, 1});
  EXPECT_EQ(sched.stagedBatches(), 0u);
  EXPECT_EQ(sched.stagedEvicted(), 1u);
  EXPECT_EQ(sched.speculationHits(), 0u);
  expectBitwiseEqual(results[0], core::foldEvalChunks(chunksFor(5, 100, 128)));
}

TEST(EvalScheduler, TimesOutWhenBackendGoesSilent) {
  FakeAsyncBackend backend(2);
  backend.holdCompletions = true;
  EvalScheduler sched(backend, {.timeoutSeconds = 0.05});
  const SamplingBackend::BatchRequest req{{}, 1, 0, 64};
  EXPECT_THROW((void)sched.evaluate({&req, 1}), std::runtime_error);
}

TEST(EvalScheduler, RegistersEvalMetrics) {
  telemetry::NoopSink sink;
  telemetry::Telemetry spine(sink);
  FakeAsyncBackend backend(4);
  EvalScheduler::Options opts;
  opts.shardMinSamples = 64;
  opts.speculate = true;
  opts.telemetry = &spine;
  EvalScheduler sched(backend, opts);

  const SamplingBackend::BatchRequest demand{{}, 1, 0, 640};
  const SamplingBackend::BatchRequest hint{{}, 2, 0, 64};
  (void)sched.evaluate({&demand, 1}, {&hint, 1});
  (void)sched.evaluate({&hint, 1});

  bool sawShards = false;
  for (const auto& snap : spine.metrics().snapshot()) {
    if (snap.name == "eval.shards_per_batch") {
      sawShards = true;
      EXPECT_GE(snap.count, 2);  // demand (4 shards) + hint (1 shard)
    }
  }
  EXPECT_TRUE(sawShards);
  EXPECT_EQ(spine.metrics().counter("eval.speculation_hits").value(), 1);
  EXPECT_EQ(spine.metrics().counter("eval.speculation_misses").value(), 1);
  EXPECT_DOUBLE_EQ(spine.metrics().gauge("eval.speculation_hit_rate").value(), 0.5);
}

TEST(EvalScheduler, RejectsNegativeOptions) {
  FakeAsyncBackend backend(2);
  EXPECT_THROW(EvalScheduler(backend, {.shardMinSamples = -1}), std::invalid_argument);
  EXPECT_THROW(EvalScheduler(backend, {.maxOutstandingShards = -1}), std::invalid_argument);
}

}  // namespace
