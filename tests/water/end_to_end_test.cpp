// The full honest pipeline in one test: the stochastic simplex drives the
// REAL molecular-dynamics engine (no surrogate) through the eq. 3.4 cost.
// Kept tiny (8 molecules, short protocol, a handful of steps) so it runs
// in seconds while still exercising every layer: core -> water -> md.

#include <gtest/gtest.h>

#include <cmath>

#include "core/algorithms.hpp"
#include "water/md_objective.hpp"

namespace {

using namespace sfopt;

TEST(EndToEnd, SimplexDrivesRealMdEngine) {
  water::MdWaterObjective::Options objOpts;
  objOpts.simulation.molecules = 8;
  objOpts.simulation.cutoff = 3.0;
  objOpts.simulation.rdfRMax = 3.0;
  objOpts.simulation.rdfBins = 30;
  objOpts.simulation.equilibrationSteps = 60;
  objOpts.simulation.productionSteps = 60;
  objOpts.simulation.sampleEvery = 10;
  const water::MdWaterObjective objective(objOpts);

  const std::vector<core::Point> start{
      {0.20, 3.05, 0.50},
      {0.12, 3.30, 0.55},
      {0.17, 3.15, 0.45},
      {0.14, 3.20, 0.58},
  };

  core::MaxNoiseOptions o;
  o.common.termination.tolerance = 0.0;
  o.common.termination.maxIterations = 4;  // a few real moves is the point
  o.common.initialSamplesPerVertex = 2;
  o.common.sampling.maxSamplesPerVertex = 4;
  o.common.recordTrace = true;
  const auto res = core::runMaxNoise(objective, start, o);

  EXPECT_EQ(res.iterations, 4);
  ASSERT_EQ(res.best.size(), 3u);
  for (double v : res.best) EXPECT_TRUE(std::isfinite(v));
  EXPECT_TRUE(std::isfinite(res.bestEstimate));
  EXPECT_GT(res.bestEstimate, 0.0);  // eq. 3.4 cost is a sum of squares
  // Virtual time advanced by real simulated picoseconds.
  EXPECT_GT(res.elapsedTime, 0.0);
  EXPECT_EQ(res.trace.size(), 4u);
}

TEST(EndToEnd, MdObjectiveOverMwMatchesSequential) {
  // The same MD-backed objective farmed over the master-worker runtime:
  // results must match the sequential run (keyed protocol seeds).
  water::MdWaterObjective::Options objOpts;
  objOpts.simulation.molecules = 8;
  objOpts.simulation.cutoff = 3.0;
  objOpts.simulation.rdfRMax = 3.0;
  objOpts.simulation.rdfBins = 30;
  objOpts.simulation.equilibrationSteps = 40;
  objOpts.simulation.productionSteps = 40;
  objOpts.simulation.sampleEvery = 10;
  const water::MdWaterObjective objective(objOpts);

  const std::vector<double> x{0.155, 3.15, 0.52};
  const double a = objective.sample(x, {3, 7});
  const double b = objective.sample(x, {3, 7});
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_NE(objective.sample(x, {3, 8}), a);
}

}  // namespace
