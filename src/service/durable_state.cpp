#include "service/durable_state.hpp"

#include <cstdlib>
#include <cstring>
#include <map>
#include <stdexcept>
#include <utility>

#include "core/crc32.hpp"
#include "mw/message_buffer.hpp"

namespace sfopt::service {

namespace {

/// Journal file header: 8-byte magic + little-endian format version.
constexpr char kJournalMagic[8] = {'S', 'F', 'O', 'P', 'T', 'J', 'N', 'L'};
constexpr std::uint32_t kJournalVersion = 1;
constexpr std::size_t kHeaderBytes = sizeof(kJournalMagic) + 4;

/// Each record is `u32 len | body[len] | u32 crc32(body)`; the body is a
/// MessageBuffer wire packing `int64 type, uint64 jobId, payload...`.
/// Replay stops at the first record whose length, checksum, or body fails
/// to validate — everything after a torn append is unreachable anyway.
constexpr std::uint32_t kMaxRecordBytes = 16u << 20;

enum class EntryType : std::int64_t {
  Submitted = 1,  ///< payload: JobSpec
  Started = 2,    ///< no payload
  Finished = 3,   ///< payload: state, error, hasOutcome, [JobOutcome]
  Evicted = 4,    ///< no payload
};

void putLE32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFFu));
  }
}

std::uint32_t getLE32(const std::byte* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

std::vector<std::byte> readWholeFile(const std::filesystem::path& file) {
  std::ifstream in(file, std::ios::binary);
  if (!in) throw std::runtime_error("durable state: cannot open " + file.string());
  std::vector<std::byte> data;
  char buf[65536];
  for (;;) {
    in.read(buf, sizeof(buf));
    const auto got = static_cast<std::size_t>(in.gcount());
    const auto* bytes = reinterpret_cast<const std::byte*>(buf);
    data.insert(data.end(), bytes, bytes + got);
    if (got < sizeof(buf)) break;
  }
  return data;
}

}  // namespace

DurableState::DurableState(std::filesystem::path dir) : dir_(std::move(dir)) {
  std::filesystem::create_directories(dir_);
  journalPath_ = dir_ / "journal.sfj";

  if (const char* torn = std::getenv("SFOPT_DURABLE_TORN_WRITE")) {
    tornWriteAt_ = std::strtoull(torn, nullptr, 10);
  }

  std::error_code ec;
  const auto size = std::filesystem::file_size(journalPath_, ec);
  if (ec || size < kHeaderBytes) {
    // Missing, empty, or killed before the header landed — no record can
    // have been committed yet, so a fresh header is safe.
    std::ofstream out(journalPath_, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("durable state: cannot create " + journalPath_.string());
    }
    out.write(kJournalMagic, sizeof(kJournalMagic));
    std::vector<std::byte> version;
    putLE32(version, kJournalVersion);
    out.write(reinterpret_cast<const char*>(version.data()),
              static_cast<std::streamsize>(version.size()));
    out.flush();
    if (!out) {
      throw std::runtime_error("durable state: cannot write " + journalPath_.string());
    }
    journalBytes_ = kHeaderBytes;
    return;
  }

  std::ifstream in(journalPath_, std::ios::binary);
  char magic[sizeof(kJournalMagic)] = {};
  std::byte version[4] = {};
  in.read(magic, sizeof(magic));
  in.read(reinterpret_cast<char*>(version), sizeof(version));
  if (!in || std::memcmp(magic, kJournalMagic, sizeof(kJournalMagic)) != 0) {
    throw std::runtime_error("durable state: " + journalPath_.string() +
                             " is not an sfopt journal");
  }
  if (const std::uint32_t v = getLE32(version); v != kJournalVersion) {
    throw std::runtime_error("durable state: journal format version " + std::to_string(v) +
                             " unsupported (this build speaks version " +
                             std::to_string(kJournalVersion) + ")");
  }
  journalBytes_ = size;
}

DurableState::Recovery DurableState::recover() {
  const std::vector<std::byte> data = readWholeFile(journalPath_);
  Recovery out;
  std::map<std::uint64_t, RecoveredJob> jobs;

  std::size_t off = kHeaderBytes;
  while (off + 8 <= data.size()) {
    const std::uint32_t len = getLE32(data.data() + off);
    if (len > kMaxRecordBytes || off + 8 + len > data.size()) {
      out.truncatedTail = true;
      break;
    }
    const std::byte* body = data.data() + off + 4;
    if (getLE32(body + len) != core::crc32(body, len)) {
      out.truncatedTail = true;
      break;
    }
    try {
      mw::MessageBuffer buf(std::vector<std::byte>(body, body + len));
      const auto type = static_cast<EntryType>(buf.unpackInt64());
      const std::uint64_t jobId = buf.unpackUint64();
      switch (type) {
        case EntryType::Submitted: {
          RecoveredJob job;
          job.id = jobId;
          job.spec = JobSpec::unpack(buf);
          jobs.insert_or_assign(jobId, std::move(job));
          break;
        }
        case EntryType::Started: {
          if (const auto it = jobs.find(jobId); it != jobs.end()) {
            it->second.state = JobState::Running;
          }
          break;
        }
        case EntryType::Finished: {
          const auto state = static_cast<JobState>(buf.unpackInt64());
          std::string error = buf.unpackString();
          std::optional<JobOutcome> outcome;
          if (buf.unpackInt64() != 0) outcome = JobOutcome::unpack(buf);
          if (const auto it = jobs.find(jobId); it != jobs.end()) {
            it->second.state = state;
            it->second.error = std::move(error);
            it->second.outcome = std::move(outcome);
          }
          break;
        }
        case EntryType::Evicted: {
          if (const auto it = jobs.find(jobId); it != jobs.end()) {
            it->second.evicted = true;
          }
          break;
        }
        default:
          throw std::runtime_error("unknown journal entry type");
      }
    } catch (const std::exception&) {
      // A crc-valid record this build cannot decode; treat everything
      // from here on as unreachable rather than guessing.
      out.truncatedTail = true;
      break;
    }
    ++out.entriesReplayed;
    off += 8 + static_cast<std::size_t>(len);
  }

  // Any bytes past the last clean record are a torn tail — even a stub
  // shorter than a record header.  Truncate them away so the next append
  // lands on a clean boundary instead of burying itself behind garbage.
  if (off < data.size()) {
    out.truncatedTail = true;
    const std::lock_guard<std::mutex> lock(mutex_);
    std::filesystem::resize_file(journalPath_, off);
    journalBytes_ = off;
  }

  for (auto& [id, job] : jobs) {
    out.maxJobId = id;
    if (job.state == JobState::Running) {
      try {
        job.checkpoint = core::loadCheckpoint(checkpointPath(id));
      } catch (const std::exception&) {
        // No usable snapshot — the job restarts from its initial simplex,
        // which the journal's Submitted entry preserves exactly.
      }
    }
    out.jobs.push_back(std::move(job));
  }
  return out;
}

void DurableState::recordSubmitted(std::uint64_t jobId, const JobSpec& spec) {
  mw::MessageBuffer buf;
  buf.pack(static_cast<std::int64_t>(EntryType::Submitted));
  buf.pack(jobId);
  spec.pack(buf);
  appendRecord(buf.wire());
}

void DurableState::recordStarted(std::uint64_t jobId) {
  mw::MessageBuffer buf;
  buf.pack(static_cast<std::int64_t>(EntryType::Started));
  buf.pack(jobId);
  appendRecord(buf.wire());
}

void DurableState::recordFinished(std::uint64_t jobId, JobState state,
                                  const std::string& error,
                                  const std::optional<JobOutcome>& outcome) {
  mw::MessageBuffer buf;
  buf.pack(static_cast<std::int64_t>(EntryType::Finished));
  buf.pack(jobId);
  buf.pack(static_cast<std::int64_t>(state));
  buf.pack(error);
  buf.pack(static_cast<std::int64_t>(outcome.has_value() ? 1 : 0));
  if (outcome) outcome->pack(buf);
  appendRecord(buf.wire());
}

void DurableState::recordEvicted(std::uint64_t jobId) {
  mw::MessageBuffer buf;
  buf.pack(static_cast<std::int64_t>(EntryType::Evicted));
  buf.pack(jobId);
  appendRecord(buf.wire());
}

void DurableState::writeJobCheckpoint(std::uint64_t jobId,
                                      const core::SimplexCheckpoint& cp) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::filesystem::path target = checkpointPath(jobId);
  const std::filesystem::path tmp = target.string() + ".tmp";
  core::saveCheckpoint(tmp, cp);
  // rename() is atomic within a filesystem: a reader sees the old full
  // snapshot or the new full snapshot, never a torn one.
  std::filesystem::rename(tmp, target);
}

void DurableState::removeJobCheckpoint(std::uint64_t jobId) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::error_code ec;
  std::filesystem::remove(checkpointPath(jobId), ec);
  std::filesystem::remove(checkpointPath(jobId).string() + ".tmp", ec);
}

std::uint64_t DurableState::journalBytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return journalBytes_;
}

void DurableState::appendRecord(const std::vector<std::byte>& body) {
  std::vector<std::byte> record;
  record.reserve(body.size() + 8);
  putLE32(record, static_cast<std::uint32_t>(body.size()));
  record.insert(record.end(), body.begin(), body.end());
  putLE32(record, core::crc32(body.data(), body.size()));

  const std::lock_guard<std::mutex> lock(mutex_);
  if (!journal_.is_open()) {
    journal_.open(journalPath_, std::ios::binary | std::ios::app);
    if (!journal_) {
      throw std::runtime_error("durable state: cannot append to " + journalPath_.string());
    }
  }
  ++appendCount_;
  if (tornWriteAt_ != 0 && appendCount_ == tornWriteAt_) {
    // Fault hook for the chaos tests: flush half a record, then die the
    // hard way — exactly the torn tail a mid-append SIGKILL leaves.
    journal_.write(reinterpret_cast<const char*>(record.data()),
                   static_cast<std::streamsize>(record.size() / 2));
    journal_.flush();
    std::_Exit(137);
  }
  journal_.write(reinterpret_cast<const char*>(record.data()),
                 static_cast<std::streamsize>(record.size()));
  journal_.flush();
  if (!journal_) {
    throw std::runtime_error("durable state: write failed for " + journalPath_.string());
  }
  journalBytes_ += record.size();
}

std::filesystem::path DurableState::checkpointPath(std::uint64_t jobId) const {
  return dir_ / ("job-" + std::to_string(jobId) + ".ckpt");
}

}  // namespace sfopt::service
