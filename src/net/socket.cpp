#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

namespace sfopt::net {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

void setNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    fail("fcntl(O_NONBLOCK)");
  }
}

void setNoDelay(int fd) {
  const int one = 1;
  // Best effort: some socket types (tests over socketpairs) reject it.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket tcpListen(std::uint16_t port) {
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) fail("socket");
  const int one = 1;
  if (::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one) < 0) {
    fail("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(s.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    fail("bind to port " + std::to_string(port));
  }
  if (::listen(s.fd(), 64) < 0) fail("listen");
  setNonBlocking(s.fd());
  return s;
}

std::uint16_t localPort(const Socket& listener) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(listener.fd(), reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    fail("getsockname");
  }
  return ntohs(addr.sin_port);
}

std::optional<Socket> tcpAccept(const Socket& listener) {
  const int fd = ::accept(listener.fd(), nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return std::nullopt;
    fail("accept");
  }
  Socket s(fd);
  setNonBlocking(s.fd());
  setNoDelay(s.fd());
  return s;
}

Socket tcpConnect(const std::string& host, std::uint16_t port, double timeoutSeconds) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string portStr = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), portStr.c_str(), &hints, &res);
  if (rc != 0) {
    throw std::runtime_error("resolve " + host + ": " + ::gai_strerror(rc));
  }

  std::string lastError = "no addresses";
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    Socket s(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!s.valid()) {
      lastError = std::strerror(errno);
      continue;
    }
    setNonBlocking(s.fd());
    if (::connect(s.fd(), ai->ai_addr, ai->ai_addrlen) == 0) {
      setNoDelay(s.fd());
      ::freeaddrinfo(res);
      return s;
    }
    if (errno != EINPROGRESS) {
      lastError = std::strerror(errno);
      continue;
    }
    // Non-blocking connect: wait for writability, then read SO_ERROR.
    pollfd pfd{s.fd(), POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(timeoutSeconds * 1000.0));
    if (ready <= 0) {
      lastError = ready == 0 ? "connect timed out" : std::strerror(errno);
      continue;
    }
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(s.fd(), SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      lastError = std::strerror(err != 0 ? err : errno);
      continue;
    }
    setNoDelay(s.fd());
    ::freeaddrinfo(res);
    return s;
  }
  ::freeaddrinfo(res);
  throw std::runtime_error("connect to " + host + ":" + portStr + " failed: " + lastError);
}

double monotonicSeconds() noexcept {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace sfopt::net
