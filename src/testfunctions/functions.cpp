#include "testfunctions/functions.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace sfopt::testfunctions {

double rosenbrock(std::span<const double> x) {
  if (x.size() < 2) throw std::invalid_argument("rosenbrock: needs d >= 2");
  double s = 0.0;
  for (std::size_t i = 1; i < x.size(); ++i) {
    const double a = 1.0 - x[i - 1];
    const double b = x[i] - x[i - 1] * x[i - 1];
    s += a * a + 100.0 * b * b;
  }
  return s;
}

std::vector<double> rosenbrockGradient(std::span<const double> x) {
  if (x.size() < 2) throw std::invalid_argument("rosenbrockGradient: needs d >= 2");
  std::vector<double> g(x.size(), 0.0);
  for (std::size_t i = 1; i < x.size(); ++i) {
    const double b = x[i] - x[i - 1] * x[i - 1];
    g[i - 1] += -2.0 * (1.0 - x[i - 1]) - 400.0 * x[i - 1] * b;
    g[i] += 200.0 * b;
  }
  return g;
}

double powell(std::span<const double> x) {
  if (x.size() != 4) throw std::invalid_argument("powell: needs d == 4");
  const double t1 = x[0] + 10.0 * x[1];
  const double t2 = x[2] - x[3];
  const double t3 = x[1] - 2.0 * x[2];
  const double t4 = x[0] - x[3];
  return t1 * t1 + 5.0 * t2 * t2 + t3 * t3 * t3 * t3 + 10.0 * t4 * t4 * t4 * t4;
}

double sphere(std::span<const double> x) {
  double s = 0.0;
  for (double v : x) s += v * v;
  return s;
}

double quadraticBowl(std::span<const double> x) {
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    s += static_cast<double>(i + 1) * x[i] * x[i];
  }
  return s;
}

double rastrigin(std::span<const double> x) {
  double s = 10.0 * static_cast<double>(x.size());
  for (double v : x) {
    s += v * v - 10.0 * std::cos(2.0 * std::numbers::pi * v);
  }
  return s;
}

double himmelblau(std::span<const double> x) {
  if (x.size() != 2) throw std::invalid_argument("himmelblau: needs d == 2");
  const double a = x[0] * x[0] + x[1] - 11.0;
  const double b = x[0] + x[1] * x[1] - 7.0;
  return a * a + b * b;
}

std::vector<double> rosenbrockMinimizer(std::size_t dimension) {
  return std::vector<double>(dimension, 1.0);
}

std::vector<double> powellMinimizer() { return std::vector<double>(4, 0.0); }

}  // namespace sfopt::testfunctions
