#include "commands.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "simd/isa.hpp"
#include "telemetry/sink.hpp"

namespace {

using namespace sfopt::tools;

struct CliRun {
  int code = 0;
  std::string out;
  std::string err;
};

CliRun cli(const std::vector<std::string>& argv) {
  std::ostringstream out;
  std::ostringstream err;
  CliRun r;
  r.code = runCli(argv, out, err);
  r.out = out.str();
  r.err = err.str();
  return r;
}

TEST(Cli, InfoListsEverything) {
  const auto r = cli({"info"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("mn"), std::string::npos);
  EXPECT_NE(r.out.find("rosenbrock"), std::string::npos);
  EXPECT_NE(r.out.find("water"), std::string::npos);
  EXPECT_NE(r.out.find("transports:"), std::string::npos);
  EXPECT_NE(r.out.find("protocol v2"), std::string::npos);
  EXPECT_NE(r.out.find("trace"), std::string::npos);
  EXPECT_NE(r.out.find("serve"), std::string::npos);
  EXPECT_NE(r.out.find("worker"), std::string::npos);
}

TEST(Cli, ServeRejectsBadInput) {
  EXPECT_EQ(cli({"serve", "--function", "nope", "--dim", "2"}).code, 2);
  EXPECT_EQ(cli({"serve", "--function", "sphere", "--dim", "1"}).code, 2);
  EXPECT_EQ(cli({"serve", "--function", "sphere", "--dim", "2", "--workers", "0"}).code, 2);
  EXPECT_EQ(cli({"serve", "--function", "sphere", "--dim", "2", "--port", "70000"}).code, 2);
  EXPECT_EQ(
      cli({"serve", "--function", "sphere", "--dim", "2", "--algorithm", "bogus"}).code, 2);
}

TEST(Cli, WorkerRejectsBadInput) {
  EXPECT_EQ(cli({"worker", "--port", "70000"}).code, 2);
  EXPECT_EQ(cli({"worker", "--port", "7600", "--connect-attempts", "0"}).code, 2);
}

TEST(Cli, NoCommandPrintsInfo) {
  const auto r = cli({});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("sfopt"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  const auto r = cli({"frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, OptimizeSphereWithMn) {
  const auto r = cli({"optimize", "--function", "sphere", "--dim", "3", "--algorithm", "mn",
                      "--sigma0", "0.5", "--max-iterations", "200", "--max-samples",
                      "100000"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("stopped:"), std::string::npos);
  EXPECT_NE(r.out.find("best:"), std::string::npos);
  EXPECT_NE(r.out.find("true value"), std::string::npos);
}

TEST(Cli, OptimizeWithExplicitStart) {
  const auto r = cli({"optimize", "--function", "sphere", "--dim", "2", "--algorithm", "det",
                      "--sigma0", "0", "--start", "2,2", "--max-iterations", "2000"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("converged"), std::string::npos);
}

TEST(Cli, OptimizeOverMasterWorker) {
  const auto r = cli({"optimize", "--function", "sphere", "--dim", "2", "--algorithm", "mn",
                      "--sigma0", "1", "--mw", "--workers", "3", "--max-iterations", "50",
                      "--max-samples", "50000"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("master-worker deployment"), std::string::npos);
}

TEST(Cli, OptimizePsoAndSa) {
  for (const char* algo : {"pso", "sa"}) {
    const auto r = cli({"optimize", "--function", "rastrigin", "--dim", "2", "--algorithm",
                        algo, "--sigma0", "0.2", "--max-iterations", "60", "--max-samples",
                        "100000"});
    EXPECT_EQ(r.code, 0) << algo << ": " << r.err;
    EXPECT_NE(r.out.find("stopped:"), std::string::npos) << algo;
  }
}

TEST(Cli, OptimizeRejectsBadInput) {
  EXPECT_EQ(cli({"optimize", "--algorithm", "magic"}).code, 2);
  EXPECT_EQ(cli({"optimize", "--dim", "1"}).code, 2);
  EXPECT_EQ(cli({"optimize", "--function", "nope"}).code, 2);
  EXPECT_EQ(cli({"optimize", "--function", "powell", "--dim", "3"}).code, 2);
  EXPECT_EQ(cli({"optimize", "--dim", "3", "--start", "1,2"}).code, 2);
  EXPECT_EQ(cli({"optimize", "--box", "5,1"}).code, 2);
}

TEST(Cli, ProbeReportsSigma) {
  const auto r = cli({"probe", "--function", "sphere", "--dim", "2", "--sigma0", "3",
                      "--point", "1,1", "--samples", "4000"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("sigma0:"), std::string::npos);
  // The estimate should land near 3 (printed before the declared value).
  EXPECT_NE(r.out.find("(declared 3"), std::string::npos);
}

TEST(Cli, WaterRunsQuickConfiguration) {
  const auto r = cli({"water", "--algorithm", "mn", "--sigma0", "0.2", "--max-iterations",
                      "120", "--max-samples", "500000"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("epsilon"), std::string::npos);
  EXPECT_NE(r.out.find("TIP4P"), std::string::npos);
}

TEST(Cli, MdRunsQuickSimulation) {
  const auto r = cli({"md", "--molecules", "8", "--equilibration", "20", "--production",
                      "40", "--cutoff", "3.0", "--force-threads", "2"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("molecules,"), std::string::npos);
  EXPECT_NE(r.out.find("force path:"), std::string::npos);
  EXPECT_NE(r.out.find("perf:"), std::string::npos);
}

TEST(Cli, MdRejectsBadInput) {
  EXPECT_EQ(cli({"md", "--molecules", "0"}).code, 2);
  EXPECT_EQ(cli({"md", "--force-threads", "0"}).code, 2);
}

TEST(Cli, WaterRejectsUnknownAlgorithm) {
  EXPECT_EQ(cli({"water", "--algorithm", "pso"}).code, 2);
}

TEST(Cli, CheckpointAndResumeContinueARun) {
  namespace fs = std::filesystem;
  const fs::path ckpt = fs::temp_directory_path() / "sfopt_cli_test.ckpt";
  fs::remove(ckpt);
  const std::vector<std::string> base{
      "optimize", "--function", "sphere", "--dim", "2", "--algorithm", "mn",
      "--sigma0", "2", "--seed", "91", "--tolerance", "0", "--max-samples", "500000"};

  // Full run to 40 iterations.
  auto full = base;
  full.insert(full.end(), {"--max-iterations", "40"});
  const auto ref = cli(full);
  ASSERT_EQ(ref.code, 0) << ref.err;

  // Run to 20 with checkpointing, then resume to 40.
  auto firstHalf = base;
  firstHalf.insert(firstHalf.end(), {"--max-iterations", "20", "--checkpoint",
                                     ckpt.string(), "--checkpoint-every", "20"});
  ASSERT_EQ(cli(firstHalf).code, 0);
  ASSERT_TRUE(fs::exists(ckpt));

  auto secondHalf = base;
  secondHalf.insert(secondHalf.end(), {"--max-iterations", "40", "--resume", ckpt.string()});
  const auto resumed = cli(secondHalf);
  ASSERT_EQ(resumed.code, 0) << resumed.err;

  // The resumed run reports the identical best point as the full run.
  const auto bestLine = [](const std::string& text) {
    const auto pos = text.find("best:");
    return text.substr(pos, text.find('\n', pos) - pos);
  };
  EXPECT_EQ(bestLine(resumed.out), bestLine(ref.out));
  fs::remove(ckpt);
}

TEST(Cli, CheckpointRejectedForSwarmAndAnnealing) {
  EXPECT_EQ(cli({"optimize", "--algorithm", "pso", "--checkpoint", "/tmp/x.ckpt"}).code, 2);
  EXPECT_EQ(cli({"optimize", "--algorithm", "sa", "--resume", "/tmp/x.ckpt"}).code, 2);
}

TEST(Cli, MdJsonEmitsStableMachineReadableReport) {
  const auto r = cli({"md", "--molecules", "8", "--equilibration", "20", "--production",
                      "40", "--cutoff", "3.0", "--json"});
  ASSERT_EQ(r.code, 0) << r.err;
  // The report is one flat JSON object on the first line, in the telemetry
  // wire format, so the JSONL parser round-trips it.
  const std::string firstLine = r.out.substr(0, r.out.find('\n'));
  const auto report = sfopt::telemetry::parseJsonLine(firstLine);
  ASSERT_TRUE(report.has_value()) << firstLine;
  EXPECT_EQ(report->type, "md_report");
  EXPECT_EQ(report->num("molecules"), 8.0);
  EXPECT_EQ(report->num("production_steps"), 40.0);
  ASSERT_TRUE(report->num("potential_per_molecule_kcal").has_value());
  ASSERT_TRUE(report->num("force_evaluations").has_value());
  EXPECT_GT(*report->num("force_evaluations"), 0.0);
  EXPECT_TRUE(report->num("nve_drift_kcal_per_ps").has_value());
}

TEST(Cli, TelemetryOutCapturesEngineMwAndCliLayers) {
  namespace fs = std::filesystem;
  const fs::path jsonl = fs::temp_directory_path() / "sfopt_cli_telemetry.jsonl";
  fs::remove(jsonl);
  const auto r = cli({"optimize", "--function", "sphere", "--dim", "2", "--algorithm", "mn",
                      "--sigma0", "1", "--mw", "--workers", "2", "--max-iterations", "30",
                      "--max-samples", "50000", "--telemetry-out", jsonl.string()});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("telemetry:"), std::string::npos);
  ASSERT_TRUE(fs::exists(jsonl));

  const auto events = sfopt::telemetry::readJsonlEvents(jsonl);
  ASSERT_FALSE(events.empty());
  bool engineRun = false, mwBatch = false, cliSpan = false, metric = false;
  for (const auto& e : events) {
    engineRun |= e.type == "span" && e.name == "engine.run";
    mwBatch |= e.type == "span" && e.name == "mw.batch";
    cliSpan |= e.type == "span" && e.name == "cli.optimize";
    metric |= e.type == "metric" && e.name == "engine.iterations";
  }
  EXPECT_TRUE(engineRun);
  EXPECT_TRUE(mwBatch);
  EXPECT_TRUE(cliSpan);
  EXPECT_TRUE(metric);

  // `sfopt metrics` renders the capture with layer coverage.
  const auto m = cli({"metrics", jsonl.string()});
  ASSERT_EQ(m.code, 0) << m.err;
  EXPECT_NE(m.out.find("spans (seconds):"), std::string::npos);
  EXPECT_NE(m.out.find("engine.iterations"), std::string::npos);
  EXPECT_NE(m.out.find("engine[x] mw[x]"), std::string::npos);
  fs::remove(jsonl);
}

TEST(Cli, TelemetryAppendAccumulatesAllFourLayers) {
  namespace fs = std::filesystem;
  const fs::path jsonl = fs::temp_directory_path() / "sfopt_cli_telemetry_all.jsonl";
  fs::remove(jsonl);
  ASSERT_EQ(cli({"optimize", "--function", "sphere", "--dim", "2", "--algorithm", "mn",
                 "--sigma0", "1", "--mw", "--workers", "2", "--max-iterations", "20",
                 "--max-samples", "50000", "--telemetry-out", jsonl.string()})
                .code,
            0);
  ASSERT_EQ(cli({"md", "--molecules", "8", "--equilibration", "20", "--production", "40",
                 "--cutoff", "3.0", "--telemetry-out", jsonl.string(),
                 "--telemetry-append"})
                .code,
            0);
  const auto m = cli({"metrics", "--in", jsonl.string()});
  ASSERT_EQ(m.code, 0) << m.err;
  EXPECT_NE(m.out.find("engine[x] mw[x] net[ ] md[x] cli[x]"), std::string::npos) << m.out;
  fs::remove(jsonl);
}

TEST(Cli, PipelineKnobsKeepTheMwResultIdentical) {
  const std::vector<std::string> base = {"optimize", "--function", "sphere", "--dim", "2",
                                         "--algorithm", "mn", "--sigma0", "1", "--mw",
                                         "--workers", "3", "--max-iterations", "40",
                                         "--max-samples", "50000"};
  std::vector<std::string> piped = base;
  piped.insert(piped.end(), {"--shard-min-samples", "64", "--speculate"});
  const auto plain = cli(base);
  const auto sharded = cli(piped);
  ASSERT_EQ(plain.code, 0) << plain.err;
  ASSERT_EQ(sharded.code, 0) << sharded.err;

  // The printed trajectory summary (moves, best, estimate, effort) must be
  // untouched by the pipeline knobs.
  const auto resultLines = [](const std::string& out) {
    std::istringstream in(out);
    std::string line, keep;
    while (std::getline(in, line)) {
      for (const char* prefix : {"stopped:", "best:", "estimate:", "effort:", "moves:"}) {
        if (line.rfind(prefix, 0) == 0) keep += line + "\n";
      }
    }
    return keep;
  };
  EXPECT_FALSE(resultLines(plain.out).empty());
  EXPECT_EQ(resultLines(sharded.out), resultLines(plain.out));
}

TEST(Cli, ShardMinSamplesRejectsNegative) {
  EXPECT_EQ(cli({"optimize", "--shard-min-samples", "-1"}).code, 2);
  EXPECT_EQ(cli({"water", "--algorithm", "mn", "--shard-min-samples", "-5"}).code, 2);
}

TEST(Cli, PipelinedTelemetryCoversTheEvalLayer) {
  namespace fs = std::filesystem;
  const fs::path jsonl = fs::temp_directory_path() / "sfopt_cli_eval_layer.jsonl";
  fs::remove(jsonl);
  const auto r = cli({"optimize", "--function", "sphere", "--dim", "2", "--algorithm", "mn",
                      "--sigma0", "1", "--mw", "--workers", "2", "--shard-min-samples", "64",
                      "--speculate", "--max-iterations", "30", "--max-samples", "50000",
                      "--telemetry-out", jsonl.string()});
  ASSERT_EQ(r.code, 0) << r.err;
  const auto m = cli({"metrics", jsonl.string()});
  ASSERT_EQ(m.code, 0) << m.err;
  EXPECT_NE(m.out.find("eval.shards_per_batch"), std::string::npos) << m.out;
  EXPECT_NE(m.out.find("eval[x]"), std::string::npos) << m.out;
  fs::remove(jsonl);
}

TEST(Cli, MetricsRejectsMissingInput) {
  EXPECT_EQ(cli({"metrics"}).code, 2);
  EXPECT_EQ(cli({"metrics", "/no/such/file.jsonl"}).code, 2);
}

TEST(Cli, TraceFlagWritesCsv) {
  namespace fs = std::filesystem;
  const fs::path csv = fs::temp_directory_path() / "sfopt_cli_trace.csv";
  fs::remove(csv);
  const auto r = cli({"optimize", "--function", "sphere", "--dim", "2", "--algorithm",
                      "det", "--sigma0", "0", "--max-iterations", "30", "--tolerance", "0",
                      "--trace", csv.string()});
  ASSERT_EQ(r.code, 0) << r.err;
  ASSERT_TRUE(fs::exists(csv));
  std::ifstream in(csv);
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("best_estimate"), std::string::npos);
  fs::remove(csv);
}

namespace trace_fixture {

sfopt::telemetry::Event span(std::string name, std::uint64_t id, std::uint64_t parent,
                             std::uint64_t trace, double start, double duration,
                             std::string outcome = {}) {
  sfopt::telemetry::Event e;
  e.type = "span";
  e.name = std::move(name);
  e.id = id;
  e.parent = parent;
  e.trace = trace;
  e.time = start;
  e.duration = duration;
  if (!outcome.empty()) e.strFields = {{"outcome", std::move(outcome)}};
  return e;
}

/// Writes one complete shard span tree (lifecycle + queue + remote +
/// folded terminal) to `path`.
void writeCompleteTrace(const std::filesystem::path& path) {
  std::ofstream out(path);
  out << toJsonLine(span("shard.lifecycle", 10, 0, 1, 1.0, 2.0, "ok")) << "\n";
  out << toJsonLine(span("shard.queue", 11, 10, 1, 1.0, 0.1)) << "\n";
  auto remote = span("shard.remote", 12, 10, 1, 1.1, 1.5, "ok");
  remote.numFields = {{"rank", 1.0}};
  out << toJsonLine(remote) << "\n";
  out << toJsonLine(span("shard.folded", 13, 10, 1, 2.7, 0.0)) << "\n";
}

}  // namespace trace_fixture

TEST(Cli, TraceVerifiesCompleteSpanTrees) {
  namespace fs = std::filesystem;
  const fs::path file = fs::temp_directory_path() / "sfopt_cli_trace_ok.jsonl";
  trace_fixture::writeCompleteTrace(file);

  const auto r = cli({"trace", file.string(), "--verify"});
  EXPECT_EQ(r.code, 0) << r.err << r.out;
  EXPECT_NE(r.out.find("complete span tree"), std::string::npos);

  const auto report = cli({"trace", file.string()});
  EXPECT_EQ(report.code, 0) << report.err;
  EXPECT_NE(report.out.find("shards:"), std::string::npos);
  EXPECT_NE(report.out.find("critical path"), std::string::npos);
  EXPECT_NE(report.out.find("queue"), std::string::npos);
  fs::remove(file);
}

TEST(Cli, TraceVerifyFailsOnIncompleteSpanTree) {
  namespace fs = std::filesystem;
  const fs::path file = fs::temp_directory_path() / "sfopt_cli_trace_bad.jsonl";
  {
    // A lifecycle root that claims success but never folded and was never
    // dispatched: two integrity problems.
    std::ofstream out(file);
    out << toJsonLine(trace_fixture::span("shard.lifecycle", 10, 0, 1, 1.0, 2.0, "ok"))
        << "\n";
  }
  const auto r = cli({"trace", file.string(), "--verify"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.out.find("problem:"), std::string::npos);
  fs::remove(file);
}

TEST(Cli, TraceRejectsMissingInput) {
  EXPECT_EQ(cli({"trace"}).code, 2);
  EXPECT_EQ(cli({"trace", "/no/such/file.jsonl"}).code, 2);
}

TEST(Cli, TraceFailsGracefullyOnAnEmptyCapture) {
  namespace fs = std::filesystem;
  const fs::path file = fs::temp_directory_path() / "sfopt_empty_capture.jsonl";
  std::ofstream(file).close();
  const auto r = cli({"trace", file.string()});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.out.find("error:"), std::string::npos);
  EXPECT_NE(r.out.find("--telemetry-out"), std::string::npos);
  fs::remove(file);
}

TEST(Cli, SubmitRejectsBadInput) {
  // Validation failures must be usage errors before any connection is
  // attempted (the daemon address here is intentionally unreachable).
  EXPECT_EQ(cli({"submit", "--port", "70000"}).code, 2);
  EXPECT_EQ(cli({"submit", "--port", "1", "--function", "nope"}).code, 2);
  EXPECT_EQ(cli({"submit", "--port", "1", "--dim", "1"}).code, 2);
  EXPECT_EQ(cli({"submit", "--port", "1", "--algorithm", "bogus"}).code, 2);
  EXPECT_EQ(cli({"submit", "--port", "1", "--function", "powell", "--dim", "3"}).code, 2);
}

TEST(Cli, StatusAndCancelRejectBadInput) {
  EXPECT_EQ(cli({"status", "--port", "70000"}).code, 2);
  EXPECT_EQ(cli({"status", "--port", "1", "--job", "-3"}).code, 2);
  EXPECT_EQ(cli({"cancel", "--port", "1"}).code, 2);  // needs --job
  EXPECT_EQ(cli({"cancel", "--port", "1", "--job", "0"}).code, 2);
}

TEST(Cli, ServeDaemonRejectsBadInput) {
  EXPECT_EQ(cli({"serve", "--daemon", "--port", "70000"}).code, 2);
  EXPECT_EQ(cli({"serve", "--daemon", "--port", "0", "--max-concurrent", "0"}).code, 2);
  EXPECT_EQ(cli({"serve", "--daemon", "--port", "0", "--max-queued", "-1"}).code, 2);
  EXPECT_EQ(cli({"serve", "--daemon", "--port", "0", "--max-pending-shards", "0"}).code, 2);
}

TEST(Cli, InfoMentionsTheServiceCommands) {
  const auto r = cli({"info"});
  EXPECT_NE(r.out.find("--daemon"), std::string::npos);
  EXPECT_NE(r.out.find("submit"), std::string::npos);
  EXPECT_NE(r.out.find("status"), std::string::npos);
  EXPECT_NE(r.out.find("cancel"), std::string::npos);
}

TEST(Cli, InfoReportsSimdIsaSituation) {
  const auto r = cli({"info"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("simd:"), std::string::npos);
  EXPECT_NE(r.out.find("supported:"), std::string::npos);
  EXPECT_NE(r.out.find("scalar"), std::string::npos);
  EXPECT_NE(r.out.find("--isa"), std::string::npos);
}

TEST(Cli, IsaFlagRejectsUnknownAndUnsupportedLevels) {
  const auto unknown = cli({"optimize", "--function", "sphere", "--dim", "2", "--isa",
                            "bogus"});
  EXPECT_EQ(unknown.code, 2);
  EXPECT_NE(unknown.err.find("supported"), std::string::npos);
  // Every real-but-unsupported level on this host is a usage error too
  // (neon on x86 hosts, the x86 levels on arm).
  for (const sfopt::simd::Isa isa :
       {sfopt::simd::Isa::Sse4, sfopt::simd::Isa::Avx2, sfopt::simd::Isa::Neon}) {
    if (sfopt::simd::isaSupported(isa)) continue;
    const auto r = cli({"optimize", "--function", "sphere", "--dim", "2", "--isa",
                        sfopt::simd::isaName(isa)});
    EXPECT_EQ(r.code, 2) << sfopt::simd::isaName(isa);
    EXPECT_NE(r.err.find("not available"), std::string::npos);
  }
}

TEST(Cli, IsaFlagPinsDispatchForTheRun) {
  const sfopt::simd::Isa before = sfopt::simd::activeIsa();
  const auto r = cli({"optimize", "--function", "sphere", "--dim", "2", "--algorithm",
                      "mn", "--sigma0", "1", "--max-iterations", "10", "--max-samples",
                      "20000", "--isa", "scalar"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_EQ(sfopt::simd::activeIsa(), sfopt::simd::Isa::Scalar);
  sfopt::simd::setActiveIsa(before);
}

}  // namespace
