#include "core/condition_mask.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

using sfopt::core::PCConditionMask;

TEST(PCConditionMask, AllAndNone) {
  const auto all = PCConditionMask::all();
  const auto none = PCConditionMask::none();
  for (int c = 1; c <= 7; ++c) {
    EXPECT_TRUE(all.isNoiseAware(c));
    EXPECT_FALSE(none.isNoiseAware(c));
  }
  EXPECT_EQ(all.label(), "c1-7");
  EXPECT_EQ(none.label(), "none");
}

TEST(PCConditionMask, Only) {
  const auto m = PCConditionMask::only({1, 3, 6});
  EXPECT_TRUE(m.isNoiseAware(1));
  EXPECT_FALSE(m.isNoiseAware(2));
  EXPECT_TRUE(m.isNoiseAware(3));
  EXPECT_FALSE(m.isNoiseAware(4));
  EXPECT_FALSE(m.isNoiseAware(5));
  EXPECT_TRUE(m.isNoiseAware(6));
  EXPECT_FALSE(m.isNoiseAware(7));
  EXPECT_EQ(m.label(), "c136");
}

TEST(PCConditionMask, SingleConditionLabel) {
  EXPECT_EQ(PCConditionMask::only({4}).label(), "c4");
}

TEST(PCConditionMask, RangeValidation) {
  EXPECT_THROW((void)PCConditionMask::only({0}), std::invalid_argument);
  EXPECT_THROW((void)PCConditionMask::only({8}), std::invalid_argument);
  const auto m = PCConditionMask::all();
  EXPECT_THROW((void)m.isNoiseAware(0), std::invalid_argument);
  EXPECT_THROW((void)m.isNoiseAware(8), std::invalid_argument);
}

TEST(PCConditionMask, Equality) {
  EXPECT_EQ(PCConditionMask::only({1, 3, 6}), PCConditionMask::only({6, 3, 1}));
  EXPECT_NE(PCConditionMask::only({1}), PCConditionMask::only({2}));
}

}  // namespace
