#include "md/periodic_box.hpp"

#include <gtest/gtest.h>

namespace {

using sfopt::md::PeriodicBox;
using sfopt::md::Vec3;

TEST(PeriodicBox, RejectsNonPositiveEdge) {
  EXPECT_THROW(PeriodicBox(0.0), std::invalid_argument);
  EXPECT_THROW(PeriodicBox(-1.0), std::invalid_argument);
}

TEST(PeriodicBox, VolumeIsCubed) {
  PeriodicBox b(3.0);
  EXPECT_DOUBLE_EQ(b.volume(), 27.0);
}

TEST(PeriodicBox, MinimumImageInsideBox) {
  PeriodicBox b(10.0);
  const Vec3 d = b.minimumImage({1.0, 1.0, 1.0}, {2.0, 3.0, 4.0});
  EXPECT_EQ(d, (Vec3{-1.0, -2.0, -3.0}));
}

TEST(PeriodicBox, MinimumImageWrapsAcrossBoundary) {
  PeriodicBox b(10.0);
  // Points at 0.5 and 9.5: the short way round is 1.0, not 9.0.
  const Vec3 d = b.minimumImage({0.5, 0.0, 0.0}, {9.5, 0.0, 0.0});
  EXPECT_NEAR(d.x, 1.0, 1e-12);
  EXPECT_NEAR(sfopt::md::norm(d), 1.0, 1e-12);
}

TEST(PeriodicBox, MinimumImageNeverExceedsHalfEdge) {
  PeriodicBox b(7.0);
  for (double x = -20.0; x <= 20.0; x += 0.37) {
    const Vec3 d = b.minimumImage({x, 2.0 * x, -x}, {0.0, 0.0, 0.0});
    EXPECT_LE(std::abs(d.x), 3.5 + 1e-12);
    EXPECT_LE(std::abs(d.y), 3.5 + 1e-12);
    EXPECT_LE(std::abs(d.z), 3.5 + 1e-12);
  }
}

TEST(PeriodicBox, WrapIntoPrimaryCell) {
  PeriodicBox b(5.0);
  const Vec3 w = b.wrap({6.0, -1.0, 12.5});
  EXPECT_NEAR(w.x, 1.0, 1e-12);
  EXPECT_NEAR(w.y, 4.0, 1e-12);
  EXPECT_NEAR(w.z, 2.5, 1e-12);
}

TEST(PeriodicBox, WrapIsIdempotent) {
  PeriodicBox b(5.0);
  const Vec3 p{3.7, 0.0, 4.999};
  EXPECT_EQ(b.wrap(b.wrap(p)), b.wrap(p));
}

}  // namespace
