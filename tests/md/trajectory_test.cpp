#include "md/trajectory.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "md/system.hpp"

namespace {

namespace fs = std::filesystem;
using namespace sfopt::md;

WaterSystem tinySystem() {
  return buildWaterLattice(8, 0.997, 298.0, tip4pPublished(), 3.0, 5);
}

TEST(Trajectory, SingleFrameRoundTrip) {
  auto sys = tinySystem();
  std::stringstream stream;
  writeXyzFrame(stream, sys, "test frame");
  const auto frames = readXyzFrames(stream);
  ASSERT_EQ(frames.size(), 1u);
  const auto& f = frames[0];
  EXPECT_EQ(f.comment, "test frame");
  ASSERT_EQ(f.elements.size(), static_cast<std::size_t>(sys.sites()));
  EXPECT_EQ(f.elements[0], "O");
  EXPECT_EQ(f.elements[1], "H");
  EXPECT_EQ(f.elements[2], "H");
  for (int i = 0; i < sys.sites(); ++i) {
    const Vec3 expected = sys.box().wrap(sys.positions[static_cast<std::size_t>(i)]);
    EXPECT_NEAR(f.positions[static_cast<std::size_t>(i)].x, expected.x, 1e-6);
    EXPECT_NEAR(f.positions[static_cast<std::size_t>(i)].y, expected.y, 1e-6);
    EXPECT_NEAR(f.positions[static_cast<std::size_t>(i)].z, expected.z, 1e-6);
  }
}

TEST(Trajectory, MultipleFrames) {
  auto sys = tinySystem();
  std::stringstream stream;
  writeXyzFrame(stream, sys, "frame 0");
  for (auto& p : sys.positions) p += Vec3{0.5, 0.0, 0.0};
  writeXyzFrame(stream, sys, "frame 1");
  const auto frames = readXyzFrames(stream);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].comment, "frame 0");
  EXPECT_EQ(frames[1].comment, "frame 1");
  EXPECT_NE(frames[0].positions[0], frames[1].positions[0]);
}

TEST(Trajectory, PositionsAreWrappedIntoBox) {
  auto sys = tinySystem();
  sys.positions[0] += Vec3{100.0, -50.0, 200.0};  // far outside the cell
  std::stringstream stream;
  writeXyzFrame(stream, sys, "wrapped");
  const auto frames = readXyzFrames(stream);
  const double edge = sys.box().edge();
  const Vec3& p = frames[0].positions[0];
  EXPECT_GE(p.x, 0.0);
  EXPECT_LT(p.x, edge);
  EXPECT_GE(p.y, 0.0);
  EXPECT_LT(p.y, edge);
  EXPECT_GE(p.z, 0.0);
  EXPECT_LT(p.z, edge);
}

TEST(Trajectory, MalformedInputThrows) {
  {
    std::stringstream s("not-a-number\ncomment\n");
    EXPECT_THROW((void)readXyzFrames(s), std::runtime_error);
  }
  {
    std::stringstream s("3\ncomment\nO 1 2 3\nH 4 5 6\n");  // truncated
    EXPECT_THROW((void)readXyzFrames(s), std::runtime_error);
  }
  {
    std::stringstream s("1\ncomment\nO 1 2\n");  // missing coordinate
    EXPECT_THROW((void)readXyzFrames(s), std::runtime_error);
  }
  {
    std::stringstream s("-2\ncomment\n");
    EXPECT_THROW((void)readXyzFrames(s), std::runtime_error);
  }
}

TEST(Trajectory, EmptyStreamGivesNoFrames) {
  std::stringstream s("\n  \n");
  EXPECT_TRUE(readXyzFrames(s).empty());
}

TEST(Trajectory, FileWriterAppendsFrames) {
  const fs::path path = fs::temp_directory_path() / "sfopt_traj_test.xyz";
  fs::remove(path);
  {
    auto sys = tinySystem();
    XyzTrajectoryWriter writer(path);
    writer.writeFrame(sys, 0.0);
    writer.writeFrame(sys, 0.5);
    EXPECT_EQ(writer.framesWritten(), 2);
  }
  std::ifstream in(path);
  const auto frames = readXyzFrames(in);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_NE(frames[0].comment.find("0"), std::string::npos);
  EXPECT_NE(frames[1].comment.find("0.5"), std::string::npos);
  fs::remove(path);
}

TEST(Trajectory, WriterRejectsBadPath) {
  EXPECT_THROW(XyzTrajectoryWriter("/nonexistent_dir_xyz/abc.xyz"), std::runtime_error);
}

}  // namespace
