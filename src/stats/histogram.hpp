#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace sfopt::stats {

/// Fixed-width binned histogram over a closed interval, with underflow and
/// overflow buckets.  This is the structure behind the "count vs
/// log10(min A / min B)" panels of Figures 3.5-3.17 of the paper.
class Histogram {
 public:
  /// Create a histogram covering [lo, hi] with `bins` equal-width bins.
  /// Requires bins >= 1 and lo < hi.
  Histogram(double lo, double hi, std::size_t bins);

  /// Record one observation.  Values outside [lo, hi] land in the
  /// underflow/overflow buckets.
  void add(double x) noexcept;

  /// Record many observations.
  void addAll(const std::vector<double>& xs) noexcept;

  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] std::size_t binCount() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::size_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::size_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }

  /// Center of bin i.
  [[nodiscard]] double binCenter(std::size_t bin) const;

  /// Fraction of observations strictly below zero / equal-ish to zero
  /// (|x| < halfBinWidth) / strictly above. Useful for summarizing the
  /// "who wins" shape of a log-ratio histogram.
  struct Balance {
    double below = 0.0;
    double near = 0.0;
    double above = 0.0;
  };
  [[nodiscard]] Balance balanceAroundZero() const noexcept;

  /// Render as an aligned ASCII bar chart, one row per bin:
  ///   [-4.0, -3.0)   12 |############
  /// `width` scales the longest bar.
  [[nodiscard]] std::string asciiRender(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  double binWidth_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace sfopt::stats
