# Empty compiler generated dependencies file for water_reparameterization.
# This may be replaced when dependencies are built.
