#include "md/thread_pool.hpp"

#include <stdexcept>

namespace sfopt::md {

ThreadPool::ThreadPool(int parallelism) {
  if (parallelism < 1) {
    throw std::invalid_argument("ThreadPool: parallelism must be >= 1");
  }
  workers_.reserve(static_cast<std::size_t>(parallelism - 1));
  for (int i = 0; i < parallelism - 1; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::drain(Job& job) {
  int doneHere = 0;
  for (;;) {
    const int t = job.next.fetch_add(1, std::memory_order_relaxed);
    if (t >= job.tasks) break;
    // A claimable task implies run() is still blocked on this job, so
    // the function object behind job.fn is alive.
    (*job.fn)(t);
    ++doneHere;
  }
  if (doneHere > 0) {
    std::lock_guard lock(mutex_);
    job.completed += doneHere;
    if (job.completed == job.tasks) done_.notify_all();
  }
}

void ThreadPool::run(int tasks, const std::function<void(int)>& fn) {
  if (tasks <= 0) return;
  if (workers_.empty()) {
    for (int t = 0; t < tasks; ++t) fn(t);
    return;
  }
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->tasks = tasks;
  {
    std::lock_guard lock(mutex_);
    job_ = job;
    ++generation_;
  }
  wake_.notify_all();
  drain(*job);
  std::unique_lock lock(mutex_);
  done_.wait(lock, [&] { return job->completed == job->tasks; });
  if (job_ == job) job_.reset();
}

void ThreadPool::workerLoop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;  // may be null if the job already retired
    }
    if (job) drain(*job);
  }
}

}  // namespace sfopt::md
