#include "config/optroot.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace {

namespace fs = std::filesystem;
using namespace sfopt;
using config::isReservedParDirectory;
using config::loadOptRoot;
using config::OptRoot;
using config::parseInputFile;
using config::PropertySpec;
using config::SystemSpec;
using config::writeOptRoot;

class OptRootTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("sfopt_optroot_" + std::to_string(::testing::UnitTest::GetInstance()
                                                   ->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  /// A canonical valid tree: 2 parameters, 5 vertex rows (d+3), 2 systems
  /// (one with a second phase), 2 properties.
  OptRoot canonical() {
    OptRoot c;
    c.parameterNames = {"epsilon", "sigma"};
    c.initialPoints = {{0.1, 3.0}, {0.2, 3.1}, {0.15, 3.2}, {0.12, 2.9}, {0.18, 3.05}};
    c.systems = {SystemSpec{"bulk", {".", "nve"}}, SystemSpec{"dimer", {"."}}};
    c.properties = {PropertySpec{"prop_energy", -41.5, 2.0, true},
                    PropertySpec{"prop_pressure", 1.0, 0.5, false}};
    return c;
  }

  fs::path root_;
};

TEST_F(OptRootTest, RoundTripThroughDisk) {
  writeOptRoot(root_, canonical());
  const OptRoot loaded = loadOptRoot(root_);
  EXPECT_EQ(loaded.parameterNames, (std::vector<std::string>{"epsilon", "sigma"}));
  EXPECT_EQ(loaded.dimension(), 2u);
  ASSERT_EQ(loaded.initialPoints.size(), 5u);
  EXPECT_EQ(loaded.initialPoints[0], (core::Point{0.1, 3.0}));
  ASSERT_EQ(loaded.systems.size(), 2u);
  EXPECT_EQ(loaded.systems[0].name, "bulk");
  EXPECT_EQ(loaded.systems[0].phases, (std::vector<std::string>{".", "nve"}));
  EXPECT_EQ(loaded.systems[1].phases, (std::vector<std::string>{"."}));
  ASSERT_EQ(loaded.properties.size(), 2u);
  EXPECT_EQ(loaded.properties[0].name, "prop_energy");
  EXPECT_DOUBLE_EQ(loaded.properties[0].target, -41.5);
  EXPECT_DOUBLE_EQ(loaded.properties[0].weight, 2.0);
  EXPECT_TRUE(loaded.properties[0].hasScript);
  EXPECT_FALSE(loaded.properties[1].hasScript);
}

TEST_F(OptRootTest, RunScriptCountDrivesProcessorRequest) {
  writeOptRoot(root_, canonical());
  const OptRoot loaded = loadOptRoot(root_);
  EXPECT_EQ(loaded.runScriptCount(), 3u);  // bulk (2 phases) + dimer (1)
}

TEST_F(OptRootTest, MissingWeightDefaultsToOne) {
  auto c = canonical();
  writeOptRoot(root_, c);
  fs::remove(root_ / "properties" / "prop_pressure.wgt");
  const OptRoot loaded = loadOptRoot(root_);
  EXPECT_DOUBLE_EQ(loaded.properties[1].weight, 1.0);
}

TEST_F(OptRootTest, ReservedParDirectoriesAreSkipped) {
  writeOptRoot(root_, canonical());
  // A stray per-vertex workspace must not be mistaken for a system/phase.
  fs::create_directories(root_ / "systems" / "par3");
  fs::create_directories(root_ / "systems" / "bulk" / "par12");
  const OptRoot loaded = loadOptRoot(root_);
  EXPECT_EQ(loaded.systems.size(), 2u);
  EXPECT_EQ(loaded.systems[0].phases.size(), 2u);
}

TEST_F(OptRootTest, ParNamePatternExactlyMatchesPaperRegex) {
  EXPECT_TRUE(isReservedParDirectory("par"));
  EXPECT_TRUE(isReservedParDirectory("par0"));
  EXPECT_TRUE(isReservedParDirectory("par123"));
  EXPECT_FALSE(isReservedParDirectory("parX"));
  EXPECT_FALSE(isReservedParDirectory("park"));
  EXPECT_FALSE(isReservedParDirectory("spar1"));
  EXPECT_FALSE(isReservedParDirectory("pa"));
}

TEST_F(OptRootTest, SystemWithoutRunScriptRejected) {
  writeOptRoot(root_, canonical());
  fs::create_directories(root_ / "systems" / "broken");
  EXPECT_THROW((void)loadOptRoot(root_), std::runtime_error);
}

TEST_F(OptRootTest, MissingSystemsDirectoryRejected) {
  writeOptRoot(root_, canonical());
  fs::remove_all(root_ / "systems");
  EXPECT_THROW((void)loadOptRoot(root_), std::runtime_error);
}

TEST_F(OptRootTest, NonexistentRootRejected) {
  EXPECT_THROW((void)loadOptRoot(root_ / "nope"), std::runtime_error);
}

TEST_F(OptRootTest, InputFileRowWidthValidated) {
  writeOptRoot(root_, canonical());
  std::ofstream in(root_ / "input");
  in << "epsilon sigma\n0.1 3.0\n0.2\n";
  in.close();
  EXPECT_THROW((void)parseInputFile(root_ / "input"), std::runtime_error);
}

TEST_F(OptRootTest, InputFileNeedsDPlusOneRows) {
  writeOptRoot(root_, canonical());
  std::ofstream in(root_ / "input");
  in << "epsilon sigma\n0.1 3.0\n0.2 3.1\n";  // only 2 rows for d = 2
  in.close();
  EXPECT_THROW((void)parseInputFile(root_ / "input"), std::runtime_error);
}

TEST_F(OptRootTest, InputFileSkipsBlankLines) {
  writeOptRoot(root_, canonical());
  std::ofstream in(root_ / "input");
  in << "a b\n\n1 2\n\n3 4\n5 6\n\n";
  in.close();
  const auto [names, pts] = parseInputFile(root_ / "input");
  EXPECT_EQ(names.size(), 2u);
  EXPECT_EQ(pts.size(), 3u);
}

TEST_F(OptRootTest, MissingInputFileRejected) {
  writeOptRoot(root_, canonical());
  fs::remove(root_ / "input");
  EXPECT_THROW((void)loadOptRoot(root_), std::runtime_error);
}

}  // namespace
