file(REMOVE_RECURSE
  "libsfopt_config.a"
)
