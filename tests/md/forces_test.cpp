#include "md/forces.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "md/system.hpp"

namespace {

using namespace sfopt::md;

WaterSystem tinySystem(std::uint64_t seed = 3) {
  return buildWaterLattice(27, 0.997, 298.0, tip4pPublished(), 3.5, seed);
}

TEST(Forces, NewtonsThirdLawTotalForceVanishes) {
  auto sys = tinySystem();
  (void)computeForces(sys);
  Vec3 total{};
  for (const auto& f : sys.forces) total += f;
  EXPECT_NEAR(norm(total), 0.0, 1e-9);
}

TEST(Forces, MatchFiniteDifferenceGradient) {
  // The definitive correctness check: F_i = -dU/dx_i for every component
  // of several sites, via central differences on the total potential.
  auto sys = tinySystem();
  const auto base = computeForces(sys);
  const double h = 1e-6;
  for (int site : {0, 1, 2, 9, 10, 23}) {
    for (int comp = 0; comp < 3; ++comp) {
      auto perturbed = sys;
      auto& p = perturbed.positions[static_cast<std::size_t>(site)];
      double* coord = comp == 0 ? &p.x : (comp == 1 ? &p.y : &p.z);
      *coord += h;
      const double ePlus = computeForces(perturbed).potential;
      *coord -= 2.0 * h;
      const double eMinus = computeForces(perturbed).potential;
      const double fd = -(ePlus - eMinus) / (2.0 * h);
      const auto& f = sys.forces[static_cast<std::size_t>(site)];
      const double analytic = comp == 0 ? f.x : (comp == 1 ? f.y : f.z);
      EXPECT_NEAR(analytic, fd, 1e-3 * std::max(1.0, std::abs(fd)))
          << "site " << site << " comp " << comp;
    }
  }
  (void)base;
}

TEST(Forces, TranslationInvariance) {
  auto sys = tinySystem();
  const double e0 = computeForces(sys).potential;
  for (auto& p : sys.positions) p += Vec3{1.3, -0.7, 2.1};
  const double e1 = computeForces(sys).potential;
  EXPECT_NEAR(e0, e1, 1e-9 * std::max(1.0, std::abs(e0)));
}

TEST(Forces, PeriodicImageInvariance) {
  auto sys = tinySystem();
  const double e0 = computeForces(sys).potential;
  // Shift one whole molecule by a full box edge: identical by periodicity.
  const double L = sys.box().edge();
  for (int s = 0; s < 3; ++s) sys.positions[static_cast<std::size_t>(s)] += Vec3{L, 0.0, 0.0};
  const double e1 = computeForces(sys).potential;
  EXPECT_NEAR(e0, e1, 1e-9 * std::max(1.0, std::abs(e0)));
}

TEST(Forces, EquilibriumGeometryHasNoIntramolecularEnergy) {
  auto sys = tinySystem();
  const auto r = computeForces(sys);
  // Lattice builder places every molecule at its equilibrium geometry.
  EXPECT_NEAR(r.intramolecular, 0.0, 1e-9);
}

TEST(Forces, DecompositionSumsToTotal) {
  auto sys = tinySystem();
  const auto r = computeForces(sys);
  EXPECT_NEAR(r.potential, r.lennardJones + r.coulomb + r.intramolecular, 1e-12);
}

TEST(Forces, LennardJonesRepulsionAtShortRange) {
  // Two molecules brought unphysically close must repel strongly.
  auto sys = tinySystem();
  // Move molecule 1's O to 2 A from molecule 0's O.
  const Vec3 o0 = sys.positions[0];
  const Vec3 shift = o0 + Vec3{2.0, 0.0, 0.0} - sys.positions[3];
  for (int s = 3; s < 6; ++s) sys.positions[static_cast<std::size_t>(s)] += shift;
  const auto r = computeForces(sys);
  EXPECT_GT(r.lennardJones, 1.0);  // deep in the repulsive wall
}

TEST(Forces, StrongerEpsilonDeepensLJEnergy) {
  auto a = buildWaterLattice(8, 0.997, 298.0, WaterParameters{0.1, 3.15, 0.52}, 3.0, 3);
  auto b = buildWaterLattice(8, 0.997, 298.0, WaterParameters{0.3, 3.15, 0.52}, 3.0, 3);
  const double lja = computeForces(a).lennardJones;
  const double ljb = computeForces(b).lennardJones;
  // Same geometry (same seed), scaled epsilon: LJ energy scales linearly.
  EXPECT_NEAR(ljb, 3.0 * lja, 1e-6 * std::abs(ljb) + 1e-9);
}

TEST(Forces, ChargeScalingIsQuadratic) {
  auto a = buildWaterLattice(8, 0.997, 298.0, WaterParameters{0.155, 3.15, 0.3}, 3.0, 3);
  auto b = buildWaterLattice(8, 0.997, 298.0, WaterParameters{0.155, 3.15, 0.6}, 3.0, 3);
  const double ca = computeForces(a).coulomb;
  const double cb = computeForces(b).coulomb;
  EXPECT_NEAR(cb, 4.0 * ca, 1e-6 * std::abs(cb) + 1e-9);
}

TEST(Pressure, IdealGasLimitWithoutInteractions) {
  // With zero virial the pressure reduces to the kinetic (ideal) term
  // 2K / 3V; check the unit conversion against n kB T / V.
  auto sys = tinySystem();
  const double pIdeal = pressureAtm(sys, 0.0);
  const double expected = static_cast<double>(sys.sites()) * kBoltzmann * sys.temperature() /
                          sys.box().volume() * kKcalPerMolPerA3InAtm;
  // dof correction (3N-3 vs 3N) makes these agree to ~1/N.
  EXPECT_NEAR(pIdeal, expected, expected * 0.05);
}

}  // namespace
