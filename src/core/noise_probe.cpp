#include "core/noise_probe.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/welford.hpp"

namespace sfopt::core {

NoiseProbe probeNoise(const noise::StochasticObjective& objective, const Point& x,
                      std::int64_t samples, std::uint64_t probeStream) {
  if (samples < 2) throw std::invalid_argument("probeNoise: need at least 2 samples");
  if (x.size() != objective.dimension()) {
    throw std::invalid_argument("probeNoise: dimension mismatch");
  }
  stats::Welford w;
  for (std::int64_t i = 0; i < samples; ++i) {
    w.add(objective.sample(x, {probeStream, static_cast<std::uint64_t>(i)}));
  }
  const double dt = objective.sampleDuration();
  NoiseProbe probe;
  probe.meanEstimate = w.mean();
  probe.sigma0Estimate = w.stddev() * std::sqrt(dt);
  probe.standardError = w.standardError();
  probe.samples = samples;
  probe.sampledTime = static_cast<double>(samples) * dt;
  return probe;
}

}  // namespace sfopt::core
