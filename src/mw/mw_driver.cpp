#include "mw/mw_driver.hpp"

#include <chrono>
#include <deque>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "telemetry/telemetry.hpp"

namespace sfopt::mw {

MWDriver::MWDriver(net::Transport& comm) : comm_(comm) {
  if (comm_.size() < 2) {
    throw std::invalid_argument("MWDriver: need at least one worker rank");
  }
  dead_.assign(static_cast<std::size_t>(comm_.size()), false);
}

bool MWDriver::isDead(Rank w) const noexcept {
  const auto i = static_cast<std::size_t>(w);
  return i < dead_.size() && dead_[i];
}

void MWDriver::ensureRank(Rank w) {
  if (static_cast<std::size_t>(w) >= dead_.size()) {
    dead_.resize(static_cast<std::size_t>(w) + 1, false);
  }
}

int MWDriver::liveWorkerCount() const noexcept {
  int live = 0;
  for (Rank w = 1; w < comm_.size(); ++w) {
    if (!isDead(w)) ++live;
  }
  return live;
}

void MWDriver::setTelemetry(telemetry::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) return;
  auto& reg = telemetry_->metrics();
  telTasksCompleted_ = &reg.counter("mw.tasks_completed");
  telTasksRequeued_ = &reg.counter("mw.tasks_requeued");
  telTasksDispatched_ = &reg.counter("mw.tasks_dispatched");
  telWorkersLost_ = &reg.counter("mw.workers_lost");
  telBatches_ = &reg.counter("mw.batches");
  telQueueWait_ = &reg.histogram("mw.task.queue_wait_seconds",
                                 telemetry::Histogram::exponentialBounds(1e-6, 10.0, 7));
  telExecute_ = &reg.histogram("mw.task.execute_seconds",
                               telemetry::Histogram::exponentialBounds(1e-6, 10.0, 7));
  telUtilization_ = &reg.histogram("mw.worker.utilization",
                                   {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0});
  telIdleFraction_ = &reg.histogram("mw.worker_idle_fraction",
                                    {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0});
  telSpecDuplicates_ = &reg.counter("mw.speculative_duplicates");
  telSpecDiscards_ = &reg.counter("mw.speculative_discards");
  telStaleDiscards_ = &reg.counter("mw.stale_results_discarded");
  reg.gauge("mw.workers").set(static_cast<double>(workerCount()));
}

double MWDriver::steadySeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double MWDriver::telNow() const {
  return telemetry_ != nullptr ? telemetry_->clock().now() : 0.0;
}

std::vector<MessageBuffer> MWDriver::executeBuffers(std::vector<MessageBuffer> inputs) {
  if (shutDown_) throw std::logic_error("MWDriver: already shut down");
  const std::size_t n = inputs.size();
  std::vector<MessageBuffer> results(n);
  if (n == 0) return results;

  // Per-task state: the framed wire (kept for requeue on worker failure),
  // the result slot, retry count, and the last worker that failed it.
  struct TaskState {
    std::vector<std::byte> wire;
    std::size_t slot = 0;
    int retries = 0;
    Rank lastFailedOn = -1;
    double enqueuedAt = 0.0;    ///< telemetry: last time it entered the queue
    double dispatchedAt = 0.0;  ///< telemetry: last time it was sent out
    std::uint64_t rootSpan = 0;
    std::uint64_t remoteSpan = 0;
  };
  // Task-lifecycle telemetry: wall times come from the telemetry clock
  // (injectable in tests) and are only read when a spine is attached.
  const auto telNow = [&]() -> double {
    return telemetry_ != nullptr ? telemetry_->clock().now() : 0.0;
  };
  const double batchStart = telNow();
  std::vector<double> workerBusySeconds(static_cast<std::size_t>(comm_.size()), 0.0);

  std::unordered_map<std::uint64_t, TaskState> tasks;
  std::deque<std::uint64_t> pending;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t id = nextTaskId_++;
    // Frame: task id, then the caller's payload bytes (the wire format is
    // a flat byte stream, so splicing is a concatenation).
    MessageBuffer framed;
    framed.pack(id);
    std::vector<std::byte> wire = framed.releaseWire();
    const auto& tail = inputs[i].wire();
    wire.insert(wire.end(), tail.begin(), tail.end());
    TaskState st{std::move(wire), i, 0, -1, batchStart, batchStart, 0, 0};
    if (telemetry_ != nullptr) {
      st.rootSpan = telemetry_->tracer().begin("shard.lifecycle", 0, id);
    }
    tasks.emplace(id, std::move(st));
    pending.push_back(id);
  }

  // Dynamic dispatch over explicit free/busy worker state.  A worker that
  // failed a task is not handed the same task again while another pairing
  // is possible; when every assignable pairing is excluded and nothing is
  // in flight, the exclusion is waived so progress is guaranteed.  Dead
  // workers never receive tasks; inFlightId remembers what each busy
  // worker is running so a lost worker's task can be requeued.
  std::vector<bool> busy(static_cast<std::size_t>(comm_.size()), false);
  std::vector<std::uint64_t> inFlightId(static_cast<std::size_t>(comm_.size()), 0);
  int inFlight = 0;
  ensureRank(comm_.size() - 1);
  const auto growTo = [&](int worldSize) {
    const auto s = static_cast<std::size_t>(worldSize);
    if (busy.size() < s) {
      busy.resize(s, false);
      inFlightId.resize(s, 0);
      workerBusySeconds.resize(s, 0.0);
      ensureRank(worldSize - 1);
    }
  };
  auto assign = [&](Rank worker, std::size_t pendingIndex) {
    const std::uint64_t id = pending[pendingIndex];
    TaskState& st = tasks.at(id);
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(pendingIndex));
    if (telemetry_ != nullptr) {
      st.dispatchedAt = telNow();
      telQueueWait_->observe(st.dispatchedAt - st.enqueuedAt);
      telTasksDispatched_->add(1);
      auto& tracer = telemetry_->tracer();
      tracer.emitComplete("shard.queue", st.enqueuedAt, st.rootSpan, {},
                          {{"attempt", static_cast<double>(st.retries)}}, id);
      st.remoteSpan = tracer.begin("shard.remote", st.rootSpan, id);
    }
    comm_.send(0, worker, kTagTask, MessageBuffer(std::vector<std::byte>(st.wire)), id,
               st.remoteSpan);
    busy[static_cast<std::size_t>(worker)] = true;
    inFlightId[static_cast<std::size_t>(worker)] = id;
    ++inFlight;
  };
  auto dispatchAll = [&] {
    growTo(comm_.size());
    bool progressed = true;
    while (progressed && !pending.empty()) {
      progressed = false;
      for (Rank w = 1; w < comm_.size() && !pending.empty(); ++w) {
        if (busy[static_cast<std::size_t>(w)] || isDead(w)) continue;
        for (std::size_t i = 0; i < pending.size(); ++i) {
          if (tasks.at(pending[i]).lastFailedOn == w) continue;
          assign(w, i);
          progressed = true;
          break;
        }
      }
      if (!progressed && inFlight == 0 && !pending.empty()) {
        // Every remaining pairing is excluded and nobody is working:
        // waive the exclusion for the first free live worker.
        for (Rank w = 1; w < comm_.size(); ++w) {
          if (!busy[static_cast<std::size_t>(w)] && !isDead(w)) {
            assign(w, 0);
            progressed = true;
            break;
          }
        }
      }
    }
  };
  // Requeue the task a worker failed (kTagError) or died holding
  // (kTagWorkerLost).  Either way the attempt counts against the retry
  // budget — a task that kills every worker it lands on must not cycle
  // through the cluster forever.
  auto requeueFrom = [&](Rank worker, std::uint64_t id, const std::string& why,
                         const char* outcome) {
    const auto it = tasks.find(id);
    if (it == tasks.end()) {
      throw std::runtime_error("MWDriver: failure report for unknown task id");
    }
    --inFlight;
    ++tasksRequeued_;
    busy[static_cast<std::size_t>(worker)] = false;
    inFlightId[static_cast<std::size_t>(worker)] = 0;
    TaskState& st = it->second;
    st.lastFailedOn = worker;
    if (telemetry_ != nullptr) {
      // Failed attempts still occupied the worker; count the time as busy
      // so utilization reflects wasted capacity, and restart the task's
      // queue-wait clock for the retry.
      workerBusySeconds[static_cast<std::size_t>(worker)] += telNow() - st.dispatchedAt;
      telTasksRequeued_->add(1);
      st.enqueuedAt = telNow();
      telemetry_->tracer().end(st.remoteSpan, {{"outcome", outcome}},
                               {{"rank", static_cast<double>(worker)}});
      st.remoteSpan = 0;
    }
    if (++st.retries > maxRetries_) {
      if (telemetry_ != nullptr) {
        telemetry_->tracer().end(st.rootSpan, {{"outcome", "failed"}},
                                 {{"requeues", static_cast<double>(st.retries)}});
      }
      throw std::runtime_error("MWDriver: task failed after " +
                               std::to_string(maxRetries_) + " retries: " + why);
    }
    pending.push_front(id);
  };
  dispatchAll();

  std::size_t done = 0;
  while (done < n) {
    std::optional<Message> maybe = comm_.recvFor(0, recvTimeoutSeconds_);
    if (!maybe.has_value()) {
      throw std::runtime_error(
          "MWDriver: no worker message for " + std::to_string(recvTimeoutSeconds_) +
          "s with " + std::to_string(n - done) + " task(s) outstanding");
    }
    Message msg = std::move(*maybe);
    if (msg.tag == kTagResult) {
      const std::uint64_t id = msg.payload.unpackUint64();
      growTo(msg.source + 1);
      const auto it = tasks.find(id);
      // A completion for a task we no longer track, or from a rank that is
      // not its current holder, is a duplicated or reordered frame (the
      // fabric can replay a ghosted rank's traffic across a reconnect).
      // Discard it without touching the busy/inFlight bookkeeping — the
      // real holder's identical result is the one that folds.
      if (it == tasks.end() || inFlightId[static_cast<std::size_t>(msg.source)] != id) {
        ++staleResultsDiscarded_;
        if (telStaleDiscards_ != nullptr) telStaleDiscards_->add(1);
        continue;
      }
      if (telemetry_ != nullptr) {
        const double d = telNow() - it->second.dispatchedAt;
        telExecute_->observe(d);
        workerBusySeconds[static_cast<std::size_t>(msg.source)] += d;
        telTasksCompleted_->add(1);
        auto& tracer = telemetry_->tracer();
        tracer.end(it->second.remoteSpan, {{"outcome", "ok"}},
                   {{"rank", static_cast<double>(msg.source)}});
        // The sync path folds the result into its slot right here, so the
        // terminal marker is a zero-duration span at completion time.
        tracer.emitComplete("shard.folded", telNow(), it->second.rootSpan, {}, {}, id);
        tracer.end(it->second.rootSpan, {{"outcome", "ok"}},
                   {{"requeues", static_cast<double>(it->second.retries)}});
      }
      results[it->second.slot] = std::move(msg.payload);
      tasks.erase(it);
      ++done;
      ++tasksCompleted_;
      --inFlight;
      busy[static_cast<std::size_t>(msg.source)] = false;
      inFlightId[static_cast<std::size_t>(msg.source)] = 0;
      dispatchAll();
    } else if (msg.tag == kTagError) {
      const std::uint64_t id = msg.payload.unpackUint64();
      const std::string what = msg.payload.unpackString();
      growTo(msg.source + 1);
      // Only honour the report if this worker really is running this task:
      // a duplicate or stray error would otherwise double-queue the task
      // and corrupt the busy/inFlight bookkeeping.
      if (busy[static_cast<std::size_t>(msg.source)] &&
          inFlightId[static_cast<std::size_t>(msg.source)] == id) {
        requeueFrom(msg.source, id, what, "error");
        dispatchAll();
      } else {
        ++staleResultsDiscarded_;
        if (telStaleDiscards_ != nullptr) telStaleDiscards_->add(1);
      }
    } else if (msg.tag == net::kTagWorkerLost) {
      const Rank lost = msg.source;
      growTo(lost + 1);
      if (!isDead(lost)) {
        dead_[static_cast<std::size_t>(lost)] = true;
        ++workersLost_;
        if (telemetry_ != nullptr) telWorkersLost_->add(1);
      }
      if (busy[static_cast<std::size_t>(lost)]) {
        requeueFrom(lost, inFlightId[static_cast<std::size_t>(lost)],
                    "worker rank " + std::to_string(lost) + " lost", "lost");
      }
      if (liveWorkerCount() == 0) {
        throw std::runtime_error("MWDriver: every worker is lost with " +
                                 std::to_string(n - done) + " task(s) outstanding");
      }
      dispatchAll();
    } else if (msg.tag == net::kTagWorkerJoined) {
      growTo(msg.source + 1);
      dispatchAll();
    }
    // Stray tags are ignored.
  }
  if (telemetry_ != nullptr) {
    const double elapsed = telNow() - batchStart;
    if (elapsed > 0.0) {
      for (Rank w = 1; w < comm_.size() && static_cast<std::size_t>(w) < workerBusySeconds.size();
           ++w) {
        telUtilization_->observe(workerBusySeconds[static_cast<std::size_t>(w)] / elapsed);
      }
    }
    telBatches_->add(1);
    telemetry_->tracer().emitComplete(
        "mw.batch", batchStart, 0, {},
        {{"tasks", static_cast<double>(n)},
         {"workers", static_cast<double>(workerCount())}});
  }
  return results;
}

void MWDriver::executeTasks(std::span<MWTask* const> tasks) {
  std::vector<MessageBuffer> inputs;
  inputs.reserve(tasks.size());
  for (MWTask* t : tasks) {
    if (t == nullptr) throw std::invalid_argument("MWDriver::executeTasks: null task");
    MessageBuffer buf;
    t->packInput(buf);
    inputs.push_back(std::move(buf));
  }
  auto results = executeBuffers(std::move(inputs));
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    tasks[i]->unpackResult(results[i]);
  }
}

void MWDriver::asyncGrowTo(int worldSize) {
  const auto s = static_cast<std::size_t>(worldSize);
  if (asyncBusy_.size() < s) {
    asyncBusy_.resize(s, false);
    asyncInFlightId_.resize(s, 0);
    asyncGhostId_.resize(s, 0);
    ensureRank(worldSize - 1);
  }
}

int MWDriver::holdersOf(std::uint64_t id) const noexcept {
  int n = 0;
  for (const std::uint64_t held : asyncInFlightId_) n += held == id ? 1 : 0;
  return n;
}

void MWDriver::releaseRank(Rank worker) {
  const auto w = static_cast<std::size_t>(worker);
  asyncBusy_[w] = false;
  asyncInFlightId_[w] = 0;
  asyncGhostId_[w] = 0;
  --asyncInFlight_;
}

void MWDriver::asyncDispatch() {
  asyncGrowTo(comm_.size());
  const auto assign = [&](Rank worker, std::size_t pendingIndex) {
    const std::uint64_t id = asyncPending_[pendingIndex];
    AsyncTask& st = asyncTasks_.at(id);
    asyncPending_.erase(asyncPending_.begin() + static_cast<std::ptrdiff_t>(pendingIndex));
    if (telemetry_ != nullptr) {
      st.dispatchedAt = telNow();
      telQueueWait_->observe(st.dispatchedAt - st.enqueuedAt);
      telTasksDispatched_->add(1);
      auto& tracer = telemetry_->tracer();
      tracer.emitComplete("shard.queue", st.enqueuedAt, st.rootSpan, {},
                          {{"attempt", static_cast<double>(st.retries)}}, st.trace);
      st.remoteSpan = tracer.begin("shard.remote", st.rootSpan, st.trace);
    }
    comm_.send(0, worker, kTagTask, MessageBuffer(std::vector<std::byte>(st.wire)), st.trace,
               st.remoteSpan);
    st.dispatchedSteady = steadySeconds();
    asyncBusy_[static_cast<std::size_t>(worker)] = true;
    asyncInFlightId_[static_cast<std::size_t>(worker)] = id;
    ++asyncInFlight_;
  };
  bool progressed = true;
  while (progressed && !asyncPending_.empty()) {
    progressed = false;
    for (Rank w = 1; w < comm_.size() && !asyncPending_.empty(); ++w) {
      if (asyncBusy_[static_cast<std::size_t>(w)] || isDead(w)) continue;
      for (std::size_t i = 0; i < asyncPending_.size(); ++i) {
        if (asyncTasks_.at(asyncPending_[i]).lastFailedOn == w) continue;
        assign(w, i);
        progressed = true;
        break;
      }
    }
    if (!progressed && asyncInFlight_ == 0 && !asyncPending_.empty()) {
      // Every remaining pairing is excluded and nobody is working:
      // waive the failed-on exclusion for the first free live worker.
      for (Rank w = 1; w < comm_.size(); ++w) {
        if (!asyncBusy_[static_cast<std::size_t>(w)] && !isDead(w)) {
          assign(w, 0);
          progressed = true;
          break;
        }
      }
    }
  }
}

void MWDriver::asyncRequeue(Rank worker, std::uint64_t id, const std::string& why,
                            const char* outcome) {
  const auto it = asyncTasks_.find(id);
  if (it == asyncTasks_.end()) {
    throw std::runtime_error("MWDriver: failure report for unknown task id");
  }
  --asyncInFlight_;
  ++tasksRequeued_;
  asyncBusy_[static_cast<std::size_t>(worker)] = false;
  asyncInFlightId_[static_cast<std::size_t>(worker)] = 0;
  AsyncTask& st = it->second;
  st.lastFailedOn = worker;
  if (telemetry_ != nullptr) {
    telTasksRequeued_->add(1);
    st.enqueuedAt = telNow();
    telemetry_->tracer().end(st.remoteSpan, {{"outcome", outcome}},
                             {{"rank", static_cast<double>(worker)}});
    st.remoteSpan = 0;
  }
  if (++st.retries > maxRetries_) {
    if (telemetry_ != nullptr) {
      telemetry_->tracer().end(st.rootSpan, {{"outcome", "failed"}},
                               {{"requeues", static_cast<double>(st.retries)}});
    }
    throw std::runtime_error("MWDriver: task failed after " + std::to_string(maxRetries_) +
                             " retries: " + why);
  }
  asyncPending_.push_front(id);
}

void MWDriver::observeIdleFraction() {
  if (telemetry_ == nullptr) return;
  int live = 0;
  int busy = 0;
  for (Rank w = 1; w < comm_.size(); ++w) {
    if (isDead(w)) continue;
    ++live;
    if (static_cast<std::size_t>(w) < asyncBusy_.size() &&
        asyncBusy_[static_cast<std::size_t>(w)]) {
      ++busy;
    }
  }
  if (live > 0) {
    telIdleFraction_->observe(static_cast<double>(live - busy) /
                              static_cast<double>(live));
  }
}

void MWDriver::handleAsyncMessage(Message msg) {
  ++asyncMessagesHandled_;
  if (msg.tag == kTagResult) {
    const std::uint64_t id = msg.payload.unpackUint64();
    asyncGrowTo(msg.source + 1);
    const auto src = static_cast<std::size_t>(msg.source);
    if (id != 0 && asyncGhostId_[src] == id) {
      // The losing copy of a speculated shard reporting after the winner:
      // discard the (identical) payload and put the worker back to work.
      releaseRank(msg.source);
      ++speculativeDiscards_;
      if (telSpecDiscards_ != nullptr) telSpecDiscards_->add(1);
      asyncDispatch();
      observeIdleFraction();
      return;
    }
    const auto it = asyncTasks_.find(id);
    // Duplicated or reordered-across-reconnect completion: the task is
    // already folded (or requeued to another holder).  Discard it without
    // touching any rank's dispatch state — releasing msg.source here would
    // corrupt the bookkeeping for whatever that rank is really running.
    if (it == asyncTasks_.end() || asyncInFlightId_[src] != id) {
      ++staleResultsDiscarded_;
      if (telStaleDiscards_ != nullptr) telStaleDiscards_->add(1);
      return;
    }
    const double execSeconds = steadySeconds() - it->second.dispatchedSteady;
    executeEwma_ =
        executeEwma_ <= 0.0 ? execSeconds : 0.8 * executeEwma_ + 0.2 * execSeconds;
    if (telemetry_ != nullptr) {
      telExecute_->observe(telNow() - it->second.dispatchedAt);
      telTasksCompleted_->add(1);
      auto& tracer = telemetry_->tracer();
      tracer.end(it->second.remoteSpan, {{"outcome", "ok"}},
                 {{"rank", static_cast<double>(msg.source)}});
      // No terminal marker here: the async consumer (EvalScheduler) decides
      // whether this completion is folded or discarded and traces that.
      tracer.end(it->second.rootSpan, {{"outcome", "ok"}},
                 {{"requeues", static_cast<double>(it->second.retries)}});
    }
    asyncTasks_.erase(it);
    ++tasksCompleted_;
    --asyncInFlight_;
    asyncBusy_[src] = false;
    asyncInFlightId_[src] = 0;
    // Any other rank still running a copy of this task becomes a ghost:
    // it stays busy until its late report arrives and is discarded.
    for (std::size_t r = 0; r < asyncInFlightId_.size(); ++r) {
      if (r != src && asyncInFlightId_[r] == id) {
        asyncGhostId_[r] = id;
        asyncInFlightId_[r] = 0;
      }
    }
    asyncReady_.push_back(AsyncCompletion{id, std::move(msg.payload)});
    asyncDispatch();
    // Sampled at every completion: how much of the live fleet sits idle
    // right after redispatch.  Sharding exists to push this toward zero.
    observeIdleFraction();
  } else if (msg.tag == kTagError) {
    const std::uint64_t id = msg.payload.unpackUint64();
    const std::string what = msg.payload.unpackString();
    asyncGrowTo(msg.source + 1);
    const auto src = static_cast<std::size_t>(msg.source);
    if (id != 0 && asyncGhostId_[src] == id) {
      releaseRank(msg.source);
      ++speculativeDiscards_;
      if (telSpecDiscards_ != nullptr) telSpecDiscards_->add(1);
      asyncDispatch();
    } else if (asyncBusy_[src] && asyncInFlightId_[src] == id) {
      if (holdersOf(id) > 1) {
        // The other copy of this speculated shard is still out; dropping
        // this one loses nothing and must not count against the retry
        // budget or requeue a task that is not actually stranded.
        if (const auto it = asyncTasks_.find(id); it != asyncTasks_.end()) {
          it->second.lastFailedOn = msg.source;
        }
        releaseRank(msg.source);
        asyncDispatch();
      } else {
        asyncRequeue(msg.source, id, what, "error");
        asyncDispatch();
      }
    } else {
      // A failure report for a task this rank no longer holds: a stale or
      // duplicated frame, not a protocol state we track.
      ++staleResultsDiscarded_;
      if (telStaleDiscards_ != nullptr) telStaleDiscards_->add(1);
    }
  } else if (msg.tag == net::kTagWorkerLost) {
    const Rank lost = msg.source;
    asyncGrowTo(lost + 1);
    if (!isDead(lost)) {
      dead_[static_cast<std::size_t>(lost)] = true;
      ++workersLost_;
      if (telemetry_ != nullptr) telWorkersLost_->add(1);
    }
    const auto li = static_cast<std::size_t>(lost);
    if (asyncGhostId_[li] != 0) {
      releaseRank(lost);
      ++speculativeDiscards_;
      if (telSpecDiscards_ != nullptr) telSpecDiscards_->add(1);
    } else if (asyncBusy_[li]) {
      const std::uint64_t held = asyncInFlightId_[li];
      if (holdersOf(held) > 1) {
        releaseRank(lost);
      } else {
        asyncRequeue(lost, held, "worker rank " + std::to_string(lost) + " lost", "lost");
      }
    }
    if (liveWorkerCount() == 0 && !asyncTasks_.empty()) {
      throw std::runtime_error("MWDriver: every worker is lost with " +
                               std::to_string(asyncTasks_.size()) +
                               " async task(s) outstanding");
    }
    asyncDispatch();
  } else if (msg.tag == net::kTagWorkerJoined) {
    asyncGrowTo(msg.source + 1);
    asyncDispatch();
  }
  // Stray tags are ignored.
}

void MWDriver::maybeSpeculate() {
  if (speculativeFactor_ <= 0.0 || executeEwma_ <= 0.0 || asyncInFlight_ == 0 ||
      !asyncPending_.empty()) {
    return;
  }
  asyncGrowTo(comm_.size());
  const double now = steadySeconds();
  const double threshold = speculativeFactor_ * executeEwma_;
  for (auto& [id, st] : asyncTasks_) {
    if (holdersOf(id) != 1) continue;  // not dispatched, or already duplicated
    if (now - st.dispatchedSteady <= threshold) continue;
    Rank chosen = -1;
    for (Rank w = 1; w < comm_.size(); ++w) {
      if (asyncBusy_[static_cast<std::size_t>(w)] || isDead(w)) continue;
      chosen = w;
      break;
    }
    if (chosen < 0) return;  // fleet saturated; nothing to borrow
    // Same wire bytes, same trace: whichever copy reports first produces
    // the canonical payload, so the race cannot change any result bit.
    comm_.send(0, chosen, kTagTask, MessageBuffer(std::vector<std::byte>(st.wire)), st.trace,
               st.remoteSpan);
    asyncBusy_[static_cast<std::size_t>(chosen)] = true;
    asyncInFlightId_[static_cast<std::size_t>(chosen)] = id;
    ++asyncInFlight_;
    ++speculativeDuplicates_;
    if (telSpecDuplicates_ != nullptr) telSpecDuplicates_->add(1);
  }
}

std::uint64_t MWDriver::submit(MessageBuffer input, std::uint64_t trace) {
  if (shutDown_) throw std::logic_error("MWDriver: already shut down");
  const std::uint64_t id = nextTaskId_++;
  MessageBuffer framed;
  framed.pack(id);
  std::vector<std::byte> wire = framed.releaseWire();
  const auto& tail = input.wire();
  wire.insert(wire.end(), tail.begin(), tail.end());
  const double now = telNow();
  AsyncTask st{std::move(wire), 0, -1, now, now, 0.0, 0, 0, trace != 0 ? trace : id};
  if (telemetry_ != nullptr) {
    st.rootSpan = telemetry_->tracer().begin("shard.lifecycle", 0, st.trace);
  }
  asyncTasks_.emplace(id, std::move(st));
  asyncPending_.push_back(id);
  asyncDispatch();
  return id;
}

std::vector<MWDriver::AsyncCompletion> MWDriver::poll(double timeoutSeconds) {
  if (shutDown_) throw std::logic_error("MWDriver: already shut down");
  // Drain whatever already arrived without waiting.
  while (auto msg = comm_.tryRecv(0)) handleAsyncMessage(std::move(*msg));
  maybeSpeculate();
  if (!asyncReady_.empty() || asyncTasks_.empty() || timeoutSeconds <= 0.0) {
    return std::exchange(asyncReady_, {});
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeoutSeconds);
  while (asyncReady_.empty()) {
    const double remaining =
        std::chrono::duration<double>(deadline - std::chrono::steady_clock::now()).count();
    if (remaining <= 0.0) break;
    auto msg = comm_.recvFor(0, remaining);
    if (!msg.has_value()) break;
    handleAsyncMessage(std::move(*msg));
    while (auto extra = comm_.tryRecv(0)) handleAsyncMessage(std::move(*extra));
    maybeSpeculate();
  }
  return std::exchange(asyncReady_, {});
}

std::vector<MWDriver::AsyncCompletion> MWDriver::drain() {
  std::vector<AsyncCompletion> all = std::exchange(asyncReady_, {});
  while (!asyncTasks_.empty()) {
    // A window may yield no completions yet still make progress: an error
    // or worker-lost message requeues the task mid-window.  Only a window
    // with no messages at all means the fabric is silent; a just-requeued
    // task gets a fresh window.
    const std::uint64_t before = asyncMessagesHandled_;
    auto got = poll(recvTimeoutSeconds_);
    if (got.empty() && asyncMessagesHandled_ == before && !asyncTasks_.empty()) {
      throw std::runtime_error(
          "MWDriver: no worker message for " + std::to_string(recvTimeoutSeconds_) + "s with " +
          std::to_string(asyncTasks_.size()) + " async task(s) outstanding");
    }
    for (auto& c : got) all.push_back(std::move(c));
  }
  return all;
}

void MWDriver::shutdown() {
  if (shutDown_) return;
  // Close out the span tree of any async task still in flight (typically
  // speculative shards the run no longer needs): without this, their
  // lifecycle spans would never emit and the trace would have orphans.
  if (telemetry_ != nullptr) {
    auto& tracer = telemetry_->tracer();
    for (auto& [id, task] : asyncTasks_) {
      if (task.remoteSpan != 0) {
        tracer.end(task.remoteSpan, {{"outcome", "abandoned"}}, {});
        task.remoteSpan = 0;
      }
      if (task.rootSpan != 0) {
        tracer.end(task.rootSpan, {{"outcome", "abandoned"}}, {});
        task.rootSpan = 0;
      }
    }
  }
  for (Rank w = 1; w < comm_.size(); ++w) {
    if (isDead(w)) continue;
    comm_.send(0, w, kTagShutdown, MessageBuffer{});
  }
  shutDown_ = true;
}

}  // namespace sfopt::mw
