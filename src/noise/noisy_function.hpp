#pragma once

#include <cmath>
#include <functional>
#include <utility>

#include "noise/stochastic_objective.hpp"

namespace sfopt::noise {

/// Wraps a deterministic function f with additive Gaussian sampling noise
/// following the paper's eq. 1.2: a sample of duration dt carries noise
/// N(0, sigma0^2 / dt), so the mean over total time t has variance
/// sigma0^2 / t.  This is the workhorse used for every synthetic experiment
/// (controlled-noise Rosenbrock / Powell optimizations).
class NoisyFunction final : public StochasticObjective {
 public:
  using Fn = std::function<double(std::span<const double>)>;

  struct Options {
    double sigma0 = 1.0;         ///< inherent noise scale (paper's sigma^0)
    double sampleDuration = 1.0; ///< simulated seconds per sample
    std::uint64_t seed = 0x5f0b;  ///< master seed for the noise stream
  };

  NoisyFunction(std::size_t dimension, Fn f, Options opts)
      : dim_(dimension),
        f_(std::move(f)),
        opts_(opts),
        sigmaPerSample_(opts.sigma0 / std::sqrt(opts.sampleDuration)),
        rng_(opts.seed) {}

  [[nodiscard]] std::size_t dimension() const override { return dim_; }
  [[nodiscard]] double sampleDuration() const override { return opts_.sampleDuration; }

  [[nodiscard]] double sample(std::span<const double> x, SampleKey key) const override {
    return f_(x) + sigmaPerSample_ * rng_.gaussian(key);
  }

  [[nodiscard]] std::optional<double> trueValue(std::span<const double> x) const override {
    return f_(x);
  }

  [[nodiscard]] std::optional<double> noiseScale(std::span<const double>) const override {
    return opts_.sigma0;
  }

 private:
  std::size_t dim_;
  Fn f_;
  Options opts_;
  double sigmaPerSample_;
  CounterRng rng_;
};

}  // namespace sfopt::noise
