#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <thread>

#include "service/job.hpp"

namespace sfopt::service {

/// Per-job daemon state.  Owned and mutated by the daemon thread only;
/// job engine threads communicate exclusively through the TicketExchange
/// and the service's finished queue.
struct JobRecord {
  std::uint64_t id = 0;
  JobSpec spec;
  JobState state = JobState::Queued;
  int client = -1;  ///< submitting client id (sendToClient target); -1 = detached
  std::string error;
  std::optional<JobOutcome> outcome;
  std::thread thread;  ///< running engine thread; joined by the reaper
  double submittedAt = 0.0;
  double startedAt = 0.0;
  double finishedAt = 0.0;
};

/// Admission verdict for one JobSubmit.
struct Admission {
  bool accepted = false;
  bool retryable = false;  ///< refusal was load-based; client may retry
  std::uint64_t jobId = 0;
  std::string message;
};

/// The daemon's job registry with admission control: at most
/// `maxConcurrent` jobs run at once and at most `maxQueued` wait behind
/// them; submissions beyond that are refused with a retryable status
/// instead of being parked forever or crashing the daemon.
class JobTable {
 public:
  JobTable(int maxConcurrent, int maxQueued);

  /// Admit or refuse a (pre-validated) spec.  On acceptance the job is
  /// recorded as Queued.
  [[nodiscard]] Admission admit(JobSpec spec, int client, double now);

  [[nodiscard]] JobRecord* find(std::uint64_t id);

  /// Lowest-id queued job, or nullptr.  The caller promotes it.
  [[nodiscard]] JobRecord* nextQueued();

  [[nodiscard]] int runningCount() const noexcept;
  [[nodiscard]] int queuedCount() const noexcept;
  [[nodiscard]] std::int64_t completedCount() const noexcept;  ///< terminal states
  [[nodiscard]] bool anyActive() const noexcept;  ///< queued or running jobs exist

  [[nodiscard]] std::map<std::uint64_t, JobRecord>& all() noexcept { return jobs_; }

  [[nodiscard]] int maxConcurrent() const noexcept { return maxConcurrent_; }
  [[nodiscard]] int maxQueued() const noexcept { return maxQueued_; }

 private:
  std::map<std::uint64_t, JobRecord> jobs_;
  std::uint64_t nextId_ = 1;
  int maxConcurrent_;
  int maxQueued_;
};

}  // namespace sfopt::service
