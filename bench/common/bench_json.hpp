#pragma once

#include <functional>
#include <string>
#include <vector>

namespace sfopt::bench {

/// One scalar measurement in a bench report.  `name` is the stable key
/// tools/bench_diff.py joins baseline and fresh runs on; `unit` tells the
/// diff which direction is good ("s" / "us" = lower is better, anything
/// else = higher is better).
struct BenchResult {
  std::string name;
  double value = 0.0;
  std::string unit;
};

/// Machine-readable bench output (`BENCH_*.json` at the repo root).  The
/// host block records the CPU model, core count and SIMD ISA situation so
/// a diff across machines is recognizably apples-to-oranges.
struct BenchReport {
  std::string bench;
  int repetitions = 0;
  std::vector<BenchResult> results;

  void add(std::string name, double value, std::string unit);

  /// Write the report as a single JSON object.  Returns false (after
  /// printing to stderr) when the file cannot be opened.
  [[nodiscard]] bool writeJson(const std::string& path) const;
};

/// Median wall seconds over `reps` invocations of fn.
[[nodiscard]] double medianSeconds(int reps, const std::function<void()>& fn);

/// `--json PATH` extraction for bench main()s: returns the path following
/// a "--json" argument (empty when absent) and removes both tokens from
/// the remaining positional-argument list.
[[nodiscard]] std::string extractJsonPath(std::vector<std::string>& args);

}  // namespace sfopt::bench
