#include "testfunctions/functions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "noise/rng.hpp"

namespace {

namespace tf = sfopt::testfunctions;

TEST(Rosenbrock, MinimumIsZeroAtOnes) {
  for (std::size_t d : {2u, 3u, 4u, 10u, 100u}) {
    const auto x = tf::rosenbrockMinimizer(d);
    EXPECT_DOUBLE_EQ(tf::rosenbrock(x), 0.0) << "d=" << d;
  }
}

TEST(Rosenbrock, KnownValues) {
  // f(0,0) = 1; f(-1,1) = 4 (2-d form).
  EXPECT_DOUBLE_EQ(tf::rosenbrock(std::vector<double>{0.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(tf::rosenbrock(std::vector<double>{-1.0, 1.0}), 4.0);
  // 3-d: f(0,0,0) = 2.
  EXPECT_DOUBLE_EQ(tf::rosenbrock(std::vector<double>{0.0, 0.0, 0.0}), 2.0);
}

TEST(Rosenbrock, NonNegativeEverywhere) {
  sfopt::noise::RngStream rng(3, 0);
  for (int i = 0; i < 500; ++i) {
    std::vector<double> x(4);
    for (double& v : x) v = rng.uniform(-5.0, 5.0);
    EXPECT_GE(tf::rosenbrock(x), 0.0);
  }
}

TEST(Rosenbrock, RejectsTooFewDimensions) {
  EXPECT_THROW((void)tf::rosenbrock(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(RosenbrockGradient, VanishesAtMinimum) {
  const auto g = tf::rosenbrockGradient(tf::rosenbrockMinimizer(5));
  for (double v : g) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(RosenbrockGradient, MatchesFiniteDifferences) {
  const std::vector<double> x{0.3, -0.7, 1.2, 0.1};
  const auto g = tf::rosenbrockGradient(x);
  const double h = 1e-6;
  for (std::size_t i = 0; i < x.size(); ++i) {
    auto xp = x;
    auto xm = x;
    xp[i] += h;
    xm[i] -= h;
    const double fd = (tf::rosenbrock(xp) - tf::rosenbrock(xm)) / (2.0 * h);
    EXPECT_NEAR(g[i], fd, 1e-4) << "i=" << i;
  }
}

TEST(Powell, MinimumIsZeroAtOrigin) {
  EXPECT_DOUBLE_EQ(tf::powell(tf::powellMinimizer()), 0.0);
}

TEST(Powell, KnownValue) {
  // f(3, -1, 0, 1) = (3-10)^2 + 5(0-1)^2 + (-1)^4 + 10*(2)^4 = 49+5+1+160 = 215.
  EXPECT_DOUBLE_EQ(tf::powell(std::vector<double>{3.0, -1.0, 0.0, 1.0}), 215.0);
}

TEST(Powell, NonNegativeEverywhere) {
  sfopt::noise::RngStream rng(4, 0);
  for (int i = 0; i < 500; ++i) {
    std::vector<double> x(4);
    for (double& v : x) v = rng.uniform(-5.0, 5.0);
    EXPECT_GE(tf::powell(x), 0.0);
  }
}

TEST(Powell, RequiresFourDimensions) {
  EXPECT_THROW((void)tf::powell(std::vector<double>{1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(Sphere, Basics) {
  EXPECT_DOUBLE_EQ(tf::sphere(std::vector<double>{0.0, 0.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(tf::sphere(std::vector<double>{3.0, 4.0}), 25.0);
}

TEST(QuadraticBowl, WeightsByIndex) {
  EXPECT_DOUBLE_EQ(tf::quadraticBowl(std::vector<double>{1.0, 1.0, 1.0}), 6.0);
  EXPECT_DOUBLE_EQ(tf::quadraticBowl(std::vector<double>{2.0, 0.0}), 4.0);
}

TEST(Rastrigin, ZeroAtOriginPositiveElsewhere) {
  EXPECT_NEAR(tf::rastrigin(std::vector<double>{0.0, 0.0}), 0.0, 1e-12);
  EXPECT_GT(tf::rastrigin(std::vector<double>{0.5, 0.5}), 0.0);
  // Local minima near integers: f(1,1) ~ 2, small but nonzero.
  EXPECT_GT(tf::rastrigin(std::vector<double>{1.0, 1.0}), 0.5);
}

TEST(Himmelblau, FourGlobalMinima) {
  const std::vector<std::vector<double>> minima{
      {3.0, 2.0},
      {-2.805118, 3.131312},
      {-3.779310, -3.283186},
      {3.584428, -1.848126},
  };
  for (const auto& m : minima) {
    EXPECT_NEAR(tf::himmelblau(m), 0.0, 1e-8);
  }
  EXPECT_THROW((void)tf::himmelblau(std::vector<double>{0.0, 0.0, 0.0}), std::invalid_argument);
}

}  // namespace
