#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/point.hpp"
#include "noise/stochastic_objective.hpp"
#include "water/surrogate.hpp"

namespace sfopt::water {

/// One fitting target of the cost function (eq. 3.4): a property name, its
/// experimental value p0, and the subjective weight w balancing its error
/// contribution.
struct PropertyTarget {
  std::string name;
  double target = 0.0;
  double weight = 1.0;
};

/// The paper's six targets with weights chosen (as section 3.5 prescribes)
/// "subjectively to balance the level of error in each property": at the
/// published TIP4P parameters each term contributes O(1).
[[nodiscard]] std::vector<PropertyTarget> defaultWaterTargets();

/// eq. 3.4: g = sum_i w_i^2 (p_i - p0_i)^2 / p0_i^2.  Targets that are
/// exactly zero (the RDF residuals, whose experimental value is zero by
/// construction) contribute absolutely: w_i^2 p_i^2.
[[nodiscard]] double weightedCost(std::span<const double> values,
                                  std::span<const PropertyTarget> targets);

/// Order the six surrogate properties to match defaultWaterTargets().
[[nodiscard]] std::vector<double> propertyVector(const WaterProperties& p);

/// Map an optimization point (epsilon, sigma, qH) to parameters.
[[nodiscard]] md::WaterParameters paramsFromPoint(std::span<const double> x);

/// The water reparameterization objective: the eq. 3.4 cost of the
/// surrogate properties, observed through the paper's sampling-noise model
/// (additive Gaussian noise whose variance decays as sigma0^2 / t, eq 1.2).
class WaterCostObjective final : public noise::StochasticObjective {
 public:
  struct Options {
    double sigma0 = 0.5;
    double sampleDuration = 1.0;
    std::uint64_t seed = 0xAA17;
    std::vector<PropertyTarget> targets;  ///< empty = defaultWaterTargets()
  };

  WaterCostObjective() : WaterCostObjective(Options{}) {}
  explicit WaterCostObjective(Options options);

  [[nodiscard]] std::size_t dimension() const override { return 3; }
  [[nodiscard]] double sampleDuration() const override { return options_.sampleDuration; }
  [[nodiscard]] double sample(std::span<const double> x, noise::SampleKey key) const override;
  [[nodiscard]] std::optional<double> trueValue(std::span<const double> x) const override;
  [[nodiscard]] std::optional<double> noiseScale(std::span<const double> x) const override;

  [[nodiscard]] const Tip4pSurrogate& surrogate() const noexcept { return surrogate_; }
  [[nodiscard]] const std::vector<PropertyTarget>& targets() const noexcept {
    return options_.targets;
  }

 private:
  Options options_;
  Tip4pSurrogate surrogate_;
  double sigmaPerSample_;
  noise::CounterRng rng_;
};

/// The initial simplex of the application study: the paper's Table 3.4(a)
/// lists six starting parameter rows (d+1 = 4 simplex vertices plus the 2
/// trial slots); the first dimension+1 rows seed the optimization.  Sigma
/// and qH columns are the table's values; the table's epsilon column is in
/// program units (amu A^2/dfs^2) and is mapped into the physical
/// 0.12-0.21 kcal/mol range preserving its ordering and spread.
[[nodiscard]] std::vector<core::Point> table34InitialPoints();

}  // namespace sfopt::water
