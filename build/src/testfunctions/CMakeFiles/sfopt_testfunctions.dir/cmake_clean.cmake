file(REMOVE_RECURSE
  "CMakeFiles/sfopt_testfunctions.dir/functions.cpp.o"
  "CMakeFiles/sfopt_testfunctions.dir/functions.cpp.o.d"
  "libsfopt_testfunctions.a"
  "libsfopt_testfunctions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfopt_testfunctions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
