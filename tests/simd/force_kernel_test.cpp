#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "md/forces.hpp"
#include "md/neighbor_list.hpp"
#include "md/system.hpp"
#include "simd/dispatch.hpp"
#include "simd/force_kernel.hpp"
#include "simd/isa.hpp"

namespace {

using namespace sfopt;

struct IsaGuard {
  simd::Isa saved = simd::activeIsa();
  ~IsaGuard() { simd::setActiveIsa(saved); }
};

/// SoA site arrays plus a padded pair list, ready for forcePairBlock.
struct Block {
  std::vector<double> x, y, z, q, oxy;
  std::vector<std::int32_t> i, j;
  std::int64_t count = 0;

  void addSite(double sx, double sy, double sz, double charge, bool oxygen) {
    x.push_back(sx);
    y.push_back(sy);
    z.push_back(sz);
    q.push_back(charge);
    oxy.push_back(oxygen ? 1.0 : 0.0);
  }

  void addPair(std::int32_t a, std::int32_t b) {
    i.push_back(a);
    j.push_back(b);
    ++count;
  }

  void pad() {
    while (static_cast<std::int64_t>(i.size()) % simd::kForceLaneGroup != 0) {
      i.push_back(i.back());
      j.push_back(j.back());
    }
  }

  [[nodiscard]] simd::ForcePairBlockIn in() const {
    return {x.data(), y.data(), z.data(), q.data(), oxy.data(),
            i.data(), j.data(), count};
  }
};

struct Outputs {
  std::vector<double> dx, dy, dz, coulombE, coulombS, ljE, ljS;
  std::vector<std::uint8_t> within, coulombActive, ljActive;

  explicit Outputs(std::size_t padded)
      : dx(padded), dy(padded), dz(padded), coulombE(padded), coulombS(padded),
        ljE(padded), ljS(padded), within(padded), coulombActive(padded),
        ljActive(padded) {}

  [[nodiscard]] simd::ForcePairBlockOut out() {
    return {dx.data(), dy.data(), dz.data(), coulombE.data(), coulombS.data(),
            ljE.data(), ljS.data(), within.data(), coulombActive.data(),
            ljActive.data()};
  }
};

/// TIP4P-ish constants; the exact values only need to be shared between
/// the scalar and vector kernels under test.
simd::ForceConstants testConstants() {
  simd::ForceConstants c;
  c.boxEdge = 12.0;
  c.invBoxEdge = 1.0 / c.boxEdge;
  c.rc = 4.0;
  c.rc2 = c.rc * c.rc;
  c.invRc = 1.0 / c.rc;
  c.invRc2 = 1.0 / c.rc2;
  const double sigma = 3.15;
  const double eps = 0.155;
  c.s2 = sigma * sigma;
  c.eps4 = 4.0 * eps;
  c.eps24 = 24.0 * eps;
  const double inv2 = c.s2 / c.rc2;
  const double inv6 = inv2 * inv2 * inv2;
  const double inv12 = inv6 * inv6;
  c.ljErc = c.eps4 * (inv12 - inv6);
  c.ljFrc = c.eps24 * (2.0 * inv12 - inv6) / c.rc2 * c.rc;
  c.coulombScale = 332.06371;
  return c;
}

/// A block exercising the kernel's edge cases: zero-distance pair,
/// pairs straddling the cutoff by one ulp-ish margin, denormal offsets,
/// charge-free pairs and mixed species.
Block adversarialBlock(std::uint64_t seed, int pairs) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> pos(-6.0, 18.0);  // spans images
  std::bernoulli_distribution isOxy(0.4);
  Block b;
  for (int s = 0; s < 40; ++s) {
    const bool oxy = isOxy(rng);
    b.addSite(pos(rng), pos(rng), pos(rng), oxy ? -1.04 : 0.52, oxy);
  }
  // Edge-case sites appended at known indices.
  const auto base = static_cast<std::int32_t>(b.x.size());
  b.addSite(1.0, 1.0, 1.0, 0.52, false);                           // base
  b.addSite(1.0, 1.0, 1.0, -1.04, true);                           // base+1: zero distance
  b.addSite(1.0 + 4.0 - 1e-12, 1.0, 1.0, -1.04, true);             // base+2: just inside rc
  b.addSite(1.0 + 4.0 + 1e-12, 1.0, 1.0, -1.04, true);             // base+3: just outside rc
  b.addSite(1.0 + std::numeric_limits<double>::denorm_min(), 1.0, 1.0, -1.04,
            true);                                                 // base+4: denormal offset
  b.addSite(5.0, 5.0, 5.0, 0.0, true);                             // base+5: zero charge
  b.addPair(base, base + 1);
  b.addPair(base, base + 2);
  b.addPair(base, base + 3);
  b.addPair(base, base + 4);
  b.addPair(base + 1, base + 5);
  std::uniform_int_distribution<std::int32_t> site(0, base - 1);
  while (b.count < pairs) {
    const std::int32_t a = site(rng);
    std::int32_t c = site(rng);
    if (a == c) c = (c + 1) % base;
    b.addPair(a, c);
  }
  b.pad();
  return b;
}

/// Bit-pattern equality, so identically-computed NaNs compare equal.
void expectBitEqual(double a, double b, const char* what, std::int64_t k,
                    const char* isa) {
  std::uint64_t ba = 0;
  std::uint64_t bb = 0;
  std::memcpy(&ba, &a, sizeof ba);
  std::memcpy(&bb, &b, sizeof bb);
  EXPECT_EQ(ba, bb) << isa << " " << what << " pair " << k << " (" << a << " vs " << b
                    << ")";
}

void expectClose(double a, double b, const char* what, std::int64_t k) {
  if (std::isnan(a) || std::isnan(b)) {
    EXPECT_TRUE(std::isnan(a) && std::isnan(b)) << what << " pair " << k;
    return;
  }
  if (std::isinf(a) || std::isinf(b)) {
    EXPECT_EQ(a, b) << what << " pair " << k;
    return;
  }
  EXPECT_NEAR(a, b, 1e-12 * std::max(1.0, std::fabs(a))) << what << " pair " << k;
}

TEST(SimdForceKernel, EveryIsaAgreesWithScalarOnAdversarialPairs) {
  const auto c = testConstants();
  const Block b = adversarialBlock(99, 100);
  const std::size_t padded = b.i.size();

  IsaGuard guard;
  simd::setActiveIsa(simd::Isa::Scalar);
  Outputs ref(padded);
  simd::forcePairBlock(c, b.in(), ref.out());

  for (const simd::Isa isa : simd::supportedIsas()) {
    simd::setActiveIsa(isa);
    Outputs got(padded);
    simd::forcePairBlock(c, b.in(), got.out());
    for (std::int64_t k = 0; k < b.count; ++k) {
      const auto idx = static_cast<std::size_t>(k);
      EXPECT_EQ(got.within[idx], ref.within[idx]) << simd::isaName(isa) << " pair " << k;
      EXPECT_EQ(got.coulombActive[idx], ref.coulombActive[idx])
          << simd::isaName(isa) << " pair " << k;
      EXPECT_EQ(got.ljActive[idx], ref.ljActive[idx])
          << simd::isaName(isa) << " pair " << k;
      expectClose(got.dx[idx], ref.dx[idx], "dx", k);
      expectClose(got.dy[idx], ref.dy[idx], "dy", k);
      expectClose(got.dz[idx], ref.dz[idx], "dz", k);
      if (ref.coulombActive[idx] != 0) {
        expectClose(got.coulombE[idx], ref.coulombE[idx], "coulombE", k);
        expectClose(got.coulombS[idx], ref.coulombS[idx], "coulombS", k);
      }
      if (ref.ljActive[idx] != 0) {
        expectClose(got.ljE[idx], ref.ljE[idx], "ljE", k);
        expectClose(got.ljS[idx], ref.ljS[idx], "ljS", k);
      }
    }
  }
}

TEST(SimdForceKernel, PairOutputsDoNotDependOnLanePosition) {
  // Per-lane purity: the same pair must produce bitwise-identical outputs
  // no matter where it sits in a block.  This is what keeps all-pairs,
  // neighbor-list and per-block parallel enumerations bitwise consistent
  // within an ISA.
  const auto c = testConstants();
  IsaGuard guard;
  for (const simd::Isa isa : simd::supportedIsas()) {
    simd::setActiveIsa(isa);
    Block straight = adversarialBlock(7, 40);
    Outputs a(straight.i.size());
    simd::forcePairBlock(c, straight.in(), a.out());

    // Rebuild the same pair list rotated by a non-multiple of any lane
    // width, so every pair lands in a different lane and group.
    Block rotated = straight;
    rotated.i.assign(straight.i.begin(), straight.i.begin() + straight.count);
    rotated.j.assign(straight.j.begin(), straight.j.begin() + straight.count);
    std::rotate(rotated.i.begin(), rotated.i.begin() + 13, rotated.i.end());
    std::rotate(rotated.j.begin(), rotated.j.begin() + 13, rotated.j.end());
    rotated.pad();
    Outputs r(rotated.i.size());
    simd::forcePairBlock(c, rotated.in(), r.out());

    for (std::int64_t k = 0; k < straight.count; ++k) {
      const auto from = static_cast<std::size_t>((k + 13) % straight.count);
      const auto to = static_cast<std::size_t>(k);
      EXPECT_EQ(a.within[from], r.within[to]) << simd::isaName(isa);
      expectBitEqual(a.dx[from], r.dx[to], "dx", k, simd::isaName(isa));
      expectBitEqual(a.coulombE[from], r.coulombE[to], "coulombE", k, simd::isaName(isa));
      expectBitEqual(a.ljS[from], r.ljS[to], "ljS", k, simd::isaName(isa));
    }
  }
}

TEST(SimdForceKernel, EachIsaIsBitwiseReproducibleRunToRun) {
  const auto c = testConstants();
  const Block b = adversarialBlock(55, 80);
  IsaGuard guard;
  for (const simd::Isa isa : simd::supportedIsas()) {
    simd::setActiveIsa(isa);
    Outputs first(b.i.size());
    simd::forcePairBlock(c, b.in(), first.out());
    Outputs second(b.i.size());
    simd::forcePairBlock(c, b.in(), second.out());
    const auto bytes = static_cast<std::size_t>(b.count) * sizeof(double);
    EXPECT_EQ(std::memcmp(first.dx.data(), second.dx.data(), bytes), 0)
        << simd::isaName(isa);
    EXPECT_EQ(std::memcmp(first.coulombE.data(), second.coulombE.data(), bytes), 0)
        << simd::isaName(isa);
    EXPECT_EQ(std::memcmp(first.coulombS.data(), second.coulombS.data(), bytes), 0)
        << simd::isaName(isa);
    EXPECT_EQ(std::memcmp(first.ljE.data(), second.ljE.data(), bytes), 0)
        << simd::isaName(isa);
    EXPECT_EQ(std::memcmp(first.ljS.data(), second.ljS.data(), bytes), 0)
        << simd::isaName(isa);
  }
}

TEST(SimdForceKernel, FullForceEvaluationAgreesAcrossIsas) {
  // End to end through md::computeForces: the total decomposition of a
  // real water box must agree with the scalar path to 1e-12 relative
  // under every vector ISA, over both pair enumerations.
  IsaGuard guard;
  md::WaterSystem sys =
      md::buildWaterLattice(64, 0.997, 298.0, md::tip4pPublished(), 4.0, 3);
  md::NeighborList list(4.0, 1.0);
  list.rebuild(sys);

  simd::setActiveIsa(simd::Isa::Scalar);
  const auto refAll = md::computeForces(sys);
  const auto refList = md::computeForces(sys, list);
  const std::vector<md::Vec3> refForces = sys.forces;

  for (const simd::Isa isa : simd::supportedIsas()) {
    simd::setActiveIsa(isa);
    const auto all = md::computeForces(sys);
    EXPECT_EQ(all.pairsEvaluated, refAll.pairsEvaluated) << simd::isaName(isa);
    EXPECT_NEAR(all.potential, refAll.potential, 1e-12 * std::fabs(refAll.potential))
        << simd::isaName(isa);
    EXPECT_NEAR(all.coulomb, refAll.coulomb, 1e-12 * std::fabs(refAll.coulomb))
        << simd::isaName(isa);
    EXPECT_NEAR(all.lennardJones, refAll.lennardJones,
                1e-12 * std::fabs(refAll.lennardJones))
        << simd::isaName(isa);
    EXPECT_NEAR(all.virial, refAll.virial, 1e-12 * std::fabs(refAll.virial))
        << simd::isaName(isa);

    const auto viaList = md::computeForces(sys, list);
    EXPECT_NEAR(viaList.potential, refList.potential,
                1e-12 * std::fabs(refList.potential))
        << simd::isaName(isa);
    double maxForce = 0.0;
    for (const auto& f : refForces) {
      maxForce = std::max({maxForce, std::fabs(f.x), std::fabs(f.y), std::fabs(f.z)});
    }
    for (std::size_t s = 0; s < refForces.size(); ++s) {
      EXPECT_NEAR(sys.forces[s].x, refForces[s].x, 1e-12 * maxForce)
          << simd::isaName(isa) << " site " << s;
      EXPECT_NEAR(sys.forces[s].y, refForces[s].y, 1e-12 * maxForce)
          << simd::isaName(isa) << " site " << s;
      EXPECT_NEAR(sys.forces[s].z, refForces[s].z, 1e-12 * maxForce)
          << simd::isaName(isa) << " site " << s;
    }
  }
}

}  // namespace
