# Empty dependencies file for sfopt_tests.
# This may be replaced when dependencies are built.
