// Reproduces Table 3.1: optimization of the noisy 3-d Rosenbrock function
// with the max-noise (MN) algorithm under controlled noise, for five random
// initial simplexes and k in {2, 3, 4, 5}.  Reported per cell: N (simplex
// iterations), R (true function error at convergence) and D (distance of
// the best vertex to the solution (1,1,1)).

#include <cstdio>
#include <vector>

#include "common/harness.hpp"
#include "core/initial_simplex.hpp"
#include "testfunctions/functions.hpp"

using namespace sfopt;

int main() {
  bench::printHeader(
      "Table 3.1 - MN algorithm on noisy 3-d Rosenbrock (controlled noise)");

  const std::vector<double> ks{2.0, 3.0, 4.0, 5.0};
  const auto solution = testfunctions::rosenbrockMinimizer(3);

  std::printf("\n%-6s %-5s %8s %12s %10s %12s %10s\n", "input", "k", "N", "R", "D",
              "samples", "time(s)");
  for (int input = 1; input <= 5; ++input) {
    noise::RngStream startRng(44, static_cast<std::uint64_t>(input));
    const auto start = core::randomSimplexPoints(3, -6.0, 3.0, startRng);
    for (double k : ks) {
      // sigma0 tuned so late-stage updates take ~1e4 virtual seconds.
      auto objective = bench::noisyRosenbrock(3, 10.0, 7000 + static_cast<std::uint64_t>(input));
      core::MaxNoiseOptions opts;
      opts.k = k;
      bench::applyTableBudget(opts.common);
      const auto res = core::runMaxNoise(objective, start, opts);
      const auto m = bench::measure(res, solution);
      std::printf("%-6d %-5.0f %8lld %12.4g %10.4g %12lld %10.3g\n", input, k,
                  static_cast<long long>(m.iterations), m.functionError, m.distance,
                  static_cast<long long>(res.totalSamples), res.elapsedTime);
    }
  }
  std::printf(
      "\nPaper shape check: R and D are essentially independent of k (k only\n"
      "controls how long the gate waits), matching section 3.2's conclusion\n"
      "that MN needs no per-problem tuning.\n");
  return 0;
}
