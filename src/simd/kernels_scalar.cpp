// Portable reference kernels.  The Welford kernel is the sequential
// stats::Welford::add stream bit for bit; the force kernel is the exact
// per-lane math of the vector kernels written in plain C, one pair at a
// time.  Compiled with -ffp-contract=off so no FMA contraction can make
// this TU disagree with the baseline-ISA code elsewhere in the tree.

#include <cmath>

#include "simd/kernels.hpp"

namespace sfopt::simd::detail {

void welfordChunkScalar(const double* samples, std::int64_t count, std::int64_t* outN,
                        double* outMean, double* outM2) {
  std::int64_t n = 0;
  double mean = 0.0;
  double m2 = 0.0;
  for (std::int64_t k = 0; k < count; ++k) {
    const double x = samples[k];
    ++n;
    const double delta = x - mean;
    mean += delta / static_cast<double>(n);
    m2 += delta * (x - mean);
  }
  *outN = n;
  *outMean = mean;
  *outM2 = m2;
}

void forcePairBlockScalar(const ForceConstants& c, const ForcePairBlockIn& in,
                          const ForcePairBlockOut& out) {
  for (std::int64_t k = 0; k < in.count; ++k) {
    const auto i = static_cast<std::size_t>(in.i[k]);
    const auto j = static_cast<std::size_t>(in.j[k]);
    // Minimum image, per component: d -= L * nearbyint(d / L).
    double dx = in.x[i] - in.x[j];
    double dy = in.y[i] - in.y[j];
    double dz = in.z[i] - in.z[j];
    dx -= c.boxEdge * std::nearbyint(dx * c.invBoxEdge);
    dy -= c.boxEdge * std::nearbyint(dy * c.invBoxEdge);
    dz -= c.boxEdge * std::nearbyint(dz * c.invBoxEdge);
    const double r2 = (dx * dx + dy * dy) + dz * dz;
    const double r = std::sqrt(r2);
    const bool within = r2 < c.rc2;

    // Coulomb, force-shifted: V = C q q (1/r - 1/rc + (r - rc)/rc^2).
    const double qq = (c.coulombScale * in.q[i]) * in.q[j];
    const double coulombE = qq * ((1.0 / r - c.invRc) + (r - c.rc) / c.rc2);
    const double coulombF = qq * (1.0 / r2 - c.invRc2);
    const double coulombS = coulombF / r;

    // Lennard-Jones (O-O only), force-shifted.
    const double inv2 = c.s2 / r2;
    const double inv6 = (inv2 * inv2) * inv2;
    const double inv12 = inv6 * inv6;
    const double ljE0 = c.eps4 * (inv12 - inv6);
    const double ljFOverR = c.eps24 * (2.0 * inv12 - inv6) / r2;
    const double ljE = (ljE0 - c.ljErc) + c.ljFrc * (r - c.rc);
    const double ljF = ljFOverR * r - c.ljFrc;
    const double ljS = ljF / r;

    out.dx[k] = dx;
    out.dy[k] = dy;
    out.dz[k] = dz;
    out.coulombE[k] = coulombE;
    out.coulombS[k] = coulombS;
    out.ljE[k] = ljE;
    out.ljS[k] = ljS;
    out.withinCutoff[k] = within ? 1 : 0;
    out.coulombActive[k] = (within && qq != 0.0) ? 1 : 0;
    out.ljActive[k] = (within && in.oxy[i] * in.oxy[j] > 0.5) ? 1 : 0;
  }
}

}  // namespace sfopt::simd::detail
