#include "water/md_objective.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace sfopt;
using water::MdWaterObjective;

MdWaterObjective::Options tinyOptions() {
  MdWaterObjective::Options o;
  o.simulation.molecules = 27;
  o.simulation.cutoff = 4.5;
  o.simulation.rdfRMax = 4.5;
  o.simulation.rdfBins = 45;
  o.simulation.equilibrationSteps = 200;
  o.simulation.productionSteps = 200;
  o.simulation.sampleEvery = 10;
  return o;
}

TEST(MdWaterObjective, SampleDurationIsSimulatedSpan) {
  MdWaterObjective obj(tinyOptions());
  EXPECT_DOUBLE_EQ(obj.sampleDuration(), 200 * 0.0005);
}

TEST(MdWaterObjective, SamplesAreFiniteAndReproducible) {
  MdWaterObjective obj(tinyOptions());
  const std::vector<double> x{0.155, 3.15, 0.52};
  const double a = obj.sample(x, {1, 0});
  const double b = obj.sample(x, {1, 0});
  EXPECT_TRUE(std::isfinite(a));
  EXPECT_GT(a, 0.0);
  EXPECT_DOUBLE_EQ(a, b);  // same key, same protocol seed
}

TEST(MdWaterObjective, DifferentKeysGiveIndependentReplicas) {
  MdWaterObjective obj(tinyOptions());
  const std::vector<double> x{0.155, 3.15, 0.52};
  EXPECT_NE(obj.sample(x, {1, 0}), obj.sample(x, {1, 1}));
  EXPECT_NE(obj.sample(x, {1, 0}), obj.sample(x, {2, 0}));
}

TEST(MdWaterObjective, DefaultTargetsAreFour) {
  MdWaterObjective obj(tinyOptions());
  EXPECT_EQ(obj.targets().size(), 4u);
}

TEST(MdWaterObjective, UnknownTargetNameThrows) {
  auto o = tinyOptions();
  o.targets = {{"bogus", 0.0, 1.0}};
  MdWaterObjective obj(o);
  const std::vector<double> x{0.155, 3.15, 0.52};
  EXPECT_THROW((void)obj.sample(x, {0, 0}), std::invalid_argument);
}

TEST(MdWaterObjective, TrueValueUnknown) {
  MdWaterObjective obj(tinyOptions());
  const std::vector<double> x{0.155, 3.15, 0.52};
  EXPECT_FALSE(obj.trueValue(x).has_value());
  EXPECT_FALSE(obj.noiseScale(x).has_value());
}

}  // namespace
