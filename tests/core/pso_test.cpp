#include "core/pso.hpp"

#include <gtest/gtest.h>

#include "stats/performance.hpp"
#include "stats/summary.hpp"
#include "tests/core/test_helpers.hpp"

namespace {

using namespace sfopt;
using core::PsoOptions;
using core::runParticleSwarm;
using core::TerminationReason;

PsoOptions quickPso(std::uint64_t seed = 0xB05) {
  PsoOptions o;
  o.particles = 16;
  o.termination.tolerance = 1e-4;
  o.termination.maxIterations = 300;
  o.termination.maxSamples = 500'000;
  o.seed = seed;
  return o;
}

TEST(Pso, ValidatesOptions) {
  auto obj = test::noisySphere(2, 0.0);
  PsoOptions bad = quickPso();
  bad.particles = 1;
  EXPECT_THROW((void)runParticleSwarm(obj, bad), std::invalid_argument);
  bad = quickPso();
  bad.boxLo = bad.boxHi;
  EXPECT_THROW((void)runParticleSwarm(obj, bad), std::invalid_argument);
  bad = quickPso();
  bad.samplesPerEvaluation = 0;
  EXPECT_THROW((void)runParticleSwarm(obj, bad), std::invalid_argument);
}

TEST(Pso, ConvergesOnNoiselessSphere) {
  auto obj = test::noisySphere(3, 0.0);
  const auto res = runParticleSwarm(obj, quickPso());
  ASSERT_TRUE(res.bestTrue.has_value());
  EXPECT_LT(*res.bestTrue, 0.05);
}

TEST(Pso, FindsGlobalBasinOnNoiselessRastrigin) {
  // PSO's selling point over the local simplex: global search.  Over the
  // standard box the swarm should land in or next to the global basin.
  noise::NoisyFunction::Options no;
  no.sigma0 = 0.0;
  noise::NoisyFunction obj(
      2, [](std::span<const double> x) { return testfunctions::rastrigin(x); }, no);
  PsoOptions o = quickPso(7);
  o.particles = 24;
  o.termination.maxIterations = 400;
  const auto res = runParticleSwarm(obj, o);
  ASSERT_TRUE(res.bestTrue.has_value());
  EXPECT_LT(*res.bestTrue, 2.0);  // at worst the first ring of local minima
}

TEST(Pso, ApproachesOptimumUnderNoise) {
  auto obj = test::noisySphere(2, 1.0);
  const auto res = runParticleSwarm(obj, quickPso());
  ASSERT_TRUE(res.bestTrue.has_value());
  EXPECT_LT(*res.bestTrue, 1.0);
}

TEST(Pso, ReproducibleBySeed) {
  auto obj1 = test::noisySphere(2, 1.0);
  auto obj2 = test::noisySphere(2, 1.0);
  const auto a = runParticleSwarm(obj1, quickPso(5));
  const auto b = runParticleSwarm(obj2, quickPso(5));
  EXPECT_EQ(a.best, b.best);
  EXPECT_EQ(a.iterations, b.iterations);
  const auto c = runParticleSwarm(obj1, quickPso(6));
  EXPECT_NE(a.best, c.best);
}

TEST(Pso, RespectsBudgets) {
  auto obj = test::noisySphere(2, 10.0);
  PsoOptions o = quickPso();
  o.termination.tolerance = 0.0;
  o.termination.maxIterations = 20;
  o.termination.maxSamples = 0;  // disabled: let the iteration cap bind
  o.resample.maxRoundsPerComparison = 4;
  const auto res = runParticleSwarm(obj, o);
  EXPECT_EQ(res.reason, TerminationReason::IterationLimit);
  EXPECT_EQ(res.iterations, 20);

  o.termination.maxIterations = 1'000'000;
  o.termination.maxSamples = 2'000;
  const auto res2 = runParticleSwarm(obj, o);
  EXPECT_EQ(res2.reason, TerminationReason::SampleLimit);
}

TEST(Pso, ConfidenceModeDuelsResample) {
  auto obj = test::noisySphere(2, 10.0);
  PsoOptions o = quickPso();
  o.confidenceBestUpdates = true;
  o.resample.maxRoundsPerComparison = 6;
  o.termination.maxIterations = 50;
  const auto res = runParticleSwarm(obj, o);
  EXPECT_GT(res.counters.resampleRounds, 0);
}

TEST(Pso, PlainModeNeverResamples) {
  auto obj = test::noisySphere(2, 10.0);
  PsoOptions o = quickPso();
  o.confidenceBestUpdates = false;
  o.termination.maxIterations = 50;
  const auto res = runParticleSwarm(obj, o);
  EXPECT_EQ(res.counters.resampleRounds, 0);
}

TEST(Pso, ConfidenceModeResistsWinnersCurse) {
  // Under heavy noise the plain scheme crowns lucky draws as bests, so its
  // reported best estimate is biased far below the true value; confidence
  // duels keep the gap small.  Compare |estimate - true| medians.
  std::vector<double> plainGap;
  std::vector<double> confGap;
  for (std::uint64_t s = 0; s < 7; ++s) {
    auto obj1 = test::noisySphere(2, 20.0, 600 + s);
    auto obj2 = test::noisySphere(2, 20.0, 600 + s);
    PsoOptions plain = quickPso(100 + s);
    plain.confidenceBestUpdates = false;
    plain.termination.maxIterations = 60;
    plain.termination.tolerance = 0.0;
    PsoOptions conf = plain;
    conf.confidenceBestUpdates = true;
    conf.resample.maxRoundsPerComparison = 8;
    const auto rp = runParticleSwarm(obj1, plain);
    const auto rc = runParticleSwarm(obj2, conf);
    plainGap.push_back(std::fabs(rp.bestEstimate - rp.bestTrue.value_or(0.0)));
    confGap.push_back(std::fabs(rc.bestEstimate - rc.bestTrue.value_or(0.0)));
  }
  EXPECT_LT(stats::Summary(confGap).median(), stats::Summary(plainGap).median());
}

TEST(Pso, TraceRecordsGenerations) {
  auto obj = test::noisySphere(2, 1.0);
  PsoOptions o = quickPso();
  o.recordTrace = true;
  o.termination.maxIterations = 25;
  o.termination.tolerance = 0.0;
  const auto res = runParticleSwarm(obj, o);
  EXPECT_EQ(static_cast<std::int64_t>(res.trace.size()), res.iterations);
}

}  // namespace
