# Empty dependencies file for sfopt_water.
# This may be replaced when dependencies are built.
