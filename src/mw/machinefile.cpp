#include "mw/machinefile.hpp"

#include <fstream>
#include <istream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace sfopt::mw {

std::vector<ProcessorSlot> parseMachinefile(std::istream& in) {
  std::vector<ProcessorSlot> slots;
  std::unordered_map<std::string, int> perHost;
  std::string line;
  while (std::getline(in, line)) {
    // Trim and skip blanks/comments.
    std::istringstream ss(line);
    std::string host;
    if (!(ss >> host)) continue;
    if (host.front() == '#') continue;
    slots.push_back(ProcessorSlot{host, perHost[host]++});
  }
  return slots;
}

std::vector<ProcessorSlot> parseMachinefile(const std::filesystem::path& file) {
  std::ifstream in(file);
  if (!in) throw std::runtime_error("parseMachinefile: cannot open " + file.string());
  return parseMachinefile(in);
}

MachinefileScheduler::MachinefileScheduler(std::vector<ProcessorSlot> slots)
    : slots_(std::move(slots)) {
  if (slots_.empty()) {
    throw std::invalid_argument("MachinefileScheduler: empty machinefile");
  }
}

MachinefileScheduler::Plan MachinefileScheduler::plan(
    const ProcessorAllocation& allocation) const {
  const auto needed = static_cast<std::size_t>(allocation.totalCores());
  if (slots_.size() < needed) {
    throw std::runtime_error("MachinefileScheduler: machinefile provides " +
                             std::to_string(slots_.size()) + " slots, deployment needs " +
                             std::to_string(needed));
  }
  Plan plan;
  std::size_t next = 0;
  plan.master = slots_[next++];
  const auto workers = static_cast<std::size_t>(allocation.workers());
  const auto clients = static_cast<std::size_t>(allocation.simulationsPerVertex);
  plan.workers.reserve(workers);
  // The paper's order: workers first, then each worker's client-server
  // block from the next available slots.
  for (std::size_t w = 0; w < workers; ++w) {
    WorkerAssignment a;
    a.worker = slots_[next++];
    plan.workers.push_back(std::move(a));
  }
  for (std::size_t w = 0; w < workers; ++w) {
    WorkerAssignment& a = plan.workers[w];
    a.server = slots_[next++];
    a.clients.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) a.clients.push_back(slots_[next++]);
  }
  return plan;
}

const MachinefileScheduler::WorkerAssignment& MachinefileScheduler::restartAssignment(
    const Plan& plan, std::size_t workerIndex) {
  if (workerIndex >= plan.workers.size()) {
    throw std::out_of_range("MachinefileScheduler::restartAssignment");
  }
  return plan.workers[workerIndex];
}

}  // namespace sfopt::mw
